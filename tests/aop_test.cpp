// Unit tests for the AOP mechanism: join points, the pointcut DSL,
// advice ordering and the weaver's match cache.
#include <gtest/gtest.h>

#include <memory>

#include "aop/weaver.hpp"
#include "common/error.hpp"

namespace aop = navsep::aop;

namespace {

aop::JoinPoint jp(aop::JoinPointKind kind, std::string subject,
                  std::string instance = "",
                  std::map<std::string, std::string> tags = {}) {
  aop::JoinPoint out;
  out.kind = kind;
  out.subject = std::move(subject);
  out.instance = std::move(instance);
  for (auto& [k, v] : tags) out.tags.emplace(k, v);
  return out;
}

}  // namespace

// --- pointcut parsing -----------------------------------------------------------

TEST(Pointcut, DesignatorMatchesKindAndSubject) {
  aop::Pointcut pc = aop::Pointcut::parse("compose(PaintingNode)");
  EXPECT_TRUE(
      pc.matches(jp(aop::JoinPointKind::PageCompose, "PaintingNode")));
  EXPECT_FALSE(
      pc.matches(jp(aop::JoinPointKind::NodeRender, "PaintingNode")));
  EXPECT_FALSE(
      pc.matches(jp(aop::JoinPointKind::PageCompose, "PainterNode")));
}

TEST(Pointcut, WildcardSubjects) {
  aop::Pointcut pc = aop::Pointcut::parse("render(Paint*)");
  EXPECT_TRUE(pc.matches(jp(aop::JoinPointKind::NodeRender, "PaintingNode")));
  EXPECT_TRUE(pc.matches(jp(aop::JoinPointKind::NodeRender, "PainterNode")));
  EXPECT_FALSE(pc.matches(jp(aop::JoinPointKind::NodeRender, "Movement")));
}

TEST(Pointcut, InstancePattern) {
  aop::Pointcut pc = aop::Pointcut::parse("compose(*, guernica)");
  EXPECT_TRUE(pc.matches(
      jp(aop::JoinPointKind::PageCompose, "PaintingNode", "guernica")));
  EXPECT_FALSE(pc.matches(
      jp(aop::JoinPointKind::PageCompose, "PaintingNode", "guitar")));
}

TEST(Pointcut, WithinMatchesContextTag) {
  aop::Pointcut pc = aop::Pointcut::parse("within(ByAuthor:*)");
  EXPECT_TRUE(pc.matches(jp(aop::JoinPointKind::PageCompose, "X", "",
                            {{"context", "ByAuthor:picasso"}})));
  EXPECT_FALSE(pc.matches(jp(aop::JoinPointKind::PageCompose, "X", "",
                             {{"context", "ByMovement:cubism"}})));
  EXPECT_FALSE(pc.matches(jp(aop::JoinPointKind::PageCompose, "X")));
}

TEST(Pointcut, TagMatchesArbitraryTags) {
  aop::Pointcut pc = aop::Pointcut::parse("tag(role, next)");
  EXPECT_TRUE(pc.matches(jp(aop::JoinPointKind::LinkTraversal, "a", "b",
                            {{"role", "next"}})));
  EXPECT_FALSE(pc.matches(jp(aop::JoinPointKind::LinkTraversal, "a", "b",
                             {{"role", "prev"}})));
}

TEST(Pointcut, BooleanOperatorsAndPrecedence) {
  aop::Pointcut pc =
      aop::Pointcut::parse("render(A) || compose(B) && within(C:*)");
  // && binds tighter than ||.
  EXPECT_TRUE(pc.matches(jp(aop::JoinPointKind::NodeRender, "A")));
  EXPECT_FALSE(pc.matches(jp(aop::JoinPointKind::PageCompose, "B")));
  EXPECT_TRUE(pc.matches(jp(aop::JoinPointKind::PageCompose, "B", "",
                            {{"context", "C:1"}})));
}

TEST(Pointcut, NegationAndParens) {
  aop::Pointcut pc = aop::Pointcut::parse("!(render(A) || render(B))");
  EXPECT_FALSE(pc.matches(jp(aop::JoinPointKind::NodeRender, "A")));
  EXPECT_TRUE(pc.matches(jp(aop::JoinPointKind::NodeRender, "C")));
}

TEST(Pointcut, SubjectAndInstanceDesignators) {
  aop::Pointcut pc = aop::Pointcut::parse("subject(P*) && instance(g*)");
  EXPECT_TRUE(pc.matches(
      jp(aop::JoinPointKind::LinkTraversal, "PaintingNode", "guitar")));
  EXPECT_FALSE(pc.matches(
      jp(aop::JoinPointKind::LinkTraversal, "PaintingNode", "avignon")));
}

TEST(Pointcut, AnyMatchesEverything) {
  aop::Pointcut pc = aop::Pointcut::parse("any()");
  EXPECT_TRUE(pc.matches(jp(aop::JoinPointKind::Custom, "x")));
  EXPECT_TRUE(pc.matches(jp(aop::JoinPointKind::IndexBuild, "", "")));
}

TEST(Pointcut, QuotedPatternsAllowSpaces) {
  aop::Pointcut pc = aop::Pointcut::parse("compose('The *')");
  EXPECT_TRUE(pc.matches(jp(aop::JoinPointKind::PageCompose, "The Guitar")));
}

TEST(Pointcut, DeMorganProperty) {
  // !(a || b) == !a && !b over a sample of join points.
  aop::Pointcut lhs = aop::Pointcut::parse("!(render(A*) || within(B:*))");
  aop::Pointcut rhs = aop::Pointcut::parse("!render(A*) && !within(B:*)");
  std::vector<aop::JoinPoint> samples = {
      jp(aop::JoinPointKind::NodeRender, "Abc"),
      jp(aop::JoinPointKind::NodeRender, "Xyz"),
      jp(aop::JoinPointKind::PageCompose, "Abc", "", {{"context", "B:1"}}),
      jp(aop::JoinPointKind::PageCompose, "Q", "", {{"context", "C:1"}}),
      jp(aop::JoinPointKind::Custom, ""),
  };
  for (const auto& sample : samples) {
    EXPECT_EQ(lhs.matches(sample), rhs.matches(sample)) << sample.to_string();
  }
}

TEST(Pointcut, ParseErrors) {
  EXPECT_THROW(aop::Pointcut::parse(""), navsep::ParseError);
  EXPECT_THROW(aop::Pointcut::parse("frobnicate(x)"), navsep::ParseError);
  EXPECT_THROW(aop::Pointcut::parse("render("), navsep::ParseError);
  EXPECT_THROW(aop::Pointcut::parse("render(a) &&"), navsep::ParseError);
  EXPECT_THROW(aop::Pointcut::parse("render(a) render(b)"),
               navsep::ParseError);
  EXPECT_THROW(aop::Pointcut::parse("tag(only-key)"), navsep::ParseError);
}

TEST(Pointcut, ToStringIsReparsable) {
  for (const char* text :
       {"compose(PaintingNode)", "render(A) && !within(B:*)",
        "traverse(*, guitar) || tag(role, next)"}) {
    aop::Pointcut pc = aop::Pointcut::parse(text);
    aop::Pointcut again = aop::Pointcut::parse(pc.to_string());
    EXPECT_EQ(again.to_string(), pc.to_string()) << text;
  }
}

TEST(Pointcut, CopySemantics) {
  aop::Pointcut a = aop::Pointcut::parse("render(X)");
  aop::Pointcut b = a;  // deep copy
  EXPECT_TRUE(b.matches(jp(aop::JoinPointKind::NodeRender, "X")));
  aop::Pointcut c = aop::Pointcut::parse("render(Y)");
  c = a;
  EXPECT_TRUE(c.matches(jp(aop::JoinPointKind::NodeRender, "X")));
}

// --- join point ---------------------------------------------------------------------

TEST(JoinPoint, ToStringFormat) {
  auto point = jp(aop::JoinPointKind::PageCompose, "PaintingNode", "guitar",
                  {{"context", "ByAuthor:picasso"}});
  EXPECT_EQ(point.to_string(),
            "compose(PaintingNode, guitar){context=ByAuthor:picasso}");
}

TEST(JoinPoint, TagLookup) {
  auto point = jp(aop::JoinPointKind::Custom, "s", "i", {{"k", "v"}});
  EXPECT_EQ(point.tag("k"), "v");
  EXPECT_EQ(point.tag("missing"), "");
}

// --- weaver ---------------------------------------------------------------------------

class WeaverTest : public ::testing::Test {
 protected:
  aop::Weaver weaver_;
  std::vector<std::string> log_;

  aop::AdviceFn logger(std::string label) {
    return [this, label = std::move(label)](aop::JoinPointContext&) {
      log_.push_back(label);
    };
  }
};

TEST_F(WeaverTest, BaseRunsWithoutAspects) {
  bool ran = false;
  weaver_.execute(jp(aop::JoinPointKind::Custom, "x"), [&] { ran = true; });
  EXPECT_TRUE(ran);
  EXPECT_EQ(weaver_.stats().join_points_executed, 1u);
  EXPECT_EQ(weaver_.stats().advice_invocations, 0u);
}

TEST_F(WeaverTest, BeforeAndAfterSurroundBase) {
  auto aspect = std::make_shared<aop::Aspect>("t");
  aspect->before("custom(*)", logger("before"));
  aspect->after("custom(*)", logger("after"));
  weaver_.register_aspect(aspect);
  weaver_.execute(jp(aop::JoinPointKind::Custom, "x"),
                  [&] { log_.push_back("base"); });
  EXPECT_EQ(log_, (std::vector<std::string>{"before", "base", "after"}));
}

TEST_F(WeaverTest, AroundWrapsAndMustProceed) {
  auto aspect = std::make_shared<aop::Aspect>("t");
  aspect->around("custom(*)", [this](aop::JoinPointContext& ctx) {
    log_.push_back("pre");
    ctx.proceed();
    log_.push_back("post");
  });
  weaver_.register_aspect(aspect);
  weaver_.execute(jp(aop::JoinPointKind::Custom, "x"),
                  [&] { log_.push_back("base"); });
  EXPECT_EQ(log_, (std::vector<std::string>{"pre", "base", "post"}));
}

TEST_F(WeaverTest, AroundWithoutProceedSuppressesBase) {
  auto aspect = std::make_shared<aop::Aspect>("t");
  aspect->around("custom(*)",
                 [this](aop::JoinPointContext&) { log_.push_back("around"); });
  weaver_.register_aspect(aspect);
  bool base_ran = false;
  weaver_.execute(jp(aop::JoinPointKind::Custom, "x"),
                  [&] { base_ran = true; });
  EXPECT_FALSE(base_ran);
  EXPECT_EQ(log_, (std::vector<std::string>{"around"}));
}

TEST_F(WeaverTest, DoubleProceedThrows) {
  auto aspect = std::make_shared<aop::Aspect>("t");
  aspect->around("custom(*)", [](aop::JoinPointContext& ctx) {
    ctx.proceed();
    ctx.proceed();
  });
  weaver_.register_aspect(aspect);
  EXPECT_THROW(weaver_.execute(jp(aop::JoinPointKind::Custom, "x"), [] {}),
               navsep::SemanticError);
}

TEST_F(WeaverTest, PrecedenceOrdersAdvice) {
  auto low = std::make_shared<aop::Aspect>("low", 1);
  low->before("custom(*)", logger("low-before"));
  low->after("custom(*)", logger("low-after"));
  auto high = std::make_shared<aop::Aspect>("high", 10);
  high->before("custom(*)", logger("high-before"));
  high->after("custom(*)", logger("high-after"));
  weaver_.register_aspect(low);
  weaver_.register_aspect(high);
  weaver_.execute(jp(aop::JoinPointKind::Custom, "x"),
                  [&] { log_.push_back("base"); });
  // Higher precedence is outermost: first before, last after.
  EXPECT_EQ(log_, (std::vector<std::string>{"high-before", "low-before",
                                            "base", "low-after",
                                            "high-after"}));
}

TEST_F(WeaverTest, AroundNestingFollowsPrecedence) {
  auto outer = std::make_shared<aop::Aspect>("outer", 10);
  outer->around("custom(*)", [this](aop::JoinPointContext& ctx) {
    log_.push_back("outer-in");
    ctx.proceed();
    log_.push_back("outer-out");
  });
  auto inner = std::make_shared<aop::Aspect>("inner", 1);
  inner->around("custom(*)", [this](aop::JoinPointContext& ctx) {
    log_.push_back("inner-in");
    ctx.proceed();
    log_.push_back("inner-out");
  });
  weaver_.register_aspect(inner);
  weaver_.register_aspect(outer);
  weaver_.execute(jp(aop::JoinPointKind::Custom, "x"),
                  [&] { log_.push_back("base"); });
  EXPECT_EQ(log_, (std::vector<std::string>{"outer-in", "inner-in", "base",
                                            "inner-out", "outer-out"}));
}

TEST_F(WeaverTest, DisableAndEnableAspects) {
  auto aspect = std::make_shared<aop::Aspect>("nav");
  aspect->before("custom(*)", logger("advice"));
  weaver_.register_aspect(aspect);
  EXPECT_TRUE(weaver_.set_enabled("nav", false));
  weaver_.execute(jp(aop::JoinPointKind::Custom, "x"), [] {});
  EXPECT_TRUE(log_.empty());
  EXPECT_TRUE(weaver_.set_enabled("nav", true));
  weaver_.execute(jp(aop::JoinPointKind::Custom, "x"), [] {});
  EXPECT_EQ(log_.size(), 1u);
  EXPECT_FALSE(weaver_.set_enabled("ghost", true));
}

TEST_F(WeaverTest, PayloadReachesAdvice) {
  auto aspect = std::make_shared<aop::Aspect>("t");
  aspect->after("custom(*)", [](aop::JoinPointContext& ctx) {
    auto* value = std::any_cast<int>(&ctx.payload());
    ASSERT_NE(value, nullptr);
    *value += 1;
  });
  weaver_.register_aspect(aspect);
  std::any payload = 41;
  weaver_.execute(jp(aop::JoinPointKind::Custom, "x"), &payload, [] {});
  EXPECT_EQ(std::any_cast<int>(payload), 42);
}

TEST_F(WeaverTest, MatchCacheHitsOnRepeatedShapes) {
  auto aspect = std::make_shared<aop::Aspect>("t");
  aspect->before("compose(*)", logger("x"));
  weaver_.register_aspect(aspect);
  auto point = jp(aop::JoinPointKind::PageCompose, "P", "n1");
  weaver_.execute(point, [] {});
  weaver_.execute(point, [] {});
  weaver_.execute(point, [] {});
  EXPECT_EQ(weaver_.stats().match_cache_misses, 1u);
  EXPECT_EQ(weaver_.stats().match_cache_hits, 2u);
}

TEST_F(WeaverTest, CacheInvalidatedOnAspectChange) {
  auto a1 = std::make_shared<aop::Aspect>("a1");
  a1->before("custom(*)", logger("a1"));
  weaver_.register_aspect(a1);
  weaver_.execute(jp(aop::JoinPointKind::Custom, "x"), [] {});
  auto a2 = std::make_shared<aop::Aspect>("a2");
  a2->before("custom(*)", logger("a2"));
  weaver_.register_aspect(a2);  // invalidates
  weaver_.execute(jp(aop::JoinPointKind::Custom, "x"), [] {});
  EXPECT_EQ(log_, (std::vector<std::string>{"a1", "a1", "a2"}));
}

TEST_F(WeaverTest, RuleOrderWithinAspectIsStable) {
  auto aspect = std::make_shared<aop::Aspect>("t");
  aspect->before("custom(*)", logger("first"));
  aspect->before("custom(*)", logger("second"));
  weaver_.register_aspect(aspect);
  weaver_.execute(jp(aop::JoinPointKind::Custom, "x"), [] {});
  EXPECT_EQ(log_, (std::vector<std::string>{"first", "second"}));
}

TEST_F(WeaverTest, CacheInvalidatedOnReplaceAspect) {
  // The match cache is keyed by join-point shape; swapping an aspect of
  // the same name (how the engine swaps navigation designs mid-session)
  // must not serve the old aspect's advice from cache.
  auto v1 = std::make_shared<aop::Aspect>("navigation");
  v1->after("custom(*)", logger("v1"));
  weaver_.register_aspect(v1);
  weaver_.execute(jp(aop::JoinPointKind::Custom, "x"), [] {});
  EXPECT_EQ(log_, (std::vector<std::string>{"v1"}));

  auto v2 = std::make_shared<aop::Aspect>("navigation");
  v2->after("custom(*)", logger("v2"));
  weaver_.replace_aspect(v2);
  weaver_.execute(jp(aop::JoinPointKind::Custom, "x"), [] {});
  EXPECT_EQ(log_, (std::vector<std::string>{"v1", "v2"}));
  // Same shape, but the replace forced a re-match.
  EXPECT_EQ(weaver_.stats().match_cache_misses, 2u);
}

TEST_F(WeaverTest, CacheInvalidatedWhenRuleAddedMidSession) {
  // Aspects are shared_ptrs and "callers may keep configuring" them after
  // registration: a rule added mid-session must reach shapes the cache
  // has already seen.
  auto live = std::make_shared<aop::Aspect>("live");
  live->before("custom(*)", logger("first"));
  weaver_.register_aspect(live);
  weaver_.execute(jp(aop::JoinPointKind::Custom, "x"), [] {});
  EXPECT_EQ(log_, (std::vector<std::string>{"first"}));

  const std::size_t revision_before = live->revision();
  live->before("custom(*)", logger("second"));  // added AFTER registration
  EXPECT_EQ(live->revision(), revision_before + 1);
  weaver_.execute(jp(aop::JoinPointKind::Custom, "x"), [] {});
  EXPECT_EQ(log_, (std::vector<std::string>{"first", "first", "second"}));
}

TEST_F(WeaverTest, RuleAdditionInvalidatesOtherAspectsShapesToo) {
  // Drift detection drops the whole cache, not just the drifting
  // aspect's shapes: a new rule may match shapes previously cached as
  // matching only other aspects.
  auto stable = std::make_shared<aop::Aspect>("stable");
  stable->before("custom(a)", logger("stable"));
  auto growing = std::make_shared<aop::Aspect>("growing");
  weaver_.register_aspect(stable);
  weaver_.register_aspect(growing);
  weaver_.execute(jp(aop::JoinPointKind::Custom, "a"), [] {});  // cached
  growing->before("custom(a)", logger("growing"));
  weaver_.execute(jp(aop::JoinPointKind::Custom, "a"), [] {});
  EXPECT_EQ(log_, (std::vector<std::string>{"stable", "stable", "growing"}));
}

TEST_F(WeaverTest, RuleAddedFromInsideAdviceTakesEffectNextDispatch) {
  // Advice that mutates its own aspect and triggers a nested dispatch:
  // the cached match set the outer dispatch is iterating must survive
  // (invalidation is deferred to the next top-level execute), and the
  // new rule applies from the next top-level dispatch on.
  auto self_growing = std::make_shared<aop::Aspect>("self-growing");
  bool grown = false;
  self_growing->before("custom(outer)", [&](aop::JoinPointContext&) {
    log_.push_back("outer");
    if (!grown) {
      grown = true;
      self_growing->before("custom(*)", logger("grown"));
      // Nested dispatch while the outer match set is live.
      weaver_.execute(jp(aop::JoinPointKind::Custom, "inner"),
                      [this] { log_.push_back("inner-base"); });
    }
  });
  weaver_.register_aspect(self_growing);
  weaver_.execute(jp(aop::JoinPointKind::Custom, "outer"), [] {});
  // The inner shape was matched fresh (after the rule was added), so the
  // new rule already fired there; the outer shape ran its original set.
  EXPECT_EQ(log_, (std::vector<std::string>{"outer", "grown", "inner-base"}));
  log_.clear();
  weaver_.execute(jp(aop::JoinPointKind::Custom, "outer"), [] {});
  EXPECT_EQ(log_, (std::vector<std::string>{"outer", "grown"}));
}

TEST_F(WeaverTest, AspectNamesListed) {
  weaver_.register_aspect(std::make_shared<aop::Aspect>("one"));
  weaver_.register_aspect(std::make_shared<aop::Aspect>("two"));
  EXPECT_EQ(weaver_.aspect_names(),
            (std::vector<std::string>{"one", "two"}));
  EXPECT_TRUE(weaver_.is_enabled("one"));
}

// The live-NavigationSession-vs-edit_context_family hazard, pinned as
// an explicit contract.
//
// Engine::open_session() hands out a session holding pointers INTO the
// engine's context families; edit_context_family mutates a family in
// place by replacing its contexts vector. A session whose active
// context points into the replaced vector therefore dangles — which is
// why the API contract (nav/roles.hpp, edit_context_family) says
// sessions over the engine's families must be QUIESCED across writer
// mutations, while snapshot-based readers are unaffected.
//
// This file pins the three well-defined sides of that contract — and
// deliberately never executes the undefined one (using a stale context
// pointer); the ASan CI job keeps the tested half honest at the memory
// level:
//
//   1. a quiesced session (leave_context before the edit) stays valid,
//      and re-entering observes the post-edit tour order through the
//      same family pointers — family OBJECTS are stable, only their
//      contexts move;
//   2. a session over value-copied families is fully isolated: the
//      engine edit never reaches the copy;
//   3. route families (Engine::route_family) are value snapshots of the
//      expansion at call time — edit_route moves the engine's truth,
//      never a previously returned copy.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "hypermedia/access.hpp"
#include "hypermedia/context.hpp"
#include "nav/pipeline.hpp"
#include "nav/route.hpp"
#include "site/session.hpp"

namespace {

namespace hm = navsep::hypermedia;
namespace nav = navsep::nav;
namespace site = navsep::site;

std::unique_ptr<nav::Engine> make_engine() {
  return nav::SitePipeline()
      .conceptual(navsep::museum::SyntheticSpec{.painters = 2,
                                                .paintings_per_painter = 3,
                                                .movements = 1,
                                                .seed = 7})
      .access(hm::AccessStructureKind::IndexedGuidedTour)
      .contexts({"ByAuthor", "ByMovement"})
      .weave()
      .serve();
}

/// Reverse the tour of ByAuthor's first context (painter-0's works).
void reverse_first_author_tour(nav::Engine& engine) {
  (void)engine.internals().edit_context_family(
      "ByAuthor", [](hm::ContextFamily& family) {
        std::vector<hm::NavigationalContext> contexts = family.contexts();
        ASSERT_FALSE(contexts.empty());
        std::vector<std::string> ids = contexts.front().node_ids();
        std::reverse(ids.begin(), ids.end());
        contexts.front() = hm::NavigationalContext(
            contexts.front().family(), contexts.front().name(),
            std::move(ids));
        family.replace_contexts(std::move(contexts));
      });
}

TEST(SessionEditContract, QuiescedSessionObservesTheEditOnReentry) {
  auto engine = make_engine();
  site::NavigationSession session = engine->open_session();

  // Pre-edit: painter-0's authored tour runs work-0 → work-1 → work-2.
  ASSERT_TRUE(
      session.enter_context("ByAuthor", "painter-0", "painter-0-work-0"));
  ASSERT_TRUE(session.next());
  EXPECT_EQ(session.current()->id(), "painter-0-work-1");

  // THE contract: leave the context before the writer mutates the
  // family. The session object itself stays alive and usable — only
  // its pointer into the (about to be replaced) contexts vector must
  // be released.
  session.leave_context();
  ASSERT_NO_FATAL_FAILURE(reverse_first_author_tour(*engine));

  // Re-entry goes through the engine-owned family objects, whose
  // addresses are stable across edits — the same session now walks the
  // REVERSED tour: work-2 → work-1 → work-0.
  ASSERT_TRUE(session.visit("painter-0-work-2"));
  ASSERT_TRUE(session.through("ByAuthor"));
  auto position = session.position();
  ASSERT_TRUE(position.has_value());
  EXPECT_EQ(position->first, 1u);
  ASSERT_TRUE(session.next());
  EXPECT_EQ(session.current()->id(), "painter-0-work-1");
  ASSERT_TRUE(session.next());
  EXPECT_EQ(session.current()->id(), "painter-0-work-0");
  EXPECT_FALSE(session.next());

  // The full trail survived the quiesce/re-enter cycle.
  EXPECT_EQ(session.trail().size(), 5u);
}

TEST(SessionEditContract, ValueCopiedFamiliesAreIsolatedFromEngineEdits) {
  auto engine = make_engine();

  // A session over a value COPY of the family is the sanctioned way to
  // keep navigating across writer mutations: the copy owns its
  // contexts, so the engine edit cannot reach it.
  const hm::ContextFamily* engine_family = nullptr;
  for (const hm::ContextFamily& family : engine->context_families()) {
    if (family.name() == "ByAuthor") engine_family = &family;
  }
  ASSERT_NE(engine_family, nullptr);
  const hm::ContextFamily copy = *engine_family;

  site::NavigationSession session(engine->navigation(), {&copy});
  ASSERT_TRUE(
      session.enter_context("ByAuthor", "painter-0", "painter-0-work-0"));

  ASSERT_NO_FATAL_FAILURE(reverse_first_author_tour(*engine));

  // Mid-context navigation continues against the pre-edit order —
  // including the active-context pointer taken BEFORE the edit.
  ASSERT_TRUE(session.next());
  EXPECT_EQ(session.current()->id(), "painter-0-work-1");
  ASSERT_TRUE(session.next());
  EXPECT_EQ(session.current()->id(), "painter-0-work-2");

  // The engine-side truth did move: a fresh engine session sees the
  // reversed tour.
  site::NavigationSession fresh = engine->open_session();
  ASSERT_TRUE(
      fresh.enter_context("ByAuthor", "painter-0", "painter-0-work-2"));
  ASSERT_TRUE(fresh.next());
  EXPECT_EQ(fresh.current()->id(), "painter-0-work-1");
}

TEST(SessionEditContract, RouteFamiliesAreValueSnapshotsAcrossRouteEdits) {
  auto engine = make_engine();
  (void)engine->internals().register_route(
      {"authored", "@ByAuthor", nav::RouteCompile::Lazy});

  // route_family returns the expansion BY VALUE — a navigable family
  // whose single context ("<name>:route") holds the sorted reachable
  // set.
  const hm::ContextFamily before = engine->route_family("authored");
  ASSERT_EQ(before.contexts().size(), 1u);
  const std::vector<std::string> reachable =
      before.contexts().front().node_ids();
  ASSERT_GE(reachable.size(), 2u);

  site::NavigationSession session(engine->navigation(), {&before});
  ASSERT_TRUE(session.enter_context("authored", "route", reachable[0]));
  ASSERT_TRUE(session.next());
  EXPECT_EQ(session.current()->id(), reachable[1]);

  // Narrow the program: the engine's expansion changes, the copy (and
  // the live session over it) do not.
  (void)engine->internals().edit_route("authored",
                                       "@ByAuthor / index-entry");
  EXPECT_EQ(before.contexts().front().node_ids(), reachable);
  ASSERT_TRUE(session.prev());
  EXPECT_EQ(session.current()->id(), reachable[0]);

  const hm::ContextFamily after = engine->route_family("authored");
  EXPECT_NE(after.contexts().front().node_ids(), reachable);
}

}  // namespace

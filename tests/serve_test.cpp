// The concurrent serving runtime: shared-ownership response bodies,
// epoch-published snapshots, the sharded ConcurrentServer, and the
// multi-session workload driver.
//
// The stress tests here are the ThreadSanitizer targets of CI's tsan
// job: readers hammer GETs while a writer mutates the linkbase
// mid-traffic, and every served body must be byte-identical to a site
// the single-threaded rebuild() oracle could have produced — no torn
// pages, no mixed epochs, no dangling bytes.
#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/navigation_aspect.hpp"
#include "nav/pipeline.hpp"
#include "serve/concurrent_server.hpp"
#include "serve/snapshot.hpp"
#include "serve/workload.hpp"
#include "site/browser.hpp"
#include "site/server.hpp"
#include "site/virtual_site.hpp"

namespace {

using navsep::hypermedia::AccessStructureKind;
namespace hm = navsep::hypermedia;
namespace nav = navsep::nav;
namespace serve = navsep::serve;
namespace site = navsep::site;

std::unique_ptr<nav::Engine> paper_engine() {
  return nav::SitePipeline()
      .paper_museum()
      .access(AccessStructureKind::IndexedGuidedTour, "picasso")
      .contexts({"ByAuthor", "ByMovement"})
      .weave()
      .serve();
}

std::unique_ptr<nav::Engine> synthetic_engine(std::size_t paintings) {
  return nav::SitePipeline()
      .conceptual(navsep::museum::SyntheticSpec{.painters = 2,
                                                .paintings_per_painter =
                                                    paintings,
                                                .movements = 2,
                                                .seed = 7})
      .access(AccessStructureKind::IndexedGuidedTour)
      .contexts({"ByAuthor", "ByMovement"})
      .weave()
      .serve();
}

/// path → bytes of the engine's current site (the oracle unit).
std::map<std::string, std::string> site_bytes(const nav::Engine& engine) {
  std::map<std::string, std::string> out;
  for (auto& [path, content] : engine.site().artifacts()) {
    out.emplace(path, content);
  }
  return out;
}

// --- satellite: shared-ownership response bodies ------------------------------

TEST(SharedBody, ResponseOutlivesRemoval) {
  site::VirtualSite vsite;
  vsite.put("a.html", "alpha bytes");
  site::HypermediaServer server(vsite, "http://host/site/");

  site::Response held = server.get("a.html");
  ASSERT_TRUE(held.ok());
  vsite.remove("a.html");
  server.invalidate("a.html");

  // The dangling-response hazard this design removes: the site entry is
  // gone, yet the held response still owns its bytes.
  EXPECT_EQ(*held.body, "alpha bytes");
  EXPECT_FALSE(server.get("a.html").ok());
}

TEST(SharedBody, ResponseKeepsOldBytesAcrossReplacement) {
  site::VirtualSite vsite;
  vsite.put("a.html", "version one");
  site::HypermediaServer server(vsite, "http://host/site/");

  site::Response old = server.get("a.html");
  vsite.put("a.html", "version two");
  server.invalidate("a.html");

  EXPECT_EQ(*old.body, "version one");
  EXPECT_EQ(*server.get("a.html").body, "version two");
}

TEST(SharedBody, EngineMutationCannotFreeHeldResponse) {
  auto engine = paper_engine();
  const std::string entry =
      navsep::core::default_href_for(engine->structure().entry());
  site::Response held = engine->server().get(entry);
  ASSERT_TRUE(held.ok());
  const std::string before = *held.body;

  // Retitle every member: the entry page re-weaves, its old bytes are
  // replaced in the site and invalidated in the cache — the held
  // response must not notice. (Copy the member list first: each
  // retitle regenerates the structure under the iteration.)
  const std::vector<hm::Member> members = engine->structure().members();
  for (const hm::Member& m : members) {
    (void)engine->internals().retitle_node(m.node_id, m.title + " (v2)");
  }
  EXPECT_EQ(*held.body, before);
  EXPECT_NE(*engine->server().get(entry).body, before);
}

TEST(SharedBody, BrowserPageStableAcrossMutationUntilRefresh) {
  auto engine = paper_engine();
  site::Browser browser = engine->open_browser();
  // Guernica's page carries a "Prev: <guitar's title>" anchor, so
  // retitling guitar re-weaves guernica.html.
  ASSERT_TRUE(browser.navigate("guernica.html"));
  ASSERT_NE(browser.page(), nullptr);
  const std::string before = *browser.page();

  (void)engine->internals().retitle_node("guitar", "Old Guitarist (mk2)");
  // Not refreshed yet: the browser still shows (valid!) old bytes.
  EXPECT_EQ(*browser.page(), before);
  browser.refresh();
  EXPECT_NE(*browser.page(), before);
  EXPECT_NE(browser.page()->find("mk2"), std::string::npos);
}

// --- satellite: coherent server stats -----------------------------------------

TEST(ServerStats, SnapshotIsCoherentAndMatchesAccessors) {
  site::VirtualSite vsite;
  vsite.put("a.html", "a");
  site::HypermediaServer server(vsite, "http://host/site/");

  (void)server.get("a.html");    // resolve + cache
  (void)server.get("a.html");    // hit
  (void)server.get("nope.html"); // miss, not cached

  site::HypermediaServer::Stats s = server.stats();
  EXPECT_EQ(s.requests, 3u);
  EXPECT_EQ(s.cache_hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.cache_size, 1u);
  EXPECT_EQ(s.requests, server.requests());
  EXPECT_EQ(s.cache_hits, server.cache_hits());
  EXPECT_EQ(s.misses, server.misses());
  EXPECT_GE(s.requests, s.cache_hits + s.misses);
}

// --- snapshot store -----------------------------------------------------------

TEST(SnapshotStore, PublishesMonotonicEpochs) {
  site::VirtualSite vsite;
  vsite.put("a.html", "a");
  navsep::xlink::TraversalGraph empty;
  serve::SnapshotStore store;
  EXPECT_EQ(store.epoch(), 0u);
  EXPECT_EQ(store.current(), nullptr);

  store.publish(std::make_shared<serve::SiteSnapshot>(vsite, empty,
                                                      "http://h/s/", 1));
  EXPECT_EQ(store.epoch(), 1u);
  ASSERT_NE(store.current(), nullptr);

  // Epochs must advance: same-epoch republication is a writer bug.
  EXPECT_THROW(store.publish(std::make_shared<serve::SiteSnapshot>(
                   vsite, empty, "http://h/s/", 1)),
               navsep::SemanticError);
  EXPECT_THROW(store.publish(nullptr), navsep::SemanticError);
}

TEST(SnapshotStore, HeldSnapshotSurvivesLaterEpochs) {
  auto engine = synthetic_engine(4);
  std::shared_ptr<const serve::SiteSnapshot> pinned =
      engine->snapshots().current();
  ASSERT_NE(pinned, nullptr);
  EXPECT_EQ(pinned->epoch(), 1u);
  const std::map<std::string, std::string> before = site_bytes(*engine);

  const std::vector<hm::Member> members = engine->structure().members();
  for (const hm::Member& m : members) {
    (void)engine->internals().retitle_node(m.node_id, m.title + "!");
  }
  EXPECT_GT(engine->snapshots().epoch(), 1u);

  // The pinned epoch-1 snapshot still serves the epoch-1 bytes.
  for (const auto& [path, bytes] : before) {
    auto body = pinned->body(path);
    ASSERT_NE(body, nullptr) << path;
    EXPECT_EQ(*body, bytes) << path;
  }
}

TEST(SiteSnapshot, RespondMatchesHypermediaServer) {
  auto engine = paper_engine();
  std::shared_ptr<const serve::SiteSnapshot> snap =
      engine->snapshots().current();
  ASSERT_NE(snap, nullptr);

  for (const std::string& path : engine->site().paths()) {
    site::Response from_snapshot = snap->respond(path);
    site::Response from_server = engine->server().get(path);
    ASSERT_TRUE(from_snapshot.ok()) << path;
    EXPECT_EQ(*from_snapshot.body, *from_server.body) << path;
    EXPECT_EQ(from_snapshot.content_type, from_server.content_type) << path;
  }
  // Absolute URI under the base, with a fragment to strip.
  site::Response absolute =
      snap->respond(engine->server().uri_of("guitar.html") + "#frag");
  ASSERT_TRUE(absolute.ok());
  EXPECT_EQ(*absolute.body, *engine->server().get("guitar.html").body);
  // Outside the base and plain 404s.
  EXPECT_FALSE(snap->respond("http://elsewhere.example/x.html").ok());
  EXPECT_FALSE(snap->respond("nope.html").ok());
}

TEST(SiteSnapshot, OutgoingArcsAreSelfContained) {
  auto engine = paper_engine();
  std::shared_ptr<const serve::SiteSnapshot> snap =
      engine->snapshots().current();

  const std::vector<serve::SnapshotArc>& arcs = snap->outgoing("guitar.html");
  ASSERT_FALSE(arcs.empty());
  const serve::SnapshotArc* next = snap->outgoing_with_role("guitar.html",
                                                            "next");
  ASSERT_NE(next, nullptr);
  EXPECT_TRUE(next->traversable);
  // Same arc set the engine's traversal graph reports for the page.
  EXPECT_EQ(arcs.size(),
            engine->internals()
                .arc_table()
                .outgoing(engine->server().uri_of("guitar.html"))
                .size());
}

// --- concurrent server --------------------------------------------------------

TEST(ConcurrentServer, RequiresAPublishedSnapshot) {
  serve::SnapshotStore empty;
  EXPECT_THROW(serve::ConcurrentServer{empty}, navsep::SemanticError);
}

TEST(ConcurrentServer, ServesByteIdenticalToEngineServer) {
  auto engine = paper_engine();
  auto server = engine->open_concurrent();
  EXPECT_EQ(server->base(), engine->server().base());

  for (const std::string& path : engine->site().paths()) {
    site::Response concurrent = server->get(path);
    site::Response single = engine->server().get(path);
    ASSERT_TRUE(concurrent.ok()) << path;
    EXPECT_EQ(*concurrent.body, *single.body) << path;
  }
  EXPECT_FALSE(server->get("nope.html").ok());

  serve::ConcurrentServer::Stats s = server->stats();
  EXPECT_EQ(s.requests, engine->site().paths().size() + 1);
  EXPECT_EQ(s.not_found, 1u);
  EXPECT_EQ(s.cached_entries, engine->site().paths().size());
}

TEST(ConcurrentServer, CacheHitsThenEpochInvalidation) {
  auto engine = paper_engine();
  auto server = engine->open_concurrent(4);

  site::Response first = server->get("guitar.html");
  site::Response second = server->get("guitar.html");
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.body, second.body);  // same shared bytes, cache hit
  serve::ConcurrentServer::Stats s = server->stats();
  EXPECT_EQ(s.cache_hits, 1u);
  EXPECT_EQ(s.stale_refills, 0u);

  // A mutation publishes a new epoch: the cached entry is stale and the
  // next GET refills it with the re-woven bytes. Retitling guernica
  // re-weaves guitar.html (its "Next: Guernica" anchor).
  (void)engine->internals().retitle_node("guernica", "Guernica (retitled)");
  site::Response third = server->get("guitar.html");
  ASSERT_TRUE(third.ok());
  EXPECT_NE(*third.body, *first.body);
  EXPECT_EQ(*third.body, *engine->server().get("guitar.html").body);
  s = server->stats();
  EXPECT_EQ(s.stale_refills, 1u);
  EXPECT_EQ(s.epoch, 2u);
  // The pre-mutation response still reads fine (shared ownership).
  EXPECT_NE(first.body->find("guitar"), std::string::npos);
}

TEST(ConcurrentServer, StaleEntryForRemovedPathRetires) {
  auto engine = synthetic_engine(3);
  auto server = engine->open_concurrent();
  // Swapping to a structure over fewer members retires pages; a path
  // cached in epoch 1 that no longer exists must 404, not serve stale.
  const std::string victim_node = engine->structure().members().back().node_id;
  const std::string victim_path = navsep::core::default_href_for(victim_node);
  ASSERT_TRUE(server->get(victim_path).ok());

  std::vector<hm::Member> members = engine->structure().members();
  members.pop_back();
  (void)engine->internals().set_access_structure(
      hm::make_access_structure(AccessStructureKind::Index,
                                engine->structure().name(), members));
  EXPECT_FALSE(engine->site().contains(victim_path));
  EXPECT_FALSE(server->get(victim_path).ok());
  EXPECT_FALSE(server->get(victim_path).ok());  // and stays 404
}

TEST(ConcurrentServer, BrowserRunsOverIt) {
  auto engine = paper_engine();
  auto server = engine->open_concurrent();
  site::Browser browser(*server, engine->internals().arc_table());

  ASSERT_TRUE(browser.navigate("guitar.html"));
  ASSERT_NE(browser.page(), nullptr);
  EXPECT_EQ(*browser.page(), *engine->server().get("guitar.html").body);
  EXPECT_TRUE(browser.follow_role("next"));
  EXPECT_TRUE(browser.back());
  EXPECT_EQ(browser.location(), server->base() + "guitar.html");
}

// --- workload driver ----------------------------------------------------------

TEST(LatencyHistogram, RecordsMergesAndAnswersQuantiles) {
  serve::LatencyHistogram h;
  h.record(100);   // bucket [64,128)
  h.record(1000);  // bucket [512,1024)
  h.record(1000);
  h.record(100000);  // bucket [65536,131072)
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.total_ns(), 102100u);
  EXPECT_EQ(h.max_ns(), 100000u);
  EXPECT_LE(h.quantile_ns(0.0), 128u);
  // Interpolated within the bucket: the median sample lives in
  // [512, 1024), so the reported quantile must too — not the bucket's
  // upper bound (the old behavior, which overstated it by up to 2x).
  EXPECT_GE(h.quantile_ns(0.5), 512u);
  EXPECT_LT(h.quantile_ns(0.5), 1024u);
  // The top quantile clamps to the observed maximum, exactly.
  EXPECT_EQ(h.quantile_ns(1.0), 100000u);

  serve::LatencyHistogram other;
  other.record(1 << 20);
  h.merge(other);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.quantile_ns(1.0), (1u << 20));
}

TEST(Workload, DrivesAllBehaviorsWithoutFailures) {
  // All-paintings structure: every node a context can reach has a woven
  // page, so a quiescent site must produce zero 404s.
  auto engine = synthetic_engine(5);
  serve::Workload workload(*engine);
  serve::WorkloadOptions options;
  options.threads = 4;
  options.steps_per_session = 64;
  serve::WorkloadResult result = workload.run(options);

  EXPECT_EQ(result.sessions, 4u);
  EXPECT_EQ(result.steps, 4u * 64u);
  EXPECT_GE(result.requests, result.steps);
  EXPECT_EQ(result.failures, 0u);
  EXPECT_EQ(result.latency.count(), result.requests);
  EXPECT_GT(result.throughput_rps, 0.0);
  EXPECT_EQ(result.server.requests, result.requests);
  ASSERT_EQ(result.by_behavior.size(), 4u);
  for (const serve::BehaviorTally& tally : result.by_behavior) {
    EXPECT_EQ(tally.sessions, 1u);
    EXPECT_GT(tally.requests, 0u) << serve::to_string(tally.behavior);
  }
}

TEST(Workload, DeterministicPerSeedOnAQuiescentSite) {
  auto engine = synthetic_engine(4);
  serve::Workload workload(*engine);
  serve::WorkloadOptions options;
  options.threads = 3;
  options.steps_per_session = 40;
  options.seed = 99;
  serve::WorkloadResult a = workload.run(options);
  serve::WorkloadResult b = workload.run(options);
  // Sessions are seeded deterministically and the site does not move, so
  // the traffic (though interleaved differently) is identical.
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_EQ(a.failures, 0u);
}

// --- the TSan stress: readers vs writers --------------------------------------

// Readers hammer the ConcurrentServer while one writer alternates the
// linkbase between two authored states (A and B) and periodically forces
// a full rebuild(). Every body any reader ever sees must be
// byte-identical to state A's or state B's bytes for that path — the
// single-threaded build is the oracle; anything else is a torn read.
TEST(ServeStress, ReadersSeeOnlyOracleBytesUnderConcurrentWrites) {
  auto engine = synthetic_engine(4);

  const std::vector<hm::AccessArc> arcs = engine->authored_arcs();
  std::size_t up_index = 0;
  for (std::size_t i = 0; i < arcs.size(); ++i) {
    if (arcs[i].role == hm::roles::kUp) {
      up_index = i;
      break;
    }
  }
  hm::AccessArc arc_a = arcs[up_index];
  arc_a.title = "Index (state A)";
  hm::AccessArc arc_b = arcs[up_index];
  arc_b.title = "Index (state B)";

  (void)engine->internals().replace_arc(up_index, arc_a);
  const std::map<std::string, std::string> oracle_a = site_bytes(*engine);
  (void)engine->internals().replace_arc(up_index, arc_b);
  const std::map<std::string, std::string> oracle_b = site_bytes(*engine);
  ASSERT_EQ(oracle_a.size(), oracle_b.size());
  (void)engine->internals().replace_arc(up_index, arc_a);

  auto server = engine->open_concurrent(8);
  std::vector<std::string> paths;
  for (const auto& [path, _] : oracle_a) paths.push_back(path);

  std::atomic<bool> done{false};
  std::atomic<std::size_t> reads{0};
  std::atomic<std::size_t> not_ok{0};
  std::atomic<std::size_t> torn{0};

  constexpr std::size_t kReaders = 4;
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (std::size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      std::size_t i = r;  // stagger the walk per reader
      while (!done.load(std::memory_order_acquire)) {
        const std::string& path = paths[i++ % paths.size()];
        site::Response resp = server->get(path);
        if (!resp.ok()) {
          not_ok.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        reads.fetch_add(1, std::memory_order_relaxed);
        const std::string& body = *resp.body;
        auto a = oracle_a.find(path);
        auto b = oracle_b.find(path);
        const bool matches = (a != oracle_a.end() && body == a->second) ||
                             (b != oracle_b.end() && body == b->second);
        if (!matches) torn.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // The single writer: the linkbase edit ping-pongs A<->B; every 8th
  // round a full rebuild() exercises the blanket path concurrently too.
  constexpr std::size_t kWrites = 48;
  for (std::size_t w = 0; w < kWrites; ++w) {
    (void)engine->internals().replace_arc(up_index,
                                          (w % 2 == 0) ? arc_b : arc_a);
    if (w % 8 == 7) engine->internals().rebuild();
    std::this_thread::yield();
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_GT(reads.load(), 0u);
  EXPECT_EQ(torn.load(), 0u);
  // The page set never changes in this workload, so no read may 404.
  EXPECT_EQ(not_ok.load(), 0u);

  // Final convergence: after the dust settles, a full single-threaded
  // rebuild and the served snapshot agree byte-for-byte on every path.
  engine->internals().rebuild();
  const std::map<std::string, std::string> final_bytes = site_bytes(*engine);
  for (const auto& [path, bytes] : final_bytes) {
    site::Response resp = server->get(path);
    ASSERT_TRUE(resp.ok()) << path;
    EXPECT_EQ(*resp.body, bytes) << path;
  }
}

// The full stack under concurrent writes: behavior sessions (including
// NavigationSession-driven ones) navigating while the writer re-authors
// navigation. 404s are tolerated (pages retire mid-flight); data races
// and torn reads are what TSan is watching for.
TEST(ServeStress, WorkloadSurvivesConcurrentLinkbaseEdits) {
  auto engine = synthetic_engine(4);
  serve::Workload workload(*engine);  // capture BEFORE the writer starts

  const std::vector<hm::AccessArc> arcs = engine->authored_arcs();
  std::atomic<bool> done{false};
  std::thread writer([&] {
    // At least a few publications are guaranteed to overlap the traffic
    // (scheduling may let the workload finish first otherwise), then
    // keep editing until the workload is done.
    std::size_t w = 0;
    while (w < 8 || !done.load(std::memory_order_acquire)) {
      hm::AccessArc edited = arcs[w % arcs.size()];
      edited.title += " (w" + std::to_string(w) + ")";
      (void)engine->internals().replace_arc(w % arcs.size(), edited);
      ++w;
      std::this_thread::yield();
    }
  });

  serve::WorkloadOptions options;
  options.threads = 4;
  options.steps_per_session = 96;
  serve::WorkloadResult result = workload.run(options);
  done.store(true, std::memory_order_release);
  writer.join();

  EXPECT_EQ(result.steps, 4u * 96u);
  EXPECT_GT(result.requests, 0u);
  EXPECT_EQ(result.latency.count(), result.requests);
  EXPECT_GT(engine->snapshots().epoch(), 1u);  // the writer really published
}

// --- Menu structures: failed mutations leave the served site coherent -----------

// Menu arcs derive from sub-structures, not a member list. A Menu built
// from visible subs is mutable these days (the engine captures the sub
// specs), but a Menu the engine cannot see into — here one whose sub is
// itself a Menu — stays opaque, and the kind-based mutation paths
// (set_access_structure(kind) / add_node / retitle_node) still refuse it
// with SemanticError. The contract under test (regression for the
// original guard): the refusal is an exception, not a crash; it happens
// BEFORE any engine state moves, so no epoch is published and a live
// ConcurrentServer keeps serving the exact pre-mutation bytes — even
// with readers in flight — and the engine accepts further (valid)
// mutations afterwards.
TEST(MenuMutations, FailedKindMutationsPublishNoEpochAndReadersStayCoherent) {
  auto engine = nav::SitePipeline()
                    .conceptual(navsep::museum::SyntheticSpec{
                        .painters = 2,
                        .paintings_per_painter = 3,
                        .movements = 2,
                        .seed = 13})
                    .access(AccessStructureKind::Index, "painter-0")
                    .contexts({"ByAuthor"})
                    .weave()
                    .serve();
  std::vector<std::unique_ptr<hm::AccessStructure>> inner;
  inner.push_back(hm::make_access_structure(AccessStructureKind::Index,
                                            "wing-a",
                                            engine->structure().members()));
  std::vector<std::unique_ptr<hm::AccessStructure>> subs;
  subs.push_back(std::make_unique<hm::Menu>("east", std::move(inner)));
  (void)engine->internals().set_access_structure(
      std::make_unique<hm::Menu>("floors", std::move(subs)));
  ASSERT_EQ(engine->structure().kind(), AccessStructureKind::Menu);

  auto server = engine->open_concurrent();
  const std::uint64_t epoch_before = server->epoch();
  const std::map<std::string, std::string> before = site_bytes(*engine);

  // A painting that is not a member (painter-1's work), for add_node.
  std::string newcomer;
  for (const auto* node : engine->navigation().nodes_of("PaintingNode")) {
    const auto& members = engine->structure().members();
    if (std::none_of(members.begin(), members.end(), [&](const auto& m) {
          return m.node_id == node->id();
        })) {
      newcomer = node->id();
      break;
    }
  }
  ASSERT_FALSE(newcomer.empty());

  // Readers keep traversing the live server while the writer's
  // mutations fail; every body they see must be the pre-mutation bytes.
  std::atomic<bool> done{false};
  std::atomic<std::size_t> torn{0};
  std::thread reader([&] {
    std::size_t i = 0;
    std::vector<std::string> paths;
    for (const auto& [path, _] : before) paths.push_back(path);
    while (!done.load(std::memory_order_acquire)) {
      const std::string& path = paths[i++ % paths.size()];
      site::Response r = server->get(path);
      if (!r.ok() || *r.body != before.at(path)) {
        torn.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  const std::string member = engine->structure().members().front().node_id;
  EXPECT_THROW((void)engine->internals().retitle_node(member, "Wing A"),
               navsep::SemanticError);
  EXPECT_THROW((void)engine->internals().add_node(newcomer),
               navsep::SemanticError);
  EXPECT_THROW((void)engine->internals().set_access_structure(
                   AccessStructureKind::Menu),
               navsep::SemanticError);
  done.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(torn.load(), 0u);
  EXPECT_EQ(server->epoch(), epoch_before);
  EXPECT_EQ(site_bytes(*engine), before);
  for (const auto& [path, bytes] : before) {
    site::Response r = server->get(path);
    ASSERT_TRUE(r.ok()) << path;
    EXPECT_EQ(*r.body, bytes) << path;
  }

  // The engine is not wedged: arc-level edits still work on a Menu and
  // publish a fresh epoch the server picks up.
  std::vector<hm::AccessArc> arcs = engine->internals().authored_arcs();
  ASSERT_FALSE(arcs.empty());
  arcs[0].title = "Ground floor";
  (void)engine->internals().replace_arc(0, arcs[0]);
  EXPECT_GT(server->epoch(), epoch_before);
  const std::string entry_page =
      navsep::core::default_href_for(arcs[0].from);
  site::Response after = server->get(entry_page);
  ASSERT_TRUE(after.ok());
  EXPECT_NE(after.body->find("Ground floor"), std::string::npos);
}

}  // namespace

// Unit tests for the XPointer framework and its schemes.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "xml/parser.hpp"
#include "xpointer/xpointer.hpp"

namespace xml = navsep::xml;
namespace xptr = navsep::xpointer;

namespace {
const char* kDoc = R"(<catalog>
  <painter id="picasso">
    <painting id="guitar"><title>The Guitar</title></painting>
    <painting id="guernica"><title>Guernica</title></painting>
  </painter>
  <painter id="dali">
    <painting id="memory"><title>Memory</title></painting>
  </painter>
</catalog>)";
}  // namespace

class XPointerTest : public ::testing::Test {
 protected:
  void SetUp() override { doc_ = xml::parse(kDoc); }
  std::unique_ptr<xml::Document> doc_;
};

// --- parsing -------------------------------------------------------------

TEST_F(XPointerTest, ParseShorthand) {
  xptr::Pointer p = xptr::parse("guitar");
  EXPECT_TRUE(p.shorthand);
  EXPECT_EQ(p.shorthand_id, "guitar");
}

TEST_F(XPointerTest, ParseSchemeParts) {
  xptr::Pointer p = xptr::parse("element(/1/2)xpointer(//painting)");
  ASSERT_EQ(p.parts.size(), 2u);
  EXPECT_EQ(p.parts[0].scheme, "element");
  EXPECT_EQ(p.parts[0].data, "/1/2");
  EXPECT_EQ(p.parts[1].scheme, "xpointer");
  EXPECT_EQ(p.parts[1].data, "//painting");
}

TEST_F(XPointerTest, ParseNestedParensInSchemeData) {
  xptr::Pointer p = xptr::parse("xpointer(//painting[contains(title,'G')])");
  ASSERT_EQ(p.parts.size(), 1u);
  EXPECT_EQ(p.parts[0].data, "//painting[contains(title,'G')]");
}

TEST_F(XPointerTest, CaretEscapes) {
  // ^( -> (   '  -> '   ^) -> )   ^^ -> ^
  xptr::Pointer p = xptr::parse("xpointer(^('^)^^)");
  ASSERT_EQ(p.parts.size(), 1u);
  EXPECT_EQ(p.parts[0].data, "(')^");
}

TEST_F(XPointerTest, ParseErrors) {
  EXPECT_THROW(xptr::parse(""), navsep::ParseError);
  EXPECT_THROW(xptr::parse("xpointer(//a"), navsep::ParseError);
  EXPECT_THROW(xptr::parse("xpointer(//a)^"), navsep::ParseError);
  EXPECT_THROW(xptr::parse("123abc"), navsep::ParseError);
}

TEST_F(XPointerTest, ToStringRoundTripsEscapes) {
  xptr::Pointer p = xptr::parse("xpointer(a^(b^)c)");
  EXPECT_EQ(p.parts[0].data, "a(b)c");
  EXPECT_EQ(p.to_string(), "xpointer(a^(b^)c)");
  xptr::Pointer again = xptr::parse(p.to_string());
  EXPECT_EQ(again.parts[0].data, "a(b)c");
}

// --- shorthand resolution ---------------------------------------------------

TEST_F(XPointerTest, ShorthandFindsById) {
  auto hits = xptr::resolve("guernica", *doc_);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0]->as_element()->child("title")->own_text(), "Guernica");
}

TEST_F(XPointerTest, ShorthandMissYieldsEmpty) {
  EXPECT_TRUE(xptr::resolve("nothere", *doc_).empty());
}

// --- element() scheme ---------------------------------------------------------

TEST_F(XPointerTest, ElementSchemeWithIdOnly) {
  auto hits = xptr::resolve("element(guitar)", *doc_);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0]->as_element()->attribute("id").value(), "guitar");
}

TEST_F(XPointerTest, ElementSchemeAbsoluteChildSequence) {
  // /1 = catalog, /1/2 = second painter, /1/2/1 = memory painting.
  auto hits = xptr::resolve("element(/1/2/1)", *doc_);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0]->as_element()->attribute("id").value(), "memory");
}

TEST_F(XPointerTest, ElementSchemeIdPlusChildSequence) {
  auto hits = xptr::resolve("element(picasso/2)", *doc_);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0]->as_element()->attribute("id").value(), "guernica");
}

TEST_F(XPointerTest, ElementSchemeOutOfRangeIsEmpty) {
  EXPECT_TRUE(xptr::resolve("element(/1/9)", *doc_).empty());
  EXPECT_TRUE(xptr::resolve("element(nope/1)", *doc_).empty());
}

TEST_F(XPointerTest, ElementSchemeRejectsZeroIndex) {
  EXPECT_THROW(xptr::resolve("element(/0)", *doc_), navsep::ParseError);
}

TEST_F(XPointerTest, ElementSchemeRejectsGarbage) {
  EXPECT_THROW(xptr::resolve("element(/1/x)", *doc_), navsep::ParseError);
}

// --- xpointer() scheme -----------------------------------------------------------

TEST_F(XPointerTest, XPointerSchemeRunsXPath) {
  auto hits = xptr::resolve("xpointer(//painting[title='Guernica'])", *doc_);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0]->as_element()->attribute("id").value(), "guernica");
}

TEST_F(XPointerTest, XPointerSchemeMultipleResults) {
  auto hits = xptr::resolve("xpointer(//painting)", *doc_);
  EXPECT_EQ(hits.size(), 3u);
}

// --- multi-part fallback ------------------------------------------------------------

TEST_F(XPointerTest, FirstNonEmptyPartWins) {
  auto hits = xptr::resolve(
      "xpointer(//sculpture)element(picasso/1)xpointer(//painting)", *doc_);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0]->as_element()->attribute("id").value(), "guitar");
}

TEST_F(XPointerTest, BrokenPartFallsThroughToNext) {
  // First part has an XPath type error; the framework skips it.
  auto hits =
      xptr::resolve("xpointer(1 div 0)element(dali)", *doc_);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0]->as_element()->attribute("id").value(), "dali");
}

TEST_F(XPointerTest, UnknownSchemeIsSkipped) {
  auto hits = xptr::resolve("madeup(whatever)element(guitar)", *doc_);
  ASSERT_EQ(hits.size(), 1u);
}

TEST_F(XPointerTest, XmlnsPartBindsPrefixForLaterParts) {
  auto nsdoc = xml::parse(R"(<r xmlns:m="urn:m"><m:thing/><thing/></r>)");
  auto hits = xptr::resolve("xmlns(m=urn:m)xpointer(//m:thing)", *nsdoc);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0]->as_element()->name().ns_uri, "urn:m");
}

TEST_F(XPointerTest, MalformedXmlnsThrows) {
  EXPECT_THROW(xptr::resolve("xmlns(nope)element(guitar)", *doc_),
               navsep::ParseError);
}

// --- resolve_element helper ------------------------------------------------------------

TEST_F(XPointerTest, ResolveElementReturnsFirstElement) {
  const xml::Element* e = xptr::resolve_element("xpointer(//painter)", *doc_);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->attribute("id").value(), "picasso");
  EXPECT_EQ(xptr::resolve_element("missing", *doc_), nullptr);
}

// Tests for the extension aspects (personalization, trail), linkbase
// discovery, and the weaver cache ablation switch.
#include <gtest/gtest.h>

#include "aop/weaver.hpp"
#include "core/navigation_aspect.hpp"
#include "core/personalization.hpp"
#include "core/renderer.hpp"
#include "core/trail.hpp"
#include "museum/museum.hpp"
#include "site/session.hpp"
#include "xlink/traversal.hpp"
#include "xml/parser.hpp"

namespace core = navsep::core;
namespace hm = navsep::hypermedia;
using navsep::museum::MuseumWorld;

namespace {

class AspectsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    world_ = MuseumWorld::paper_instance();
    nav_ = std::make_unique<hm::NavigationalModel>(world_->derive_navigation());
    igt_ = world_->paintings_structure(
        hm::AccessStructureKind::IndexedGuidedTour, *nav_, "picasso");
    weaver_.register_aspect(core::NavigationAspect::from_arcs(igt_->arcs()));
  }

  std::string compose(const char* id) {
    core::SeparatedComposer composer(weaver_);
    return composer.compose_node_page(*nav_->node(id));
  }

  std::unique_ptr<MuseumWorld> world_;
  std::unique_ptr<hm::NavigationalModel> nav_;
  std::unique_ptr<hm::AccessStructure> igt_;
  navsep::aop::Weaver weaver_;
};

}  // namespace

// --- personalization -------------------------------------------------------

TEST_F(AspectsTest, GreetingPrepended) {
  core::UserProfile profile;
  profile.name = "Ada";
  profile.greet = true;
  weaver_.register_aspect(core::PersonalizationAspect::for_profile(profile));
  std::string page = compose("guitar");
  EXPECT_NE(page.find("Welcome, Ada"), std::string::npos);
  // Greeting is the body's first rendered child.
  EXPECT_LT(page.find("Welcome, Ada"), page.find("<h1>"));
}

TEST_F(AspectsTest, CompactDetailDropsSecondaryAttributes) {
  core::UserProfile profile;
  profile.detail = core::UserProfile::Detail::Compact;
  weaver_.register_aspect(core::PersonalizationAspect::for_profile(profile));
  std::string page = compose("guitar");
  EXPECT_NE(page.find("title: "), std::string::npos);     // first kept
  EXPECT_EQ(page.find("technique: "), std::string::npos);  // rest dropped
  EXPECT_EQ(page.find("movement: "), std::string::npos);
}

TEST_F(AspectsTest, ImageSuppression) {
  core::UserProfile profile;
  profile.show_images = false;
  weaver_.register_aspect(core::PersonalizationAspect::for_profile(profile));
  std::string page = compose("guitar");
  EXPECT_EQ(page.find("<img"), std::string::npos);
}

TEST_F(AspectsTest, TourSuppressionRemovesOnlyTourAnchors) {
  core::UserProfile profile;
  profile.suppress_tours = true;
  weaver_.register_aspect(core::PersonalizationAspect::for_profile(profile));
  std::string page = compose("guernica");
  EXPECT_EQ(page.find("nav-next"), std::string::npos);
  EXPECT_EQ(page.find("nav-prev"), std::string::npos);
  EXPECT_NE(page.find("nav-up"), std::string::npos);  // index nav kept
}

TEST_F(AspectsTest, DefaultProfileChangesNothing) {
  std::string before = compose("guernica");
  weaver_.register_aspect(
      core::PersonalizationAspect::for_profile(core::UserProfile{}));
  std::string after = compose("guernica");
  EXPECT_EQ(before, after);
}

TEST_F(AspectsTest, ProfilesComposeWithNavigationByPrecedence) {
  core::UserProfile profile;
  profile.suppress_tours = true;
  // Precedence BELOW navigation (10): personalization's after-advice runs
  // BEFORE navigation's, so the tour anchors are not yet there to remove.
  weaver_.register_aspect(
      core::PersonalizationAspect::for_profile(profile, /*precedence=*/1));
  std::string page = compose("guernica");
  EXPECT_NE(page.find("nav-next"), std::string::npos);
}

// --- trail -------------------------------------------------------------------

TEST_F(AspectsTest, TrailRecordsSessionTraversals) {
  core::Trail trail;
  weaver_.register_aspect(
      core::TrailAspect::create(trail, /*render_breadcrumbs=*/false));

  hm::ContextFamily by_author = world_->by_author(*nav_);
  navsep::site::NavigationSession session(*nav_, {&by_author}, &weaver_);
  session.enter_context("ByAuthor", "picasso", "guitar");
  session.next();
  session.next();

  ASSERT_EQ(trail.size(), 3u);
  EXPECT_EQ(trail.steps()[0].node_id, "guitar");
  EXPECT_EQ(trail.steps()[0].role, "enter-context");
  EXPECT_EQ(trail.steps()[1].role, "next");
  EXPECT_EQ(trail.steps()[2].node_id, "avignon");
  EXPECT_EQ(trail.steps()[2].context, "ByAuthor:picasso");
}

TEST_F(AspectsTest, TrailBreadcrumbsRenderedIntoPages) {
  core::Trail trail;
  weaver_.register_aspect(core::TrailAspect::create(trail));

  hm::ContextFamily by_author = world_->by_author(*nav_);
  navsep::site::NavigationSession session(*nav_, {&by_author}, &weaver_);
  session.enter_context("ByAuthor", "picasso", "guitar");
  session.next();

  std::string page = compose("guernica");
  EXPECT_NE(page.find("class=\"trail\""), std::string::npos);
  EXPECT_NE(page.find("guitar \xE2\x86\x92 guernica"), std::string::npos);
}

TEST_F(AspectsTest, TrailRecentTruncates) {
  core::Trail trail;
  weaver_.register_aspect(
      core::TrailAspect::create(trail, /*render_breadcrumbs=*/false));
  hm::ContextFamily by_author = world_->by_author(*nav_);
  navsep::site::NavigationSession session(*nav_, {&by_author}, &weaver_);
  session.enter_context("ByAuthor", "picasso", "guitar");
  session.next();
  session.next();
  session.prev();
  session.prev();
  auto recent = trail.recent(2);
  ASSERT_EQ(recent.size(), 2u);
  EXPECT_EQ(recent[0], "guernica");
  EXPECT_EQ(recent[1], "guitar");
  trail.clear();
  EXPECT_EQ(trail.size(), 0u);
}

// --- linkbase discovery ---------------------------------------------------------

TEST(LinkbaseDiscovery, FindsSimpleLinkAnnouncements) {
  navsep::xml::ParseOptions opts;
  opts.base_uri = "http://h/site/page.xml";
  auto doc = navsep::xml::parse(
      R"(<page xmlns:xlink="http://www.w3.org/1999/xlink">
           <lb xlink:type="simple" xlink:href="links.xml"
               xlink:arcrole="http://www.w3.org/1999/xlink/properties/linkbase"/>
           <a xlink:type="simple" xlink:href="other.xml"/>
         </page>)",
      opts);
  auto refs = navsep::xlink::find_linkbase_references(*doc);
  ASSERT_EQ(refs.size(), 1u);
  EXPECT_EQ(refs[0], "http://h/site/links.xml");
}

TEST(LinkbaseDiscovery, FindsExtendedLinkAnnouncements) {
  navsep::xml::ParseOptions opts;
  opts.base_uri = "http://h/site/page.xml";
  auto doc = navsep::xml::parse(
      R"(<page xmlns:xlink="http://www.w3.org/1999/xlink">
           <x xlink:type="extended">
             <l xlink:type="locator" xlink:href="nav-links.xml" xlink:label="lb"/>
             <arc xlink:type="arc" xlink:to="lb"
                  xlink:arcrole="http://www.w3.org/1999/xlink/properties/linkbase"/>
           </x>
         </page>)",
      opts);
  auto refs = navsep::xlink::find_linkbase_references(*doc);
  ASSERT_EQ(refs.size(), 1u);
  EXPECT_EQ(refs[0], "http://h/site/nav-links.xml");
}

TEST(LinkbaseDiscovery, LoadWithLinkbasesMergesAndBreaksCycles) {
  navsep::xml::ParseOptions a_opts;
  a_opts.base_uri = "http://h/a.xml";
  auto a = navsep::xml::parse(
      R"(<p xmlns:xlink="http://www.w3.org/1999/xlink">
           <lb xlink:type="simple" xlink:href="b.xml"
               xlink:arcrole="http://www.w3.org/1999/xlink/properties/linkbase"/>
           <go xlink:type="simple" xlink:href="x.html"/>
         </p>)",
      a_opts);
  navsep::xml::ParseOptions b_opts;
  b_opts.base_uri = "http://h/b.xml";
  auto b = navsep::xml::parse(
      R"(<p xmlns:xlink="http://www.w3.org/1999/xlink">
           <lb xlink:type="simple" xlink:href="a.xml"
               xlink:arcrole="http://www.w3.org/1999/xlink/properties/linkbase"/>
           <go xlink:type="simple" xlink:href="y.html"/>
         </p>)",
      b_opts);

  int fetches = 0;
  auto graph = navsep::xlink::load_with_linkbases(
      *a, [&](std::string_view uri) -> const navsep::xml::Document* {
        ++fetches;
        if (uri.find("b.xml") != std::string_view::npos) return b.get();
        if (uri.find("a.xml") != std::string_view::npos) return a.get();
        return nullptr;
      });
  // a announces b; b announces a (already loaded -> not fetched again).
  EXPECT_EQ(fetches, 1);
  // Arcs from both documents present (2 simple 'go' + 2 linkbase arcs).
  EXPECT_EQ(graph.arcs().size(), 4u);
}

TEST(LinkbaseDiscovery, MissingLinkbaseSkipped) {
  navsep::xml::ParseOptions opts;
  opts.base_uri = "http://h/a.xml";
  auto a = navsep::xml::parse(
      R"(<p xmlns:xlink="http://www.w3.org/1999/xlink">
           <lb xlink:type="simple" xlink:href="gone.xml"
               xlink:arcrole="http://www.w3.org/1999/xlink/properties/linkbase"/>
         </p>)",
      opts);
  auto graph = navsep::xlink::load_with_linkbases(
      *a, [](std::string_view) { return nullptr; });
  EXPECT_EQ(graph.arcs().size(), 1u);  // just the announcement arc itself
}

// --- weaver cache ablation ---------------------------------------------------------

TEST(WeaverCache, DisablingCacheKeepsSemantics) {
  navsep::aop::Weaver weaver;
  auto aspect = std::make_shared<navsep::aop::Aspect>("t");
  int calls = 0;
  aspect->before("custom(*)",
                 [&](navsep::aop::JoinPointContext&) { ++calls; });
  weaver.register_aspect(aspect);

  navsep::aop::JoinPoint jp;
  jp.kind = navsep::aop::JoinPointKind::Custom;
  jp.subject = "x";

  weaver.set_cache_enabled(false);
  EXPECT_FALSE(weaver.cache_enabled());
  weaver.execute(jp, [] {});
  weaver.execute(jp, [] {});
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(weaver.stats().match_cache_hits, 0u);
  EXPECT_EQ(weaver.stats().match_cache_misses, 2u);

  weaver.set_cache_enabled(true);
  weaver.execute(jp, [] {});
  weaver.execute(jp, [] {});
  EXPECT_EQ(calls, 4);
  EXPECT_EQ(weaver.stats().match_cache_hits, 1u);
}

// Predictive cache warming: ConcurrentServer::warm()'s outcome
// contract (oracle bytes, silent traffic counters, admission control
// that never evicts a resident, cold-end recency placement) and the
// CacheWarmer driver (feed ranking, synchronous cycles, the background
// epoch-triggered lane, metrics export).
#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "hypermedia/access.hpp"
#include "nav/pipeline.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "oracle.hpp"
#include "serve/cache_warmer.hpp"
#include "serve/concurrent_server.hpp"

namespace {

using navsep::hypermedia::AccessStructureKind;
namespace nav = navsep::nav;
namespace obs = navsep::obs;
namespace serve = navsep::serve;
using serve::ConcurrentServer;
using WarmOutcome = ConcurrentServer::WarmOutcome;
using navsep::testing::html_pages;
using navsep::testing::profile_oracle;

std::unique_ptr<nav::Engine> synthetic_engine(std::size_t paintings) {
  return nav::SitePipeline()
      .conceptual(navsep::museum::SyntheticSpec{.painters = 2,
                                                .paintings_per_painter =
                                                    paintings,
                                                .movements = 2,
                                                .seed = 7})
      .access(AccessStructureKind::IndexedGuidedTour)
      .contexts({"ByAuthor"})
      .weave()
      .serve();
}

/// Wait until `done()` holds or ~2s elapse (background-lane tests).
bool eventually(const std::function<bool()>& done) {
  for (int i = 0; i < 2000; ++i) {
    if (done()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return done();
}

// --- warm(): the base layer ---------------------------------------------------

TEST(WarmBase, ServesOracleBytesWithoutMovingTrafficCounters) {
  auto engine = synthetic_engine(4);
  auto server = engine->open_concurrent(1);
  const std::vector<std::string> pages = html_pages(*engine);
  ASSERT_FALSE(pages.empty());
  const std::string& page = pages.front();

  const ConcurrentServer::Stats before = server->stats();
  EXPECT_EQ(server->warm(page), WarmOutcome::Warmed);
  ConcurrentServer::Stats after = server->stats();
  // Warming is invisible to organic hit-ratio math...
  EXPECT_EQ(after.requests, before.requests);
  EXPECT_EQ(after.cache_hits, before.cache_hits);
  EXPECT_EQ(after.snapshot_resolves, before.snapshot_resolves);
  EXPECT_EQ(after.not_found, before.not_found);
  // ...but fully visible to the residency ledger.
  EXPECT_EQ(after.cached_entries, before.cached_entries + 1);
  EXPECT_EQ(after.cache_inserted, before.cache_inserted + 1);
  EXPECT_EQ(after.cache_inserted, after.cached_entries + after.cache_evicted);

  // The first organic request finds the warmed entry — a hit serving
  // exactly the authored artifact's bytes, no resolve paid.
  navsep::site::Response r = server->get(page);
  ASSERT_TRUE(r.ok());
  const std::string* artifact = engine->site().get(page);
  ASSERT_NE(artifact, nullptr);
  EXPECT_EQ(*r.body, *artifact);
  after = server->stats();
  EXPECT_EQ(after.cache_hits, before.cache_hits + 1);
  EXPECT_EQ(after.snapshot_resolves, before.snapshot_resolves);
}

TEST(WarmBase, AlreadyHotWhenValidAndRefreshesAcrossEpochs) {
  auto engine = synthetic_engine(4);
  auto server = engine->open_concurrent(1);
  const std::vector<std::string> pages = html_pages(*engine);
  const std::string& page = pages.front();

  ASSERT_EQ(server->warm(page), WarmOutcome::Warmed);
  EXPECT_EQ(server->warm(page), WarmOutcome::AlreadyHot);
  // An organically cached page is just as hot.
  ASSERT_TRUE(server->get(pages.back()).ok());
  EXPECT_EQ(server->warm(pages.back()), WarmOutcome::AlreadyHot);

  // A publication stales the entry; re-warming refreshes it in place
  // (same key — no insert, no evict) and the next get hits fresh bytes.
  const auto& member = engine->structure().members().front();
  (void)engine->internals().retitle_node(member.node_id, "Warmed Again");
  EXPECT_EQ(server->warm(page), WarmOutcome::Warmed);
  const ConcurrentServer::Stats mid = server->stats();
  navsep::site::Response r = server->get(page);
  ASSERT_TRUE(r.ok());
  const std::string* artifact = engine->site().get(page);
  ASSERT_NE(artifact, nullptr);
  EXPECT_EQ(*r.body, *artifact);
  EXPECT_EQ(server->stats().snapshot_resolves, mid.snapshot_resolves);
  EXPECT_EQ(server->stats().stale_refills, mid.stale_refills);
}

// --- warm(): the overlay layer ------------------------------------------------

TEST(WarmOverlay, ServesProfileOracleBytesAndTolerates404s) {
  auto engine = synthetic_engine(4);
  engine->internals().register_profile({"tour", {"ByAuthor"}});
  auto server = engine->open_concurrent(1);
  const std::vector<std::string> pages = html_pages(*engine);
  const std::string& page = pages.front();
  const std::map<std::string, std::string> oracle =
      profile_oracle(*engine, {"tour", {"ByAuthor"}});
  ASSERT_NE(oracle.find(page), oracle.end());

  const ConcurrentServer::Stats before = server->stats();
  EXPECT_EQ(server->warm(page, "tour"), WarmOutcome::Warmed);
  EXPECT_EQ(server->warm(page, "tour"), WarmOutcome::AlreadyHot);
  ConcurrentServer::Stats after = server->stats();
  EXPECT_EQ(after.overlay_requests, before.overlay_requests);
  EXPECT_EQ(after.overlay_renders, before.overlay_renders);
  EXPECT_EQ(after.overlay_entries, before.overlay_entries + 1);

  navsep::site::Response r = server->get(page, "tour");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r.body, oracle.at(page));
  after = server->stats();
  EXPECT_EQ(after.overlay_hits, before.overlay_hits + 1);
  EXPECT_EQ(after.overlay_renders, before.overlay_renders);

  // Feeds outlive topology: a retired profile or a vanished page is
  // NotFound, never a throw (get() would throw on the profile).
  EXPECT_EQ(server->warm(page, "no-such-profile"), WarmOutcome::NotFound);
  EXPECT_EQ(server->warm("no/such/page.html", "tour"), WarmOutcome::NotFound);
  EXPECT_EQ(server->warm("no/such/page.html"), WarmOutcome::NotFound);
}

// --- warm(): admission control ------------------------------------------------

TEST(WarmAdmission, NeverEvictsAResidentForAPrediction) {
  auto engine = synthetic_engine(4);
  engine->internals().register_profile({"tour", {"ByAuthor"}});
  auto server = engine->open_concurrent(
      1, serve::CacheLimits{.base_entries_per_shard = 1,
                            .overlay_entries_per_shard = 1});
  const std::vector<std::string> pages = html_pages(*engine);
  ASSERT_GE(pages.size(), 2u);

  // Organic traffic fills the single slot; a colder prediction must be
  // refused, not admitted over it — on both layers.
  ASSERT_TRUE(server->get(pages[0]).ok());
  ASSERT_TRUE(server->get(pages[0], "tour").ok());
  EXPECT_EQ(server->warm(pages[1]), WarmOutcome::NoRoom);
  EXPECT_EQ(server->warm(pages[1], "tour"), WarmOutcome::NoRoom);

  const ConcurrentServer::Stats s = server->stats();
  EXPECT_EQ(s.cached_entries, 1u);
  EXPECT_EQ(s.cache_evicted, 0u);
  EXPECT_EQ(s.overlay_entries, 1u);
  EXPECT_EQ(s.overlay_evicted, 0u);
  // The residents survived: both serve as hits.
  const std::size_t resolves = s.snapshot_resolves;
  const std::size_t renders = s.overlay_renders;
  ASSERT_TRUE(server->get(pages[0]).ok());
  ASSERT_TRUE(server->get(pages[0], "tour").ok());
  EXPECT_EQ(server->stats().snapshot_resolves, resolves);
  EXPECT_EQ(server->stats().overlay_renders, renders);
}

TEST(WarmAdmission, RespectsByteBudgetsAndZeroCapPassthrough) {
  auto engine = synthetic_engine(4);
  const std::vector<std::string> pages = html_pages(*engine);
  ASSERT_GE(pages.size(), 2u);
  const std::string* body0 = engine->site().get(pages[0]);
  ASSERT_NE(body0, nullptr);

  // A byte budget sized to exactly one resident body: the resident
  // stays, the warm attempt reports NoRoom.
  auto sized = engine->open_concurrent(
      1, serve::CacheLimits{.base_bytes_per_shard = body0->size()});
  ASSERT_TRUE(sized->get(pages[0]).ok());
  EXPECT_EQ(sized->warm(pages[1]), WarmOutcome::NoRoom);
  EXPECT_EQ(sized->stats().cached_bytes, body0->size());

  // A body bigger than the whole budget can never be admitted, even
  // into an empty cache.
  auto tiny = engine->open_concurrent(
      1, serve::CacheLimits{.base_bytes_per_shard = 1});
  EXPECT_EQ(tiny->warm(pages[0]), WarmOutcome::NoRoom);
  EXPECT_EQ(tiny->stats().cached_entries, 0u);

  // Zero caps degenerate to pass-through: nothing retained, so nothing
  // to warm.
  auto passthrough = engine->open_concurrent(
      1, serve::CacheLimits{.base_entries_per_shard = 0,
                            .overlay_entries_per_shard = 0});
  EXPECT_EQ(passthrough->warm(pages[0]), WarmOutcome::NoRoom);
  EXPECT_EQ(passthrough->stats().cached_entries, 0u);
}

TEST(WarmAdmission, WarmedEntriesJoinTheColdEndOfRecency) {
  auto engine = synthetic_engine(4);
  auto server = engine->open_concurrent(
      1, serve::CacheLimits{.base_entries_per_shard = 2});
  const std::vector<std::string> pages = html_pages(*engine);
  ASSERT_GE(pages.size(), 3u);
  const std::string &a = pages[0], &b = pages[1], &c = pages[2];

  // A warmed entry is a prediction, so when organic traffic needs the
  // space it is the first out — even though it arrived first-ish.
  ASSERT_EQ(server->warm(a), WarmOutcome::Warmed);
  ASSERT_TRUE(server->get(b).ok());  // organic, hotter than the warmed a
  ASSERT_TRUE(server->get(c).ok());  // cap 2: evicts a, the cold prediction
  const ConcurrentServer::Stats s = server->stats();
  EXPECT_EQ(s.cached_entries, 2u);
  EXPECT_EQ(s.cache_evicted, 1u);
  const std::size_t resolves = s.snapshot_resolves;
  ASSERT_TRUE(server->get(b).ok());  // survived
  EXPECT_EQ(server->stats().snapshot_resolves, resolves);
  ASSERT_TRUE(server->get(a).ok());  // the prediction was the victim
  EXPECT_EQ(server->stats().snapshot_resolves, resolves + 1);
}

// --- CacheWarmer --------------------------------------------------------------

TEST(CacheWarmerDriver, WarmNowWalksTheFeedHottestFirstUpToTopN) {
  auto engine = synthetic_engine(4);
  engine->internals().register_profile({"tour", {"ByAuthor"}});
  auto server = engine->open_concurrent(1);
  const std::vector<std::string> pages = html_pages(*engine);
  ASSERT_GE(pages.size(), 3u);

  // A ranked feed the way TraceAggregate::top_entries hands it over:
  // hottest first, base and overlay traffic interleaved.
  serve::CacheWarmer warmer(*server, {.top_n = 3});
  warmer.set_feed({{pages[0], "", 90},
                   {pages[0], "tour", 70},
                   {pages[1], "no-such-profile", 50},
                   {pages[2], "", 10}});  // beyond top_n: must NOT warm
  const serve::CacheWarmer::WarmStats stats = warmer.warm_now();
  EXPECT_EQ(stats.cycles, 1u);
  EXPECT_EQ(stats.attempted, 3u);
  EXPECT_EQ(stats.warmed, 2u);
  EXPECT_EQ(stats.not_found, 1u);
  EXPECT_EQ(stats.attempted, stats.warmed + stats.already_hot + stats.no_room +
                                 stats.not_found);
  EXPECT_EQ(stats.last_epoch, server->epoch());

  // The warmed pair serve as hits with oracle bytes; the beyond-top_n
  // page still pays its resolve.
  const std::map<std::string, std::string> oracle =
      profile_oracle(*engine, {"tour", {"ByAuthor"}});
  const ConcurrentServer::Stats before = server->stats();
  navsep::site::Response base = server->get(pages[0]);
  navsep::site::Response over = server->get(pages[0], "tour");
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(over.ok());
  EXPECT_EQ(*base.body, *engine->site().get(pages[0]));
  EXPECT_EQ(*over.body, oracle.at(pages[0]));
  EXPECT_EQ(server->stats().snapshot_resolves, before.snapshot_resolves);
  EXPECT_EQ(server->stats().overlay_renders, before.overlay_renders);
  ASSERT_TRUE(server->get(pages[2]).ok());
  EXPECT_EQ(server->stats().snapshot_resolves, before.snapshot_resolves + 1);

  // A second cycle over the unchanged feed finds everything resident.
  const serve::CacheWarmer::WarmStats again = warmer.warm_now();
  EXPECT_EQ(again.cycles, 2u);
  EXPECT_EQ(again.already_hot, stats.already_hot + 2);
}

TEST(CacheWarmerDriver, BackgroundLaneWarmsOnceAfterEveryEpoch) {
  auto engine = synthetic_engine(4);
  auto server = engine->open_concurrent(1);
  const std::vector<std::string> pages = html_pages(*engine);
  const std::string& page = pages.front();

  serve::CacheWarmer warmer(*server, {.top_n = 8,
                                      .poll = std::chrono::milliseconds(1)});
  warmer.set_feed({{page, "", 100}});
  warmer.start();
  warmer.start();  // idempotent

  // The lane warms once immediately against the epoch current at start.
  ASSERT_TRUE(eventually([&] {
    const serve::CacheWarmer::WarmStats s = warmer.stats();
    return s.cycles >= 1 && s.last_epoch == server->epoch();
  }));
  EXPECT_GE(warmer.stats().warmed, 1u);

  // A publication stales the entry; the lane notices the new epoch and
  // re-warms without anyone calling it.
  const std::uint64_t before_epoch = server->epoch();
  const auto& member = engine->structure().members().front();
  (void)engine->internals().retitle_node(member.node_id, "Lane Refresh");
  ASSERT_GT(server->epoch(), before_epoch);
  ASSERT_TRUE(eventually([&] {
    return warmer.stats().last_epoch == server->epoch();
  }));
  warmer.stop();
  warmer.stop();  // idempotent

  const ConcurrentServer::Stats before = server->stats();
  navsep::site::Response r = server->get(page);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r.body, *engine->site().get(page));
  EXPECT_EQ(server->stats().snapshot_resolves, before.snapshot_resolves);
}

TEST(CacheWarmerDriver, RegisterMetricsExportsWarmGauges) {
  auto engine = synthetic_engine(4);
  auto server = engine->open_concurrent(1);
  const std::vector<std::string> pages = html_pages(*engine);

  serve::CacheWarmer warmer(*server);
  warmer.set_feed({{pages.front(), "", 5}});
  (void)warmer.warm_now();

  auto registry = std::make_shared<obs::Registry>();
  obs::SamplerHandle handle = warmer.register_metrics(registry);
  const obs::Registry::Snapshot snap = registry->snapshot();
  EXPECT_EQ(snap.gauges.at("serve.warm.cycles"), 1);
  EXPECT_EQ(snap.gauges.at("serve.warm.attempted"), 1);
  EXPECT_EQ(snap.gauges.at("serve.warm.warmed"), 1);
  EXPECT_EQ(snap.gauges.at("serve.warm.no_room"), 0);
  EXPECT_EQ(static_cast<std::uint64_t>(snap.gauges.at("serve.warm.epoch")),
            server->epoch());
}

}  // namespace

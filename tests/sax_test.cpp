// Unit tests for the streaming (SAX) XML parser.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/error.hpp"
#include "xml/sax.hpp"

namespace sax = navsep::xml::sax;

namespace {

/// Records every event as a readable line for order-sensitive assertions.
class RecordingHandler final : public sax::Handler {
 public:
  std::vector<std::string> events;

  void start_document() override { events.push_back("start-doc"); }
  void end_document() override { events.push_back("end-doc"); }
  void start_element(std::string_view name,
                     const sax::AttributeList& attrs) override {
    std::string line = "<" + std::string(name);
    for (const auto& [k, v] : attrs) {
      line += " " + std::string(k) + "=" + std::string(v);
    }
    events.push_back(line + ">");
  }
  void end_element(std::string_view name) override {
    events.push_back("</" + std::string(name) + ">");
  }
  void characters(std::string_view text) override {
    events.push_back("text:" + std::string(text));
  }
  void comment(std::string_view text) override {
    events.push_back("comment:" + std::string(text));
  }
  void processing_instruction(std::string_view target,
                              std::string_view data) override {
    events.push_back("pi:" + std::string(target) + ":" + std::string(data));
  }
};

}  // namespace

TEST(Sax, EventOrderIsDocumentOrder) {
  RecordingHandler h;
  sax::parse("<a x='1'><b>hi</b><c/></a>", h);
  EXPECT_EQ(h.events, (std::vector<std::string>{
                          "start-doc", "<a x=1>", "<b>", "text:hi", "</b>",
                          "<c>", "</c>", "</a>", "end-doc"}));
}

TEST(Sax, EntityReferencesSplitCharacterRuns) {
  RecordingHandler h;
  sax::parse("<t>a&amp;b</t>", h);
  EXPECT_EQ(h.events, (std::vector<std::string>{"start-doc", "<t>", "text:a",
                                                "text:&", "text:b", "</t>",
                                                "end-doc"}));
}

TEST(Sax, NumericReferencesExpand) {
  RecordingHandler h;
  sax::parse("<t>&#65;&#x42;</t>", h);
  ASSERT_GE(h.events.size(), 4u);
  EXPECT_EQ(h.events[2], "text:A");
  EXPECT_EQ(h.events[3], "text:B");
}

TEST(Sax, AttributeValuesWithReferencesAndNormalization) {
  RecordingHandler h;
  sax::parse("<t a='x&lt;y' b='tab\there'/>", h);
  EXPECT_EQ(h.events[1], "<t a=x<y b=tab here>");
}

TEST(Sax, ManyExpandedAttributesKeepStableViews) {
  // Each expanded value lives in scratch storage; pushing more must not
  // invalidate earlier views (regression guard for SSO/realloc bugs).
  std::string doc = "<t";
  for (int i = 0; i < 40; ++i) {
    doc += " a" + std::to_string(i) + "='v&amp;" + std::to_string(i) + "'";
  }
  doc += "/>";
  RecordingHandler h;
  sax::parse(doc, h);
  EXPECT_NE(h.events[1].find("a0=v&0"), std::string::npos);
  EXPECT_NE(h.events[1].find("a39=v&39"), std::string::npos);
}

TEST(Sax, CdataIsCharacters) {
  RecordingHandler h;
  sax::parse("<t><![CDATA[<raw> & text]]></t>", h);
  EXPECT_EQ(h.events[2], "text:<raw> & text");
}

TEST(Sax, CommentsAndPisDelivered) {
  RecordingHandler h;
  sax::parse("<?xml version='1.0'?><!-- head --><t><?go fast?></t>", h);
  EXPECT_EQ(h.events[1], "comment: head ");
  EXPECT_EQ(h.events[3], "pi:go:fast");
}

TEST(Sax, DoctypeSkipped) {
  RecordingHandler h;
  sax::parse("<!DOCTYPE t [<!ENTITY junk 'x'>]><t/>", h);
  EXPECT_EQ(h.events[1], "<t>");
}

TEST(Sax, WellFormednessErrors) {
  sax::Handler sink;
  EXPECT_THROW(sax::parse("<a><b></a></b>", sink), navsep::ParseError);
  EXPECT_THROW(sax::parse("<a x='1' x='2'/>", sink), navsep::ParseError);
  EXPECT_THROW(sax::parse("<a/><b/>", sink), navsep::ParseError);
  EXPECT_THROW(sax::parse("<a>&bogus;</a>", sink), navsep::ParseError);
  EXPECT_THROW(sax::parse("", sink), navsep::ParseError);
}

TEST(Sax, IsWellFormedPredicate) {
  EXPECT_TRUE(sax::is_well_formed("<a><b/>text</a>"));
  EXPECT_FALSE(sax::is_well_formed("<a>"));
  EXPECT_FALSE(sax::is_well_formed("not xml"));
}

TEST(Sax, CountingHandlerTallies) {
  sax::CountingHandler h;
  sax::parse("<r a='1'><x b='2' c='3'>hello</x><!--c--><?p d?></r>", h);
  EXPECT_EQ(h.elements, 2u);
  EXPECT_EQ(h.attributes, 3u);
  EXPECT_EQ(h.text_bytes, 5u);
  EXPECT_EQ(h.comments, 1u);
  EXPECT_EQ(h.pis, 1u);
}

TEST(Sax, AgreesWithDomParserOnEventCounts) {
  const char* doc =
      "<museum><painter id='p'><painting id='g'><title>T&amp;t</title>"
      "</painting></painter><!--note--></museum>";
  sax::CountingHandler h;
  sax::parse(doc, h);
  EXPECT_EQ(h.elements, 4u);
  EXPECT_EQ(h.attributes, 2u);
  EXPECT_EQ(h.comments, 1u);
}

// Unit tests for HTML page building and serialization.
#include <gtest/gtest.h>

#include "html/html.hpp"
#include "xml/parser.hpp"

namespace html = navsep::html;
namespace xml = navsep::xml;

TEST(HtmlPage, SkeletonHasHeadTitleBody) {
  html::Page page("The Guitar");
  std::string out = page.to_string();
  EXPECT_NE(out.find("<!DOCTYPE html>"), std::string::npos);
  EXPECT_NE(out.find("<title>The Guitar</title>"), std::string::npos);
  EXPECT_NE(out.find("<body>"), std::string::npos);
}

TEST(HtmlPage, HeadingLevelsClamped) {
  html::Page page("t");
  page.heading(1, "one");
  page.heading(9, "nine");
  page.heading(0, "zero");
  std::string out = page.to_string();
  EXPECT_NE(out.find("<h1>one</h1>"), std::string::npos);
  EXPECT_NE(out.find("<h6>nine</h6>"), std::string::npos);
  EXPECT_NE(out.find("<h1>zero</h1>"), std::string::npos);
}

TEST(HtmlPage, AnchorsCarryHref) {
  html::Page page("t");
  page.anchor("guernica.html", "Guernica");
  EXPECT_NE(page.to_string().find(R"(<a href="guernica.html">Guernica</a>)"),
            std::string::npos);
}

TEST(HtmlPage, ListsNest) {
  html::Page page("t");
  xml::Element& ul = page.unordered_list();
  page.anchor("a.html", "A", &page.list_item(ul));
  page.anchor("b.html", "B", &page.list_item(ul));
  std::string out = page.to_string();
  EXPECT_NE(out.find("<ul>"), std::string::npos);
  EXPECT_NE(out.find(R"(<li><a href="a.html">A</a></li>)"),
            std::string::npos);
}

TEST(HtmlPage, StylesheetLinkInHead) {
  html::Page page("t");
  page.stylesheet("museum.css");
  std::string out = page.to_string();
  std::size_t head_end = out.find("</head>");
  std::size_t link = out.find(R"(href="museum.css")");
  ASSERT_NE(link, std::string::npos);
  EXPECT_LT(link, head_end);
}

TEST(HtmlWrite, VoidElementsHaveNoEndTag) {
  html::Page page("t");
  page.rule();
  page.line_break();
  page.image("x.png", "x");
  std::string out = page.to_string();
  EXPECT_NE(out.find("<hr>"), std::string::npos);
  EXPECT_EQ(out.find("</hr>"), std::string::npos);
  EXPECT_EQ(out.find("</br>"), std::string::npos);
  EXPECT_EQ(out.find("</img>"), std::string::npos);
  EXPECT_EQ(out.find("<hr/>"), std::string::npos);
}

TEST(HtmlWrite, IsVoidElementList) {
  EXPECT_TRUE(html::is_void_element("br"));
  EXPECT_TRUE(html::is_void_element("img"));
  EXPECT_TRUE(html::is_void_element("link"));
  EXPECT_FALSE(html::is_void_element("div"));
  EXPECT_FALSE(html::is_void_element("a"));
}

TEST(HtmlWrite, EscapesTextAndAttributes) {
  html::Page page("t");
  page.paragraph("a < b & c");
  page.anchor("x.html?a=1&b=2", "link");
  std::string out = page.to_string();
  EXPECT_NE(out.find("a &lt; b &amp; c"), std::string::npos);
  EXPECT_NE(out.find("x.html?a=1&amp;b=2"), std::string::npos);
}

TEST(HtmlWrite, BooleanAttributesMinimized) {
  xml::Element input{xml::QName("input")};
  input.set_attribute("disabled", "disabled");
  input.set_attribute("value", "v");
  std::string out = html::write(input, /*pretty=*/false);
  EXPECT_EQ(out, R"(<input disabled value="v">)");
}

TEST(HtmlWrite, InlineContentStaysOnOneLine) {
  auto doc = xml::parse("<p>Go to <a href='x'>X</a> now</p>");
  std::string out = html::write(*doc->root(), /*pretty=*/true);
  EXPECT_EQ(out, "<p>Go to <a href=\"x\">X</a> now</p>\n");
}

TEST(HtmlWrite, BlockContentIndents) {
  auto doc = xml::parse("<div><p>a</p><p>b</p></div>");
  std::string out = html::write(*doc->root(), /*pretty=*/true);
  EXPECT_EQ(out, "<div>\n  <p>a</p>\n  <p>b</p>\n</div>\n");
}

TEST(HtmlWrite, CompactModeHasNoNewlines) {
  auto doc = xml::parse("<div><p>a</p><p>b</p></div>");
  std::string out = html::write(*doc->root(), /*pretty=*/false);
  EXPECT_EQ(out.find('\n'), std::string::npos);
}

TEST(HtmlWrite, XmlnsDeclarationsDropped) {
  auto doc = xml::parse(
      R"(<div xmlns:xlink="http://www.w3.org/1999/xlink"><p>x</p></div>)");
  std::string out = html::write(*doc->root(), false);
  EXPECT_EQ(out.find("xmlns"), std::string::npos);
}

// Unit tests for the XPath 1.0 engine: lexing, parsing, axes, predicates,
// the core function library and value conversions.
#include <gtest/gtest.h>

#include <memory>
#include <cmath>

#include "common/error.hpp"
#include "xml/parser.hpp"
#include "xpath/xpath.hpp"

namespace xml = navsep::xml;
namespace xp = navsep::xpath;

namespace {

// A museum-shaped fixture document shared by most tests.
const char* kMuseum = R"(<museum>
  <painter id="picasso" movement="cubism">
    <name>Pablo Picasso</name>
    <painting id="guitar" year="1913"><title>The Guitar</title></painting>
    <painting id="guernica" year="1937"><title>Guernica</title></painting>
    <painting id="avignon" year="1907"><title>Les Demoiselles d'Avignon</title></painting>
  </painter>
  <painter id="braque" movement="cubism">
    <name>Georges Braque</name>
    <painting id="violin" year="1910"><title>Violin and Candlestick</title></painting>
  </painter>
  <painter id="dali" movement="surrealism">
    <name>Salvador Dali</name>
    <painting id="memory" year="1931"><title>The Persistence of Memory</title></painting>
  </painter>
</museum>)";

class XPathMuseum : public ::testing::Test {
 protected:
  void SetUp() override { doc_ = xml::parse(kMuseum); }

  xp::NodeSet sel(std::string_view expr) {
    return xp::select(expr, *doc_, env_);
  }
  xp::Value ev(std::string_view expr) {
    return xp::evaluate(expr, *doc_, env_);
  }
  std::string str(std::string_view expr) { return ev(expr).to_string(); }
  double num(std::string_view expr) { return ev(expr).to_number(); }
  bool boolean(std::string_view expr) { return ev(expr).to_boolean(); }

  std::unique_ptr<xml::Document> doc_;
  xp::Environment env_;
};

}  // namespace

// --- location paths ---------------------------------------------------------

TEST_F(XPathMuseum, AbsoluteChildPath) {
  EXPECT_EQ(sel("/museum/painter").size(), 3u);
  EXPECT_EQ(sel("/museum/painter/painting").size(), 5u);
}

TEST_F(XPathMuseum, DescendantOrSelfShortcut) {
  EXPECT_EQ(sel("//painting").size(), 5u);
  EXPECT_EQ(sel("//title").size(), 5u);
  EXPECT_EQ(sel("//painter//title").size(), 5u);
}

TEST_F(XPathMuseum, WildcardSelectsAllElements) {
  EXPECT_EQ(sel("/museum/*").size(), 3u);
  EXPECT_EQ(sel("/museum/painter/*").size(), 8u);  // 3 names + 5 paintings
}

TEST_F(XPathMuseum, AttributeAxis) {
  EXPECT_EQ(sel("//painting/@id").size(), 5u);
  EXPECT_EQ(sel("//@movement").size(), 3u);
  EXPECT_EQ(str("/museum/painter[1]/@id"), "picasso");
}

TEST_F(XPathMuseum, ParentAndDotDot) {
  EXPECT_EQ(sel("//painting[@id='guitar']/..")[0],
            sel("/museum/painter[1]")[0]);
  EXPECT_EQ(sel("//title/../..").size(), 3u);  // painters, deduplicated
}

TEST_F(XPathMuseum, SelfAxisAndDot) {
  EXPECT_EQ(sel("/museum/.").size(), 1u);
  EXPECT_EQ(sel("//painting/self::painting").size(), 5u);
  EXPECT_TRUE(sel("//painting/self::painter").empty());
}

TEST_F(XPathMuseum, AncestorAxis) {
  EXPECT_EQ(sel("//title/ancestor::painter").size(), 3u);
  EXPECT_EQ(sel("//title/ancestor-or-self::*").size(),
            1u + 3u + 5u + 5u);  // museum + painters + paintings + titles
}

TEST_F(XPathMuseum, SiblingAxes) {
  EXPECT_EQ(sel("//painting[@id='guitar']/following-sibling::painting").size(),
            2u);
  EXPECT_EQ(
      sel("//painting[@id='avignon']/preceding-sibling::painting").size(),
      2u);
  EXPECT_EQ(str("//painting[@id='guernica']/preceding-sibling::*[1]/@id"),
            "guitar");
}

TEST_F(XPathMuseum, FollowingAndPrecedingAxes) {
  // following: everything after the subtree of guernica.
  xp::NodeSet f = sel("//painting[@id='guernica']/following::painting");
  ASSERT_EQ(f.size(), 3u);  // avignon, violin, memory
  EXPECT_EQ(sel("//painting[@id='violin']/preceding::painting").size(), 3u);
}

TEST_F(XPathMuseum, DescendantAxisExplicit) {
  EXPECT_EQ(sel("/museum/descendant::painting").size(), 5u);
  EXPECT_EQ(sel("/museum/descendant-or-self::museum").size(), 1u);
}

TEST_F(XPathMuseum, TextNodeTest) {
  EXPECT_EQ(sel("//name/text()").size(), 3u);
  EXPECT_EQ(sel("//name/text()")[0]->string_value(), "Pablo Picasso");
}

TEST_F(XPathMuseum, NodeTestMatchesEverything) {
  EXPECT_EQ(sel("/museum/painter[1]/node()").size(), 4u);
}

// --- predicates ---------------------------------------------------------------

TEST_F(XPathMuseum, NumericPredicateIsPosition) {
  EXPECT_EQ(str("/museum/painter[2]/@id"), "braque");
  EXPECT_EQ(str("//painting[1]/@id"), "guitar");  // first per painter, merged
  EXPECT_EQ(sel("//painting[1]").size(), 3u);
}

TEST_F(XPathMuseum, PositionAndLastFunctions) {
  EXPECT_EQ(str("/museum/painter[last()]/@id"), "dali");
  EXPECT_EQ(str("/museum/painter[position()=2]/@id"), "braque");
  EXPECT_EQ(sel("/museum/painter[position()>1]").size(), 2u);
}

TEST_F(XPathMuseum, AttributeEqualityPredicate) {
  EXPECT_EQ(sel("//painter[@movement='cubism']").size(), 2u);
  EXPECT_EQ(str("//painting[@year='1937']/@id"), "guernica");
}

TEST_F(XPathMuseum, PredicateOnStringValue) {
  EXPECT_EQ(sel("//painter[name='Salvador Dali']/@id").size(), 1u);
  EXPECT_EQ(str("//painter[name='Salvador Dali']/@id"), "dali");
}

TEST_F(XPathMuseum, ChainedPredicates) {
  EXPECT_EQ(str("//painter[@movement='cubism'][2]/@id"), "braque");
  EXPECT_EQ(sel("//painting[@year>'1910'][@year<'1935']").size(), 2u);
}

TEST_F(XPathMuseum, PredicateOnReverseAxisCountsBackwards) {
  // preceding-sibling positions count from nearest to farthest.
  EXPECT_EQ(str("//painting[@id='avignon']/preceding-sibling::painting[1]/@id"),
            "guernica");
  EXPECT_EQ(str("//painting[@id='avignon']/preceding-sibling::painting[2]/@id"),
            "guitar");
}

TEST_F(XPathMuseum, ExistencePredicate) {
  EXPECT_EQ(sel("//painter[painting]").size(), 3u);
  EXPECT_TRUE(sel("//painter[sculpture]").empty());
}

// --- operators -----------------------------------------------------------------

TEST_F(XPathMuseum, ArithmeticOperators) {
  EXPECT_DOUBLE_EQ(num("1+2*3"), 7.0);
  EXPECT_DOUBLE_EQ(num("(1+2)*3"), 9.0);
  EXPECT_DOUBLE_EQ(num("10 div 4"), 2.5);
  EXPECT_DOUBLE_EQ(num("10 mod 3"), 1.0);
  EXPECT_DOUBLE_EQ(num("-3 + 1"), -2.0);
}

TEST_F(XPathMuseum, BooleanOperatorsShortCircuit) {
  EXPECT_TRUE(boolean("true() or unknown-will-not-run-oops = 1"));
  EXPECT_TRUE(boolean("1=1 and 2=2"));
  EXPECT_FALSE(boolean("1=1 and 2=3"));
}

TEST_F(XPathMuseum, ComparisonCoercion) {
  EXPECT_TRUE(boolean("'7' = 7"));
  EXPECT_TRUE(boolean("'  7 ' < 8"));
  EXPECT_TRUE(boolean("true() = 1"));
  EXPECT_FALSE(boolean("'abc' = 7"));
}

TEST_F(XPathMuseum, NodeSetComparisonsAreExistential) {
  EXPECT_TRUE(boolean("//painting/@year = '1937'"));
  EXPECT_TRUE(boolean("//painting/@year != '1937'"));  // some other year too
  EXPECT_FALSE(boolean("//painting/@year = '1800'"));
  EXPECT_TRUE(boolean("//painting/@year > 1930"));
}

TEST_F(XPathMuseum, UnionMergesAndSortsDocumentOrder) {
  xp::NodeSet u = sel("//painting[@id='memory'] | //painting[@id='guitar']");
  ASSERT_EQ(u.size(), 2u);
  EXPECT_EQ(u[0]->as_element()->attribute("id").value(), "guitar");
  EXPECT_EQ(u[1]->as_element()->attribute("id").value(), "memory");
}

TEST_F(XPathMuseum, StarIsMultiplyAfterOperand) {
  EXPECT_DOUBLE_EQ(num("count(//painting) * 2"), 10.0);
}

// --- core functions -------------------------------------------------------------

TEST_F(XPathMuseum, CountAndSum) {
  EXPECT_DOUBLE_EQ(num("count(//painting)"), 5.0);
  EXPECT_DOUBLE_EQ(num("sum(//painting/@year)"),
                   1913 + 1937 + 1907 + 1910 + 1931);
}

TEST_F(XPathMuseum, IdFunction) {
  EXPECT_EQ(sel("id('guitar')").size(), 1u);
  EXPECT_EQ(str("id('guitar')/title"), "The Guitar");
  EXPECT_EQ(sel("id('guitar avignon')").size(), 2u);
  EXPECT_TRUE(sel("id('nope')").empty());
}

TEST_F(XPathMuseum, NameFunctions) {
  EXPECT_EQ(str("name(/museum)"), "museum");
  EXPECT_EQ(str("local-name(//painting[1])"), "painting");
  EXPECT_EQ(str("name(//@movement)"), "movement");
}

TEST_F(XPathMuseum, StringFunctions) {
  EXPECT_EQ(str("concat('a', 'b', 'c')"), "abc");
  EXPECT_TRUE(boolean("starts-with('picasso', 'pic')"));
  EXPECT_TRUE(boolean("contains('guernica', 'ern')"));
  EXPECT_EQ(str("substring-before('1907-06', '-')"), "1907");
  EXPECT_EQ(str("substring-after('1907-06', '-')"), "06");
  EXPECT_EQ(str("substring('12345', 2, 3)"), "234");
  EXPECT_EQ(str("substring('12345', 0)"), "12345");
  EXPECT_DOUBLE_EQ(num("string-length('hello')"), 5.0);
  EXPECT_EQ(str("normalize-space('  a  b ')"), "a b");
  EXPECT_EQ(str("translate('bar', 'abc', 'ABC')"), "BAr");
  EXPECT_EQ(str("translate('-abc-', '-', '')"), "abc");
}

TEST_F(XPathMuseum, SubstringEdgeCasesFromSpec) {
  EXPECT_EQ(str("substring('12345', 1.5, 2.6)"), "234");
  EXPECT_EQ(str("substring('12345', 0, 3)"), "12");
  EXPECT_EQ(str("substring('12345', 0 div 0, 3)"), "");
}

TEST_F(XPathMuseum, NumberFunctions) {
  EXPECT_DOUBLE_EQ(num("floor(2.7)"), 2.0);
  EXPECT_DOUBLE_EQ(num("ceiling(2.1)"), 3.0);
  EXPECT_DOUBLE_EQ(num("round(2.5)"), 3.0);
  EXPECT_DOUBLE_EQ(num("round(-2.5)"), -2.0);  // round() ties toward +inf
  EXPECT_DOUBLE_EQ(num("number('12')"), 12.0);
  EXPECT_TRUE(std::isnan(num("number('abc')")));
}

TEST_F(XPathMuseum, BooleanFunctions) {
  EXPECT_TRUE(boolean("not(false())"));
  EXPECT_FALSE(boolean("not(//painting)"));
  EXPECT_TRUE(boolean("boolean('x')"));
  EXPECT_FALSE(boolean("boolean('')"));
  EXPECT_FALSE(boolean("boolean(0)"));
}

TEST_F(XPathMuseum, StringOfNodeSetIsFirstNode) {
  EXPECT_EQ(str("string(//name)"), "Pablo Picasso");
  EXPECT_EQ(str("//name"), "Pablo Picasso");
}

// --- environment ------------------------------------------------------------------

TEST_F(XPathMuseum, VariablesResolve) {
  env_.variables.emplace("who", xp::Value(std::string("braque")));
  EXPECT_EQ(sel("//painter[@id=$who]/painting").size(), 1u);
}

TEST_F(XPathMuseum, UnboundVariableThrows) {
  EXPECT_THROW(ev("$nope"), navsep::SemanticError);
}

TEST_F(XPathMuseum, ExtensionFunctionsCallable) {
  env_.functions.emplace(
      "double", [](const std::vector<xp::Value>& args,
                   const xp::EvalContext&) {
        return xp::Value(args.at(0).to_number() * 2);
      });
  EXPECT_DOUBLE_EQ(num("double(21)"), 42.0);
}

TEST_F(XPathMuseum, UnknownFunctionThrows) {
  EXPECT_THROW(ev("frobnicate()"), navsep::SemanticError);
}

TEST_F(XPathMuseum, WrongArityThrows) {
  EXPECT_THROW(ev("count()"), navsep::SemanticError);
  EXPECT_THROW(ev("concat('one')"), navsep::SemanticError);
  EXPECT_THROW(ev("not(1, 2)"), navsep::SemanticError);
}

TEST_F(XPathMuseum, NamespacePrefixInNameTest) {
  auto nsdoc = xml::parse(
      R"(<r xmlns:k="urn:k"><k:item/><item/></r>)");
  xp::Environment env;
  env.namespaces.emplace("k", "urn:k");
  EXPECT_EQ(xp::select("//k:item", *nsdoc, env).size(), 1u);
  EXPECT_EQ(xp::select("//item", *nsdoc, env).size(), 1u);  // null-ns only
  EXPECT_THROW(xp::select("//unknown:item", *nsdoc, env),
               navsep::SemanticError);
}

// --- filter expressions -----------------------------------------------------------

TEST_F(XPathMuseum, FilterExpressionWithTrailingPath) {
  EXPECT_EQ(str("(//painter)[2]/@id"), "braque");
  EXPECT_EQ(sel("(//painting)[position()<=2]").size(), 2u);
  EXPECT_EQ(str("id('picasso')/painting[2]/@id"), "guernica");
}

TEST_F(XPathMuseum, ConvertingScalarToNodeSetThrows) {
  EXPECT_THROW(sel("'text'"), navsep::SemanticError);
  EXPECT_THROW(sel("1+1"), navsep::SemanticError);
}

// --- parse errors -------------------------------------------------------------------

TEST(XPathParse, SyntaxErrors) {
  EXPECT_THROW(xp::parse_expression("//painting["), navsep::ParseError);
  EXPECT_THROW(xp::parse_expression("foo::bar"), navsep::ParseError);
  EXPECT_THROW(xp::parse_expression("1 +"), navsep::ParseError);
  EXPECT_THROW(xp::parse_expression("!"), navsep::ParseError);
  EXPECT_THROW(xp::parse_expression("a b"), navsep::ParseError);
  EXPECT_THROW(xp::parse_expression(""), navsep::ParseError);
}

TEST(XPathParse, ToStringRendersNormalizedForm) {
  auto e = xp::parse_expression("//painting[@id='x']");
  EXPECT_EQ(e->to_string(),
            "/descendant-or-self::node()/child::painting"
            "[(attribute::id = 'x')]");
}

TEST(XPathParse, NumberLexing) {
  auto e = xp::parse_expression("1.5 + .25");
  xml::Document doc;
  doc.set_root(xml::QName("r"));
  xp::Environment env;
  EXPECT_DOUBLE_EQ(xp::evaluate(*e, {.node = &doc,
                                     .position = 1,
                                     .size = 1,
                                     .env = &env})
                       .to_number(),
                   1.75);
}

// --- value conversions ----------------------------------------------------------------

TEST(XPathValue, NumberToStringFormatting) {
  EXPECT_EQ(xp::number_to_string(5), "5");
  EXPECT_EQ(xp::number_to_string(5.5), "5.5");
  EXPECT_EQ(xp::number_to_string(-0.0), "0");
  EXPECT_EQ(xp::number_to_string(std::nan("")), "NaN");
  EXPECT_EQ(xp::number_to_string(INFINITY), "Infinity");
  EXPECT_EQ(xp::number_to_string(-INFINITY), "-Infinity");
}

TEST(XPathValue, StringToNumberTrimsAndRejects) {
  EXPECT_DOUBLE_EQ(xp::string_to_number("  42 "), 42.0);
  EXPECT_DOUBLE_EQ(xp::string_to_number("-1.5"), -1.5);
  EXPECT_TRUE(std::isnan(xp::string_to_number("")));
  EXPECT_TRUE(std::isnan(xp::string_to_number("12abc")));
}

TEST(XPathValue, NaNComparesUnequalToItself) {
  xp::Value nan1(std::nan(""));
  xp::Value nan2(std::nan(""));
  EXPECT_FALSE(xp::Value::compare_equal(nan1, nan2, false));
}

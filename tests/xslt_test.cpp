// Unit tests for the XSLT-lite transformer.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "xml/parser.hpp"
#include "xml/serializer.hpp"
#include "xslt/xslt.hpp"

namespace xml = navsep::xml;
namespace xslt = navsep::xslt;

namespace {

const char* kPainterXml = R"(<painter id="picasso">
  <name>Pablo Picasso</name>
  <painting id="guitar" year="1913"><title>The Guitar</title></painting>
  <painting id="guernica" year="1937"><title>Guernica</title></painting>
</painter>)";

std::string transform(std::string_view sheet_text, std::string_view input) {
  xslt::Stylesheet sheet = xslt::Stylesheet::compile_text(sheet_text);
  auto in = xml::parse(input);
  auto out = sheet.transform(*in);
  if (out->root() == nullptr) return "";
  return xml::write(*out->root(), {.pretty = false, .declaration = false});
}

constexpr const char* kXsl =
    R"(xmlns:xsl="http://www.w3.org/1999/XSL/Transform")";

}  // namespace

TEST(Xslt, ValueOfExtractsText) {
  std::string out = transform(
      std::string("<xsl:stylesheet ") + kXsl + R"(>
        <xsl:template match="/">
          <out><xsl:value-of select="//name"/></out>
        </xsl:template>
      </xsl:stylesheet>)",
      kPainterXml);
  EXPECT_EQ(out, "<out>Pablo Picasso</out>");
}

TEST(Xslt, ApplyTemplatesWithMatchRules) {
  std::string out = transform(
      std::string("<xsl:stylesheet ") + kXsl + R"(>
        <xsl:template match="/">
          <ul><xsl:apply-templates select="//painting"/></ul>
        </xsl:template>
        <xsl:template match="painting">
          <li><xsl:value-of select="title"/></li>
        </xsl:template>
      </xsl:stylesheet>)",
      kPainterXml);
  EXPECT_EQ(out, "<ul><li>The Guitar</li><li>Guernica</li></ul>");
}

TEST(Xslt, ForEachIteratesInOrder) {
  std::string out = transform(
      std::string("<xsl:stylesheet ") + kXsl + R"(>
        <xsl:template match="/">
          <r><xsl:for-each select="//painting">
            <y><xsl:value-of select="@year"/></y>
          </xsl:for-each></r>
        </xsl:template>
      </xsl:stylesheet>)",
      kPainterXml);
  EXPECT_EQ(out, "<r><y>1913</y><y>1937</y></r>");
}

TEST(Xslt, IfConditionals) {
  std::string out = transform(
      std::string("<xsl:stylesheet ") + kXsl + R"(>
        <xsl:template match="/">
          <r><xsl:for-each select="//painting">
            <xsl:if test="@year > 1920"><old/></xsl:if>
          </xsl:for-each></r>
        </xsl:template>
      </xsl:stylesheet>)",
      kPainterXml);
  EXPECT_EQ(out, "<r><old/></r>");
}

TEST(Xslt, ChooseTakesFirstTrueBranch) {
  std::string out = transform(
      std::string("<xsl:stylesheet ") + kXsl + R"(>
        <xsl:template match="/">
          <r><xsl:for-each select="//painting">
            <xsl:choose>
              <xsl:when test="@year &lt; 1920"><early/></xsl:when>
              <xsl:otherwise><late/></xsl:otherwise>
            </xsl:choose>
          </xsl:for-each></r>
        </xsl:template>
      </xsl:stylesheet>)",
      kPainterXml);
  EXPECT_EQ(out, "<r><early/><late/></r>");
}

TEST(Xslt, AttributeValueTemplates) {
  std::string out = transform(
      std::string("<xsl:stylesheet ") + kXsl + R"(>
        <xsl:template match="/">
          <r><xsl:for-each select="//painting">
            <a href="{@id}.html" n="{position()}"/>
          </xsl:for-each></r>
        </xsl:template>
      </xsl:stylesheet>)",
      kPainterXml);
  EXPECT_EQ(out,
            R"(<r><a href="guitar.html" n="1"/><a href="guernica.html" n="2"/></r>)");
}

TEST(Xslt, AvtBraceEscapes) {
  std::string out = transform(
      std::string("<xsl:stylesheet ") + kXsl + R"(>
        <xsl:template match="/"><r a="{{literal}}"/></xsl:template>
      </xsl:stylesheet>)",
      kPainterXml);
  EXPECT_EQ(out, R"(<r a="{literal}"/>)");
}

TEST(Xslt, ElementAndAttributeInstructions) {
  std::string out = transform(
      std::string("<xsl:stylesheet ") + kXsl + R"(>
        <xsl:template match="/">
          <r>
            <xsl:element name="dynamic">
              <xsl:attribute name="who"><xsl:value-of select="//@id"/></xsl:attribute>
            </xsl:element>
          </r>
        </xsl:template>
      </xsl:stylesheet>)",
      kPainterXml);
  EXPECT_EQ(out, R"(<r><dynamic who="picasso"/></r>)");
}

TEST(Xslt, CopyOfClonesSubtree) {
  std::string out = transform(
      std::string("<xsl:stylesheet ") + kXsl + R"(>
        <xsl:template match="/">
          <r><xsl:copy-of select="//painting[@id='guitar']/title"/></r>
        </xsl:template>
      </xsl:stylesheet>)",
      kPainterXml);
  EXPECT_EQ(out, "<r><title>The Guitar</title></r>");
}

TEST(Xslt, CallTemplateByName) {
  std::string out = transform(
      std::string("<xsl:stylesheet ") + kXsl + R"(>
        <xsl:template match="/">
          <r><xsl:call-template name="footer"/></r>
        </xsl:template>
        <xsl:template name="footer"><foot/></xsl:template>
      </xsl:stylesheet>)",
      kPainterXml);
  EXPECT_EQ(out, "<r><foot/></r>");
}

TEST(Xslt, PriorityBreaksConflicts) {
  std::string out = transform(
      std::string("<xsl:stylesheet ") + kXsl + R"(>
        <xsl:template match="/">
          <r><xsl:apply-templates select="//painting[1]"/></r>
        </xsl:template>
        <xsl:template match="painting" priority="2"><hi/></xsl:template>
        <xsl:template match="painting" priority="1"><lo/></xsl:template>
      </xsl:stylesheet>)",
      kPainterXml);
  EXPECT_EQ(out, "<r><hi/></r>");
}

TEST(Xslt, LaterTemplateWinsEqualPriority) {
  std::string out = transform(
      std::string("<xsl:stylesheet ") + kXsl + R"(>
        <xsl:template match="/">
          <r><xsl:apply-templates select="//painting[1]"/></r>
        </xsl:template>
        <xsl:template match="painting"><first/></xsl:template>
        <xsl:template match="painting"><second/></xsl:template>
      </xsl:stylesheet>)",
      kPainterXml);
  EXPECT_EQ(out, "<r><second/></r>");
}

TEST(Xslt, MoreSpecificPatternWinsByDefaultPriority) {
  // painting[@id='guitar'] (0.5) beats painting (0).
  std::string out = transform(
      std::string("<xsl:stylesheet ") + kXsl + R"(>
        <xsl:template match="/">
          <r><xsl:apply-templates select="//painting"/></r>
        </xsl:template>
        <xsl:template match="painting"><plain/></xsl:template>
        <xsl:template match="painting[@id='guitar']"><special/></xsl:template>
      </xsl:stylesheet>)",
      kPainterXml);
  EXPECT_EQ(out, "<r><special/><plain/></r>");
}

TEST(Xslt, BuiltinRulesWalkTreeAndCopyText) {
  // No templates at all: built-ins reduce the document to its text.
  std::string out = transform(
      std::string("<xsl:stylesheet ") + kXsl + R"(>
        <xsl:template match="name"><got><xsl:value-of select="."/></got></xsl:template>
      </xsl:stylesheet>)",
      "<r><name>X</name></r>");
  EXPECT_EQ(out, "<got>X</got>");
}

TEST(Xslt, TextInstruction) {
  std::string out = transform(
      std::string("<xsl:stylesheet ") + kXsl + R"(>
        <xsl:template match="/">
          <r><xsl:text>  kept  </xsl:text></r>
        </xsl:template>
      </xsl:stylesheet>)",
      kPainterXml);
  EXPECT_EQ(out, "<r>  kept  </r>");
}

TEST(Xslt, CompileErrors) {
  EXPECT_THROW(xslt::Stylesheet::compile_text("<notxsl/>"),
               navsep::SemanticError);
  EXPECT_THROW(xslt::Stylesheet::compile_text(
                   std::string("<xsl:stylesheet ") + kXsl +
                   "><xsl:template/></xsl:stylesheet>"),
               navsep::SemanticError);
}

TEST(Xslt, UnknownInstructionThrows) {
  auto sheet = xslt::Stylesheet::compile_text(
      std::string("<xsl:stylesheet ") + kXsl + R"(>
        <xsl:template match="/"><xsl:frobnicate/></xsl:template>
      </xsl:stylesheet>)");
  auto in = xml::parse("<r/>");
  EXPECT_THROW((void)sheet.transform(*in), navsep::SemanticError);
}

TEST(Xslt, MissingRequiredAttributeThrows) {
  auto sheet = xslt::Stylesheet::compile_text(
      std::string("<xsl:stylesheet ") + kXsl + R"(>
        <xsl:template match="/"><xsl:value-of/></xsl:template>
      </xsl:stylesheet>)");
  auto in = xml::parse("<r/>");
  EXPECT_THROW((void)sheet.transform(*in), navsep::SemanticError);
}

TEST(Xslt, CallUnknownTemplateThrows) {
  auto sheet = xslt::Stylesheet::compile_text(
      std::string("<xsl:stylesheet ") + kXsl + R"(>
        <xsl:template match="/"><xsl:call-template name="ghost"/></xsl:template>
      </xsl:stylesheet>)");
  auto in = xml::parse("<r/>");
  EXPECT_THROW((void)sheet.transform(*in), navsep::SemanticError);
}

TEST(Xslt, TransformIsReusableAcrossInputs) {
  auto sheet = xslt::Stylesheet::compile_text(
      std::string("<xsl:stylesheet ") + kXsl + R"x(>
        <xsl:template match="/"><n><xsl:value-of select="count(//painting)"/></n></xsl:template>
      </xsl:stylesheet>)x");
  auto one = xml::parse("<r><painting/></r>");
  auto three = xml::parse("<r><painting/><painting/><painting/></r>");
  EXPECT_EQ(sheet.transform(*one)->root()->string_value(), "1");
  EXPECT_EQ(sheet.transform(*three)->root()->string_value(), "3");
}

TEST(Xslt, MuseumPageEndToEnd) {
  // A miniature of the real presentation pipeline: painter XML -> HTML.
  std::string out = transform(
      std::string("<xsl:stylesheet ") + kXsl + R"(>
        <xsl:template match="/painter">
          <html>
            <body>
              <h1><xsl:value-of select="name"/></h1>
              <ul>
                <xsl:for-each select="painting">
                  <li><a href="{@id}.html"><xsl:value-of select="title"/></a></li>
                </xsl:for-each>
              </ul>
            </body>
          </html>
        </xsl:template>
      </xsl:stylesheet>)",
      kPainterXml);
  EXPECT_NE(out.find("<h1>Pablo Picasso</h1>"), std::string::npos);
  EXPECT_NE(out.find(R"(<a href="guitar.html">The Guitar</a>)"),
            std::string::npos);
  EXPECT_NE(out.find(R"(<a href="guernica.html">Guernica</a>)"),
            std::string::npos);
}

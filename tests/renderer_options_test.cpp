// Tests for renderer/aspect configuration points: custom href mappings,
// stylesheet-less pages, Menu structures through the full pipeline, and
// the default id↔href mappings' invertibility.
#include <gtest/gtest.h>

#include "aop/weaver.hpp"
#include "core/linkbase.hpp"
#include "core/navigation_aspect.hpp"
#include "core/renderer.hpp"
#include "museum/museum.hpp"

namespace core = navsep::core;
namespace hm = navsep::hypermedia;
using navsep::museum::MuseumWorld;

namespace {

class RendererOptionsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    world_ = MuseumWorld::paper_instance();
    nav_ = std::make_unique<hm::NavigationalModel>(world_->derive_navigation());
    index_ = world_->paintings_structure(hm::AccessStructureKind::Index,
                                         *nav_, "picasso");
  }
  std::unique_ptr<MuseumWorld> world_;
  std::unique_ptr<hm::NavigationalModel> nav_;
  std::unique_ptr<hm::AccessStructure> index_;
};

}  // namespace

TEST_F(RendererOptionsTest, DefaultHrefForIsStable) {
  EXPECT_EQ(core::default_href_for("guitar"), "guitar.html");
  EXPECT_EQ(core::default_href_for("index:paintings"),
            "index-paintings.html");
}

TEST_F(RendererOptionsTest, CustomHrefForFlowsThroughBothPipelines) {
  core::RenderOptions options;
  options.href_for = [](std::string_view id) {
    return "pages/" + std::string(id) + ".htm";
  };
  core::NavigationAspectOptions nav_options;
  nav_options.href_for = options.href_for;

  core::TangledRenderer tangled(*nav_, *index_, options);
  navsep::aop::Weaver weaver;
  weaver.register_aspect(
      core::NavigationAspect::from_arcs(index_->arcs(), nav_options));
  core::SeparatedComposer composer(weaver, options);

  std::string t = tangled.render_node_page(*nav_->node("guitar"));
  std::string s = composer.compose_node_page(*nav_->node("guitar"));
  EXPECT_EQ(t, s);
  EXPECT_NE(t.find("href=\"pages/index:paintings-of-picasso.htm\""),
            std::string::npos);

  auto site = tangled.render_site();
  EXPECT_EQ(site[0].path, "pages/guitar.htm");
}

TEST_F(RendererOptionsTest, StylesheetCanBeDisabled) {
  core::RenderOptions options;
  options.stylesheet_href.clear();
  core::TangledRenderer renderer(*nav_, *index_, options);
  std::string page = renderer.render_node_page(*nav_->node("guitar"));
  EXPECT_EQ(page.find("stylesheet"), std::string::npos);
  EXPECT_EQ(page.find("<link"), std::string::npos);
}

TEST_F(RendererOptionsTest, MenuStructureRendersEndToEnd) {
  // A menu of two per-painter indexes over a two-painter museum.
  auto world = MuseumWorld::synthetic(
      {.painters = 2, .paintings_per_painter = 2, .movements = 1, .seed = 1});
  auto nav = world->derive_navigation();
  std::vector<std::unique_ptr<hm::AccessStructure>> subs;
  subs.push_back(world->paintings_structure(hm::AccessStructureKind::Index,
                                            nav, "painter-0"));
  subs.push_back(world->paintings_structure(hm::AccessStructureKind::Index,
                                            nav, "painter-1"));
  hm::Menu menu("museum", std::move(subs));

  navsep::aop::Weaver weaver;
  weaver.register_aspect(core::NavigationAspect::from_arcs(menu.arcs()));
  core::SeparatedComposer composer(weaver);

  // The menu page links to both sub-index entry pages.
  std::string menu_page =
      composer.compose_structure_page(menu.page_id(), "Museum");
  EXPECT_NE(menu_page.find("index-paintings-of-painter-0.html"),
            std::string::npos);
  EXPECT_NE(menu_page.find("index-paintings-of-painter-1.html"),
            std::string::npos);

  // A sub-index page keeps its own entries plus an `up` to the menu.
  std::string sub_page = composer.compose_structure_page(
      "index:paintings-of-painter-0", "Painter 0");
  EXPECT_NE(sub_page.find("painter-0-work-0.html"), std::string::npos);
  EXPECT_NE(sub_page.find("index-museum.html"), std::string::npos);
  EXPECT_NE(sub_page.find("nav-up"), std::string::npos);

  // And the linkbase built from the menu validates + round-trips.
  auto doc = core::build_linkbase(menu);
  auto arcs = core::arcs_from_graph(core::load_linkbase(*doc));
  EXPECT_EQ(arcs.size(), menu.arcs().size());
}

TEST_F(RendererOptionsTest, ContainerClassIsConfigurable) {
  core::NavigationAspectOptions options;
  options.container_class = "site-nav";
  navsep::aop::Weaver weaver;
  weaver.register_aspect(
      core::NavigationAspect::from_arcs(index_->arcs(), options));
  core::SeparatedComposer composer(weaver);
  std::string page = composer.compose_node_page(*nav_->node("guitar"));
  EXPECT_NE(page.find("class=\"site-nav\""), std::string::npos);
  EXPECT_EQ(page.find("class=\"navigation\""), std::string::npos);
}

TEST_F(RendererOptionsTest, NodesAbsentFromModelAreSkippedInSites) {
  // An access structure can reference ids the model does not know (e.g. a
  // stale linkbase); site rendering skips them rather than crashing.
  std::vector<hm::Member> members = {{"guitar", "The Guitar"},
                                     {"ghost", "Not There"}};
  hm::Index structure("partial", std::move(members));
  core::TangledRenderer renderer(*nav_, structure);
  auto site = renderer.render_site();
  EXPECT_EQ(site.size(), 2u);  // guitar + the index page; ghost skipped
  EXPECT_EQ(site[0].path, "guitar.html");
}

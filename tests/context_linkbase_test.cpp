// End-to-end tests of contextual linkbases: navigational contexts encoded
// in XLink, read back, and woven so tour anchors are context-dependent —
// the paper's §2 scenario flowing entirely through the separated artifact.
#include <gtest/gtest.h>

#include "aop/weaver.hpp"
#include "core/linkbase.hpp"
#include "core/navigation_aspect.hpp"
#include "core/renderer.hpp"
#include "museum/museum.hpp"
#include "xlink/processor.hpp"
#include "xml/parser.hpp"
#include "xml/serializer.hpp"

namespace core = navsep::core;
namespace hm = navsep::hypermedia;
using navsep::museum::MuseumWorld;

namespace {

class ContextLinkbaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // 2 painters × 3 paintings, one movement: by-author and by-movement
    // tours genuinely differ.
    world_ = MuseumWorld::synthetic({.painters = 2,
                                     .paintings_per_painter = 3,
                                     .movements = 1,
                                     .seed = 31});
    nav_ = std::make_unique<hm::NavigationalModel>(world_->derive_navigation());
    by_author_ = std::make_unique<hm::ContextFamily>(world_->by_author(*nav_));
    by_movement_ =
        std::make_unique<hm::ContextFamily>(world_->by_movement(*nav_));
  }

  std::unique_ptr<MuseumWorld> world_;
  std::unique_ptr<hm::NavigationalModel> nav_;
  std::unique_ptr<hm::ContextFamily> by_author_;
  std::unique_ptr<hm::ContextFamily> by_movement_;
};

}  // namespace

TEST_F(ContextLinkbaseTest, OneExtendedLinkPerContext) {
  auto doc = core::build_context_linkbase(*by_author_, *nav_);
  auto links = navsep::xlink::extract(*doc);
  EXPECT_EQ(links.extended.size(), by_author_->contexts().size());
  for (const auto& issue : navsep::xlink::validate(links)) {
    EXPECT_NE(issue.severity, navsep::xlink::Issue::Severity::Error)
        << issue.message;
  }
}

TEST_F(ContextLinkbaseTest, ArcsCarryContextTags) {
  auto doc = core::build_context_linkbase(*by_author_, *nav_);
  auto graph = core::load_linkbase(*doc);
  auto arcs = core::contextual_arcs_from_graph(graph);
  ASSERT_FALSE(arcs.empty());
  // 2 painters × 3 paintings → per context 2 next + 2 prev.
  EXPECT_EQ(arcs.size(), 8u);
  for (const auto& ca : arcs) {
    EXPECT_TRUE(ca.context == "ByAuthor:painter-0" ||
                ca.context == "ByAuthor:painter-1")
        << ca.context;
  }
}

TEST_F(ContextLinkbaseTest, RoundTripsThroughSerialization) {
  auto doc = core::build_context_linkbase(*by_movement_, *nav_);
  std::string text = navsep::xml::write(*doc, {.pretty = true});
  navsep::xml::ParseOptions opts;
  opts.base_uri = doc->base_uri();
  auto reparsed = navsep::xml::parse(text, opts);
  auto graph = core::load_linkbase(*reparsed);
  auto arcs = core::contextual_arcs_from_graph(graph);
  // One movement containing all 6 paintings → 5 next + 5 prev.
  EXPECT_EQ(arcs.size(), 10u);
  EXPECT_EQ(arcs[0].context, "ByMovement:movement-0");
}

TEST_F(ContextLinkbaseTest, WovenTourAnchorsAreContextDependent) {
  // Combine BOTH families into one weaver; each page shows only the tour
  // of the context it is composed in.
  auto author_doc = core::build_context_linkbase(*by_author_, *nav_);
  auto movement_doc = core::build_context_linkbase(*by_movement_, *nav_);
  auto graph = core::load_linkbase(*author_doc);
  graph.merge(core::load_linkbase(*movement_doc));

  navsep::aop::Weaver weaver;
  weaver.register_aspect(
      core::NavigationAspect::from_contextual_linkbase(graph));
  core::SeparatedComposer composer(weaver);

  // Last painting of painter-0: no next within the author context...
  std::string in_author = composer.compose_node_page(
      *nav_->node("painter-0-work-2"), "ByAuthor:painter-0");
  EXPECT_EQ(in_author.find("nav-next"), std::string::npos);
  EXPECT_NE(in_author.find("nav-prev"), std::string::npos);

  // ...but within the movement, the next is painter-1's first work.
  std::string in_movement = composer.compose_node_page(
      *nav_->node("painter-0-work-2"), "ByMovement:movement-0");
  EXPECT_NE(in_movement.find("nav-next"), std::string::npos);

  // With no context, no tour anchors at all (context_sensitive default).
  std::string bare =
      composer.compose_node_page(*nav_->node("painter-0-work-2"));
  EXPECT_EQ(bare.find("nav-next"), std::string::npos);
  EXPECT_EQ(bare.find("nav-prev"), std::string::npos);
}

TEST_F(ContextLinkbaseTest, ContextInsensitiveOptionShowsEverything) {
  auto doc = core::build_context_linkbase(*by_author_, *nav_);
  core::NavigationAspectOptions options;
  options.context_sensitive = false;
  navsep::aop::Weaver weaver;
  weaver.register_aspect(core::NavigationAspect::from_contextual_linkbase(
      core::load_linkbase(*doc), options));
  core::SeparatedComposer composer(weaver);
  std::string bare =
      composer.compose_node_page(*nav_->node("painter-0-work-1"));
  EXPECT_NE(bare.find("nav-next"), std::string::npos);
  EXPECT_NE(bare.find("nav-prev"), std::string::npos);
}

TEST_F(ContextLinkbaseTest, LocatorTitlesComeFromTheModel) {
  auto doc = core::build_context_linkbase(*by_author_, *nav_);
  const navsep::xml::Element* first_tour =
      doc->root()->first_child_element();
  ASSERT_NE(first_tour, nullptr);
  auto locs = first_tour->children_named("loc");
  ASSERT_FALSE(locs.empty());
  auto title = locs[0]->attribute_ns(navsep::xlink::kNamespace, "title");
  ASSERT_TRUE(title.has_value());
  EXPECT_EQ(*title, nav_->node("painter-0-work-0")->title());
}

// Wire robustness under adversarial bytes.
//
// The replication contract is all-or-nothing: a replica fed garbage must
// fail loudly with repl::WireError and keep serving its previous
// snapshot — never crash, never allocate unboundedly off a corrupted
// count, never publish a torn snapshot. This suite drives that contract
// with randomized single-byte corruptions and truncations of real FULL
// and DELTA frames — both kinds carrying route tables (inline and
// carry-forward) — at three layers:
//
//   1. framed bytes: the checksum catches every flipped byte, every
//      truncation — parse_frame always throws WireError;
//   2. raw payloads: the bounds-checked decoders reject every
//      truncation — decode_full / apply_delta always throw WireError;
//   3. payloads re-framed behind a VALID checksum: the decoder either
//      throws WireError or returns a complete, pokeable snapshot — no
//      other exception type, no partial application into the previous
//      snapshot. (This layer is beyond what a real socket can deliver;
//      it exists to exercise the decoders' bounds checks directly.)
//
// CI runs this file under AddressSanitizer, so "never crash" is checked
// at the memory level, not just the exception level.
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "hypermedia/access.hpp"
#include "nav/pipeline.hpp"
#include "nav/route.hpp"
#include "repl/wire.hpp"
#include "serve/snapshot.hpp"

namespace {

using navsep::hypermedia::AccessStructureKind;
namespace nav = navsep::nav;
namespace repl = navsep::repl;
namespace serve = navsep::serve;
namespace site = navsep::site;

using SnapPtr = std::shared_ptr<const serve::SiteSnapshot>;

/// Deterministic xorshift64* — same generator as the stress suite, so
/// every "random" corruption is reproducible from the seed alone.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed ? seed : 1) {}
  std::uint64_t next() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545F4914F6CDD1Dull;
  }
  std::size_t below(std::size_t n) { return next() % n; }

 private:
  std::uint64_t state_;
};

/// Fixed corpus of real frames: one FULL and two DELTAs off the same
/// engine, all carrying route tables — the FULL and the first DELTA
/// inline (the route edit changed the table), the second DELTA as a
/// carry-forward flag (a retitle leaves routes untouched).
struct WireCorpus {
  std::string full_payload;
  std::string delta_inline_payload;  // route table shipped inline
  std::string delta_carry_payload;   // route table carried forward
  SnapPtr prev_for_inline;
  SnapPtr prev_for_carry;
};

WireCorpus make_corpus() {
  auto engine = nav::SitePipeline()
                    .paper_museum()
                    .access(AccessStructureKind::IndexedGuidedTour, "picasso")
                    .contexts({"ByAuthor", "ByMovement"})
                    .weave()
                    .serve();
  (void)engine->internals().register_route(
      {"authors", "@ByAuthor / next*", nav::RouteCompile::Aot});
  (void)engine->internals().register_route(
      {"spine", "index-entry / next*", nav::RouteCompile::Lazy});
  engine->internals().register_profile({"kiosk", {}});
  engine->internals().register_profile({"routed", {"authors", "spine"}});

  WireCorpus corpus;
  corpus.prev_for_inline = engine->internals().snapshots().current();
  corpus.full_payload = repl::encode_full(*corpus.prev_for_inline);

  (void)engine->internals().edit_route("spine",
                                       "index-entry / (next | prev)*");
  corpus.prev_for_carry = engine->internals().snapshots().current();
  corpus.delta_inline_payload =
      repl::encode_delta(*corpus.prev_for_inline, *corpus.prev_for_carry);

  const std::string first_member =
      engine->structure().members().front().node_id;
  (void)engine->internals().retitle_node(first_member, "fuzz-bait");
  corpus.delta_carry_payload = repl::encode_delta(
      *corpus.prev_for_carry, *engine->internals().snapshots().current());
  return corpus;
}

const WireCorpus& corpus() {
  static const WireCorpus c = make_corpus();
  return c;
}

/// Touch every surface of a decoded snapshot that does not require a
/// semantically valid route table: if the decoder accepted a corrupted
/// payload (content corruption can be wire-well-formed), the result
/// must still be a complete snapshot, not a torn one. Under ASan this
/// walk is the memory-safety probe.
void poke(const serve::SiteSnapshot& snapshot) {
  (void)snapshot.epoch();
  std::size_t sink = snapshot.base().size();
  for (const auto& [path, body] : snapshot.files()) {
    sink += path.size() + body->size();
    site::Response response = snapshot.respond(path);
    if (response.ok()) sink += response.body->size();
  }
  for (const nav::Profile& profile : snapshot.profiles()) {
    sink += profile.name.size();
  }
  if (snapshot.route_table() != nullptr) {
    for (const auto& entry : snapshot.route_table()->entries) {
      sink += entry.program.name.size() + entry.program.expression.size();
    }
  }
  (void)sink;
}

/// A deep byte-copy of a snapshot's artifact map — captured before a
/// fuzz run, compared after, to pin "a failed apply leaves the previous
/// snapshot untouched".
std::map<std::string, std::string> artifact_bytes(
    const serve::SiteSnapshot& snapshot) {
  std::map<std::string, std::string> out;
  for (const auto& [path, body] : snapshot.files()) out.emplace(path, *body);
  return out;
}

// --- layer 1: framed bytes ----------------------------------------------------

TEST(WireFuzz, TruncatedFramesAlwaysThrowWireError) {
  const std::pair<repl::FrameType, const std::string*> inputs[] = {
      {repl::FrameType::Full, &corpus().full_payload},
      {repl::FrameType::Delta, &corpus().delta_inline_payload},
      {repl::FrameType::Delta, &corpus().delta_carry_payload},
  };
  Rng rng(0xF0220001u);
  for (const auto& [type, payload] : inputs) {
    const std::string frame = repl::encode_frame(type, *payload);
    ASSERT_GT(frame.size(), repl::kFrameHeaderSize);
    // Every sub-header prefix, then a random sample of longer ones —
    // exhaustive truncation would be O(frame bytes) decode passes.
    std::vector<std::size_t> lengths;
    for (std::size_t n = 0; n < repl::kFrameHeaderSize; ++n) {
      lengths.push_back(n);
    }
    for (int i = 0; i < 200; ++i) {
      lengths.push_back(repl::kFrameHeaderSize +
                        rng.below(frame.size() - repl::kFrameHeaderSize));
    }
    for (const std::size_t n : lengths) {
      EXPECT_THROW((void)repl::parse_frame(frame.substr(0, n)),
                   repl::WireError)
          << "truncated to " << n << " of " << frame.size();
    }
    // …and a frame with bytes APPENDED is not "exactly one frame".
    EXPECT_THROW((void)repl::parse_frame(frame + "x"), repl::WireError);
  }
}

TEST(WireFuzz, SingleByteCorruptionsOfFramesAlwaysThrowWireError) {
  const std::pair<repl::FrameType, const std::string*> inputs[] = {
      {repl::FrameType::Full, &corpus().full_payload},
      {repl::FrameType::Delta, &corpus().delta_inline_payload},
      {repl::FrameType::Delta, &corpus().delta_carry_payload},
  };
  Rng rng(0xF0220002u);
  for (const auto& [type, payload] : inputs) {
    const std::string frame = repl::encode_frame(type, *payload);
    // Exhaust the header (every byte, two bit patterns)…
    for (std::size_t pos = 0; pos < repl::kFrameHeaderSize; ++pos) {
      for (const unsigned char bits : {0x01u, 0x80u}) {
        std::string corrupt = frame;
        corrupt[pos] = static_cast<char>(corrupt[pos] ^ bits);
        EXPECT_THROW((void)repl::parse_frame(corrupt), repl::WireError)
            << "header byte " << pos;
      }
    }
    // …and sample the payload: the checksum catches every flip.
    for (int i = 0; i < 400; ++i) {
      const std::size_t pos =
          repl::kFrameHeaderSize +
          rng.below(frame.size() - repl::kFrameHeaderSize);
      std::string corrupt = frame;
      corrupt[pos] =
          static_cast<char>(corrupt[pos] ^ (1u << rng.below(8)));
      EXPECT_THROW((void)repl::parse_frame(corrupt), repl::WireError)
          << "payload byte " << pos;
    }
  }
}

// --- layer 2: raw payload truncations -----------------------------------------

TEST(WireFuzz, TruncatedPayloadsAlwaysThrowWireError) {
  Rng rng(0xF0220003u);
  const auto check = [&rng](const std::string& payload, auto decode) {
    std::vector<std::size_t> lengths;
    for (std::size_t n = 0; n < 16 && n < payload.size(); ++n) {
      lengths.push_back(n);
    }
    for (int i = 0; i < 200; ++i) lengths.push_back(rng.below(payload.size()));
    for (const std::size_t n : lengths) {
      EXPECT_THROW((void)decode(payload.substr(0, n)), repl::WireError)
          << "truncated to " << n << " of " << payload.size();
    }
    // Trailing garbage is rejected too — r.exhausted() is the last gate.
    EXPECT_THROW((void)decode(payload + "x"), repl::WireError);
  };
  check(corpus().full_payload,
        [](std::string_view bytes) { return repl::decode_full(bytes); });
  check(corpus().delta_inline_payload, [](std::string_view bytes) {
    return repl::apply_delta(bytes, *corpus().prev_for_inline);
  });
  check(corpus().delta_carry_payload, [](std::string_view bytes) {
    return repl::apply_delta(bytes, *corpus().prev_for_carry);
  });
}

// --- layer 3: corruption behind a valid checksum ------------------------------

TEST(WireFuzz, CorruptedPayloadsNeverCrashAndNeverTearPreviousSnapshot) {
  Rng rng(0xF0220004u);
  const std::map<std::string, std::string> inline_prev_before =
      artifact_bytes(*corpus().prev_for_inline);
  const std::map<std::string, std::string> carry_prev_before =
      artifact_bytes(*corpus().prev_for_carry);

  const auto fuzz = [&rng](const std::string& payload, auto decode) {
    std::size_t rejected = 0;
    for (int i = 0; i < 300; ++i) {
      std::string corrupt = payload;
      corrupt[rng.below(corrupt.size())] ^=
          static_cast<char>(1u << rng.below(8));
      // The ONLY acceptable outcomes: WireError, or a complete
      // snapshot. Any other exception escapes and fails the test; any
      // memory error is ASan's to catch inside poke().
      try {
        SnapPtr snapshot = decode(corrupt);
        ASSERT_NE(snapshot, nullptr);
        poke(*snapshot);
      } catch (const repl::WireError&) {
        ++rejected;
      }
    }
    // Sanity: the corpus is corruption-sensitive — a fuzzer that never
    // trips a single check is fuzzing the wrong bytes.
    EXPECT_GT(rejected, 0u);
  };
  fuzz(corpus().full_payload,
       [](std::string_view bytes) { return repl::decode_full(bytes); });
  fuzz(corpus().delta_inline_payload, [](std::string_view bytes) {
    return repl::apply_delta(bytes, *corpus().prev_for_inline);
  });
  fuzz(corpus().delta_carry_payload, [](std::string_view bytes) {
    return repl::apply_delta(bytes, *corpus().prev_for_carry);
  });

  // No partial application: the base snapshots every delta was applied
  // against still hold exactly their original bytes.
  EXPECT_EQ(artifact_bytes(*corpus().prev_for_inline), inline_prev_before);
  EXPECT_EQ(artifact_bytes(*corpus().prev_for_carry), carry_prev_before);
}

// A corrupted count field must be rejected BEFORE the decoder sizes any
// container from it: a count claiming more records than the remaining
// payload could encode throws WireError without attempting the
// allocation. (A 256M-record route table "announced" by a 200-byte
// payload must not resize() gigabytes first.) This pins the guard
// directly, independent of whatever bytes the random fuzz happens to
// hit.
TEST(WireFuzz, OverstatedRecordCountsAreRejectedWithoutAllocation) {
  // Minimal FULL payload prefix, hand-assembled: epoch, base, empty
  // file and traversal tables, no overlay inputs — positioned right
  // before the two pre-allocating decoders (profile table, route
  // table).
  std::string prefix;
  const auto u32 = [](std::string& out, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
    }
  };
  for (int i = 0; i < 8; ++i) prefix.push_back('\0');  // epoch u64 = 0
  u32(prefix, 1);
  prefix.push_back('/');     // base = "/"
  u32(prefix, 0);            // no files
  u32(prefix, 0);            // no traversal buckets
  prefix.push_back('\0');    // no overlay inputs

  // A profile table announcing ~256M records backed by zero bytes.
  std::string huge_profiles = prefix;
  u32(huge_profiles, (1u << 28) - 1);
  EXPECT_THROW((void)repl::decode_full(huge_profiles), repl::WireError);

  // An empty profile table, then a route table announcing ~256M
  // entries backed by zero bytes.
  std::string huge_routes = prefix;
  u32(huge_routes, 0);           // no profiles
  huge_routes.push_back('\x01');  // route table present
  u32(huge_routes, (1u << 28) - 1);
  EXPECT_THROW((void)repl::decode_full(huge_routes), repl::WireError);
}

}  // namespace

// Unit + property tests for the OOHDM-style hypermedia model: conceptual
// schema/instances, navigational views, access structures, contexts.
#include <gtest/gtest.h>

#include <set>

#include "hypermedia/access.hpp"
#include "hypermedia/context.hpp"
#include "hypermedia/conceptual.hpp"
#include "hypermedia/navigational.hpp"

namespace hm = navsep::hypermedia;

namespace {

/// A fixture with the museum-shaped schema and a few instances.
class ModelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    schema_.add_class("Painter", {{"name", true}});
    schema_.add_class("Painting", {{"title", true}, {"movement", false}});
    schema_.add_relationship("painted", "Painter", "Painting",
                             hm::Cardinality::Many, "painted-by");
    model_ = std::make_unique<hm::ConceptualModel>(schema_);

    auto& picasso = model_->create("Painter", "picasso");
    picasso.set_attribute("name", "Pablo Picasso");
    auto& dali = model_->create("Painter", "dali");
    dali.set_attribute("name", "Salvador Dali");

    for (const char* id : {"guitar", "guernica", "avignon"}) {
      auto& p = model_->create("Painting", id);
      p.set_attribute("title", id);
      p.set_attribute("movement", "cubism");
      model_->relate(picasso, "painted", p);
    }
    auto& memory = model_->create("Painting", "memory");
    memory.set_attribute("title", "The Persistence of Memory");
    memory.set_attribute("movement", "surrealism");
    model_->relate(dali, "painted", memory);

    nav_schema_.add_node_class(
        hm::NodeClassDef{"PainterNode", "Painter", {"name"}, "name"});
    nav_schema_.add_node_class(
        hm::NodeClassDef{"PaintingNode", "Painting", {"title", "movement"},
                         "title"});
    nav_schema_.add_link_class(
        hm::LinkClassDef{"works", "painted", "PainterNode", "PaintingNode"});
  }

  hm::ConceptualSchema schema_;
  std::unique_ptr<hm::ConceptualModel> model_;
  hm::NavigationalSchema nav_schema_;
};

}  // namespace

// --- conceptual model ---------------------------------------------------------

TEST_F(ModelTest, EntitiesStoreAttributes) {
  const hm::Entity* p = model_->find("picasso");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->attribute("name").value(), "Pablo Picasso");
  EXPECT_FALSE(p->attribute("missing").has_value());
  EXPECT_EQ(p->attribute_or("missing", "x"), "x");
}

TEST_F(ModelTest, SchemaRejectsUnknownAttribute) {
  hm::Entity* p = model_->find("picasso");
  EXPECT_THROW(p->set_attribute("height", "1.63"), navsep::SemanticError);
}

TEST_F(ModelTest, SchemaRejectsUnknownClassAndDuplicateId) {
  EXPECT_THROW(model_->create("Sculpture", "x"), navsep::SemanticError);
  EXPECT_THROW(model_->create("Painter", "picasso"), navsep::SemanticError);
}

TEST_F(ModelTest, RelationshipsAreTypedAndInverted) {
  const hm::Entity* picasso = model_->find("picasso");
  EXPECT_EQ(picasso->related("painted").size(), 3u);
  const hm::Entity* guitar = model_->find("guitar");
  ASSERT_EQ(guitar->related("painted-by").size(), 1u);
  EXPECT_EQ(guitar->related("painted-by")[0]->id(), "picasso");
}

TEST_F(ModelTest, RelateRejectsWrongClasses) {
  hm::Entity* guitar = model_->find("guitar");
  hm::Entity* dali = model_->find("dali");
  EXPECT_THROW(model_->relate(*guitar, "painted", *dali),
               navsep::SemanticError);
  EXPECT_THROW(model_->relate(*dali, "nonsense", *guitar),
               navsep::SemanticError);
}

TEST_F(ModelTest, RelateIsIdempotent) {
  hm::Entity* picasso = model_->find("picasso");
  hm::Entity* guitar = model_->find("guitar");
  model_->relate(*picasso, "painted", *guitar);
  EXPECT_EQ(picasso->related("painted").size(), 3u);
}

TEST_F(ModelTest, ToOneCardinalityEnforced) {
  hm::ConceptualSchema s;
  s.add_class("A");
  s.add_class("B");
  s.add_relationship("owns", "A", "B", hm::Cardinality::One);
  hm::ConceptualModel m(s);
  auto& a = m.create("A", "a");
  auto& b1 = m.create("B", "b1");
  auto& b2 = m.create("B", "b2");
  m.relate(a, "owns", b1);
  EXPECT_THROW(m.relate(a, "owns", b2), navsep::SemanticError);
}

TEST_F(ModelTest, EntitiesOfFiltersByClass) {
  EXPECT_EQ(model_->entities_of("Painter").size(), 2u);
  EXPECT_EQ(model_->entities_of("Painting").size(), 4u);
  EXPECT_TRUE(model_->entities_of("Movement").empty());
}

// --- navigational model ----------------------------------------------------------

TEST_F(ModelTest, DeriveCreatesNodesForViewedClasses) {
  hm::NavigationalModel nav =
      hm::NavigationalModel::derive(*model_, nav_schema_);
  EXPECT_EQ(nav.nodes().size(), 6u);  // 2 painters + 4 paintings
  EXPECT_EQ(nav.nodes_of("PainterNode").size(), 2u);
  EXPECT_EQ(nav.nodes_of("PaintingNode").size(), 4u);
}

TEST_F(ModelTest, DeriveCreatesLinksForViewedRelationships) {
  hm::NavigationalModel nav =
      hm::NavigationalModel::derive(*model_, nav_schema_);
  EXPECT_EQ(nav.links().size(), 4u);  // 3 + 1 painted pairs
  auto from_picasso = nav.links_from("picasso", "works");
  EXPECT_EQ(from_picasso.size(), 3u);
  EXPECT_TRUE(nav.links_from("guitar").empty());  // no reverse link class
}

TEST_F(ModelTest, NodeTitleUsesTitleAttribute) {
  hm::NavigationalModel nav =
      hm::NavigationalModel::derive(*model_, nav_schema_);
  EXPECT_EQ(nav.node("picasso")->title(), "Pablo Picasso");
  EXPECT_EQ(nav.node("memory")->title(), "The Persistence of Memory");
}

TEST_F(ModelTest, VisibleAttributesFollowPerspective) {
  hm::NavigationalModel nav =
      hm::NavigationalModel::derive(*model_, nav_schema_);
  auto attrs = nav.node("guitar")->visible_attributes();
  ASSERT_EQ(attrs.size(), 2u);
  EXPECT_EQ(attrs[0].first, "title");
  EXPECT_EQ(attrs[1].first, "movement");
}

TEST_F(ModelTest, DeriveRejectsDanglingSchema) {
  hm::NavigationalSchema bad;
  bad.add_node_class(hm::NodeClassDef{"X", "Ghost", {}, ""});
  EXPECT_THROW(hm::NavigationalModel::derive(*model_, bad),
               navsep::SemanticError);
}

// --- access structures --------------------------------------------------------------

namespace {
std::vector<hm::Member> three_members() {
  return {{"guitar", "The Guitar"},
          {"guernica", "Guernica"},
          {"avignon", "Les Demoiselles d'Avignon"}};
}

std::size_t count_role(const std::vector<hm::AccessArc>& arcs,
                       std::string_view role) {
  std::size_t n = 0;
  for (const auto& a : arcs) {
    if (a.role == role) ++n;
  }
  return n;
}
}  // namespace

TEST(AccessIndex, IsAStar) {
  hm::Index index("paintings", three_members());
  auto arcs = index.arcs();
  EXPECT_EQ(arcs.size(), 6u);  // 3 entries + 3 ups
  EXPECT_EQ(count_role(arcs, hm::roles::kIndexEntry), 3u);
  EXPECT_EQ(count_role(arcs, hm::roles::kUp), 3u);
  EXPECT_EQ(index.entry(), "index:paintings");
  // Every entry arc starts at the index page.
  for (const auto& a : arcs) {
    if (a.role == hm::roles::kIndexEntry) {
      EXPECT_EQ(a.from, index.page_id());
    }
    if (a.role == hm::roles::kUp) {
      EXPECT_EQ(a.to, index.page_id());
    }
  }
}

TEST(AccessGuidedTour, IsAChain) {
  hm::GuidedTour tour("paintings", three_members());
  auto arcs = tour.arcs();
  EXPECT_EQ(arcs.size(), 4u);  // 2 next + 2 prev
  EXPECT_EQ(count_role(arcs, hm::roles::kNext), 2u);
  EXPECT_EQ(count_role(arcs, hm::roles::kPrev), 2u);
  EXPECT_EQ(tour.entry(), "guitar");
  // Chain covers members in order exactly once.
  std::vector<std::string> chain;
  chain.push_back("guitar");
  std::string cur = "guitar";
  for (;;) {
    bool advanced = false;
    for (const auto& a : arcs) {
      if (a.role == hm::roles::kNext && a.from == cur) {
        cur = a.to;
        chain.push_back(cur);
        advanced = true;
        break;
      }
    }
    if (!advanced) break;
  }
  EXPECT_EQ(chain,
            (std::vector<std::string>{"guitar", "guernica", "avignon"}));
}

TEST(AccessGuidedTour, CircularClosesTheRing) {
  hm::GuidedTour ring("p", three_members(), /*circular=*/true);
  auto arcs = ring.arcs();
  EXPECT_EQ(count_role(arcs, hm::roles::kNext), 3u);
  bool wraps = false;
  for (const auto& a : arcs) {
    if (a.role == hm::roles::kNext && a.from == "avignon" &&
        a.to == "guitar") {
      wraps = true;
    }
  }
  EXPECT_TRUE(wraps);
}

TEST(AccessGuidedTour, EmptyTourHasNoEntry) {
  hm::GuidedTour empty("none", {});
  EXPECT_TRUE(empty.arcs().empty());
  EXPECT_THROW((void)empty.entry(), navsep::SemanticError);
}

TEST(AccessIgt, IsStarPlusChain) {
  hm::IndexedGuidedTour igt("paintings", three_members());
  auto arcs = igt.arcs();
  // 6 star arcs + 4 chain arcs — the paper's Figure 2(b).
  EXPECT_EQ(arcs.size(), 10u);
  EXPECT_EQ(count_role(arcs, hm::roles::kIndexEntry), 3u);
  EXPECT_EQ(count_role(arcs, hm::roles::kUp), 3u);
  EXPECT_EQ(count_role(arcs, hm::roles::kNext), 2u);
  EXPECT_EQ(count_role(arcs, hm::roles::kPrev), 2u);
}

TEST(AccessMenu, LinksSubStructureEntries) {
  std::vector<std::unique_ptr<hm::AccessStructure>> subs;
  subs.push_back(std::make_unique<hm::Index>(
      "cubism", std::vector<hm::Member>{{"guitar", "g"}}));
  subs.push_back(std::make_unique<hm::GuidedTour>(
      "surrealism", std::vector<hm::Member>{{"memory", "m"}}));
  hm::Menu menu("movements", std::move(subs));
  auto arcs = menu.arcs();
  EXPECT_EQ(count_role(arcs, hm::roles::kMenuEntry), 2u);
  // Sub-structure arcs are included.
  EXPECT_EQ(count_role(arcs, hm::roles::kIndexEntry), 1u);
  EXPECT_EQ(menu.members().size(), 2u);
  EXPECT_EQ(menu.members()[0].node_id, "index:cubism");
}

TEST(AccessFactory, BuildsRequestedKinds) {
  auto idx = hm::make_access_structure(hm::AccessStructureKind::Index, "x",
                                       three_members());
  EXPECT_EQ(idx->kind(), hm::AccessStructureKind::Index);
  auto igt = hm::make_access_structure(
      hm::AccessStructureKind::IndexedGuidedTour, "x", three_members());
  EXPECT_EQ(igt->kind(), hm::AccessStructureKind::IndexedGuidedTour);
  EXPECT_THROW(hm::make_access_structure(hm::AccessStructureKind::Menu, "x",
                                         three_members()),
               navsep::SemanticError);
}

// Property sweep: structural invariants at many sizes.
class AccessInvariants : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AccessInvariants, ArcCountsScaleWithMembers) {
  const std::size_t n = GetParam();
  std::vector<hm::Member> members;
  for (std::size_t i = 0; i < n; ++i) {
    members.push_back({"node-" + std::to_string(i), "N" + std::to_string(i)});
  }
  hm::Index index("s", members);
  EXPECT_EQ(index.arcs().size(), 2 * n);
  hm::GuidedTour tour("s", members);
  EXPECT_EQ(tour.arcs().size(), n < 2 ? 0 : 2 * (n - 1));
  hm::IndexedGuidedTour igt("s", members);
  EXPECT_EQ(igt.arcs().size(), 2 * n + (n < 2 ? 0 : 2 * (n - 1)));

  // Tour chain is a path covering all members exactly once.
  if (n >= 2) {
    auto arcs = tour.arcs();
    std::set<std::string> visited;
    std::string cur = tour.entry();
    visited.insert(cur);
    bool moved = true;
    while (moved) {
      moved = false;
      for (const auto& a : arcs) {
        if (a.role == hm::roles::kNext && a.from == cur) {
          cur = a.to;
          EXPECT_TRUE(visited.insert(cur).second) << "revisited " << cur;
          moved = true;
          break;
        }
      }
    }
    EXPECT_EQ(visited.size(), n);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, AccessInvariants,
                         ::testing::Values(0u, 1u, 2u, 3u, 7u, 20u, 100u));

// --- contexts -----------------------------------------------------------------------

TEST_F(ModelTest, GroupByAttributeFormsFamilies) {
  hm::NavigationalModel nav =
      hm::NavigationalModel::derive(*model_, nav_schema_);
  hm::ContextFamily fam = hm::ContextFamily::group_by_attribute(
      nav, "PaintingNode", "movement", "ByMovement");
  ASSERT_EQ(fam.contexts().size(), 2u);
  const hm::NavigationalContext* cubism = fam.find("cubism");
  ASSERT_NE(cubism, nullptr);
  EXPECT_EQ(cubism->size(), 3u);
  EXPECT_EQ(fam.find("surrealism")->size(), 1u);
  EXPECT_EQ(cubism->qualified_name(), "ByMovement:cubism");
}

TEST_F(ModelTest, GroupByRelationFormsPerOwnerContexts) {
  hm::NavigationalModel nav =
      hm::NavigationalModel::derive(*model_, nav_schema_);
  hm::ContextFamily fam = hm::ContextFamily::group_by_relation(
      nav, "PainterNode", "painted", "ByAuthor");
  ASSERT_EQ(fam.contexts().size(), 2u);
  EXPECT_EQ(fam.find("picasso")->size(), 3u);
  EXPECT_EQ(fam.find("dali")->size(), 1u);
}

TEST_F(ModelTest, ContextNextPrevRespectOrder) {
  hm::NavigationalModel nav =
      hm::NavigationalModel::derive(*model_, nav_schema_);
  hm::ContextFamily fam = hm::ContextFamily::group_by_relation(
      nav, "PainterNode", "painted", "ByAuthor");
  const hm::NavigationalContext* ctx = fam.find("picasso");
  EXPECT_EQ(ctx->next_of("guitar").value(), "guernica");
  EXPECT_EQ(ctx->next_of("guernica").value(), "avignon");
  EXPECT_FALSE(ctx->next_of("avignon").has_value());
  EXPECT_EQ(ctx->prev_of("avignon").value(), "guernica");
  EXPECT_FALSE(ctx->prev_of("guitar").has_value());
  EXPECT_FALSE(ctx->next_of("memory").has_value());  // not in context
}

TEST_F(ModelTest, ContainingFindsContextsOfANode) {
  hm::NavigationalModel nav =
      hm::NavigationalModel::derive(*model_, nav_schema_);
  hm::ContextFamily fam = hm::ContextFamily::group_by_attribute(
      nav, "PaintingNode", "movement", "ByMovement");
  auto hits = fam.containing("guitar");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0]->name(), "cubism");
  EXPECT_TRUE(fam.containing("nobody").empty());
}

TEST_F(ModelTest, AllOfClassContext) {
  hm::NavigationalModel nav =
      hm::NavigationalModel::derive(*model_, nav_schema_);
  hm::ContextFamily fam =
      hm::ContextFamily::all_of_class(nav, "PaintingNode", "All");
  ASSERT_EQ(fam.contexts().size(), 1u);
  EXPECT_EQ(fam.contexts()[0].size(), 4u);
}

// The paper's §2 scenario as a direct assertion: the same node has
// different successors in different contexts.
TEST_F(ModelTest, SameNodeDifferentNextInDifferentContexts) {
  // Add a braque cubist painting after dali's so the by-movement order
  // differs from the by-author order.
  auto& braque = model_->create("Painter", "braque");
  braque.set_attribute("name", "Georges Braque");
  auto& violin = model_->create("Painting", "violin");
  violin.set_attribute("title", "Violin and Candlestick");
  violin.set_attribute("movement", "cubism");
  model_->relate(braque, "painted", violin);

  hm::NavigationalModel nav =
      hm::NavigationalModel::derive(*model_, nav_schema_);
  hm::ContextFamily by_author = hm::ContextFamily::group_by_relation(
      nav, "PainterNode", "painted", "ByAuthor");
  hm::ContextFamily by_movement = hm::ContextFamily::group_by_attribute(
      nav, "PaintingNode", "movement", "ByMovement");

  // Through the author: after avignon there is nothing (last Picasso).
  EXPECT_FALSE(by_author.find("picasso")->next_of("avignon").has_value());
  // Through the movement: after avignon comes braque's violin.
  EXPECT_EQ(by_movement.find("cubism")->next_of("avignon").value(), "violin");
}

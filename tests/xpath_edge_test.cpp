// Edge-case tests for the XPath engine beyond xpath_test.cpp: IEEE
// arithmetic semantics, attribute-node contexts, parse/eval round-trips,
// and corner-case axis behavior.
#include <gtest/gtest.h>

#include <cmath>

#include "xml/parser.hpp"
#include "xpath/xpath.hpp"

namespace xml = navsep::xml;
namespace xp = navsep::xpath;

namespace {

class XPathEdge : public ::testing::Test {
 protected:
  void SetUp() override {
    doc_ = xml::parse(R"(<shop>
      <item id="a" price="10" qty="2"/>
      <item id="b" price="2.5" qty="4"/>
      <item id="c" qty="0"/>
    </shop>)");
  }
  xp::Value ev(std::string_view expr) {
    return xp::evaluate(expr, *doc_, env_);
  }
  std::unique_ptr<xml::Document> doc_;
  xp::Environment env_;
};

}  // namespace

TEST_F(XPathEdge, DivisionByZeroGivesInfinity) {
  EXPECT_TRUE(std::isinf(ev("1 div 0").to_number()));
  EXPECT_TRUE(std::isinf(ev("-1 div 0").to_number()));
  EXPECT_LT(ev("-1 div 0").to_number(), 0);
  EXPECT_TRUE(std::isnan(ev("0 div 0").to_number()));
}

TEST_F(XPathEdge, NanPropagation) {
  EXPECT_TRUE(std::isnan(ev("number('x') + 1").to_number()));
  EXPECT_FALSE(ev("number('x') = number('x')").to_boolean());
  EXPECT_FALSE(ev("number('x') < 1").to_boolean());
  EXPECT_FALSE(ev("number('x') > 1").to_boolean());
}

TEST_F(XPathEdge, InfinityStringForms) {
  EXPECT_EQ(ev("string(1 div 0)").to_string(), "Infinity");
  EXPECT_EQ(ev("string(-1 div 0)").to_string(), "-Infinity");
  EXPECT_EQ(ev("string(0 div 0)").to_string(), "NaN");
}

TEST_F(XPathEdge, ModSemanticsMatchFmod) {
  EXPECT_DOUBLE_EQ(ev("5 mod 2").to_number(), 1.0);
  EXPECT_DOUBLE_EQ(ev("5 mod -2").to_number(), 1.0);
  EXPECT_DOUBLE_EQ(ev("-5 mod 2").to_number(), -1.0);
  EXPECT_DOUBLE_EQ(ev("1.5 mod 0.5").to_number(), 0.0);
}

TEST_F(XPathEdge, SumOverAttributes) {
  EXPECT_DOUBLE_EQ(ev("sum(//item/@price)").to_number(), 12.5);
  // An item without the attribute contributes nothing (not NaN) because
  // the attribute node simply is not in the set.
  EXPECT_DOUBLE_EQ(ev("count(//item/@price)").to_number(), 2.0);
}

TEST_F(XPathEdge, ArithmeticOverNodeSetsCoercesFirstNode) {
  EXPECT_DOUBLE_EQ(
      ev("//item[@id='a']/@price * //item[@id='a']/@qty").to_number(), 20.0);
}

TEST_F(XPathEdge, AttributeNodeAsContext) {
  // Navigate from an attribute node: parent is the owning element.
  xp::NodeSet attrs = xp::select("//item[@id='b']/@price", *doc_, env_);
  ASSERT_EQ(attrs.size(), 1u);
  xp::EvalContext ctx{attrs[0], 1, 1, &env_};
  auto parsed = xp::parse_expression("..");
  xp::Value v = xp::evaluate(*parsed, ctx);
  ASSERT_EQ(v.node_set().size(), 1u);
  EXPECT_EQ(v.node_set()[0]->as_element()->attribute("id").value(), "b");
}

TEST_F(XPathEdge, AbsolutePathFromNestedContext) {
  xp::NodeSet items = xp::select("//item", *doc_, env_);
  xp::EvalContext ctx{items[2], 3, 3, &env_};
  auto parsed = xp::parse_expression("/shop/item[1]/@id");
  EXPECT_EQ(xp::evaluate(*parsed, ctx).to_string(), "a");
}

TEST_F(XPathEdge, UnionOfElementsAndAttributes) {
  xp::NodeSet mixed = xp::select("//item | //item/@id", *doc_, env_);
  // 3 elements + 3 attribute nodes, attributes right after their elements.
  ASSERT_EQ(mixed.size(), 6u);
  EXPECT_EQ(mixed[0]->type(), xml::NodeType::Element);
  EXPECT_EQ(mixed[1]->type(), xml::NodeType::Attribute);
}

TEST_F(XPathEdge, PredicateOverUnionPosition) {
  EXPECT_EQ(ev("(//item/@id)[2]").to_string(), "b");
  EXPECT_EQ(ev("(//item/@id)[last()]").to_string(), "c");
}

TEST_F(XPathEdge, BooleanOfZeroAndNan) {
  EXPECT_FALSE(ev("boolean(0)").to_boolean());
  EXPECT_FALSE(ev("boolean(0 div 0)").to_boolean());
  EXPECT_TRUE(ev("boolean(-1)").to_boolean());
  EXPECT_TRUE(ev("boolean(1 div 0)").to_boolean());
}

TEST_F(XPathEdge, EmptyNodeSetConversions) {
  EXPECT_EQ(ev("//ghost").to_string(), "");
  EXPECT_FALSE(ev("//ghost").to_boolean());
  EXPECT_TRUE(std::isnan(ev("number(//ghost)").to_number()));
  EXPECT_FALSE(ev("//ghost = ''").to_boolean());   // existential: no node
  EXPECT_FALSE(ev("//ghost != ''").to_boolean());  // also false!
}

TEST_F(XPathEdge, ComparisonsAgainstEmptySetAreFalseBothWays) {
  EXPECT_FALSE(ev("//ghost < 5").to_boolean());
  EXPECT_FALSE(ev("//ghost >= 0").to_boolean());
}

TEST_F(XPathEdge, DocumentNodeAxes) {
  // The document node's child axis holds the root element.
  EXPECT_DOUBLE_EQ(ev("count(/*)").to_number(), 1.0);
  EXPECT_EQ(ev("name(/*)").to_string(), "shop");
  // Parent of the root element is the document, which has no name.
  EXPECT_EQ(ev("name(/shop/..)").to_string(), "");
}

TEST_F(XPathEdge, ParseEvalRoundTripAgreesOnResults) {
  for (const char* expr :
       {"//item[@price > 3]/@id", "count(//item) * 2 - 1",
        "concat(//item[1]/@id, '-', //item[last()]/@id)",
        "sum(//item/@qty) mod 4", "//item[position() != 2]/@id"}) {
    xp::ExprPtr direct = xp::parse_expression(expr);
    xp::ExprPtr round = xp::parse_expression(direct->to_string());
    xp::EvalContext ctx{doc_.get(), 1, 1, &env_};
    EXPECT_EQ(xp::evaluate(*direct, ctx).to_string(),
              xp::evaluate(*round, ctx).to_string())
        << expr << " vs " << direct->to_string();
  }
}

TEST_F(XPathEdge, WhitespaceInsensitiveParsing) {
  EXPECT_DOUBLE_EQ(ev("  count(  //item  )  ").to_number(), 3.0);
  EXPECT_DOUBLE_EQ(ev("count( // item )").to_number(), 3.0);
}

TEST_F(XPathEdge, RelationalCoercionOfBooleans) {
  EXPECT_TRUE(ev("true() > false()").to_boolean());
  EXPECT_TRUE(ev("true() >= 1").to_boolean());
  EXPECT_FALSE(ev("false() > 0").to_boolean());
}

TEST_F(XPathEdge, StringValueOfWholeDocument) {
  auto text_doc = xml::parse("<a>1<b>2<c>3</c></b>4</a>");
  xp::Environment env;
  EXPECT_EQ(xp::evaluate("string(/)", *text_doc, env).to_string(), "1234");
}

TEST_F(XPathEdge, VariablesOfEveryType) {
  env_.variables.emplace("s", xp::Value(std::string("b")));
  env_.variables.emplace("n", xp::Value(2.5));
  env_.variables.emplace("t", xp::Value(true));
  EXPECT_EQ(ev("//item[@id = $s]/@qty").to_string(), "4");
  EXPECT_DOUBLE_EQ(ev("$n * 2").to_number(), 5.0);
  EXPECT_TRUE(ev("$t and true()").to_boolean());
}

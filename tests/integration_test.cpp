// Whole-pipeline integration and property tests: synthetic museum →
// separated site → server → browser, equivalences between the two
// pipelines, and migration invariants swept over site sizes.
#include <gtest/gtest.h>

#include "aop/weaver.hpp"
#include "core/migration.hpp"
#include "core/navigation_aspect.hpp"
#include "core/personalization.hpp"
#include "museum/museum.hpp"
#include "site/browser.hpp"
#include "site/server.hpp"
#include "site/virtual_site.hpp"
#include "xml/parser.hpp"
#include "xml/sax.hpp"

namespace core = navsep::core;
namespace hm = navsep::hypermedia;
namespace site = navsep::site;
using navsep::museum::MuseumWorld;

namespace {
constexpr const char* kBase = "http://museum.example/site/";
}

// --- full-tour browsing property over site sizes -------------------------------

class FullTour : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FullTour, BrowserWalksEveryPaintingExactlyOnce) {
  const std::size_t n = GetParam();
  auto world = MuseumWorld::synthetic(
      {.painters = 1, .paintings_per_painter = n, .movements = 2, .seed = 47});
  auto nav = world->derive_navigation();
  auto igt = world->paintings_structure(
      hm::AccessStructureKind::IndexedGuidedTour, nav, "painter-0");
  site::VirtualSite built = site::build_separated_site(*world, *igt);

  navsep::xml::ParseOptions opts;
  opts.base_uri = std::string(kBase) + "links.xml";
  auto linkbase = navsep::xml::parse(*built.get("links.xml"), opts);
  auto graph = navsep::xlink::TraversalGraph::from_linkbase(*linkbase);

  site::HypermediaServer server(built, kBase);
  site::Browser browser(server, graph);

  // Enter through the index, take the first entry, then ride `next` to
  // the end of the tour.
  ASSERT_TRUE(
      browser.navigate("index-paintings-of-painter-0.html"));
  ASSERT_TRUE(browser.follow_role("index-entry"));
  std::size_t visited = 1;
  while (browser.follow_role("next")) ++visited;
  EXPECT_EQ(visited, n);
  // `up` works from the last stop.
  EXPECT_TRUE(browser.follow_role("up"));
  // History replays the whole walk.
  EXPECT_EQ(browser.history().size(), n + 2);  // index + n stops + up
  EXPECT_EQ(server.misses(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FullTour,
                         ::testing::Values(1u, 2u, 3u, 8u, 25u));

// --- pipeline equivalence property ------------------------------------------------

class PipelineEquivalence : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PipelineEquivalence, TangledAndSeparatedPagesAreByteIdentical) {
  const std::size_t n = GetParam();
  auto world = MuseumWorld::synthetic(
      {.painters = 2, .paintings_per_painter = n, .movements = 2, .seed = 3});
  auto nav = world->derive_navigation();
  auto structure = world->all_paintings_structure(
      hm::AccessStructureKind::IndexedGuidedTour, nav);

  site::VirtualSite tangled = site::build_tangled_site(*world, *structure);
  site::VirtualSite separated = site::build_separated_site(*world, *structure);

  for (const std::string& path : tangled.paths()) {
    if (path == "museum.css") continue;
    ASSERT_TRUE(separated.contains(path)) << path;
    EXPECT_EQ(*tangled.get(path), *separated.get(path)) << path;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, PipelineEquivalence,
                         ::testing::Values(1u, 3u, 10u));

// --- migration invariants ------------------------------------------------------------

class MigrationInvariants : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MigrationInvariants, SeparatedAlwaysTouchesExactlyLinksXml) {
  const std::size_t n = GetParam();
  auto world = MuseumWorld::synthetic(
      {.painters = 1, .paintings_per_painter = n, .movements = 2, .seed = 9});
  auto nav = world->derive_navigation();
  auto index =
      world->paintings_structure(hm::AccessStructureKind::Index, nav,
                                 "painter-0");
  auto igt = world->paintings_structure(
      hm::AccessStructureKind::IndexedGuidedTour, nav, "painter-0");
  core::MigrationOptions options;
  options.separated_fixed_artifacts = world->data_artifacts();
  core::MigrationReport r =
      core::measure_migration(nav, *index, *igt, options);

  // The linkbase always changes (at minimum its xlink:role records the new
  // structure kind), and it is always the ONLY separated change.
  EXPECT_EQ(r.separated_authored.files_touched, 1u);
  EXPECT_EQ(r.separated_authored.touched_paths.at(0), "links.xml");
  // A one-member tour has no chain, so the rendered pages only change for
  // n >= 2 — in the tangled style that means n page rewrites.
  const std::size_t expected_pages = n >= 2 ? n : 0;
  EXPECT_EQ(r.tangled_authored.files_touched, expected_pages);
  EXPECT_EQ(r.separated_rendered.files_touched, expected_pages);
  if (n >= 2) {
    EXPECT_GT(r.tangled_authored.line_stats.lines_changed(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MigrationInvariants,
                         ::testing::Values(1u, 2u, 5u, 12u, 40u));

// --- GuidedTour-only migration (no index page at all) -------------------------------

TEST(MigrationVariants, IndexToGuidedTourDropsTheIndexPage) {
  auto world = MuseumWorld::synthetic(
      {.painters = 1, .paintings_per_painter = 4, .movements = 2, .seed = 9});
  auto nav = world->derive_navigation();
  auto index = world->paintings_structure(hm::AccessStructureKind::Index,
                                          nav, "painter-0");
  auto tour = world->paintings_structure(hm::AccessStructureKind::GuidedTour,
                                         nav, "painter-0");
  core::MigrationOptions options;
  options.separated_fixed_artifacts = world->data_artifacts();
  core::MigrationReport r =
      core::measure_migration(nav, *index, *tour, options);
  // Tangled: all 4 member pages change AND the index page disappears.
  EXPECT_EQ(r.tangled_authored.files_touched, 5u);
  EXPECT_EQ(r.separated_authored.files_touched, 1u);
}

// --- personalized site end-to-end ------------------------------------------------------

TEST(PersonalizedPipeline, KioskProfileSiteWide) {
  auto world = MuseumWorld::paper_instance();
  auto nav = world->derive_navigation();
  auto igt = world->paintings_structure(
      hm::AccessStructureKind::IndexedGuidedTour, nav, "picasso");

  navsep::aop::Weaver weaver;
  weaver.register_aspect(core::NavigationAspect::from_arcs(igt->arcs()));
  core::UserProfile kiosk;
  kiosk.name = "kiosk";
  kiosk.suppress_tours = true;
  kiosk.show_images = false;
  weaver.register_aspect(core::PersonalizationAspect::for_profile(kiosk));

  core::SeparatedComposer composer(weaver);
  for (auto& page : composer.compose_site(nav, *igt)) {
    EXPECT_EQ(page.content.find("nav-next"), std::string::npos) << page.path;
    EXPECT_EQ(page.content.find("<img"), std::string::npos) << page.path;
  }
}

// --- every produced XML artifact is well-formed (SAX sweep) -----------------------------

TEST(ArtifactHygiene, AllSiteXmlArtifactsAreWellFormed) {
  auto world = MuseumWorld::synthetic(
      {.painters = 3, .paintings_per_painter = 4, .movements = 2, .seed = 12});
  auto nav = world->derive_navigation();
  auto igt = world->all_paintings_structure(
      hm::AccessStructureKind::IndexedGuidedTour, nav);
  site::VirtualSite built = site::build_separated_site(*world, *igt);
  std::size_t checked = 0;
  for (const auto& [path, content] : built.artifacts()) {
    if (path.size() > 4 && (path.ends_with(".xml") || path.ends_with(".xsl"))) {
      EXPECT_TRUE(navsep::xml::sax::is_well_formed(content)) << path;
      ++checked;
    }
  }
  EXPECT_GT(checked, 12u);  // data docs + links.xml + presentation.xsl
}

// Bounded serve caches: LRU order, the residency ledger
// (inserted == resident + evicted), cap enforcement under churn, and the
// zero-cap pass-through degeneration — over both layers of
// serve::ConcurrentServer (the base epoch-validated shards and the
// slice-validated overlay shards).
#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/navigation_aspect.hpp"
#include "hypermedia/access.hpp"
#include "nav/pipeline.hpp"
#include "oracle.hpp"
#include "serve/concurrent_server.hpp"
#include "site/virtual_site.hpp"

namespace {

using navsep::hypermedia::AccessStructureKind;
namespace hm = navsep::hypermedia;
namespace nav = navsep::nav;
namespace serve = navsep::serve;
namespace site = navsep::site;
using navsep::testing::html_pages;
using navsep::testing::profile_oracle;

std::unique_ptr<nav::Engine> synthetic_engine(std::size_t paintings) {
  return nav::SitePipeline()
      .conceptual(navsep::museum::SyntheticSpec{.painters = 2,
                                                .paintings_per_painter =
                                                    paintings,
                                                .movements = 2,
                                                .seed = 5})
      .access(AccessStructureKind::IndexedGuidedTour)
      .contexts({"ByAuthor"})
      .weave()
      .serve();
}

/// The residency ledger must balance on BOTH layers whenever sampled at
/// rest: every entry ever added is either still resident or was removed.
void expect_ledger_balances(const serve::ConcurrentServer::Stats& s) {
  EXPECT_EQ(s.cache_inserted, s.cached_entries + s.cache_evicted);
  EXPECT_EQ(s.overlay_inserted, s.overlay_entries + s.overlay_evicted);
}

// --- LRU order ----------------------------------------------------------------

TEST(CacheBounds, LruEvictsTheColdestAndTouchKeepsAlive) {
  auto engine = synthetic_engine(4);
  auto server = engine->open_concurrent(
      1, serve::CacheLimits{.base_entries_per_shard = 2,
                            .overlay_entries_per_shard = 2});
  std::vector<std::string> pages = html_pages(*engine);
  ASSERT_GE(pages.size(), 3u);
  const std::string &a = pages[0], &b = pages[1], &c = pages[2];

  ASSERT_TRUE(server->get(a).ok());
  ASSERT_TRUE(server->get(b).ok());
  ASSERT_TRUE(server->get(a).ok());  // touch: a is now the most recent
  ASSERT_TRUE(server->get(c).ok());  // cap 2: evicts b, the coldest
  serve::ConcurrentServer::Stats s = server->stats();
  EXPECT_EQ(s.cached_entries, 2u);
  EXPECT_EQ(s.cache_inserted, 3u);
  EXPECT_EQ(s.cache_evicted, 1u);
  expect_ledger_balances(s);

  // The re-touched entry survived (hit), the evicted one re-resolves.
  const std::size_t resolves_before = s.snapshot_resolves;
  ASSERT_TRUE(server->get(a).ok());
  EXPECT_EQ(server->stats().snapshot_resolves, resolves_before);
  ASSERT_TRUE(server->get(b).ok());
  EXPECT_EQ(server->stats().snapshot_resolves, resolves_before + 1);
}

TEST(CacheBounds, OverlayLayerEvictsLruToo) {
  auto engine = synthetic_engine(4);
  engine->internals().register_profile({"tour", {"ByAuthor"}});
  auto server = engine->open_concurrent(
      1, serve::CacheLimits{.overlay_entries_per_shard = 2});
  std::vector<std::string> pages = html_pages(*engine);
  ASSERT_GE(pages.size(), 3u);

  ASSERT_TRUE(server->get(pages[0], "tour").ok());
  ASSERT_TRUE(server->get(pages[1], "tour").ok());
  ASSERT_TRUE(server->get(pages[0], "tour").ok());  // touch
  ASSERT_TRUE(server->get(pages[2], "tour").ok());  // evicts pages[1]
  serve::ConcurrentServer::Stats s = server->stats();
  EXPECT_EQ(s.overlay_entries, 2u);
  EXPECT_EQ(s.overlay_inserted, 3u);
  EXPECT_EQ(s.overlay_evicted, 1u);
  expect_ledger_balances(s);

  const std::size_t renders_before = s.overlay_renders;
  ASSERT_TRUE(server->get(pages[0], "tour").ok());  // survived
  EXPECT_EQ(server->stats().overlay_renders, renders_before);
  ASSERT_TRUE(server->get(pages[1], "tour").ok());  // was evicted
  EXPECT_EQ(server->stats().overlay_renders, renders_before + 1);
}

// --- churn stays under the cap, bytes stay right --------------------------------

TEST(CacheBounds, ChurnHoldsTheCapOnBothLayersAndServesOracleBytes) {
  auto engine = synthetic_engine(6);
  engine->internals().register_profile({"tour", {"ByAuthor"}});
  engine->internals().register_profile({"kiosk", {}});
  constexpr std::size_t kShards = 4;
  constexpr std::size_t kCap = 2;
  auto server = engine->open_concurrent(
      kShards, serve::CacheLimits{.base_entries_per_shard = kCap,
                                  .overlay_entries_per_shard = kCap});

  const std::map<std::string, std::string> tour_oracle =
      profile_oracle(*engine, {"tour", {"ByAuthor"}});
  const std::vector<std::string> pages = html_pages(*engine);
  ASSERT_GT(pages.size(), kShards * kCap)
      << "museum too small to overflow the capped layers";

  for (int round = 0; round < 5; ++round) {
    for (const std::string& page : pages) {
      site::Response base = server->get(page);
      ASSERT_TRUE(base.ok()) << page;
      EXPECT_EQ(*base.body, *engine->site().get(page)) << page;
      site::Response overlaid = server->get(page, "tour");
      ASSERT_TRUE(overlaid.ok()) << page;
      EXPECT_EQ(*overlaid.body, tour_oracle.at(page)) << page;
    }
    serve::ConcurrentServer::Stats s = server->stats();
    EXPECT_LE(s.cached_entries, kShards * kCap);
    EXPECT_LE(s.overlay_entries, kShards * kCap);
    expect_ledger_balances(s);
    EXPECT_GT(s.cache_evicted, 0u);  // the cap is actually being hit
  }
}

// --- zero cap = pass-through ----------------------------------------------------

TEST(CacheBounds, ZeroCapDegeneratesToPassThrough) {
  auto engine = synthetic_engine(3);
  engine->internals().register_profile({"tour", {"ByAuthor"}});
  auto server = engine->open_concurrent(
      2, serve::CacheLimits{.base_entries_per_shard = 0,
                            .overlay_entries_per_shard = 0});
  const std::vector<std::string> pages = html_pages(*engine);

  // Every request resolves, nothing is ever retained, no hit, no
  // deadlock — twice over the same paths to prove nothing warmed.
  for (int round = 0; round < 2; ++round) {
    for (const std::string& page : pages) {
      ASSERT_TRUE(server->get(page).ok()) << page;
      ASSERT_TRUE(server->get(page, "tour").ok()) << page;
    }
  }
  serve::ConcurrentServer::Stats s = server->stats();
  EXPECT_EQ(s.cached_entries, 0u);
  EXPECT_EQ(s.cache_inserted, 0u);
  EXPECT_EQ(s.cache_evicted, 0u);
  EXPECT_EQ(s.cache_hits, 0u);
  EXPECT_EQ(s.snapshot_resolves, 2 * pages.size());
  EXPECT_EQ(s.overlay_entries, 0u);
  EXPECT_EQ(s.overlay_inserted, 0u);
  EXPECT_EQ(s.overlay_hits, 0u);
  EXPECT_EQ(s.overlay_renders, 2 * pages.size());

  // Still correct across a mutation (no stale state exists to serve).
  (void)engine->internals().retitle_node(
      engine->structure().members().front().node_id, "Renamed (v2)");
  const std::string page =
      navsep::core::default_href_for(engine->structure().members()[1].node_id);
  EXPECT_EQ(*server->get(page).body, *engine->site().get(page));
}

// --- staleness retirement is ledgered -------------------------------------------

TEST(CacheBounds, RetiredPathCountsAsEvicted) {
  auto engine = synthetic_engine(3);
  engine->internals().register_profile({"tour", {"ByAuthor"}});
  auto server = engine->open_concurrent(1);

  const std::string victim_node = engine->structure().members().back().node_id;
  const std::string victim = navsep::core::default_href_for(victim_node);
  ASSERT_TRUE(server->get(victim).ok());
  ASSERT_TRUE(server->get(victim, "tour").ok());

  std::vector<hm::Member> members = engine->structure().members();
  members.pop_back();
  (void)engine->internals().set_access_structure(
      hm::make_access_structure(AccessStructureKind::Index,
                                engine->structure().name(), members));
  EXPECT_FALSE(server->get(victim).ok());
  EXPECT_FALSE(server->get(victim, "tour").ok());
  serve::ConcurrentServer::Stats s = server->stats();
  EXPECT_GE(s.cache_evicted, 1u);
  EXPECT_GE(s.overlay_evicted, 1u);
  expect_ledger_balances(s);
}

// --- limits are introspectable --------------------------------------------------

TEST(CacheBounds, StatsEchoTheConfiguredCaps) {
  auto engine = synthetic_engine(2);
  auto bounded = engine->open_concurrent(
      2, serve::CacheLimits{.base_entries_per_shard = 7,
                            .overlay_entries_per_shard = 3});
  serve::ConcurrentServer::Stats s = bounded->stats();
  EXPECT_EQ(s.base_cap_per_shard, 7u);
  EXPECT_EQ(s.overlay_cap_per_shard, 3u);

  auto unbounded = engine->open_concurrent();
  EXPECT_EQ(unbounded->stats().base_cap_per_shard,
            serve::CacheLimits::kUnbounded);
  EXPECT_EQ(unbounded->limits().overlay_entries_per_shard,
            serve::CacheLimits::kUnbounded);
  EXPECT_EQ(unbounded->stats().base_byte_cap_per_shard,
            serve::CacheLimits::kUnbounded);
  EXPECT_EQ(unbounded->stats().overlay_byte_cap_per_shard,
            serve::CacheLimits::kUnbounded);
}

// --- byte accounting ----------------------------------------------------------

TEST(CacheBytes, ResidentBytesTrackTheCachedBodies) {
  auto engine = synthetic_engine(3);
  engine->internals().register_profile({"tour", {"ByAuthor"}});
  auto server = engine->open_concurrent(1);

  std::vector<std::string> pages = html_pages(*engine);
  std::size_t expected_base = 0, expected_overlay = 0;
  for (const std::string& page : pages) {
    site::Response base = server->get(page);
    ASSERT_TRUE(base.ok()) << page;
    expected_base += base.body->size();
    site::Response overlay = server->get(page, "tour");
    ASSERT_TRUE(overlay.ok()) << page;
    expected_overlay += overlay.body->size();
  }

  // The byte ledger equals the sum of exactly the bodies held.
  serve::ConcurrentServer::Stats s = server->stats();
  EXPECT_EQ(s.cached_bytes, expected_base);
  EXPECT_EQ(s.overlay_bytes, expected_overlay);
  EXPECT_EQ(s.cached_entries, pages.size());
  EXPECT_EQ(s.overlay_entries, pages.size());

  // Re-serving is all hits: bytes must not move.
  for (const std::string& page : pages) {
    (void)server->get(page);
    (void)server->get(page, "tour");
  }
  s = server->stats();
  EXPECT_EQ(s.cached_bytes, expected_base);
  EXPECT_EQ(s.overlay_bytes, expected_overlay);
}

TEST(CacheBytes, ByteCapEvictsAndHoldsUnderChurn) {
  auto engine = synthetic_engine(4);
  engine->internals().register_profile({"tour", {"ByAuthor"}});
  std::vector<std::string> pages = html_pages(*engine);
  ASSERT_GE(pages.size(), 3u);

  // A byte cap sized to roughly one page: the shard can never hold two
  // full bodies, so cycling pages must evict, and the resident bytes
  // must stay under the cap at every sample.
  const std::size_t one_page = engine->site().get(pages[0])->size();
  const serve::CacheLimits limits{
      .base_bytes_per_shard = one_page + one_page / 2,
      .overlay_bytes_per_shard = one_page + one_page / 2};
  auto server = engine->open_concurrent(1, limits);

  for (int round = 0; round < 3; ++round) {
    for (const std::string& page : pages) {
      ASSERT_TRUE(server->get(page).ok()) << page;
      ASSERT_TRUE(server->get(page, "tour").ok()) << page;
      serve::ConcurrentServer::Stats s = server->stats();
      EXPECT_LE(s.cached_bytes, limits.base_bytes_per_shard);
      EXPECT_LE(s.overlay_bytes, limits.overlay_bytes_per_shard);
      EXPECT_EQ(s.cache_inserted, s.cached_entries + s.cache_evicted);
      EXPECT_EQ(s.overlay_inserted, s.overlay_entries + s.overlay_evicted);
    }
  }
  serve::ConcurrentServer::Stats s = server->stats();
  EXPECT_GE(s.cache_evicted, 1u);
  EXPECT_GE(s.overlay_evicted, 1u);
  EXPECT_EQ(s.base_byte_cap_per_shard, limits.base_bytes_per_shard);
  EXPECT_EQ(s.overlay_byte_cap_per_shard, limits.overlay_bytes_per_shard);
}

TEST(CacheBytes, ZeroByteCapDegeneratesToPassThrough) {
  auto engine = synthetic_engine(2);
  engine->internals().register_profile({"tour", {"ByAuthor"}});
  auto server = engine->open_concurrent(
      1, serve::CacheLimits{.base_bytes_per_shard = 0,
                            .overlay_bytes_per_shard = 0});
  std::vector<std::string> pages = html_pages(*engine);
  for (int round = 0; round < 2; ++round) {
    for (const std::string& page : pages) {
      ASSERT_TRUE(server->get(page).ok());
      ASSERT_TRUE(server->get(page, "tour").ok());
    }
  }
  serve::ConcurrentServer::Stats s = server->stats();
  EXPECT_EQ(s.cached_entries, 0u);
  EXPECT_EQ(s.overlay_entries, 0u);
  EXPECT_EQ(s.cached_bytes, 0u);
  EXPECT_EQ(s.overlay_bytes, 0u);
  EXPECT_EQ(s.cache_hits, 0u);
  EXPECT_EQ(s.overlay_hits, 0u);
}

TEST(CacheBytes, StaleRefillMovesTheByteLedgerByTheSizeDelta) {
  auto engine = synthetic_engine(3);
  auto server = engine->open_concurrent(1);
  std::vector<std::string> pages = html_pages(*engine);
  std::size_t total = 0;
  for (const std::string& page : pages) {
    site::Response r = server->get(page);
    ASSERT_TRUE(r.ok());
    total += r.body->size();
  }
  ASSERT_EQ(server->stats().cached_bytes, total);

  // Retitle one member page: its body grows/shrinks; after the stale
  // refill the ledger must equal the NEW sum, not the old one.
  const std::string node = engine->structure().members().front().node_id;
  (void)engine->internals().retitle_node(
      node, "a much, much longer title than before");
  std::size_t new_total = 0;
  for (const std::string& page : pages) {
    site::Response r = server->get(page);
    ASSERT_TRUE(r.ok());
    new_total += r.body->size();
  }
  serve::ConcurrentServer::Stats s = server->stats();
  EXPECT_EQ(s.cached_bytes, new_total);
  EXPECT_GE(s.stale_refills, 1u);
  EXPECT_EQ(s.cache_inserted, s.cached_entries + s.cache_evicted);
}

}  // namespace

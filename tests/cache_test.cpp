// Bounded serve caches: LRU order, the residency ledger
// (inserted == resident + evicted), cap enforcement under churn, and the
// zero-cap pass-through degeneration — over both layers of
// serve::ConcurrentServer (the base epoch-validated shards and the
// slice-validated overlay shards).
#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/navigation_aspect.hpp"
#include "hypermedia/access.hpp"
#include "nav/pipeline.hpp"
#include "oracle.hpp"
#include "serve/concurrent_server.hpp"
#include "site/virtual_site.hpp"

namespace {

using navsep::hypermedia::AccessStructureKind;
namespace hm = navsep::hypermedia;
namespace nav = navsep::nav;
namespace serve = navsep::serve;
namespace site = navsep::site;
using navsep::testing::html_pages;
using navsep::testing::profile_oracle;

std::unique_ptr<nav::Engine> synthetic_engine(std::size_t paintings) {
  return nav::SitePipeline()
      .conceptual(navsep::museum::SyntheticSpec{.painters = 2,
                                                .paintings_per_painter =
                                                    paintings,
                                                .movements = 2,
                                                .seed = 5})
      .access(AccessStructureKind::IndexedGuidedTour)
      .contexts({"ByAuthor"})
      .weave()
      .serve();
}

/// The residency ledger must balance on BOTH layers whenever sampled at
/// rest: every entry ever added is either still resident or was removed.
void expect_ledger_balances(const serve::ConcurrentServer::Stats& s) {
  EXPECT_EQ(s.cache_inserted, s.cached_entries + s.cache_evicted);
  EXPECT_EQ(s.overlay_inserted, s.overlay_entries + s.overlay_evicted);
}

// --- LRU order ----------------------------------------------------------------

TEST(CacheBounds, LruEvictsTheColdestAndTouchKeepsAlive) {
  auto engine = synthetic_engine(4);
  auto server = engine->open_concurrent(
      1, serve::CacheLimits{.base_entries_per_shard = 2,
                            .overlay_entries_per_shard = 2});
  std::vector<std::string> pages = html_pages(*engine);
  ASSERT_GE(pages.size(), 3u);
  const std::string &a = pages[0], &b = pages[1], &c = pages[2];

  ASSERT_TRUE(server->get(a).ok());
  ASSERT_TRUE(server->get(b).ok());
  ASSERT_TRUE(server->get(a).ok());  // touch: a is now the most recent
  ASSERT_TRUE(server->get(c).ok());  // cap 2: evicts b, the coldest
  serve::ConcurrentServer::Stats s = server->stats();
  EXPECT_EQ(s.cached_entries, 2u);
  EXPECT_EQ(s.cache_inserted, 3u);
  EXPECT_EQ(s.cache_evicted, 1u);
  expect_ledger_balances(s);

  // The re-touched entry survived (hit), the evicted one re-resolves.
  const std::size_t resolves_before = s.snapshot_resolves;
  ASSERT_TRUE(server->get(a).ok());
  EXPECT_EQ(server->stats().snapshot_resolves, resolves_before);
  ASSERT_TRUE(server->get(b).ok());
  EXPECT_EQ(server->stats().snapshot_resolves, resolves_before + 1);
}

TEST(CacheBounds, OverlayLayerEvictsLruToo) {
  auto engine = synthetic_engine(4);
  engine->internals().register_profile({"tour", {"ByAuthor"}});
  auto server = engine->open_concurrent(
      1, serve::CacheLimits{.overlay_entries_per_shard = 2});
  std::vector<std::string> pages = html_pages(*engine);
  ASSERT_GE(pages.size(), 3u);

  ASSERT_TRUE(server->get(pages[0], "tour").ok());
  ASSERT_TRUE(server->get(pages[1], "tour").ok());
  ASSERT_TRUE(server->get(pages[0], "tour").ok());  // touch
  ASSERT_TRUE(server->get(pages[2], "tour").ok());  // evicts pages[1]
  serve::ConcurrentServer::Stats s = server->stats();
  EXPECT_EQ(s.overlay_entries, 2u);
  EXPECT_EQ(s.overlay_inserted, 3u);
  EXPECT_EQ(s.overlay_evicted, 1u);
  expect_ledger_balances(s);

  const std::size_t renders_before = s.overlay_renders;
  ASSERT_TRUE(server->get(pages[0], "tour").ok());  // survived
  EXPECT_EQ(server->stats().overlay_renders, renders_before);
  ASSERT_TRUE(server->get(pages[1], "tour").ok());  // was evicted
  EXPECT_EQ(server->stats().overlay_renders, renders_before + 1);
}

// --- churn stays under the cap, bytes stay right --------------------------------

TEST(CacheBounds, ChurnHoldsTheCapOnBothLayersAndServesOracleBytes) {
  auto engine = synthetic_engine(6);
  engine->internals().register_profile({"tour", {"ByAuthor"}});
  engine->internals().register_profile({"kiosk", {}});
  constexpr std::size_t kShards = 4;
  constexpr std::size_t kCap = 2;
  auto server = engine->open_concurrent(
      kShards, serve::CacheLimits{.base_entries_per_shard = kCap,
                                  .overlay_entries_per_shard = kCap});

  const std::map<std::string, std::string> tour_oracle =
      profile_oracle(*engine, {"tour", {"ByAuthor"}});
  const std::vector<std::string> pages = html_pages(*engine);
  ASSERT_GT(pages.size(), kShards * kCap)
      << "museum too small to overflow the capped layers";

  for (int round = 0; round < 5; ++round) {
    for (const std::string& page : pages) {
      site::Response base = server->get(page);
      ASSERT_TRUE(base.ok()) << page;
      EXPECT_EQ(*base.body, *engine->site().get(page)) << page;
      site::Response overlaid = server->get(page, "tour");
      ASSERT_TRUE(overlaid.ok()) << page;
      EXPECT_EQ(*overlaid.body, tour_oracle.at(page)) << page;
    }
    serve::ConcurrentServer::Stats s = server->stats();
    EXPECT_LE(s.cached_entries, kShards * kCap);
    EXPECT_LE(s.overlay_entries, kShards * kCap);
    expect_ledger_balances(s);
    EXPECT_GT(s.cache_evicted, 0u);  // the cap is actually being hit
  }
}

// --- zero cap = pass-through ----------------------------------------------------

TEST(CacheBounds, ZeroCapDegeneratesToPassThrough) {
  auto engine = synthetic_engine(3);
  engine->internals().register_profile({"tour", {"ByAuthor"}});
  auto server = engine->open_concurrent(
      2, serve::CacheLimits{.base_entries_per_shard = 0,
                            .overlay_entries_per_shard = 0});
  const std::vector<std::string> pages = html_pages(*engine);

  // Every request resolves, nothing is ever retained, no hit, no
  // deadlock — twice over the same paths to prove nothing warmed.
  for (int round = 0; round < 2; ++round) {
    for (const std::string& page : pages) {
      ASSERT_TRUE(server->get(page).ok()) << page;
      ASSERT_TRUE(server->get(page, "tour").ok()) << page;
    }
  }
  serve::ConcurrentServer::Stats s = server->stats();
  EXPECT_EQ(s.cached_entries, 0u);
  EXPECT_EQ(s.cache_inserted, 0u);
  EXPECT_EQ(s.cache_evicted, 0u);
  EXPECT_EQ(s.cache_hits, 0u);
  EXPECT_EQ(s.snapshot_resolves, 2 * pages.size());
  EXPECT_EQ(s.overlay_entries, 0u);
  EXPECT_EQ(s.overlay_inserted, 0u);
  EXPECT_EQ(s.overlay_hits, 0u);
  EXPECT_EQ(s.overlay_renders, 2 * pages.size());

  // Still correct across a mutation (no stale state exists to serve).
  (void)engine->internals().retitle_node(
      engine->structure().members().front().node_id, "Renamed (v2)");
  const std::string page =
      navsep::core::default_href_for(engine->structure().members()[1].node_id);
  EXPECT_EQ(*server->get(page).body, *engine->site().get(page));
}

// --- staleness retirement is ledgered -------------------------------------------

TEST(CacheBounds, RetiredPathCountsAsEvicted) {
  auto engine = synthetic_engine(3);
  engine->internals().register_profile({"tour", {"ByAuthor"}});
  auto server = engine->open_concurrent(1);

  const std::string victim_node = engine->structure().members().back().node_id;
  const std::string victim = navsep::core::default_href_for(victim_node);
  ASSERT_TRUE(server->get(victim).ok());
  ASSERT_TRUE(server->get(victim, "tour").ok());

  std::vector<hm::Member> members = engine->structure().members();
  members.pop_back();
  (void)engine->internals().set_access_structure(
      hm::make_access_structure(AccessStructureKind::Index,
                                engine->structure().name(), members));
  EXPECT_FALSE(server->get(victim).ok());
  EXPECT_FALSE(server->get(victim, "tour").ok());
  serve::ConcurrentServer::Stats s = server->stats();
  EXPECT_GE(s.cache_evicted, 1u);
  EXPECT_GE(s.overlay_evicted, 1u);
  expect_ledger_balances(s);
}

// --- limits are introspectable --------------------------------------------------

TEST(CacheBounds, StatsEchoTheConfiguredCaps) {
  auto engine = synthetic_engine(2);
  auto bounded = engine->open_concurrent(
      2, serve::CacheLimits{.base_entries_per_shard = 7,
                            .overlay_entries_per_shard = 3});
  serve::ConcurrentServer::Stats s = bounded->stats();
  EXPECT_EQ(s.base_cap_per_shard, 7u);
  EXPECT_EQ(s.overlay_cap_per_shard, 3u);

  auto unbounded = engine->open_concurrent();
  EXPECT_EQ(unbounded->stats().base_cap_per_shard,
            serve::CacheLimits::kUnbounded);
  EXPECT_EQ(unbounded->limits().overlay_entries_per_shard,
            serve::CacheLimits::kUnbounded);
  EXPECT_EQ(unbounded->stats().base_byte_cap_per_shard,
            serve::CacheLimits::kUnbounded);
  EXPECT_EQ(unbounded->stats().overlay_byte_cap_per_shard,
            serve::CacheLimits::kUnbounded);
}

// --- byte accounting ----------------------------------------------------------

TEST(CacheBytes, ResidentBytesTrackTheCachedBodies) {
  auto engine = synthetic_engine(3);
  engine->internals().register_profile({"tour", {"ByAuthor"}});
  auto server = engine->open_concurrent(1);

  std::vector<std::string> pages = html_pages(*engine);
  std::size_t expected_base = 0, expected_overlay = 0;
  for (const std::string& page : pages) {
    site::Response base = server->get(page);
    ASSERT_TRUE(base.ok()) << page;
    expected_base += base.body->size();
    site::Response overlay = server->get(page, "tour");
    ASSERT_TRUE(overlay.ok()) << page;
    expected_overlay += overlay.body->size();
  }

  // The byte ledger equals the sum of exactly the bodies held.
  serve::ConcurrentServer::Stats s = server->stats();
  EXPECT_EQ(s.cached_bytes, expected_base);
  EXPECT_EQ(s.overlay_bytes, expected_overlay);
  EXPECT_EQ(s.cached_entries, pages.size());
  EXPECT_EQ(s.overlay_entries, pages.size());

  // Re-serving is all hits: bytes must not move.
  for (const std::string& page : pages) {
    (void)server->get(page);
    (void)server->get(page, "tour");
  }
  s = server->stats();
  EXPECT_EQ(s.cached_bytes, expected_base);
  EXPECT_EQ(s.overlay_bytes, expected_overlay);
}

TEST(CacheBytes, ByteCapEvictsAndHoldsUnderChurn) {
  auto engine = synthetic_engine(4);
  engine->internals().register_profile({"tour", {"ByAuthor"}});
  std::vector<std::string> pages = html_pages(*engine);
  ASSERT_GE(pages.size(), 3u);

  // A byte cap sized to roughly one page: the shard can never hold two
  // full bodies, so cycling pages must evict, and the resident bytes
  // must stay under the cap at every sample.
  const std::size_t one_page = engine->site().get(pages[0])->size();
  const serve::CacheLimits limits{
      .base_bytes_per_shard = one_page + one_page / 2,
      .overlay_bytes_per_shard = one_page + one_page / 2};
  auto server = engine->open_concurrent(1, limits);

  for (int round = 0; round < 3; ++round) {
    for (const std::string& page : pages) {
      ASSERT_TRUE(server->get(page).ok()) << page;
      ASSERT_TRUE(server->get(page, "tour").ok()) << page;
      serve::ConcurrentServer::Stats s = server->stats();
      EXPECT_LE(s.cached_bytes, limits.base_bytes_per_shard);
      EXPECT_LE(s.overlay_bytes, limits.overlay_bytes_per_shard);
      EXPECT_EQ(s.cache_inserted, s.cached_entries + s.cache_evicted);
      EXPECT_EQ(s.overlay_inserted, s.overlay_entries + s.overlay_evicted);
    }
  }
  serve::ConcurrentServer::Stats s = server->stats();
  EXPECT_GE(s.cache_evicted, 1u);
  EXPECT_GE(s.overlay_evicted, 1u);
  EXPECT_EQ(s.base_byte_cap_per_shard, limits.base_bytes_per_shard);
  EXPECT_EQ(s.overlay_byte_cap_per_shard, limits.overlay_bytes_per_shard);
}

TEST(CacheBytes, ZeroByteCapDegeneratesToPassThrough) {
  auto engine = synthetic_engine(2);
  engine->internals().register_profile({"tour", {"ByAuthor"}});
  auto server = engine->open_concurrent(
      1, serve::CacheLimits{.base_bytes_per_shard = 0,
                            .overlay_bytes_per_shard = 0});
  std::vector<std::string> pages = html_pages(*engine);
  for (int round = 0; round < 2; ++round) {
    for (const std::string& page : pages) {
      ASSERT_TRUE(server->get(page).ok());
      ASSERT_TRUE(server->get(page, "tour").ok());
    }
  }
  serve::ConcurrentServer::Stats s = server->stats();
  EXPECT_EQ(s.cached_entries, 0u);
  EXPECT_EQ(s.overlay_entries, 0u);
  EXPECT_EQ(s.cached_bytes, 0u);
  EXPECT_EQ(s.overlay_bytes, 0u);
  EXPECT_EQ(s.cache_hits, 0u);
  EXPECT_EQ(s.overlay_hits, 0u);
}

TEST(CacheBytes, ResizingRefillChurnKeepsTheLedgerExactUnderByteCaps) {
  // The refill path where a re-rendered entry changes size under an
  // active byte cap: retitling swings every body longer then shorter,
  // so each sweep refreshes entries in place with a different size —
  // shrinking below and growing above the shard's byte budget
  // mid-refill. The ledger must reconcile exactly and the caps must
  // hold at every single sample, not just at rest.
  auto engine = synthetic_engine(4);
  engine->internals().register_profile({"tour", {"ByAuthor"}});

  // The hot page is the retitled node's own page: every retitle resizes
  // its body AND invalidates both its base entry (epoch) and its
  // overlay entry (base-bytes handle), so re-getting it refreshes the
  // resident entry in place with a different size. It is touched first
  // each round, so under a ~2.5-page budget it survives the pressure
  // pages and the resize really happens mid-residency, not via
  // evict-and-reinsert.
  const std::string node = engine->structure().members().front().node_id;
  const std::string hot = navsep::core::default_href_for(node);
  std::vector<std::string> pages = html_pages(*engine);
  std::erase(pages, hot);
  ASSERT_GE(pages.size(), 2u);
  pages.resize(2);  // two pressure pages: enough to keep the cap busy

  // Budget = the three-page working set plus half a page of slack: the
  // set fits while titles are short, so the hot entry is resident when
  // the next retitle lands — and a grow round's in-place refresh (two
  // whole pages of title) pushes the shard well past the budget on its
  // own, forcing the eviction loop to reconcile against the refreshed
  // size.
  const std::map<std::string, std::string> tour_oracle =
      profile_oracle(*engine, {"tour", {"ByAuthor"}});
  const std::size_t one_page = engine->site().get(hot)->size();
  std::size_t base_set = engine->site().get(hot)->size();
  std::size_t overlay_set = tour_oracle.at(hot).size();
  for (const std::string& page : pages) {
    base_set += engine->site().get(page)->size();
    overlay_set += tour_oracle.at(page).size();
  }
  const serve::CacheLimits limits{
      .base_bytes_per_shard = base_set + one_page / 2,
      .overlay_bytes_per_shard = overlay_set + one_page / 2};
  auto server = engine->open_concurrent(1, limits);

  const std::string long_title(2 * one_page, 'x');
  for (int round = 0; round < 6; ++round) {
    // Alternate growth and shrink so refills cross the cap both ways.
    (void)engine->internals().retitle_node(
        node, round % 2 == 0 ? long_title : "t");
    (void)server->get(hot);
    (void)server->get(hot, "tour");
    for (const std::string& page : pages) {
      ASSERT_TRUE(server->get(page).ok()) << page;
      ASSERT_TRUE(server->get(page, "tour").ok()) << page;
      serve::ConcurrentServer::Stats s = server->stats();
      EXPECT_LE(s.cached_bytes, limits.base_bytes_per_shard);
      EXPECT_LE(s.overlay_bytes, limits.overlay_bytes_per_shard);
      EXPECT_EQ(s.cache_inserted, s.cached_entries + s.cache_evicted);
      EXPECT_EQ(s.overlay_inserted, s.overlay_entries + s.overlay_evicted);
    }
  }
  serve::ConcurrentServer::Stats s = server->stats();
  EXPECT_GE(s.stale_refills, 1u);
  EXPECT_GE(s.overlay_stale_renders, 1u);
  EXPECT_GE(s.cache_evicted, 1u);
  EXPECT_GE(s.overlay_evicted, 1u);
}

TEST(CacheBytes, OversizedRefillDoesNotDrainColderResidents) {
  // A refill that grows an entry past the whole byte budget on its own
  // must evict only itself: tail evictions cannot bring the shard under
  // cap while the oversized entry sits at the recency front, so
  // draining the colder (perfectly cacheable) entries is pure loss.
  // Pre-fix, one oversized refill flushed the entire shard.
  auto engine = synthetic_engine(4);
  engine->internals().register_profile({"tour", {"ByAuthor"}});

  // A member's title is rendered on the pages that LINK to it (the
  // index, its tour neighbors) — not on its own page. Discover which
  // page a giant retitle balloons (the hot page) and two pages it
  // leaves byte-identical (the cold residents), then put the title
  // back.
  const std::string node = engine->structure().members().front().node_id;
  const std::string giant(3600, 'x');
  (void)engine->internals().retitle_node(node, "t");
  const std::vector<std::string> all_pages = html_pages(*engine);
  std::map<std::string, std::size_t> small;
  for (const std::string& page : all_pages) {
    small[page] = engine->site().get(page)->size();
  }
  (void)engine->internals().retitle_node(node, giant);
  std::string hot;
  std::vector<std::string> pages;
  for (const std::string& page : all_pages) {
    const std::size_t now = engine->site().get(page)->size();
    if (now > small[page] + giant.size() / 2) {
      if (hot.empty()) hot = page;
    } else if (now == small[page] && pages.size() < 2) {
      pages.push_back(page);
    }
  }
  ASSERT_FALSE(hot.empty());
  ASSERT_EQ(pages.size(), 2u);
  (void)engine->internals().retitle_node(node, "t");

  const std::map<std::string, std::string> tour_oracle =
      profile_oracle(*engine, {"tour", {"ByAuthor"}});
  std::size_t base_set = 0, overlay_set = 0;
  for (const std::string& page : {hot, pages[0], pages[1]}) {
    base_set += engine->site().get(page)->size();
    overlay_set += tour_oracle.at(page).size();
  }
  // The three-page set fits with slack; the ballooned hot page alone
  // will not.
  const serve::CacheLimits limits{.base_bytes_per_shard = base_set + 400,
                                  .overlay_bytes_per_shard =
                                      overlay_set + 400};
  auto server = engine->open_concurrent(1, limits);

  ASSERT_TRUE(server->get(hot).ok());
  ASSERT_TRUE(server->get(hot, "tour").ok());
  for (const std::string& page : pages) {
    ASSERT_TRUE(server->get(page).ok());
    ASSERT_TRUE(server->get(page, "tour").ok());
  }
  ASSERT_EQ(server->stats().cached_entries, 3u);
  ASSERT_EQ(server->stats().overlay_entries, 3u);

  // Balloon the hot page past the entire per-shard byte budget and
  // refill it: the stale refresh happens in place, then must retire
  // only itself.
  (void)engine->internals().retitle_node(node, giant);
  ASSERT_GT(engine->site().get(hot)->size(), limits.base_bytes_per_shard);
  ASSERT_TRUE(server->get(hot).ok());
  ASSERT_TRUE(server->get(hot, "tour").ok());

  serve::ConcurrentServer::Stats s = server->stats();
  EXPECT_EQ(s.cached_entries, pages.size());   // colder entries survived
  EXPECT_EQ(s.overlay_entries, pages.size());
  EXPECT_LE(s.cached_bytes, limits.base_bytes_per_shard);
  EXPECT_LE(s.overlay_bytes, limits.overlay_bytes_per_shard);
  EXPECT_EQ(s.cache_inserted, s.cached_entries + s.cache_evicted);
  EXPECT_EQ(s.overlay_inserted, s.overlay_entries + s.overlay_evicted);

  // And they survived as RESIDENTS: re-getting a cold page refreshes it
  // in place (the retitle bumped the epoch) instead of re-inserting it
  // into a drained shard.
  const std::size_t inserted = s.cache_inserted;
  const std::size_t overlay_inserted = s.overlay_inserted;
  ASSERT_TRUE(server->get(pages[0]).ok());
  ASSERT_TRUE(server->get(pages[0], "tour").ok());
  EXPECT_EQ(server->stats().cache_inserted, inserted);
  EXPECT_EQ(server->stats().overlay_inserted, overlay_inserted);
}

TEST(CacheBytes, OverlayResizingRefillsKeepExactBytesWhenUnbounded) {
  // Same resize churn without caps: with nothing ever evicted, the
  // overlay byte ledger must equal the sum of exactly the bodies a
  // fresh render would produce — any drift in the refresh delta
  // accumulates here with nowhere to hide.
  auto engine = synthetic_engine(3);
  engine->internals().register_profile({"tour", {"ByAuthor"}});
  auto server = engine->open_concurrent(1);
  std::vector<std::string> pages = html_pages(*engine);

  const std::string node = engine->structure().members().front().node_id;
  for (int round = 0; round < 4; ++round) {
    (void)engine->internals().retitle_node(
        node, round % 2 == 0 ? std::string(120, 'y') : "s");
    std::size_t expected = 0;
    for (const std::string& page : pages) {
      site::Response r = server->get(page, "tour");
      ASSERT_TRUE(r.ok()) << page;
      expected += r.body->size();
    }
    serve::ConcurrentServer::Stats s = server->stats();
    EXPECT_EQ(s.overlay_bytes, expected);
    EXPECT_EQ(s.overlay_entries, pages.size());
    EXPECT_EQ(s.overlay_inserted, s.overlay_entries + s.overlay_evicted);
  }
  EXPECT_GE(server->stats().overlay_stale_renders, 1u);
}

TEST(CacheBytes, StaleRefillMovesTheByteLedgerByTheSizeDelta) {
  auto engine = synthetic_engine(3);
  auto server = engine->open_concurrent(1);
  std::vector<std::string> pages = html_pages(*engine);
  std::size_t total = 0;
  for (const std::string& page : pages) {
    site::Response r = server->get(page);
    ASSERT_TRUE(r.ok());
    total += r.body->size();
  }
  ASSERT_EQ(server->stats().cached_bytes, total);

  // Retitle one member page: its body grows/shrinks; after the stale
  // refill the ledger must equal the NEW sum, not the old one.
  const std::string node = engine->structure().members().front().node_id;
  (void)engine->internals().retitle_node(
      node, "a much, much longer title than before");
  std::size_t new_total = 0;
  for (const std::string& page : pages) {
    site::Response r = server->get(page);
    ASSERT_TRUE(r.ok());
    new_total += r.body->size();
  }
  serve::ConcurrentServer::Stats s = server->stats();
  EXPECT_EQ(s.cached_bytes, new_total);
  EXPECT_GE(s.stale_refills, 1u);
  EXPECT_EQ(s.cache_inserted, s.cached_entries + s.cache_evicted);
}

}  // namespace

// The incremental rebuild engine: BuildGraph mechanism tests, the
// byte-identity property (incremental output == from-scratch build) over
// randomized edit sequences, change-impact locality, provenance, and the
// stale-cache regression (navigate → mutate → re-navigate).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "aop/aspect.hpp"
#include "common/rng.hpp"
#include "nav/buildgraph.hpp"
#include "nav/pipeline.hpp"
#include "nav/worker_pool.hpp"
#include "oracle.hpp"
#include "site/virtual_site.hpp"

namespace hm = navsep::hypermedia;
namespace nav = navsep::nav;
namespace site = navsep::site;
using navsep::museum::MuseumWorld;
using navsep::museum::SyntheticSpec;
using navsep::testing::expect_sites_identical;
using navsep::testing::full_build_oracle;

namespace {

// --- BuildGraph mechanism -----------------------------------------------------

TEST(BuildGraphMechanism, RunsDirtyNodesInDependencyOrder) {
  nav::BuildGraph g;
  std::vector<std::string> ran;
  g.define("c", nav::ProductKind::Page, {"b"}, [&] {
    ran.push_back("c");
    return nav::hash_bytes("c1");
  });
  g.define("a", nav::ProductKind::Source, {}, [&] {
    ran.push_back("a");
    return nav::hash_bytes("a1");
  });
  g.define("b", nav::ProductKind::Linkbase, {"a"}, [&] {
    ran.push_back("b");
    return nav::hash_bytes("b1");
  });
  nav::RebuildReport r = g.run();
  EXPECT_EQ(ran, (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(r.nodes_rebuilt, 3u);
  EXPECT_EQ(r.nodes_changed, 3u);
  EXPECT_EQ(r.pages_total, 1u);
  EXPECT_EQ(r.pages_rewoven, 1u);

  // A clean graph runs nothing.
  ran.clear();
  r = g.run();
  EXPECT_TRUE(ran.empty());
  EXPECT_EQ(r.nodes_dirty, 0u);
}

TEST(BuildGraphMechanism, EarlyCutoffStopsPropagation) {
  nav::BuildGraph g;
  int source_version = 1;
  std::vector<std::string> ran;
  g.define("src", nav::ProductKind::Source, {}, [&] {
    ran.push_back("src");
    return nav::hash_bytes("stable");  // same product every time
  });
  g.define("page", nav::ProductKind::Page, {"src"}, [&] {
    ran.push_back("page");
    return nav::hash_bytes("page" + std::to_string(source_version));
  });
  (void)g.run();
  ran.clear();

  // Source re-runs but hashes the same: the page must NOT re-run.
  g.mark_dirty("src");
  nav::RebuildReport r = g.run();
  EXPECT_EQ(ran, (std::vector<std::string>{"src"}));
  EXPECT_EQ(r.pages_rewoven, 0u);
  EXPECT_EQ(r.nodes_changed, 0u);
}

TEST(BuildGraphMechanism, HashChangePropagatesTransitively) {
  nav::BuildGraph g;
  int v = 1;
  std::vector<std::string> ran;
  g.define("a", nav::ProductKind::Source, {},
           [&] { return nav::hash_bytes("a" + std::to_string(v)); });
  g.define("b", nav::ProductKind::ArcTable, {"a"}, [&] {
    ran.push_back("b");
    return nav::hash_bytes("b" + std::to_string(v));
  });
  g.define("c", nav::ProductKind::Page, {"b"}, [&] {
    ran.push_back("c");
    return nav::hash_bytes("c" + std::to_string(v));
  });
  (void)g.run();
  ran.clear();
  v = 2;
  g.mark_dirty("a");
  (void)g.run();
  EXPECT_EQ(ran, (std::vector<std::string>{"b", "c"}));
}

TEST(BuildGraphMechanism, NodesDefinedMidRunAreBuiltInTheSameRun) {
  nav::BuildGraph g;
  bool expanded = false;
  int leaf_builds = 0;
  g.define("root", nav::ProductKind::Source, {}, [&] {
    if (!expanded) {
      expanded = true;
      g.define("leaf", nav::ProductKind::Page, {"root"},
               [&] { ++leaf_builds; return nav::hash_bytes("leaf"); });
    }
    return nav::hash_bytes("root");
  });
  nav::RebuildReport r = g.run();
  EXPECT_EQ(leaf_builds, 1);
  EXPECT_EQ(r.pages_total, 1u);
}

TEST(BuildGraphMechanism, RemovedNodesStopBuilding) {
  nav::BuildGraph g;
  g.define("a", nav::ProductKind::Source, {},
           [&] { return nav::hash_bytes("a"); });
  g.define("b", nav::ProductKind::Page, {"a"},
           [&] { return nav::hash_bytes("b"); });
  (void)g.run();
  EXPECT_TRUE(g.remove("b"));
  EXPECT_FALSE(g.remove("b"));
  g.mark_all_dirty();
  nav::RebuildReport r = g.run();
  EXPECT_EQ(r.pages_total, 0u);
  EXPECT_FALSE(g.contains("b"));
}

TEST(BuildGraphMechanism, NonSettlingGraphThrowsInsteadOfLying) {
  // A callback that redefines another node every time it runs keeps the
  // graph dirty forever; the pass backstop must fail loudly rather than
  // return a normal-looking report over an unsettled site.
  nav::BuildGraph g;
  int spin = 0;
  g.define("restless", nav::ProductKind::Source, {}, [&] {
    g.define("spun", nav::ProductKind::Page, {},
             [&] { return nav::hash_bytes("s" + std::to_string(++spin)); });
    return nav::hash_bytes("restless");
  });
  g.define("agitator", nav::ProductKind::Source, {"spun"}, [&] {
    g.mark_dirty("restless");
    return nav::hash_bytes("a" + std::to_string(spin));
  });
  EXPECT_THROW((void)g.run(), navsep::SemanticError);
}

TEST(BuildGraphMechanism, CycleThrows) {
  nav::BuildGraph g;
  g.define("a", nav::ProductKind::Source, {"b"},
           [] { return std::uint64_t{1}; });
  g.define("b", nav::ProductKind::Source, {"a"},
           [] { return std::uint64_t{2}; });
  EXPECT_THROW((void)g.run(), navsep::SemanticError);
}

// --- engine helpers ------------------------------------------------------------
//
// The from-scratch oracle and the byte-identity assertion live in
// tests/oracle.{hpp,cpp}, shared with overlay_test and stress_test.

std::unique_ptr<nav::Engine> paper_engine(hm::AccessStructureKind kind) {
  return nav::SitePipeline()
      .paper_museum()
      .access(kind, "picasso")
      .contexts({"ByAuthor"})
      .weave()
      .serve();
}

std::unique_ptr<nav::Engine> synthetic_engine(std::size_t paintings,
                                              hm::AccessStructureKind kind) {
  return nav::SitePipeline()
      .conceptual(SyntheticSpec{.painters = 2,
                                .paintings_per_painter = paintings,
                                .movements = 3,
                                .seed = 7})
      .access(kind, "painter-0")
      .weave()
      .serve();
}

// --- incremental == full, single edits -----------------------------------------

TEST(IncrementalEngine, InitialServeMatchesBatchBuild) {
  auto engine = paper_engine(hm::AccessStructureKind::IndexedGuidedTour);
  expect_sites_identical(engine->site(), full_build_oracle(*engine));
}

TEST(IncrementalEngine, ReplaceArcReweavesExactlyOnePage) {
  auto engine = synthetic_engine(10, hm::AccessStructureKind::Index);
  const std::vector<hm::AccessArc> arcs = engine->authored_arcs();
  // An "up" arc lives on exactly one member page.
  auto it = std::find_if(arcs.begin(), arcs.end(), [](const hm::AccessArc& a) {
    return a.role == hm::roles::kUp;
  });
  ASSERT_NE(it, arcs.end());
  hm::AccessArc edited = *it;
  edited.title = "Back to the collection";

  nav::RebuildReport r = engine->replace_arc(
      static_cast<std::size_t>(it - arcs.begin()), edited);
  EXPECT_EQ(r.pages_rewoven, 1u);
  EXPECT_EQ(r.pages_total, engine->structure().members().size() + 1);
  EXPECT_EQ(r.linkbases_reauthored, 1u);

  const std::string* page =
      engine->site().get(navsep::core::default_href_for(edited.from));
  ASSERT_NE(page, nullptr);
  EXPECT_NE(page->find("Back to the collection"), std::string::npos);
  expect_sites_identical(engine->site(), full_build_oracle(*engine));
}

TEST(IncrementalEngine, RetitleNodeReweavesOnlyReferencingPages) {
  auto engine = paper_engine(hm::AccessStructureKind::IndexedGuidedTour);
  // Retitling the middle member (guernica) changes anchors on: the index
  // page (entry), guitar (Next: ...), avignon (Previous: ...). Guernica's
  // own page only carries anchors *to* others and stays untouched —
  // navigation labels are not content.
  const std::string* guernica_before = engine->site().get("guernica.html");
  ASSERT_NE(guernica_before, nullptr);
  const std::string before_copy = *guernica_before;

  nav::RebuildReport r = engine->retitle_node("guernica", "Guernica (1937)");
  EXPECT_EQ(r.pages_rewoven, 3u);
  EXPECT_EQ(r.pages_total, 4u);

  EXPECT_EQ(*engine->site().get("guernica.html"), before_copy);
  const std::string* guitar = engine->site().get("guitar.html");
  ASSERT_NE(guitar, nullptr);
  EXPECT_NE(guitar->find("Guernica (1937)"), std::string::npos);
  expect_sites_identical(engine->site(), full_build_oracle(*engine));
}

TEST(IncrementalEngine, KindSwapLeavesIndexPageAlone) {
  // The paper's §5 change request: Index → IndexedGuidedTour. The index
  // star is a subset of the IGT arc set, so the index page's slice is
  // unchanged — only member pages gain tour anchors.
  auto engine = synthetic_engine(10, hm::AccessStructureKind::Index);
  const std::size_t members = engine->structure().members().size();
  nav::RebuildReport r =
      engine->set_access_structure(hm::AccessStructureKind::IndexedGuidedTour);
  EXPECT_EQ(r.pages_rewoven, members);
  EXPECT_EQ(r.pages_total, members + 1);
  EXPECT_EQ(engine->structure().kind(),
            hm::AccessStructureKind::IndexedGuidedTour);
  expect_sites_identical(engine->site(), full_build_oracle(*engine));
}

TEST(IncrementalEngine, AddNodeWeavesTheNewPage) {
  auto engine = synthetic_engine(5, hm::AccessStructureKind::IndexedGuidedTour);
  // Pick a painting node that is not yet a member (painter-1's work).
  std::set<std::string> members;
  for (const auto& m : engine->structure().members()) members.insert(m.node_id);
  std::string newcomer;
  for (const auto* node : engine->navigation().nodes_of("PaintingNode")) {
    if (members.find(node->id()) == members.end()) {
      newcomer = node->id();
      break;
    }
  }
  ASSERT_FALSE(newcomer.empty());
  const std::string path = navsep::core::default_href_for(newcomer);
  EXPECT_EQ(engine->site().get(path), nullptr);

  nav::RebuildReport r = engine->add_node(newcomer);
  EXPECT_NE(engine->site().get(path), nullptr);
  EXPECT_EQ(r.pages_total, members.size() + 2);
  // New page + index page (new entry) + old tail (new Next anchor).
  EXPECT_EQ(r.pages_rewoven, 3u);
  expect_sites_identical(engine->site(), full_build_oracle(*engine));

  EXPECT_THROW((void)engine->add_node(newcomer), navsep::SemanticError);
  EXPECT_THROW((void)engine->add_node("no-such-node"),
               navsep::ResolutionError);
}

TEST(IncrementalEngine, ShrinkingTheStructureRetiresPages) {
  auto engine = synthetic_engine(6, hm::AccessStructureKind::Index);
  std::vector<hm::Member> members = engine->structure().members();
  const std::string dropped = members.back().node_id;
  const std::string dropped_path = navsep::core::default_href_for(dropped);

  // Warm the response cache on the soon-to-vanish page.
  ASSERT_TRUE(engine->server().get(dropped_path).ok());

  members.pop_back();
  std::vector<hm::Member> kept = members;
  nav::RebuildReport r = engine->set_access_structure(
      hm::make_access_structure(hm::AccessStructureKind::Index,
                                engine->structure().name(), std::move(kept)));
  EXPECT_EQ(r.pages_total, members.size() + 1);
  EXPECT_EQ(engine->site().get(dropped_path), nullptr);
  // The cached 200 must be gone with the page (it held a pointer into the
  // removed artifact — ASan guards the dangling case).
  EXPECT_EQ(engine->server().get(dropped_path).status, 404);
  expect_sites_identical(engine->site(), full_build_oracle(*engine));
}

TEST(IncrementalEngine, MenuMutationsRegenerateSubStructureArcs) {
  // A constructed Menu's sub-structures are captured as build-graph
  // inputs, so member-level mutations regenerate its derived arcs
  // instead of throwing: retitle_node edits the sub holding the member,
  // add_node appends to the last sub, set_access_structure(Menu)
  // refreshes from the captured subs — all byte-identical to a full
  // build of the regenerated Menu.
  auto engine = synthetic_engine(4, hm::AccessStructureKind::Index);
  const std::vector<hm::Member> wing_members = engine->structure().members();
  std::vector<std::unique_ptr<hm::AccessStructure>> subs;
  subs.push_back(hm::make_access_structure(hm::AccessStructureKind::Index,
                                           "wing-a", wing_members));
  (void)engine->set_access_structure(
      std::make_unique<hm::Menu>("floors", std::move(subs)));
  EXPECT_EQ(engine->structure().kind(), hm::AccessStructureKind::Menu);
  expect_sites_identical(engine->site(), full_build_oracle(*engine));

  // Retitle a painting member inside the sub: the sub's derived arcs
  // regenerate and the site matches a from-scratch build.
  const std::string member = wing_members.front().node_id;
  nav::RebuildReport r = engine->retitle_node(member, "Renamed Piece");
  EXPECT_GT(r.nodes_rebuilt, 0u);
  bool renamed = false;
  for (const auto& arc : engine->authored_arcs()) {
    if (arc.to == member && arc.title == "Renamed Piece") renamed = true;
  }
  EXPECT_TRUE(renamed);
  expect_sites_identical(engine->site(), full_build_oracle(*engine));

  // A no-op retitle cuts off at the sub's Source node: nothing re-weaves.
  nav::RebuildReport noop = engine->retitle_node(member, "Renamed Piece");
  EXPECT_EQ(noop.pages_rewoven, 0u);
  EXPECT_EQ(noop.linkbases_reauthored, 0u);

  // add_node appends to the last sub and its arcs appear.
  std::string newcomer;
  for (const auto* node : engine->navigation().nodes_of("PaintingNode")) {
    if (std::none_of(wing_members.begin(), wing_members.end(),
                     [&](const auto& m) { return m.node_id == node->id(); })) {
      newcomer = node->id();
      break;
    }
  }
  ASSERT_FALSE(newcomer.empty());
  (void)engine->add_node(newcomer);
  bool reachable = false;
  for (const auto& arc : engine->authored_arcs()) {
    if (arc.to == newcomer) reachable = true;
  }
  EXPECT_TRUE(reachable);
  expect_sites_identical(engine->site(), full_build_oracle(*engine));

  // Members unknown to every sub, and duplicates, are still rejected.
  EXPECT_THROW((void)engine->retitle_node("floors", "X"),
               navsep::ResolutionError);
  EXPECT_THROW((void)engine->add_node(member), navsep::SemanticError);

  // Menu-kind regeneration now works too: it refreshes from the subs.
  (void)engine->set_access_structure(hm::AccessStructureKind::Menu);
  EXPECT_EQ(engine->structure().kind(), hm::AccessStructureKind::Menu);
  expect_sites_identical(engine->site(), full_build_oracle(*engine));

  // replace_arc still works on the materialized Menu.
  std::vector<hm::AccessArc> arcs = engine->authored_arcs();
  ASSERT_FALSE(arcs.empty());
  arcs[0].title = "Ground floor";
  (void)engine->replace_arc(0, arcs[0]);
  expect_sites_identical(engine->site(), full_build_oracle(*engine));
}

TEST(IncrementalEngine, OpaqueMenusStillRejectKindRegeneration) {
  // Regression for the pre-sub-capture guard: a Menu the engine cannot
  // see into (here: a Menu nested inside a Menu) has no captured subs,
  // so kind-based regeneration still throws WITHOUT moving any state.
  auto engine = synthetic_engine(4, hm::AccessStructureKind::Index);
  std::vector<std::unique_ptr<hm::AccessStructure>> inner;
  inner.push_back(hm::make_access_structure(hm::AccessStructureKind::Index,
                                            "wing-a",
                                            engine->structure().members()));
  std::vector<std::unique_ptr<hm::AccessStructure>> subs;
  subs.push_back(std::make_unique<hm::Menu>("east", std::move(inner)));
  (void)engine->set_access_structure(
      std::make_unique<hm::Menu>("floors", std::move(subs)));
  EXPECT_EQ(engine->structure().kind(), hm::AccessStructureKind::Menu);
  expect_sites_identical(engine->site(), full_build_oracle(*engine));

  const std::string menu_member = engine->structure().members()[0].node_id;
  EXPECT_THROW((void)engine->retitle_node(menu_member, "Wing A"),
               navsep::SemanticError);
  EXPECT_THROW(
      (void)engine->set_access_structure(hm::AccessStructureKind::Menu),
      navsep::SemanticError);

  // replace_arc still works on the materialized Menu.
  std::vector<hm::AccessArc> arcs = engine->authored_arcs();
  ASSERT_FALSE(arcs.empty());
  arcs[0].title = "Ground floor";
  (void)engine->replace_arc(0, arcs[0]);
  expect_sites_identical(engine->site(), full_build_oracle(*engine));
}

// --- provenance ----------------------------------------------------------------

TEST(IncrementalEngine, AnchorProvenanceNamesTheAuthoredArc) {
  auto engine = paper_engine(hm::AccessStructureKind::IndexedGuidedTour);
  const auto* anchors = engine->provenance_for("guitar");
  ASSERT_NE(anchors, nullptr);
  ASSERT_FALSE(anchors->empty());
  for (const auto& anchor : *anchors) {
    EXPECT_EQ(anchor.page_id, "guitar");
    EXPECT_EQ(anchor.source, "links.xml");  // stored pages weave no
                                            // contextual arcs
    EXPECT_EQ(anchor.context, "");
  }
  // The anchors woven into guitar.html are exactly the context-free arcs
  // leaving it in the authored linkbase.
  std::size_t arcs_from_guitar = 0;
  for (const auto& arc : engine->authored_arcs()) {
    if (arc.from == "guitar") ++arcs_from_guitar;
  }
  EXPECT_EQ(anchors->size(), arcs_from_guitar);

  // Unknown and tangled pages have no provenance.
  EXPECT_EQ(engine->provenance_for("nope"), nullptr);
}

TEST(IncrementalEngine, ProvenanceFollowsAnArcEdit) {
  auto engine = paper_engine(hm::AccessStructureKind::Index);
  const std::vector<hm::AccessArc> arcs = engine->authored_arcs();
  auto it = std::find_if(arcs.begin(), arcs.end(), [](const hm::AccessArc& a) {
    return a.role == hm::roles::kUp && a.from == "guitar";
  });
  ASSERT_NE(it, arcs.end());
  hm::AccessArc edited = *it;
  edited.to = "guernica";  // retarget guitar's up-link
  (void)engine->replace_arc(static_cast<std::size_t>(it - arcs.begin()),
                            edited);
  const auto* anchors = engine->provenance_for("guitar");
  ASSERT_NE(anchors, nullptr);
  const bool retargeted =
      std::any_of(anchors->begin(), anchors->end(), [](const auto& a) {
        return a.role == hm::roles::kUp && a.to == "guernica";
      });
  EXPECT_TRUE(retargeted);
  expect_sites_identical(engine->site(), full_build_oracle(*engine));
}

// --- stale-cache regression (navigate → mutate → re-navigate) -------------------

TEST(IncrementalEngine, MutationInvalidatesResponseAndArcCachesTogether) {
  auto engine = paper_engine(hm::AccessStructureKind::IndexedGuidedTour);
  nav::Navigating& browser = engine->navigator();

  ASSERT_TRUE(browser.navigate("guitar.html"));
  ASSERT_NE(browser.page(), nullptr);
  EXPECT_NE(browser.page()->find("Next: Guernica"), std::string::npos);
  const std::vector<const navsep::xlink::Arc*> links_before = browser.links();
  ASSERT_FALSE(links_before.empty());

  // Mutate the live site: the linkbase is re-authored, guitar.html is
  // re-woven, the response cache entry dropped, and the browser's cached
  // arc list refreshed (the old Arc pointers died with the arc table).
  (void)engine->retitle_node("guernica", "La Guernica");

  ASSERT_TRUE(browser.navigate("guitar.html"));
  EXPECT_NE(browser.page()->find("Next: La Guernica"), std::string::npos)
      << "stale page served after mutation";
  ASSERT_FALSE(browser.links().empty());
  EXPECT_TRUE(browser.follow_role("next"));
  EXPECT_NE(browser.location().find("guernica.html"), std::string::npos);
}

TEST(IncrementalEngine, RebuildAlsoInvalidatesBothCaches) {
  // The force-everything path must uphold the same contract as the
  // incremental one: no stale responses, no dangling arc pointers.
  auto engine = paper_engine(hm::AccessStructureKind::IndexedGuidedTour);
  nav::Navigating& browser = engine->navigator();
  ASSERT_TRUE(browser.navigate("guitar.html"));
  engine->internals().rebuild();
  ASSERT_FALSE(browser.links().empty());
  EXPECT_TRUE(browser.follow_role("next"));
  EXPECT_TRUE(browser.back());
  // Whatever got cached was cached *after* the rebuild — the page served
  // on back() is the freshly woven one.
  ASSERT_NE(browser.page(), nullptr);
  EXPECT_NE(browser.page()->find("Next: Guernica"), std::string::npos);
}

// --- tangled baseline -----------------------------------------------------------

TEST(IncrementalEngine, TangledMutationReweavesTheWholeSite) {
  // The asymmetry the paper measures, live: with navigation tangled into
  // every page there is no linkbase layer to localize the edit, so the
  // cheapest retitle re-renders everything.
  auto engine = nav::SitePipeline()
                    .conceptual(SyntheticSpec{.painters = 2,
                                              .paintings_per_painter = 8,
                                              .movements = 3,
                                              .seed = 7})
                    .access(hm::AccessStructureKind::IndexedGuidedTour,
                            "painter-0")
                    .tangled()
                    .serve();
  const std::string victim = engine->structure().members()[3].node_id;
  nav::RebuildReport r = engine->retitle_node(victim, "Renamed");
  EXPECT_EQ(r.pages_rewoven, r.pages_total);
  EXPECT_DOUBLE_EQ(r.reweave_ratio(), 1.0);
  EXPECT_EQ(engine->provenance_for(victim), nullptr);
}

// --- the acceptance property: randomized edit sequences -------------------------

TEST(IncrementalEngine, RandomizedEditSequenceStaysByteIdentical) {
  auto engine = nav::SitePipeline()
                    .conceptual(SyntheticSpec{.painters = 3,
                                              .paintings_per_painter = 6,
                                              .movements = 3,
                                              .seed = 11})
                    .access(hm::AccessStructureKind::Index, "painter-0")
                    .contexts({"ByAuthor", "ByMovement"})
                    .weave()
                    .serve();

  std::vector<std::string> all_paintings;
  for (const auto* node : engine->navigation().nodes_of("PaintingNode")) {
    all_paintings.push_back(node->id());
  }
  const hm::AccessStructureKind kinds[] = {
      hm::AccessStructureKind::Index, hm::AccessStructureKind::GuidedTour,
      hm::AccessStructureKind::IndexedGuidedTour};

  navsep::Rng rng(2026);
  for (int step = 0; step < 40; ++step) {
    const std::uint64_t op = rng.below(4);
    if (op == 0) {
      std::vector<hm::AccessArc> arcs = engine->authored_arcs();
      if (arcs.empty()) continue;
      const std::size_t index =
          static_cast<std::size_t>(rng.below(arcs.size()));
      hm::AccessArc edited = arcs[index];
      edited.title = "edit-" + rng.word(6);
      if (rng.chance(0.3)) edited.to = rng.pick(all_paintings);
      (void)engine->replace_arc(index, edited);
    } else if (op == 1) {
      const auto& members = engine->structure().members();
      const std::string id =
          members[static_cast<std::size_t>(rng.below(members.size()))].node_id;
      (void)engine->retitle_node(id, "title-" + rng.word(5));
    } else if (op == 2) {
      std::set<std::string> current;
      for (const auto& m : engine->structure().members()) {
        current.insert(m.node_id);
      }
      std::string candidate;
      for (const auto& id : all_paintings) {
        if (current.find(id) == current.end()) {
          candidate = id;
          break;
        }
      }
      if (candidate.empty()) continue;
      (void)engine->add_node(candidate);
    } else {
      (void)engine->set_access_structure(
          kinds[static_cast<std::size_t>(rng.below(3))]);
    }

    ASSERT_NO_FATAL_FAILURE(
        expect_sites_identical(engine->site(), full_build_oracle(*engine)))
        << "diverged after step " << step;
  }

  // And the incremental state must be a fixpoint of the force path.
  std::vector<std::pair<std::string, std::string>> before =
      engine->site().artifacts();
  engine->internals().rebuild();
  EXPECT_EQ(engine->site().artifacts(), before);
}

// --- build-graph introspection --------------------------------------------------

TEST(IncrementalEngine, GraphShapeMatchesTheSite) {
  auto engine = paper_engine(hm::AccessStructureKind::IndexedGuidedTour);
  const nav::BuildGraph& g = engine->build_graph();
  EXPECT_EQ(g.count(nav::ProductKind::Page), 4u);       // 3 members + index
  EXPECT_EQ(g.count(nav::ProductKind::ArcSlice), 4u);   // one per page
  EXPECT_EQ(g.count(nav::ProductKind::Linkbase), 2u);   // links + ByAuthor
  EXPECT_EQ(g.count(nav::ProductKind::ArcTable), 1u);
  EXPECT_EQ(g.count(nav::ProductKind::Source), 1u);
  EXPECT_EQ(g.count(nav::ProductKind::Server), 1u);
  EXPECT_FALSE(g.is_dirty("nav:spec"));
  EXPECT_TRUE(g.contains("page:guitar"));
  EXPECT_TRUE(g.contains("linkbase:links-byauthor.xml"));
}

// --- parallel waves (BuildGraph mechanism) --------------------------------------

TEST(BuildGraphMechanism, ParallelNodesCommitInPlanOrderForAnyLaneCount) {
  // Compute phases may run on any lane in any order; commits must land
  // serially in plan order, so the observable effect sequence is
  // identical to a serial run whatever the pool size.
  for (std::size_t lanes : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    nav::BuildGraph g;
    std::vector<std::string> committed;
    g.define("src", nav::ProductKind::Source, {},
             [] { return nav::hash_bytes("s1"); });
    for (const char* id : {"p1", "p2", "p3", "p4", "p5"}) {
      g.define_parallel(id, nav::ProductKind::Page, {"src"},
                        [id, &committed] {
                          nav::BuildGraph::ParallelOutcome out;
                          out.hash = nav::hash_bytes(id);
                          out.commit = [id, &committed] {
                            committed.emplace_back(id);
                          };
                          return out;
                        });
    }
    nav::WorkerPool pool(lanes);
    nav::RebuildReport r = g.run(&pool);
    EXPECT_EQ(committed,
              (std::vector<std::string>{"p1", "p2", "p3", "p4", "p5"}))
        << "lanes=" << lanes;
    EXPECT_EQ(r.nodes_rebuilt, 6u);
    EXPECT_EQ(r.pages_rewoven, 5u);
    EXPECT_EQ(r.weave_workers, lanes == 1 ? 1u : lanes);
    EXPECT_EQ(r.max_parallel_weaves, lanes == 1 ? 0u : 5u);

    // Early cutoff still applies: a clean graph schedules nothing.
    nav::RebuildReport clean = g.run(&pool);
    EXPECT_EQ(clean.nodes_rebuilt, 0u);
    EXPECT_EQ(clean.max_parallel_weaves, 0u);
  }
}

TEST(BuildGraphMechanism, ParallelWaveExceptionKeepsSerialContract) {
  // The serial contract on a throwing rebuild: the node's dirty bit is
  // cleared before the callback runs, so the throwing node ends clean
  // with a stale hash. A parallel wave must behave identically — plus:
  // commits ordered before the throwing node land, later ones do not.
  nav::BuildGraph g;
  std::vector<std::string> committed;
  auto page = [&](const char* id, bool boom) {
    g.define_parallel(id, nav::ProductKind::Page, {},
                      [id, boom, &committed] {
                        if (boom) throw navsep::SemanticError("weave failed");
                        nav::BuildGraph::ParallelOutcome out;
                        out.hash = nav::hash_bytes(id);
                        out.commit = [id, &committed] {
                          committed.emplace_back(id);
                        };
                        return out;
                      });
  };
  page("a", false);
  page("b", true);
  page("c", false);
  nav::WorkerPool pool(4);
  EXPECT_THROW((void)g.run(&pool), navsep::SemanticError);
  EXPECT_EQ(committed, (std::vector<std::string>{"a"}));
  EXPECT_FALSE(g.is_dirty("a"));
  EXPECT_FALSE(g.is_dirty("b"));  // cleared before the compute ran
  EXPECT_TRUE(g.is_dirty("c"));   // its commit never ran

  // The next run picks up where the wave stopped.
  committed.clear();
  nav::RebuildReport r = g.run(&pool);
  EXPECT_EQ(committed, (std::vector<std::string>{"c"}));
  EXPECT_EQ(r.nodes_rebuilt, 1u);
}

// --- parallel weaving (Engine) ---------------------------------------------------

TEST(IncrementalEngine, WorkerCountsProduceByteIdenticalSites) {
  // The tentpole determinism claim: the woven site is a pure function of
  // the navigation design, not of the lane count. Build the same design
  // serially and with 2/4-lane pools, mutate identically, compare bytes.
  auto build = [](std::size_t lanes) {
    auto engine = nav::SitePipeline()
                      .conceptual(SyntheticSpec{.painters = 2,
                                                .paintings_per_painter = 8,
                                                .movements = 3,
                                                .seed = 21})
                      .access(hm::AccessStructureKind::IndexedGuidedTour,
                              "painter-0")
                      .contexts({"ByAuthor", "ByMovement"})
                      .weave()
                      .weave_workers(lanes)
                      .serve();
    (void)engine->retitle_node(engine->structure().members()[1].node_id,
                               "Retitled");
    (void)engine->set_access_structure(hm::AccessStructureKind::GuidedTour);
    return engine;
  };
  auto serial = build(1);
  auto two = build(2);
  auto four = build(4);
  EXPECT_EQ(serial->internals().weave_workers(), 1u);
  EXPECT_EQ(two->internals().weave_workers(), 2u);
  EXPECT_EQ(four->internals().weave_workers(), 4u);
  expect_sites_identical(two->site(), serial->site());
  expect_sites_identical(four->site(), serial->site());
  expect_sites_identical(four->site(), full_build_oracle(*four));

  // Provenance (logged through thread-locals during parallel waves)
  // matches the serial engine's too.
  const std::string member = serial->structure().members()[0].node_id;
  const auto* sp = serial->provenance_for(member);
  const auto* pp = four->provenance_for(member);
  ASSERT_NE(sp, nullptr);
  ASSERT_NE(pp, nullptr);
  ASSERT_EQ(sp->size(), pp->size());
  for (std::size_t i = 0; i < sp->size(); ++i) {
    EXPECT_EQ((*sp)[i].to, (*pp)[i].to);
    EXPECT_EQ((*sp)[i].role, (*pp)[i].role);
    EXPECT_EQ((*sp)[i].ordinal, (*pp)[i].ordinal);
    EXPECT_EQ((*sp)[i].source, (*pp)[i].source);
  }
}

TEST(IncrementalEngine, ParallelReportCountersSurfaceTheWave) {
  auto engine = nav::SitePipeline()
                    .conceptual(SyntheticSpec{.painters = 1,
                                              .paintings_per_painter = 6,
                                              .movements = 2,
                                              .seed = 3})
                    .access(hm::AccessStructureKind::Index, "painter-0")
                    .weave()
                    .weave_workers(3)
                    .serve();
  // A structure-kind swap re-weaves every page: the wave spans the site.
  nav::RebuildReport r =
      engine->set_access_structure(hm::AccessStructureKind::GuidedTour);
  EXPECT_EQ(r.weave_workers, 3u);
  EXPECT_EQ(r.max_parallel_weaves, r.pages_rewoven);
  EXPECT_GT(r.max_parallel_weaves, 1u);
  EXPECT_EQ(r.edits_coalesced, 1u);
  EXPECT_EQ(r.epochs_published, 1u);
  expect_sites_identical(engine->site(), full_build_oracle(*engine));
}

TEST(IncrementalEngine, ForeignAspectsForceTheSerialPath) {
  // User advice has no thread-safety contract: as soon as a non-engine
  // aspect is registered, weaves fall back to the serial path (and the
  // report says so), even with a pool configured.
  auto engine = nav::SitePipeline()
                    .conceptual(SyntheticSpec{.painters = 1,
                                              .paintings_per_painter = 4,
                                              .movements = 2,
                                              .seed = 5})
                    .access(hm::AccessStructureKind::Index, "painter-0")
                    .weave()
                    .weave_workers(4)
                    .serve();
  auto extra = std::make_shared<navsep::aop::Aspect>("extra");
  engine->internals().weaver().register_aspect(extra);
  nav::RebuildReport r =
      engine->set_access_structure(hm::AccessStructureKind::GuidedTour);
  EXPECT_EQ(r.weave_workers, 1u);
  EXPECT_EQ(r.max_parallel_weaves, 0u);
  expect_sites_identical(engine->site(), full_build_oracle(*engine));
}

// --- mutation batching -----------------------------------------------------------

TEST(IncrementalEngine, BatchCoalescesEditsIntoOneEpoch) {
  auto engine = synthetic_engine(6, hm::AccessStructureKind::Index);
  const std::uint64_t epoch_before = engine->snapshots().epoch();
  const std::uint64_t publishes_before = engine->snapshots().publishes();

  engine->begin_batch();
  EXPECT_TRUE(engine->batch_open());
  // Retitle first: structural mutations regenerate the arc set (and
  // discard arc-level overlays), exactly as they do unbatched.
  nav::RebuildReport mid = engine->retitle_node(
      engine->structure().members()[0].node_id, "batched-c");
  EXPECT_EQ(mid.nodes_rebuilt, 0u);  // deferred: nothing ran yet
  EXPECT_EQ(mid.epochs_published, 0u);
  std::vector<hm::AccessArc> arcs = engine->authored_arcs();
  ASSERT_GE(arcs.size(), 2u);
  arcs[0].title = "batched-a";
  (void)engine->replace_arc(0, arcs[0]);
  arcs[1].title = "batched-b";
  (void)engine->replace_arc(1, arcs[1]);
  // Batched state moves eagerly: later reads see the edits pre-commit...
  EXPECT_EQ(engine->authored_arcs()[0].title, "batched-a");
  // ...but nothing published.
  EXPECT_EQ(engine->snapshots().epoch(), epoch_before);

  nav::RebuildReport r = engine->commit_batch();
  EXPECT_FALSE(engine->batch_open());
  EXPECT_EQ(r.edits_coalesced, 3u);
  EXPECT_EQ(r.epochs_published, 1u);
  EXPECT_GT(r.nodes_rebuilt, 0u);
  EXPECT_EQ(engine->snapshots().epoch(), epoch_before + 1);
  EXPECT_EQ(engine->snapshots().publishes(), publishes_before + 1);
  expect_sites_identical(engine->site(), full_build_oracle(*engine));
}

TEST(IncrementalEngine, BatchLifecycleErrorsAndEmptyBatches) {
  auto engine = synthetic_engine(4, hm::AccessStructureKind::Index);
  EXPECT_THROW(engine->commit_batch(), navsep::SemanticError);
  engine->begin_batch();
  EXPECT_THROW(engine->begin_batch(), navsep::SemanticError);

  // An empty batch publishes nothing at all.
  const std::uint64_t publishes_before = engine->snapshots().publishes();
  nav::RebuildReport r = engine->commit_batch();
  EXPECT_EQ(r.edits_coalesced, 0u);
  EXPECT_EQ(r.epochs_published, 0u);
  EXPECT_EQ(engine->snapshots().publishes(), publishes_before);

  // A failed mutation inside a batch does not wedge the batch.
  engine->begin_batch();
  EXPECT_THROW((void)engine->add_node("no-such-node"),
               navsep::ResolutionError);
  std::vector<hm::AccessArc> arcs = engine->authored_arcs();
  arcs[0].title = "survivor";
  (void)engine->replace_arc(0, arcs[0]);
  nav::RebuildReport after = engine->commit_batch();
  EXPECT_EQ(after.edits_coalesced, 1u);
  EXPECT_EQ(after.epochs_published, 1u);
  expect_sites_identical(engine->site(), full_build_oracle(*engine));
}

TEST(IncrementalEngine, BatchedAndSequentialEnginesStayByteIdentical) {
  // The batching oracle: the same randomized mixed edit stream applied
  // sequentially to one engine and in randomized batch sizes to another
  // (with a parallel pool, for good measure) must leave both sites
  // byte-identical at every commit point.
  auto make = [](std::size_t lanes) {
    return nav::SitePipeline()
        .conceptual(SyntheticSpec{.painters = 3,
                                  .paintings_per_painter = 5,
                                  .movements = 3,
                                  .seed = 17})
        .access(hm::AccessStructureKind::Index, "painter-1")
        .contexts({"ByAuthor"})
        .weave()
        .weave_workers(lanes)
        .serve();
  };
  auto sequential = make(1);
  auto batched = make(2);

  std::vector<std::string> all_paintings;
  for (const auto* node : batched->navigation().nodes_of("PaintingNode")) {
    all_paintings.push_back(node->id());
  }
  const hm::AccessStructureKind kinds[] = {
      hm::AccessStructureKind::Index, hm::AccessStructureKind::GuidedTour,
      hm::AccessStructureKind::IndexedGuidedTour};

  navsep::Rng rng(404);
  for (int round = 0; round < 10; ++round) {
    const std::uint64_t epoch_before = batched->snapshots().epoch();
    const std::size_t batch_size = 1 + static_cast<std::size_t>(rng.below(5));
    batched->begin_batch();
    std::size_t applied = 0;
    for (std::size_t k = 0; k < batch_size; ++k) {
      const std::uint64_t op = rng.below(4);
      // Decide the edit from the batched engine's (eagerly moved) state,
      // then apply the identical edit to both engines.
      if (op == 0) {
        std::vector<hm::AccessArc> arcs = batched->internals().authored_arcs();
        if (arcs.empty()) continue;
        const std::size_t index =
            static_cast<std::size_t>(rng.below(arcs.size()));
        hm::AccessArc edited = arcs[index];
        edited.title = "edit-" + rng.word(6);
        (void)batched->internals().replace_arc(index, edited);
        (void)sequential->internals().replace_arc(index, edited);
      } else if (op == 1) {
        const auto& members = batched->structure().members();
        const std::string id =
            members[static_cast<std::size_t>(rng.below(members.size()))]
                .node_id;
        const std::string title = "title-" + rng.word(5);
        (void)batched->internals().retitle_node(id, title);
        (void)sequential->internals().retitle_node(id, title);
      } else if (op == 2) {
        std::set<std::string> current;
        for (const auto& m : batched->structure().members()) {
          current.insert(m.node_id);
        }
        std::string candidate;
        for (const auto& id : all_paintings) {
          if (current.find(id) == current.end()) {
            candidate = id;
            break;
          }
        }
        if (candidate.empty()) continue;
        (void)batched->internals().add_node(candidate);
        (void)sequential->internals().add_node(candidate);
      } else {
        const auto kind = kinds[static_cast<std::size_t>(rng.below(3))];
        (void)batched->internals().set_access_structure(kind);
        (void)sequential->internals().set_access_structure(kind);
      }
      ++applied;
    }
    nav::RebuildReport r = batched->internals().commit_batch();
    EXPECT_EQ(r.edits_coalesced, applied);
    if (applied > 0) {
      EXPECT_EQ(batched->snapshots().epoch(), epoch_before + 1)
          << "a " << applied << "-edit batch must publish exactly one epoch";
    }
    ASSERT_NO_FATAL_FAILURE(
        expect_sites_identical(batched->site(), sequential->site()))
        << "diverged in round " << round;
    ASSERT_NO_FATAL_FAILURE(
        expect_sites_identical(batched->site(), full_build_oracle(*batched)))
        << "left the oracle in round " << round;
  }
}

}  // namespace

// Integration tests for the core separation library: linkbase synthesis,
// navigation weaving, tangled vs separated rendering, migration driver.
#include <gtest/gtest.h>

#include "aop/weaver.hpp"
#include "core/linkbase.hpp"
#include "core/migration.hpp"
#include "core/navigation_aspect.hpp"
#include "core/renderer.hpp"
#include "museum/museum.hpp"
#include "xlink/processor.hpp"
#include "xml/parser.hpp"
#include "xml/serializer.hpp"

namespace core = navsep::core;
namespace hm = navsep::hypermedia;
namespace aop = navsep::aop;
using navsep::museum::MuseumWorld;

namespace {

class CoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    world_ = MuseumWorld::paper_instance();
    nav_ = std::make_unique<hm::NavigationalModel>(world_->derive_navigation());
    index_ = world_->paintings_structure(hm::AccessStructureKind::Index,
                                         *nav_, "picasso");
    igt_ = world_->paintings_structure(
        hm::AccessStructureKind::IndexedGuidedTour, *nav_, "picasso");
  }

  std::unique_ptr<MuseumWorld> world_;
  std::unique_ptr<hm::NavigationalModel> nav_;
  std::unique_ptr<hm::AccessStructure> index_;
  std::unique_ptr<hm::AccessStructure> igt_;
};

}  // namespace

// --- linkbase (Figure 9) --------------------------------------------------------

TEST_F(CoreTest, LinkbaseHoldsLocatorsAndArcs) {
  auto doc = core::build_linkbase(*index_);
  const navsep::xml::Element* link = doc->root()->first_child_element();
  ASSERT_NE(link, nullptr);
  EXPECT_EQ(link->attribute_ns(navsep::xlink::kNamespace, "type").value(),
            "extended");
  EXPECT_EQ(link->children_named("loc").size(), 4u);  // 3 paintings + index
  EXPECT_EQ(link->children_named("go").size(), 6u);   // star arcs
}

TEST_F(CoreTest, LinkbaseRoundTripsThroughXLink) {
  auto doc = core::build_linkbase(*index_);
  navsep::xlink::TraversalGraph graph = core::load_linkbase(*doc);
  auto arcs = core::arcs_from_graph(graph);
  ASSERT_EQ(arcs.size(), index_->arcs().size());
  // Same from/to/role multiset (order preserved by construction).
  auto original = index_->arcs();
  for (std::size_t i = 0; i < arcs.size(); ++i) {
    EXPECT_EQ(arcs[i].from, original[i].from) << i;
    EXPECT_EQ(arcs[i].to, original[i].to) << i;
    EXPECT_EQ(arcs[i].role, original[i].role) << i;
  }
}

TEST_F(CoreTest, LinkbaseValidatesCleanly) {
  auto doc = core::build_linkbase(*igt_);
  auto links = navsep::xlink::extract(*doc);
  for (const auto& issue : navsep::xlink::validate(links)) {
    EXPECT_NE(issue.severity, navsep::xlink::Issue::Severity::Error)
        << issue.message;
  }
}

TEST_F(CoreTest, IgtLinkbaseDiffersOnlyInArcs) {
  // The §5 change request seen at the artifact level: locators identical,
  // arcs extended by the tour chain.
  auto index_doc = core::build_linkbase(*index_);
  auto igt_doc = core::build_linkbase(*igt_);
  auto locs_a = index_doc->root()->first_child_element()->children_named("loc");
  auto locs_b = igt_doc->root()->first_child_element()->children_named("loc");
  EXPECT_EQ(locs_a.size(), locs_b.size());
  auto gos_a = index_doc->root()->first_child_element()->children_named("go");
  auto gos_b = igt_doc->root()->first_child_element()->children_named("go");
  EXPECT_EQ(gos_b.size(), gos_a.size() + 4u);  // +2 next, +2 prev
}

// --- navigation aspect ------------------------------------------------------------

TEST_F(CoreTest, AspectInjectsIndexNavigation) {
  aop::Weaver weaver;
  weaver.register_aspect(core::NavigationAspect::from_arcs(index_->arcs()));
  core::SeparatedComposer composer(weaver);
  std::string page = composer.compose_node_page(*nav_->node("guitar"));
  EXPECT_NE(page.find("class=\"navigation\""), std::string::npos);
  EXPECT_NE(page.find("nav-up"), std::string::npos);
  EXPECT_EQ(page.find("nav-next"), std::string::npos);  // Index has no tour
}

TEST_F(CoreTest, AspectInjectsTourNavigation) {
  aop::Weaver weaver;
  weaver.register_aspect(core::NavigationAspect::from_arcs(igt_->arcs()));
  core::SeparatedComposer composer(weaver);
  std::string guitar = composer.compose_node_page(*nav_->node("guitar"));
  // First of the tour: next but no prev.
  EXPECT_NE(guitar.find("nav-next"), std::string::npos);
  EXPECT_EQ(guitar.find("nav-prev"), std::string::npos);
  std::string guernica = composer.compose_node_page(*nav_->node("guernica"));
  EXPECT_NE(guernica.find("nav-next"), std::string::npos);
  EXPECT_NE(guernica.find("nav-prev"), std::string::npos);
}

TEST_F(CoreTest, AspectBuildsIndexPageEntries) {
  aop::Weaver weaver;
  weaver.register_aspect(core::NavigationAspect::from_arcs(index_->arcs()));
  core::SeparatedComposer composer(weaver);
  std::string page = composer.compose_structure_page(index_->page_id(),
                                                     index_->name());
  EXPECT_NE(page.find("nav-index"), std::string::npos);
  EXPECT_NE(page.find("The Guitar"), std::string::npos);
  EXPECT_NE(page.find("Guernica"), std::string::npos);
  EXPECT_NE(page.find("guitar.html"), std::string::npos);
}

TEST_F(CoreTest, DisablingAspectRemovesNavigation) {
  aop::Weaver weaver;
  weaver.register_aspect(core::NavigationAspect::from_arcs(index_->arcs()));
  weaver.set_enabled("navigation", false);
  core::SeparatedComposer composer(weaver);
  std::string page = composer.compose_node_page(*nav_->node("guitar"));
  EXPECT_EQ(page.find("class=\"navigation\""), std::string::npos);
  EXPECT_NE(page.find("<h1>The Guitar</h1>"), std::string::npos);
}

TEST_F(CoreTest, ContextSensitiveTourArcs) {
  // Two tours tagged with different contexts; only the active one shows.
  std::vector<core::NavArc> arcs = {
      {"guernica", "avignon", std::string(hm::roles::kNext),
       "Next by author", "ByAuthor:picasso"},
      {"guernica", "violin", std::string(hm::roles::kNext),
       "Next in movement", "ByMovement:cubism"},
  };
  aop::Weaver weaver;
  weaver.register_aspect(core::NavigationAspect::from_contextual_arcs(arcs));
  core::SeparatedComposer composer(weaver);

  std::string by_author = composer.compose_node_page(
      *nav_->node("guernica"), "ByAuthor:picasso");
  EXPECT_NE(by_author.find("Next by author"), std::string::npos);
  EXPECT_EQ(by_author.find("Next in movement"), std::string::npos);

  std::string by_movement = composer.compose_node_page(
      *nav_->node("guernica"), "ByMovement:cubism");
  EXPECT_EQ(by_movement.find("Next by author"), std::string::npos);
  EXPECT_NE(by_movement.find("Next in movement"), std::string::npos);
}

TEST_F(CoreTest, AspectFromLinkbaseEqualsAspectFromArcs) {
  auto doc = core::build_linkbase(*igt_);
  aop::Weaver w1, w2;
  w1.register_aspect(
      core::NavigationAspect::from_linkbase(core::load_linkbase(*doc)));
  w2.register_aspect(core::NavigationAspect::from_arcs(igt_->arcs()));
  core::SeparatedComposer c1(w1), c2(w2);
  for (const char* id : {"guitar", "guernica", "avignon"}) {
    EXPECT_EQ(c1.compose_node_page(*nav_->node(id)),
              c2.compose_node_page(*nav_->node(id)))
        << id;
  }
}

// --- tangled vs separated equivalence ---------------------------------------------

TEST_F(CoreTest, TangledAndSeparatedProduceIdenticalPages) {
  // The separation must not change what the user sees: same bytes.
  core::TangledRenderer tangled(*nav_, *igt_);
  aop::Weaver weaver;
  weaver.register_aspect(core::NavigationAspect::from_arcs(igt_->arcs()));
  core::SeparatedComposer composer(weaver);

  for (const char* id : {"guitar", "guernica", "avignon"}) {
    EXPECT_EQ(tangled.render_node_page(*nav_->node(id)),
              composer.compose_node_page(*nav_->node(id)))
        << id;
  }
  EXPECT_EQ(tangled.render_structure_page(),
            composer.compose_structure_page(igt_->page_id(), igt_->name()));
}

TEST_F(CoreTest, RenderSiteCoversMembersPlusStructurePage) {
  core::TangledRenderer tangled(*nav_, *index_);
  auto pages = tangled.render_site();
  ASSERT_EQ(pages.size(), 4u);
  EXPECT_EQ(pages[0].path, "guitar.html");
  EXPECT_EQ(pages[3].path, "index-paintings-of-picasso.html");
}

// --- the paper's Figures 3 and 4 ----------------------------------------------------

TEST_F(CoreTest, Figure3IndexPageHasOnlyIndexAnchor) {
  core::TangledRenderer tangled(*nav_, *index_);
  std::string page = tangled.render_node_page(*nav_->node("guitar"));
  EXPECT_NE(page.find("<h1>The Guitar</h1>"), std::string::npos);
  EXPECT_NE(page.find("nav-up"), std::string::npos);
  EXPECT_EQ(page.find("nav-next"), std::string::npos);
  EXPECT_EQ(page.find("nav-prev"), std::string::npos);
}

TEST_F(CoreTest, Figure4IgtPageAddsTourAnchors) {
  core::TangledRenderer tangled(*nav_, *igt_);
  std::string page = tangled.render_node_page(*nav_->node("guernica"));
  EXPECT_NE(page.find("nav-up"), std::string::npos);
  EXPECT_NE(page.find("nav-next"), std::string::npos);
  EXPECT_NE(page.find("nav-prev"), std::string::npos);
}

TEST_F(CoreTest, Figure4AddsFewLinesPerPage) {
  // "Although they seem only two lines of HTML code..." — quantify it.
  core::TangledRenderer index_r(*nav_, *index_);
  core::TangledRenderer igt_r(*nav_, *igt_);
  std::string before = index_r.render_node_page(*nav_->node("guernica"));
  std::string after = igt_r.render_node_page(*nav_->node("guernica"));
  navsep::diff::Stats s = navsep::diff::stats(before, after);
  // The change is exactly the two tour anchors (plus the container
  // re-layout): a handful of lines on THIS page — but repeated on every
  // node of the context, which is the paper's complaint.
  EXPECT_GE(s.lines_added, 2u);
  EXPECT_LE(s.lines_added, 6u);
  EXPECT_EQ(after.find("nav-next") != std::string::npos, true);
  EXPECT_EQ(before.find("nav-next") != std::string::npos, false);
}

// --- migration (the headline experiment) ---------------------------------------------

TEST_F(CoreTest, MigrationTouchesEveryTangledPageButOneSeparatedArtifact) {
  core::MigrationOptions options;
  options.separated_fixed_artifacts = world_->data_artifacts();
  core::MigrationReport report =
      core::measure_migration(*nav_, *index_, *igt_, options);

  // Tangled: every member page changes (the index page itself does not —
  // its entries are the same in Index and IGT).
  EXPECT_EQ(report.tangled_authored.files_touched, 3u);
  EXPECT_EQ(report.tangled_artifacts, 4u);

  // Separated: only links.xml.
  EXPECT_EQ(report.separated_authored.files_touched, 1u);
  ASSERT_EQ(report.separated_authored.touched_paths.size(), 1u);
  EXPECT_EQ(report.separated_authored.touched_paths[0], "links.xml");

  // And the rendered result still changed (the migration was real).
  EXPECT_EQ(report.separated_rendered.files_touched, 3u);
}

TEST_F(CoreTest, MigrationLineCostScalesWithContextInTangledOnly) {
  core::MigrationOptions options;
  options.separated_fixed_artifacts = world_->data_artifacts();
  core::MigrationReport small =
      core::measure_migration(*nav_, *index_, *igt_, options);

  auto big_world = navsep::museum::MuseumWorld::synthetic(
      {.painters = 1, .paintings_per_painter = 30, .movements = 2, .seed = 7});
  auto big_nav = big_world->derive_navigation();
  auto big_index = big_world->paintings_structure(
      hm::AccessStructureKind::Index, big_nav, "painter-0");
  auto big_igt = big_world->paintings_structure(
      hm::AccessStructureKind::IndexedGuidedTour, big_nav, "painter-0");
  core::MigrationOptions big_options;
  big_options.separated_fixed_artifacts = big_world->data_artifacts();
  core::MigrationReport big =
      core::measure_migration(big_nav, *big_index, *big_igt, big_options);

  EXPECT_EQ(big.tangled_authored.files_touched, 30u);
  EXPECT_EQ(big.separated_authored.files_touched, 1u);
  EXPECT_GT(big.tangled_authored.line_stats.lines_changed(),
            small.tangled_authored.line_stats.lines_changed());
}

// --- museum data documents (Figures 7/8) ----------------------------------------------

TEST_F(CoreTest, PicassoXmlShapesLikeFigure7) {
  auto doc = world_->painter_document("picasso");
  const navsep::xml::Element* root = doc->root();
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->name().local, "painter");
  EXPECT_EQ(root->attribute("id").value(), "picasso");
  EXPECT_EQ(root->child("name")->own_text(), "Pablo Picasso");
  EXPECT_EQ(root->children_named("painting").size(), 3u);
}

TEST_F(CoreTest, AvignonXmlShapesLikeFigure8) {
  auto doc = world_->painting_document("avignon");
  const navsep::xml::Element* root = doc->root();
  EXPECT_EQ(root->name().local, "painting");
  EXPECT_EQ(root->child("title")->own_text(), "Les Demoiselles d'Avignon");
  EXPECT_EQ(root->child("year")->own_text(), "1907");
  ASSERT_NE(root->child("painted-by"), nullptr);
  EXPECT_EQ(root->child("painted-by")->attribute("ref").value(), "picasso");
}

TEST_F(CoreTest, DataArtifactsAreWellFormedXml) {
  for (const auto& [path, content] : world_->data_artifacts()) {
    EXPECT_NE(navsep::xml::try_parse(content), nullptr) << path;
  }
}

TEST_F(CoreTest, SyntheticWorldIsDeterministic) {
  navsep::museum::SyntheticSpec spec{.painters = 3,
                                     .paintings_per_painter = 4,
                                     .movements = 2,
                                     .seed = 99};
  auto w1 = navsep::museum::MuseumWorld::synthetic(spec);
  auto w2 = navsep::museum::MuseumWorld::synthetic(spec);
  auto a1 = w1->data_artifacts();
  auto a2 = w2->data_artifacts();
  ASSERT_EQ(a1.size(), a2.size());
  for (std::size_t i = 0; i < a1.size(); ++i) {
    EXPECT_EQ(a1[i], a2[i]);
  }
}

TEST_F(CoreTest, SyntheticWorldHasRequestedShape) {
  auto w = navsep::museum::MuseumWorld::synthetic(
      {.painters = 5, .paintings_per_painter = 3, .movements = 2, .seed = 1});
  EXPECT_EQ(w->painter_ids().size(), 5u);
  EXPECT_EQ(w->painting_ids().size(), 15u);
  auto nav = w->derive_navigation();
  EXPECT_EQ(nav.nodes_of("PaintingNode").size(), 15u);
  auto by_author = w->by_author(nav);
  EXPECT_EQ(by_author.contexts().size(), 5u);
}

// Edge-case and robustness tests for the XML substrate beyond the basics
// in xml_test.cpp: deep nesting, attribute-value normalization, unusual
// but legal documents, and hostile inputs that must fail cleanly.
#include <gtest/gtest.h>

#include <string>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "xml/dom.hpp"
#include "xml/parser.hpp"
#include "xml/serializer.hpp"

namespace xml = navsep::xml;

TEST(XmlEdge, DeeplyNestedDocument) {
  constexpr int kDepth = 2000;
  std::string text;
  for (int i = 0; i < kDepth; ++i) text += "<d>";
  text += "x";
  for (int i = 0; i < kDepth; ++i) text += "</d>";
  auto doc = xml::parse(text);
  EXPECT_EQ(doc->root()->string_value(), "x");
  // Round-trips without blowing the stack.
  std::string out = xml::write(*doc, {.declaration = false});
  EXPECT_EQ(out.size(), text.size());
}

TEST(XmlEdge, ManySiblings) {
  std::string text = "<r>";
  for (int i = 0; i < 10000; ++i) text += "<c/>";
  text += "</r>";
  auto doc = xml::parse(text);
  EXPECT_EQ(doc->root()->children().size(), 10000u);
}

TEST(XmlEdge, AttributeWhitespaceNormalization) {
  // Tab/CR/LF inside attribute values normalize to spaces (XML 1.0 §3.3.3).
  auto doc = xml::parse("<a v='one\ttwo\nthree\rfour'/>");
  EXPECT_EQ(doc->root()->attribute("v").value(), "one two three four");
}

TEST(XmlEdge, WhitespaceAroundEqualsInAttributes) {
  auto doc = xml::parse("<a x =  '1' y\t=\n'2'/>");
  EXPECT_EQ(doc->root()->attribute("x").value(), "1");
  EXPECT_EQ(doc->root()->attribute("y").value(), "2");
}

TEST(XmlEdge, MixedQuotesInsideValues) {
  auto doc = xml::parse(R"(<a d="it's" s='say "hi"'/>)");
  EXPECT_EQ(doc->root()->attribute("d").value(), "it's");
  EXPECT_EQ(doc->root()->attribute("s").value(), "say \"hi\"");
}

TEST(XmlEdge, UnicodeNamesAndContent) {
  auto doc = xml::parse("<caf\xC3\xA9 na\xC3\xAFve='oui'>d\xC3\xA9j\xC3\xA0</caf\xC3\xA9>");
  EXPECT_EQ(doc->root()->name().local, "caf\xC3\xA9");
  EXPECT_EQ(doc->root()->own_text(), "d\xC3\xA9j\xC3\xA0");
}

TEST(XmlEdge, SupplementaryPlaneCharacterReference) {
  auto doc = xml::parse("<t>&#x1F3A8;</t>");  // artist palette emoji
  EXPECT_EQ(doc->root()->own_text(), "\xF0\x9F\x8E\xA8");
}

TEST(XmlEdge, CdataWithBracketTeases) {
  auto doc = xml::parse("<t><![CDATA[a]]b ]> c]]></t>");
  EXPECT_EQ(doc->root()->own_text(), "a]]b ]> c");
}

TEST(XmlEdge, AdjacentCdataAndTextMerge) {
  auto doc = xml::parse("<t>one<![CDATA[ two ]]>three</t>");
  ASSERT_EQ(doc->root()->children().size(), 1u);  // merged into one Text
  EXPECT_EQ(doc->root()->own_text(), "one two three");
}

TEST(XmlEdge, CommentsMayContainMarkup) {
  auto doc = xml::parse("<t><!-- <not><parsed> &nor; this --></t>");
  ASSERT_EQ(doc->root()->children().size(), 1u);
  EXPECT_EQ(doc->root()->children()[0]->type(), xml::NodeType::Comment);
}

TEST(XmlEdge, DoubleHyphenInCommentRejected) {
  EXPECT_THROW(xml::parse("<t><!-- a -- b --></t>"), navsep::ParseError);
}

TEST(XmlEdge, SelfClosingWithSpace) {
  auto doc = xml::parse("<a ><b x='1' /></a >");
  EXPECT_NE(doc->root()->child("b"), nullptr);
}

TEST(XmlEdge, RejectsGarbage) {
  for (const char* bad :
       {"", "   ", "no tags", "<", "<>", "<a", "<a/", "<1tag/>", "<a b/>",
        "<a 'v'/>", "<a b=>", "<a></b>", "&amp;", "<a>&#xZZ;</a>",
        "<a>&#;</a>", "<a>]]></a><b/>"}) {
    EXPECT_THROW((void)xml::parse(bad), navsep::ParseError) << bad;
  }
}

TEST(XmlEdge, TryParseNeverThrows) {
  EXPECT_EQ(xml::try_parse("<broken"), nullptr);
  EXPECT_NE(xml::try_parse("<fine/>"), nullptr);
}

TEST(XmlEdge, BomAccepted) {
  auto doc = xml::parse("\xEF\xBB\xBF<r/>");
  EXPECT_EQ(doc->root()->name().local, "r");
}

TEST(XmlEdge, ProcessingInstructionEdge) {
  auto doc = xml::parse("<r><?target?><?t2 data with ?stuff?></r>");
  ASSERT_EQ(doc->root()->children().size(), 2u);
  const auto* pi1 = static_cast<const xml::ProcessingInstruction*>(
      doc->root()->children()[0].get());
  EXPECT_EQ(pi1->target(), "target");
  EXPECT_EQ(pi1->data(), "");
  const auto* pi2 = static_cast<const xml::ProcessingInstruction*>(
      doc->root()->children()[1].get());
  EXPECT_EQ(pi2->data(), "data with ?stuff");
}

TEST(XmlEdge, ReservedPiTargetRejected) {
  EXPECT_THROW(xml::parse("<r><?xml nope?></r>"), navsep::ParseError);
  EXPECT_THROW(xml::parse("<r><?XML nope?></r>"), navsep::ParseError);
}

TEST(XmlEdge, LongAttributeValue) {
  std::string big(100000, 'x');
  auto doc = xml::parse("<a v='" + big + "'/>");
  EXPECT_EQ(doc->root()->attribute("v")->size(), big.size());
}

TEST(XmlEdge, SerializerControlCharactersInAttributes) {
  xml::Document doc;
  doc.set_root(xml::QName("r")).set_attribute("v", "a\tb\nc");
  std::string out = xml::write(doc, {.declaration = false});
  EXPECT_EQ(out, "<r v=\"a&#9;b&#10;c\"/>");
  // And the round trip preserves the exact bytes.
  auto again = xml::parse(out);
  EXPECT_EQ(again->root()->attribute("v").value(), "a\tb\nc");
}

TEST(XmlEdge, RandomizedTreeRoundTrip) {
  // Property: build random trees programmatically, serialize, reparse,
  // compare structure (node counts + string values).
  navsep::Rng rng(77);
  for (int round = 0; round < 25; ++round) {
    xml::Document doc;
    xml::Element& root = doc.set_root(xml::QName("r"));
    std::vector<xml::Element*> pool{&root};
    const int ops = 30;
    for (int i = 0; i < ops; ++i) {
      xml::Element* target =
          pool[static_cast<std::size_t>(rng.below(pool.size()))];
      switch (rng.below(3)) {
        case 0: {
          xml::Element& child =
              target->append_element(rng.word(1 + rng.below(6)));
          pool.push_back(&child);
          break;
        }
        case 1:
          target->append_text(rng.word(rng.below(8)));
          break;
        default:
          target->set_attribute(rng.word(1 + rng.below(4)),
                                rng.word(rng.below(10)));
      }
    }
    std::string text = xml::write(doc, {});
    xml::ParseOptions keep;
    keep.strip_insignificant_whitespace = false;
    auto reparsed = xml::parse(text, keep);
    EXPECT_EQ(reparsed->root()->string_value(), doc.root()->string_value())
        << "round " << round;
    std::size_t count_a = 0, count_b = 0;
    doc.root()->walk([&](const xml::Element&) { ++count_a; });
    reparsed->root()->walk([&](const xml::Element&) { ++count_b; });
    EXPECT_EQ(count_a, count_b) << "round " << round;
  }
}

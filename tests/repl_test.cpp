// Snapshot replication: wire round-trips, delta precision, hash
// derivation, malformed-input rejection, and socketed pub/sub fleets.
//
// The contract under test is byte-level and end-to-end: a replica that
// has only ever seen wire frames must serve — through an UNMODIFIED
// serve::ConcurrentServer over its own SnapshotStore — exactly the
// bytes the origin serves, for the base site and for every registered
// profile. On top of that sit the delta properties (a single-family
// edit ships the family's segment, not the site; unchanged segments are
// carried forward by the slice-hash tables) and the resync protocol
// (mid-stream connect gets a FULL frame; lagging past max_delta_gap
// forces one).
#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "hypermedia/access.hpp"
#include "hypermedia/context.hpp"
#include "nav/pipeline.hpp"
#include "oracle.hpp"
#include "repl/publisher.hpp"
#include "repl/replica.hpp"
#include "repl/transport.hpp"
#include "repl/wire.hpp"
#include "serve/concurrent_server.hpp"

namespace {

namespace hm = navsep::hypermedia;
namespace nav = navsep::nav;
namespace repl = navsep::repl;
namespace serve = navsep::serve;
namespace site = navsep::site;

using SnapPtr = std::shared_ptr<const serve::SiteSnapshot>;

std::unique_ptr<nav::Engine> make_engine() {
  auto engine = nav::SitePipeline()
                    .paper_museum()
                    .schema()
                    .access(hm::AccessStructureKind::IndexedGuidedTour,
                            "picasso")
                    .contexts({"ByAuthor", "ByMovement"})
                    .weave()
                    .serve();
  engine->internals().register_profile({"kiosk", {}});
  engine->internals().register_profile({"tour", {"ByAuthor"}});
  engine->internals().register_profile(
      {"everything", {"ByAuthor", "ByMovement"}});
  return engine;
}

/// Byte identity between two snapshots, across every surface a reader
/// can touch: artifact bytes, base responses, and per-profile responses
/// for every artifact path (including the 404 side).
void expect_snapshots_identical(const serve::SiteSnapshot& a,
                                const serve::SiteSnapshot& b) {
  ASSERT_EQ(a.epoch(), b.epoch());
  ASSERT_EQ(a.base(), b.base());
  ASSERT_EQ(a.files().size(), b.files().size());
  for (const auto& [path, bytes] : a.files()) {
    auto it = b.files().find(path);
    ASSERT_NE(it, b.files().end()) << path;
    ASSERT_EQ(*bytes, *it->second) << path;
  }
  ASSERT_EQ(a.profiles().size(), b.profiles().size());
  for (const auto& [path, bytes] : a.files()) {
    site::Response ra = a.respond(path);
    site::Response rb = b.respond(path);
    ASSERT_EQ(ra.status, rb.status) << path;
    if (ra.ok()) ASSERT_EQ(*ra.body, *rb.body) << path;
    for (const nav::Profile& profile : a.profiles()) {
      site::Response pa = a.respond_as(profile.name, path);
      site::Response pb = b.respond_as(profile.name, path);
      ASSERT_EQ(pa.status, pb.status) << profile.name << " " << path;
      if (pa.ok()) {
        ASSERT_EQ(*pa.body, *pb.body) << profile.name << " " << path;
      }
    }
  }
}

/// Rotate the first context of `family_name` — the canonical
/// single-family edit (touches that family's linkbase, nothing else).
void rotate_family(nav::Engine& engine, const std::string& family_name) {
  (void)engine.internals().edit_context_family(
      family_name, [](hm::ContextFamily& family) {
        std::vector<hm::NavigationalContext> contexts = family.contexts();
        if (contexts.empty()) return;
        auto& context = contexts.front();
        std::vector<std::string> ids = context.node_ids();
        if (ids.size() < 2) return;
        std::rotate(ids.begin(), ids.begin() + 1, ids.end());
        context = hm::NavigationalContext(context.family(), context.name(),
                                          std::move(ids));
        family.replace_contexts(std::move(contexts));
      });
}

// --- wire format: round trips -------------------------------------------------

TEST(ReplWire, FullRoundTripIsByteIdentical) {
  auto engine = make_engine();
  SnapPtr original = engine->internals().snapshots().current();
  ASSERT_NE(original, nullptr);

  const std::string payload = repl::encode_full(*original);
  SnapPtr decoded = repl::decode_full(payload);
  ASSERT_NE(decoded, nullptr);
  ASSERT_NO_FATAL_FAILURE(expect_snapshots_identical(*original, *decoded));
}

TEST(ReplWire, FrameRoundTripPreservesTypeAndPayload) {
  const std::string framed =
      repl::encode_frame(repl::FrameType::Delta, "payload-bytes");
  repl::Frame frame = repl::parse_frame(framed);
  EXPECT_EQ(frame.type, repl::FrameType::Delta);
  EXPECT_EQ(frame.payload, "payload-bytes");
}

TEST(ReplWire, DeltaAppliesToByteIdentity) {
  auto engine = make_engine();
  SnapPtr before = engine->internals().snapshots().current();

  rotate_family(*engine, "ByAuthor");
  (void)engine->internals().retitle_node("guitar", "The Guitar, retitled");
  SnapPtr after = engine->internals().snapshots().current();
  ASSERT_GT(after->epoch(), before->epoch());

  const std::string delta = repl::encode_delta(*before, *after);
  SnapPtr applied = repl::apply_delta(delta, *before);
  ASSERT_NO_FATAL_FAILURE(expect_snapshots_identical(*after, *applied));
}

TEST(ReplWire, DeltaCoalescesManyEpochs) {
  auto engine = make_engine();
  SnapPtr before = engine->internals().snapshots().current();
  for (int i = 0; i < 5; ++i) {
    (void)engine->internals().retitle_node("guitar",
                                           "t" + std::to_string(i));
    rotate_family(*engine, i % 2 == 0 ? "ByAuthor" : "ByMovement");
  }
  SnapPtr after = engine->internals().snapshots().current();
  ASSERT_GT(after->epoch(), before->epoch() + 1);

  // One delta spanning all intermediate epochs applies cleanly.
  const std::string delta = repl::encode_delta(*before, *after);
  SnapPtr applied = repl::apply_delta(delta, *before);
  ASSERT_NO_FATAL_FAILURE(expect_snapshots_identical(*after, *applied));
}

// --- delta precision: hash-driven selection -----------------------------------

TEST(ReplWire, SingleFamilyEditShipsFarLessThanFull) {
  auto engine = make_engine();
  SnapPtr before = engine->internals().snapshots().current();
  rotate_family(*engine, "ByAuthor");
  SnapPtr after = engine->internals().snapshots().current();

  const std::string full = repl::encode_full(*after);
  const std::string delta = repl::encode_delta(*before, *after);
  // The delta carries the edited family's segment + the re-authored
  // linkbase artifact + the touched pages; the full carries the site.
  EXPECT_LT(delta.size() * 2, full.size())
      << "delta " << delta.size() << " B vs full " << full.size() << " B";

  SnapPtr applied = repl::apply_delta(delta, *before);
  ASSERT_NO_FATAL_FAILURE(expect_snapshots_identical(*after, *applied));
}

TEST(ReplWire, UntouchedSnapshotProducesNearEmptyDelta) {
  auto engine = make_engine();
  SnapPtr before = engine->internals().snapshots().current();
  // A blanket rebuild republises (new epoch) without changing any bytes.
  engine->internals().rebuild();
  SnapPtr after = engine->internals().snapshots().current();
  ASSERT_GT(after->epoch(), before->epoch());

  const std::string delta = repl::encode_delta(*before, *after);
  const std::string full = repl::encode_full(*after);
  // Everything is carried forward: the delta is bookkeeping, not bytes.
  EXPECT_LT(delta.size() * 10, full.size())
      << "delta " << delta.size() << " B vs full " << full.size() << " B";
  SnapPtr applied = repl::apply_delta(delta, *before);
  ASSERT_NO_FATAL_FAILURE(expect_snapshots_identical(*after, *applied));
}

// --- satellite 1: the derive-when-absent hash path ----------------------------

TEST(ReplHashes, DerivedTableEqualsOriginThreadedTable) {
  auto engine = make_engine();
  // Mutate a little so the tables are non-trivial.
  rotate_family(*engine, "ByMovement");
  (void)engine->internals().retitle_node("guernica", "Guernica (1937)");
  SnapPtr snap = engine->internals().snapshots().current();

  // The origin threads hashes from its arc-table rebuild...
  auto threaded = snap->slice_hashes();
  ASSERT_NE(threaded, nullptr);
  ASSERT_NE(snap->overlay_arcs(), nullptr);
  // ...and the explicit derive path must reproduce them exactly.
  auto derived = serve::SiteSnapshot::derive_slice_hashes(*snap->overlay_arcs());
  ASSERT_NE(derived, nullptr);
  EXPECT_EQ(*derived, *threaded);
}

TEST(ReplHashes, DecodedSnapshotDerivesHashesAndValidatesOverlays) {
  auto engine = make_engine();
  SnapPtr original = engine->internals().snapshots().current();
  SnapPtr decoded = repl::decode_full(repl::encode_full(*original));

  // The wire does not carry hashes; the decoded snapshot derived them —
  // and they must equal the origin's threaded table, or overlay caching
  // on a replica would diverge from the origin's.
  ASSERT_NE(decoded->slice_hashes(), nullptr);
  ASSERT_NE(original->slice_hashes(), nullptr);
  EXPECT_EQ(*decoded->slice_hashes(), *original->slice_hashes());

  // And the derived hashes drive overlay validity exactly like the
  // origin's: same token for the same (profile, page).
  const nav::Profile* tour = original->find_profile("tour");
  ASSERT_NE(tour, nullptr);
  const nav::Profile* replica_tour = decoded->find_profile("tour");
  ASSERT_NE(replica_tour, nullptr);
  for (const auto& [path, bytes] : original->files()) {
    serve::OverlayValidity mine = original->overlay_validity(*tour, path);
    serve::OverlayValidity theirs =
        decoded->overlay_validity(*replica_tour, path);
    EXPECT_EQ(mine.profile_token, theirs.profile_token) << path;
    EXPECT_EQ(mine.structure_slice, theirs.structure_slice) << path;
    EXPECT_EQ(mine.family_slices, theirs.family_slices) << path;
  }
}

// --- malformed input ----------------------------------------------------------

TEST(ReplWire, CorruptAndTruncatedFramesThrow) {
  auto engine = make_engine();
  SnapPtr snap = engine->internals().snapshots().current();
  const std::string framed =
      repl::encode_frame(repl::FrameType::Full, repl::encode_full(*snap));

  // Flipped payload byte: checksum mismatch.
  std::string corrupt = framed;
  corrupt[repl::kFrameHeaderSize + corrupt.size() / 2] ^= 0x40;
  EXPECT_THROW((void)repl::parse_frame(corrupt), repl::WireError);

  // Bad magic.
  std::string bad_magic = framed;
  bad_magic[0] ^= 0xff;
  EXPECT_THROW((void)repl::parse_frame(bad_magic), repl::WireError);

  // Truncated payload.
  EXPECT_THROW(
      (void)repl::parse_frame(std::string_view(framed).substr(
          0, framed.size() - 7)),
      repl::WireError);

  // Header too short.
  EXPECT_THROW((void)repl::decode_frame_header("short"), repl::WireError);

  // A FULL payload truncated mid-record must throw, not mis-decode.
  const std::string payload = repl::encode_full(*snap);
  EXPECT_THROW((void)repl::decode_full(
                   std::string_view(payload).substr(0, payload.size() / 2)),
               repl::WireError);
}

TEST(ReplWire, DeltaAgainstWrongBaseThrows) {
  auto engine = make_engine();
  SnapPtr first = engine->internals().snapshots().current();
  (void)engine->internals().retitle_node("guitar", "A");
  SnapPtr second = engine->internals().snapshots().current();
  (void)engine->internals().retitle_node("guitar", "B");
  SnapPtr third = engine->internals().snapshots().current();

  const std::string delta = repl::encode_delta(*second, *third);
  // Valid against `second`…
  EXPECT_NO_THROW((void)repl::apply_delta(delta, *second));
  // …but not against any other epoch: the from-epoch check must fire.
  EXPECT_THROW((void)repl::apply_delta(delta, *first), repl::WireError);
  EXPECT_THROW((void)repl::apply_delta(delta, *third), repl::WireError);
}

TEST(ReplWire, DeltaFrameWithoutPreviousSnapshotThrows) {
  auto engine = make_engine();
  SnapPtr before = engine->internals().snapshots().current();
  (void)engine->internals().retitle_node("guitar", "X");
  SnapPtr after = engine->internals().snapshots().current();

  repl::Frame frame;
  frame.type = repl::FrameType::Delta;
  frame.payload = repl::encode_delta(*before, *after);
  EXPECT_THROW((void)repl::apply_frame(frame, nullptr), repl::WireError);
}

TEST(ReplTransport, EndpointParsing) {
  repl::Endpoint unix_ep = repl::Endpoint::parse("unix:/tmp/x.sock");
  EXPECT_EQ(unix_ep.kind, repl::Endpoint::Kind::Unix);
  EXPECT_EQ(unix_ep.path, "/tmp/x.sock");
  EXPECT_EQ(unix_ep.to_string(), "unix:/tmp/x.sock");

  repl::Endpoint tcp_ep = repl::Endpoint::parse("tcp:127.0.0.1:4710");
  EXPECT_EQ(tcp_ep.kind, repl::Endpoint::Kind::Tcp);
  EXPECT_EQ(tcp_ep.host, "127.0.0.1");
  EXPECT_EQ(tcp_ep.port, 4710);

  EXPECT_THROW((void)repl::Endpoint::parse("http:foo"),
               repl::TransportError);
  EXPECT_THROW((void)repl::Endpoint::parse("tcp:nohost"),
               repl::TransportError);
  EXPECT_THROW((void)repl::Endpoint::parse("tcp:1.2.3.4:99999"),
               repl::TransportError);
  EXPECT_THROW((void)repl::Endpoint::parse("unix:"), repl::TransportError);
}

// --- socketed pub/sub ---------------------------------------------------------

TEST(ReplFleet, TcpPublisherFeedsReplicaToByteIdentity) {
  auto engine = make_engine();
  auto publisher =
      engine->open_publisher(repl::Endpoint::tcp("127.0.0.1", 0));

  repl::Replica replica = repl::Replica::connect(publisher->endpoint());
  replica.start();

  for (int i = 0; i < 6; ++i) {
    (void)engine->internals().retitle_node("guitar",
                                           "v" + std::to_string(i));
    rotate_family(*engine, i % 2 == 0 ? "ByAuthor" : "ByMovement");
  }
  const std::uint64_t target = engine->internals().snapshots().epoch();
  ASSERT_TRUE(replica.wait_for_epoch(target, std::chrono::seconds(30)))
      << replica.error();

  SnapPtr origin_snap = engine->internals().snapshots().current();
  SnapPtr replica_snap = replica.store().current();
  ASSERT_NO_FATAL_FAILURE(
      expect_snapshots_identical(*origin_snap, *replica_snap));

  // The replica's store drives an UNMODIFIED ConcurrentServer: base and
  // profile-scoped serving over replicated state matches the origin's
  // full-build oracle exactly.
  serve::ConcurrentServer server(replica.store(), 4);
  for (const auto& [path, bytes] : origin_snap->files()) {
    site::Response r = server.get(path);
    ASSERT_TRUE(r.ok()) << path;
    EXPECT_EQ(*r.body, *bytes) << path;
  }
  for (const nav::Profile& profile : origin_snap->profiles()) {
    const std::map<std::string, std::string> oracle =
        navsep::testing::profile_oracle(*engine, profile);
    for (const auto& [path, bytes] : oracle) {
      site::Response r = server.get(path, profile.name);
      ASSERT_TRUE(r.ok()) << profile.name << " " << path;
      EXPECT_EQ(*r.body, bytes) << profile.name << " " << path;
    }
  }

  // The stream actually used deltas, not a FULL per epoch. Under load
  // the initial subscribe-FULL may already cover every epoch above, so
  // force one post-convergence epoch: the sender is caught up now, the
  // gap is 1 <= max_delta_gap, and the next frame must be a DELTA.
  (void)engine->internals().retitle_node("guitar", "post-sync");
  ASSERT_TRUE(replica.wait_for_epoch(engine->internals().snapshots().epoch(),
                                     std::chrono::seconds(30)))
      << replica.error();
  EXPECT_GE(replica.stats().deltas_applied, 1u);
  EXPECT_GE(replica.stats().fulls_applied, 1u);
  ASSERT_NO_FATAL_FAILURE(expect_snapshots_identical(
      *engine->internals().snapshots().current(), *replica.store().current()));
}

TEST(ReplFleet, MidStreamConnectStartsFromFullAndConverges) {
  auto engine = make_engine();
  auto publisher =
      engine->open_publisher(repl::Endpoint::tcp("127.0.0.1", 0));

  // Mutate BEFORE the replica exists: it must sync from a FULL frame.
  for (int i = 0; i < 4; ++i) {
    (void)engine->internals().retitle_node("guernica",
                                           "g" + std::to_string(i));
  }
  repl::Replica late = repl::Replica::connect(publisher->endpoint());
  late.start();
  const std::uint64_t target = engine->internals().snapshots().epoch();
  ASSERT_TRUE(late.wait_for_epoch(target, std::chrono::seconds(30)))
      << late.error();
  ASSERT_NO_FATAL_FAILURE(expect_snapshots_identical(
      *engine->internals().snapshots().current(), *late.store().current()));
  EXPECT_EQ(late.stats().fulls_applied, 1u);

  // And it keeps following with deltas afterwards.
  rotate_family(*engine, "ByAuthor");
  ASSERT_TRUE(late.wait_for_epoch(engine->internals().snapshots().epoch(),
                                  std::chrono::seconds(30)))
      << late.error();
  EXPECT_GE(late.stats().deltas_applied, 1u);
  ASSERT_NO_FATAL_FAILURE(expect_snapshots_identical(
      *engine->internals().snapshots().current(), *late.store().current()));
}

TEST(ReplFleet, ZeroDeltaGapForcesFullResyncs) {
  auto engine = make_engine();
  // max_delta_gap = 0: every advance exceeds the gap — the publisher
  // must take the resync path for every epoch, and the replica must
  // still converge to byte identity (FULL frames are self-contained).
  repl::PublisherOptions options;
  options.max_delta_gap = 0;
  auto publisher =
      engine->open_publisher(repl::Endpoint::tcp("127.0.0.1", 0), options);

  repl::Replica replica = repl::Replica::connect(publisher->endpoint());
  replica.start();
  for (int i = 0; i < 3; ++i) {
    (void)engine->internals().retitle_node("guitar",
                                           "r" + std::to_string(i));
  }
  ASSERT_TRUE(replica.wait_for_epoch(engine->internals().snapshots().epoch(),
                                     std::chrono::seconds(30)))
      << replica.error();
  // The initial subscribe-FULL may already cover every epoch above if
  // the sender thread starts late. Mutate once more AFTER convergence:
  // now the sender definitely holds a last-sent snapshot, so this
  // advance must go through the gap check and force a resync FULL.
  (void)engine->internals().retitle_node("guitar", "post-sync");
  ASSERT_TRUE(replica.wait_for_epoch(engine->internals().snapshots().epoch(),
                                     std::chrono::seconds(30)))
      << replica.error();
  ASSERT_NO_FATAL_FAILURE(expect_snapshots_identical(
      *engine->internals().snapshots().current(),
      *replica.store().current()));
  EXPECT_EQ(replica.stats().deltas_applied, 0u);
  EXPECT_GE(publisher->stats().resync_fulls, 1u);
}

TEST(ReplFleet, UnixSocketFeedsReplica) {
  const std::string path =
      ::testing::TempDir() + "navsep_repl_test.sock";
  auto engine = make_engine();
  auto publisher =
      engine->open_publisher(repl::Endpoint::unix_socket(path));

  repl::Replica replica =
      repl::Replica::connect(repl::Endpoint::unix_socket(path));
  replica.start();
  rotate_family(*engine, "ByMovement");
  ASSERT_TRUE(replica.wait_for_epoch(engine->internals().snapshots().epoch(),
                                     std::chrono::seconds(30)))
      << replica.error();
  ASSERT_NO_FATAL_FAILURE(expect_snapshots_identical(
      *engine->internals().snapshots().current(),
      *replica.store().current()));
}

TEST(ReplFleet, TwoReplicasStreamIndependently) {
  auto engine = make_engine();
  auto publisher =
      engine->open_publisher(repl::Endpoint::tcp("127.0.0.1", 0));

  repl::Replica a = repl::Replica::connect(publisher->endpoint());
  a.start();
  rotate_family(*engine, "ByAuthor");
  repl::Replica b = repl::Replica::connect(publisher->endpoint());
  b.start();
  (void)engine->internals().retitle_node("guernica", "Guernica again");

  const std::uint64_t target = engine->internals().snapshots().epoch();
  ASSERT_TRUE(a.wait_for_epoch(target, std::chrono::seconds(30)))
      << a.error();
  ASSERT_TRUE(b.wait_for_epoch(target, std::chrono::seconds(30)))
      << b.error();
  SnapPtr origin_snap = engine->internals().snapshots().current();
  ASSERT_NO_FATAL_FAILURE(
      expect_snapshots_identical(*origin_snap, *a.store().current()));
  ASSERT_NO_FATAL_FAILURE(
      expect_snapshots_identical(*origin_snap, *b.store().current()));
  EXPECT_EQ(publisher->stats().subscribers_accepted, 2u);
}

}  // namespace

// The observability layer: the unified metrics registry, the
// per-session navigation trace rings, and the epoch-scoped pipeline
// spans — plus the reconciliation contract that makes the registry
// trustworthy: every exported counter/gauge must equal the per-layer
// stats() view it mirrors, exactly.
//
// The stress test here joins CI's tsan job: trace capture ON while
// readers verify byte-oracle identity, a writer ping-pongs the
// linkbase, and a sampler thread snapshots the registry mid-flight.
#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "hypermedia/context.hpp"
#include "nav/pipeline.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "repl/publisher.hpp"
#include "repl/replica.hpp"
#include "serve/concurrent_server.hpp"
#include "serve/workload.hpp"

namespace {

using navsep::hypermedia::AccessStructureKind;
namespace hm = navsep::hypermedia;
namespace nav = navsep::nav;
namespace obs = navsep::obs;
namespace repl = navsep::repl;
namespace serve = navsep::serve;
namespace site = navsep::site;

std::unique_ptr<nav::Engine> synthetic_engine(std::size_t paintings) {
  return nav::SitePipeline()
      .conceptual(navsep::museum::SyntheticSpec{.painters = 2,
                                                .paintings_per_painter =
                                                    paintings,
                                                .movements = 2,
                                                .seed = 7})
      .access(AccessStructureKind::IndexedGuidedTour)
      .contexts({"ByAuthor", "ByMovement"})
      .weave()
      .serve();
}

std::map<std::string, std::string> site_bytes(const nav::Engine& engine) {
  std::map<std::string, std::string> out;
  for (auto& [path, content] : engine.site().artifacts()) {
    out.emplace(path, content);
  }
  return out;
}

// --- registry instruments -----------------------------------------------------

TEST(Registry, InstrumentsAreNamedStableAndConcurrent) {
  obs::Registry registry;
  obs::Counter& c = registry.counter("x.count");
  c.add();
  c.add(4);
  // Get-or-create: the same name resolves to the same instrument.
  EXPECT_EQ(&registry.counter("x.count"), &c);
  EXPECT_EQ(c.value(), 5u);

  registry.gauge("x.level").set(-3);
  registry.gauge("x.level").add(10);
  EXPECT_EQ(registry.gauge("x.level").value(), 7);

  obs::Histogram& h = registry.histogram("x.latency");
  for (std::uint64_t v : {1u, 2u, 4u, 100u}) h.record(v);
  const obs::HistogramView view = h.view();
  EXPECT_EQ(view.count, 4u);
  EXPECT_EQ(view.sum, 107u);
  EXPECT_EQ(view.max, 100u);

  const obs::Registry::Snapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counters.at("x.count"), 5u);
  EXPECT_EQ(snap.gauges.at("x.level"), 7);
  EXPECT_EQ(snap.histograms.at("x.latency").count, 4u);
}

TEST(Registry, SamplersRunAtSnapshotAndHandlesUnregister) {
  obs::Registry registry;
  int pulls = 0;
  obs::SamplerHandle handle = registry.add_sampler([&] {
    ++pulls;
    registry.gauge("sampled.value").set(pulls);
  });
  EXPECT_TRUE(handle.attached());
  EXPECT_EQ(pulls, 0);  // pull, not push: nothing runs until snapshot()

  EXPECT_EQ(registry.snapshot().gauges.at("sampled.value"), 1);
  EXPECT_EQ(registry.snapshot().gauges.at("sampled.value"), 2);

  // Moving the handle moves the registration; resetting the moved-from
  // handle is a no-op.
  obs::SamplerHandle moved = std::move(handle);
  handle.reset();
  EXPECT_TRUE(moved.attached());
  EXPECT_EQ(registry.snapshot().gauges.at("sampled.value"), 3);

  moved.reset();
  EXPECT_FALSE(moved.attached());
  // Unregistered: the gauge keeps its last value but the hook is gone.
  EXPECT_EQ(registry.snapshot().gauges.at("sampled.value"), 3);
  EXPECT_EQ(pulls, 3);
}

TEST(Registry, ExportersCarryEverySection) {
  obs::Registry registry;
  registry.counter("a.count").add(7);
  registry.gauge("b.gauge").set(9);
  registry.histogram("c.hist").record(32);
  {
    obs::ScopedSpan span(&registry.spans(), "unit.stage", 3);
  }

  const obs::Registry::Snapshot snap = registry.snapshot();
  const std::string json = snap.to_json();
  EXPECT_NE(json.find("\"a.count\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"b.gauge\": 9"), std::string::npos);
  EXPECT_NE(json.find("\"c.hist\""), std::string::npos);
  EXPECT_NE(json.find("\"spans\": {\"recorded\": 1"), std::string::npos);

  const std::string table = snap.to_table();
  EXPECT_NE(table.find("a.count"), std::string::npos);
  EXPECT_NE(table.find("counters"), std::string::npos);
  EXPECT_NE(table.find("histograms"), std::string::npos);
}

// --- the interpolated log2 quantile -------------------------------------------

TEST(Quantile, InterpolatesWithinBucketsInsteadOfUpperBounds) {
  serve::LatencyHistogram h;
  h.record(100);
  h.record(1000);
  h.record(1000);
  h.record(100000);

  // q0 sits in bucket [64,128): interpolated, so well under the upper
  // bound, and never above the sample's own bucket ceiling.
  EXPECT_LE(h.quantile_ns(0.0), 128u);
  // The median lands in [512,1024): the old upper-bound rule answered
  // 1024 (a value strictly greater than every sample in the bucket);
  // interpolation stays inside the half-open range.
  EXPECT_GE(h.quantile_ns(0.5), 512u);
  EXPECT_LT(h.quantile_ns(0.5), 1024u);
  // The top quantile is the tracked maximum itself, exactly.
  EXPECT_EQ(h.quantile_ns(1.0), 100000u);
}

TEST(Quantile, ObsHistogramAndLatencyHistogramAgree) {
  // Same samples through both implementations: the serve-side
  // LatencyHistogram delegates to obs::log2_interpolated_quantile, so
  // the two must answer identically (mod the serve side's rounding).
  serve::LatencyHistogram lat;
  obs::Histogram hist;
  for (std::uint64_t v : {3u, 17u, 17u, 90u, 4000u, 70000u, 70000u, 70001u}) {
    lat.record(v);
    hist.record(v);
  }
  const obs::HistogramView view = hist.view();
  for (double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_EQ(lat.quantile_ns(q),
              static_cast<std::uint64_t>(view.quantile(q) + 0.5))
        << "q=" << q;
  }
}

TEST(Quantile, AbsorbedBucketsAnswerLikeRecordedOnes) {
  serve::LatencyHistogram lat;
  for (std::uint64_t v = 1; v <= 512; ++v) lat.record(v * 3);

  obs::Histogram hist;
  hist.absorb(lat.buckets().data(), lat.buckets().size(), lat.count(),
              lat.total_ns(), lat.max_ns());
  const obs::HistogramView view = hist.view();
  EXPECT_EQ(view.count, lat.count());
  EXPECT_EQ(view.sum, lat.total_ns());
  EXPECT_EQ(view.max, lat.max_ns());
  EXPECT_EQ(static_cast<std::uint64_t>(view.quantile(0.5) + 0.5),
            lat.quantile_ns(0.5));
}

TEST(Quantile, EdgesAreWellDefinedOnDegeneratePopulations) {
  // Empty: every quantile is 0, in both implementations.
  serve::LatencyHistogram empty_lat;
  obs::Histogram empty_hist;
  const obs::HistogramView empty_view = empty_hist.view();
  for (double q : {0.0, 0.5, 1.0}) {
    EXPECT_EQ(empty_lat.quantile_ns(q), 0u) << "q=" << q;
    EXPECT_EQ(empty_view.quantile(q), 0.0) << "q=" << q;
  }

  // All-zero samples: count > 0 but max == 0. q=1 must be the tracked
  // maximum — 0 — not an interpolated position inside bucket [0,2)
  // (the pre-fix code special-cased q>=1 only when max > 0 and answered
  // ~2 for a population that never contained anything but zeros).
  serve::LatencyHistogram zero_lat;
  obs::Histogram zero_hist;
  for (int i = 0; i < 5; ++i) {
    zero_lat.record(0);
    zero_hist.record(0);
  }
  const obs::HistogramView zero_view = zero_hist.view();
  EXPECT_EQ(zero_lat.quantile_ns(1.0), 0u);
  EXPECT_EQ(zero_view.quantile(1.0), 0.0);
  EXPECT_EQ(zero_lat.quantile_ns(0.0), 0u);
  EXPECT_EQ(zero_view.quantile(0.0), 0.0);

  // q<=0 on a real population: the minimum's bucket LOWER bound (the
  // tightest claim a log2 sketch can make about the smallest sample),
  // not a mid-bucket interpolation. Two samples of 100 live in
  // [64,128): the floor is 64, exactly, under any q <= 0.
  serve::LatencyHistogram lat;
  obs::Histogram hist;
  for (int i = 0; i < 2; ++i) {
    lat.record(100);
    hist.record(100);
  }
  const obs::HistogramView view = hist.view();
  EXPECT_EQ(lat.quantile_ns(0.0), 64u);
  EXPECT_EQ(view.quantile(0.0), 64.0);
  EXPECT_EQ(lat.quantile_ns(-1.0), 64u);  // clamped, same floor
  EXPECT_EQ(lat.quantile_ns(1.0), 100u);  // and the ceiling is exact
  EXPECT_EQ(view.quantile(1.0), 100.0);
}

// --- trace rings --------------------------------------------------------------

obs::TraceEvent event_to(const std::string& to) {
  obs::TraceEvent e;
  e.to = to;
  return e;
}

TEST(TraceRing, OverwritesOldestOnWraparoundAndCountsDrops) {
  obs::TraceRing ring(8);
  for (int i = 0; i < 19; ++i) ring.record(event_to("p" + std::to_string(i)));

  EXPECT_EQ(ring.capacity(), 8u);
  EXPECT_EQ(ring.size(), 8u);
  EXPECT_EQ(ring.recorded(), 19u);
  EXPECT_EQ(ring.dropped(), 11u);

  // Retained: the last 8 events, oldest first — p11..p18.
  const std::vector<obs::TraceEvent> events = ring.events();
  ASSERT_EQ(events.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(events[static_cast<std::size_t>(i)].to,
              "p" + std::to_string(11 + i));
  }
}

TEST(TraceRing, ZeroCapacityClampsToOne) {
  obs::TraceRing ring(0);
  ring.record(event_to("a"));
  ring.record(event_to("b"));
  EXPECT_EQ(ring.capacity(), 1u);
  EXPECT_EQ(ring.size(), 1u);
  EXPECT_EQ(ring.events().front().to, "b");
  EXPECT_EQ(ring.dropped(), 1u);
}

TEST(TraceAggregate, BuildsPopularityTablesAcrossRings) {
  obs::TraceRing r1(16);
  obs::TraceRing r2(16);
  obs::TraceEvent arc;
  arc.from = "index.html";
  arc.to = "guernica.html";
  arc.role = "next";
  r1.record(arc);
  r1.record(arc);
  r2.record(arc);
  obs::TraceEvent entry = event_to("index.html");  // role "" = direct entry
  r2.record(entry);
  obs::TraceEvent failed = event_to("gone.html");
  failed.ok = false;
  r2.record(failed);

  obs::TraceAggregate agg;
  agg.absorb(r1);
  agg.absorb(r2);
  EXPECT_EQ(agg.events, 5u);
  EXPECT_EQ(agg.failures, 1u);
  EXPECT_EQ(agg.recorded, 5u);
  EXPECT_EQ(agg.dropped, 0u);
  EXPECT_EQ(agg.page_views.at("guernica.html"), 3u);
  EXPECT_EQ(agg.page_views.at("index.html"), 1u);
  // Direct entries and failures count as views but not arc follows.
  EXPECT_EQ(agg.arc_follows.size(), 1u);
  EXPECT_EQ(
      agg.arc_follows.at(obs::ArcKey{"index.html", "guernica.html", "next"}),
      3u);

  const auto top = agg.top_pages(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].first, "guernica.html");
  EXPECT_EQ(top[0].second, 3u);
  // Ties break by name, ascending.
  EXPECT_EQ(top[1].first, "gone.html");
}

// --- pipeline spans -----------------------------------------------------------

TEST(SpanLog, BoundedRingFiltersByEpoch) {
  obs::SpanLog log(4);
  for (std::uint64_t i = 1; i <= 6; ++i) {
    obs::Span span;
    span.name = "stage";
    span.epoch = i;
    span.begin_ns = i * 10;
    span.end_ns = i * 10 + 5;
    log.record(std::move(span));
  }
  EXPECT_EQ(log.recorded(), 6u);
  EXPECT_EQ(log.dropped(), 2u);
  const std::vector<obs::Span> events = log.events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().epoch, 3u);  // oldest retained
  EXPECT_EQ(events.back().epoch, 6u);
  EXPECT_EQ(log.for_epoch(5).size(), 1u);
  EXPECT_TRUE(log.for_epoch(1).empty());  // overwritten
}

TEST(SpanLog, ScopedSpanIsANoOpWithoutALog) {
  {
    obs::ScopedSpan span(nullptr, "nothing", 1);
    span.set_epoch(2);
  }  // must not crash or record anywhere
  obs::SpanLog log;
  {
    obs::ScopedSpan span(&log, "real", 0);
    span.set_epoch(9);
  }
  const std::vector<obs::Span> events = log.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "real");
  EXPECT_EQ(events[0].epoch, 9u);
  EXPECT_GE(events[0].end_ns, events[0].begin_ns);
}

TEST(PipelineSpans, EditBurstCorrelatesByTargetEpoch) {
  auto engine = synthetic_engine(3);
  auto registry = std::make_shared<obs::Registry>();
  engine->internals().attach_telemetry(registry);
  engine->internals().set_weave_workers(2);  // wave spans need lanes

  const std::uint64_t before = engine->internals().snapshots().epoch();
  // Copy the id out: retitling regenerates the structure (and frees the
  // member list a reference would point into).
  const std::string node_id = engine->structure().members().front().node_id;
  (void)engine->internals().retitle_node(node_id, "Spanned Title");
  const std::uint64_t after = engine->internals().snapshots().epoch();
  ASSERT_GT(after, before);

  // Every stage of that edit's pipeline carries the same target epoch:
  // filtering the log by it reassembles the burst end-to-end.
  const std::vector<obs::Span> spans = registry->spans().for_epoch(after);
  ASSERT_FALSE(spans.empty());
  bool saw_run = false;
  bool saw_publish = false;
  for (const obs::Span& span : spans) {
    EXPECT_EQ(span.epoch, after);
    EXPECT_GE(span.end_ns, span.begin_ns);
    if (span.name == "build.run") saw_run = true;
    if (span.name == "build.publish") saw_publish = true;
  }
  EXPECT_TRUE(saw_run);
  EXPECT_TRUE(saw_publish);

  // The rebuild counters moved with the edit.
  const obs::Registry::Snapshot snap = registry->snapshot();
  EXPECT_GE(snap.counters.at("build.runs"), 1u);
  EXPECT_GE(snap.counters.at("build.pages_rewoven"), 1u);
  EXPECT_EQ(static_cast<std::uint64_t>(snap.gauges.at("store.epoch")), after);
}

TEST(PipelineSpans, ReplicationStagesCarryTheFrameEpoch) {
  auto engine = synthetic_engine(3);
  auto registry = std::make_shared<obs::Registry>();

  repl::PublisherOptions options;
  options.telemetry = registry;
  auto publisher =
      engine->open_publisher(repl::Endpoint::tcp("127.0.0.1", 0), options);
  repl::Replica replica = repl::Replica::connect(publisher->endpoint());
  replica.attach_telemetry(registry);
  replica.start();

  const std::string node_id = engine->structure().members().front().node_id;
  for (int i = 0; i < 3; ++i) {
    (void)engine->internals().retitle_node(node_id,
                                           "repl-" + std::to_string(i));
  }
  const std::uint64_t target = engine->internals().snapshots().epoch();
  ASSERT_TRUE(replica.wait_for_epoch(target, std::chrono::seconds(30)));
  replica.stop();

  // The last epoch crossed the wire: encode and ship on the origin side,
  // apply on the replica side, all stamped with it. The ship span lands
  // asynchronously — wait_for_epoch() can return as soon as the replica
  // applies the frame, a hair before the publisher's sender thread has
  // closed its ScopedSpan — so poll with a deadline instead of reading
  // the log once.
  bool saw_encode = false;
  bool saw_ship = false;
  bool saw_apply = false;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  do {
    for (const obs::Span& span : registry->spans().for_epoch(target)) {
      if (span.name == "repl.encode") saw_encode = true;
      if (span.name == "repl.ship") saw_ship = true;
      if (span.name == "repl.apply") saw_apply = true;
    }
    if (saw_encode && saw_ship && saw_apply) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  } while (std::chrono::steady_clock::now() < deadline);
  EXPECT_TRUE(saw_encode);
  EXPECT_TRUE(saw_ship);
  EXPECT_TRUE(saw_apply);

  // Both ends' samplers reconcile with their stats() structs.
  const obs::Registry::Snapshot snap = registry->snapshot();
  const repl::Publisher::Stats ps = publisher->stats();
  const repl::ReplicaStats rs = replica.stats();
  EXPECT_EQ(static_cast<std::size_t>(snap.gauges.at("repl.pub.full_frames")),
            ps.full_frames);
  EXPECT_EQ(static_cast<std::size_t>(snap.gauges.at("repl.pub.delta_frames")),
            ps.delta_frames);
  EXPECT_EQ(
      static_cast<std::size_t>(snap.gauges.at("repl.rep.frames_applied")),
      rs.frames_applied);
  EXPECT_EQ(static_cast<std::uint64_t>(snap.gauges.at("repl.rep.epoch")),
            rs.epoch);
  EXPECT_EQ(rs.epoch, target);
}

// --- workload capture + the reconciliation contract ---------------------------

TEST(WorkloadTelemetry, TracesCaptureNavigationAndCountersReconcile) {
  auto engine = synthetic_engine(4);
  engine->internals().register_profile({"tour", {"ByAuthor"}});
  auto registry = std::make_shared<obs::Registry>();
  engine->internals().attach_telemetry(registry);
  auto server = engine->open_concurrent(4);
  obs::SamplerHandle metrics = server->register_metrics(registry);

  serve::Workload workload(*engine);
  serve::WorkloadOptions options;
  options.threads = 5;  // one session of every behavior incl. ProfileMix
  options.behaviors = {serve::Behavior::RandomSurfer,
                       serve::Behavior::GuidedTour,
                       serve::Behavior::ContextSwitcher,
                       serve::Behavior::Kiosk, serve::Behavior::ProfileMix};
  options.steps_per_session = 64;
  options.trace = {.enabled = true, .sample_every = 1, .ring_capacity = 512};
  options.telemetry = registry;
  const serve::WorkloadResult result = workload.run(*server, options);

  // Full capture on a quiescent site: every step is recorded and none
  // drop (ring capacity exceeds steps per session).
  EXPECT_EQ(result.traces.recorded, result.requests);
  EXPECT_EQ(result.traces.dropped, 0u);
  EXPECT_EQ(result.traces.events, result.requests);
  EXPECT_EQ(result.traces.failures, result.failures);

  // The popularity tables describe real navigation: views sum to the
  // events absorbed, arc follows carry real roles from real pages.
  std::uint64_t views = 0;
  for (const auto& [page, hits] : result.traces.page_views) views += hits;
  EXPECT_EQ(views, result.traces.events);
  EXPECT_FALSE(result.traces.arc_follows.empty());
  std::uint64_t follows = 0;
  for (const auto& [key, hits] : result.traces.arc_follows) {
    EXPECT_FALSE(key.role.empty());
    EXPECT_FALSE(key.to.empty());
    follows += hits;
  }
  EXPECT_LE(follows, views);  // entries/jumps view without following an arc
  const auto top = result.traces.top_pages(3);
  ASSERT_FALSE(top.empty());
  EXPECT_GE(top.front().second, top.back().second);

  // THE acceptance contract: the registry snapshot reconciles exactly
  // with every per-layer stats() view.
  const obs::Registry::Snapshot snap = registry->snapshot();
  EXPECT_EQ(snap.counters.at("workload.sessions"), result.sessions);
  EXPECT_EQ(snap.counters.at("workload.steps"), result.steps);
  EXPECT_EQ(snap.counters.at("workload.requests"), result.requests);
  EXPECT_EQ(snap.counters.at("workload.failures"), result.failures);
  EXPECT_EQ(snap.counters.at("workload.traces.recorded"),
            result.traces.recorded);
  EXPECT_EQ(snap.counters.at("workload.traces.dropped"),
            result.traces.dropped);
  EXPECT_EQ(snap.histograms.at("workload.latency").count,
            result.latency.count());
  EXPECT_EQ(snap.histograms.at("workload.latency").max,
            result.latency.max_ns());
  for (const serve::BehaviorTally& tally : result.by_behavior) {
    EXPECT_EQ(snap.histograms
                  .at("workload.latency." +
                      std::string(serve::to_string(tally.behavior)))
                  .count,
              tally.latency.count())
        << serve::to_string(tally.behavior);
  }

  const serve::ConcurrentServer::UnifiedStats unified =
      server->unified_stats();
  const auto gauge = [&](const char* name) {
    return static_cast<std::size_t>(snap.gauges.at(name));
  };
  EXPECT_EQ(gauge("serve.base.requests"), unified.base.requests);
  EXPECT_EQ(gauge("serve.base.hits"), unified.base.hits);
  EXPECT_EQ(gauge("serve.base.resolves"), unified.base.resolves);
  EXPECT_EQ(gauge("serve.base.entries"), unified.base.entries);
  EXPECT_EQ(gauge("serve.base.inserted"), unified.base.inserted);
  EXPECT_EQ(gauge("serve.base.evicted"), unified.base.evicted);
  EXPECT_EQ(gauge("serve.base.resident_bytes"), unified.base.resident_bytes);
  EXPECT_EQ(gauge("serve.overlay.requests"), unified.overlay.requests);
  EXPECT_EQ(gauge("serve.overlay.hits"), unified.overlay.hits);
  EXPECT_EQ(gauge("serve.overlay.resolves"), unified.overlay.resolves);
  EXPECT_EQ(gauge("serve.overlay.entries"), unified.overlay.entries);
  EXPECT_EQ(static_cast<std::uint64_t>(snap.gauges.at("serve.epoch")),
            unified.epoch);

  // And the compatibility Stats struct is exactly the unified view under
  // the historical names — residency ledgers included.
  const serve::ConcurrentServer::Stats compat = server->stats();
  EXPECT_EQ(compat.requests, unified.base.requests);
  EXPECT_EQ(compat.cache_hits, unified.base.hits);
  EXPECT_EQ(compat.snapshot_resolves, unified.base.resolves);
  EXPECT_EQ(compat.stale_refills, unified.base.stale_refills);
  EXPECT_EQ(compat.not_found, unified.base.not_found);
  EXPECT_EQ(compat.cached_entries, unified.base.entries);
  EXPECT_EQ(compat.cache_inserted, unified.base.inserted);
  EXPECT_EQ(compat.cache_evicted, unified.base.evicted);
  EXPECT_EQ(compat.cached_bytes, unified.base.resident_bytes);
  EXPECT_EQ(compat.overlay_requests, unified.overlay.requests);
  EXPECT_EQ(compat.overlay_hits, unified.overlay.hits);
  EXPECT_EQ(compat.overlay_renders, unified.overlay.resolves);
  EXPECT_EQ(compat.overlay_stale_renders, unified.overlay.stale_refills);
  EXPECT_EQ(compat.overlay_not_found, unified.overlay.not_found);
  EXPECT_EQ(compat.overlay_entries, unified.overlay.entries);
  EXPECT_EQ(compat.overlay_inserted, unified.overlay.inserted);
  EXPECT_EQ(compat.overlay_evicted, unified.overlay.evicted);
  EXPECT_EQ(compat.overlay_bytes, unified.overlay.resident_bytes);
  EXPECT_EQ(compat.epoch, unified.epoch);
  EXPECT_EQ(unified.base.inserted, unified.base.entries + unified.base.evicted);
  EXPECT_EQ(unified.overlay.inserted,
            unified.overlay.entries + unified.overlay.evicted);
}

TEST(WorkloadTelemetry, SamplingStrideAndRingCapBoundCapture) {
  auto engine = synthetic_engine(4);
  serve::Workload workload(*engine);
  serve::WorkloadOptions options;
  options.threads = 2;
  options.steps_per_session = 80;
  options.trace = {.enabled = true, .sample_every = 4, .ring_capacity = 8};
  const serve::WorkloadResult result = workload.run(options);

  // Stride: roughly every 4th request recorded (each session's clock is
  // its own, so the global total is within one stride per session).
  EXPECT_GE(result.traces.recorded, result.requests / 4);
  EXPECT_LE(result.traces.recorded, result.requests / 4 + options.threads);
  // Ring cap: at most 8 retained per session; overflow counted, and
  // recorded reconciles with retained + dropped.
  EXPECT_LE(result.traces.events, 8u * options.threads);
  EXPECT_EQ(result.traces.recorded,
            result.traces.events + result.traces.dropped);
  EXPECT_GT(result.traces.dropped, 0u);
}

TEST(WorkloadTelemetry, StridedSamplingIsNotEntryPageSkewed) {
  // Stride == steps: each session records exactly one step. With the
  // pre-fix zero phase, that step was ALWAYS step 0 — every session's
  // entry fetch — so a strided aggregate claimed the entry page was the
  // only page anyone visited, exactly the skew the landmark scorer and
  // cache warmer would then amplify. Per-session phase offsets must
  // spread the single sample across the walk.
  auto engine = synthetic_engine(4);
  serve::Workload workload(*engine);
  serve::WorkloadOptions options;
  options.threads = 16;
  options.steps_per_session = 64;
  options.behaviors = {serve::Behavior::RandomSurfer};
  options.trace = {.enabled = true,
                   .sample_every = 64,
                   .ring_capacity = 64};
  const serve::WorkloadResult result = workload.run(options);

  ASSERT_GE(result.traces.events, options.threads / 2);
  ASSERT_FALSE(result.traces.page_views.empty());
  std::size_t top = 0;
  for (const auto& [page, views] : result.traces.page_views) {
    top = std::max(top, views);
  }
  // No single page (the entry page, pre-fix) may account for every
  // sampled view, and the sampled walk must touch more than one page.
  EXPECT_GT(result.traces.page_views.size(), 1u);
  EXPECT_LT(top, result.traces.events);
}

TEST(WorkloadTelemetry, CaptureOffCostsAndRecordsNothing) {
  auto engine = synthetic_engine(4);
  serve::Workload workload(*engine);
  serve::WorkloadOptions options;
  options.threads = 2;
  options.steps_per_session = 32;
  const serve::WorkloadResult result = workload.run(options);
  EXPECT_EQ(result.traces.events, 0u);
  EXPECT_EQ(result.traces.recorded, 0u);
  EXPECT_TRUE(result.traces.page_views.empty());
}

// --- the TSan stress: capture on, registry sampled, bytes still oracle --------

// Four traced workload sessions navigate and two checker readers verify
// byte-oracle identity while one writer ping-pongs the linkbase between
// states A and B and a sampler thread snapshots the registry
// mid-flight. Trace capture and metrics export must not perturb the
// serve path: every body any checker sees must be byte-identical to
// state A's or state B's bytes — the single-threaded build is the
// oracle; anything else is a torn read.
TEST(ObsStress, TraceCaptureAndSnapshotsPreserveOracleBytes) {
  auto engine = synthetic_engine(4);

  const std::vector<hm::AccessArc> arcs = engine->authored_arcs();
  std::size_t up_index = 0;
  for (std::size_t i = 0; i < arcs.size(); ++i) {
    if (arcs[i].role == hm::roles::kUp) {
      up_index = i;
      break;
    }
  }
  hm::AccessArc arc_a = arcs[up_index];
  arc_a.title = "Index (state A)";
  hm::AccessArc arc_b = arcs[up_index];
  arc_b.title = "Index (state B)";

  (void)engine->internals().replace_arc(up_index, arc_a);
  const std::map<std::string, std::string> oracle_a = site_bytes(*engine);
  (void)engine->internals().replace_arc(up_index, arc_b);
  const std::map<std::string, std::string> oracle_b = site_bytes(*engine);
  ASSERT_EQ(oracle_a.size(), oracle_b.size());
  (void)engine->internals().replace_arc(up_index, arc_a);

  auto registry = std::make_shared<obs::Registry>();
  engine->internals().attach_telemetry(registry);
  auto server = engine->open_concurrent(8);
  obs::SamplerHandle metrics = server->register_metrics(registry);
  serve::Workload workload(*engine);  // before the writer starts

  std::vector<std::string> paths;
  for (const auto& [path, _] : oracle_a) paths.push_back(path);

  std::atomic<bool> done{false};
  std::atomic<std::size_t> reads{0};
  std::atomic<std::size_t> torn{0};
  std::atomic<std::size_t> snapshots{0};

  // Traced sessions: full capture, telemetry attached, same server.
  serve::WorkloadResult result;
  std::thread traffic([&] {
    serve::WorkloadOptions options;
    options.threads = 4;
    options.steps_per_session = 192;
    options.trace = {.enabled = true, .sample_every = 1,
                     .ring_capacity = 256};
    options.telemetry = registry;
    result = workload.run(*server, options);
  });

  // Checker readers: byte-oracle identity on every read.
  std::vector<std::thread> checkers;
  for (std::size_t r = 0; r < 2; ++r) {
    checkers.emplace_back([&, r] {
      std::size_t i = r;
      while (!done.load(std::memory_order_acquire)) {
        const std::string& path = paths[i++ % paths.size()];
        site::Response resp = server->get(path);
        if (!resp.ok()) continue;
        reads.fetch_add(1, std::memory_order_relaxed);
        const std::string& body = *resp.body;
        auto a = oracle_a.find(path);
        auto b = oracle_b.find(path);
        const bool matches = (a != oracle_a.end() && body == a->second) ||
                             (b != oracle_b.end() && body == b->second);
        if (!matches) torn.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // The sampler: snapshot the registry continuously while everything
  // else runs — samplers re-enter server stats and engine stats.
  std::thread sampler([&] {
    while (!done.load(std::memory_order_acquire)) {
      (void)registry->snapshot();
      snapshots.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::yield();
    }
  });

  // The single writer: ping-pong A<->B, full rebuild every 8th round.
  constexpr std::size_t kWrites = 48;
  for (std::size_t w = 0; w < kWrites; ++w) {
    (void)engine->internals().replace_arc(up_index,
                                          (w % 2 == 0) ? arc_b : arc_a);
    if (w % 8 == 7) engine->internals().rebuild();
    std::this_thread::yield();
  }
  traffic.join();
  done.store(true, std::memory_order_release);
  for (std::thread& t : checkers) t.join();
  sampler.join();

  EXPECT_GT(reads.load(), 0u);
  EXPECT_EQ(torn.load(), 0u);
  EXPECT_GT(snapshots.load(), 0u);
  EXPECT_GT(result.traces.events, 0u);
  EXPECT_EQ(result.traces.recorded,
            result.traces.events + result.traces.dropped);

  // Quiescent again: the registry still reconciles exactly.
  const obs::Registry::Snapshot snap = registry->snapshot();
  EXPECT_EQ(snap.counters.at("workload.requests"), result.requests);
  const serve::ConcurrentServer::UnifiedStats unified =
      server->unified_stats();
  EXPECT_EQ(static_cast<std::size_t>(snap.gauges.at("serve.base.requests")),
            unified.base.requests);

  // Final convergence: full rebuild, then served == site bytes.
  engine->internals().rebuild();
  const std::map<std::string, std::string> final_bytes = site_bytes(*engine);
  for (const auto& [path, bytes] : final_bytes) {
    site::Response resp = server->get(path);
    ASSERT_TRUE(resp.ok()) << path;
    EXPECT_EQ(*resp.body, bytes) << path;
  }
}

}  // namespace

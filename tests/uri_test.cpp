// Unit + property tests for RFC 3986 URI handling.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "uri/uri.hpp"

namespace uri = navsep::uri;

TEST(UriParse, FullUriDecomposes) {
  uri::Uri u = uri::parse("http://example.com/a/b?x=1#frag");
  ASSERT_TRUE(u.scheme);
  EXPECT_EQ(*u.scheme, "http");
  ASSERT_TRUE(u.authority);
  EXPECT_EQ(*u.authority, "example.com");
  EXPECT_EQ(u.path, "/a/b");
  ASSERT_TRUE(u.query);
  EXPECT_EQ(*u.query, "x=1");
  ASSERT_TRUE(u.fragment);
  EXPECT_EQ(*u.fragment, "frag");
}

TEST(UriParse, RelativeReferenceHasNoScheme) {
  uri::Uri u = uri::parse("links.xml#picasso");
  EXPECT_FALSE(u.scheme);
  EXPECT_FALSE(u.authority);
  EXPECT_EQ(u.path, "links.xml");
  ASSERT_TRUE(u.fragment);
  EXPECT_EQ(*u.fragment, "picasso");
}

TEST(UriParse, SameDocumentReference) {
  uri::Uri u = uri::parse("#guitar");
  EXPECT_TRUE(u.is_same_document());
  EXPECT_EQ(*u.fragment, "guitar");
}

TEST(UriParse, EmptyQueryAndFragmentAreDistinctFromAbsent) {
  uri::Uri with = uri::parse("http://h/p?#");
  ASSERT_TRUE(with.query);
  EXPECT_EQ(*with.query, "");
  ASSERT_TRUE(with.fragment);
  uri::Uri without = uri::parse("http://h/p");
  EXPECT_FALSE(without.query);
  EXPECT_FALSE(without.fragment);
  EXPECT_NE(with.to_string(), without.to_string());
}

TEST(UriParse, ColonInPathDoesNotCreateScheme) {
  uri::Uri u = uri::parse("./a:b/c");
  EXPECT_FALSE(u.scheme);
  EXPECT_EQ(u.path, "./a:b/c");
}

TEST(UriParse, SchemeIsCaseInsensitive) {
  EXPECT_EQ(*uri::parse("HTTP://h/").scheme, "http");
}

TEST(UriParse, RejectsIllegalCharacters) {
  EXPECT_THROW(uri::parse("http://h/a b"), navsep::ParseError);
  EXPECT_THROW(uri::parse("<x>"), navsep::ParseError);
}

TEST(UriRecompose, RoundTripsTextualForm) {
  for (const char* text :
       {"http://example.com/a/b?x=1#f", "//host/path", "/abs/path", "rel",
        "#frag", "?q", "mailto:user@host", "file:///tmp/x.xml"}) {
    EXPECT_EQ(uri::parse(text).to_string(), text) << text;
  }
}

TEST(UriDotSegments, Rfc3986Examples) {
  EXPECT_EQ(uri::remove_dot_segments("/a/b/c/./../../g"), "/a/g");
  EXPECT_EQ(uri::remove_dot_segments("mid/content=5/../6"), "mid/6");
  EXPECT_EQ(uri::remove_dot_segments("../bare"), "bare");
  EXPECT_EQ(uri::remove_dot_segments("/.."), "/");
  EXPECT_EQ(uri::remove_dot_segments("/a/.."), "/");
  EXPECT_EQ(uri::remove_dot_segments("."), "");
}

// The RFC 3986 §5.4.1 normal-resolution examples, parameterized.
struct ResolveCase {
  const char* ref;
  const char* expected;
};

class UriResolveNormal : public ::testing::TestWithParam<ResolveCase> {};

TEST_P(UriResolveNormal, MatchesRfc3986) {
  const auto& p = GetParam();
  EXPECT_EQ(uri::resolve("http://a/b/c/d;p?q", p.ref), p.expected);
}

INSTANTIATE_TEST_SUITE_P(
    Rfc3986Section541, UriResolveNormal,
    ::testing::Values(
        ResolveCase{"g", "http://a/b/c/g"},
        ResolveCase{"./g", "http://a/b/c/g"},
        ResolveCase{"g/", "http://a/b/c/g/"},
        ResolveCase{"/g", "http://a/g"},
        ResolveCase{"//g", "http://g"},
        ResolveCase{"?y", "http://a/b/c/d;p?y"},
        ResolveCase{"g?y", "http://a/b/c/g?y"},
        ResolveCase{"#s", "http://a/b/c/d;p?q#s"},
        ResolveCase{"g#s", "http://a/b/c/g#s"},
        ResolveCase{";x", "http://a/b/c/;x"},
        ResolveCase{"g;x", "http://a/b/c/g;x"},
        ResolveCase{"", "http://a/b/c/d;p?q"},
        ResolveCase{".", "http://a/b/c/"},
        ResolveCase{"./", "http://a/b/c/"},
        ResolveCase{"..", "http://a/b/"},
        ResolveCase{"../", "http://a/b/"},
        ResolveCase{"../g", "http://a/b/g"},
        ResolveCase{"../..", "http://a/"},
        ResolveCase{"../../", "http://a/"},
        ResolveCase{"../../g", "http://a/g"}));

class UriResolveAbnormal : public ::testing::TestWithParam<ResolveCase> {};

TEST_P(UriResolveAbnormal, MatchesRfc3986) {
  const auto& p = GetParam();
  EXPECT_EQ(uri::resolve("http://a/b/c/d;p?q", p.ref), p.expected);
}

INSTANTIATE_TEST_SUITE_P(
    Rfc3986Section542, UriResolveAbnormal,
    ::testing::Values(
        ResolveCase{"../../../g", "http://a/g"},
        ResolveCase{"../../../../g", "http://a/g"},
        ResolveCase{"/./g", "http://a/g"},
        ResolveCase{"/../g", "http://a/g"},
        ResolveCase{"g.", "http://a/b/c/g."},
        ResolveCase{".g", "http://a/b/c/.g"},
        ResolveCase{"g..", "http://a/b/c/g.."},
        ResolveCase{"..g", "http://a/b/c/..g"},
        ResolveCase{"./../g", "http://a/b/g"},
        ResolveCase{"./g/.", "http://a/b/c/g/"},
        ResolveCase{"g/./h", "http://a/b/c/g/h"},
        ResolveCase{"g/../h", "http://a/b/c/h"},
        ResolveCase{"g;x=1/./y", "http://a/b/c/g;x=1/y"},
        ResolveCase{"g;x=1/../y", "http://a/b/c/y"}));

TEST(UriResolve, AbsoluteReferenceWinsOverBase) {
  EXPECT_EQ(uri::resolve("http://a/b", "https://x/y"), "https://x/y");
}

TEST(UriResolve, RelativeLinkbaseCase) {
  // The museum site stores data and links side by side.
  EXPECT_EQ(uri::resolve("http://museum.example/data/links.xml",
                         "picasso.xml#guitar"),
            "http://museum.example/data/picasso.xml#guitar");
}

TEST(UriNormalize, CaseAndPercentEncoding) {
  uri::Uri u = uri::parse("HTTP://Example.COM/%7euser/./x/../y%2F");
  uri::Uri n = uri::normalize(u);
  EXPECT_EQ(n.to_string(), "http://example.com/~user/y%2F");
}

TEST(UriPercent, EncodeDecodesRoundTrip) {
  std::string original = "a b/c?d&e=f#g%";
  std::string encoded = uri::percent_encode(original);
  EXPECT_EQ(encoded.find(' '), std::string::npos);
  EXPECT_EQ(uri::percent_decode(encoded), original);
}

TEST(UriPercent, KeepSetPreservesCharacters) {
  EXPECT_EQ(uri::percent_encode("a/b", "/"), "a/b");
  EXPECT_EQ(uri::percent_encode("a/b"), "a%2Fb");
}

TEST(UriPercent, MalformedEscapesPassThrough) {
  EXPECT_EQ(uri::percent_decode("%GZ"), "%GZ");
  EXPECT_EQ(uri::percent_decode("%2"), "%2");
  EXPECT_EQ(uri::percent_decode("100%"), "100%");
}

// Declarative route programs: parser, printer, and the lazy-vs-AOT
// differential harness.
//
// Three contracts pinned here:
//   1. print_route is a canonical form — parse → print → parse is a
//      fixpoint, for hand-written and randomized expressions alike.
//   2. Compile errors are diagnosable: ParseError names the offending
//      token; registration-time SemanticErrors name the clash.
//   3. THE tentpole: for every registered route program, the lazily
//      synthesized serve-time overlay and the ahead-of-time authored
//      linkbase serve byte-identical responses — both equal to the
//      from-scratch full-build oracle — across ≥30 randomized programs,
//      family edits, batched mutations, rebuild(), and a publisher →
//      replica pair.
#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "hypermedia/access.hpp"
#include "hypermedia/context.hpp"
#include "nav/pipeline.hpp"
#include "nav/profile.hpp"
#include "nav/route.hpp"
#include "oracle.hpp"
#include "repl/publisher.hpp"
#include "repl/replica.hpp"
#include "serve/concurrent_server.hpp"
#include "serve/snapshot.hpp"
#include "site/virtual_site.hpp"

namespace {

using navsep::ParseError;
using navsep::ResolutionError;
using navsep::SemanticError;
using navsep::hypermedia::AccessStructureKind;
namespace hm = navsep::hypermedia;
namespace nav = navsep::nav;
namespace repl = navsep::repl;
namespace serve = navsep::serve;
namespace site = navsep::site;
using nav::RouteCompile;
using nav::RouteExpr;
using nav::RouteProgram;
using navsep::testing::expect_profile_matches_oracle;
using navsep::testing::expect_sites_identical;
using navsep::testing::full_build_oracle;

std::unique_ptr<nav::Engine> paper_engine() {
  return nav::SitePipeline()
      .paper_museum()
      .access(AccessStructureKind::IndexedGuidedTour, "picasso")
      .contexts({"ByAuthor", "ByMovement"})
      .weave()
      .serve();
}

std::unique_ptr<nav::Engine> synthetic_engine(std::size_t paintings,
                                              std::uint64_t seed = 11) {
  return nav::SitePipeline()
      .conceptual(navsep::museum::SyntheticSpec{.painters = 3,
                                                .paintings_per_painter =
                                                    paintings,
                                                .movements = 2,
                                                .seed = seed})
      .access(AccessStructureKind::IndexedGuidedTour)
      .contexts({"ByAuthor", "ByMovement"})
      .weave()
      .serve();
}

/// Deterministic xorshift64* — the same self-contained generator the
/// stress suite uses; no <random> distribution drift across libstdc++s.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed ? seed : 1) {}
  std::uint64_t next() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545F4914F6CDD1Dull;
  }
  std::size_t below(std::size_t n) { return next() % n; }

 private:
  std::uint64_t state_;
};

// --- 1. parse → print → parse fixpoint ----------------------------------------

TEST(RouteParse, CanonicalFormsOfHandWrittenExpressions) {
  const std::pair<const char*, const char*> cases[] = {
      {"next", "next"},
      {"  next  ", "next"},
      {"next/prev", "next / prev"},
      {"a|b/c", "a | b / c"},
      {"(a|b)/c", "(a | b) / c"},
      {"a*", "a*"},
      {"(a/b)*", "(a / b)*"},
      {"(a)", "a"},
      {"((a))", "a"},
      {"@ByAuthor/next", "@ByAuthor / next"},
      {"@ByAuthor*|prev", "@ByAuthor* | prev"},
      {"(a|b)*/c|d", "(a | b)* / c | d"},
      {"index-entry/next*", "index-entry / next*"},
      {"a/(b|c)/d", "a / (b | c) / d"},
  };
  for (const auto& [source, canonical] : cases) {
    const RouteExpr parsed = nav::parse_route(source);
    EXPECT_EQ(nav::print_route(parsed), canonical) << source;
    // Fixpoint both ways: re-parsing the canonical form yields the same
    // AST, and re-printing that yields the same text.
    const RouteExpr reparsed = nav::parse_route(canonical);
    EXPECT_TRUE(parsed == reparsed) << source;
    EXPECT_EQ(nav::print_route(reparsed), canonical) << source;
  }
}

RouteExpr random_expr(Rng& rng, int depth) {
  static const std::vector<std::string> roles = {
      "next", "prev", "up", "index-entry", "first", "menu-entry"};
  static const std::vector<std::string> families = {"ByAuthor", "ByMovement"};
  const std::size_t pick = depth >= 3 ? rng.below(2) : rng.below(5);
  RouteExpr e;
  switch (pick) {
    case 0:
      e.kind = RouteExpr::Kind::Role;
      e.name = roles[rng.below(roles.size())];
      return e;
    case 1:
      e.kind = RouteExpr::Kind::Family;
      e.name = families[rng.below(families.size())];
      return e;
    case 2:
    case 3: {
      e.kind = pick == 2 ? RouteExpr::Kind::Seq : RouteExpr::Kind::Alt;
      const std::size_t n = 2 + rng.below(2);
      for (std::size_t i = 0; i < n; ++i) {
        RouteExpr child = random_expr(rng, depth + 1);
        // Seq/Alt children of the same kind would flatten under
        // re-parse; nest them behind a Star or drop to an atom so the
        // generated AST is already in canonical shape.
        if (child.kind == e.kind) {
          RouteExpr starred;
          starred.kind = RouteExpr::Kind::Star;
          starred.children.push_back(std::move(child));
          child = std::move(starred);
        }
        e.children.push_back(std::move(child));
      }
      return e;
    }
    default: {
      e.kind = RouteExpr::Kind::Star;
      RouteExpr child = random_expr(rng, depth + 1);
      if (child.kind == RouteExpr::Kind::Star) {
        return child;  // e** has no canonical spelling; collapse
      }
      e.children.push_back(std::move(child));
      return e;
    }
  }
}

TEST(RouteParse, RandomizedPrintParseFixpoint) {
  Rng rng(20260808);
  for (int i = 0; i < 500; ++i) {
    const RouteExpr expr = random_expr(rng, 0);
    const std::string printed = nav::print_route(expr);
    RouteExpr reparsed;
    ASSERT_NO_THROW(reparsed = nav::parse_route(printed)) << printed;
    EXPECT_TRUE(expr == reparsed) << printed;
    EXPECT_EQ(nav::print_route(reparsed), printed) << printed;
  }
}

// --- 2. compile errors name the offending token -------------------------------

TEST(RouteParse, ErrorsNameTheOffendingToken) {
  const std::pair<const char*, const char*> cases[] = {
      {"", "unexpected token"},
      {"a b", "unexpected token 'b'"},
      {"a**", "unexpected token '*' (already starred)"},
      {"(a | b", "expected ')'"},
      {"a | b)", "unexpected token ')'"},
      {"a /", "unexpected token"},
      {"| a", "unexpected token '|'"},
      {"@", "expected a family name after '@'"},
      {"a / @ / b", "expected a family name after '@'"},
      {"a $ b", "unexpected character '$'"},
  };
  for (const auto& [source, needle] : cases) {
    try {
      (void)nav::parse_route(source);
      FAIL() << "parse_route(\"" << source << "\") did not throw";
    } catch (const ParseError& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << "\"" << source << "\" → " << e.what();
    }
  }
}

TEST(RouteRegister, RegistrationErrorContracts) {
  auto engine = synthetic_engine(2);
  nav::EngineInternals& in = engine->internals();

  // Malformed expression: ParseError before any state moves.
  EXPECT_THROW((void)in.register_route({"broken", "a**", RouteCompile::Aot}),
               ParseError);
  EXPECT_TRUE(in.routes().empty());

  // Names are context-family names: non-empty, no ':' / newline.
  EXPECT_THROW((void)in.register_route({"", "next", RouteCompile::Aot}),
               SemanticError);
  EXPECT_THROW((void)in.register_route({"a:b", "next", RouteCompile::Aot}),
               SemanticError);
  EXPECT_THROW((void)in.register_route({"a\nb", "next", RouteCompile::Aot}),
               SemanticError);

  // Routes and families share the profile namespace — and the site path
  // namespace (names map to paths case-insensitively).
  EXPECT_THROW(
      (void)in.register_route({"ByAuthor", "next", RouteCompile::Aot}),
      SemanticError);
  EXPECT_THROW(
      (void)in.register_route({"byauthor", "next", RouteCompile::Aot}),
      SemanticError);

  // Unknown names on the edit/remove/query side.
  EXPECT_THROW((void)in.edit_route("ghost", "next"), ResolutionError);
  EXPECT_THROW((void)in.remove_route("ghost"), ResolutionError);
  EXPECT_THROW((void)in.route_family("ghost"), ResolutionError);

  // The stored expression is the canonical spelling.
  (void)in.register_route({"r", "  next /(prev|up)  ", RouteCompile::Aot});
  ASSERT_EQ(in.routes().size(), 1u);
  EXPECT_EQ(in.routes().front().expression, "next / (prev | up)");
}

TEST(RouteRegister, TangledModeRefusesRoutes) {
  auto engine = nav::SitePipeline()
                    .paper_museum()
                    .access(AccessStructureKind::IndexedGuidedTour, "picasso")
                    .tangled()
                    .serve();
  EXPECT_THROW((void)engine->internals().register_route(
                   {"r", "next", RouteCompile::Aot}),
               SemanticError);
}

// --- 3. the lazy-vs-AOT differential harness ----------------------------------

/// Register `program`, point a fresh profile at it, and assert the
/// profile serves byte-identically to the full-build oracle on EVERY
/// path. profile_oracle expands routes itself, so one oracle is the
/// common truth for both compile modes.
void expect_route_matches_oracle(nav::Engine& engine,
                                 serve::ConcurrentServer& server,
                                 const RouteProgram& program) {
  (void)engine.internals().register_route(program);
  nav::Profile profile{"profile-" + program.name, {program.name}};
  engine.internals().register_profile(profile);
  expect_profile_matches_oracle(engine, server, profile);
}

TEST(RouteDifferential, RandomizedProgramsLazyEqualsAotEqualsOracle) {
  auto engine = synthetic_engine(3);
  auto server = engine->open_concurrent();
  Rng rng(0x9e3779b9u);

  // ≥30 generated programs, each registered AOT first, then flipped to
  // Lazy under the same name. The oracle is compile-mode-blind, so AOT
  // bytes == oracle bytes == Lazy bytes path-by-path — the differential
  // identity — while the flip also exercises artifact retirement.
  for (int i = 0; i < 30; ++i) {
    const std::string name = "route" + std::to_string(i);
    const std::string expr = nav::print_route(random_expr(rng, 0));
    expect_route_matches_oracle(
        *engine, *server, RouteProgram{name, expr, RouteCompile::Aot});
    expect_route_matches_oracle(
        *engine, *server, RouteProgram{name, expr, RouteCompile::Lazy});
    if (HasFatalFailure()) {
      FAIL() << "program " << i << ": " << expr;
    }
    // Keep the registered set small so each oracle build stays cheap.
    (void)engine->internals().remove_route(name);
  }
}

TEST(RouteDifferential, SiteIdentityWithAotRoutesRegistered) {
  auto engine = paper_engine();
  (void)engine->internals().register_route(
      {"walk", "index-entry / next*", RouteCompile::Aot});
  (void)engine->internals().register_route(
      {"authors", "@ByAuthor | up", RouteCompile::Aot});
  // The incremental site (route linkbases included) equals a full
  // single-threaded build that authors the same route expansions.
  expect_sites_identical(engine->site(), full_build_oracle(*engine));
}

TEST(RouteDifferential, HoldsAcrossFamilyEditsAndBatchesAndRebuild) {
  auto engine = synthetic_engine(3);
  nav::EngineInternals& in = engine->internals();
  auto server = engine->open_concurrent();

  (void)in.register_route(
      {"structural", "index-entry / next*", RouteCompile::Aot});
  (void)in.register_route(
      {"authors", "@ByAuthor / next", RouteCompile::Lazy});
  const nav::Profile ps{"ps", {"structural"}};
  const nav::Profile pa{"pa", {"authors", "ByMovement"}};
  in.register_profile(ps);
  in.register_profile(pa);
  expect_profile_matches_oracle(*engine, *server, ps);
  expect_profile_matches_oracle(*engine, *server, pa);

  // A family edit changes @ByAuthor's expansion input: the AOT route
  // re-authors through the build graph, the lazy route re-expands in
  // the next snapshot — both must track the oracle.
  (void)in.edit_context_family("ByAuthor", [](hm::ContextFamily& family) {
    std::vector<hm::NavigationalContext> contexts = family.contexts();
    ASSERT_FALSE(contexts.empty());
    std::vector<std::string> ids = contexts.front().node_ids();
    std::reverse(ids.begin(), ids.end());
    contexts.front() = hm::NavigationalContext(contexts.front().family(),
                                               contexts.front().name(),
                                               std::move(ids));
    family.replace_contexts(std::move(contexts));
  });
  expect_profile_matches_oracle(*engine, *server, ps);
  expect_profile_matches_oracle(*engine, *server, pa);

  // Batched burst: route edits + a retitle coalesce into one epoch.
  in.begin_batch();
  (void)in.edit_route("structural", "index-entry / (next | prev)*");
  (void)in.register_route({"moves", "@ByMovement*", RouteCompile::Lazy});
  (void)in.retitle_node(engine->structure().members().front().node_id,
                        "Routed (v2)");
  const nav::RebuildReport batched = in.commit_batch();
  EXPECT_EQ(batched.epochs_published, 1u);
  in.register_profile({"pm", {"moves"}});
  expect_profile_matches_oracle(*engine, *server, ps);
  expect_profile_matches_oracle(*engine, *server, pa);
  expect_profile_matches_oracle(*engine, *server, {"pm", {"moves"}});

  // Blanket rebuild() must reproduce the same bytes from scratch.
  engine->internals().rebuild();
  expect_profile_matches_oracle(*engine, *server, ps);
  expect_profile_matches_oracle(*engine, *server, pa);
  expect_sites_identical(engine->site(), full_build_oracle(*engine));
}

TEST(RouteDifferential, FamilyEditRetiresOnlyRoutesWhoseExpansionChanged) {
  auto engine = synthetic_engine(3);
  nav::EngineInternals& in = engine->internals();
  auto server = engine->open_concurrent();

  // One route over structure roles only (edit-invariant expansion), one
  // over @ByAuthor (edit-sensitive).
  (void)in.register_route(
      {"structural", "index-entry / next*", RouteCompile::Lazy});
  (void)in.register_route({"authors", "@ByAuthor", RouteCompile::Lazy});
  in.register_profile({"ps", {"structural"}});
  in.register_profile({"pa", {"authors"}});

  const std::vector<std::string> pages = navsep::testing::html_pages(*engine);
  auto warm = [&] {
    for (const std::string& page : pages) {
      ASSERT_TRUE(server->get(page, "ps").ok()) << page;
      ASSERT_TRUE(server->get(page, "pa").ok()) << page;
    }
  };
  warm();
  const serve::ConcurrentServer::Stats warmed = server->stats();
  warm();
  // Second pass is all overlay hits: both routes' entries are cached.
  EXPECT_EQ(server->stats().overlay_hits,
            warmed.overlay_hits + 2 * pages.size());

  // A pure reorder of a tour leaves every route expansion SET intact
  // (expansions are sorted unique node sets): no route entry may retire.
  (void)in.edit_context_family("ByAuthor", [](hm::ContextFamily& family) {
    std::vector<hm::NavigationalContext> contexts = family.contexts();
    ASSERT_FALSE(contexts.empty());
    std::vector<std::string> ids = contexts.front().node_ids();
    ASSERT_GE(ids.size(), 2u);
    std::rotate(ids.begin(), ids.begin() + 1, ids.end());
    contexts.front() = hm::NavigationalContext(contexts.front().family(),
                                               contexts.front().name(),
                                               std::move(ids));
    family.replace_contexts(std::move(contexts));
  });
  const serve::ConcurrentServer::Stats reordered = server->stats();
  warm();
  EXPECT_EQ(server->stats().overlay_hits,
            reordered.overlay_hits + 2 * pages.size());

  // Dropping a member from the first tour shrinks @ByAuthor's target
  // set: 'authors' re-expands (its pages recompose) while 'structural'
  // — index-entry already reaches every painting — keeps a byte-
  // identical expansion and every cached entry: the route-token +
  // slice-hash validity at work.
  (void)in.edit_context_family("ByAuthor", [](hm::ContextFamily& family) {
    std::vector<hm::NavigationalContext> contexts = family.contexts();
    ASSERT_FALSE(contexts.empty());
    std::vector<std::string> ids = contexts.front().node_ids();
    ASSERT_GE(ids.size(), 3u);
    ids.pop_back();
    contexts.front() = hm::NavigationalContext(contexts.front().family(),
                                               contexts.front().name(),
                                               std::move(ids));
    family.replace_contexts(std::move(contexts));
  });
  const serve::ConcurrentServer::Stats before = server->stats();
  warm();
  const serve::ConcurrentServer::Stats after = server->stats();
  // Retirement is slice-precise, not whole-route: only the 'authors'
  // pages whose expanded arc slice actually moved recompose (the pages
  // around the dropped member); every 'structural' page and every
  // untouched 'authors' page is a hit.
  const std::size_t renders = after.overlay_renders - before.overlay_renders;
  EXPECT_GT(renders, 0u);
  EXPECT_LT(renders, pages.size());
  EXPECT_EQ(after.overlay_hits - before.overlay_hits,
            2 * pages.size() - renders);
  expect_profile_matches_oracle(*engine, *server, {"ps", {"structural"}});
  expect_profile_matches_oracle(*engine, *server, {"pa", {"authors"}});
}

TEST(RouteDifferential, LazyRouteLinkbaseArtifactIsServedAndTracksEdits) {
  auto engine = synthetic_engine(2);
  nav::EngineInternals& in = engine->internals();
  auto server = engine->open_concurrent();

  (void)in.register_route({"authors", "@ByAuthor", RouteCompile::Aot});
  in.register_profile({"pa", {"authors"}});
  in.register_profile({"empty", {}});
  const std::string path = site::context_linkbase_path("authors");
  const std::string* aot = engine->site().get(path);
  ASSERT_NE(aot, nullptr);
  const std::string aot_bytes = *aot;

  // Flip to Lazy: the authored artifact leaves the site, yet the same
  // path must keep serving the same bytes — synthesized in-snapshot.
  (void)in.register_route({"authors", "@ByAuthor", RouteCompile::Lazy});
  EXPECT_EQ(engine->site().get(path), nullptr);
  site::Response r = server->get(path, "pa");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r.body, aot_bytes);
  // Outside the profile the route's artifact is excluded, like any
  // family linkbase outside its profile.
  EXPECT_FALSE(server->get(path, "empty").ok());

  // An expression edit must retire the cached synthesized artifact.
  (void)in.edit_route("authors", "@ByAuthor / next");
  site::Response r2 = server->get(path, "pa");
  ASSERT_TRUE(r2.ok());
  EXPECT_NE(*r2.body, aot_bytes);
}

TEST(RouteDifferential, SurvivesPublisherReplicaPair) {
  auto engine = synthetic_engine(2);
  nav::EngineInternals& in = engine->internals();
  auto publisher = engine->open_publisher(repl::Endpoint::tcp("127.0.0.1", 0));
  repl::Replica replica = repl::Replica::connect(publisher->endpoint());
  replica.start();

  (void)in.register_route(
      {"structural", "index-entry / next*", RouteCompile::Aot});
  (void)in.register_route({"authors", "@ByAuthor", RouteCompile::Lazy});
  in.register_profile({"ps", {"structural"}});
  in.register_profile({"pa", {"authors"}});
  (void)in.edit_route("authors", "@ByAuthor / next");

  const std::uint64_t target = in.snapshots().epoch();
  ASSERT_TRUE(replica.wait_for_epoch(target, std::chrono::seconds(30)))
      << replica.error();
  auto origin = in.snapshots().current();
  auto mirrored = replica.store().current();
  ASSERT_NE(mirrored->route_table(), nullptr);
  ASSERT_NE(origin->route_table(), nullptr);
  EXPECT_TRUE(*mirrored->route_table() == *origin->route_table());

  // A server over the REPLICA's store resolves both compile modes to
  // the origin's oracle bytes — the route table crossed the wire whole.
  serve::ConcurrentServer server(replica.store(), 2);
  for (const nav::Profile profile :
       {nav::Profile{"ps", {"structural"}}, nav::Profile{"pa", {"authors"}}}) {
    const std::map<std::string, std::string> oracle =
        navsep::testing::profile_oracle(*engine, profile);
    for (const auto& [path, bytes] : oracle) {
      site::Response r = server.get(path, profile.name);
      ASSERT_TRUE(r.ok()) << profile.name << " " << path;
      EXPECT_EQ(*r.body, bytes) << profile.name << " " << path;
    }
  }
}

// --- route_family / expand_route semantics ------------------------------------

TEST(RouteExpand, FamilyAtomNeverMatchesStructureArcs) {
  auto engine = paper_engine();
  // '@ByAuthor' expands to exactly the nodes on ByAuthor tours — the
  // structure's own (context-free) next/prev arcs must not leak in.
  const hm::ContextFamily family =
      [&] {
        (void)engine->internals().register_route(
            {"authors", "@ByAuthor", RouteCompile::Aot});
        return engine->internals().route_family("authors");
      }();
  ASSERT_EQ(family.contexts().size(), 1u);
  for (const std::string& id : family.contexts().front().node_ids()) {
    EXPECT_EQ(id.rfind("index:", 0), std::string::npos)
        << "structure page leaked into @ByAuthor: " << id;
  }
  EXPECT_FALSE(family.contexts().front().node_ids().empty());
}

TEST(RouteExpand, NullableExpressionYieldsWholeUniverse) {
  std::vector<navsep::core::NavArc> arcs;
  navsep::core::NavArc a;
  a.from = "n1";
  a.to = "n2";
  a.role = "next";
  arcs.push_back(a);
  const std::vector<std::string> all =
      nav::expand_route(nav::parse_route("next*"), arcs);
  EXPECT_EQ(all, (std::vector<std::string>{"n1", "n2"}));
  const std::vector<std::string> strict =
      nav::expand_route(nav::parse_route("next / next"), arcs);
  EXPECT_TRUE(strict.empty());
}

TEST(RouteExpand, TokenCoversNameExpressionAndCompileMode) {
  const RouteProgram base{"r", "next / prev", RouteCompile::Aot};
  EXPECT_EQ(nav::route_token(base), nav::route_token(base));
  EXPECT_NE(nav::route_token(base),
            nav::route_token({"r2", "next / prev", RouteCompile::Aot}));
  EXPECT_NE(nav::route_token(base),
            nav::route_token({"r", "next / up", RouteCompile::Aot}));
  EXPECT_NE(nav::route_token(base),
            nav::route_token({"r", "next / prev", RouteCompile::Lazy}));
}

}  // namespace

// Landmark synthesis: scorer determinism, pipeline integration, and the
// byte-identity contract.
//
// Contracts pinned here:
//   1. score_landmarks is a deterministic pure function: popularity and
//      centrality blend with stable tie-breaks, per-profile slices rank
//      independently (with global fallback), top_k truncates.
//   2. THE tentpole: enable_landmarks authors `links-landmarks[-<p>].xml`
//      through the normal build graph, so the incremental site — landmark
//      linkbases included — is byte-identical to the from-scratch
//      full-build oracle, and every profile's overlay serving matches
//      its profile oracle.
//   3. Landmarks are first-class graph citizens: re-feeding identical
//      traffic cuts off (no re-author), structural edits propagate into
//      re-ranking, disable retires every artifact, and the name/path
//      namespace is policed against families and routes both ways.
//   4. Landmark artifacts ride snapshot replication unchanged.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/navigation_aspect.hpp"
#include "hypermedia/access.hpp"
#include "nav/landmarks.hpp"
#include "nav/pipeline.hpp"
#include "nav/profile.hpp"
#include "nav/route.hpp"
#include "obs/trace.hpp"
#include "oracle.hpp"
#include "repl/publisher.hpp"
#include "repl/replica.hpp"
#include "serve/concurrent_server.hpp"
#include "site/virtual_site.hpp"

namespace {

using navsep::ResolutionError;
using navsep::SemanticError;
using navsep::hypermedia::AccessStructureKind;
namespace core = navsep::core;
namespace nav = navsep::nav;
namespace obs = navsep::obs;
namespace repl = navsep::repl;
namespace serve = navsep::serve;
namespace site = navsep::site;
using nav::LandmarkOptions;
using nav::LandmarkScore;
using navsep::testing::expect_profile_matches_oracle;
using navsep::testing::expect_sites_identical;
using navsep::testing::full_build_oracle;

std::unique_ptr<nav::Engine> synthetic_engine(std::size_t paintings,
                                              std::uint64_t seed = 11) {
  return nav::SitePipeline()
      .conceptual(navsep::museum::SyntheticSpec{.painters = 3,
                                                .paintings_per_painter =
                                                    paintings,
                                                .movements = 2,
                                                .seed = seed})
      .access(AccessStructureKind::IndexedGuidedTour)
      .contexts({"ByAuthor", "ByMovement"})
      .weave()
      .serve();
}

/// Traffic with `views` hits on each (page, profile) tuple; "" profile
/// rows feed the global table only.
obs::TraceAggregate traffic_of(
    const std::vector<std::pair<std::string, std::string>>& hits) {
  obs::TraceAggregate traffic;
  for (const auto& [page, profile] : hits) {
    ++traffic.events;
    ++traffic.page_views[page];
    if (!profile.empty()) ++traffic.profile_page_views[{profile, page}];
  }
  return traffic;
}

/// The engine's current (post-attach) registration of profile `name`.
nav::Profile registered(const nav::EngineInternals& in,
                        const std::string& name) {
  for (const nav::Profile& p : in.profiles()) {
    if (p.name == name) return p;
  }
  ADD_FAILURE() << "profile not registered: " << name;
  return {};
}

// --- scorer semantics ---------------------------------------------------------

TEST(LandmarkScore, BlendsPopularityAndCentralityDeterministically) {
  // A tiny hand-built arc universe: hub has degree 4, spokes degree 1-2.
  std::vector<core::NavArc> arcs;
  auto arc = [&](const char* from, const char* to) {
    core::NavArc a;
    a.from = from;
    a.to = to;
    a.role = "nav:next";
    a.source = "links.xml";
    arcs.push_back(std::move(a));
  };
  arc("hub", "a");
  arc("hub", "b");
  arc("a", "hub");
  arc("c", "hub");
  arc("b", "c");

  // "c" is the traffic magnet; "hub" wins on centrality.
  obs::TraceAggregate traffic = traffic_of({{core::default_href_for("c"), ""},
                                            {core::default_href_for("c"), ""},
                                            {core::default_href_for("a"), ""}});

  LandmarkOptions popularity_only{.top_k = 2,
                                  .popularity_weight = 1.0,
                                  .centrality_weight = 0.0};
  std::vector<LandmarkScore> by_views =
      nav::score_landmarks(traffic, arcs, popularity_only);
  ASSERT_EQ(by_views.size(), 2u);
  EXPECT_EQ(by_views[0].node_id, "c");
  EXPECT_EQ(by_views[0].views, 2u);
  EXPECT_EQ(by_views[1].node_id, "a");

  LandmarkOptions centrality_only{.top_k = 2,
                                  .popularity_weight = 0.0,
                                  .centrality_weight = 1.0};
  std::vector<LandmarkScore> by_degree =
      nav::score_landmarks(traffic, arcs, centrality_only);
  ASSERT_EQ(by_degree.size(), 2u);
  EXPECT_EQ(by_degree[0].node_id, "hub");
  EXPECT_EQ(by_degree[0].degree, 4u);

  // Equal-score candidates order by node id: zero traffic, equal weights
  // on nodes of equal degree.
  obs::TraceAggregate no_traffic;
  std::vector<LandmarkScore> tied = nav::score_landmarks(
      no_traffic, arcs, LandmarkOptions{.top_k = 8});
  for (std::size_t i = 1; i < tied.size(); ++i) {
    if (tied[i - 1].score == tied[i].score) {
      EXPECT_LT(tied[i - 1].node_id, tied[i].node_id);
    }
  }
}

TEST(LandmarkScore, ProfileSlicesRankIndependentlyWithGlobalFallback) {
  std::vector<core::NavArc> arcs;
  core::NavArc a;
  a.from = "x";
  a.to = "y";
  a.role = "nav:next";
  a.source = "links.xml";
  arcs.push_back(a);

  obs::TraceAggregate traffic =
      traffic_of({{core::default_href_for("x"), "curators"},
                  {core::default_href_for("y"), ""},
                  {core::default_href_for("y"), ""}});

  LandmarkOptions opts{.top_k = 1, .popularity_weight = 1.0,
                       .centrality_weight = 0.0};
  // Global traffic crowns y; the curators' slice crowns x; a profile
  // with no recorded traffic falls back to the global ranking.
  EXPECT_EQ(nav::score_landmarks(traffic, arcs, opts).front().node_id, "y");
  EXPECT_EQ(
      nav::score_landmarks(traffic, arcs, opts, "curators").front().node_id,
      "x");
  EXPECT_EQ(
      nav::score_landmarks(traffic, arcs, opts, "visitors").front().node_id,
      "y");
}

TEST(LandmarkScore, TokenCoversNameOptionsAndTrafficTables) {
  obs::TraceAggregate traffic = traffic_of({{"a.html", ""}, {"b.html", "p"}});
  const LandmarkOptions opts{.top_k = 3};
  const std::uint64_t base = nav::landmark_token("landmarks", opts, traffic);
  EXPECT_EQ(base, nav::landmark_token("landmarks", opts, traffic));
  EXPECT_NE(base, nav::landmark_token("landmarks-p", opts, traffic));
  EXPECT_NE(base,
            nav::landmark_token("landmarks", LandmarkOptions{.top_k = 4},
                                traffic));
  obs::TraceAggregate more = traffic;
  ++more.page_views["a.html"];
  EXPECT_NE(base, nav::landmark_token("landmarks", opts, more));
}

// --- pipeline integration -----------------------------------------------------

/// Traffic naming real synthetic-site pages so ranking is meaningful.
obs::TraceAggregate engine_traffic(const nav::Engine& engine) {
  std::vector<std::string> pages = navsep::testing::html_pages(engine);
  std::sort(pages.begin(), pages.end());
  obs::TraceAggregate traffic;
  std::uint64_t weight = pages.size();
  for (const std::string& page : pages) {
    traffic.page_views[page] = weight;
    traffic.events += weight;
    // Alternate pages are hot for one of two audiences.
    const std::string profile = (weight % 2 == 0) ? "even" : "odd";
    traffic.profile_page_views[{profile, page}] = weight;
    --weight;
  }
  return traffic;
}

TEST(LandmarkPipeline, SiteIsByteIdenticalToFullBuildOracle) {
  auto engine = synthetic_engine(3);
  nav::EngineInternals& in = engine->internals();
  (void)in.enable_landmarks(engine_traffic(*engine),
                            LandmarkOptions{.top_k = 4});

  ASSERT_EQ(in.landmark_families(), std::vector<std::string>{"landmarks"});
  const std::string path = site::context_linkbase_path("landmarks");
  ASSERT_NE(engine->site().get(path), nullptr)
      << "landmark linkbase must be an authored artifact";
  expect_sites_identical(engine->site(), full_build_oracle(*engine));

  // And again from scratch: rebuild() must reproduce the same bytes.
  in.rebuild();
  expect_sites_identical(engine->site(), full_build_oracle(*engine));
}

TEST(LandmarkPipeline, ProfilesAutoAttachAndServeTheirOracleBytes) {
  auto engine = synthetic_engine(2);
  nav::EngineInternals& in = engine->internals();
  auto server = engine->open_concurrent();

  in.register_profile({"even", {"ByAuthor"}});
  (void)in.enable_landmarks(engine_traffic(*engine),
                            LandmarkOptions{.top_k = 3, .per_profile = true});
  // Registration after enabling synthesizes that profile's family too.
  in.register_profile({"odd", {"ByMovement"}});

  const std::vector<std::string> families = in.landmark_families();
  EXPECT_EQ(families, (std::vector<std::string>{
                          "landmarks", "landmarks-even", "landmarks-odd"}));

  const nav::Profile even = registered(in, "even");
  const nav::Profile odd = registered(in, "odd");
  EXPECT_NE(std::find(even.families.begin(), even.families.end(),
                      "landmarks"),
            even.families.end());
  EXPECT_NE(std::find(even.families.begin(), even.families.end(),
                      "landmarks-even"),
            even.families.end());
  EXPECT_EQ(std::find(odd.families.begin(), odd.families.end(),
                      "landmarks-even"),
            odd.families.end());

  expect_profile_matches_oracle(*engine, *server, even);
  expect_profile_matches_oracle(*engine, *server, odd);
  expect_sites_identical(engine->site(), full_build_oracle(*engine));
}

TEST(LandmarkPipeline, IdenticalTrafficCutsOffAndEditsPropagate) {
  auto engine = synthetic_engine(2);
  nav::EngineInternals& in = engine->internals();
  const obs::TraceAggregate traffic = engine_traffic(*engine);

  (void)in.enable_landmarks(traffic, LandmarkOptions{.top_k = 3});
  const std::string path = site::context_linkbase_path("landmarks");
  const std::string before = *engine->site().get(path);

  // Same traffic, same options: the landmark token is unchanged, so the
  // program node cuts off and nothing re-authors.
  const nav::RebuildReport again =
      in.enable_landmarks(traffic, LandmarkOptions{.top_k = 3});
  EXPECT_EQ(again.linkbases_reauthored, 0u);
  EXPECT_EQ(again.pages_rewoven, 0u);

  // A structural edit changes the scorer's arc input: the landmark
  // linkbase re-ranks through its dependency edges, and the site still
  // matches the oracle (which re-ranks the same way).
  (void)in.retitle_node(engine->structure().members().front().node_id,
                        "Spotlight exhibit");
  expect_sites_identical(engine->site(), full_build_oracle(*engine));

  // Hotter traffic on the last-ranked page re-orders the tour.
  obs::TraceAggregate skewed = traffic;
  std::vector<std::string> pages = navsep::testing::html_pages(*engine);
  std::sort(pages.begin(), pages.end());
  skewed.page_views[pages.back()] += 1000;
  const nav::RebuildReport reranked =
      in.enable_landmarks(skewed, LandmarkOptions{.top_k = 3});
  EXPECT_GE(reranked.linkbases_reauthored, 1u);
  EXPECT_NE(*engine->site().get(path), before);
  expect_sites_identical(engine->site(), full_build_oracle(*engine));
}

TEST(LandmarkPipeline, DisableRetiresArtifactsAndDetachesProfiles) {
  auto engine = synthetic_engine(2);
  nav::EngineInternals& in = engine->internals();
  in.register_profile({"even", {"ByAuthor"}});
  (void)in.enable_landmarks(engine_traffic(*engine),
                            LandmarkOptions{.top_k = 2, .per_profile = true});
  const std::string base_path = site::context_linkbase_path("landmarks");
  const std::string even_path = site::context_linkbase_path("landmarks-even");
  ASSERT_NE(engine->site().get(base_path), nullptr);
  ASSERT_NE(engine->site().get(even_path), nullptr);

  (void)in.disable_landmarks();
  EXPECT_TRUE(in.landmark_families().empty());
  EXPECT_EQ(engine->site().get(base_path), nullptr);
  EXPECT_EQ(engine->site().get(even_path), nullptr);
  EXPECT_EQ(registered(in, "even").families,
            (std::vector<std::string>{"ByAuthor"}));
  expect_sites_identical(engine->site(), full_build_oracle(*engine));

  // Idempotent: a second disable is a no-op, not an error.
  const nav::RebuildReport noop = in.disable_landmarks();
  EXPECT_EQ(noop.nodes_rebuilt, 0u);
}

TEST(LandmarkPipeline, NamespaceIsPolicedBothWays) {
  auto engine = synthetic_engine(2);
  nav::EngineInternals& in = engine->internals();

  // Landmarks enabled first: a route may not take a landmark name.
  (void)in.enable_landmarks(engine_traffic(*engine), LandmarkOptions{});
  EXPECT_THROW((void)in.register_route(
                   {"landmarks", "next*", nav::RouteCompile::Aot}),
               SemanticError);
  (void)in.disable_landmarks();

  // Route registered first: enabling landmarks must refuse the clash.
  (void)in.register_route({"landmarks", "next*", nav::RouteCompile::Aot});
  EXPECT_THROW(
      (void)in.enable_landmarks(engine_traffic(*engine), LandmarkOptions{}),
      SemanticError);
  (void)in.remove_route("landmarks");

  // Unknown-name accessors are diagnosable.
  EXPECT_THROW((void)in.landmark_family("landmarks"), ResolutionError);
  EXPECT_THROW((void)in.landmark_picks("landmarks"), ResolutionError);
}

TEST(LandmarkPipeline, TangledModeRefusesLandmarks) {
  auto engine = nav::SitePipeline()
                    .conceptual(navsep::museum::SyntheticSpec{
                        .painters = 2, .paintings_per_painter = 2,
                        .movements = 2, .seed = 5})
                    .access(AccessStructureKind::Index)
                    .tangled()
                    .serve();
  EXPECT_THROW((void)engine->internals().enable_landmarks(
                   obs::TraceAggregate{}, LandmarkOptions{}),
               SemanticError);
}

TEST(LandmarkPipeline, BatchedEnableCoalescesIntoOneEpoch) {
  auto engine = synthetic_engine(2);
  nav::EngineInternals& in = engine->internals();
  const std::uint64_t before = in.snapshots().epoch();

  in.begin_batch();
  (void)in.enable_landmarks(engine_traffic(*engine),
                            LandmarkOptions{.top_k = 3});
  (void)in.retitle_node(engine->structure().members().front().node_id,
                        "Batched spotlight");
  const nav::RebuildReport report = in.commit_batch();
  EXPECT_EQ(report.epochs_published, 1u);
  EXPECT_EQ(report.edits_coalesced, 2u);
  EXPECT_EQ(in.snapshots().epoch(), before + 1);
  expect_sites_identical(engine->site(), full_build_oracle(*engine));
}

TEST(LandmarkPipeline, LandmarkArtifactsRideReplication) {
  auto engine = synthetic_engine(2);
  nav::EngineInternals& in = engine->internals();
  auto publisher = engine->open_publisher(repl::Endpoint::tcp("127.0.0.1", 0));
  repl::Replica replica = repl::Replica::connect(publisher->endpoint());
  replica.start();

  in.register_profile({"even", {"ByAuthor"}});
  (void)in.enable_landmarks(engine_traffic(*engine),
                            LandmarkOptions{.top_k = 3, .per_profile = true});

  const std::uint64_t target = in.snapshots().epoch();
  ASSERT_TRUE(replica.wait_for_epoch(target, std::chrono::seconds(30)))
      << replica.error();

  // A server over the replica's store serves the origin's oracle bytes,
  // landmark overlays included — nothing landmark-specific crossed the
  // wire beyond ordinary linkbase artifacts.
  serve::ConcurrentServer server(replica.store(), 2);
  const nav::Profile even = registered(in, "even");
  const std::map<std::string, std::string> oracle =
      navsep::testing::profile_oracle(*engine, even);
  for (const auto& [path, bytes] : oracle) {
    site::Response r = server.get(path, even.name);
    ASSERT_TRUE(r.ok()) << path;
    EXPECT_EQ(*r.body, bytes) << path;
  }
}

}  // namespace

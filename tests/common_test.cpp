// Unit tests for the common module: string utilities, wildcard matching,
// TextCursor scanning, deterministic RNG.
#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "common/strings.hpp"
#include "common/text_cursor.hpp"

namespace ns = navsep::strings;

TEST(Strings, TrimRemovesXmlWhitespaceOnBothSides) {
  EXPECT_EQ(ns::trim("  hello \t\r\n"), "hello");
  EXPECT_EQ(ns::trim(""), "");
  EXPECT_EQ(ns::trim(" \n\t "), "");
  EXPECT_EQ(ns::trim("x"), "x");
}

TEST(Strings, SplitPreservesEmptyFields) {
  auto parts = ns::split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(ns::split("", ',').size(), 1u);
}

TEST(Strings, SplitWsDropsEmptyFields) {
  auto parts = ns::split_ws("  one\ttwo \n three  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "one");
  EXPECT_EQ(parts[2], "three");
  EXPECT_TRUE(ns::split_ws("   ").empty());
}

TEST(Strings, JoinConcatenatesWithSeparator) {
  std::vector<std::string> v{"a", "b", "c"};
  EXPECT_EQ(ns::join(v, ", "), "a, b, c");
  EXPECT_EQ(ns::join(std::vector<std::string>{}, ","), "");
}

TEST(Strings, ReplaceAllHandlesOverlapsAndMisses) {
  EXPECT_EQ(ns::replace_all("aaa", "aa", "b"), "ba");
  EXPECT_EQ(ns::replace_all("hello", "xyz", "!"), "hello");
  EXPECT_EQ(ns::replace_all("abcabc", "abc", ""), "");
}

TEST(Strings, NormalizeSpaceCollapsesRuns) {
  EXPECT_EQ(ns::normalize_space("  a \t b\n\nc "), "a b c");
  EXPECT_EQ(ns::normalize_space(""), "");
  EXPECT_EQ(ns::normalize_space("   "), "");
}

TEST(Strings, WildcardBasics) {
  EXPECT_TRUE(ns::wildcard_match("*", ""));
  EXPECT_TRUE(ns::wildcard_match("*", "anything"));
  EXPECT_TRUE(ns::wildcard_match("pain*", "painting"));
  EXPECT_TRUE(ns::wildcard_match("*ing", "painting"));
  EXPECT_TRUE(ns::wildcard_match("p*g", "painting"));
  EXPECT_TRUE(ns::wildcard_match("p?inting", "painting"));
  EXPECT_FALSE(ns::wildcard_match("p?inting", "paintings"));
  EXPECT_FALSE(ns::wildcard_match("p?nting", "painting"));
  EXPECT_FALSE(ns::wildcard_match("pain", "painting"));
  EXPECT_FALSE(ns::wildcard_match("", "x"));
  EXPECT_TRUE(ns::wildcard_match("", ""));
}

TEST(Strings, WildcardBacktracksAcrossMultipleStars) {
  EXPECT_TRUE(ns::wildcard_match("*a*b*", "xaybz"));
  EXPECT_TRUE(ns::wildcard_match("*a*b*", "ab"));
  EXPECT_FALSE(ns::wildcard_match("*a*b*", "ba"));
  EXPECT_TRUE(ns::wildcard_match("a**b", "ab"));
}

TEST(TextCursor, TracksLineAndColumn) {
  navsep::TextCursor cur("ab\ncd");
  EXPECT_EQ(cur.position().line, 1u);
  cur.advance(3);  // consume 'a','b','\n'
  EXPECT_EQ(cur.position().line, 2u);
  EXPECT_EQ(cur.position().column, 1u);
  EXPECT_EQ(cur.peek(), 'c');
}

TEST(TextCursor, ConsumeAndExpect) {
  navsep::TextCursor cur("<?xml?>");
  EXPECT_TRUE(cur.consume("<?"));
  EXPECT_FALSE(cur.consume("abc"));
  EXPECT_NO_THROW(cur.expect("xml", "xml"));
  EXPECT_THROW(cur.expect("zzz", "zzz"), navsep::ParseError);
}

TEST(TextCursor, TakeUntilThrowsWhenDelimiterMissing) {
  navsep::TextCursor cur("no delimiter here");
  EXPECT_THROW((void)cur.take_until("-->"), navsep::ParseError);
}

TEST(TextCursor, TakeWhileStopsAtPredicateBoundary) {
  navsep::TextCursor cur("abc123");
  auto alpha = cur.take_while(navsep::strings::is_alpha);
  EXPECT_EQ(alpha, "abc");
  EXPECT_EQ(cur.peek(), '1');
}

TEST(Rng, DeterministicForSameSeed) {
  navsep::Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  navsep::Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange) {
  navsep::Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(10), 10u);
  }
}

TEST(Rng, BetweenIsInclusive) {
  navsep::Rng rng(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.between(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_TRUE(seen.count(-2));
  EXPECT_TRUE(seen.count(2));
}

TEST(Rng, ShuffleKeepsAllElements) {
  navsep::Rng rng(9);
  std::vector<int> v{1, 2, 3, 4, 5, 6};
  rng.shuffle(v);
  std::set<int> s(v.begin(), v.end());
  EXPECT_EQ(s.size(), 6u);
}

TEST(Rng, WordHasRequestedLength) {
  navsep::Rng rng(3);
  EXPECT_EQ(rng.word(6).size(), 6u);
  EXPECT_EQ(rng.word(0).size(), 0u);
}

#include "oracle.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "hypermedia/access.hpp"
#include "hypermedia/context.hpp"

namespace navsep::testing {

site::VirtualSite full_build_oracle(const nav::Engine& engine) {
  site::SiteBuildOptions options;
  options.site_base = engine.server().base();
  for (const auto& family : engine.context_families()) {
    options.context_families.push_back(&family);
  }
  // AOT routes author a linkbase artifact exactly like a family; the
  // from-scratch build must author it too, from the same expansion.
  // Lazy routes leave no artifact — they expand inside snapshots only.
  std::vector<hypermedia::ContextFamily> route_families;
  route_families.reserve(engine.routes().size() +
                         engine.landmark_families().size());
  for (const nav::RouteProgram& program : engine.routes()) {
    if (program.compile != nav::RouteCompile::Aot) continue;
    route_families.push_back(engine.route_family(program.name));
  }
  // Landmark families are authored artifacts too (always AOT): the
  // from-scratch build must author them from the same ranked expansion.
  for (const std::string& name : engine.landmark_families()) {
    route_families.push_back(engine.landmark_family(name));
  }
  for (const auto& family : route_families) {
    options.context_families.push_back(&family);
  }
  auto snapshot = hypermedia::MaterializedStructure::snapshot(engine.structure());
  return site::build_separated_site(engine.world(), *snapshot, options);
}

std::map<std::string, std::string> profile_oracle(const nav::Engine& engine,
                                                  const nav::Profile& profile) {
  site::SiteBuildOptions options;
  options.site_base = engine.server().base();
  options.weave_context_tours = true;
  // A profile may name route programs alongside families; both compile
  // modes expand to the same context family here — the oracle is the
  // common truth the AOT artifact and the lazy overlay must both match.
  std::vector<hypermedia::ContextFamily> route_families;
  route_families.reserve(profile.families.size());
  const std::vector<std::string> landmark_names = engine.landmark_families();
  for (const std::string& name : profile.families) {
    bool found = false;
    for (const hypermedia::ContextFamily& family : engine.context_families()) {
      if (family.name() == name) {
        options.context_families.push_back(&family);
        found = true;
      }
    }
    if (!found) {
      const bool is_landmark =
          std::find(landmark_names.begin(), landmark_names.end(), name) !=
          landmark_names.end();
      route_families.push_back(is_landmark ? engine.landmark_family(name)
                                           : engine.route_family(name));
      options.context_families.push_back(&route_families.back());
    }
  }
  site::VirtualSite built =
      site::build_separated_site(engine.world(), engine.structure(), options);
  std::map<std::string, std::string> out;
  for (auto& [path, content] : built.artifacts()) out.emplace(path, content);
  return out;
}

void expect_sites_identical(const site::VirtualSite& actual,
                            const site::VirtualSite& expected) {
  ASSERT_EQ(actual.paths(), expected.paths());
  for (const auto& [path, content] : expected.artifacts()) {
    const std::string* got = actual.get(path);
    ASSERT_NE(got, nullptr) << path;
    EXPECT_EQ(*got, content) << "artifact diverged: " << path;
  }
}

void expect_profile_matches_oracle(const nav::Engine& engine,
                                   const serve::ConcurrentServer& server,
                                   const nav::Profile& profile) {
  const std::map<std::string, std::string> oracle =
      profile_oracle(engine, profile);
  for (const auto& [path, bytes] : oracle) {
    site::Response r = server.get(path, profile.name);
    ASSERT_TRUE(r.ok()) << profile.name << " " << path;
    EXPECT_EQ(*r.body, bytes) << profile.name << " " << path;
  }
  for (const std::string& path : engine.site().paths()) {
    if (oracle.find(path) != oracle.end()) continue;
    EXPECT_FALSE(server.get(path, profile.name).ok())
        << profile.name << " must not see " << path;
  }
}

std::vector<std::string> html_pages(const nav::Engine& engine) {
  std::vector<std::string> pages;
  for (const std::string& path : engine.site().paths()) {
    if (path.size() > 5 && path.rfind(".html") == path.size() - 5) {
      pages.push_back(path);
    }
  }
  return pages;
}

}  // namespace navsep::testing

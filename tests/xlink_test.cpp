// Unit tests for the XLink processor: recognition, arc expansion,
// validation, the document registry and the traversal graph.
#include <gtest/gtest.h>

#include "xlink/processor.hpp"
#include "xlink/traversal.hpp"
#include "xml/parser.hpp"

namespace xml = navsep::xml;
namespace xl = navsep::xlink;

namespace {

std::unique_ptr<xml::Document> parse_at(std::string_view text,
                                        std::string base) {
  xml::ParseOptions o;
  o.base_uri = std::move(base);
  return xml::parse(text, o);
}

// The paper's links.xml (Figure 9), modernized to real XLink 1.0 syntax:
// one extended link holding locators for the three paintings plus index
// page, and arcs wiring up an Index access structure.
const char* kLinksXml = R"(<links xmlns:xlink="http://www.w3.org/1999/xlink">
  <context xlink:type="extended" xlink:role="paintings-by-picasso"
           xlink:title="Paintings by Picasso">
    <loc xlink:type="locator" xlink:href="picasso.xml#guitar"
         xlink:label="guitar" xlink:title="The Guitar"/>
    <loc xlink:type="locator" xlink:href="picasso.xml#guernica"
         xlink:label="guernica" xlink:title="Guernica"/>
    <loc xlink:type="locator" xlink:href="avignon.xml#avignon"
         xlink:label="avignon" xlink:title="Les Demoiselles d'Avignon"/>
    <loc xlink:type="locator" xlink:href="index.xml"
         xlink:label="index" xlink:title="Index of paintings"/>
    <go xlink:type="arc" xlink:from="index" xlink:to="guitar"
        xlink:arcrole="nav:index-entry" xlink:show="replace"
        xlink:actuate="onRequest"/>
    <go xlink:type="arc" xlink:from="index" xlink:to="guernica"
        xlink:arcrole="nav:index-entry"/>
    <go xlink:type="arc" xlink:from="index" xlink:to="avignon"
        xlink:arcrole="nav:index-entry"/>
    <go xlink:type="arc" xlink:from="guitar" xlink:to="index"
        xlink:arcrole="nav:up"/>
    <go xlink:type="arc" xlink:from="guernica" xlink:to="index"
        xlink:arcrole="nav:up"/>
    <go xlink:type="arc" xlink:from="avignon" xlink:to="index"
        xlink:arcrole="nav:up"/>
  </context>
</links>)";

const char* kBase = "http://museum.example/data/links.xml";

}  // namespace

// --- recognition --------------------------------------------------------------

TEST(XLinkExtract, SimpleLink) {
  auto doc = parse_at(
      R"(<p xmlns:xlink="http://www.w3.org/1999/xlink">
           <a xlink:type="simple" xlink:href="other.xml" xlink:title="Other"
              xlink:show="replace" xlink:actuate="onRequest"/>
         </p>)",
      "http://h/page.xml");
  xl::LinkCollection links = xl::extract(*doc);
  ASSERT_EQ(links.simple.size(), 1u);
  EXPECT_EQ(links.simple[0].href, "other.xml");
  EXPECT_EQ(links.simple[0].title, "Other");
  EXPECT_EQ(links.simple[0].show, xl::Show::Replace);
  EXPECT_EQ(links.simple[0].actuate, xl::Actuate::OnRequest);
  EXPECT_TRUE(links.extended.empty());
}

TEST(XLinkExtract, ExtendedLinkConstituents) {
  auto doc = parse_at(kLinksXml, kBase);
  xl::LinkCollection links = xl::extract(*doc);
  ASSERT_EQ(links.extended.size(), 1u);
  const xl::ExtendedLink& x = links.extended[0];
  EXPECT_EQ(x.role, "paintings-by-picasso");
  EXPECT_EQ(x.locators.size(), 4u);
  EXPECT_EQ(x.arcs.size(), 6u);
  EXPECT_TRUE(x.resources.empty());
  EXPECT_EQ(x.locators[0].label, "guitar");
  EXPECT_EQ(x.arcs[0].arcrole, "nav:index-entry");
}

TEST(XLinkExtract, ResourceTypeElements) {
  auto doc = parse_at(
      R"(<x xmlns:xlink="http://www.w3.org/1999/xlink" xlink:type="extended">
           <here xlink:type="resource" xlink:label="home" xlink:title="Home"/>
           <there xlink:type="locator" xlink:href="a.xml" xlink:label="a"/>
           <arc xlink:type="arc" xlink:from="home" xlink:to="a"/>
         </x>)",
      "http://h/x.xml");
  xl::LinkCollection links = xl::extract(*doc);
  ASSERT_EQ(links.extended.size(), 1u);
  EXPECT_EQ(links.extended[0].resources.size(), 1u);
  EXPECT_EQ(links.extended[0].resources[0].label, "home");
  auto eps = links.extended[0].endpoints_with_label("home");
  EXPECT_EQ(eps.size(), 1u);
}

TEST(XLinkExtract, TitleElementFillsMissingTitle) {
  auto doc = parse_at(
      R"(<x xmlns:xlink="http://www.w3.org/1999/xlink" xlink:type="extended">
           <t xlink:type="title">A readable title</t>
         </x>)",
      "http://h/x.xml");
  xl::LinkCollection links = xl::extract(*doc);
  ASSERT_EQ(links.extended.size(), 1u);
  EXPECT_EQ(links.extended[0].title, "A readable title");
}

TEST(XLinkExtract, OrphanConstituentsReportIssues) {
  auto doc = parse_at(
      R"(<p xmlns:xlink="http://www.w3.org/1999/xlink">
           <l xlink:type="locator" xlink:href="x.xml"/>
         </p>)",
      "http://h/p.xml");
  std::vector<xl::Issue> issues;
  (void)xl::extract(*doc, &issues);
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].severity, xl::Issue::Severity::Warning);
}

TEST(XLinkExtract, NonXlinkDocumentYieldsNothing) {
  auto doc = parse_at("<data><item href='x'/></data>", "http://h/d.xml");
  xl::LinkCollection links = xl::extract(*doc);
  EXPECT_EQ(links.total_links(), 0u);
}

// --- validation ----------------------------------------------------------------

TEST(XLinkValidate, DanglingArcLabelIsError) {
  auto doc = parse_at(
      R"(<x xmlns:xlink="http://www.w3.org/1999/xlink" xlink:type="extended">
           <l xlink:type="locator" xlink:href="a.xml" xlink:label="a"/>
           <arc xlink:type="arc" xlink:from="a" xlink:to="ghost"/>
         </x>)",
      "http://h/x.xml");
  auto issues = xl::validate(xl::extract(*doc));
  ASSERT_FALSE(issues.empty());
  bool found = false;
  for (const auto& i : issues) {
    if (i.severity == xl::Issue::Severity::Error &&
        i.message.find("ghost") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(XLinkValidate, LocatorWithoutHrefIsError) {
  auto doc = parse_at(
      R"(<x xmlns:xlink="http://www.w3.org/1999/xlink" xlink:type="extended">
           <l xlink:type="locator" xlink:label="a"/>
         </x>)",
      "http://h/x.xml");
  auto issues = xl::validate(xl::extract(*doc));
  bool has_error = false;
  for (const auto& i : issues) {
    if (i.severity == xl::Issue::Severity::Error) has_error = true;
  }
  EXPECT_TRUE(has_error);
}

TEST(XLinkValidate, CleanLinkbaseHasNoErrors) {
  auto doc = parse_at(kLinksXml, kBase);
  for (const auto& i : xl::validate(xl::extract(*doc))) {
    EXPECT_NE(i.severity, xl::Issue::Severity::Error) << i.message;
  }
}

// --- arc expansion ---------------------------------------------------------------

TEST(XLinkExpand, ExplicitFromToPairs) {
  auto doc = parse_at(kLinksXml, kBase);
  auto arcs = xl::expand_arcs(xl::extract(*doc), kBase);
  ASSERT_EQ(arcs.size(), 6u);
  EXPECT_EQ(arcs[0].from.uri, "http://museum.example/data/index.xml");
  EXPECT_EQ(arcs[0].to.uri, "http://museum.example/data/picasso.xml#guitar");
  EXPECT_EQ(arcs[0].show, xl::Show::Replace);
  EXPECT_EQ(arcs[0].actuate, xl::Actuate::OnRequest);
}

TEST(XLinkExpand, MissingFromMeansEveryEndpoint) {
  auto doc = parse_at(
      R"(<x xmlns:xlink="http://www.w3.org/1999/xlink" xlink:type="extended">
           <l xlink:type="locator" xlink:href="a.xml" xlink:label="a"/>
           <l xlink:type="locator" xlink:href="b.xml" xlink:label="b"/>
           <l xlink:type="locator" xlink:href="c.xml" xlink:label="c"/>
           <arc xlink:type="arc" xlink:to="c"/>
         </x>)",
      "http://h/x.xml");
  auto arcs = xl::expand_arcs(xl::extract(*doc), "http://h/x.xml");
  // from ∈ {a, b, c}, to = c, minus the self-pair c→c.
  ASSERT_EQ(arcs.size(), 2u);
  EXPECT_EQ(arcs[0].from.uri, "http://h/a.xml");
  EXPECT_EQ(arcs[1].from.uri, "http://h/b.xml");
}

TEST(XLinkExpand, MissingBothMeansFullCrossProduct) {
  auto doc = parse_at(
      R"(<x xmlns:xlink="http://www.w3.org/1999/xlink" xlink:type="extended">
           <l xlink:type="locator" xlink:href="a.xml" xlink:label="a"/>
           <l xlink:type="locator" xlink:href="b.xml" xlink:label="b"/>
           <arc xlink:type="arc"/>
         </x>)",
      "http://h/x.xml");
  auto arcs = xl::expand_arcs(xl::extract(*doc), "http://h/x.xml");
  EXPECT_EQ(arcs.size(), 2u);  // a→b and b→a
}

TEST(XLinkExpand, SharedLabelFansOut) {
  auto doc = parse_at(
      R"(<x xmlns:xlink="http://www.w3.org/1999/xlink" xlink:type="extended">
           <l xlink:type="locator" xlink:href="p1.xml" xlink:label="painting"/>
           <l xlink:type="locator" xlink:href="p2.xml" xlink:label="painting"/>
           <l xlink:type="locator" xlink:href="idx.xml" xlink:label="index"/>
           <arc xlink:type="arc" xlink:from="index" xlink:to="painting"/>
         </x>)",
      "http://h/x.xml");
  auto arcs = xl::expand_arcs(xl::extract(*doc), "http://h/x.xml");
  EXPECT_EQ(arcs.size(), 2u);
}

TEST(XLinkExpand, SimpleLinkBecomesOneArc) {
  auto doc = parse_at(
      R"(<p xmlns:xlink="http://www.w3.org/1999/xlink">
           <a xlink:type="simple" xlink:href="next.xml"/>
         </p>)",
      "http://h/here.xml");
  auto arcs = xl::expand_arcs(xl::extract(*doc), "http://h/here.xml");
  ASSERT_EQ(arcs.size(), 1u);
  EXPECT_EQ(arcs[0].from.uri, "http://h/here.xml");
  EXPECT_EQ(arcs[0].to.uri, "http://h/next.xml");
}

TEST(XLinkExpand, HrefsResolveAgainstBase) {
  auto doc = parse_at(
      R"(<x xmlns:xlink="http://www.w3.org/1999/xlink" xlink:type="extended">
           <l xlink:type="locator" xlink:href="../other/a.xml" xlink:label="a"/>
           <l xlink:type="locator" xlink:href="#frag" xlink:label="b"/>
           <arc xlink:type="arc" xlink:from="a" xlink:to="b"/>
         </x>)",
      "http://h/data/x.xml");
  auto arcs = xl::expand_arcs(xl::extract(*doc), "http://h/data/x.xml");
  ASSERT_EQ(arcs.size(), 1u);
  EXPECT_EQ(arcs[0].from.uri, "http://h/other/a.xml");
  EXPECT_EQ(arcs[0].to.uri, "http://h/data/x.xml#frag");
}

// --- registry ---------------------------------------------------------------------

TEST(DocumentRegistry, FindIgnoresFragmentAndCase) {
  auto doc = parse_at("<r><a id='x'/></r>", "http://H/Doc.xml");
  xl::DocumentRegistry reg;
  reg.add(*doc);
  EXPECT_NE(reg.find("http://h/Doc.xml"), nullptr);
  EXPECT_NE(reg.find("http://h/Doc.xml#x"), nullptr);
  EXPECT_EQ(reg.find("http://h/Other.xml"), nullptr);
}

TEST(DocumentRegistry, ResolveFragmentViaXPointer) {
  auto doc = parse_at("<r><a id='x'><b id='y'/></a></r>", "http://h/d.xml");
  xl::DocumentRegistry reg;
  reg.add(*doc);
  const xml::Element* y = reg.resolve("http://h/d.xml#y");
  ASSERT_NE(y, nullptr);
  EXPECT_EQ(y->name().local, "b");
  const xml::Element* root = reg.resolve("http://h/d.xml");
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->name().local, "r");
  EXPECT_EQ(reg.resolve("http://h/d.xml#none"), nullptr);
  EXPECT_EQ(reg.resolve("http://h/unknown.xml"), nullptr);
}

TEST(DocumentRegistry, ResolveSchemePointers) {
  auto doc = parse_at("<r><a/><b><c id='tgt'/></b></r>", "http://h/d.xml");
  xl::DocumentRegistry reg;
  reg.add(*doc);
  const xml::Element* c = reg.resolve("http://h/d.xml#element(/1/2/1)");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->attribute("id").value(), "tgt");
  const xml::Element* via_xp =
      reg.resolve("http://h/d.xml#xpointer(//c)");
  EXPECT_EQ(via_xp, c);
}

// --- traversal graph -------------------------------------------------------------------

class TraversalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    doc_ = parse_at(kLinksXml, kBase);
    graph_ = xl::TraversalGraph::from_linkbase(*doc_);
  }
  std::unique_ptr<xml::Document> doc_;
  xl::TraversalGraph graph_;
};

TEST_F(TraversalTest, OutgoingFromIndex) {
  auto out = graph_.outgoing("http://museum.example/data/index.xml");
  EXPECT_EQ(out.size(), 3u);
}

TEST_F(TraversalTest, OutgoingFromPainting) {
  auto out = graph_.outgoing("http://museum.example/data/picasso.xml#guitar");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0]->arcrole, "nav:up");
}

TEST_F(TraversalTest, IncomingToIndex) {
  EXPECT_EQ(graph_.incoming("http://museum.example/data/index.xml").size(),
            3u);
}

TEST_F(TraversalTest, LookupNormalizesUris) {
  auto out = graph_.outgoing("HTTP://museum.example/data/../data/index.xml");
  EXPECT_EQ(out.size(), 3u);
}

TEST_F(TraversalTest, OutgoingWithRoleFilters) {
  auto out = graph_.outgoing_with_role(
      "http://museum.example/data/index.xml", "nav:index-entry");
  EXPECT_EQ(out.size(), 3u);
  EXPECT_TRUE(graph_
                  .outgoing_with_role("http://museum.example/data/index.xml",
                                      "nav:up")
                  .empty());
}

TEST_F(TraversalTest, ResourceUrisAreDistinctAndSorted) {
  auto uris = graph_.resource_uris();
  EXPECT_EQ(uris.size(), 4u);  // index + three paintings
  EXPECT_TRUE(std::is_sorted(uris.begin(), uris.end()));
}

TEST_F(TraversalTest, UnknownUriHasNoArcs) {
  EXPECT_TRUE(graph_.outgoing("http://elsewhere/x.xml").empty());
}

TEST_F(TraversalTest, MergeCombinesLinkbases) {
  auto extra = parse_at(
      R"(<links xmlns:xlink="http://www.w3.org/1999/xlink">
           <x xlink:type="extended">
             <l xlink:type="locator" xlink:href="index.xml" xlink:label="i"/>
             <l xlink:type="locator" xlink:href="museum.xml" xlink:label="m"/>
             <arc xlink:type="arc" xlink:from="i" xlink:to="m"
                  xlink:arcrole="nav:home"/>
           </x>
         </links>)",
      kBase);
  xl::TraversalGraph more = xl::TraversalGraph::from_linkbase(*extra);
  graph_.merge(std::move(more));
  auto out = graph_.outgoing("http://museum.example/data/index.xml");
  EXPECT_EQ(out.size(), 4u);
}

// The randomized differential stress harness: one engine, a mixed
// 100+ step mutation sequence (structure mutations, context-family
// edits, profile (re)registration, blanket rebuilds, cache-cap churn),
// and after EVERY step a differential check of every served body — base
// and per-profile, through ConcurrentServers with unbounded, tightly
// capped and zero-cap (pass-through) cache layers — against the full
// single-threaded build oracle (tests/oracle.{hpp,cpp}).
//
// This is the property the whole serving stack hangs off: no sequence
// of writer operations, and no cache-layer configuration, may ever make
// a served byte diverge from what a from-scratch build of the current
// authored state would produce.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/navigation_aspect.hpp"
#include "hypermedia/access.hpp"
#include "hypermedia/context.hpp"
#include "nav/pipeline.hpp"
#include "oracle.hpp"
#include "repl/publisher.hpp"
#include "repl/replica.hpp"
#include "serve/cache_warmer.hpp"
#include "serve/concurrent_server.hpp"
#include "site/virtual_site.hpp"

namespace {

using navsep::Rng;
using navsep::hypermedia::AccessStructureKind;
namespace hm = navsep::hypermedia;
namespace nav = navsep::nav;
namespace serve = navsep::serve;
namespace site = navsep::site;
using navsep::testing::expect_sites_identical;
using navsep::testing::full_build_oracle;
using navsep::testing::profile_oracle;

/// The route-program churn pool: two route names cycling through
/// register / edit / compile-mode flip / removal, over a fixed set of
/// well-formed expressions (randomized program *generation* is
/// route_test's job; the stress harness churns lifecycle + serving).
const std::vector<std::string> kRouteNames{"routeA", "routeB"};
const std::vector<std::string> kRouteExprs{
    "index-entry / next*",
    "@ByAuthor",
    "@ByMovement / next",
    "(next | prev)*",
    "up / index-entry",
    "@ByAuthor | @ByMovement",
};

/// One randomized route-program mutation. Returns the number of engine
/// mutations performed (removal first re-registers any profile that
/// references the dying route, so batched bursts can count every edit).
std::size_t random_route_op(nav::EngineInternals& in, Rng& rng,
                            std::vector<nav::Profile>& profiles) {
  const std::string& name = rng.pick(kRouteNames);
  const bool registered =
      std::any_of(in.routes().begin(), in.routes().end(),
                  [&](const nav::RouteProgram& p) { return p.name == name; });
  if (!registered) {
    (void)in.register_route({name, rng.pick(kRouteExprs),
                             rng.chance(0.5) ? nav::RouteCompile::Aot
                                             : nav::RouteCompile::Lazy});
    return 1;
  }
  const std::uint64_t roll = rng.below(4);
  if (roll == 0) {
    std::size_t edits = 0;
    for (nav::Profile& p : profiles) {
      auto it = std::find(p.families.begin(), p.families.end(), name);
      if (it != p.families.end()) {
        p.families.erase(it);
        in.register_profile(p);
        ++edits;
      }
    }
    (void)in.remove_route(name);
    return edits + 1;
  }
  if (roll == 1) {
    (void)in.edit_route(name, rng.pick(kRouteExprs));
    return 1;
  }
  // Re-register: new expression AND possibly a compile-mode flip — the
  // Aot artifact retires (or appears) while the served bytes must not
  // move for an unchanged expression.
  (void)in.register_route({name, rng.pick(kRouteExprs),
                           rng.chance(0.5) ? nav::RouteCompile::Aot
                                           : nav::RouteCompile::Lazy});
  return 1;
}

/// Extend a profile's family list with each currently registered route
/// name, coin-flip each — profiles reference routes exactly like
/// families, so the churn must mix them.
void maybe_reference_routes(const nav::EngineInternals& in, Rng& rng,
                            nav::Profile& profile) {
  for (const nav::RouteProgram& program : in.routes()) {
    if (rng.chance(0.5)) profile.families.push_back(program.name);
  }
}

/// One server under test: a ConcurrentServer plus the limits it was
/// opened with (for the per-step cap assertions).
struct ServerUnderTest {
  std::string label;
  serve::CacheLimits limits;
  std::size_t shards = 4;
  std::unique_ptr<serve::ConcurrentServer> server;
};

/// Every served body of `server` must equal the oracle: base paths the
/// engine's (already oracle-checked) site bytes, profile paths the
/// per-profile build, excluded linkbases 404.
void expect_server_differential(
    const ServerUnderTest& sut,
    const std::map<std::string, std::string>& base_bytes,
    const std::vector<std::pair<nav::Profile, std::map<std::string, std::string>>>&
        profile_bytes,
    int step) {
  for (const auto& [path, bytes] : base_bytes) {
    site::Response r = sut.server->get(path);
    ASSERT_TRUE(r.ok()) << sut.label << " step " << step << " " << path;
    ASSERT_EQ(*r.body, bytes) << sut.label << " step " << step << " " << path;
  }
  for (const auto& [profile, oracle] : profile_bytes) {
    for (const auto& [path, bytes] : oracle) {
      site::Response r = sut.server->get(path, profile.name);
      ASSERT_TRUE(r.ok()) << sut.label << " step " << step << " "
                          << profile.name << " " << path;
      ASSERT_EQ(*r.body, bytes) << sut.label << " step " << step << " "
                                << profile.name << " " << path;
    }
    for (const auto& [path, bytes] : base_bytes) {
      if (oracle.find(path) != oracle.end()) continue;
      ASSERT_FALSE(sut.server->get(path, profile.name).ok())
          << sut.label << " step " << step << " " << profile.name
          << " must not see " << path;
    }
  }
  // The bounded layers must actually be bounded, and the residency
  // ledger must balance, at every step of the churn.
  serve::ConcurrentServer::Stats s = sut.server->stats();
  if (sut.limits.base_entries_per_shard != serve::CacheLimits::kUnbounded) {
    ASSERT_LE(s.cached_entries,
              sut.limits.base_entries_per_shard * sut.shards)
        << sut.label << " step " << step;
  }
  if (sut.limits.overlay_entries_per_shard != serve::CacheLimits::kUnbounded) {
    ASSERT_LE(s.overlay_entries,
              sut.limits.overlay_entries_per_shard * sut.shards)
        << sut.label << " step " << step;
  }
  ASSERT_EQ(s.cache_inserted, s.cached_entries + s.cache_evicted)
      << sut.label << " step " << step;
  ASSERT_EQ(s.overlay_inserted, s.overlay_entries + s.overlay_evicted)
      << sut.label << " step " << step;
}

TEST(DifferentialStress, MixedMutationSequenceServesOnlyOracleBytes) {
  auto engine = nav::SitePipeline()
                    .conceptual(navsep::museum::SyntheticSpec{
                        .painters = 3,
                        .paintings_per_painter = 3,
                        .movements = 2,
                        .seed = 17})
                    .access(AccessStructureKind::Index, "painter-0")
                    .contexts({"ByAuthor", "ByMovement"})
                    .weave()
                    .serve();

  // The profile table under churn: three fixed names whose family lists
  // get re-registered mid-sequence (order matters — it is weave order).
  const std::vector<std::vector<std::string>> family_subsets{
      {}, {"ByAuthor"}, {"ByMovement"}, {"ByAuthor", "ByMovement"},
      {"ByMovement", "ByAuthor"}};
  std::vector<nav::Profile> profiles{
      {"kiosk", {}},
      {"tour", {"ByAuthor"}},
      {"everything", {"ByAuthor", "ByMovement"}},
  };
  for (const nav::Profile& p : profiles) {
    engine->internals().register_profile(p);
  }

  std::vector<ServerUnderTest> servers;
  servers.push_back({"unbounded", serve::CacheLimits{}, 4, nullptr});
  servers.push_back({"capped",
                     serve::CacheLimits{.base_entries_per_shard = 2,
                                        .overlay_entries_per_shard = 2},
                     4, nullptr});
  servers.push_back({"passthrough",
                     serve::CacheLimits{.base_entries_per_shard = 0,
                                        .overlay_entries_per_shard = 0},
                     4, nullptr});
  for (ServerUnderTest& sut : servers) {
    sut.server = engine->open_concurrent(sut.shards, sut.limits);
  }

  std::vector<std::string> all_paintings;
  for (const auto* node : engine->navigation().nodes_of("PaintingNode")) {
    all_paintings.push_back(node->id());
  }
  const AccessStructureKind kinds[] = {AccessStructureKind::Index,
                                       AccessStructureKind::GuidedTour,
                                       AccessStructureKind::IndexedGuidedTour};
  const std::vector<std::string> family_names{"ByAuthor", "ByMovement"};

  Rng rng(20260729);
  for (int step = 0; step < 110; ++step) {
    const std::uint64_t op = rng.below(9);
    if (op == 0) {
      // Arc edit: the finest-grained structural mutation.
      std::vector<hm::AccessArc> arcs = engine->internals().authored_arcs();
      if (arcs.empty()) continue;
      const std::size_t index =
          static_cast<std::size_t>(rng.below(arcs.size()));
      hm::AccessArc edited = arcs[index];
      edited.title = "edit-" + rng.word(6);
      if (rng.chance(0.3)) edited.to = rng.pick(all_paintings);
      (void)engine->internals().replace_arc(index, edited);
    } else if (op == 1) {
      const auto& members = engine->structure().members();
      const std::string id =
          members[static_cast<std::size_t>(rng.below(members.size()))]
              .node_id;
      (void)engine->internals().retitle_node(id, "title-" + rng.word(5));
    } else if (op == 2) {
      // Grow or shrink the member set (pages appear and retire).
      if (rng.chance(0.5)) {
        std::set<std::string> current;
        for (const auto& m : engine->structure().members()) {
          current.insert(m.node_id);
        }
        std::string candidate;
        for (const auto& id : all_paintings) {
          if (current.find(id) == current.end()) {
            candidate = id;
            break;
          }
        }
        if (candidate.empty()) continue;
        (void)engine->internals().add_node(candidate);
      } else {
        std::vector<hm::Member> members = engine->structure().members();
        if (members.size() < 3) continue;
        members.erase(members.begin() +
                      static_cast<std::ptrdiff_t>(rng.below(members.size())));
        (void)engine->internals().set_access_structure(
            hm::make_access_structure(engine->structure().kind(),
                                      engine->structure().name(),
                                      std::move(members)));
      }
    } else if (op == 3) {
      (void)engine->internals().set_access_structure(
          kinds[static_cast<std::size_t>(rng.below(3))]);
    } else if (op == 4) {
      // Context-family edit: one context's tour order moves.
      const std::string& family_name = rng.pick(family_names);
      (void)engine->internals().edit_context_family(
          family_name, [&](hm::ContextFamily& family) {
            std::vector<hm::NavigationalContext> contexts =
                family.contexts();
            if (contexts.empty()) return;
            auto& context = contexts[static_cast<std::size_t>(
                rng.below(contexts.size()))];
            std::vector<std::string> ids = context.node_ids();
            if (ids.size() < 2) return;
            if (rng.chance(0.5)) {
              std::reverse(ids.begin(), ids.end());
            } else {
              std::rotate(ids.begin(), ids.begin() + 1, ids.end());
            }
            context = hm::NavigationalContext(context.family(),
                                              context.name(),
                                              std::move(ids));
            family.replace_contexts(std::move(contexts));
          });
    } else if (op == 5) {
      // Re-register a profile with a different family list — route
      // names mixed in beside families.
      nav::Profile& victim = profiles[static_cast<std::size_t>(
          rng.below(profiles.size()))];
      victim.families = rng.pick(family_subsets);
      maybe_reference_routes(engine->internals(), rng, victim);
      engine->internals().register_profile(victim);
    } else if (op == 6) {
      engine->internals().rebuild();
    } else if (op == 7) {
      // Route-program churn: register / edit / flip / remove.
      (void)random_route_op(engine->internals(), rng, profiles);
    } else {
      // Cache-cap churn: tear one server down and reopen it with fresh
      // random caps (0 = pass-through stays in rotation).
      ServerUnderTest& sut = servers[static_cast<std::size_t>(
          rng.below(servers.size()))];
      const std::size_t cap = rng.below(4);  // 0..3 entries per shard
      sut.limits = serve::CacheLimits{.base_entries_per_shard = cap,
                                      .overlay_entries_per_shard = cap};
      sut.shards = 1 + static_cast<std::size_t>(rng.below(4));
      sut.server = engine->open_concurrent(sut.shards, sut.limits);
      sut.label = "churned@" + std::to_string(step);
    }

    // The differential check, every step: the incremental site equals
    // the from-scratch build, and every server serves exactly it.
    ASSERT_NO_FATAL_FAILURE(expect_sites_identical(
        engine->site(), full_build_oracle(*engine)))
        << "site diverged after step " << step;
    std::map<std::string, std::string> base_bytes;
    for (auto& [path, content] : engine->site().artifacts()) {
      base_bytes.emplace(path, content);
    }
    std::vector<std::pair<nav::Profile, std::map<std::string, std::string>>>
        profile_bytes;
    profile_bytes.reserve(profiles.size());
    for (const nav::Profile& profile : profiles) {
      profile_bytes.emplace_back(profile, profile_oracle(*engine, profile));
    }
    for (const ServerUnderTest& sut : servers) {
      ASSERT_NO_FATAL_FAILURE(expect_server_differential(
          sut, base_bytes, profile_bytes, step));
    }
  }

  // The incremental end state must be a fixpoint of the force path.
  std::vector<std::pair<std::string, std::string>> final_state =
      engine->site().artifacts();
  engine->internals().rebuild();
  EXPECT_EQ(engine->site().artifacts(), final_state);
}

// The replicated-reader variant: the same randomized mutation mix runs
// on the origin, but every served body is checked through a replica
// that has only ever seen the publisher's frame stream over a real
// socket — FULL on connect, deltas after. After EVERY step the replica
// must catch up to the origin's epoch and serve (base + per-profile,
// through an unmodified ConcurrentServer over ITS OWN store) exactly
// the full-build oracle's bytes. Twice mid-sequence the replica is
// killed, the origin mutates on without it, and a fresh replica
// reconnects — the mid-stream resync must converge every time.
TEST(DifferentialStress, ReplicatedReaderServesOnlyOracleBytes) {
  namespace repl = navsep::repl;

  auto engine = nav::SitePipeline()
                    .conceptual(navsep::museum::SyntheticSpec{
                        .painters = 3,
                        .paintings_per_painter = 3,
                        .movements = 2,
                        .seed = 23})
                    .access(AccessStructureKind::Index, "painter-0")
                    .contexts({"ByAuthor", "ByMovement"})
                    .weave()
                    .serve();

  const std::vector<std::vector<std::string>> family_subsets{
      {}, {"ByAuthor"}, {"ByMovement"}, {"ByAuthor", "ByMovement"},
      {"ByMovement", "ByAuthor"}};
  std::vector<nav::Profile> profiles{
      {"kiosk", {}},
      {"tour", {"ByAuthor"}},
      {"everything", {"ByAuthor", "ByMovement"}},
  };
  for (const nav::Profile& p : profiles) {
    engine->internals().register_profile(p);
  }

  auto publisher =
      engine->open_publisher(repl::Endpoint::tcp("127.0.0.1", 0));
  auto connect_replica = [&] {
    auto replica = std::make_unique<repl::Replica>(
        repl::Connection::connect(publisher->endpoint()));
    replica->start();
    return replica;
  };
  std::unique_ptr<repl::Replica> replica = connect_replica();
  std::unique_ptr<serve::ConcurrentServer> server;  // rebuilt on resync
  std::size_t reconnects = 0;

  std::vector<std::string> all_paintings;
  for (const auto* node : engine->navigation().nodes_of("PaintingNode")) {
    all_paintings.push_back(node->id());
  }
  const AccessStructureKind kinds[] = {AccessStructureKind::Index,
                                       AccessStructureKind::GuidedTour,
                                       AccessStructureKind::IndexedGuidedTour};
  const std::vector<std::string> family_names{"ByAuthor", "ByMovement"};

  Rng rng(20260807);
  for (int step = 0; step < 110; ++step) {
    // Kill-and-resync: the replica dies, the origin mutates on without
    // it (building an epoch gap — route mutations included, so route
    // tables must survive the mid-stream FULL resync), and a new one
    // connects mid-stream.
    if (step == 35 || step == 75) {
      server.reset();
      replica.reset();
      for (int burst = 0; burst < 4; ++burst) {
        const auto& members = engine->structure().members();
        const std::string id =
            members[static_cast<std::size_t>(rng.below(members.size()))]
                .node_id;
        (void)engine->internals().retitle_node(id, "gap-" + rng.word(5));
      }
      (void)random_route_op(engine->internals(), rng, profiles);
      replica = connect_replica();
      ++reconnects;
    }

    const std::uint64_t op = rng.below(8);
    if (op == 0) {
      std::vector<hm::AccessArc> arcs = engine->internals().authored_arcs();
      if (arcs.empty()) continue;
      const std::size_t index =
          static_cast<std::size_t>(rng.below(arcs.size()));
      hm::AccessArc edited = arcs[index];
      edited.title = "edit-" + rng.word(6);
      if (rng.chance(0.3)) edited.to = rng.pick(all_paintings);
      (void)engine->internals().replace_arc(index, edited);
    } else if (op == 1) {
      const auto& members = engine->structure().members();
      const std::string id =
          members[static_cast<std::size_t>(rng.below(members.size()))]
              .node_id;
      (void)engine->internals().retitle_node(id, "title-" + rng.word(5));
    } else if (op == 2) {
      if (rng.chance(0.5)) {
        std::set<std::string> current;
        for (const auto& m : engine->structure().members()) {
          current.insert(m.node_id);
        }
        std::string candidate;
        for (const auto& id : all_paintings) {
          if (current.find(id) == current.end()) {
            candidate = id;
            break;
          }
        }
        if (candidate.empty()) continue;
        (void)engine->internals().add_node(candidate);
      } else {
        std::vector<hm::Member> members = engine->structure().members();
        if (members.size() < 3) continue;
        members.erase(members.begin() +
                      static_cast<std::ptrdiff_t>(rng.below(members.size())));
        (void)engine->internals().set_access_structure(
            hm::make_access_structure(engine->structure().kind(),
                                      engine->structure().name(),
                                      std::move(members)));
      }
    } else if (op == 3) {
      (void)engine->internals().set_access_structure(
          kinds[static_cast<std::size_t>(rng.below(3))]);
    } else if (op == 4) {
      const std::string& family_name = rng.pick(family_names);
      (void)engine->internals().edit_context_family(
          family_name, [&](hm::ContextFamily& family) {
            std::vector<hm::NavigationalContext> contexts =
                family.contexts();
            if (contexts.empty()) return;
            auto& context = contexts[static_cast<std::size_t>(
                rng.below(contexts.size()))];
            std::vector<std::string> ids = context.node_ids();
            if (ids.size() < 2) return;
            if (rng.chance(0.5)) {
              std::reverse(ids.begin(), ids.end());
            } else {
              std::rotate(ids.begin(), ids.begin() + 1, ids.end());
            }
            context = hm::NavigationalContext(context.family(),
                                              context.name(),
                                              std::move(ids));
            family.replace_contexts(std::move(contexts));
          });
    } else if (op == 5) {
      nav::Profile& victim = profiles[static_cast<std::size_t>(
          rng.below(profiles.size()))];
      victim.families = rng.pick(family_subsets);
      maybe_reference_routes(engine->internals(), rng, victim);
      engine->internals().register_profile(victim);
    } else if (op == 6) {
      engine->internals().rebuild();
    } else {
      // Route-program churn on the origin: the table must replicate.
      (void)random_route_op(engine->internals(), rng, profiles);
    }

    // The replica must catch up to the origin's exact epoch…
    const std::uint64_t target = engine->internals().snapshots().epoch();
    ASSERT_TRUE(replica->wait_for_epoch(target,
                                        std::chrono::seconds(60)))
        << "step " << step << ": replica stuck at epoch "
        << replica->stats().epoch << " (target " << target
        << "): " << replica->error();
    if (server == nullptr) {
      server = std::make_unique<serve::ConcurrentServer>(replica->store(), 4);
    }

    // The replicated route table is byte-for-byte the origin's — across
    // deltas (carry or inline) AND across the kill-and-resync FULLs.
    {
      const auto origin_routes =
          engine->internals().snapshots().current()->route_table();
      const auto replica_routes = replica->store().current()->route_table();
      ASSERT_EQ(origin_routes == nullptr, replica_routes == nullptr)
          << "step " << step;
      if (origin_routes != nullptr) {
        ASSERT_TRUE(*origin_routes == *replica_routes)
            << "step " << step << ": route table diverged across the wire";
      }
    }

    // …and serve exactly the oracle's bytes, base and per-profile,
    // through an unmodified ConcurrentServer over the replicated store.
    std::map<std::string, std::string> base_bytes;
    for (auto& [path, content] : engine->site().artifacts()) {
      base_bytes.emplace(path, content);
    }
    std::vector<std::pair<nav::Profile, std::map<std::string, std::string>>>
        profile_bytes;
    profile_bytes.reserve(profiles.size());
    for (const nav::Profile& profile : profiles) {
      profile_bytes.emplace_back(profile, profile_oracle(*engine, profile));
    }
    ServerUnderTest replicated{"replicated", serve::CacheLimits{}, 4,
                               std::move(server)};
    ASSERT_NO_FATAL_FAILURE(expect_server_differential(
        replicated, base_bytes, profile_bytes, step));
    server = std::move(replicated.server);
  }

  // The stream really exercised both frame kinds and both resyncs.
  EXPECT_EQ(reconnects, 2u);
  const repl::ReplicaStats rs = replica->stats();
  EXPECT_GE(rs.deltas_applied, 1u);
  EXPECT_GE(rs.fulls_applied, 1u);
  EXPECT_EQ(rs.epoch, engine->internals().snapshots().epoch());
}

// The batched variant: the same mutation mix, but grouped into
// randomized-size begin_batch()/commit_batch() bursts on an engine with
// a parallel weave pool. The invariants under test, after EVERY commit:
// the coalesced report counts every edit, a K-edit burst advances the
// snapshot epoch by exactly ONE, a live replica fed by a real
// repl::Publisher applies exactly ONE delta for the whole burst, and
// both the origin site and the replica-served bytes equal the
// full-build oracle of the final batched state.
TEST(DifferentialStress, BatchedBurstsPublishOneDeltaAndServeOracleBytes) {
  namespace repl = navsep::repl;

  auto engine = nav::SitePipeline()
                    .conceptual(navsep::museum::SyntheticSpec{
                        .painters = 3,
                        .paintings_per_painter = 3,
                        .movements = 2,
                        .seed = 29})
                    .access(AccessStructureKind::Index, "painter-0")
                    .contexts({"ByAuthor", "ByMovement"})
                    .weave()
                    .weave_workers(2)
                    .serve();

  const std::vector<std::vector<std::string>> family_subsets{
      {}, {"ByAuthor"}, {"ByMovement"}, {"ByAuthor", "ByMovement"}};
  std::vector<nav::Profile> profiles{
      {"kiosk", {}},
      {"tour", {"ByAuthor"}},
  };
  for (const nav::Profile& p : profiles) {
    engine->internals().register_profile(p);
  }

  auto publisher =
      engine->open_publisher(repl::Endpoint::tcp("127.0.0.1", 0));
  auto replica = std::make_unique<repl::Replica>(
      repl::Connection::connect(publisher->endpoint()));
  replica->start();
  ASSERT_TRUE(replica->wait_for_epoch(engine->internals().snapshots().epoch(),
                                      std::chrono::seconds(60)));
  auto replica_server =
      std::make_unique<serve::ConcurrentServer>(replica->store(), 4);

  std::vector<std::string> all_paintings;
  for (const auto* node : engine->navigation().nodes_of("PaintingNode")) {
    all_paintings.push_back(node->id());
  }
  const AccessStructureKind kinds[] = {AccessStructureKind::Index,
                                       AccessStructureKind::GuidedTour,
                                       AccessStructureKind::IndexedGuidedTour};
  const std::vector<std::string> family_names{"ByAuthor", "ByMovement"};

  Rng rng(20260808);
  for (int round = 0; round < 30; ++round) {
    const std::uint64_t epoch_before = engine->internals().snapshots().epoch();
    const std::uint64_t deltas_before = replica->stats().deltas_applied;
    const std::size_t burst = 1 + static_cast<std::size_t>(rng.below(6));

    engine->internals().begin_batch();
    std::size_t applied = 0;
    for (std::size_t k = 0; k < burst; ++k) {
      const std::uint64_t op = rng.below(8);
      if (op == 0) {
        std::vector<hm::AccessArc> arcs = engine->internals().authored_arcs();
        if (arcs.empty()) continue;
        const std::size_t index =
            static_cast<std::size_t>(rng.below(arcs.size()));
        hm::AccessArc edited = arcs[index];
        edited.title = "edit-" + rng.word(6);
        if (rng.chance(0.3)) edited.to = rng.pick(all_paintings);
        (void)engine->internals().replace_arc(index, edited);
      } else if (op == 1) {
        const auto& members = engine->structure().members();
        const std::string id =
            members[static_cast<std::size_t>(rng.below(members.size()))]
                .node_id;
        (void)engine->internals().retitle_node(id, "title-" + rng.word(5));
      } else if (op == 2) {
        if (rng.chance(0.5)) {
          std::set<std::string> current;
          for (const auto& m : engine->structure().members()) {
            current.insert(m.node_id);
          }
          std::string candidate;
          for (const auto& id : all_paintings) {
            if (current.find(id) == current.end()) {
              candidate = id;
              break;
            }
          }
          if (candidate.empty()) continue;
          (void)engine->internals().add_node(candidate);
        } else {
          std::vector<hm::Member> members = engine->structure().members();
          if (members.size() < 3) continue;
          members.erase(members.begin() + static_cast<std::ptrdiff_t>(
                                              rng.below(members.size())));
          (void)engine->internals().set_access_structure(
              hm::make_access_structure(engine->structure().kind(),
                                        engine->structure().name(),
                                        std::move(members)));
        }
      } else if (op == 3) {
        (void)engine->internals().set_access_structure(
            kinds[static_cast<std::size_t>(rng.below(3))]);
      } else if (op == 4) {
        const std::string& family_name = rng.pick(family_names);
        (void)engine->internals().edit_context_family(
            family_name, [&](hm::ContextFamily& family) {
              std::vector<hm::NavigationalContext> contexts =
                  family.contexts();
              if (contexts.empty()) return;
              auto& context = contexts[static_cast<std::size_t>(
                  rng.below(contexts.size()))];
              std::vector<std::string> ids = context.node_ids();
              if (ids.size() < 2) return;
              std::reverse(ids.begin(), ids.end());
              context = hm::NavigationalContext(context.family(),
                                                context.name(),
                                                std::move(ids));
              family.replace_contexts(std::move(contexts));
            });
      } else if (op == 5) {
        nav::Profile& victim = profiles[static_cast<std::size_t>(
            rng.below(profiles.size()))];
        victim.families = rng.pick(family_subsets);
        maybe_reference_routes(engine->internals(), rng, victim);
        engine->internals().register_profile(victim);
      } else if (op == 6) {
        engine->internals().rebuild();
      } else {
        // Route churn inside the batch: a removal may re-register
        // referencing profiles first, so it contributes several edits —
        // the helper reports how many it applied.
        applied += random_route_op(engine->internals(), rng, profiles);
        continue;
      }
      ++applied;
    }

    nav::RebuildReport report = engine->internals().commit_batch();
    ASSERT_EQ(report.edits_coalesced, applied) << "round " << round;
    const std::uint64_t epoch_after = engine->internals().snapshots().epoch();
    if (applied == 0) {
      ASSERT_EQ(epoch_after, epoch_before) << "round " << round;
      continue;
    }
    ASSERT_EQ(report.epochs_published, 1u) << "round " << round;
    ASSERT_EQ(epoch_after, epoch_before + 1)
        << "round " << round << ": a " << applied
        << "-edit burst must publish exactly one epoch";

    // The origin equals the from-scratch oracle of the batched state.
    ASSERT_NO_FATAL_FAILURE(expect_sites_identical(
        engine->site(), full_build_oracle(*engine)))
        << "site diverged after round " << round;

    // The publisher streamed the whole burst as exactly ONE delta.
    ASSERT_TRUE(replica->wait_for_epoch(epoch_after,
                                        std::chrono::seconds(60)))
        << "round " << round << ": replica stuck at epoch "
        << replica->stats().epoch << ": " << replica->error();
    const repl::ReplicaStats rs = replica->stats();
    ASSERT_EQ(rs.deltas_applied, deltas_before + 1) << "round " << round;

    // And the replica serves the origin's exact bytes.
    std::map<std::string, std::string> base_bytes;
    for (auto& [path, content] : engine->site().artifacts()) {
      base_bytes.emplace(path, content);
    }
    std::vector<std::pair<nav::Profile, std::map<std::string, std::string>>>
        profile_bytes;
    for (const nav::Profile& profile : profiles) {
      profile_bytes.emplace_back(profile, profile_oracle(*engine, profile));
    }
    ServerUnderTest replicated{"batched-replica", serve::CacheLimits{}, 4,
                               std::move(replica_server)};
    ASSERT_NO_FATAL_FAILURE(expect_server_differential(
        replicated, base_bytes, profile_bytes, round));
    replica_server = std::move(replicated.server);
  }

  // The batched end state must be a fixpoint of the force path.
  std::vector<std::pair<std::string, std::string>> final_state =
      engine->site().artifacts();
  engine->internals().rebuild();
  EXPECT_EQ(engine->site().artifacts(), final_state);
}

// The warming variant: a CacheWarmer's background lane races organic
// reader threads AND an epoch-publishing writer over one bounded
// server. The writer flips the site between two known states, so every
// read must match one of the two oracles (A or B) — a warmed entry that
// leaked stale bytes past its validity check, or an eviction forced by
// warming, would show up as a torn read or a broken ledger. Run under
// TSan this is also the warmer's data-race gate.
TEST(DifferentialStress, WarmerLaneRacesTrafficAndChurnWithoutDivergence) {
  auto engine = nav::SitePipeline()
                    .conceptual(navsep::museum::SyntheticSpec{
                        .painters = 2,
                        .paintings_per_painter = 4,
                        .movements = 2,
                        .seed = 31})
                    .access(AccessStructureKind::IndexedGuidedTour)
                    .contexts({"ByAuthor"})
                    .weave()
                    .serve();
  const nav::Profile tour{"tour", {"ByAuthor"}};
  engine->internals().register_profile(tour);

  // Two site states, flipped by retitling one member: capture both
  // oracles (base + profile) up front.
  using Bytes = std::map<std::string, std::string>;
  const auto capture = [&] {
    Bytes base;
    for (auto& [path, content] : engine->site().artifacts()) {
      base.emplace(path, content);
    }
    return std::pair<Bytes, Bytes>{std::move(base),
                                   profile_oracle(*engine, tour)};
  };
  const std::string flip_id = engine->structure().members().front().node_id;
  (void)engine->internals().retitle_node(flip_id, "Flip State A");
  const auto [base_a, tour_a] = capture();
  (void)engine->internals().retitle_node(flip_id, "Flip State B");
  const auto [base_b, tour_b] = capture();

  auto server = engine->open_concurrent(
      4, serve::CacheLimits{.base_entries_per_shard = 4,
                            .overlay_entries_per_shard = 4});
  const std::vector<std::string> pages =
      navsep::testing::html_pages(*engine);

  // The warmer's feed covers every page on both layers — more than the
  // caps admit, so NoRoom races organic insertion constantly.
  serve::CacheWarmer warmer(
      *server, serve::CacheWarmer::Options{
                   .top_n = pages.size() * 2,
                   .poll = std::chrono::milliseconds(1)});
  std::vector<navsep::obs::HotEntry> feed;
  for (std::size_t i = 0; i < pages.size(); ++i) {
    const std::uint64_t views = static_cast<std::uint64_t>(100 - i);
    feed.push_back({pages[i], "", views});
    feed.push_back({pages[i], tour.name, views});
  }
  warmer.set_feed(std::move(feed));
  warmer.start();

  std::atomic<bool> done{false};
  std::atomic<std::size_t> reads{0};
  std::atomic<std::size_t> torn{0};
  constexpr std::size_t kReaders = 4;
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (std::size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      const bool profiled = r % 2 == 1;
      const Bytes& a = profiled ? tour_a : base_a;
      const Bytes& b = profiled ? tour_b : base_b;
      std::size_t i = r;
      while (!done.load(std::memory_order_acquire)) {
        const std::string& path = pages[i++ % pages.size()];
        site::Response resp = profiled ? server->get(path, tour.name)
                                       : server->get(path);
        if (!resp.ok()) continue;
        reads.fetch_add(1, std::memory_order_relaxed);
        const std::string& body = *resp.body;
        auto ia = a.find(path);
        auto ib = b.find(path);
        const bool matches = (ia != a.end() && body == ia->second) ||
                             (ib != b.end() && body == ib->second);
        if (!matches) torn.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  constexpr std::size_t kFlips = 24;
  for (std::size_t w = 0; w < kFlips; ++w) {
    (void)engine->internals().retitle_node(
        flip_id, w % 2 == 0 ? "Flip State A" : "Flip State B");
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  warmer.stop();

  EXPECT_GT(reads.load(), 0u);
  EXPECT_EQ(torn.load(), 0u);

  // The warmer's accounting identity held across every racing cycle.
  const serve::CacheWarmer::WarmStats ws = warmer.stats();
  EXPECT_GT(ws.cycles, 0u);
  EXPECT_EQ(ws.attempted,
            ws.warmed + ws.already_hot + ws.no_room + ws.not_found);

  // At rest: caps held, ledger balances, and every served body equals
  // the final oracle exactly.
  ServerUnderTest sut{"warmed", server->limits(), server->shard_count(),
                      nullptr};
  Bytes base_bytes;
  for (auto& [path, content] : engine->site().artifacts()) {
    base_bytes.emplace(path, content);
  }
  std::vector<std::pair<nav::Profile, Bytes>> profile_bytes;
  profile_bytes.emplace_back(tour, profile_oracle(*engine, tour));
  sut.server = std::move(server);
  ASSERT_NO_FATAL_FAILURE(expect_server_differential(
      sut, base_bytes, profile_bytes, static_cast<int>(kFlips)));
}

}  // namespace

// Profile-scoped navigation overlays at serve time.
//
// The contract under test is byte-level: for every registered
// nav::Profile, the overlaid response of every path must equal what a
// full single-threaded build would produce if it wove ONLY that
// profile's context families (site::SiteBuildOptions::weave_context_tours
// — the oracle). On top of identity, the invalidation economics: a
// single family edit re-weaves zero base pages and retires only the
// overlay cache entries of profiles that include that family.
#include <algorithm>
#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/navigation_aspect.hpp"
#include "hypermedia/context.hpp"
#include "nav/pipeline.hpp"
#include "nav/profile.hpp"
#include "oracle.hpp"
#include "serve/concurrent_server.hpp"
#include "serve/snapshot.hpp"
#include "serve/workload.hpp"
#include "site/virtual_site.hpp"

namespace {

using navsep::hypermedia::AccessStructureKind;
namespace hm = navsep::hypermedia;
namespace nav = navsep::nav;
namespace serve = navsep::serve;
namespace site = navsep::site;
using navsep::testing::expect_profile_matches_oracle;
using navsep::testing::html_pages;
using navsep::testing::profile_oracle;

std::unique_ptr<nav::Engine> paper_engine() {
  return nav::SitePipeline()
      .paper_museum()
      .access(AccessStructureKind::IndexedGuidedTour, "picasso")
      .contexts({"ByAuthor", "ByMovement"})
      .weave()
      .serve();
}

std::unique_ptr<nav::Engine> synthetic_engine(std::size_t paintings) {
  return nav::SitePipeline()
      .conceptual(navsep::museum::SyntheticSpec{.painters = 3,
                                                .paintings_per_painter =
                                                    paintings,
                                                .movements = 2,
                                                .seed = 11})
      .access(AccessStructureKind::IndexedGuidedTour)
      .contexts({"ByAuthor", "ByMovement"})
      .weave()
      .serve();
}

/// Register one profile per interesting family subset.
std::vector<nav::Profile> register_standard_profiles(nav::Engine& engine) {
  std::vector<nav::Profile> profiles{
      {"kiosk", {}},
      {"tour", {"ByAuthor"}},
      {"curator", {"ByMovement"}},
      {"everything", {"ByAuthor", "ByMovement"}},
  };
  for (const nav::Profile& p : profiles) {
    engine.internals().register_profile(p);
  }
  return profiles;
}

// The per-profile oracle and the every-path assertion live in
// tests/oracle.{hpp,cpp} (profile_oracle / expect_profile_matches_oracle),
// shared with stress_test.

// --- the byte-identity oracle -------------------------------------------------

TEST(OverlayOracle, EveryProfileMatchesItsFullBuild) {
  auto engine = paper_engine();
  const std::vector<nav::Profile> profiles =
      register_standard_profiles(*engine);
  auto server = engine->open_concurrent();
  for (const nav::Profile& profile : profiles) {
    expect_profile_matches_oracle(*engine, *server, profile);
  }
}

TEST(OverlayOracle, HoldsAcrossStructureAndFamilyMutations) {
  auto engine = synthetic_engine(3);
  const std::vector<nav::Profile> profiles =
      register_standard_profiles(*engine);
  auto server = engine->open_concurrent();

  // Structure mutations re-weave base pages; overlays must track.
  (void)engine->internals().retitle_node(
      engine->structure().members().front().node_id, "Retitled (v2)");
  for (const nav::Profile& profile : profiles) {
    expect_profile_matches_oracle(*engine, *server, profile);
  }

  // A family edit re-authors one contextual linkbase and nothing else.
  nav::RebuildReport report = engine->internals().edit_context_family(
      "ByAuthor", [](hm::ContextFamily& family) {
        std::vector<hm::NavigationalContext> contexts = family.contexts();
        ASSERT_FALSE(contexts.empty());
        std::vector<std::string> ids = contexts.front().node_ids();
        std::reverse(ids.begin(), ids.end());
        contexts.front() = hm::NavigationalContext(
            contexts.front().family(), contexts.front().name(),
            std::move(ids));
        family.replace_contexts(std::move(contexts));
      });
  EXPECT_EQ(report.pages_rewoven, 0u);
  EXPECT_EQ(report.linkbases_reauthored, 1u);
  for (const nav::Profile& profile : profiles) {
    expect_profile_matches_oracle(*engine, *server, profile);
  }

  // And the blanket path agrees too.
  engine->internals().rebuild();
  for (const nav::Profile& profile : profiles) {
    expect_profile_matches_oracle(*engine, *server, profile);
  }
}

TEST(OverlayOracle, InsertsABlockWhereTheBasePageWeavesNone) {
  // A structure with members but zero arcs weaves base pages WITHOUT a
  // navigation block; a profile with tours must still byte-match the
  // full build, which appends the block as the body's last child.
  auto engine = paper_engine();
  std::vector<hm::Member> members = engine->structure().members();
  (void)engine->internals().set_access_structure(
      std::make_unique<hm::MaterializedStructure>(
          engine->structure().name(), AccessStructureKind::Index, members,
          std::vector<hm::AccessArc>{}, engine->structure().entry()));
  const std::vector<nav::Profile> profiles =
      register_standard_profiles(*engine);
  auto server = engine->open_concurrent();

  const std::string page =
      navsep::core::default_href_for(members.front().node_id);
  site::Response base = server->get(page);
  ASSERT_TRUE(base.ok());
  EXPECT_EQ(base.body->find("<div class=\"navigation\">"), std::string::npos);
  site::Response overlaid = server->get(page, "everything");
  ASSERT_TRUE(overlaid.ok());
  EXPECT_NE(overlaid.body->find("<div class=\"navigation\">"),
            std::string::npos);

  for (const nav::Profile& profile : profiles) {
    expect_profile_matches_oracle(*engine, *server, profile);
  }
}

TEST(OverlayOracle, TourGroupsCarryTheirContext) {
  auto engine = paper_engine();
  engine->internals().register_profile({"tour", {"ByAuthor"}});
  auto server = engine->open_concurrent();

  site::Response r = server->get("guitar.html", "tour");
  ASSERT_TRUE(r.ok());
  EXPECT_NE(r.body->find("class=\"nav-tour\""), std::string::npos);
  EXPECT_NE(r.body->find("data-context=\"ByAuthor:picasso\""),
            std::string::npos);
  // The other family stays invisible to this profile.
  EXPECT_EQ(r.body->find("ByMovement:"), std::string::npos);
  EXPECT_FALSE(server->get("links-bymovement.xml", "tour").ok());
  EXPECT_TRUE(server->get("links-byauthor.xml", "tour").ok());
}

TEST(OverlayOracle, EmptyProfileSharesTheBaseBytes) {
  auto engine = paper_engine();
  engine->internals().register_profile({"kiosk", {}});
  auto server = engine->open_concurrent();

  for (const std::string& path : engine->site().paths()) {
    site::Response base = server->get(path);
    site::Response overlaid = server->get(path, "kiosk");
    ASSERT_TRUE(base.ok()) << path;
    if (path.rfind("links-", 0) == 0) {
      // Contextual linkbases are outside an empty profile's site.
      EXPECT_FALSE(overlaid.ok()) << path;
      continue;
    }
    ASSERT_TRUE(overlaid.ok()) << path;
    // Not just equal: the SAME shared bytes — the splice detects the
    // no-op and hands back the base handle instead of a copy.
    EXPECT_EQ(base.body.get(), overlaid.body.get()) << path;
  }
}

// --- registration and lookup --------------------------------------------------

TEST(ProfileRegistration, ValidatesNamesAndFamilies) {
  auto engine = paper_engine();
  EXPECT_THROW(engine->internals().register_profile({"", {}}),
               navsep::SemanticError);
  EXPECT_THROW(engine->internals().register_profile({"a\nb", {}}),
               navsep::SemanticError);
  EXPECT_THROW(
      engine->internals().register_profile({"ghost", {"ByGhost"}}),
      navsep::SemanticError);
  EXPECT_THROW(engine->internals().register_profile(
                   {"twice", {"ByAuthor", "ByAuthor"}}),
               navsep::SemanticError);

  engine->internals().register_profile({"tour", {"ByAuthor"}});
  ASSERT_EQ(engine->internals().profiles().size(), 1u);

  // Re-registration replaces by name and the serving side follows.
  auto server = engine->open_concurrent();
  site::Response with_tours = server->get("guitar.html", "tour");
  engine->internals().register_profile({"tour", {}});
  EXPECT_EQ(engine->internals().profiles().size(), 1u);
  site::Response without = server->get("guitar.html", "tour");
  EXPECT_NE(*with_tours.body, *without.body);
  EXPECT_EQ(*without.body, *server->get("guitar.html").body);
}

TEST(ProfileRegistration, TangledModeRefusesFamilies) {
  auto engine = nav::SitePipeline()
                    .paper_museum()
                    .access(AccessStructureKind::Index, "picasso")
                    .tangled()
                    .serve();
  EXPECT_THROW(
      engine->internals().register_profile({"tour", {"ByAuthor"}}),
      navsep::SemanticError);
  // An empty-family profile is fine and serves the tangled base bytes.
  engine->internals().register_profile({"kiosk", {}});
  auto server = engine->open_concurrent();
  site::Response base = server->get("guitar.html");
  site::Response overlaid = server->get("guitar.html", "kiosk");
  ASSERT_TRUE(overlaid.ok());
  EXPECT_EQ(base.body.get(), overlaid.body.get());
}

TEST(ProfileRegistration, UnknownProfileThrowsAtServeTime) {
  auto engine = paper_engine();
  auto server = engine->open_concurrent();
  EXPECT_THROW((void)server->get("guitar.html", "nobody"),
               navsep::SemanticError);
  std::shared_ptr<const serve::SiteSnapshot> snap =
      engine->snapshots().current();
  EXPECT_THROW((void)snap->respond_as("nobody", "guitar.html"),
               navsep::SemanticError);
}

TEST(ProfileRegistration, EditUnknownFamilyThrows) {
  auto engine = paper_engine();
  EXPECT_THROW(engine->internals().edit_context_family(
                   "ByGhost", [](hm::ContextFamily&) {}),
               navsep::ResolutionError);
}

// --- overlay cache economics --------------------------------------------------

TEST(OverlayCache, HitsAreSharedBytesAcrossRepeats) {
  auto engine = paper_engine();
  engine->internals().register_profile({"tour", {"ByAuthor"}});
  auto server = engine->open_concurrent();

  site::Response first = server->get("guitar.html", "tour");
  site::Response second = server->get("guitar.html", "tour");
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.body.get(), second.body.get());
  serve::ConcurrentServer::Stats s = server->stats();
  EXPECT_EQ(s.overlay_requests, 2u);
  EXPECT_EQ(s.overlay_renders, 1u);
  EXPECT_EQ(s.overlay_hits, 1u);
  EXPECT_EQ(s.overlay_entries, 1u);
}

TEST(OverlayCache, FamilyEditRetiresOnlyTouchedSlices) {
  // The slice-precision property, end to end: ONE family edit retires
  // overlay entries only for pages whose (page, family) arc slice the
  // edit actually changed — pages of other contexts in the SAME family
  // keep hitting, as does every entry of a profile excluding the family.
  auto engine = synthetic_engine(4);
  engine->internals().register_profile({"tour", {"ByAuthor"}});
  engine->internals().register_profile({"curator", {"ByMovement"}});
  auto server = engine->open_concurrent();

  // Warm every page for both profiles, keeping the tour bodies so the
  // touched set can be computed from what actually changed.
  const std::vector<std::string> pages = html_pages(*engine);
  std::map<std::string, std::string> tour_before;
  for (const std::string& page : pages) {
    site::Response r = server->get(page, "tour");
    ASSERT_TRUE(r.ok()) << page;
    tour_before.emplace(page, *r.body);
    ASSERT_TRUE(server->get(page, "curator").ok()) << page;
  }
  const serve::ConcurrentServer::Stats warmed = server->stats();
  EXPECT_EQ(warmed.overlay_renders, 2 * pages.size());

  // One family edit touching ONE context (the first painter's tour):
  // zero base pages re-woven, one linkbase re-authored, a new epoch.
  nav::RebuildReport report = engine->internals().edit_context_family(
      "ByAuthor", [](hm::ContextFamily& family) {
        std::vector<hm::NavigationalContext> contexts = family.contexts();
        std::vector<std::string> ids = contexts.front().node_ids();
        std::rotate(ids.begin(), ids.begin() + 1, ids.end());
        contexts.front() = hm::NavigationalContext(
            contexts.front().family(), contexts.front().name(),
            std::move(ids));
        family.replace_contexts(std::move(contexts));
      });
  EXPECT_EQ(report.pages_rewoven, 0u);
  EXPECT_EQ(report.linkbases_reauthored, 1u);

  // The profile excluding the family still hits every entry...
  for (const std::string& page : pages) {
    ASSERT_TRUE(server->get(page, "curator").ok());
  }
  serve::ConcurrentServer::Stats after_curator = server->stats();
  EXPECT_EQ(after_curator.overlay_renders, warmed.overlay_renders);
  EXPECT_EQ(after_curator.overlay_hits,
            warmed.overlay_hits + pages.size());
  EXPECT_EQ(after_curator.overlay_stale_renders, 0u);

  // ...and the including profile re-renders EXACTLY the pages whose
  // served bytes changed (the edited context's members) — the other
  // painters' pages keep their entries across the edit.
  std::size_t touched = 0;
  for (const std::string& page : pages) {
    site::Response r = server->get(page, "tour");
    ASSERT_TRUE(r.ok()) << page;
    if (*r.body != tour_before.at(page)) ++touched;
  }
  ASSERT_GT(touched, 0u);
  ASSERT_LT(touched, pages.size())
      << "the edit touched every page — no untouched slice to keep alive";
  serve::ConcurrentServer::Stats after_tour = server->stats();
  EXPECT_EQ(after_tour.overlay_stale_renders, touched);
  EXPECT_EQ(after_tour.overlay_renders,
            after_curator.overlay_renders + touched);
  EXPECT_EQ(after_tour.overlay_hits, after_curator.overlay_hits +
                                         (pages.size() - touched));
}

TEST(OverlayCache, UntouchedSliceEntriesSurviveByHash) {
  // The slice-hash mechanism directly: after a one-context family edit,
  // overlay_validity for an untouched page is same_content() with the
  // pre-edit token, while a touched page's is not — and only the edited
  // family's slot moved.
  auto engine = synthetic_engine(3);
  engine->internals().register_profile({"tour", {"ByAuthor"}});
  const nav::Profile profile{"tour", {"ByAuthor"}};

  std::shared_ptr<const serve::SiteSnapshot> before =
      engine->snapshots().current();
  std::vector<std::string> first_context_ids;
  for (const hm::ContextFamily& family : engine->context_families()) {
    if (family.name() == "ByAuthor") {
      first_context_ids = family.contexts().front().node_ids();
    }
  }
  ASSERT_GE(first_context_ids.size(), 2u);
  const std::string touched_page =
      navsep::core::default_href_for(first_context_ids.front());
  // A page of another painter: its ByAuthor slice is a different context.
  std::string untouched_page;
  for (const std::string& page : html_pages(*engine)) {
    if (std::none_of(first_context_ids.begin(), first_context_ids.end(),
                     [&](const std::string& id) {
                       return navsep::core::default_href_for(id) == page;
                     })) {
      untouched_page = page;
      break;
    }
  }
  ASSERT_FALSE(untouched_page.empty());

  (void)engine->internals().edit_context_family(
      "ByAuthor", [](hm::ContextFamily& family) {
        std::vector<hm::NavigationalContext> contexts = family.contexts();
        std::vector<std::string> ids = contexts.front().node_ids();
        std::reverse(ids.begin(), ids.end());
        contexts.front() = hm::NavigationalContext(
            contexts.front().family(), contexts.front().name(),
            std::move(ids));
        family.replace_contexts(std::move(contexts));
      });
  std::shared_ptr<const serve::SiteSnapshot> after =
      engine->snapshots().current();
  ASSERT_NE(before.get(), after.get());

  const serve::OverlayValidity untouched_before =
      before->overlay_validity(profile, untouched_page);
  const serve::OverlayValidity untouched_after =
      after->overlay_validity(profile, untouched_page);
  EXPECT_TRUE(untouched_after.same_content(untouched_before));

  const serve::OverlayValidity touched_before =
      before->overlay_validity(profile, touched_page);
  const serve::OverlayValidity touched_after =
      after->overlay_validity(profile, touched_page);
  EXPECT_FALSE(touched_after.same_content(touched_before));
  // Precisely the family slice moved: base bytes, profile token and the
  // structure slice are all unchanged by a family edit.
  EXPECT_EQ(touched_after.base_body.get(), touched_before.base_body.get());
  EXPECT_EQ(touched_after.profile_token, touched_before.profile_token);
  EXPECT_EQ(touched_after.structure_slice, touched_before.structure_slice);
  EXPECT_NE(touched_after.family_slices, touched_before.family_slices);
}

TEST(OverlayCache, ReplacingAProfileByNameInvalidatesItsEntries) {
  // Same name, different family list: the cached entry's profile token
  // no longer matches, so the old composition can never be served under
  // the new definition — even though every slice hash is unchanged.
  auto engine = synthetic_engine(3);
  engine->internals().register_profile({"tour", {"ByAuthor"}});
  auto server = engine->open_concurrent();
  const std::string page =
      navsep::core::default_href_for(engine->structure().members().front().node_id);
  ASSERT_TRUE(server->get(page, "tour").ok());
  const serve::ConcurrentServer::Stats warmed = server->stats();

  engine->internals().register_profile({"tour", {"ByMovement"}});
  site::Response swapped = server->get(page, "tour");
  ASSERT_TRUE(swapped.ok());
  serve::ConcurrentServer::Stats after = server->stats();
  EXPECT_EQ(after.overlay_hits, warmed.overlay_hits);
  EXPECT_EQ(after.overlay_stale_renders, warmed.overlay_stale_renders + 1);
  EXPECT_EQ(*swapped.body,
            profile_oracle(*engine, {"tour", {"ByMovement"}}).at(page));
}

TEST(OverlayCache, ProfileRegistrationAloneInvalidatesNothing) {
  auto engine = paper_engine();
  engine->internals().register_profile({"tour", {"ByAuthor"}});
  auto server = engine->open_concurrent();
  ASSERT_TRUE(server->get("guitar.html", "tour").ok());
  const serve::ConcurrentServer::Stats warmed = server->stats();

  // Registering an unrelated profile publishes a new epoch, but the
  // tour entry's content handles are untouched: still a hit.
  engine->internals().register_profile({"curator", {"ByMovement"}});
  ASSERT_TRUE(server->get("guitar.html", "tour").ok());
  serve::ConcurrentServer::Stats after = server->stats();
  EXPECT_GT(after.epoch, warmed.epoch);
  EXPECT_EQ(after.overlay_renders, warmed.overlay_renders);
  EXPECT_EQ(after.overlay_hits, warmed.overlay_hits + 1);
}

TEST(OverlayCache, RetiredPageStops404sAndDropsItsEntry) {
  auto engine = synthetic_engine(3);
  engine->internals().register_profile({"tour", {"ByAuthor"}});
  auto server = engine->open_concurrent();

  const std::string victim_node =
      engine->structure().members().back().node_id;
  const std::string victim_path =
      navsep::core::default_href_for(victim_node);
  ASSERT_TRUE(server->get(victim_path, "tour").ok());

  std::vector<hm::Member> members = engine->structure().members();
  members.pop_back();
  (void)engine->internals().set_access_structure(
      hm::make_access_structure(AccessStructureKind::Index,
                                engine->structure().name(), members));
  EXPECT_FALSE(server->get(victim_path, "tour").ok());
  EXPECT_FALSE(server->get(victim_path, "tour").ok());
  serve::ConcurrentServer::Stats s = server->stats();
  EXPECT_EQ(s.overlay_not_found, 2u);
}

// --- the profile-mix workload -------------------------------------------------

TEST(ProfileMixWorkload, DrivesProfiledSessionsWithoutFailures) {
  auto engine = synthetic_engine(4);
  register_standard_profiles(*engine);
  serve::Workload workload(*engine);
  auto server = engine->open_concurrent();

  serve::WorkloadOptions options;
  options.threads = 4;
  options.steps_per_session = 64;
  options.behaviors = {serve::Behavior::ProfileMix};
  serve::WorkloadResult result = workload.run(*server, options);

  EXPECT_EQ(result.sessions, 4u);
  EXPECT_EQ(result.failures, 0u);
  ASSERT_EQ(result.by_behavior.size(), 1u);
  EXPECT_EQ(result.by_behavior.front().behavior,
            serve::Behavior::ProfileMix);
  EXPECT_EQ(serve::to_string(serve::Behavior::ProfileMix), "profile_mix");
  serve::ConcurrentServer::Stats s = server->stats();
  EXPECT_EQ(s.overlay_requests, result.requests);
  EXPECT_GT(s.overlay_hits, 0u);  // repeat visits hit the overlay cache
  // Overlay entries are per (profile, page): bounded by both tables.
  EXPECT_GT(s.overlay_entries, 0u);

  // Without registered profiles the behavior degrades to base traffic.
  auto bare = synthetic_engine(2);
  serve::Workload bare_workload(*bare);
  serve::WorkloadResult bare_result = bare_workload.run(options);
  EXPECT_EQ(bare_result.failures, 0u);
  EXPECT_GT(bare_result.requests, 0u);
}

// --- the TSan stress: profiled readers vs a family-editing writer -------------

// Per-profile oracle bytes are captured single-threaded for two family
// states; readers then hammer profile-scoped GETs while the writer
// ping-pongs the family between the states (and occasionally rebuilds).
// Every body any reader sees must match state A or state B for its
// (profile, path) — late composition must never serve a torn mix.
TEST(OverlayStress, ProfiledReadersSeeOnlyOracleBytesUnderFamilyEdits) {
  auto engine = synthetic_engine(3);
  const std::vector<nav::Profile> profiles =
      register_standard_profiles(*engine);

  // Two absolute orderings of the first ByAuthor context, so the writer
  // can ping-pong between exactly two authored states.
  std::vector<std::string> ids_a;
  for (const hm::ContextFamily& family : engine->context_families()) {
    if (family.name() == "ByAuthor") ids_a = family.contexts().front().node_ids();
  }
  ASSERT_GE(ids_a.size(), 2u);
  std::vector<std::string> ids_b = ids_a;
  std::reverse(ids_b.begin(), ids_b.end());
  auto set_ids = [](std::vector<std::string> ids) {
    return [ids = std::move(ids)](hm::ContextFamily& family) {
      std::vector<hm::NavigationalContext> contexts = family.contexts();
      contexts.front() = hm::NavigationalContext(
          contexts.front().family(), contexts.front().name(), ids);
      family.replace_contexts(std::move(contexts));
    };
  };

  using ProfileBytes = std::map<std::string, std::map<std::string, std::string>>;
  auto capture = [&] {
    ProfileBytes out;
    for (const nav::Profile& profile : profiles) {
      out[profile.name] = profile_oracle(*engine, profile);
    }
    return out;
  };
  const ProfileBytes oracle_a = capture();  // state A: the derived order
  (void)engine->internals().edit_context_family("ByAuthor", set_ids(ids_b));
  const ProfileBytes oracle_b = capture();
  (void)engine->internals().edit_context_family("ByAuthor", set_ids(ids_a));

  auto server = engine->open_concurrent(8);
  std::vector<std::string> paths;
  for (const auto& [path, _] : oracle_a.begin()->second) {
    if (path.size() > 5 && path.rfind(".html") == path.size() - 5) {
      paths.push_back(path);
    }
  }

  std::atomic<bool> done{false};
  std::atomic<std::size_t> reads{0};
  std::atomic<std::size_t> torn{0};
  constexpr std::size_t kReaders = 4;
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (std::size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      const nav::Profile& profile = profiles[r % profiles.size()];
      const auto& a = oracle_a.at(profile.name);
      const auto& b = oracle_b.at(profile.name);
      std::size_t i = r;
      while (!done.load(std::memory_order_acquire)) {
        const std::string& path = paths[i++ % paths.size()];
        site::Response resp = server->get(path, profile.name);
        if (!resp.ok()) continue;  // page retiring mid-flight: not here
        reads.fetch_add(1, std::memory_order_relaxed);
        const std::string& body = *resp.body;
        auto ia = a.find(path);
        auto ib = b.find(path);
        const bool matches = (ia != a.end() && body == ia->second) ||
                             (ib != b.end() && body == ib->second);
        if (!matches) torn.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  constexpr std::size_t kWrites = 32;
  for (std::size_t w = 0; w < kWrites; ++w) {
    (void)engine->internals().edit_context_family(
        "ByAuthor", set_ids(w % 2 == 0 ? ids_b : ids_a));
    if (w % 8 == 7) engine->internals().rebuild();
    std::this_thread::yield();
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_GT(reads.load(), 0u);
  EXPECT_EQ(torn.load(), 0u);

  // Final convergence per profile: pin the family back to state A.
  (void)engine->internals().edit_context_family("ByAuthor", set_ids(ids_a));
  for (const nav::Profile& profile : profiles) {
    for (const auto& [path, bytes] : oracle_a.at(profile.name)) {
      site::Response resp = server->get(path, profile.name);
      ASSERT_TRUE(resp.ok()) << profile.name << " " << path;
      EXPECT_EQ(*resp.body, bytes) << profile.name << " " << path;
    }
  }
}

// Invalidation precision under a concurrent editing writer (TSan-watched
// like the stress above): readers pinned to a profile EXCLUDING the
// edited family hammer profile-scoped GETs while the writer ping-pongs
// that family. Not one of their cached entries may retire — every body
// is the single pre-captured oracle, and overlay_stale_renders stays 0
// across every epoch the writer publishes.
TEST(OverlayStress, ExcludedProfileNeverLosesEntriesUnderFamilyEdits) {
  auto engine = synthetic_engine(3);
  engine->internals().register_profile({"curator", {"ByMovement"}});
  const nav::Profile curator{"curator", {"ByMovement"}};
  const std::map<std::string, std::string> oracle =
      profile_oracle(*engine, curator);
  auto server = engine->open_concurrent(8);

  std::vector<std::string> paths = html_pages(*engine);
  // Warm every entry before the writer starts so the run measures
  // survival, not first-touch renders.
  for (const std::string& path : paths) {
    ASSERT_TRUE(server->get(path, "curator").ok()) << path;
  }
  const serve::ConcurrentServer::Stats warmed = server->stats();
  EXPECT_EQ(warmed.overlay_renders, paths.size());

  std::atomic<bool> done{false};
  std::atomic<std::size_t> torn{0};
  constexpr std::size_t kReaders = 4;
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (std::size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      std::size_t i = r;
      while (!done.load(std::memory_order_acquire)) {
        const std::string& path = paths[i++ % paths.size()];
        site::Response resp = server->get(path, "curator");
        if (!resp.ok() || *resp.body != oracle.at(path)) {
          torn.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  auto flip = [](hm::ContextFamily& family) {
    std::vector<hm::NavigationalContext> contexts = family.contexts();
    std::vector<std::string> ids = contexts.front().node_ids();
    std::reverse(ids.begin(), ids.end());
    contexts.front() = hm::NavigationalContext(
        contexts.front().family(), contexts.front().name(), std::move(ids));
    family.replace_contexts(std::move(contexts));
  };
  constexpr std::size_t kWrites = 24;
  for (std::size_t w = 0; w < kWrites; ++w) {
    nav::RebuildReport report =
        engine->internals().edit_context_family("ByAuthor", flip);
    EXPECT_EQ(report.pages_rewoven, 0u);
    std::this_thread::yield();
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(torn.load(), 0u);
  serve::ConcurrentServer::Stats after = server->stats();
  EXPECT_GT(after.epoch, warmed.epoch);
  // Zero retirements: every read after warm-up was a hit on the entry
  // composed before the writer ever ran.
  EXPECT_EQ(after.overlay_stale_renders, 0u);
  EXPECT_EQ(after.overlay_renders, warmed.overlay_renders);
  EXPECT_EQ(after.overlay_evicted, 0u);
}

}  // namespace

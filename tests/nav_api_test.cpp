// Tests for the navsep::nav façade: the SitePipeline builder, the
// role-segregated interfaces (Navigating / SessionView / EngineInternals),
// the Browser adapter equivalence, and the per-source arc index.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>

#include "nav/pipeline.hpp"
#include "xml/parser.hpp"

namespace hm = navsep::hypermedia;
namespace nav = navsep::nav;
namespace site = navsep::site;
namespace xlink = navsep::xlink;
using navsep::museum::MuseumWorld;

namespace {

std::unique_ptr<nav::Engine> paper_engine() {
  return nav::SitePipeline()
      .paper_museum()
      .schema()
      .access(hm::AccessStructureKind::IndexedGuidedTour, "picasso")
      .weave()
      .serve();
}

}  // namespace

// --- pipeline round-trip -------------------------------------------------------

TEST(SitePipeline, ServesTheSeparatedSiteEndToEnd) {
  auto engine = paper_engine();

  // Authored + derived artifacts all present.
  EXPECT_TRUE(engine->site().contains("links.xml"));
  EXPECT_TRUE(engine->site().contains("presentation.xsl"));
  EXPECT_TRUE(engine->site().contains("museum.css"));
  EXPECT_TRUE(engine->site().contains("data/picasso.xml"));
  EXPECT_TRUE(engine->site().contains("guitar.html"));

  // The arc table matches the authored linkbase (IGT over 3 paintings:
  // 2N index/up + 2(N-1) tour = 10 arcs).
  EXPECT_EQ(engine->internals().arc_table().arcs().size(), 10u);

  // And the served site is walkable through the end-user role.
  nav::Navigating& browser = engine->navigator();
  ASSERT_TRUE(browser.navigate("guitar.html"));
  ASSERT_TRUE(browser.follow_role("next"));
  EXPECT_NE(browser.location().find("guernica.html"), std::string::npos);
  ASSERT_TRUE(browser.follow_role("next"));
  EXPECT_FALSE(browser.follow_role("next"));  // end of tour
  ASSERT_TRUE(browser.follow_role("up"));
  EXPECT_NE(browser.location().find("index-paintings-of-picasso.html"),
            std::string::npos);
  EXPECT_EQ(engine->session().pages_visited(), 4u);
}

TEST(SitePipeline, BuildProducesTheSameArtifactsAsHandWiring) {
  auto world = MuseumWorld::paper_instance();
  hm::NavigationalModel model = world->derive_navigation();
  auto igt = world->paintings_structure(
      hm::AccessStructureKind::IndexedGuidedTour, model, "picasso");
  site::VirtualSite by_hand = site::build_separated_site(*world, *igt);

  site::VirtualSite by_pipeline =
      nav::SitePipeline()
          .conceptual(*world)
          .access(hm::AccessStructureKind::IndexedGuidedTour, "picasso")
          .weave()
          .build();

  ASSERT_EQ(by_pipeline.size(), by_hand.size());
  for (const std::string& path : by_hand.paths()) {
    ASSERT_NE(by_pipeline.get(path), nullptr) << path;
    EXPECT_EQ(*by_pipeline.get(path), *by_hand.get(path)) << path;
  }
}

TEST(SitePipeline, TangledModeBakesNavigationIn) {
  auto engine = nav::SitePipeline()
                    .paper_museum()
                    .access(hm::AccessStructureKind::IndexedGuidedTour,
                            "picasso")
                    .tangled()
                    .serve();
  EXPECT_FALSE(engine->site().contains("links.xml"));
  EXPECT_TRUE(engine->site().contains("guitar.html"));
  EXPECT_EQ(engine->mode(), nav::WeaveMode::Tangled);
  // No linkbase -> no arcs for the browser; pages still serve.
  EXPECT_TRUE(engine->internals().arc_table().arcs().empty());
  EXPECT_TRUE(engine->navigator().navigate("guitar.html"));
  EXPECT_TRUE(engine->navigator().links().empty());
}

TEST(SitePipeline, ContextFamiliesAreAuthoredAndOwned) {
  auto engine =
      nav::SitePipeline()
          .conceptual(navsep::museum::SyntheticSpec{.painters = 2,
                                                    .paintings_per_painter = 3,
                                                    .movements = 1,
                                                    .seed = 5})
          .access(hm::AccessStructureKind::IndexedGuidedTour)
          .contexts({"ByAuthor", "ByMovement"})
          .weave()
          .serve();

  ASSERT_EQ(engine->context_families().size(), 2u);
  EXPECT_TRUE(engine->site().contains("links-byauthor.xml"));
  EXPECT_TRUE(engine->site().contains("links-bymovement.xml"));

  // The paper's §2 scenario through an engine session: same node, two
  // routes, different successors.
  site::NavigationSession session = engine->open_session();
  ASSERT_TRUE(session.enter_context("ByAuthor", "painter-0",
                                    "painter-0-work-2"));
  EXPECT_FALSE(session.next());  // last work by this author
  ASSERT_TRUE(session.visit("painter-0-work-2"));
  ASSERT_TRUE(session.through("ByMovement"));
  ASSERT_TRUE(session.next());
  EXPECT_EQ(session.current()->id(), "painter-1-work-0");
}

TEST(SitePipeline, MisconfigurationThrowsAtTheTerminal) {
  EXPECT_THROW(nav::SitePipeline().serve(), navsep::SemanticError);
  EXPECT_THROW(nav::SitePipeline().paper_museum().serve(),
               navsep::SemanticError);
  EXPECT_THROW(nav::SitePipeline()
                   .paper_museum()
                   .access(hm::AccessStructureKind::Index)
                   .contexts({"ByZodiacSign"})
                   .serve(),
               navsep::SemanticError);
  EXPECT_THROW(nav::SitePipeline().schema(), navsep::SemanticError);
}

TEST(SitePipeline, SlashlessBaseStillLinksUp) {
  auto engine = nav::SitePipeline()
                    .paper_museum()
                    .access(hm::AccessStructureKind::IndexedGuidedTour,
                            "picasso")
                    .weave()
                    .serve("http://museum.example/site");  // no trailing '/'
  EXPECT_EQ(engine->server().base(), "http://museum.example/site/");
  ASSERT_TRUE(engine->navigator().navigate("guitar.html"));
  EXPECT_FALSE(engine->navigator().links().empty());
  EXPECT_TRUE(engine->navigator().follow_role("next"));
}

TEST(SitePipeline, ReplacingTheConceptualModelInvalidatesTheSchema) {
  nav::SitePipeline pipeline;
  pipeline.paper_museum().schema();
  // Swapping the world must drop the model derived from the old one —
  // the engine's model has to view the new world's entities.
  pipeline.conceptual(navsep::museum::SyntheticSpec{.painters = 1,
                                                    .paintings_per_painter = 2,
                                                    .movements = 1,
                                                    .seed = 1});
  auto engine = pipeline.access(hm::AccessStructureKind::Index).serve();
  EXPECT_EQ(engine->navigation().node("guitar"), nullptr);
  EXPECT_NE(engine->navigation().node("painter-0-work-0"), nullptr);
}

TEST(SitePipeline, TerminalCallsConsumeThePipeline) {
  nav::SitePipeline pipeline;
  pipeline.paper_museum().access(hm::AccessStructureKind::Index, "picasso");
  site::VirtualSite first = pipeline.build();
  EXPECT_TRUE(first.contains("links.xml"));
  // The world moved into the first terminal; a second one must throw,
  // not dereference it.
  EXPECT_THROW(pipeline.serve(), navsep::SemanticError);
  EXPECT_THROW(pipeline.build(), navsep::SemanticError);
}

// Rebuilding through the same weaver (the §5 migration scenario) must
// swap the navigation aspect, not stack a second one.
TEST(SitePipeline, WeaverReuseAcrossBuildsDoesNotStackAspects) {
  auto world = MuseumWorld::paper_instance();
  hm::NavigationalModel model = world->derive_navigation();
  auto index = world->paintings_structure(hm::AccessStructureKind::Index,
                                          model, "picasso");
  auto igt = world->paintings_structure(
      hm::AccessStructureKind::IndexedGuidedTour, model, "picasso");

  navsep::aop::Weaver weaver;
  site::SiteBuildOptions options;
  options.weaver = &weaver;
  site::VirtualSite before = site::build_separated_site(*world, *index,
                                                        options);
  site::VirtualSite after = site::build_separated_site(*world, *igt,
                                                       options);

  EXPECT_EQ(weaver.aspect_names().size(), 1u);
  const std::string& guitar = *after.get("guitar.html");
  // One navigation container, carrying the IGT arcs (not stale Index ones).
  EXPECT_EQ(guitar.find("class=\"navigation\""),
            guitar.rfind("class=\"navigation\""));
  EXPECT_NE(guitar.find("nav-next"), std::string::npos);
}

// replace_aspect must keep the aspect's slot in the execution order, not
// move it behind aspects registered later.
TEST(RoleInterfaces, ReplaceAspectPreservesRegistrationOrder) {
  navsep::aop::Weaver weaver;
  std::vector<std::string> order;
  auto make = [&](const std::string& name) {
    auto aspect = std::make_shared<navsep::aop::Aspect>(name);
    aspect->before("custom(*)", [&order, name](navsep::aop::JoinPointContext&) {
      order.push_back(name);
    });
    return aspect;
  };
  weaver.register_aspect(make("first"));
  weaver.register_aspect(make("second"));
  weaver.replace_aspect(make("first"));  // swap in place

  navsep::aop::JoinPoint jp;
  jp.kind = navsep::aop::JoinPointKind::Custom;
  jp.subject = "x";
  weaver.execute(jp, [] {});
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "first");
  EXPECT_EQ(order[1], "second");
}

// --- role interfaces -----------------------------------------------------------

// The adapter must behave exactly like driving the Browser directly over
// an identically built site (the old hand wiring).
TEST(RoleInterfaces, BrowserThroughNavigatingEquivalence) {
  auto engine = paper_engine();

  // Hand-wired reference: same world, same structure, same base.
  auto world = MuseumWorld::paper_instance();
  hm::NavigationalModel model = world->derive_navigation();
  auto igt = world->paintings_structure(
      hm::AccessStructureKind::IndexedGuidedTour, model, "picasso");
  site::VirtualSite built = site::build_separated_site(*world, *igt);
  navsep::xml::ParseOptions opts;
  opts.base_uri = "http://museum.example/site/links.xml";
  auto linkbase = navsep::xml::parse(*built.get("links.xml"), opts);
  xlink::TraversalGraph graph = xlink::TraversalGraph::from_linkbase(*linkbase);
  site::HypermediaServer server(built, "http://museum.example/site/");
  site::Browser reference(server, graph);

  nav::Navigating& facade = engine->navigator();
  auto step = [&](auto&& op) {
    bool a = op(facade);
    bool b = op(reference);
    EXPECT_EQ(a, b);
    EXPECT_EQ(facade.location(), reference.location());
    EXPECT_EQ(facade.links().size(), reference.links().size());
  };

  step([](auto& b) { return b.navigate("guitar.html"); });
  step([](auto& b) { return b.follow_role("next"); });
  step([](auto& b) { return b.follow_role("nav:next"); });  // prefixed form
  step([](auto& b) { return b.follow_role("missing-role"); });
  step([](auto& b) { return b.back(); });
  step([](auto& b) { return b.forward(); });
  step([](auto& b) { return b.navigate("ghost.html"); });
  step([](auto& b) { return b.follow_role("up"); });

  // Page bodies match too (same woven artifacts).
  ASSERT_NE(facade.page(), nullptr);
  EXPECT_EQ(*facade.page(), *reference.page());

  // SessionView agrees with the concrete browser's bookkeeping.
  const nav::SessionView& view = engine->session();
  EXPECT_EQ(view.history().size(), reference.history().size());
  EXPECT_EQ(view.pages_visited(), reference.pages_visited());
  EXPECT_EQ(view.requests(), engine->server().requests());
  EXPECT_EQ(view.misses(), engine->server().misses());
}

TEST(RoleInterfaces, IndependentBrowsersDoNotShareState) {
  auto engine = paper_engine();
  engine->navigator().navigate("guitar.html");
  site::Browser other = engine->open_browser();
  EXPECT_TRUE(other.location().empty());
  ASSERT_TRUE(other.navigate("guernica.html"));
  EXPECT_NE(engine->navigator().location(),
            other.location());
  EXPECT_EQ(engine->session().history().size(), 1u);
}

TEST(RoleInterfaces, EngineInternalsRebuildRewavesWithNewAspects) {
  auto engine = paper_engine();

  // Warm the response cache with the original page.
  ASSERT_TRUE(engine->navigator().navigate("guitar.html"));
  std::string before = *engine->navigator().page();
  EXPECT_EQ(before.find("woven-extra"), std::string::npos);

  // Framework role: add an aspect, re-weave, serve fresh bytes.
  auto extra = std::make_shared<navsep::aop::Aspect>("extra", 1);
  extra->after("compose(*)", [](navsep::aop::JoinPointContext& ctx) {
    auto* body = ctx.payload_as<navsep::xml::Element*>();
    if (body == nullptr || *body == nullptr) return;
    (*body)->append_element("div").set_attribute("class", "woven-extra");
  });
  engine->internals().weaver().register_aspect(extra);
  engine->internals().rebuild();

  ASSERT_TRUE(engine->navigator().navigate("guitar.html"));
  EXPECT_NE(engine->navigator().page()->find("woven-extra"),
            std::string::npos);

  // compose_page goes through the same weaver.
  EXPECT_NE(engine->compose_page("guitar").find("woven-extra"),
            std::string::npos);
  EXPECT_THROW(engine->compose_page("nonexistent-node"),
               navsep::ResolutionError);
}

// --- per-source arc index ------------------------------------------------------

// outgoing() must agree, in content AND order, with a linear scan of the
// arc list in linkbase document order — the contract the per-source index
// has to preserve.
TEST(ArcIndex, OutgoingMatchesLinkbaseOrder) {
  auto engine = nav::SitePipeline()
                    .conceptual(navsep::museum::SyntheticSpec{
                        .painters = 3,
                        .paintings_per_painter = 4,
                        .movements = 2,
                        .seed = 99})
                    .access(hm::AccessStructureKind::IndexedGuidedTour)
                    .contexts({"ByAuthor"})
                    .weave()
                    .serve();
  const xlink::TraversalGraph& graph = engine->internals().arc_table();
  ASSERT_GT(graph.arcs().size(), 0u);

  for (const std::string& uri : graph.resource_uris()) {
    std::vector<const xlink::Arc*> scanned;
    for (const xlink::Arc& arc : graph.arcs()) {
      if (!arc.from.uri.empty() &&
          xlink::normalize_ref(arc.from.uri) == uri) {
        scanned.push_back(&arc);
      }
    }
    EXPECT_EQ(graph.outgoing(uri), scanned) << uri;
  }
}

TEST(ArcIndex, RoleFilteredLookupAndIndexAccessor) {
  auto engine = paper_engine();
  const xlink::TraversalGraph& graph = engine->internals().arc_table();
  std::string guitar =
      xlink::normalize_ref("http://museum.example/site/guitar.html");

  auto next_arcs = graph.outgoing_with_role(guitar, "nav:next");
  ASSERT_EQ(next_arcs.size(), 1u);
  EXPECT_NE(next_arcs[0]->to.uri.find("guernica.html"), std::string::npos);

  const std::vector<std::size_t>* indices = graph.outgoing_indices(guitar);
  ASSERT_NE(indices, nullptr);
  EXPECT_EQ(indices->size(), graph.outgoing(guitar).size());
  for (std::size_t i = 1; i < indices->size(); ++i) {
    EXPECT_LT((*indices)[i - 1], (*indices)[i]);  // document order
  }
  EXPECT_EQ(graph.outgoing_indices("http://nowhere.example/"), nullptr);
}

// --- server response cache -----------------------------------------------------

TEST(ServerCache, RepeatsAreServedFromTheCache) {
  auto engine = paper_engine();
  const site::HypermediaServer& server = engine->server();

  site::Response first = server.get("guitar.html");
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(server.cache_hits(), 0u);

  site::Response second = server.get("guitar.html");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(server.cache_hits(), 1u);
  EXPECT_EQ(second.body, first.body);
  EXPECT_EQ(second.content_type, first.content_type);

  // 404s are never cached: each miss is resolved and counted anew, and
  // probing strings cannot grow the cache.
  EXPECT_FALSE(server.get("ghost.html").ok());
  EXPECT_FALSE(server.get("ghost.html").ok());
  EXPECT_EQ(server.misses(), 2u);
  EXPECT_EQ(server.requests(), 4u);
  EXPECT_EQ(server.cache_size(), 1u);

  // Fragments stay out of the cache key.
  EXPECT_TRUE(server.get("guitar.html#anchor").ok());
  EXPECT_EQ(server.cache_hits(), 2u);
  EXPECT_EQ(server.cache_size(), 1u);

  engine->internals().clear_response_cache();
  EXPECT_EQ(server.cache_size(), 0u);
}

TEST(ServerCache, CountersSurviveConcurrentReaders) {
  auto engine = paper_engine();
  const site::HypermediaServer& server = engine->server();
  constexpr int kThreads = 4;
  constexpr int kGetsPerThread = 250;

  std::atomic<int> oks{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&server, &oks, t] {
      for (int i = 0; i < kGetsPerThread; ++i) {
        const char* path = (i + t) % 2 == 0 ? "guitar.html" : "ghost.html";
        if (server.get(path).ok()) {
          oks.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(server.requests(), static_cast<std::size_t>(kThreads) *
                                   kGetsPerThread);
  EXPECT_EQ(server.misses(), static_cast<std::size_t>(kThreads) *
                                 kGetsPerThread / 2);
  EXPECT_EQ(oks.load(), kThreads * kGetsPerThread / 2);
}

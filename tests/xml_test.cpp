// Unit + property tests for the XML DOM, parser and serializer.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "xml/dom.hpp"
#include "xml/parser.hpp"
#include "xml/serializer.hpp"

namespace xml = navsep::xml;

namespace {
xml::ParseOptions keep_ws() {
  xml::ParseOptions o;
  o.strip_insignificant_whitespace = false;
  return o;
}
}  // namespace

TEST(XmlParse, MinimalDocument) {
  auto doc = xml::parse("<root/>");
  ASSERT_NE(doc->root(), nullptr);
  EXPECT_EQ(doc->root()->name().local, "root");
  EXPECT_TRUE(doc->root()->children().empty());
}

TEST(XmlParse, NestedElementsAndText) {
  auto doc = xml::parse("<a><b>hello</b><c>world</c></a>");
  const xml::Element* a = doc->root();
  ASSERT_EQ(a->child_elements().size(), 2u);
  EXPECT_EQ(a->child("b")->own_text(), "hello");
  EXPECT_EQ(a->child("c")->own_text(), "world");
  EXPECT_EQ(a->string_value(), "helloworld");
}

TEST(XmlParse, AttributesWithBothQuoteStyles) {
  auto doc = xml::parse(R"(<p a="1" b='two'/>)");
  EXPECT_EQ(doc->root()->attribute("a").value(), "1");
  EXPECT_EQ(doc->root()->attribute("b").value(), "two");
  EXPECT_FALSE(doc->root()->attribute("missing").has_value());
}

TEST(XmlParse, PredefinedEntitiesExpand) {
  auto doc = xml::parse("<t a='&lt;&amp;&gt;'>&quot;&apos;</t>");
  EXPECT_EQ(doc->root()->attribute("a").value(), "<&>");
  EXPECT_EQ(doc->root()->own_text(), "\"'");
}

TEST(XmlParse, NumericCharacterReferences) {
  auto doc = xml::parse("<t>&#65;&#x42;&#xE9;</t>");
  EXPECT_EQ(doc->root()->own_text(), "AB\xC3\xA9");  // 'A', 'B', e-acute UTF-8
}

TEST(XmlParse, UnknownEntityIsAnError) {
  EXPECT_THROW(xml::parse("<t>&nbsp;</t>"), navsep::ParseError);
}

TEST(XmlParse, CdataIsLiteralText) {
  auto doc = xml::parse("<t><![CDATA[<not-a-tag> & friends]]></t>");
  EXPECT_EQ(doc->root()->own_text(), "<not-a-tag> & friends");
}

TEST(XmlParse, CommentsAndPis) {
  auto doc = xml::parse(
      "<?xml version=\"1.0\"?><!-- head --><?style sheet?><r><!-- in --></r>",
      keep_ws());
  // Prolog: comment + PI before the root.
  EXPECT_EQ(doc->children().size(), 3u);
  const xml::Element* r = doc->root();
  ASSERT_EQ(r->children().size(), 1u);
  EXPECT_EQ(r->children()[0]->type(), xml::NodeType::Comment);
}

TEST(XmlParse, DoctypeIsSkipped) {
  auto doc = xml::parse("<!DOCTYPE html [<!ENTITY x 'y'>]><r/>");
  EXPECT_EQ(doc->root()->name().local, "r");
}

TEST(XmlParse, MismatchedTagsThrow) {
  EXPECT_THROW(xml::parse("<a><b></a></b>"), navsep::ParseError);
}

TEST(XmlParse, DuplicateAttributeThrows) {
  EXPECT_THROW(xml::parse("<a x='1' x='2'/>"), navsep::ParseError);
}

TEST(XmlParse, ContentAfterRootThrows) {
  EXPECT_THROW(xml::parse("<a/><b/>"), navsep::ParseError);
  EXPECT_NO_THROW(xml::parse("<a/><!-- trailing comment -->"));
}

TEST(XmlParse, UnterminatedElementThrows) {
  EXPECT_THROW(xml::parse("<a><b>"), navsep::ParseError);
}

TEST(XmlParse, ErrorsCarryLineAndColumn) {
  try {
    (void)xml::parse("<a>\n  <b x='1' x='2'/>\n</a>");
    FAIL() << "expected ParseError";
  } catch (const navsep::ParseError& e) {
    EXPECT_EQ(e.position().line, 2u);
  }
}

TEST(XmlParse, WhitespaceStrippingIsOptional) {
  const char* text = "<a>\n  <b/>\n</a>";
  auto stripped = xml::parse(text);
  EXPECT_EQ(stripped->root()->children().size(), 1u);
  auto kept = xml::parse(text, keep_ws());
  EXPECT_EQ(kept->root()->children().size(), 3u);
}

TEST(XmlNamespaces, DefaultAndPrefixed) {
  auto doc = xml::parse(
      R"(<r xmlns="urn:default" xmlns:x="urn:x"><x:a/><b/></r>)");
  const xml::Element* r = doc->root();
  EXPECT_EQ(r->name().ns_uri, "urn:default");
  EXPECT_EQ(r->child("a")->name().ns_uri, "urn:x");
  EXPECT_EQ(r->child("b")->name().ns_uri, "urn:default");
}

TEST(XmlNamespaces, AttributesDoNotInheritDefaultNamespace) {
  auto doc = xml::parse(R"(<r xmlns="urn:d" a="1" />)");
  EXPECT_EQ(doc->root()->attributes()[1].name.ns_uri, "");
}

TEST(XmlNamespaces, PrefixedAttributeResolves) {
  auto doc = xml::parse(
      R"(<r xmlns:xlink="http://www.w3.org/1999/xlink" xlink:href="a.xml"/>)");
  auto href =
      doc->root()->attribute_ns("http://www.w3.org/1999/xlink", "href");
  ASSERT_TRUE(href.has_value());
  EXPECT_EQ(*href, "a.xml");
}

TEST(XmlNamespaces, UndeclaredPrefixThrows) {
  EXPECT_THROW(xml::parse("<x:a/>"), navsep::ParseError);
}

TEST(XmlNamespaces, DeclarationScopeEnds) {
  auto doc = xml::parse("<r><a xmlns:p='urn:p'><p:i/></a></r>");
  EXPECT_EQ(doc->root()
                ->child("a")
                ->child("i")
                ->name()
                .ns_uri,
            "urn:p");
  // Outside <a>, prefix p is gone:
  EXPECT_THROW(xml::parse("<r><a xmlns:p='urn:p'/><p:i/></r>"),
               navsep::ParseError);
}

TEST(XmlNamespaces, ResolvePrefixWalksAncestors) {
  auto doc = xml::parse("<r xmlns:p='urn:p'><a><b/></a></r>");
  const xml::Element* b = doc->root()->child("a")->child("b");
  EXPECT_EQ(b->resolve_prefix("p").value(), "urn:p");
  EXPECT_FALSE(b->resolve_prefix("q").has_value());
  EXPECT_EQ(b->resolve_prefix("xml").value(),
            "http://www.w3.org/XML/1998/namespace");
}

TEST(XmlDom, BuildTreeProgrammatically) {
  xml::Document doc;
  xml::Element& root = doc.set_root(xml::QName("museum"));
  xml::Element& p = root.append_element("painting");
  p.set_attribute("id", "guitar");
  p.append_text("The Guitar");
  EXPECT_EQ(doc.root()->child("painting")->attribute("id").value(), "guitar");
  EXPECT_EQ(doc.root()->string_value(), "The Guitar");
}

TEST(XmlDom, SetAttributeReplacesValue) {
  xml::Element e{xml::QName("x")};
  e.set_attribute("a", "1");
  e.set_attribute("a", "2");
  EXPECT_EQ(e.attributes().size(), 1u);
  EXPECT_EQ(e.attribute("a").value(), "2");
}

TEST(XmlDom, RemoveAttribute) {
  xml::Element e{xml::QName("x")};
  e.set_attribute("a", "1");
  e.remove_attribute("a");
  EXPECT_FALSE(e.attribute("a").has_value());
}

TEST(XmlDom, InsertAndRemoveChildren) {
  xml::Element e{xml::QName("list")};
  e.append_element("c");
  e.insert(0, std::make_unique<xml::Element>(xml::QName("a")));
  e.insert(1, std::make_unique<xml::Element>(xml::QName("b")));
  auto kids = e.child_elements();
  ASSERT_EQ(kids.size(), 3u);
  EXPECT_EQ(kids[0]->name().local, "a");
  EXPECT_EQ(kids[1]->name().local, "b");
  auto removed = e.remove_child(1);
  EXPECT_EQ(removed->as_element()->name().local, "b");
  EXPECT_EQ(removed->parent(), nullptr);
  EXPECT_EQ(e.child_elements().size(), 2u);
}

TEST(XmlDom, CloneIsDeepAndDetached) {
  auto doc = xml::parse("<a x='1'><b><c>t</c></b></a>");
  auto copy = doc->root()->clone();
  EXPECT_EQ(copy->parent(), nullptr);
  EXPECT_EQ(copy->attribute("x").value(), "1");
  EXPECT_EQ(copy->child("b")->child("c")->own_text(), "t");
  // Mutating the copy leaves the original alone.
  copy->child("b")->clear_children();
  EXPECT_EQ(doc->root()->child("b")->child_elements().size(), 1u);
}

TEST(XmlDom, ElementByIdFindsPlainAndXmlId) {
  auto doc = xml::parse("<r><a id='one'/><b xml:id='two'/></r>");
  ASSERT_NE(doc->element_by_id("one"), nullptr);
  EXPECT_EQ(doc->element_by_id("one")->name().local, "a");
  ASSERT_NE(doc->element_by_id("two"), nullptr);
  EXPECT_EQ(doc->element_by_id("two")->name().local, "b");
  EXPECT_EQ(doc->element_by_id("three"), nullptr);
}

TEST(XmlDom, ContainsAndSiblingIndex) {
  auto doc = xml::parse("<a><b/><c><d/></c></a>");
  const xml::Element* a = doc->root();
  const xml::Element* c = a->child("c");
  const xml::Element* d = c->child("d");
  EXPECT_TRUE(a->contains(*d));
  EXPECT_FALSE(d->contains(*a));
  EXPECT_TRUE(d->contains(*d));
  EXPECT_EQ(c->sibling_index(), 1u);
}

TEST(XmlDom, DocumentOrderPrecedesDepthFirst) {
  auto doc = xml::parse("<a><b><c/></b><d/></a>");
  const xml::Node* a = doc->root();
  const xml::Node* b = doc->root()->child("b");
  const xml::Node* c = doc->root()->child("b")->child("c");
  const xml::Node* d = doc->root()->child("d");
  EXPECT_TRUE(xml::before_in_document_order(*a, *b));
  EXPECT_TRUE(xml::before_in_document_order(*b, *c));
  EXPECT_TRUE(xml::before_in_document_order(*c, *d));
  EXPECT_FALSE(xml::before_in_document_order(*d, *a));
}

TEST(XmlDom, AttributeNodesOrderBetweenElementAndChildren) {
  auto doc = xml::parse("<a x='1' y='2'><b/></a>");
  const xml::Element* a = doc->root();
  const xml::Node* ax = a->attribute_node(0);
  const xml::Node* ay = a->attribute_node(1);
  const xml::Node* b = a->child("b");
  EXPECT_TRUE(xml::before_in_document_order(*a, *ax));
  EXPECT_TRUE(xml::before_in_document_order(*ax, *ay));
  EXPECT_TRUE(xml::before_in_document_order(*ay, *b));
}

TEST(XmlDom, SortDocumentOrderDeduplicates) {
  auto doc = xml::parse("<a><b/><c/></a>");
  const xml::Node* b = doc->root()->child("b");
  const xml::Node* c = doc->root()->child("c");
  std::vector<const xml::Node*> v{c, b, c, b};
  xml::sort_document_order(v);
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0], b);
  EXPECT_EQ(v[1], c);
}

TEST(XmlSerialize, EscapesSpecials) {
  xml::Document doc;
  auto& r = doc.set_root(xml::QName("r"));
  r.set_attribute("a", "x\"<&>");
  r.append_text("a<b&c>d");
  std::string out = xml::write(doc, {.pretty = false, .declaration = false});
  EXPECT_EQ(out, "<r a=\"x&quot;&lt;&amp;>\">a&lt;b&amp;c&gt;d</r>");
}

TEST(XmlSerialize, PrettyPrintsNestedElements) {
  auto doc = xml::parse("<a><b>t</b><c/></a>");
  std::string out = xml::write(*doc, {.pretty = true, .declaration = false});
  EXPECT_EQ(out, "<a>\n  <b>t</b>\n  <c/>\n</a>\n");
}

// Round-trip property over a corpus of documents.
class XmlRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(XmlRoundTrip, ParseSerializeParseIsStable) {
  xml::ParseOptions opts;
  opts.strip_insignificant_whitespace = false;
  auto doc1 = xml::parse(GetParam(), opts);
  std::string text1 = xml::write(*doc1, {.pretty = false});
  auto doc2 = xml::parse(text1, opts);
  std::string text2 = xml::write(*doc2, {.pretty = false});
  EXPECT_EQ(text1, text2);
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, XmlRoundTrip,
    ::testing::Values(
        "<a/>",
        "<a b='1' c='2'/>",
        "<a>text</a>",
        "<a><b/>middle<c/></a>",
        "<a>&lt;escaped&amp;&gt;</a>",
        "<r xmlns='urn:d' xmlns:p='urn:p'><p:x a='v'/></r>",
        "<a><!-- comment --><?pi data?></a>",
        "<museum><painter id='picasso'><painting id='guitar'>Guitar"
        "</painting></painter></museum>",
        "<t a=\"quote&quot;here\">mixed <b>bold</b> tail</t>"));

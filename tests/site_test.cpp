// Integration tests for the site layer: virtual site building, the
// in-process server, the XLink-consuming browser, and context-aware
// navigation sessions.
#include <gtest/gtest.h>

#include "core/linkbase.hpp"
#include "museum/museum.hpp"
#include "site/browser.hpp"
#include "site/server.hpp"
#include "site/session.hpp"
#include "site/virtual_site.hpp"
#include "xlink/processor.hpp"
#include "xml/parser.hpp"

namespace hm = navsep::hypermedia;
namespace site = navsep::site;
using navsep::museum::MuseumWorld;

namespace {

class SiteTest : public ::testing::Test {
 protected:
  void SetUp() override {
    world_ = MuseumWorld::paper_instance();
    nav_ = std::make_unique<hm::NavigationalModel>(world_->derive_navigation());
    igt_ = world_->paintings_structure(
        hm::AccessStructureKind::IndexedGuidedTour, *nav_, "picasso");
    built_ = site::build_separated_site(*world_, *igt_);
  }

  std::unique_ptr<MuseumWorld> world_;
  std::unique_ptr<hm::NavigationalModel> nav_;
  std::unique_ptr<hm::AccessStructure> igt_;
  site::VirtualSite built_;
};

}  // namespace

// --- virtual site -------------------------------------------------------------

TEST_F(SiteTest, SeparatedSiteContainsAllArtifactKinds) {
  EXPECT_TRUE(built_.contains("links.xml"));
  EXPECT_TRUE(built_.contains("presentation.xsl"));
  EXPECT_TRUE(built_.contains("museum.css"));
  EXPECT_TRUE(built_.contains("data/picasso.xml"));
  EXPECT_TRUE(built_.contains("data/avignon.xml"));
  EXPECT_TRUE(built_.contains("guitar.html"));
  EXPECT_TRUE(built_.contains("index-paintings-of-picasso.html"));
}

TEST_F(SiteTest, TangledSiteHasOnlyPagesAndCss) {
  site::VirtualSite tangled = site::build_tangled_site(*world_, *igt_);
  EXPECT_TRUE(tangled.contains("guitar.html"));
  EXPECT_FALSE(tangled.contains("links.xml"));
  EXPECT_FALSE(tangled.contains("data/picasso.xml"));
  EXPECT_EQ(tangled.size(), 5u);  // 3 paintings + index page + css
}

TEST_F(SiteTest, WovenPagesCarryNavigation) {
  const std::string* guernica = built_.get("guernica.html");
  ASSERT_NE(guernica, nullptr);
  EXPECT_NE(guernica->find("nav-next"), std::string::npos);
  EXPECT_NE(guernica->find("nav-prev"), std::string::npos);
  EXPECT_NE(guernica->find("nav-up"), std::string::npos);
}

TEST_F(SiteTest, SiteLinkbaseParsesAndValidates) {
  auto doc = navsep::xml::parse(*built_.get("links.xml"));
  auto links = navsep::xlink::extract(*doc);
  EXPECT_EQ(links.extended.size(), 1u);
  for (const auto& issue : navsep::xlink::validate(links)) {
    EXPECT_NE(issue.severity, navsep::xlink::Issue::Severity::Error)
        << issue.message;
  }
}

TEST_F(SiteTest, VirtualSiteBookkeeping) {
  site::VirtualSite vs;
  vs.put("a.html", "hello");
  vs.put("b.html", "world!");
  vs.put("a.html", "hi");  // overwrite
  EXPECT_EQ(vs.size(), 2u);
  EXPECT_EQ(vs.total_bytes(), 2u + 6u);
  EXPECT_EQ(*vs.get("a.html"), "hi");
  EXPECT_EQ(vs.get("zzz"), nullptr);
  EXPECT_EQ(vs.paths().size(), 2u);
}

// --- server --------------------------------------------------------------------

TEST_F(SiteTest, ServerServesByPathAndUri) {
  site::HypermediaServer server(built_, "http://museum.example/site/");
  EXPECT_TRUE(server.get("guitar.html").ok());
  EXPECT_TRUE(server.get("http://museum.example/site/guitar.html").ok());
  EXPECT_EQ(server.get("http://museum.example/site/guitar.html").content_type,
            "text/html");
  EXPECT_EQ(server.get("links.xml").content_type, "text/xml");
  EXPECT_EQ(server.get("museum.css").content_type, "text/css");
}

TEST_F(SiteTest, ServerFragmentsIgnoredAndMissesCounted) {
  site::HypermediaServer server(built_, "http://museum.example/site/");
  EXPECT_TRUE(server.get("guitar.html#anchor").ok());
  EXPECT_FALSE(server.get("ghost.html").ok());
  EXPECT_FALSE(server.get("http://elsewhere.example/guitar.html").ok());
  EXPECT_EQ(server.misses(), 2u);
  EXPECT_EQ(server.requests(), 3u);
}

// --- browser ---------------------------------------------------------------------

class BrowserTest : public SiteTest {
 protected:
  void SetUp() override {
    SiteTest::SetUp();
    auto doc = navsep::xml::parse(*built_.get("links.xml"));
    doc->set_base_uri("http://museum.example/site/links.xml");
    graph_ = navsep::xlink::TraversalGraph::from_linkbase(*doc);
    server_ = std::make_unique<site::HypermediaServer>(
        built_, "http://museum.example/site/");
    browser_ = std::make_unique<site::Browser>(*server_, graph_);
  }

  navsep::xlink::TraversalGraph graph_;
  std::unique_ptr<site::HypermediaServer> server_;
  std::unique_ptr<site::Browser> browser_;
};

TEST_F(BrowserTest, NavigateAndReadPage) {
  ASSERT_TRUE(browser_->navigate("guitar.html"));
  ASSERT_NE(browser_->page(), nullptr);
  EXPECT_NE(browser_->page()->find("<h1>The Guitar</h1>"),
            std::string::npos);
  EXPECT_FALSE(browser_->navigate("ghost.html"));
}

TEST_F(BrowserTest, LinksComeFromTheLinkbase) {
  ASSERT_TRUE(browser_->navigate("guernica.html"));
  auto links = browser_->links();
  // IGT middle node: up + next + prev.
  EXPECT_EQ(links.size(), 3u);
}

TEST_F(BrowserTest, FollowRoleWalksTheTour) {
  ASSERT_TRUE(browser_->navigate("guitar.html"));
  ASSERT_TRUE(browser_->follow_role("next"));
  EXPECT_NE(browser_->location().find("guernica.html"), std::string::npos);
  ASSERT_TRUE(browser_->follow_role("next"));
  EXPECT_NE(browser_->location().find("avignon.html"), std::string::npos);
  EXPECT_FALSE(browser_->follow_role("next"));  // end of tour
  ASSERT_TRUE(browser_->follow_role("up"));
  EXPECT_NE(browser_->location().find("index-paintings-of-picasso.html"),
            std::string::npos);
}

TEST_F(BrowserTest, BackAndForward) {
  ASSERT_TRUE(browser_->navigate("guitar.html"));
  ASSERT_TRUE(browser_->follow_role("next"));
  ASSERT_TRUE(browser_->back());
  EXPECT_NE(browser_->location().find("guitar.html"), std::string::npos);
  ASSERT_TRUE(browser_->forward());
  EXPECT_NE(browser_->location().find("guernica.html"), std::string::npos);
  EXPECT_FALSE(browser_->forward());
  ASSERT_TRUE(browser_->back());
  EXPECT_FALSE(browser_->back());  // at the start
}

TEST_F(BrowserTest, NavigationTruncatesForwardHistory) {
  ASSERT_TRUE(browser_->navigate("guitar.html"));
  ASSERT_TRUE(browser_->follow_role("next"));
  ASSERT_TRUE(browser_->back());
  ASSERT_TRUE(browser_->navigate("avignon.html"));
  EXPECT_FALSE(browser_->forward());
  EXPECT_EQ(browser_->history().size(), 2u);
}

// --- navigation session (paper §2) --------------------------------------------------

class SessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Two painters sharing a movement so by-author and by-movement orders
    // genuinely differ (museum-wide contexts).
    world_ = MuseumWorld::synthetic({.painters = 2,
                                     .paintings_per_painter = 3,
                                     .movements = 1,
                                     .seed = 5});
    nav_ = std::make_unique<hm::NavigationalModel>(world_->derive_navigation());
    by_author_ = std::make_unique<hm::ContextFamily>(world_->by_author(*nav_));
    by_movement_ =
        std::make_unique<hm::ContextFamily>(world_->by_movement(*nav_));
  }

  std::unique_ptr<MuseumWorld> world_;
  std::unique_ptr<hm::NavigationalModel> nav_;
  std::unique_ptr<hm::ContextFamily> by_author_;
  std::unique_ptr<hm::ContextFamily> by_movement_;
};

TEST_F(SessionTest, NextIsContextDependent) {
  site::NavigationSession session(*nav_,
                                  {by_author_.get(), by_movement_.get()});
  // Last painting of painter-0.
  ASSERT_TRUE(session.enter_context("ByAuthor", "painter-0",
                                    "painter-0-work-2"));
  EXPECT_FALSE(session.next());  // end of the author's works

  // Same node reached through the movement: next exists (painter-1's work).
  ASSERT_TRUE(session.visit("painter-0-work-2"));
  ASSERT_TRUE(session.through("ByMovement"));
  ASSERT_TRUE(session.next());
  EXPECT_EQ(session.current()->id(), "painter-1-work-0");
}

TEST_F(SessionTest, PositionReportsOneBased) {
  site::NavigationSession session(*nav_, {by_author_.get()});
  ASSERT_TRUE(session.enter_context("ByAuthor", "painter-0",
                                    "painter-0-work-1"));
  auto pos = session.position();
  ASSERT_TRUE(pos.has_value());
  EXPECT_EQ(pos->first, 2u);
  EXPECT_EQ(pos->second, 3u);
}

TEST_F(SessionTest, PrevAndTrail) {
  site::NavigationSession session(*nav_, {by_author_.get()});
  ASSERT_TRUE(session.enter_context("ByAuthor", "painter-0",
                                    "painter-0-work-2"));
  ASSERT_TRUE(session.prev());
  ASSERT_TRUE(session.prev());
  EXPECT_FALSE(session.prev());
  EXPECT_EQ(session.current()->id(), "painter-0-work-0");
  EXPECT_EQ(session.trail().size(), 3u);
}

TEST_F(SessionTest, LeaveContextDisablesMotion) {
  site::NavigationSession session(*nav_, {by_author_.get()});
  ASSERT_TRUE(session.enter_context("ByAuthor", "painter-0",
                                    "painter-0-work-0"));
  session.leave_context();
  EXPECT_FALSE(session.next());
  EXPECT_EQ(session.context(), nullptr);
  EXPECT_EQ(session.context_tag(), "");
}

TEST_F(SessionTest, EnterContextValidatesMembership) {
  site::NavigationSession session(*nav_, {by_author_.get()});
  EXPECT_FALSE(session.enter_context("ByAuthor", "painter-0",
                                     "painter-1-work-0"));
  EXPECT_FALSE(session.enter_context("Nope", "painter-0",
                                     "painter-0-work-0"));
  EXPECT_FALSE(session.visit("ghost"));
}

TEST_F(SessionTest, JoinPointsAnnouncedToWeaver) {
  navsep::aop::Weaver weaver;
  std::vector<std::string> seen;
  auto audit = std::make_shared<navsep::aop::Aspect>("audit");
  audit->before("traverse(*)", [&](navsep::aop::JoinPointContext& ctx) {
    seen.push_back("traverse:" + ctx.join_point().instance + ":" +
                   std::string(ctx.join_point().tag("role")));
  });
  audit->before("enterContext(*)", [&](navsep::aop::JoinPointContext& ctx) {
    seen.push_back("enter:" + ctx.join_point().instance);
  });
  weaver.register_aspect(audit);

  site::NavigationSession session(*nav_, {by_author_.get()}, &weaver);
  ASSERT_TRUE(session.enter_context("ByAuthor", "painter-0",
                                    "painter-0-work-0"));
  ASSERT_TRUE(session.next());
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], "traverse:painter-0-work-0:enter-context");
  EXPECT_EQ(seen[1], "enter:painter-0");
  EXPECT_EQ(seen[2], "traverse:painter-0-work-1:next");
}

// The byte-identity oracles shared by the incremental/serving test
// suites (buildgraph_test, overlay_test, stress_test).
//
// The repo's correctness contract is byte-level: whatever the
// incremental build graph, the epoch-published snapshots or the
// profile-overlay compositor serve must equal what a full
// single-threaded build_separated_site would produce for the same
// authored state. These helpers build that oracle from a live engine
// and assert the identity, so every suite checks the same property
// through the same code path.
#pragma once

#include <map>
#include <string>

#include "nav/pipeline.hpp"
#include "nav/profile.hpp"
#include "serve/concurrent_server.hpp"
#include "site/virtual_site.hpp"

namespace navsep::testing {

/// From-scratch oracle: author + weave the engine's current navigation
/// design (ALL context families) with the batch builder. The engine's
/// incremental site() must be byte-identical to this.
[[nodiscard]] site::VirtualSite full_build_oracle(const nav::Engine& engine);

/// Per-profile oracle: a full single-threaded build weaving ONLY
/// `profile`'s families (weave_context_tours), as path → bytes. The
/// overlay-serving path must be byte-identical to this.
[[nodiscard]] std::map<std::string, std::string> profile_oracle(
    const nav::Engine& engine, const nav::Profile& profile);

/// Assert `actual` and `expected` hold the same paths with the same
/// bytes (gtest fatal on path-set mismatch, per-path EXPECT otherwise).
void expect_sites_identical(const site::VirtualSite& actual,
                            const site::VirtualSite& expected);

/// Assert the profile-scoped server agrees with profile_oracle() on
/// EVERY path: oracle paths byte-identical, engine-site paths outside
/// the oracle (other families' linkbases) 404.
void expect_profile_matches_oracle(const nav::Engine& engine,
                                   const serve::ConcurrentServer& server,
                                   const nav::Profile& profile);

/// The engine's served .html page paths (the overlay-cacheable set).
[[nodiscard]] std::vector<std::string> html_pages(const nav::Engine& engine);

}  // namespace navsep::testing

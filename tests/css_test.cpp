// Unit tests for the CSS2-subset engine: selector matching, specificity,
// cascade and inheritance.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "css/css.hpp"
#include "xml/parser.hpp"

namespace css = navsep::css;
namespace xml = navsep::xml;

namespace {
const char* kPage = R"(<html>
  <body>
    <div id="main" class="content wide">
      <p class="intro">First</p>
      <p>Second</p>
      <ul class="nav">
        <li><a href="a.html" rel="next">A</a></li>
        <li><a href="b.html">B</a></li>
      </ul>
    </div>
    <div class="sidebar">
      <p>Aside</p>
    </div>
  </body>
</html>)";
}  // namespace

class CssTest : public ::testing::Test {
 protected:
  void SetUp() override { doc_ = xml::parse(kPage); }

  const xml::Element* find(std::string_view selector_text) {
    auto sels = css::parse_selector_group(selector_text);
    const xml::Element* found = nullptr;
    doc_->root()->walk([&](const xml::Element& e) {
      if (found == nullptr && sels[0].matches(e)) found = &e;
    });
    return found;
  }

  std::unique_ptr<xml::Document> doc_;
};

// --- selector parsing --------------------------------------------------------

TEST_F(CssTest, ParseSimpleSelectors) {
  auto g = css::parse_selector_group("p");
  ASSERT_EQ(g.size(), 1u);
  EXPECT_EQ(g[0].compounds.size(), 1u);
  EXPECT_EQ(g[0].compounds[0].type, "p");
}

TEST_F(CssTest, ParseGroupedSelectors) {
  auto g = css::parse_selector_group("h1, h2, .nav > li");
  ASSERT_EQ(g.size(), 3u);
  EXPECT_EQ(g[2].compounds.size(), 2u);
  EXPECT_EQ(g[2].combinators[0], css::Selector::Combinator::Child);
}

TEST_F(CssTest, ParseCompoundSelector) {
  auto g = css::parse_selector_group("div#main.content.wide[id]");
  const auto& c = g[0].compounds[0];
  EXPECT_EQ(c.type, "div");
  EXPECT_EQ(c.id, "main");
  EXPECT_EQ(c.classes.size(), 2u);
  EXPECT_EQ(c.attributes.size(), 1u);
}

TEST_F(CssTest, ParseAttributeOperators) {
  auto g = css::parse_selector_group(
      "a[rel=next], a[class~=x], a[lang|=en], a[href]");
  EXPECT_EQ(g[0].compounds[0].attributes[0].op,
            css::AttributeSelector::Op::Equals);
  EXPECT_EQ(g[1].compounds[0].attributes[0].op,
            css::AttributeSelector::Op::Includes);
  EXPECT_EQ(g[2].compounds[0].attributes[0].op,
            css::AttributeSelector::Op::DashMatch);
  EXPECT_EQ(g[3].compounds[0].attributes[0].op,
            css::AttributeSelector::Op::Exists);
}

TEST_F(CssTest, SelectorToStringRoundTrip) {
  for (const char* text :
       {"p", "div#main", ".nav > li", "ul li a", "*[rel=next]"}) {
    auto g = css::parse_selector_group(text);
    auto again = css::parse_selector_group(g[0].to_string());
    EXPECT_EQ(again[0].to_string(), g[0].to_string()) << text;
  }
}

TEST_F(CssTest, BadSelectorThrows) {
  EXPECT_THROW(css::parse_selector_group(""), navsep::ParseError);
  EXPECT_THROW(css::parse_selector_group("p >"), navsep::ParseError);
  EXPECT_THROW(css::parse_selector_group("p, "), navsep::ParseError);
}

// --- matching ---------------------------------------------------------------------

TEST_F(CssTest, TypeAndUniversalMatch) {
  EXPECT_NE(find("p"), nullptr);
  EXPECT_NE(find("*"), nullptr);
  EXPECT_EQ(find("table"), nullptr);
}

TEST_F(CssTest, ClassMatchRequiresAllClasses) {
  EXPECT_NE(find(".content.wide"), nullptr);
  EXPECT_EQ(find(".content.narrow"), nullptr);
}

TEST_F(CssTest, IdMatch) {
  const xml::Element* e = find("#main");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->name().local, "div");
}

TEST_F(CssTest, AttributeMatch) {
  EXPECT_NE(find("a[rel=next]"), nullptr);
  EXPECT_EQ(find("a[rel=prev]"), nullptr);
  EXPECT_NE(find("[class~=sidebar]"), nullptr);
}

TEST_F(CssTest, DescendantCombinator) {
  EXPECT_NE(find("div a"), nullptr);
  EXPECT_NE(find("body ul a"), nullptr);   // skips intermediate li
  EXPECT_EQ(find(".sidebar a"), nullptr);  // no anchors in the sidebar
}

TEST_F(CssTest, ChildCombinator) {
  EXPECT_NE(find("li > a"), nullptr);
  EXPECT_EQ(find("ul > a"), nullptr);  // a is a grandchild of ul
}

TEST_F(CssTest, Specificity) {
  auto spec = [](const char* s) {
    return css::parse_selector_group(s)[0].specificity();
  };
  EXPECT_GT(spec("#main"), spec(".content.wide"));
  EXPECT_GT(spec(".content"), spec("div"));
  EXPECT_GT(spec("div.content"), spec(".content"));
  EXPECT_GT(spec("[rel=next]"), spec("a"));
  EXPECT_EQ(spec("*"), 0u);
}

// --- stylesheet parsing -------------------------------------------------------------

TEST(CssParse, RulesAndDeclarations) {
  css::Stylesheet s = css::parse(R"(
    /* museum theme */
    p { color: black; margin: 0 auto; }
    .nav > li { display: inline; }
  )");
  ASSERT_EQ(s.rule_count(), 2u);
  EXPECT_EQ(s.rules[0].declarations.size(), 2u);
  EXPECT_EQ(s.rules[0].declarations[0].property, "color");
  EXPECT_EQ(s.rules[0].declarations[0].value, "black");
}

TEST(CssParse, ImportantFlag) {
  css::Stylesheet s = css::parse("p { color: red !important; size: 1; }");
  EXPECT_TRUE(s.rules[0].declarations[0].important);
  EXPECT_FALSE(s.rules[0].declarations[1].important);
  EXPECT_EQ(s.rules[0].declarations[0].value, "red");
}

TEST(CssParse, MalformedDeclarationIsSkipped) {
  css::Stylesheet s = css::parse("p { 4oops; color: blue; }");
  ASSERT_EQ(s.rule_count(), 1u);
  ASSERT_EQ(s.rules[0].declarations.size(), 1u);
  EXPECT_EQ(s.rules[0].declarations[0].property, "color");
}

TEST(CssParse, MalformedSelectorDropsRule) {
  css::Stylesheet s = css::parse("{ color: red; } p { color: blue; }");
  ASSERT_EQ(s.rule_count(), 1u);
  EXPECT_EQ(s.rules[0].selectors[0].to_string(), "p");
}

TEST(CssParse, AtRulesAreSkipped) {
  css::Stylesheet s = css::parse(
      "@import 'x.css'; @media print { p { color: gray; } } "
      "p { color: blue; }");
  ASSERT_EQ(s.rule_count(), 1u);
}

TEST(CssParse, QuotedValuesKeepSemicolonsAndBraces) {
  css::Stylesheet s = css::parse(R"(p { content: "a;}b"; }")");
  ASSERT_EQ(s.rules[0].declarations.size(), 1u);
  EXPECT_EQ(s.rules[0].declarations[0].value, "\"a;}b\"");
}

// --- cascade -----------------------------------------------------------------------------

class CascadeTest : public ::testing::Test {
 protected:
  void SetUp() override { doc_ = xml::parse(kPage); }

  const xml::Element* intro() {
    const xml::Element* found = nullptr;
    doc_->root()->walk([&](const xml::Element& e) {
      auto c = e.attribute("class");
      if (c && *c == "intro") found = &e;
    });
    return found;
  }

  std::unique_ptr<xml::Document> doc_;
  css::StyleResolver resolver_;
};

TEST_F(CascadeTest, SpecificityWins) {
  resolver_.add_sheet(css::parse("p { color: black; } .intro { color: red; }"));
  EXPECT_EQ(resolver_.computed(*intro(), "color").value(), "red");
}

TEST_F(CascadeTest, SourceOrderBreaksTies) {
  resolver_.add_sheet(css::parse("p { color: black; } p { color: green; }"));
  EXPECT_EQ(resolver_.computed(*intro(), "color").value(), "green");
}

TEST_F(CascadeTest, ImportantBeatsSpecificity) {
  resolver_.add_sheet(css::parse(
      "p { color: black !important; } #main .intro { color: red; }"));
  EXPECT_EQ(resolver_.computed(*intro(), "color").value(), "black");
}

TEST_F(CascadeTest, AuthorBeatsUserAgent) {
  resolver_.add_sheet(css::parse("p { color: gray; }"),
                      css::Origin::UserAgent);
  resolver_.add_sheet(css::parse("p { color: navy; }"), css::Origin::Author);
  EXPECT_EQ(resolver_.computed(*intro(), "color").value(), "navy");
}

TEST_F(CascadeTest, InheritedPropertyFlowsDown) {
  resolver_.add_sheet(css::parse("#main { color: purple; }"));
  EXPECT_EQ(resolver_.computed(*intro(), "color").value(), "purple");
}

TEST_F(CascadeTest, NonInheritedPropertyDoesNot) {
  resolver_.add_sheet(css::parse("#main { border: 1px; }"));
  EXPECT_FALSE(resolver_.computed(*intro(), "border").has_value());
}

TEST_F(CascadeTest, ExplicitInheritKeyword) {
  resolver_.add_sheet(
      css::parse("#main { border: 1px; } p { border: inherit; }"));
  EXPECT_EQ(resolver_.computed(*intro(), "border").value(), "1px");
}

TEST_F(CascadeTest, ComputedStyleAggregatesOwnAndInherited) {
  resolver_.add_sheet(css::parse(
      "#main { color: purple; } .intro { font-weight: bold; }"));
  auto style = resolver_.computed_style(*intro());
  EXPECT_EQ(style.at("color"), "purple");
  EXPECT_EQ(style.at("font-weight"), "bold");
}

TEST_F(CascadeTest, NoMatchYieldsNullopt) {
  resolver_.add_sheet(css::parse(".missing { color: red; }"));
  EXPECT_FALSE(resolver_.computed(*intro(), "color").has_value());
}

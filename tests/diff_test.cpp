// Unit + property tests for the Myers diff and site-delta statistics.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "diff/diff.hpp"

namespace diff = navsep::diff;

TEST(DiffSplit, LinesWithAndWithoutTrailingNewline) {
  EXPECT_EQ(diff::split_lines("a\nb\n").size(), 2u);
  EXPECT_EQ(diff::split_lines("a\nb").size(), 2u);
  EXPECT_EQ(diff::split_lines("").size(), 0u);
  EXPECT_EQ(diff::split_lines("\n").size(), 1u);
  EXPECT_EQ(diff::split_lines("\n\n").size(), 2u);
}

TEST(DiffStats, IdenticalInputsAreUnchanged) {
  diff::Stats s = diff::stats("a\nb\nc\n", "a\nb\nc\n");
  EXPECT_TRUE(s.unchanged());
  EXPECT_EQ(s.hunks, 0u);
}

TEST(DiffStats, PureInsertion) {
  diff::Stats s = diff::stats("a\nc\n", "a\nb\nc\n");
  EXPECT_EQ(s.lines_added, 1u);
  EXPECT_EQ(s.lines_deleted, 0u);
  EXPECT_EQ(s.hunks, 1u);
  EXPECT_EQ(s.bytes_added, 2u);  // "b" + newline
}

TEST(DiffStats, PureDeletion) {
  diff::Stats s = diff::stats("a\nb\nc\n", "a\nc\n");
  EXPECT_EQ(s.lines_added, 0u);
  EXPECT_EQ(s.lines_deleted, 1u);
}

TEST(DiffStats, Replacement) {
  diff::Stats s = diff::stats("a\nOLD\nc\n", "a\nNEW\nc\n");
  EXPECT_EQ(s.lines_added, 1u);
  EXPECT_EQ(s.lines_deleted, 1u);
  EXPECT_EQ(s.hunks, 1u);
}

TEST(DiffStats, TwoSeparatedChangesAreTwoHunks) {
  diff::Stats s = diff::stats("1\n2\n3\n4\n5\n6\n7\n",
                              "1\nX\n3\n4\n5\nY\n7\n");
  EXPECT_EQ(s.hunks, 2u);
  EXPECT_EQ(s.lines_changed(), 4u);
}

TEST(DiffStats, FromAndToEmpty) {
  diff::Stats grow = diff::stats("", "a\nb\n");
  EXPECT_EQ(grow.lines_added, 2u);
  diff::Stats shrink = diff::stats("a\nb\n", "");
  EXPECT_EQ(shrink.lines_deleted, 2u);
}

TEST(DiffOps, ScriptTransformsAToB) {
  // Property: applying the edit script to `a` yields `b`.
  auto apply = [](std::string_view a, std::string_view b) {
    auto la = diff::split_lines(a);
    auto lb = diff::split_lines(b);
    std::vector<std::string_view> result;
    for (const diff::Op& op : diff::diff_lines(a, b)) {
      switch (op.kind) {
        case diff::OpKind::Equal:
          for (std::size_t i = 0; i < op.count; ++i) {
            result.push_back(la[op.a_start + i]);
          }
          break;
        case diff::OpKind::Insert:
          for (std::size_t i = 0; i < op.count; ++i) {
            result.push_back(lb[op.b_start + i]);
          }
          break;
        case diff::OpKind::Delete:
          break;
      }
    }
    return result;
  };
  const char* a = "alpha\nbeta\ngamma\ndelta\n";
  const char* b = "alpha\nGAMMA\ngamma\nepsilon\n";
  EXPECT_EQ(apply(a, b), diff::split_lines(b));
}

class DiffRandomized : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DiffRandomized, ScriptReconstructsTarget) {
  navsep::Rng rng(GetParam());
  auto random_doc = [&rng] {
    std::string out;
    std::size_t n = rng.below(30);
    for (std::size_t i = 0; i < n; ++i) {
      out += rng.word(1 + rng.below(4));
      out += '\n';
    }
    return out;
  };
  for (int round = 0; round < 20; ++round) {
    std::string a = random_doc();
    std::string b = random_doc();
    auto la = diff::split_lines(a);
    auto lb = diff::split_lines(b);
    std::vector<std::string_view> rebuilt;
    std::size_t equal = 0;
    for (const diff::Op& op : diff::diff_lines(a, b)) {
      if (op.kind == diff::OpKind::Equal) {
        equal += op.count;
        for (std::size_t i = 0; i < op.count; ++i) {
          ASSERT_EQ(la[op.a_start + i], lb[op.b_start + i]);
          rebuilt.push_back(la[op.a_start + i]);
        }
      } else if (op.kind == diff::OpKind::Insert) {
        for (std::size_t i = 0; i < op.count; ++i) {
          rebuilt.push_back(lb[op.b_start + i]);
        }
      }
    }
    ASSERT_EQ(rebuilt, lb) << "seed " << GetParam() << " round " << round;
    // Sanity: stats count exactly the non-equal lines.
    diff::Stats s = diff::stats(a, b);
    EXPECT_EQ(s.lines_added, lb.size() - equal);
    EXPECT_EQ(s.lines_deleted, la.size() - equal);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiffRandomized,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u));

TEST(DiffUnified, RendersHeadersAndHunks) {
  std::string u = diff::unified("a\nb\nc\nd\ne\n", "a\nb\nX\nd\ne\n",
                                "before.html", "after.html", 1);
  EXPECT_NE(u.find("--- before.html"), std::string::npos);
  EXPECT_NE(u.find("+++ after.html"), std::string::npos);
  EXPECT_NE(u.find("-c"), std::string::npos);
  EXPECT_NE(u.find("+X"), std::string::npos);
  EXPECT_NE(u.find("@@ -2,3 +2,3 @@"), std::string::npos);
}

TEST(DiffSites, CountsTouchedFiles) {
  std::vector<std::pair<std::string, std::string>> before{
      {"guitar.html", "<h1>Guitar</h1>\n<a>index</a>\n"},
      {"guernica.html", "<h1>Guernica</h1>\n<a>index</a>\n"},
      {"index.html", "<ul>...</ul>\n"},
  };
  std::vector<std::pair<std::string, std::string>> after{
      {"guitar.html", "<h1>Guitar</h1>\n<a>index</a>\n<a>next</a>\n"},
      {"guernica.html", "<h1>Guernica</h1>\n<a>index</a>\n<a>next</a>\n"},
      {"index.html", "<ul>...</ul>\n"},
  };
  diff::SiteDelta d = diff::compare_sites(before, after);
  EXPECT_EQ(d.files_total, 3u);
  EXPECT_EQ(d.files_touched, 2u);
  EXPECT_EQ(d.line_stats.lines_added, 2u);
  ASSERT_EQ(d.touched_paths.size(), 2u);
  EXPECT_EQ(d.touched_paths[0], "guernica.html");
}

TEST(DiffSites, AddedAndRemovedFiles) {
  std::vector<std::pair<std::string, std::string>> before{
      {"old.html", "x\n"}};
  std::vector<std::pair<std::string, std::string>> after{
      {"new.html", "y\ny\n"}};
  diff::SiteDelta d = diff::compare_sites(before, after);
  EXPECT_EQ(d.files_total, 2u);
  EXPECT_EQ(d.files_touched, 2u);
  EXPECT_EQ(d.line_stats.lines_deleted, 1u);
  EXPECT_EQ(d.line_stats.lines_added, 2u);
}

TEST(DiffSites, IdenticalSitesUntouched) {
  std::vector<std::pair<std::string, std::string>> site{
      {"a.html", "same\n"}, {"b.html", "same\n"}};
  diff::SiteDelta d = diff::compare_sites(site, site);
  EXPECT_EQ(d.files_touched, 0u);
  EXPECT_TRUE(d.line_stats.unchanged());
}

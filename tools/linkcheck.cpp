// linkcheck — validate intra-repo markdown links and anchors.
//
// The docs satellite of the profile-overlay PR: README/DESIGN grew over
// four PRs and their cross-references (file paths, #section anchors) had
// no checker, so renames silently strand readers. This tool walks every
// inline [text](target) link of the given markdown files and verifies:
//
//   * relative file targets exist (resolved against the document's dir);
//   * "#anchor" targets match a heading slug of the same document;
//   * "file.md#anchor" targets match a heading slug of that document.
//
// External links (http/https/mailto) are skipped — determinism over
// coverage; CI must not depend on the network. Heading slugs follow the
// GitHub algorithm closely enough for ASCII docs: lowercase, spaces to
// hyphens, punctuation dropped, -N suffixes for duplicates.
//
// Usage: linkcheck FILE.md [FILE.md ...]   (exits 1 on any broken link)
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

std::string slugify(const std::string& heading) {
  std::string slug;
  for (unsigned char c : heading) {
    if (std::isalnum(c)) {
      slug += static_cast<char>(std::tolower(c));
    } else if (c == ' ' || c == '-' || c == '_') {
      slug += c == '_' ? '_' : '-';
    }
    // Everything else (punctuation, non-ASCII bytes) is dropped.
  }
  return slug;
}

/// Heading anchors of one markdown file, with GitHub's -N dedup.
std::set<std::string> collect_anchors(const std::string& path) {
  std::set<std::string> anchors;
  std::map<std::string, int> seen;
  std::ifstream in(path);
  std::string line;
  bool in_fence = false;
  while (std::getline(in, line)) {
    if (line.rfind("```", 0) == 0) {
      in_fence = !in_fence;
      continue;
    }
    if (in_fence) continue;
    std::size_t hashes = 0;
    while (hashes < line.size() && line[hashes] == '#') ++hashes;
    if (hashes == 0 || hashes > 6 || hashes >= line.size() ||
        line[hashes] != ' ') {
      continue;
    }
    std::string slug = slugify(line.substr(hashes + 1));
    int& count = seen[slug];
    anchors.insert(count == 0 ? slug : slug + "-" + std::to_string(count));
    ++count;
  }
  return anchors;
}

struct Link {
  std::string target;
  std::size_t line = 0;
};

/// Blank out `inline code spans` so a [x](y)-shaped pattern quoted as
/// code is not mistaken for a link (column positions are preserved).
std::string without_code_spans(std::string line) {
  bool in_span = false;
  for (char& c : line) {
    if (c == '`') {
      in_span = !in_span;
      c = ' ';
    } else if (in_span) {
      c = ' ';
    }
  }
  return line;
}

/// Inline [text](target) links outside code fences/spans.
std::vector<Link> collect_links(const std::string& path) {
  std::vector<Link> links;
  std::ifstream in(path);
  std::string line;
  std::size_t line_no = 0;
  bool in_fence = false;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.rfind("```", 0) == 0) {
      in_fence = !in_fence;
      continue;
    }
    if (in_fence) continue;
    const std::string scannable = without_code_spans(line);
    std::size_t pos = 0;
    while ((pos = scannable.find("](", pos)) != std::string::npos) {
      const std::size_t end = scannable.find(')', pos + 2);
      if (end == std::string::npos) break;
      links.push_back(
          Link{scannable.substr(pos + 2, end - pos - 2), line_no});
      pos = end + 1;
    }
  }
  return links;
}

bool is_external(const std::string& target) {
  return target.rfind("http://", 0) == 0 ||
         target.rfind("https://", 0) == 0 ||
         target.rfind("mailto:", 0) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: linkcheck FILE.md [FILE.md ...]\n";
    return 2;
  }
  std::map<std::string, std::set<std::string>> anchor_cache;
  auto anchors_of = [&](const std::string& path)
      -> const std::set<std::string>& {
    auto it = anchor_cache.find(path);
    if (it == anchor_cache.end()) {
      it = anchor_cache.emplace(path, collect_anchors(path)).first;
    }
    return it->second;
  };

  std::size_t broken = 0;
  std::size_t checked = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string doc = argv[i];
    if (!fs::exists(doc)) {
      std::cerr << "linkcheck: no such file: " << doc << "\n";
      ++broken;
      continue;
    }
    const fs::path base = fs::path(doc).parent_path();
    for (const Link& link : collect_links(doc)) {
      if (is_external(link.target) || link.target.empty()) continue;
      ++checked;
      std::string file_part = link.target;
      std::string anchor;
      if (const std::size_t hash = link.target.find('#');
          hash != std::string::npos) {
        file_part = link.target.substr(0, hash);
        anchor = link.target.substr(hash + 1);
      }
      std::string resolved = doc;
      if (!file_part.empty()) {
        resolved = (base / file_part).lexically_normal().string();
        if (!fs::exists(resolved)) {
          std::cerr << doc << ":" << link.line << ": broken link target '"
                    << link.target << "' (no such file " << resolved
                    << ")\n";
          ++broken;
          continue;
        }
      }
      if (!anchor.empty()) {
        if (!fs::is_regular_file(resolved)) {
          std::cerr << doc << ":" << link.line << ": anchor into non-file '"
                    << link.target << "'\n";
          ++broken;
          continue;
        }
        const std::set<std::string>& anchors = anchors_of(resolved);
        if (anchors.find(anchor) == anchors.end()) {
          std::cerr << doc << ":" << link.line << ": broken anchor '#"
                    << anchor << "' in " << resolved << "\n";
          ++broken;
        }
      }
    }
  }
  std::cout << "linkcheck: " << checked << " intra-repo links checked, "
            << broken << " broken\n";
  return broken == 0 ? 0 : 1;
}

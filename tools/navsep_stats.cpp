// navsep_stats — one samplable view of the whole serving stack.
//
// Builds the synthetic museum, attaches ONE obs::Registry to every
// stat producer (engine + build graph, concurrent server shards,
// workload driver, optionally a publisher/replica pair over a real
// loopback socket), drives traffic through it, and exports the
// registry snapshot:
//
//   navsep_stats run [--paintings N] [--profiles P] [--threads T]
//                [--steps S] [--shards K] [--seed X]
//                [--trace off|sampled|full] [--repl]
//                [--landmarks K] [--warm N]
//                [--format json|table] [--out PATH]
//     Drive one workload (with a few interleaved edits so the build
//     and publish spans show up), then print the unified snapshot —
//     every layer's counters under one naming scheme, plus the
//     navigation popularity tables when tracing is on. --landmarks K
//     feeds the traced traffic into nav::Engine::enable_landmarks
//     (top-K hubs per family, reported with their views/degree/score
//     blend); --warm N runs one serve::CacheWarmer cycle over the N
//     hottest traced (page, profile) entries and exports the
//     serve.warm.* gauges alongside everything else.
//
//   navsep_stats selftest
//     The reconciliation oracle: after a deterministic run, every
//     registry counter/gauge must equal the per-layer stats() view it
//     mirrors — serve.base.* == unified_stats().base field for field,
//     the Stats compatibility struct == UnifiedStats, workload.*
//     counters == WorkloadResult, engine.server.* == the engine
//     server's stats(), repl.pub.*/repl.rep.* == the publisher's and
//     replica's stats(), serve.warm.* == the CacheWarmer's stats()
//     (with its accounting identity intact), the landmark report must
//     rank real authored hubs, and the JSON exporter's digits must
//     match the live values. Exit status is the verdict.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "hypermedia/context.hpp"
#include "nav/landmarks.hpp"
#include "nav/pipeline.hpp"
#include "nav/profile.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "repl/publisher.hpp"
#include "repl/replica.hpp"
#include "serve/cache_warmer.hpp"
#include "serve/concurrent_server.hpp"
#include "serve/workload.hpp"

namespace {

using navsep::hypermedia::AccessStructureKind;
namespace hm = navsep::hypermedia;
namespace nav = navsep::nav;
namespace obs = navsep::obs;
namespace repl = navsep::repl;
namespace serve = navsep::serve;

int usage() {
  std::fprintf(
      stderr,
      "usage: navsep_stats run [--paintings N] [--profiles P] [--threads T]\n"
      "                    [--steps S] [--shards K] [--seed X]\n"
      "                    [--trace off|sampled|full] [--repl]\n"
      "                    [--landmarks K] [--warm N]\n"
      "                    [--format json|table] [--out PATH]\n"
      "       navsep_stats selftest\n");
  return 2;
}

long long arg_value(int argc, char** argv, const char* name,
                    long long fallback) {
  for (int i = 0; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return std::atoll(argv[i + 1]);
  }
  return fallback;
}

const char* arg_string(int argc, char** argv, const char* name,
                       const char* fallback) {
  for (int i = 0; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return fallback;
}

bool arg_flag(int argc, char** argv, const char* name) {
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

std::unique_ptr<nav::Engine> museum_engine(std::size_t paintings,
                                           std::size_t profiles) {
  auto engine = nav::SitePipeline()
                    .conceptual(navsep::museum::SyntheticSpec{
                        .painters = 4,
                        .paintings_per_painter = paintings / 4 + 1,
                        .movements = 3,
                        .seed = 42})
                    .access(AccessStructureKind::IndexedGuidedTour)
                    .contexts({"ByAuthor", "ByMovement"})
                    .weave()
                    .serve();
  static const std::vector<std::vector<std::string>> kSubsets{
      {"ByAuthor"}, {"ByMovement"}, {"ByAuthor", "ByMovement"}, {}};
  for (std::size_t i = 0; i < profiles; ++i) {
    engine->internals().register_profile(
        {"profile-" + std::to_string(i), kSubsets[i % kSubsets.size()]});
  }
  return engine;
}

void rotate_first_context(hm::ContextFamily& family) {
  std::vector<hm::NavigationalContext> contexts = family.contexts();
  if (contexts.empty() || contexts.front().size() < 2) return;
  std::vector<std::string> ids = contexts.front().node_ids();
  std::rotate(ids.begin(), ids.begin() + 1, ids.end());
  contexts.front() = hm::NavigationalContext(
      contexts.front().family(), contexts.front().name(), std::move(ids));
  family.replace_contexts(std::move(contexts));
}

struct RunConfig {
  std::size_t paintings = 16;
  std::size_t profiles = 2;
  std::size_t threads = 4;
  std::size_t steps = 256;
  std::size_t shards = 4;
  std::uint64_t seed = 42;
  obs::TraceConfig trace;       // off unless --trace sampled|full
  bool with_repl = false;       // loopback publisher + replica leg
  std::size_t landmark_top_k = 0;  // 0 = landmark synthesis off
  std::size_t warm_top_n = 0;      // 0 = cache warming off
};

struct RunOutput {
  std::shared_ptr<obs::Registry> registry;
  serve::WorkloadResult workload;
  serve::ConcurrentServer::UnifiedStats unified;
  serve::ConcurrentServer::Stats compat;
  navsep::site::HypermediaServer::Stats engine_server;
  std::uint64_t store_epoch = 0;
  repl::Publisher::Stats pub;       // zeroed unless with_repl
  repl::ReplicaStats rep;           // zeroed unless with_repl
  /// Per landmark family: its ranked picks (views/degree/score blend).
  std::vector<std::pair<std::string, std::vector<nav::LandmarkScore>>>
      landmarks;
  serve::CacheWarmer::WarmStats warm;  // zeroed unless warm_top_n > 0
  bool site_has_landmark_artifact = false;
  obs::Registry::Snapshot snapshot;
};

/// One fully-wired run: every producer registered into one registry,
/// traffic + a few edits driven through, final stats captured in the
/// same quiescent moment as the registry snapshot (so the selftest can
/// demand exact equality, not approximation).
RunOutput drive(const RunConfig& config) {
  RunOutput out;
  out.registry = std::make_shared<obs::Registry>();

  auto engine = museum_engine(config.paintings, config.profiles);
  engine->internals().attach_telemetry(out.registry);
  auto server = engine->open_concurrent(config.shards);
  obs::SamplerHandle server_metrics =
      server->register_metrics(out.registry);

  std::unique_ptr<repl::Publisher> publisher;
  std::unique_ptr<repl::Replica> replica;
  if (config.with_repl) {
    repl::PublisherOptions popts;
    popts.telemetry = out.registry;
    publisher = engine->open_publisher(repl::Endpoint::tcp("127.0.0.1", 0),
                                       popts);
    replica = std::make_unique<repl::Replica>(
        repl::Connection::connect(publisher->endpoint()));
    replica->attach_telemetry(out.registry);
    replica->start();
  }

  // A few edits before the traffic so the pipeline spans (build.plan /
  // build.publish / repl.encode...) have epochs to correlate.
  for (int i = 0; i < 3; ++i) {
    (void)engine->internals().edit_context_family("ByAuthor",
                                                  rotate_first_context);
  }

  serve::Workload workload(*engine);
  serve::WorkloadOptions options;
  options.threads = config.threads;
  options.steps_per_session = config.steps;
  options.seed = config.seed;
  options.trace = config.trace;
  options.telemetry = out.registry;
  out.workload = workload.run(*server, options);

  // Traffic intelligence: fold the traced popularity tables back into
  // the engine (landmark synthesis) and the server (cache warming).
  if (config.landmark_top_k > 0) {
    (void)engine->internals().enable_landmarks(
        out.workload.traces,
        {.top_k = config.landmark_top_k});
    for (const std::string& name : engine->internals().landmark_families()) {
      out.landmarks.emplace_back(name,
                                 engine->internals().landmark_picks(name));
    }
    out.site_has_landmark_artifact =
        engine->site().get("links-landmarks.xml") != nullptr;
  }
  std::unique_ptr<serve::CacheWarmer> warmer;
  obs::SamplerHandle warm_metrics;
  if (config.warm_top_n > 0) {
    warmer = std::make_unique<serve::CacheWarmer>(
        *server, serve::CacheWarmer::Options{.top_n = config.warm_top_n});
    warmer->set_feed(out.workload.traces.top_entries(config.warm_top_n));
    out.warm = warmer->warm_now();
    warm_metrics = warmer->register_metrics(out.registry);
  }

  if (config.with_repl) {
    const std::uint64_t target = engine->internals().snapshots().epoch();
    (void)replica->wait_for_epoch(target, std::chrono::seconds(30));
    replica->stop();
    out.pub = publisher->stats();
    out.rep = replica->stats();
  }

  out.unified = server->unified_stats();
  out.compat = server->stats();
  out.engine_server = engine->server().stats();
  out.store_epoch = engine->internals().snapshots().epoch();
  out.snapshot = out.registry->snapshot();

  // The publisher/replica must outlive the snapshot (their samplers
  // feed it); teardown order past here is free.
  return out;
}

/// Append the trace popularity tables to a JSON export — the registry
/// snapshot carries scalars; the per-page/per-arc tables ride along so
/// one document feeds a dashboard.
std::string export_json(const RunOutput& out) {
  std::string json = out.snapshot.to_json();
  // Splice the trace tables in before the final closing brace.
  const std::size_t brace = json.rfind('}');
  std::string extra = ",\n  \"traces\": {\"events\": " +
                      std::to_string(out.workload.traces.events) +
                      ", \"failures\": " +
                      std::to_string(out.workload.traces.failures) +
                      ", \"top_pages\": [";
  bool first = true;
  for (const auto& [page, hits] : out.workload.traces.top_pages(10)) {
    extra += first ? "\n    " : ",\n    ";
    extra += "{\"page\": \"" + page + "\", \"views\": " +
             std::to_string(hits) + "}";
    first = false;
  }
  extra += first ? "]}" : "\n  ]}";
  if (!out.landmarks.empty()) {
    extra += ",\n  \"landmarks\": [";
    bool first_family = true;
    for (const auto& [family, picks] : out.landmarks) {
      extra += first_family ? "\n    " : ",\n    ";
      extra += "{\"family\": \"" + family + "\", \"picks\": [";
      bool first_pick = true;
      for (const nav::LandmarkScore& pick : picks) {
        extra += first_pick ? "" : ", ";
        extra += "{\"node\": \"" + pick.node_id +
                 "\", \"views\": " + std::to_string(pick.views) +
                 ", \"degree\": " + std::to_string(pick.degree) + "}";
        first_pick = false;
      }
      extra += "]}";
      first_family = false;
    }
    extra += "\n  ]";
  }
  extra += "\n";
  return json.substr(0, brace) + extra + "}\n";
}

int run_mode(int argc, char** argv) {
  RunConfig config;
  config.paintings =
      static_cast<std::size_t>(arg_value(argc, argv, "--paintings", 16));
  config.profiles =
      static_cast<std::size_t>(arg_value(argc, argv, "--profiles", 2));
  config.threads =
      static_cast<std::size_t>(arg_value(argc, argv, "--threads", 4));
  config.steps = static_cast<std::size_t>(arg_value(argc, argv, "--steps", 256));
  config.shards =
      static_cast<std::size_t>(arg_value(argc, argv, "--shards", 4));
  config.seed = static_cast<std::uint64_t>(arg_value(argc, argv, "--seed", 42));
  config.with_repl = arg_flag(argc, argv, "--repl");
  config.landmark_top_k =
      static_cast<std::size_t>(arg_value(argc, argv, "--landmarks", 0));
  config.warm_top_n =
      static_cast<std::size_t>(arg_value(argc, argv, "--warm", 0));
  const std::string trace = arg_string(argc, argv, "--trace", "sampled");
  if (trace == "full") {
    config.trace = {.enabled = true, .sample_every = 1, .ring_capacity = 4096};
  } else if (trace == "sampled") {
    config.trace = {.enabled = true, .sample_every = 16,
                    .ring_capacity = 1024};
  } else if (trace != "off") {
    return usage();
  }

  const RunOutput out = drive(config);

  const std::string format = arg_string(argc, argv, "--format", "table");
  std::string rendered;
  if (format == "json") {
    rendered = export_json(out);
  } else if (format == "table") {
    rendered = out.snapshot.to_table();
    if (out.workload.traces.events > 0) {
      rendered += "top pages (traced views)\n";
      for (const auto& [page, hits] : out.workload.traces.top_pages(10)) {
        rendered += "  " + page + "  " + std::to_string(hits) + "\n";
      }
    }
    for (const auto& [family, picks] : out.landmarks) {
      rendered += "landmarks: " + family + " (views x degree blend)\n";
      for (const nav::LandmarkScore& pick : picks) {
        rendered += "  " + pick.node_id + "  views=" +
                    std::to_string(pick.views) + "  degree=" +
                    std::to_string(pick.degree) + "\n";
      }
    }
  } else {
    return usage();
  }

  const char* out_path = arg_string(argc, argv, "--out", nullptr);
  if (out_path != nullptr) {
    std::ofstream file(out_path);
    if (!file) {
      std::fprintf(stderr, "cannot write %s\n", out_path);
      return 1;
    }
    file << rendered;
    std::printf("wrote %s\n", out_path);
  } else {
    std::fputs(rendered.c_str(), stdout);
  }
  return 0;
}

// --- selftest -----------------------------------------------------------------

int failures = 0;

#define CHECK_EQ(a, b)                                                       \
  do {                                                                       \
    const unsigned long long va = static_cast<unsigned long long>(a);        \
    const unsigned long long vb = static_cast<unsigned long long>(b);        \
    if (va != vb) {                                                          \
      std::fprintf(stderr, "selftest: %s (%llu) != %s (%llu)\n", #a, va, #b, \
                   vb);                                                      \
      ++failures;                                                            \
    }                                                                        \
  } while (0)

/// One layer's gauges against its LayerStats, field for field.
void check_layer(const obs::Registry::Snapshot& snap, const std::string& prefix,
                 const serve::ConcurrentServer::LayerStats& layer) {
  const auto gauge = [&](const std::string& name) -> std::uint64_t {
    auto it = snap.gauges.find(prefix + name);
    if (it == snap.gauges.end()) {
      std::fprintf(stderr, "selftest: gauge %s%s missing\n", prefix.c_str(),
                   name.c_str());
      ++failures;
      return ~0ull;
    }
    return static_cast<std::uint64_t>(it->second);
  };
  CHECK_EQ(gauge(".requests"), layer.requests);
  CHECK_EQ(gauge(".hits"), layer.hits);
  CHECK_EQ(gauge(".resolves"), layer.resolves);
  CHECK_EQ(gauge(".stale_refills"), layer.stale_refills);
  CHECK_EQ(gauge(".not_found"), layer.not_found);
  CHECK_EQ(gauge(".entries"), layer.entries);
  CHECK_EQ(gauge(".inserted"), layer.inserted);
  CHECK_EQ(gauge(".evicted"), layer.evicted);
  CHECK_EQ(gauge(".resident_bytes"), layer.resident_bytes);
}

/// The digits the JSON exporter printed for `name`, parsed back out —
/// the export must carry the same values the live structs report.
std::uint64_t json_value(const std::string& json, const std::string& name) {
  const std::string key = "\"" + name + "\": ";
  const std::size_t at = json.find(key);
  if (at == std::string::npos) {
    std::fprintf(stderr, "selftest: %s missing from JSON export\n",
                 name.c_str());
    ++failures;
    return ~0ull;
  }
  return std::strtoull(json.c_str() + at + key.size(), nullptr, 10);
}

int run_selftest() {
  RunConfig config;
  config.paintings = 8;
  config.threads = 4;
  config.steps = 96;
  config.trace = {.enabled = true, .sample_every = 2, .ring_capacity = 256};
  config.with_repl = true;
  config.landmark_top_k = 3;
  config.warm_top_n = 8;
  const RunOutput out = drive(config);
  const obs::Registry::Snapshot& snap = out.snapshot;

  // Workload counters == the WorkloadResult the run returned.
  CHECK_EQ(snap.counters.at("workload.sessions"), out.workload.sessions);
  CHECK_EQ(snap.counters.at("workload.steps"), out.workload.steps);
  CHECK_EQ(snap.counters.at("workload.requests"), out.workload.requests);
  CHECK_EQ(snap.counters.at("workload.failures"), out.workload.failures);
  CHECK_EQ(snap.counters.at("workload.traces.recorded"),
           out.workload.traces.recorded);
  CHECK_EQ(snap.histograms.at("workload.latency").count,
           out.workload.latency.count());

  // serve.base.* / serve.overlay.* gauges == unified_stats(), field for
  // field, both layers.
  check_layer(snap, "serve.base", out.unified.base);
  check_layer(snap, "serve.overlay", out.unified.overlay);
  CHECK_EQ(static_cast<std::uint64_t>(snap.gauges.at("serve.epoch")),
           out.unified.epoch);

  // The compatibility Stats struct is a thin mapping of UnifiedStats —
  // the two views must agree exactly.
  CHECK_EQ(out.compat.requests, out.unified.base.requests);
  CHECK_EQ(out.compat.cache_hits, out.unified.base.hits);
  CHECK_EQ(out.compat.snapshot_resolves, out.unified.base.resolves);
  CHECK_EQ(out.compat.stale_refills, out.unified.base.stale_refills);
  CHECK_EQ(out.compat.not_found, out.unified.base.not_found);
  CHECK_EQ(out.compat.cached_entries, out.unified.base.entries);
  CHECK_EQ(out.compat.cache_inserted, out.unified.base.inserted);
  CHECK_EQ(out.compat.cache_evicted, out.unified.base.evicted);
  CHECK_EQ(out.compat.cached_bytes, out.unified.base.resident_bytes);
  CHECK_EQ(out.compat.overlay_requests, out.unified.overlay.requests);
  CHECK_EQ(out.compat.overlay_hits, out.unified.overlay.hits);
  CHECK_EQ(out.compat.overlay_renders, out.unified.overlay.resolves);
  CHECK_EQ(out.compat.overlay_stale_renders,
           out.unified.overlay.stale_refills);
  CHECK_EQ(out.compat.overlay_not_found, out.unified.overlay.not_found);
  CHECK_EQ(out.compat.overlay_entries, out.unified.overlay.entries);
  CHECK_EQ(out.compat.overlay_inserted, out.unified.overlay.inserted);
  CHECK_EQ(out.compat.overlay_evicted, out.unified.overlay.evicted);
  CHECK_EQ(out.compat.overlay_bytes, out.unified.overlay.resident_bytes);
  CHECK_EQ(out.compat.epoch, out.unified.epoch);

  // Engine-side single-site server + store gauges.
  CHECK_EQ(static_cast<std::uint64_t>(snap.gauges.at("engine.server.requests")),
           out.engine_server.requests);
  CHECK_EQ(
      static_cast<std::uint64_t>(snap.gauges.at("engine.server.cache_hits")),
      out.engine_server.cache_hits);
  CHECK_EQ(static_cast<std::uint64_t>(snap.gauges.at("store.epoch")),
           out.store_epoch);

  // Replication leg: publisher/replica samplers mirror their stats().
  CHECK_EQ(
      static_cast<std::uint64_t>(snap.gauges.at("repl.pub.full_frames")),
      out.pub.full_frames);
  CHECK_EQ(
      static_cast<std::uint64_t>(snap.gauges.at("repl.pub.delta_frames")),
      out.pub.delta_frames);
  CHECK_EQ(
      static_cast<std::uint64_t>(snap.gauges.at("repl.rep.frames_applied")),
      out.rep.frames_applied);
  CHECK_EQ(static_cast<std::uint64_t>(snap.gauges.at("repl.rep.epoch")),
           out.rep.epoch);
  // The replica followed the origin all the way.
  CHECK_EQ(out.rep.epoch, out.store_epoch);

  // Landmark report: the traced traffic must have crowned real hubs,
  // ranked within the requested top-K, and the synthesized access
  // structure must exist as an authored site artifact.
  if (out.landmarks.empty()) {
    std::fprintf(stderr, "selftest: no landmark families reported\n");
    ++failures;
  }
  for (const auto& [family, picks] : out.landmarks) {
    if (picks.empty() || picks.size() > 3) {
      std::fprintf(stderr, "selftest: %s reported %zu picks (want 1..3)\n",
                   family.c_str(), picks.size());
      ++failures;
    }
    for (std::size_t i = 1; i < picks.size(); ++i) {
      if (picks[i - 1].score < picks[i].score) {
        std::fprintf(stderr, "selftest: %s picks not ranked\n",
                     family.c_str());
        ++failures;
      }
    }
  }
  if (!out.site_has_landmark_artifact) {
    std::fprintf(stderr,
                 "selftest: links-landmarks.xml missing from the site\n");
    ++failures;
  }

  // Cache warming: the serve.warm.* gauges mirror the warmer's stats()
  // and the outcome accounting reconciles exactly.
  CHECK_EQ(static_cast<std::uint64_t>(snap.gauges.at("serve.warm.cycles")),
           out.warm.cycles);
  CHECK_EQ(static_cast<std::uint64_t>(snap.gauges.at("serve.warm.attempted")),
           out.warm.attempted);
  CHECK_EQ(static_cast<std::uint64_t>(snap.gauges.at("serve.warm.warmed")),
           out.warm.warmed);
  CHECK_EQ(static_cast<std::uint64_t>(snap.gauges.at("serve.warm.no_room")),
           out.warm.no_room);
  CHECK_EQ(static_cast<std::uint64_t>(snap.gauges.at("serve.warm.not_found")),
           out.warm.not_found);
  CHECK_EQ(out.warm.attempted, out.warm.warmed + out.warm.already_hot +
                                   out.warm.no_room + out.warm.not_found);
  if (out.warm.cycles != 1 || out.warm.attempted == 0) {
    std::fprintf(stderr, "selftest: warm cycle empty (attempted=%llu)\n",
                 static_cast<unsigned long long>(out.warm.attempted));
    ++failures;
  }

  // The JSON export carries the same digits as the live structs.
  const std::string json = export_json(out);
  CHECK_EQ(json_value(json, "workload.requests"), out.workload.requests);
  CHECK_EQ(json_value(json, "serve.base.requests"),
           out.unified.base.requests);
  CHECK_EQ(json_value(json, "serve.overlay.requests"),
           out.unified.overlay.requests);
  CHECK_EQ(json_value(json, "repl.rep.frames_applied"),
           out.rep.frames_applied);
  CHECK_EQ(json_value(json, "serve.warm.warmed"), out.warm.warmed);
  if (json.find("\"landmarks\": [") == std::string::npos) {
    std::fprintf(stderr, "selftest: landmark report missing from JSON\n");
    ++failures;
  }

  // And the run actually observed things worth exporting.
  if (out.workload.requests == 0 || out.workload.traces.events == 0 ||
      snap.spans_recorded == 0) {
    std::fprintf(stderr,
                 "selftest: empty run (requests=%zu traces=%llu spans=%llu)\n",
                 out.workload.requests,
                 static_cast<unsigned long long>(out.workload.traces.events),
                 static_cast<unsigned long long>(snap.spans_recorded));
    ++failures;
  }

  if (failures != 0) {
    std::fprintf(stderr, "selftest: %d reconciliation failure(s)\n", failures);
    return 1;
  }
  std::printf(
      "selftest: OK — %zu requests, %llu traced events, %llu spans; registry "
      "reconciles with every per-layer stats() view\n",
      out.workload.requests,
      static_cast<unsigned long long>(out.workload.traces.events),
      static_cast<unsigned long long>(snap.spans_recorded));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  try {
    if (std::strcmp(argv[1], "run") == 0) return run_mode(argc, argv);
    if (std::strcmp(argv[1], "selftest") == 0) return run_selftest();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "navsep_stats: %s\n", e.what());
    return 1;
  }
  return usage();
}

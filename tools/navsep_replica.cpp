// navsep_replica — the multi-process face of snapshot replication.
//
// Three modes over one endpoint spec (unix:/path or tcp:HOST:PORT):
//
//   navsep_replica origin <endpoint> [--epochs N] [--interval-ms M]
//     Build the paper museum engine with ByAuthor/ByMovement contexts
//     and three serving profiles, publish its snapshot stream at
//     <endpoint>, then run N mutation epochs (retitles, arc edits,
//     context reorders) M ms apart before draining and exiting.
//
//   navsep_replica replica <endpoint> [--until-epoch E] [--timeout-ms T]
//                  [--page PATH] [--profile NAME] [--obs PATH]
//     Connect to an origin, apply its frame stream into a local
//     SnapshotStore until epoch E (or EOF), optionally serve one page
//     (base or profile-scoped) through a ConcurrentServer over the
//     replicated store, and report what was applied. With --obs, dump
//     the replica's obs::Registry snapshot (repl.rep.* gauges plus the
//     epoch-correlated repl.apply spans) as JSON to PATH ("-" for
//     stdout).
//
//   navsep_replica selftest [<endpoint>] [--obs PATH]
//     Origin and replica in one process over a real socket (default:
//     ephemeral loopback TCP): mutate, stream, then verify the replica's
//     snapshot is byte-identical to the origin's — every artifact and
//     every profile-scoped page. Exit status is the verdict.
//
// Run two terminals for the real thing:
//   build/tools/navsep_replica origin tcp:127.0.0.1:4710 --epochs 50 &
//   build/tools/navsep_replica replica tcp:127.0.0.1:4710
//       --until-epoch 20 --page guitar.html --profile tour
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "hypermedia/access.hpp"
#include "hypermedia/context.hpp"
#include "nav/pipeline.hpp"
#include "obs/registry.hpp"
#include "repl/publisher.hpp"
#include "repl/replica.hpp"
#include "serve/concurrent_server.hpp"

namespace {

namespace hm = navsep::hypermedia;
namespace nav = navsep::nav;
namespace obs = navsep::obs;
namespace repl = navsep::repl;
namespace serve = navsep::serve;

int usage() {
  std::fprintf(
      stderr,
      "usage: navsep_replica origin <endpoint> [--epochs N] [--interval-ms M]\n"
      "       navsep_replica replica <endpoint> [--until-epoch E]\n"
      "                      [--timeout-ms T] [--page PATH] [--profile NAME]\n"
      "                      [--obs PATH]\n"
      "       navsep_replica selftest [<endpoint>] [--obs PATH]\n"
      "  <endpoint>: unix:/path/to.sock | tcp:HOST:PORT\n");
  return 2;
}

/// Dump a registry snapshot as JSON to `path` ("-" = stdout). Returns
/// false (with a message) when the file cannot be written.
bool dump_registry(const obs::Registry& registry, const char* path) {
  const std::string json = registry.snapshot().to_json();
  if (std::strcmp(path, "-") == 0) {
    std::fputs(json.c_str(), stdout);
    return true;
  }
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return false;
  }
  out << json;
  std::printf("wrote %s\n", path);
  return true;
}

long long arg_value(int argc, char** argv, const char* name,
                    long long fallback) {
  for (int i = 0; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return std::atoll(argv[i + 1]);
  }
  return fallback;
}

const char* arg_string(int argc, char** argv, const char* name,
                       const char* fallback) {
  for (int i = 0; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return fallback;
}

/// The shared origin: the paper museum with both context families and a
/// small profile table — enough surface for deltas of every kind.
std::unique_ptr<nav::Engine> make_origin_engine() {
  auto engine = nav::SitePipeline()
                    .paper_museum()
                    .schema()
                    .access(hm::AccessStructureKind::IndexedGuidedTour,
                            "picasso")
                    .contexts({"ByAuthor", "ByMovement"})
                    .weave()
                    .serve();
  engine->internals().register_profile({"kiosk", {}});
  engine->internals().register_profile({"tour", {"ByAuthor"}});
  engine->internals().register_profile(
      {"everything", {"ByAuthor", "ByMovement"}});
  return engine;
}

/// One scripted mutation per call, cycling through the kinds a live
/// origin would mix: retitles (page-local), arc edits (structure-wide),
/// context reorders (single-family — the delta sweet spot).
void mutate(nav::Engine& engine, int step) {
  switch (step % 3) {
    case 0: {
      const auto& members = engine.structure().members();
      const auto& id = members[static_cast<std::size_t>(step) %
                               members.size()].node_id;
      (void)engine.internals().retitle_node(
          id, "epoch-title-" + std::to_string(step));
      break;
    }
    case 1: {
      std::vector<hm::AccessArc> arcs = engine.internals().authored_arcs();
      if (arcs.empty()) break;
      hm::AccessArc edited = arcs[static_cast<std::size_t>(step) %
                                  arcs.size()];
      edited.title = "epoch-arc-" + std::to_string(step);
      (void)engine.internals().replace_arc(
          static_cast<std::size_t>(step) % arcs.size(), std::move(edited));
      break;
    }
    default: {
      (void)engine.internals().edit_context_family(
          step % 2 == 0 ? "ByAuthor" : "ByMovement",
          [](hm::ContextFamily& family) {
            std::vector<hm::NavigationalContext> contexts =
                family.contexts();
            if (contexts.empty()) return;
            auto& context = contexts.front();
            std::vector<std::string> ids = context.node_ids();
            if (ids.size() < 2) return;
            std::rotate(ids.begin(), ids.begin() + 1, ids.end());
            context = hm::NavigationalContext(context.family(),
                                              context.name(),
                                              std::move(ids));
            family.replace_contexts(std::move(contexts));
          });
      break;
    }
  }
}

int run_origin(int argc, char** argv) {
  const repl::Endpoint endpoint = repl::Endpoint::parse(argv[2]);
  const long long epochs = arg_value(argc, argv, "--epochs", 30);
  const long long interval_ms = arg_value(argc, argv, "--interval-ms", 20);

  auto engine = make_origin_engine();
  auto publisher = engine->open_publisher(endpoint);
  std::printf("origin: publishing at %s (epoch %llu)\n",
              publisher->endpoint().to_string().c_str(),
              static_cast<unsigned long long>(
                  engine->internals().snapshots().epoch()));

  for (long long step = 0; step < epochs; ++step) {
    mutate(*engine, static_cast<int>(step));
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
  // Give tails of the stream a moment to drain before tearing down.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  const repl::Publisher::Stats s = publisher->stats();
  std::printf(
      "origin: done at epoch %llu — %zu subscriber(s), %zu full (%llu B), "
      "%zu delta (%llu B), %zu forced resync(s)\n",
      static_cast<unsigned long long>(engine->internals().snapshots().epoch()),
      s.subscribers_accepted, s.full_frames,
      static_cast<unsigned long long>(s.full_bytes), s.delta_frames,
      static_cast<unsigned long long>(s.delta_bytes), s.resync_fulls);
  return 0;
}

int run_replica(int argc, char** argv) {
  const repl::Endpoint endpoint = repl::Endpoint::parse(argv[2]);
  const long long until_epoch = arg_value(argc, argv, "--until-epoch", 0);
  const long long timeout_ms = arg_value(argc, argv, "--timeout-ms", 10000);
  const char* page = arg_string(argc, argv, "--page", nullptr);
  const char* profile = arg_string(argc, argv, "--profile", nullptr);
  const char* obs_path = arg_string(argc, argv, "--obs", nullptr);

  repl::Replica replica = repl::Replica::connect(endpoint);
  auto registry = std::make_shared<obs::Registry>();
  if (obs_path != nullptr) replica.attach_telemetry(registry);
  replica.start();
  if (until_epoch > 0) {
    if (!replica.wait_for_epoch(static_cast<std::uint64_t>(until_epoch),
                                std::chrono::milliseconds(timeout_ms))) {
      std::fprintf(stderr, "replica: timed out waiting for epoch %lld%s%s\n",
                   until_epoch, replica.error().empty() ? "" : " — ",
                   replica.error().c_str());
      return 1;
    }
  } else {
    // No target epoch: follow the stream until the origin closes it.
    while (replica.error().empty() &&
           !replica.wait_for_epoch(replica.stats().epoch + 1,
                                   std::chrono::milliseconds(250))) {
      // keep polling; wait_for_epoch false = quarter-second of silence
      if (replica.stats().epoch == 0) continue;
      break;  // stream idle after having synced at least once
    }
  }

  const repl::ReplicaStats s = replica.stats();
  std::printf(
      "replica: epoch %llu — %zu frame(s): %zu full, %zu delta, %llu B\n",
      static_cast<unsigned long long>(s.epoch), s.frames_applied,
      s.fulls_applied, s.deltas_applied,
      static_cast<unsigned long long>(s.bytes_received));
  if (!replica.error().empty()) {
    std::fprintf(stderr, "replica: stream error: %s\n",
                 replica.error().c_str());
    return 1;
  }

  if (page != nullptr) {
    serve::ConcurrentServer server(replica.store(), 4);
    const navsep::site::Response r =
        profile != nullptr ? server.get(page, profile) : server.get(page);
    if (!r.ok()) {
      std::fprintf(stderr, "replica: GET %s -> %d\n", page, r.status);
      return 1;
    }
    std::printf("%s\n", r.body->c_str());
  }
  if (obs_path != nullptr && !dump_registry(*registry, obs_path)) return 1;
  return 0;
}

int run_selftest(int argc, char** argv) {
  const repl::Endpoint endpoint =
      argc > 2 && argv[2][0] != '-' ? repl::Endpoint::parse(argv[2])
                                    : repl::Endpoint::tcp("127.0.0.1", 0);
  const char* obs_path = arg_string(argc, argv, "--obs", nullptr);

  auto engine = make_origin_engine();
  // One registry over both ends of the wire: the publisher's repl.pub.*
  // gauges and the replica's repl.rep.* gauges land in one snapshot, so
  // an --obs dump shows the frame stream from both sides.
  auto registry = std::make_shared<obs::Registry>();
  repl::PublisherOptions popts;
  popts.telemetry = registry;
  auto publisher = engine->open_publisher(endpoint, popts);
  repl::Replica replica = repl::Replica::connect(publisher->endpoint());
  replica.attach_telemetry(registry);
  replica.start();

  for (int step = 0; step < 24; ++step) mutate(*engine, step);
  const std::uint64_t target = engine->internals().snapshots().epoch();
  if (!replica.wait_for_epoch(target, std::chrono::seconds(30))) {
    std::fprintf(stderr, "selftest: replica never reached epoch %llu (%s)\n",
                 static_cast<unsigned long long>(target),
                 replica.error().c_str());
    return 1;
  }

  // Byte identity: every artifact, then every profile-scoped page.
  auto origin_snap = engine->internals().snapshots().current();
  auto replica_snap = replica.store().current();
  std::size_t checked = 0;
  // Compare artifacts by content (the maps hold shared_ptr handles).
  bool files_diverged =
      replica_snap->files().size() != origin_snap->files().size();
  if (!files_diverged) {
    auto it = replica_snap->files().begin();
    for (const auto& [path, bytes] : origin_snap->files()) {
      if (it->first != path || *it->second != *bytes) {
        files_diverged = true;
        break;
      }
      ++it;
    }
  }
  if (files_diverged) {
    std::fprintf(stderr, "selftest: artifact bytes diverged\n");
    return 1;
  }
  checked += origin_snap->files().size();
  for (const nav::Profile& profile : origin_snap->profiles()) {
    for (const auto& [path, bytes] : origin_snap->files()) {
      if (path.size() < 5 || path.substr(path.size() - 5) != ".html") {
        continue;
      }
      const auto mine = origin_snap->respond_as(profile.name, path);
      const auto theirs = replica_snap->respond_as(profile.name, path);
      if (mine.status != theirs.status ||
          (mine.ok() && *mine.body != *theirs.body)) {
        std::fprintf(stderr, "selftest: %s as %s diverged\n", path.c_str(),
                     profile.name.c_str());
        return 1;
      }
      ++checked;
    }
  }

  const repl::Publisher::Stats ps = publisher->stats();
  const repl::ReplicaStats rs = replica.stats();
  std::printf(
      "selftest: OK — epoch %llu replicated over %s; %zu byte-identical "
      "responses; %zu full + %zu delta frame(s), %llu B on the wire\n",
      static_cast<unsigned long long>(rs.epoch),
      publisher->endpoint().to_string().c_str(), checked, ps.full_frames,
      ps.delta_frames,
      static_cast<unsigned long long>(ps.full_bytes + ps.delta_bytes));
  if (obs_path != nullptr && !dump_registry(*registry, obs_path)) return 1;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  try {
    if (std::strcmp(argv[1], "origin") == 0 && argc >= 3) {
      return run_origin(argc, argv);
    }
    if (std::strcmp(argv[1], "replica") == 0 && argc >= 3) {
      return run_replica(argc, argv);
    }
    if (std::strcmp(argv[1], "selftest") == 0) {
      return run_selftest(argc, argv);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "navsep_replica: %s\n", e.what());
    return 1;
  }
  return usage();
}

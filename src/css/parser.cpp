#include "common/error.hpp"
#include "common/strings.hpp"
#include "common/text_cursor.hpp"
#include "css/css.hpp"

namespace navsep::css {

namespace {

bool is_ident_start(char c) noexcept {
  return strings::is_alpha(c) || c == '_' || c == '-' ||
         static_cast<unsigned char>(c) >= 0x80;
}

bool is_ident_char(char c) noexcept {
  return is_ident_start(c) || strings::is_digit(c);
}

/// Skip whitespace and /* comments */.
void skip_space(TextCursor& cur) {
  for (;;) {
    cur.skip_ws();
    if (cur.consume("/*")) {
      cur.take_until("*/");
      cur.consume("*/");
      continue;
    }
    return;
  }
}

std::string parse_ident(TextCursor& cur) {
  if (!is_ident_start(cur.peek())) cur.fail("expected identifier");
  return std::string(cur.take_while(is_ident_char));
}

/// Attribute selector after '['.
AttributeSelector parse_attribute(TextCursor& cur) {
  AttributeSelector out;
  skip_space(cur);
  out.name = parse_ident(cur);
  skip_space(cur);
  if (cur.consume("~=")) {
    out.op = AttributeSelector::Op::Includes;
  } else if (cur.consume("|=")) {
    out.op = AttributeSelector::Op::DashMatch;
  } else if (cur.consume('=')) {
    out.op = AttributeSelector::Op::Equals;
  } else {
    cur.skip_ws();
    cur.expect("]", "']' after attribute name");
    return out;
  }
  skip_space(cur);
  char q = cur.peek();
  if (q == '"' || q == '\'') {
    cur.advance();
    out.value = std::string(cur.take_until(std::string_view(&q, 1)));
    cur.advance();
  } else {
    out.value = parse_ident(cur);
  }
  skip_space(cur);
  cur.expect("]", "']' after attribute selector");
  return out;
}

/// One compound selector (type/#id/.class/[attr] run, no whitespace).
SimpleSelector parse_compound(TextCursor& cur) {
  SimpleSelector out;
  bool any = false;
  if (cur.consume('*')) {
    out.type = "*";
    any = true;
  } else if (is_ident_start(cur.peek())) {
    out.type = parse_ident(cur);
    any = true;
  }
  for (;;) {
    if (cur.consume('#')) {
      out.id = parse_ident(cur);
      any = true;
    } else if (cur.consume('.')) {
      out.classes.push_back(parse_ident(cur));
      any = true;
    } else if (cur.consume('[')) {
      out.attributes.push_back(parse_attribute(cur));
      any = true;
    } else {
      break;
    }
  }
  if (!any) cur.fail("expected selector");
  return out;
}

Selector parse_selector(TextCursor& cur) {
  Selector out;
  out.compounds.push_back(parse_compound(cur));
  for (;;) {
    // Lookahead: whitespace may be a descendant combinator or the end.
    bool ws = false;
    std::size_t mark = cur.offset();
    while (strings::is_space(cur.peek())) {
      cur.advance();
      ws = true;
    }
    if (cur.consume('>')) {
      skip_space(cur);
      out.combinators.push_back(Selector::Combinator::Child);
      out.compounds.push_back(parse_compound(cur));
      continue;
    }
    char c = cur.peek();
    bool starts_compound = is_ident_start(c) || c == '*' || c == '#' ||
                           c == '.' || c == '[';
    if (ws && starts_compound) {
      out.combinators.push_back(Selector::Combinator::Descendant);
      out.compounds.push_back(parse_compound(cur));
      continue;
    }
    // Not a combinator: rewind the whitespace for the caller.
    if (ws && !starts_compound) {
      cur = TextCursor(cur.input());
      cur.advance(mark);
    }
    return out;
  }
}

std::vector<Selector> parse_group(TextCursor& cur) {
  std::vector<Selector> out;
  skip_space(cur);
  out.push_back(parse_selector(cur));
  for (;;) {
    skip_space(cur);
    if (!cur.consume(',')) return out;
    skip_space(cur);
    out.push_back(parse_selector(cur));
  }
}

/// Declarations inside `{ ... }`. Implements CSS error recovery: a bad
/// declaration is skipped up to the next ';'.
std::vector<Declaration> parse_declarations(TextCursor& cur) {
  std::vector<Declaration> out;
  for (;;) {
    skip_space(cur);
    if (cur.consume('}')) return out;
    if (cur.eof()) cur.fail("unterminated declaration block");
    if (cur.consume(';')) continue;

    Declaration d;
    try {
      d.property = strings::to_lower(parse_ident(cur));
      skip_space(cur);
      cur.expect(":", "':' after property name");
      skip_space(cur);
      std::string value;
      while (!cur.eof() && cur.peek() != ';' && cur.peek() != '}') {
        char q = cur.peek();
        if (q == '"' || q == '\'') {
          cur.advance();
          value.push_back(q);
          value += std::string(cur.take_until(std::string_view(&q, 1)));
          cur.advance();
          value.push_back(q);
        } else {
          value.push_back(cur.next());
        }
      }
      std::string trimmed(strings::trim(value));
      // `!important` suffix.
      constexpr std::string_view kImportant = "!important";
      if (trimmed.size() >= kImportant.size()) {
        std::string lowered = strings::to_lower(trimmed);
        std::size_t at = lowered.rfind(kImportant);
        if (at != std::string::npos &&
            at + kImportant.size() == lowered.size()) {
          d.important = true;
          trimmed = std::string(strings::trim(trimmed.substr(0, at)));
        }
      }
      d.value = trimmed;
      if (!d.property.empty() && !d.value.empty()) {
        out.push_back(std::move(d));
      }
    } catch (const ParseError&) {
      // Error recovery: skip to the end of this declaration.
      while (!cur.eof() && cur.peek() != ';' && cur.peek() != '}') {
        cur.advance();
      }
    }
  }
}

}  // namespace

std::vector<Selector> parse_selector_group(std::string_view text) {
  TextCursor cur(text);
  std::vector<Selector> group = parse_group(cur);
  skip_space(cur);
  if (!cur.eof()) cur.fail("trailing characters after selector");
  return group;
}

Stylesheet parse(std::string_view text) {
  Stylesheet out;
  TextCursor cur(text);
  for (;;) {
    skip_space(cur);
    if (cur.eof()) return out;
    // At-rules are not supported; skip them wholesale (to ';' or block).
    if (cur.consume('@')) {
      while (!cur.eof() && cur.peek() != ';' && cur.peek() != '{') {
        cur.advance();
      }
      if (cur.consume('{')) {
        int depth = 1;
        while (depth > 0 && !cur.eof()) {
          char c = cur.next();
          if (c == '{') ++depth;
          if (c == '}') --depth;
        }
      } else {
        cur.consume(';');
      }
      continue;
    }

    Rule rule;
    bool selector_ok = true;
    try {
      rule.selectors = parse_group(cur);
    } catch (const ParseError&) {
      selector_ok = false;  // drop the whole rule, per CSS recovery
    }
    skip_space(cur);
    if (!cur.consume('{')) {
      // Resynchronize: skip to the next block and discard it.
      while (!cur.eof() && cur.peek() != '{') cur.advance();
      if (cur.eof()) return out;
      cur.advance();
      selector_ok = false;
    }
    std::vector<Declaration> decls = parse_declarations(cur);
    if (selector_ok) {
      rule.declarations = std::move(decls);
      out.rules.push_back(std::move(rule));
    }
  }
}

}  // namespace navsep::css

#include <algorithm>

#include "css/css.hpp"

namespace navsep::css {

void StyleResolver::add_sheet(Stylesheet sheet, Origin origin) {
  sheets_.push_back(std::move(sheet));
  const Stylesheet& stored = sheets_.back();
  for (const Rule& rule : stored.rules) {
    for (const Selector& sel : rule.selectors) {
      index_.push_back(TaggedRule{sel, &rule, origin, index_.size()});
    }
  }
}

std::optional<std::string> StyleResolver::cascaded(
    const xml::Element& e, std::string_view property) const {
  // Winner = max by (importance, origin, specificity, source order).
  const Declaration* best = nullptr;
  std::tuple<int, int, std::uint32_t, std::size_t> best_key;
  for (const TaggedRule& tr : index_) {
    if (!tr.selector.matches(e)) continue;
    for (const Declaration& d : tr.rule->declarations) {
      if (d.property != property) continue;
      auto key = std::make_tuple(d.important ? 1 : 0,
                                 static_cast<int>(tr.origin),
                                 tr.selector.specificity(), tr.order);
      if (best == nullptr || key > best_key) {
        best = &d;
        best_key = key;
      }
    }
  }
  if (best == nullptr) return std::nullopt;
  return best->value;
}

std::optional<std::string> StyleResolver::computed(
    const xml::Element& e, std::string_view property) const {
  std::optional<std::string> own = cascaded(e, property);
  const bool wants_inherit = own.has_value() && *own == "inherit";
  if (own.has_value() && !wants_inherit) return own;
  if (wants_inherit || inherits_by_default(property)) {
    for (const xml::Node* p = e.parent(); p != nullptr; p = p->parent()) {
      const xml::Element* pe = p->as_element();
      if (pe == nullptr) break;
      std::optional<std::string> v = cascaded(*pe, property);
      if (v.has_value() && *v != "inherit") return v;
    }
  }
  return std::nullopt;
}

std::map<std::string, std::string> StyleResolver::computed_style(
    const xml::Element& e) const {
  // Gather candidate properties from every rule that matches the element
  // or one of its ancestors (for inheritance), then compute each.
  std::map<std::string, std::string> out;
  std::vector<const xml::Element*> chain;
  for (const xml::Node* n = &e; n != nullptr; n = n->parent()) {
    if (const xml::Element* el = n->as_element()) chain.push_back(el);
  }
  std::vector<std::string> candidates;
  for (const TaggedRule& tr : index_) {
    bool relevant = false;
    for (const xml::Element* el : chain) {
      if (tr.selector.matches(*el)) {
        relevant = el == &e;
        if (!relevant) {
          // Ancestor match matters only for inheritable properties.
          for (const Declaration& d : tr.rule->declarations) {
            if (inherits_by_default(d.property)) {
              candidates.push_back(d.property);
            }
          }
        }
        break;
      }
    }
    if (relevant) {
      for (const Declaration& d : tr.rule->declarations) {
        candidates.push_back(d.property);
      }
    }
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  for (const std::string& prop : candidates) {
    if (std::optional<std::string> v = computed(e, prop)) {
      out.emplace(prop, std::move(*v));
    }
  }
  return out;
}

}  // namespace navsep::css

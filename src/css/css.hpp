// A CSS2 subset: the presentation half of the paper's
// data / presentation / navigation split.
//
// Supported grammar:
//   * selectors — type, universal `*`, `.class`, `#id`, attribute selectors
//     ([attr], [attr=v], [attr~=v], [attr|=v]), descendant and child
//     combinators, comma-separated selector groups;
//   * declarations — `property: value` with optional `!important`;
//   * cascade — origin (user agent < author), importance, specificity,
//     source order; inheritance for the CSS2 inherited properties and the
//     explicit `inherit` keyword.
//
// Out of scope (documented): pseudo-classes/elements, media queries,
// shorthand expansion, and actual layout — the museum pipeline only needs
// computed declarations per element.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "xml/dom.hpp"

namespace navsep::css {

/// [attr], [attr=v], [attr~=v], [attr|=v]
struct AttributeSelector {
  enum class Op { Exists, Equals, Includes, DashMatch };
  std::string name;
  Op op = Op::Exists;
  std::string value;
};

/// One compound selector: everything that applies to a single element.
struct SimpleSelector {
  std::string type;  // element name; empty or "*" = universal
  std::string id;
  std::vector<std::string> classes;
  std::vector<AttributeSelector> attributes;

  [[nodiscard]] bool matches(const xml::Element& e) const;
};

/// A selector chain: compounds joined by combinators, e.g. `ul > li a`.
struct Selector {
  enum class Combinator { Descendant, Child };
  std::vector<SimpleSelector> compounds;       // left to right
  std::vector<Combinator> combinators;         // size = compounds-1

  [[nodiscard]] bool matches(const xml::Element& e) const;

  /// CSS2 specificity as (ids, classes+attrs, types), packed so that
  /// lexicographic comparison is numeric comparison.
  [[nodiscard]] std::uint32_t specificity() const;

  [[nodiscard]] std::string to_string() const;
};

struct Declaration {
  std::string property;  // lowercase
  std::string value;
  bool important = false;
};

struct Rule {
  std::vector<Selector> selectors;
  std::vector<Declaration> declarations;
};

struct Stylesheet {
  std::vector<Rule> rules;

  [[nodiscard]] std::size_t rule_count() const noexcept {
    return rules.size();
  }
};

/// Parse a stylesheet. Per the CSS error-recovery rule, malformed
/// declarations are skipped individually; a malformed selector drops its
/// whole rule. Only unrecoverable input (unterminated block/string) throws.
[[nodiscard]] Stylesheet parse(std::string_view text);

/// Parse a single selector group ("a, b > c"). Throws navsep::ParseError.
[[nodiscard]] std::vector<Selector> parse_selector_group(
    std::string_view text);

/// Where a stylesheet came from; later origins win ties.
enum class Origin { UserAgent = 0, Author = 1 };

/// Resolves computed style for elements of a document.
class StyleResolver {
 public:
  void add_sheet(Stylesheet sheet, Origin origin = Origin::Author);

  /// Declared value of `property` on `e` after cascade (no inheritance).
  [[nodiscard]] std::optional<std::string> cascaded(
      const xml::Element& e, std::string_view property) const;

  /// Computed value: cascade + inheritance ('inherit' keyword and the
  /// CSS2 inherited-by-default property list).
  [[nodiscard]] std::optional<std::string> computed(
      const xml::Element& e, std::string_view property) const;

  /// Every computed property for an element (used by the benchmarks).
  [[nodiscard]] std::map<std::string, std::string> computed_style(
      const xml::Element& e) const;

 private:
  struct TaggedRule {
    Selector selector;  // one selector of the rule
    const Rule* rule;
    Origin origin;
    std::size_t order;  // global source order
  };

  std::vector<Stylesheet> sheets_;
  std::vector<TaggedRule> index_;
};

/// True for properties that inherit by default in CSS2 (color, font-*,
/// text-*, letter-spacing, line-height, list-style*, quotes, ...).
[[nodiscard]] bool inherits_by_default(std::string_view property) noexcept;

}  // namespace navsep::css

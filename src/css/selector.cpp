#include <algorithm>

#include "common/strings.hpp"
#include "css/css.hpp"

namespace navsep::css {

namespace {

bool attr_matches(const AttributeSelector& sel, const xml::Element& e) {
  auto v = e.attribute(sel.name);
  if (!v.has_value()) return false;
  switch (sel.op) {
    case AttributeSelector::Op::Exists:
      return true;
    case AttributeSelector::Op::Equals:
      return *v == sel.value;
    case AttributeSelector::Op::Includes: {
      for (std::string_view word : strings::split_ws(*v)) {
        if (word == sel.value) return true;
      }
      return false;
    }
    case AttributeSelector::Op::DashMatch:
      return *v == sel.value ||
             (v->size() > sel.value.size() &&
              v->substr(0, sel.value.size()) == sel.value &&
              (*v)[sel.value.size()] == '-');
  }
  return false;
}

}  // namespace

bool SimpleSelector::matches(const xml::Element& e) const {
  if (!type.empty() && type != "*" && e.name().local != type) return false;
  if (!id.empty()) {
    auto v = e.attribute("id");
    if (!v.has_value() || *v != id) return false;
  }
  if (!classes.empty()) {
    auto v = e.attribute("class");
    if (!v.has_value()) return false;
    auto words = strings::split_ws(*v);
    for (const auto& cls : classes) {
      if (std::find(words.begin(), words.end(), cls) == words.end()) {
        return false;
      }
    }
  }
  for (const auto& a : attributes) {
    if (!attr_matches(a, e)) return false;
  }
  return true;
}

bool Selector::matches(const xml::Element& e) const {
  if (compounds.empty()) return false;
  // Match right to left: the rightmost compound must match `e`, then walk
  // ancestors according to the combinators.
  std::size_t i = compounds.size() - 1;
  if (!compounds[i].matches(e)) return false;
  const xml::Element* current = &e;
  while (i > 0) {
    Combinator comb = combinators[i - 1];
    --i;
    const xml::Node* parent = current->parent();
    if (comb == Combinator::Child) {
      const xml::Element* pe =
          parent != nullptr ? parent->as_element() : nullptr;
      if (pe == nullptr || !compounds[i].matches(*pe)) return false;
      current = pe;
    } else {
      // Descendant: any ancestor may match; backtracking over ancestors is
      // sound because each ancestor choice only loosens later constraints.
      const xml::Element* anchor = nullptr;
      for (const xml::Node* n = parent; n != nullptr; n = n->parent()) {
        const xml::Element* pe = n->as_element();
        if (pe != nullptr && compounds[i].matches(*pe)) {
          anchor = pe;
          break;
        }
      }
      if (anchor == nullptr) return false;
      current = anchor;
    }
  }
  return true;
}

std::uint32_t Selector::specificity() const {
  std::uint32_t ids = 0, classes = 0, types = 0;
  for (const auto& c : compounds) {
    if (!c.id.empty()) ++ids;
    classes += static_cast<std::uint32_t>(c.classes.size());
    classes += static_cast<std::uint32_t>(c.attributes.size());
    if (!c.type.empty() && c.type != "*") ++types;
  }
  return (ids << 20) | (classes << 10) | types;
}

std::string Selector::to_string() const {
  std::string out;
  for (std::size_t i = 0; i < compounds.size(); ++i) {
    if (i > 0) {
      out += combinators[i - 1] == Combinator::Child ? " > " : " ";
    }
    const SimpleSelector& c = compounds[i];
    std::string piece;
    if (!c.type.empty()) piece += c.type;
    if (!c.id.empty()) piece += "#" + c.id;
    for (const auto& cls : c.classes) piece += "." + cls;
    for (const auto& a : c.attributes) {
      piece += "[" + a.name;
      switch (a.op) {
        case AttributeSelector::Op::Exists: break;
        case AttributeSelector::Op::Equals: piece += "=" + a.value; break;
        case AttributeSelector::Op::Includes: piece += "~=" + a.value; break;
        case AttributeSelector::Op::DashMatch: piece += "|=" + a.value; break;
      }
      piece += "]";
    }
    if (piece.empty()) piece.push_back('*');
    out += piece;
  }
  return out;
}

bool inherits_by_default(std::string_view property) noexcept {
  // The CSS2 inherited properties that matter for document styling.
  static constexpr std::string_view kInherited[] = {
      "color",          "font",           "font-family",
      "font-size",      "font-style",     "font-variant",
      "font-weight",    "letter-spacing", "line-height",
      "list-style",     "list-style-image", "list-style-position",
      "list-style-type", "quotes",        "text-align",
      "text-indent",    "text-transform", "visibility",
      "white-space",    "word-spacing",   "direction",
  };
  for (std::string_view p : kInherited) {
    if (p == property) return true;
  }
  return false;
}

}  // namespace navsep::css

// The join point model.
//
// C++ has no language-level AOP, so this library substitutes an explicit
// runtime join-point model (DESIGN.md, Substitution 1): the hypermedia
// pipeline announces well-defined events — a node being rendered, a page
// being composed, a link being traversed, a context being entered — and
// the weaver runs matching advice around them. This preserves the paper's
// essential property (navigation logic written once, in an aspect, never
// in page code) at the cost of an explicit announcement in the base code.
#pragma once

#include <any>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace navsep::aop {

/// Where in the hypermedia pipeline a join point sits.
enum class JoinPointKind : std::uint8_t {
  NodeRender,     // a navigation node's content is being rendered
  PageCompose,    // a full page is being assembled (navigation attaches here)
  LinkTraversal,  // the browser follows an arc
  ContextEnter,   // a navigational context becomes current
  ContextExit,
  IndexBuild,     // an access-structure entry page is being built
  Custom,         // escape hatch for applications
};

[[nodiscard]] std::string_view to_string(JoinPointKind k) noexcept;

/// The pointcut designator keyword for a kind (render/compose/traverse/...).
[[nodiscard]] std::string_view designator(JoinPointKind k) noexcept;

/// One join point occurrence.
struct JoinPoint {
  JoinPointKind kind = JoinPointKind::Custom;
  std::string subject;   // node class / structure name, e.g. "PaintingNode"
  std::string instance;  // node id, e.g. "guitar" ("" when not applicable)
  std::map<std::string, std::string, std::less<>> tags;  // context etc.

  [[nodiscard]] std::string_view tag(std::string_view key) const noexcept {
    auto it = tags.find(key);
    return it == tags.end() ? std::string_view() : std::string_view(it->second);
  }

  /// Compact rendering for logs/tests: kind(subject, instance){k=v,...}.
  [[nodiscard]] std::string to_string() const;
};

/// Well-known tag keys.
namespace tags {
inline constexpr std::string_view kContext = "context";   // qualified context
inline constexpr std::string_view kStructure = "structure";  // access structure
inline constexpr std::string_view kRole = "role";          // arc role
}  // namespace tags

}  // namespace navsep::aop

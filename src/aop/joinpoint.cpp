#include "aop/joinpoint.hpp"

namespace navsep::aop {

std::string_view to_string(JoinPointKind k) noexcept {
  switch (k) {
    case JoinPointKind::NodeRender: return "NodeRender";
    case JoinPointKind::PageCompose: return "PageCompose";
    case JoinPointKind::LinkTraversal: return "LinkTraversal";
    case JoinPointKind::ContextEnter: return "ContextEnter";
    case JoinPointKind::ContextExit: return "ContextExit";
    case JoinPointKind::IndexBuild: return "IndexBuild";
    case JoinPointKind::Custom: return "Custom";
  }
  return "?";
}

std::string_view designator(JoinPointKind k) noexcept {
  switch (k) {
    case JoinPointKind::NodeRender: return "render";
    case JoinPointKind::PageCompose: return "compose";
    case JoinPointKind::LinkTraversal: return "traverse";
    case JoinPointKind::ContextEnter: return "enterContext";
    case JoinPointKind::ContextExit: return "exitContext";
    case JoinPointKind::IndexBuild: return "buildIndex";
    case JoinPointKind::Custom: return "custom";
  }
  return "?";
}

std::string JoinPoint::to_string() const {
  std::string out(designator(kind));
  out += '(';
  out += subject;
  if (!instance.empty()) {
    out += ", ";
    out += instance;
  }
  out += ')';
  if (!tags.empty()) {
    out += '{';
    bool first = true;
    for (const auto& [k, v] : tags) {
      if (!first) out += ',';
      first = false;
      out += k;
      out += '=';
      out += v;
    }
    out += '}';
  }
  return out;
}

}  // namespace navsep::aop

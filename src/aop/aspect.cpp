#include "aop/aspect.hpp"

#include "common/error.hpp"

namespace navsep::aop {

std::string_view to_string(AdviceKind k) noexcept {
  switch (k) {
    case AdviceKind::Before: return "before";
    case AdviceKind::Around: return "around";
    case AdviceKind::After: return "after";
  }
  return "?";
}

void JoinPointContext::proceed() {
  if (proceeded_) {
    throw SemanticError("proceed() called twice at " + jp_->to_string());
  }
  proceeded_ = true;
  if (proceed_) proceed_();
}

Aspect& Aspect::before(std::string_view pointcut, AdviceFn body,
                       std::string note) {
  return add(pointcut, AdviceKind::Before, std::move(body), std::move(note));
}

Aspect& Aspect::after(std::string_view pointcut, AdviceFn body,
                      std::string note) {
  return add(pointcut, AdviceKind::After, std::move(body), std::move(note));
}

Aspect& Aspect::around(std::string_view pointcut, AdviceFn body,
                       std::string note) {
  return add(pointcut, AdviceKind::Around, std::move(body), std::move(note));
}

Aspect& Aspect::add(std::string_view pointcut, AdviceKind kind, AdviceFn body,
                    std::string note) {
  rules_.push_back(AdviceRule{Pointcut::parse(pointcut), kind,
                              std::move(body), std::move(note)});
  ++revision_;
  return *this;
}

}  // namespace navsep::aop

#include "aop/weaver.hpp"

#include <algorithm>

namespace navsep::aop {

void Weaver::register_aspect(std::shared_ptr<Aspect> aspect) {
  const std::size_t revision = aspect->revision();
  aspects_.push_back(Registered{std::move(aspect), true, revision});
  invalidate_cache();
}

void Weaver::replace_aspect(std::shared_ptr<Aspect> aspect) {
  // Swap in place so the aspect keeps its position in the advice
  // execution order relative to other registered aspects.
  for (auto& r : aspects_) {
    if (r.aspect->name() == aspect->name()) {
      r.seen_revision = aspect->revision();
      r.aspect = std::move(aspect);
      r.enabled = true;
      invalidate_cache();
      return;
    }
  }
  register_aspect(std::move(aspect));
}

Weaver Weaver::clone_registry() const {
  Weaver out;
  out.aspects_ = aspects_;  // shares the Aspect objects, copies the flags
  out.cache_enabled_ = cache_enabled_;
  return out;
}

void Weaver::refresh_revisions() {
  bool drifted = false;
  for (auto& r : aspects_) {
    if (r.aspect->revision() != r.seen_revision) {
      r.seen_revision = r.aspect->revision();
      drifted = true;
    }
  }
  if (drifted) invalidate_cache();
}

bool Weaver::set_enabled(std::string_view name, bool enabled) {
  for (auto& r : aspects_) {
    if (r.aspect->name() == name) {
      if (r.enabled != enabled) {
        r.enabled = enabled;
        invalidate_cache();
      }
      return true;
    }
  }
  return false;
}

bool Weaver::is_enabled(std::string_view name) const {
  for (const auto& r : aspects_) {
    if (r.aspect->name() == name) return r.enabled;
  }
  return false;
}

std::vector<std::string> Weaver::aspect_names() const {
  std::vector<std::string> out;
  out.reserve(aspects_.size());
  for (const auto& r : aspects_) out.push_back(r.aspect->name());
  return out;
}

std::string Weaver::cache_key(const JoinPoint& jp) const {
  // Tags participate in matching (within()/tag()), so they are part of the
  // shape. std::map iteration gives deterministic key text.
  std::string key(to_string(jp.kind));
  key += '\x1f';
  key += jp.subject;
  key += '\x1f';
  key += jp.instance;
  for (const auto& [k, v] : jp.tags) {
    key += '\x1f';
    key += k;
    key += '=';
    key += v;
  }
  return key;
}

Weaver::MatchSet Weaver::compute_match(const JoinPoint& jp) const {
  // Collect (precedence, registration order, rule order) sorted rules.
  struct Hit {
    int precedence;
    std::size_t aspect_order;
    std::size_t rule_order;
    const AdviceRule* rule;
  };
  std::vector<Hit> hits;
  for (std::size_t ai = 0; ai < aspects_.size(); ++ai) {
    const Registered& r = aspects_[ai];
    if (!r.enabled) continue;
    const auto& rules = r.aspect->rules();
    for (std::size_t ri = 0; ri < rules.size(); ++ri) {
      if (rules[ri].pointcut.matches(jp)) {
        hits.push_back(Hit{r.aspect->precedence(), ai, ri, &rules[ri]});
      }
    }
  }
  std::sort(hits.begin(), hits.end(), [](const Hit& a, const Hit& b) {
    if (a.precedence != b.precedence) return a.precedence > b.precedence;
    if (a.aspect_order != b.aspect_order) return a.aspect_order < b.aspect_order;
    return a.rule_order < b.rule_order;
  });

  MatchSet out;
  for (const Hit& h : hits) {
    switch (h.rule->kind) {
      case AdviceKind::Before: out.before.push_back(h.rule); break;
      case AdviceKind::Around: out.around.push_back(h.rule); break;
      case AdviceKind::After: out.after.push_back(h.rule); break;
    }
  }
  // After advice runs in reverse precedence order (like stack unwinding).
  std::reverse(out.after.begin(), out.after.end());
  return out;
}

const Weaver::MatchSet& Weaver::match(const JoinPoint& jp) {
  std::string key = cache_key(jp);
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    ++stats_.match_cache_hits;
    return it->second;
  }
  ++stats_.match_cache_misses;
  return cache_.emplace(std::move(key), compute_match(jp)).first->second;
}

/// Bumps/restores the weaver's dispatch depth across advice execution
/// (advice may throw; the depth must unwind with the stack).
class DepthGuard {
 public:
  explicit DepthGuard(std::size_t& depth) noexcept : depth_(depth) {
    ++depth_;
  }
  ~DepthGuard() { --depth_; }
  DepthGuard(const DepthGuard&) = delete;
  DepthGuard& operator=(const DepthGuard&) = delete;

 private:
  std::size_t& depth_;
};

void Weaver::execute(const JoinPoint& jp, std::any* payload,
                     const std::function<void()>& base) {
  ++stats_.join_points_executed;
  // Revision drift (rules added to a registered aspect) is only acted on
  // between top-level dispatches: a nested execute() reached from advice
  // must not invalidate the MatchSet its caller is iterating. Rules added
  // mid-dispatch therefore take effect from the next top-level dispatch —
  // and never relocate (Aspect stores rules in a deque).
  if (execute_depth_ == 0) refresh_revisions();
  DepthGuard guard(execute_depth_);
  // With the cache disabled (ablation mode) every dispatch re-matches all
  // pointcuts into a local set, which stays valid across nested executes.
  MatchSet uncached;
  if (!cache_enabled_) {
    ++stats_.match_cache_misses;
    uncached = compute_match(jp);
  }
  const MatchSet& m = cache_enabled_ ? match(jp) : uncached;
  std::any empty;
  std::any* pl = payload != nullptr ? payload : &empty;

  if (m.empty()) {
    if (base) base();
    return;
  }

  for (const AdviceRule* rule : m.before) {
    ++stats_.advice_invocations;
    JoinPointContext ctx(jp, pl, {});
    rule->body(ctx);
  }

  // Around chain: recursive lambda over the around list, base innermost.
  std::function<void(std::size_t)> run_around = [&](std::size_t i) {
    if (i >= m.around.size()) {
      if (base) base();
      return;
    }
    ++stats_.advice_invocations;
    JoinPointContext ctx(jp, pl, [&, i] { run_around(i + 1); });
    m.around[i]->body(ctx);
  };
  run_around(0);

  for (const AdviceRule* rule : m.after) {
    ++stats_.advice_invocations;
    JoinPointContext ctx(jp, pl, {});
    rule->body(ctx);
  }
}

}  // namespace navsep::aop

// The weaver: runtime composition of aspects with base behavior.
//
// Base code executes a join point by calling Weaver::execute(jp, payload,
// base). The weaver finds every matching rule of every enabled aspect and
// builds the execution chain:
//
//     before(1) ... before(n)
//     around(1){ around(2){ ... base ... } }     (outermost = highest
//     after(n) ... after(1)                       precedence, then rule order)
//
// Matching is cached per distinct join-point shape (kind + subject +
// instance + tags), which the fig6 benchmark shows amortizes the DSL cost
// to a hash lookup.
#pragma once

#include <any>
#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "aop/aspect.hpp"

namespace navsep::aop {

/// Counters exposed for tests and the fig6 bench.
struct WeaverStats {
  std::size_t join_points_executed = 0;
  std::size_t advice_invocations = 0;
  std::size_t match_cache_hits = 0;
  std::size_t match_cache_misses = 0;
};

class Weaver {
 public:
  /// Register an aspect (shared so callers may keep configuring it).
  /// Aspects are enabled on registration.
  void register_aspect(std::shared_ptr<Aspect> aspect);

  /// Register `aspect`, first dropping any registered aspect with the
  /// same name — for concerns that are swapped wholesale, like the
  /// navigation aspect when the access structure changes.
  void replace_aspect(std::shared_ptr<Aspect> aspect);

  /// An independent weaver sharing this one's registered aspects (same
  /// shared Aspect objects, same order, same enabled flags) with a fresh
  /// match cache and zeroed stats. The parallel re-weave path hands one
  /// clone to each page-weave task: execute() mutates per-weaver state
  /// (cache, stats, dispatch depth), so concurrent weaves need their own
  /// Weaver — while the aspects themselves are immutable during a weave
  /// and safe to share. The clone must not outlive mutations to the
  /// source weaver's aspect set.
  [[nodiscard]] Weaver clone_registry() const;

  /// Enable/disable by name; returns false for unknown aspects.
  bool set_enabled(std::string_view name, bool enabled);
  [[nodiscard]] bool is_enabled(std::string_view name) const;

  [[nodiscard]] std::vector<std::string> aspect_names() const;

  /// Execute `base` at join point `jp`, running matching advice around it.
  /// `payload` is passed to the advice (may be nullptr → an empty payload
  /// is substituted).
  void execute(const JoinPoint& jp, std::any* payload,
               const std::function<void()>& base);

  /// Convenience for join points with no payload.
  void execute(const JoinPoint& jp, const std::function<void()>& base) {
    execute(jp, nullptr, base);
  }

  [[nodiscard]] const WeaverStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = {}; }

  /// Drop the match cache (done automatically when aspects change).
  void invalidate_cache() noexcept { cache_.clear(); }

  /// Disable/enable the match cache (ablation: every execute() re-matches
  /// all pointcuts). Enabled by default.
  void set_cache_enabled(bool enabled) noexcept {
    cache_enabled_ = enabled;
    if (!enabled) invalidate_cache();
  }
  [[nodiscard]] bool cache_enabled() const noexcept { return cache_enabled_; }

 private:
  struct Registered {
    std::shared_ptr<Aspect> aspect;
    bool enabled = true;
    /// Aspect::revision() when we last (in)validated — aspects are shared
    /// and callers may keep adding rules after registration; execute()
    /// compares and drops the match cache on drift.
    std::size_t seen_revision = 0;
  };

  /// Drop the match cache if any registered aspect gained rules since the
  /// last dispatch. Only called between top-level dispatches: a nested
  /// execute() (advice composing another page) must not clear the cached
  /// MatchSet its caller is still iterating.
  void refresh_revisions();

  /// Advice matched for one join-point shape, pre-sorted for execution.
  struct MatchSet {
    std::vector<const AdviceRule*> before;
    std::vector<const AdviceRule*> around;  // outermost first
    std::vector<const AdviceRule*> after;   // execution order (reversed)
    bool empty() const noexcept {
      return before.empty() && around.empty() && after.empty();
    }
  };

  [[nodiscard]] std::string cache_key(const JoinPoint& jp) const;
  [[nodiscard]] const MatchSet& match(const JoinPoint& jp);
  [[nodiscard]] MatchSet compute_match(const JoinPoint& jp) const;

  std::vector<Registered> aspects_;
  std::map<std::string, MatchSet, std::less<>> cache_;
  WeaverStats stats_;
  bool cache_enabled_ = true;
  std::size_t execute_depth_ = 0;
};

}  // namespace navsep::aop

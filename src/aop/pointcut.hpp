// The pointcut DSL.
//
// Pointcuts select join points, AspectJ-style but over our hypermedia
// join-point model. Grammar:
//
//   expr       := or
//   or         := and ('||' and)*
//   and        := unary ('&&' unary)*
//   unary      := '!' unary | primary
//   primary    := '(' expr ')' | designator
//   designator := kind '(' pattern [',' pattern] ')'   kind of join point,
//                 with subject and optional instance patterns;
//                 kind ∈ {render, compose, traverse, enterContext,
//                         exitContext, buildIndex, custom, any}
//               | 'within'   '(' pattern ')'           context tag match
//               | 'tag'      '(' name ',' pattern ')'  arbitrary tag match
//               | 'instance' '(' pattern ')'
//               | 'subject'  '(' pattern ')'
//
// Patterns are glob-style: `*` any run, `?` one character. Examples:
//
//   compose(PaintingNode)                     every painting page
//   compose(*) && within(ByAuthor:*)          any page in a by-author context
//   traverse(*, guernica) || render(Painter*) mixed designators
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "aop/joinpoint.hpp"

namespace navsep::aop {

class Pointcut {
 public:
  /// Parse the DSL. Throws navsep::ParseError.
  [[nodiscard]] static Pointcut parse(std::string_view expr);

  Pointcut(Pointcut&&) noexcept;
  Pointcut& operator=(Pointcut&&) noexcept;
  Pointcut(const Pointcut&);
  Pointcut& operator=(const Pointcut&);
  ~Pointcut();

  [[nodiscard]] bool matches(const JoinPoint& jp) const;

  /// Normalized textual form (parenthesized).
  [[nodiscard]] std::string to_string() const;

  /// The source text this pointcut was parsed from.
  [[nodiscard]] const std::string& source() const noexcept { return source_; }

  /// AST node; defined in pointcut.cpp (public for the parser only).
  struct Node;

 private:
  explicit Pointcut(std::unique_ptr<Node> root, std::string source);
  std::unique_ptr<Node> root_;
  std::string source_;
};

}  // namespace navsep::aop

#include "aop/pointcut.hpp"

#include <optional>
#include <vector>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "common/text_cursor.hpp"

namespace navsep::aop {

struct Pointcut::Node {
  enum class Kind { And, Or, Not, Designator };
  Kind kind = Kind::Designator;
  std::unique_ptr<Node> lhs;
  std::unique_ptr<Node> rhs;

  // Designator payload.
  std::optional<JoinPointKind> jp_kind;  // nullopt = any kind
  std::string subject_pattern = "*";
  std::string instance_pattern = "*";
  std::string tag_key;     // non-empty for tag()/within()
  std::string tag_pattern;

  [[nodiscard]] bool eval(const JoinPoint& jp) const {
    switch (kind) {
      case Kind::And:
        return lhs->eval(jp) && rhs->eval(jp);
      case Kind::Or:
        return lhs->eval(jp) || rhs->eval(jp);
      case Kind::Not:
        return !lhs->eval(jp);
      case Kind::Designator: {
        if (jp_kind.has_value() && jp.kind != *jp_kind) return false;
        if (!strings::wildcard_match(subject_pattern, jp.subject)) {
          return false;
        }
        if (!strings::wildcard_match(instance_pattern, jp.instance)) {
          return false;
        }
        if (!tag_key.empty()) {
          return strings::wildcard_match(tag_pattern, jp.tag(tag_key));
        }
        return true;
      }
    }
    return false;
  }

  [[nodiscard]] std::string text() const {
    switch (kind) {
      case Kind::And:
        return "(" + lhs->text() + " && " + rhs->text() + ")";
      case Kind::Or:
        return "(" + lhs->text() + " || " + rhs->text() + ")";
      case Kind::Not:
        return "!" + lhs->text();
      case Kind::Designator: {
        if (!tag_key.empty()) {
          if (tag_key == tags::kContext && jp_kind == std::nullopt &&
              subject_pattern == "*" && instance_pattern == "*") {
            return "within(" + tag_pattern + ")";
          }
          return "tag(" + tag_key + ", " + tag_pattern + ")";
        }
        std::string name(jp_kind.has_value() ? designator(*jp_kind) : "any");
        std::string out = name + "(" + subject_pattern;
        if (instance_pattern != "*") out += ", " + instance_pattern;
        return out + ")";
      }
    }
    return "?";
  }

  [[nodiscard]] std::unique_ptr<Node> clone() const {
    auto out = std::make_unique<Node>();
    out->kind = kind;
    if (lhs) out->lhs = lhs->clone();
    if (rhs) out->rhs = rhs->clone();
    out->jp_kind = jp_kind;
    out->subject_pattern = subject_pattern;
    out->instance_pattern = instance_pattern;
    out->tag_key = tag_key;
    out->tag_pattern = tag_pattern;
    return out;
  }
};

namespace {

bool is_word_char(char c) noexcept {
  return strings::is_alnum(c) || c == '_' || c == '-';
}

bool is_pattern_char(char c) noexcept {
  return is_word_char(c) || c == '*' || c == '?' || c == ':' || c == '.' ||
         c == '/';
}

std::optional<JoinPointKind> kind_from_designator(std::string_view name) {
  if (name == "render") return JoinPointKind::NodeRender;
  if (name == "compose") return JoinPointKind::PageCompose;
  if (name == "traverse") return JoinPointKind::LinkTraversal;
  if (name == "enterContext") return JoinPointKind::ContextEnter;
  if (name == "exitContext") return JoinPointKind::ContextExit;
  if (name == "buildIndex") return JoinPointKind::IndexBuild;
  if (name == "custom") return JoinPointKind::Custom;
  return std::nullopt;
}

}  // namespace

namespace {

class Parser {
  using PNode = Pointcut::Node;

 public:
  explicit Parser(std::string_view text) : cur_(text) {}

  std::unique_ptr<PNode> run() {
    auto node = parse_or();
    cur_.skip_ws();
    if (!cur_.eof()) cur_.fail("trailing characters in pointcut");
    return node;
  }

 private:
  std::unique_ptr<PNode> parse_or() {
    auto lhs = parse_and();
    for (;;) {
      cur_.skip_ws();
      if (!cur_.consume("||")) return lhs;
      auto node = std::make_unique<PNode>();
      node->kind = PNode::Kind::Or;
      node->lhs = std::move(lhs);
      node->rhs = parse_and();
      lhs = std::move(node);
    }
  }

  std::unique_ptr<PNode> parse_and() {
    auto lhs = parse_unary();
    for (;;) {
      cur_.skip_ws();
      if (!cur_.consume("&&")) return lhs;
      auto node = std::make_unique<PNode>();
      node->kind = PNode::Kind::And;
      node->lhs = std::move(lhs);
      node->rhs = parse_unary();
      lhs = std::move(node);
    }
  }

  std::unique_ptr<PNode> parse_unary() {
    cur_.skip_ws();
    if (cur_.consume('!')) {
      auto node = std::make_unique<PNode>();
      node->kind = PNode::Kind::Not;
      node->lhs = parse_unary();
      return node;
    }
    if (cur_.consume('(')) {
      auto inner = parse_or();
      cur_.skip_ws();
      cur_.expect(")", "')'");
      return inner;
    }
    return parse_designator();
  }

  std::unique_ptr<PNode> parse_designator() {
    cur_.skip_ws();
    if (!strings::is_alpha(cur_.peek())) {
      cur_.fail("expected pointcut designator");
    }
    std::string name(cur_.take_while(is_word_char));
    cur_.skip_ws();
    cur_.expect("(", "'(' after designator '" + name + "'");

    auto node = std::make_unique<PNode>();
    node->kind = PNode::Kind::Designator;

    if (name == "within") {
      node->tag_key = std::string(tags::kContext);
      node->tag_pattern = parse_pattern();
    } else if (name == "tag") {
      cur_.skip_ws();
      node->tag_key = std::string(cur_.take_while(is_word_char));
      if (node->tag_key.empty()) cur_.fail("tag() needs a key");
      cur_.skip_ws();
      cur_.expect(",", "',' between tag key and pattern");
      node->tag_pattern = parse_pattern();
    } else if (name == "instance") {
      node->instance_pattern = parse_pattern();
    } else if (name == "subject") {
      node->subject_pattern = parse_pattern();
    } else if (name == "any") {
      cur_.skip_ws();  // any() takes no arguments
    } else {
      node->jp_kind = kind_from_designator(name);
      if (!node->jp_kind.has_value()) {
        cur_.fail("unknown pointcut designator '" + name + "'");
      }
      node->subject_pattern = parse_pattern();
      cur_.skip_ws();
      if (cur_.consume(',')) {
        node->instance_pattern = parse_pattern();
      }
    }
    cur_.skip_ws();
    cur_.expect(")", "')' closing designator '" + name + "'");
    return node;
  }

  std::string parse_pattern() {
    cur_.skip_ws();
    // Quoted patterns allow characters outside the bare set.
    char q = cur_.peek();
    if (q == '"' || q == '\'') {
      cur_.advance();
      std::string out(cur_.take_until(std::string_view(&q, 1)));
      cur_.advance();
      return out;
    }
    std::string out(cur_.take_while(is_pattern_char));
    if (out.empty()) cur_.fail("expected pattern");
    return out;
  }

  TextCursor cur_;
};

}  // namespace

Pointcut Pointcut::parse(std::string_view expr) {
  Parser p(expr);
  return Pointcut(p.run(), std::string(expr));
}

Pointcut::Pointcut(std::unique_ptr<Node> root, std::string source)
    : root_(std::move(root)), source_(std::move(source)) {}

Pointcut::Pointcut(Pointcut&&) noexcept = default;
Pointcut& Pointcut::operator=(Pointcut&&) noexcept = default;
Pointcut::~Pointcut() = default;

Pointcut::Pointcut(const Pointcut& other)
    : root_(other.root_->clone()), source_(other.source_) {}

Pointcut& Pointcut::operator=(const Pointcut& other) {
  if (this != &other) {
    root_ = other.root_->clone();
    source_ = other.source_;
  }
  return *this;
}

bool Pointcut::matches(const JoinPoint& jp) const { return root_->eval(jp); }

std::string Pointcut::to_string() const { return root_->text(); }

}  // namespace navsep::aop

// Aspects and advice.
//
// An Aspect is a named bundle of (pointcut, advice) rules with a
// precedence. Advice bodies receive a JoinPointContext giving access to
// the join point, a mutable payload (for PageCompose join points this is
// the page's <body> element), and — for around advice — proceed().
#pragma once

#include <any>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "aop/pointcut.hpp"

namespace navsep::aop {

enum class AdviceKind { Before, Around, After };

[[nodiscard]] std::string_view to_string(AdviceKind k) noexcept;

class JoinPointContext {
 public:
  JoinPointContext(const JoinPoint& jp, std::any* payload,
                   std::function<void()> proceed)
      : jp_(&jp), payload_(payload), proceed_(std::move(proceed)) {}

  [[nodiscard]] const JoinPoint& join_point() const noexcept { return *jp_; }

  /// The pipeline-supplied payload (may be empty). For page composition
  /// this holds a `xml::Element*` pointing at the page body.
  [[nodiscard]] std::any& payload() noexcept { return *payload_; }

  /// Typed payload access; returns nullptr on type mismatch/empty payload.
  template <typename T>
  [[nodiscard]] T* payload_as() noexcept {
    T* p = std::any_cast<T>(payload_);
    return p;
  }

  /// Run the rest of the chain (inner advice + the base behavior).
  /// Only meaningful inside around advice; calling it twice is an error.
  /// Around advice that never calls proceed() suppresses the base code.
  void proceed();

  [[nodiscard]] bool proceeded() const noexcept { return proceeded_; }

 private:
  const JoinPoint* jp_;
  std::any* payload_;
  std::function<void()> proceed_;
  bool proceeded_ = false;
};

using AdviceFn = std::function<void(JoinPointContext&)>;

struct AdviceRule {
  Pointcut pointcut;
  AdviceKind kind = AdviceKind::Before;
  AdviceFn body;
  std::string note;  // human description (for introspection/logging)
};

class Aspect {
 public:
  explicit Aspect(std::string name, int precedence = 0)
      : name_(std::move(name)), precedence_(precedence) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] int precedence() const noexcept { return precedence_; }

  /// Add a rule; the pointcut text is parsed immediately (throws
  /// navsep::ParseError on bad syntax).
  Aspect& before(std::string_view pointcut, AdviceFn body,
                 std::string note = "");
  Aspect& after(std::string_view pointcut, AdviceFn body,
                std::string note = "");
  Aspect& around(std::string_view pointcut, AdviceFn body,
                 std::string note = "");

  /// Deque, not vector: weavers cache AdviceRule pointers per join-point
  /// shape, and rules may be appended mid-session — appends must not
  /// relocate existing rules.
  [[nodiscard]] const std::deque<AdviceRule>& rules() const noexcept {
    return rules_;
  }

  /// Bumped on every rule addition. Weavers compare this against the
  /// revision they last matched with, so a rule added to an
  /// already-registered aspect mid-session invalidates their pointcut
  /// match caches instead of being silently ignored on cached shapes.
  [[nodiscard]] std::size_t revision() const noexcept { return revision_; }

 private:
  Aspect& add(std::string_view pointcut, AdviceKind kind, AdviceFn body,
              std::string note);

  std::string name_;
  int precedence_;
  std::deque<AdviceRule> rules_;
  std::size_t revision_ = 0;
};

}  // namespace navsep::aop

// nav::Profile — a named selection of contextual linkbase families.
//
// The paper separates navigation from content so navigation can vary
// without touching pages; a Profile is that variation made first-class
// for the serving path. Each profile names the subset of the engine's
// contextual linkbase families its audience navigates with — a
// guided-tour visitor sees the ByAuthor tours, a curator the ByMovement
// ones, a kiosk none — and the serving runtime composes exactly that
// subset's arcs onto the once-woven base pages, late, per request
// (serve/ConcurrentServer::get(uri, profile)).
//
// A profile never changes page content: two profiles over the same epoch
// differ only in the navigation block of each page and in which
// contextual linkbase artifacts are visible. The correctness contract is
// byte-level: the overlaid response for profile P must equal the page a
// full single-threaded build would weave with only P's families
// (site::SiteBuildOptions::weave_context_tours — asserted in
// tests/overlay_test.cpp).
#pragma once

#include <string>
#include <vector>

namespace navsep::nav {

/// One serving profile: a name (the cache/request key) plus the context
/// families whose navigation it sees, in weave order. The order is
/// significant — it is the order the families' arcs compose into the
/// navigation block, and must match the order a full build would weave
/// them in. An empty family list is valid: such a profile sees only the
/// access structure's own navigation (the kiosk case).
struct Profile {
  std::string name;
  std::vector<std::string> families;

  friend bool operator==(const Profile& a, const Profile& b) {
    return a.name == b.name && a.families == b.families;
  }
};

}  // namespace navsep::nav

// Role-segregated navigation interfaces — the public face of navsep.
//
// The paper separates navigation from content; this header separates the
// *consumers* of navigation from each other (Interface Segregation). The
// old surface tangled three audiences into two god classes
// (site::Browser, site::HypermediaServer); each audience now gets exactly
// the members it uses:
//
//   Navigating      — what 98% of callers need: follow links, move.
//   SessionView     — read-only observation: history, counters.
//   EngineInternals — framework-only: weaving hooks, arc tables, cache
//                     control. Application code should never touch this.
//
// site::Browser keeps its concrete API (existing code and tests are
// untouched); BrowserSession (session.hpp) adapts it to the first two
// roles, and nav::Engine (pipeline.hpp) implements the third.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "hypermedia/access.hpp"
#include "hypermedia/context.hpp"
#include "nav/buildgraph.hpp"
#include "nav/landmarks.hpp"
#include "nav/profile.hpp"
#include "nav/route.hpp"

namespace navsep::aop {
class Weaver;
}
namespace navsep::hypermedia {
class ContextFamily;
}
namespace navsep::obs {
class Registry;
}
namespace navsep::serve {
class SnapshotStore;
}
namespace navsep::xlink {
struct Arc;
class TraversalGraph;
}  // namespace navsep::xlink

namespace navsep::nav {

/// The end-user role: actuate XLink arcs and move through the site.
class Navigating {
 public:
  virtual ~Navigating() = default;

  /// Fetch a URI (absolute, or resolved against the current location /
  /// site base). `false` on 404.
  virtual bool navigate(std::string_view uri_ref) = 0;

  /// Actuate one arc (show=none / actuate=none arcs are refused).
  virtual bool follow(const xlink::Arc& arc) = 0;

  /// Follow the first outgoing arc whose arcrole is `role` (with or
  /// without the "nav:" prefix).
  virtual bool follow_role(std::string_view role) = 0;

  virtual bool back() = 0;
  virtual bool forward() = 0;

  [[nodiscard]] virtual const std::string& location() const noexcept = 0;
  [[nodiscard]] virtual const std::string* page() const noexcept = 0;

  /// Arcs leaving the current resource, linkbase order.
  [[nodiscard]] virtual const std::vector<const xlink::Arc*>& links()
      const noexcept = 0;
};

/// The observer role: read-only session state. Dashboards, tests and
/// audit aspects consume this; nothing here can mutate the session.
class SessionView {
 public:
  virtual ~SessionView() = default;

  /// Every location navigated to, in order.
  [[nodiscard]] virtual const std::vector<std::string>& history()
      const noexcept = 0;
  [[nodiscard]] virtual std::size_t pages_visited() const noexcept = 0;

  /// Server-side counters. These are engine-global: the server is shared,
  /// so every consumer (this session, open_browser() browsers, direct
  /// server().get() calls) contributes to them.
  [[nodiscard]] virtual std::size_t requests() const noexcept = 0;
  [[nodiscard]] virtual std::size_t misses() const noexcept = 0;
};

/// The framework role: the machinery under the façade. Only
/// infrastructure code (benchmarks, custom aspects, site rebuilds)
/// should reach for this — it is deliberately not reachable from
/// Navigating/SessionView.
class EngineInternals {
 public:
  virtual ~EngineInternals() = default;

  /// The weaver every page composition runs through. Register aspects
  /// here, then rebuild() to re-weave the site with them applied.
  [[nodiscard]] virtual aop::Weaver& weaver() noexcept = 0;

  /// The expanded arc table the browser traverses (per-source indexed).
  [[nodiscard]] virtual const xlink::TraversalGraph& arc_table()
      const noexcept = 0;

  /// Re-compose every page (after registering extra aspects or mutating
  /// the site) and drop stale server responses. The force-everything
  /// path — and the correctness oracle of the incremental mutations
  /// below: their output must be byte-identical to what a rebuild()
  /// from scratch produces.
  virtual void rebuild() = 0;

  // --- incremental mutations (run the build graph, not a full rebuild) --------
  //
  // Each entry point edits the authored navigation design — the paper's
  // §5 change request, live — marks the affected build-graph nodes dirty
  // and runs the graph: only linkbases whose text changed are re-authored,
  // only pages whose arc slice changed are re-woven, and the server's
  // response cache / the session browser's arc cache are invalidated for
  // exactly those pages. The returned report says what it cost.
  //
  // Mutations are writer-side: callers must externally synchronize them
  // against concurrent readers of the site/server (same contract as
  // rebuild()). Browsers obtained from open_browser() must refresh()
  // after a mutation; the engine's own session is refreshed
  // automatically.

  /// Swap the whole access structure (Index → IndexedGuidedTour...).
  virtual RebuildReport set_access_structure(
      std::unique_ptr<hypermedia::AccessStructure> structure) = 0;

  /// Swap only the *kind*, keeping the current member list — the paper's
  /// change request verbatim.
  virtual RebuildReport set_access_structure(
      hypermedia::AccessStructureKind kind) = 0;

  /// Append a navigational-model node to the member list; its page is
  /// woven and the structure's arcs regenerate around it. Throws
  /// ResolutionError for unknown node ids, SemanticError for duplicates.
  virtual RebuildReport add_node(std::string_view node_id) = 0;

  /// Change a member's navigation label (anchor text). A purely
  /// navigational edit: only pages with anchors referencing the member
  /// are re-woven — the member's own content is untouched.
  virtual RebuildReport retitle_node(std::string_view node_id,
                                     std::string_view title) = 0;

  /// Replace one authored arc (by index into authored_arcs()). The
  /// finest-grained edit: typically exactly one page re-weaves.
  /// NOTE: structural mutations (set_access_structure(kind) / add_node /
  /// retitle_node) regenerate the arc set from the structure kind and
  /// discard earlier replace_arc overlays. For a Menu adopted from a
  /// constructed hypermedia::Menu the engine captures the sub-structure
  /// specs as build-graph inputs, so these mutations regenerate the
  /// Menu's derived arcs (retitle_node edits the sub holding the member,
  /// add_node appends to the last sub, set_access_structure(Menu)
  /// refreshes from the captured subs). A Menu the engine cannot see
  /// into — nested Menus, or a pre-materialized snapshot — stays opaque
  /// and Menu-kind regeneration throws SemanticError without moving any
  /// state (set_access_structure(structure) and replace_arc always
  /// work).
  virtual RebuildReport replace_arc(std::size_t index,
                                    hypermedia::AccessArc arc) = 0;

  /// The authored arc set as currently materialized (index space of
  /// replace_arc).
  [[nodiscard]] virtual std::vector<hypermedia::AccessArc> authored_arcs()
      const = 0;

  /// The dependency graph behind the incremental path (introspection).
  [[nodiscard]] virtual const BuildGraph& build_graph() const noexcept = 0;

  /// Cache control for the response cache under get().
  virtual void clear_response_cache() = 0;
  [[nodiscard]] virtual std::size_t response_cache_hits() const noexcept = 0;

  /// The epoch-published snapshot store behind concurrent serving: every
  /// successful mutation (and rebuild()) publishes a new immutable site
  /// snapshot here. Concurrent readers go through a
  /// serve::ConcurrentServer over this store — never through the
  /// writer-side server()/site() — and are wait-free with respect to
  /// mutations.
  [[nodiscard]] virtual const serve::SnapshotStore& snapshots()
      const noexcept = 0;

  // --- serving profiles -------------------------------------------------------
  //
  // A Profile names the subset of the engine's context families its
  // audience navigates with; the concurrent serving path composes that
  // subset's tours onto base pages late, per request (see nav/profile.hpp
  // and serve::ConcurrentServer::get(uri, profile)). Registration is a
  // writer-side operation like every mutation.

  /// Register (or, by name, replace) a serving profile and publish a new
  /// snapshot carrying it. Throws navsep::SemanticError for an empty or
  /// newline-containing name, a family name the engine doesn't have, a
  /// duplicated family within the profile, or any non-empty family list
  /// in Tangled mode (the tangled baseline has no separated navigation
  /// to scope). No page is re-woven: profiles only select among already
  /// authored linkbases.
  virtual void register_profile(Profile profile) = 0;

  /// The registered profiles, in registration order.
  [[nodiscard]] virtual const std::vector<Profile>& profiles()
      const noexcept = 0;

  /// Edit one context family in place (the callback receives it mutable)
  /// and propagate: ONLY that family's contextual linkbase re-authors,
  /// no base page re-weaves (context-tagged tour arcs are not part of
  /// any stored page's arc slice), and on the serving side only overlay
  /// cache entries of profiles that include the family retire. Throws
  /// navsep::ResolutionError for an unknown family and
  /// navsep::SemanticError in Tangled mode. Writer-side; additionally,
  /// NavigationSessions over the engine's families must be quiesced
  /// (snapshot-based readers — ConcurrentServer, profile overlays — are
  /// unaffected).
  virtual RebuildReport edit_context_family(
      std::string_view family_name,
      const std::function<void(hypermedia::ContextFamily&)>& edit) = 0;

  // --- route programs ---------------------------------------------------------
  //
  // A RouteProgram (nav/route.hpp) declares a navigation source as a
  // route expression over arc roles and context families. Registered
  // programs become servable context families named after the program:
  // RouteCompile::Aot expands at mutation time into an authored
  // `links-<name>.xml` through the build graph (family edits dirty and
  // regenerate it); RouteCompile::Lazy ships only the program text and
  // expands inside each served snapshot on first touch — byte-identical
  // to the AOT path by the differential harness (tests/route_test.cpp).
  // Profiles may reference route names exactly like family names.

  /// Register (or, by name, replace) a route program. Throws
  /// navsep::ParseError for a malformed expression (naming the offending
  /// token), navsep::SemanticError for an empty/':'/newline-containing
  /// name, a name colliding with a context family, or any registration
  /// in Tangled mode. Writer-side; batch-aware like every mutation.
  virtual RebuildReport register_route(RouteProgram program) = 0;

  /// Replace the expression of the registered route `name`. Throws
  /// navsep::ResolutionError for an unknown route, navsep::ParseError
  /// for a malformed expression.
  virtual RebuildReport edit_route(std::string_view name,
                                   std::string_view expression) = 0;

  /// Unregister route `name` (its linkbase artifact, arcs and overlay
  /// entries retire). Throws navsep::ResolutionError when unknown.
  virtual RebuildReport remove_route(std::string_view name) = 0;

  /// The registered route programs, in registration order.
  [[nodiscard]] virtual const std::vector<RouteProgram>& routes()
      const noexcept = 0;

  /// The current expansion of registered route `name` as a context
  /// family (one `<name>:route` guided-tour context over the expanded
  /// node ids) — what the AOT path authors and the lazy path must match.
  /// Evaluated fresh against the current arc table on every call.
  /// Throws navsep::ResolutionError when unknown.
  [[nodiscard]] virtual hypermedia::ContextFamily route_family(
      std::string_view name) const = 0;

  // --- landmark synthesis -----------------------------------------------------
  //
  // Traffic intelligence, consumption side: observed workload traces
  // (obs::TraceAggregate) rank the site's hub pages, and the engine
  // authors the winners as generated landmark context families through
  // the normal build graph — "landmarks" for everyone, plus
  // "landmarks-<profile>" per registered profile when
  // LandmarkOptions::per_profile is set. Landmark families auto-attach
  // to every registered profile (the per-profile family only to its
  // own), author `links-landmarks[-<p>].xml` artifacts exactly like AOT
  // routes, and therefore ride snapshot replication unchanged.

  /// Enable (or re-rank with fresh traffic) landmark synthesis. Throws
  /// navsep::SemanticError in Tangled mode, when a landmark family name
  /// collides with a context family or route, or when per_profile is
  /// set and a profile name contains ':' (family names tag arcs
  /// "<name>:landmark"). Writer-side; batch-aware like every mutation.
  virtual RebuildReport enable_landmarks(const obs::TraceAggregate& traffic,
                                         LandmarkOptions options) = 0;

  /// Retire every landmark family, artifact and overlay entry; detach
  /// landmark names from profiles. Idempotent when already disabled.
  virtual RebuildReport disable_landmarks() = 0;

  /// Names of the landmark families currently synthesized, base family
  /// first (empty when disabled).
  [[nodiscard]] virtual std::vector<std::string> landmark_families()
      const = 0;

  /// The current expansion of landmark family `name` — what the build
  /// graph authors and the full-build oracle must match. Evaluated
  /// fresh against the stored traffic and current arc inputs. Throws
  /// navsep::ResolutionError when unknown.
  [[nodiscard]] virtual hypermedia::ContextFamily landmark_family(
      std::string_view name) const = 0;

  /// The ranked picks behind landmark family `name` (diagnostics /
  /// reporting). Throws navsep::ResolutionError when unknown.
  [[nodiscard]] virtual std::vector<LandmarkScore> landmark_picks(
      std::string_view name) const = 0;

  // --- mutation batching ------------------------------------------------------
  //
  // An edit burst normally pays one plan, one graph run and one snapshot
  // publish PER mutation. A batch coalesces it: between begin_batch()
  // and commit_batch() every mutation validates eagerly and moves engine
  // state (later batched mutations and readers of structure()/
  // authored_arcs() see it immediately) but only accumulates dirty marks
  // — the graph does not run, nothing re-weaves, and no snapshot is
  // published, so batched mutations return an empty report. commit_batch
  // runs the graph once over the union of dirty marks and publishes
  // exactly one epoch — SnapshotStore subscribers and repl::Publishers
  // see ONE delta for the whole burst. Batches are writer-side state
  // like every mutation (no concurrent mutators).

  /// Open a batch. Throws navsep::SemanticError when one is open.
  virtual void begin_batch() = 0;

  /// Run the accumulated batch: one graph run (parallel when weave
  /// workers are configured), one published epoch — or none at all for
  /// an empty batch. The report carries edits_coalesced /
  /// epochs_published / weave_workers / max_parallel_weaves. Throws
  /// navsep::SemanticError when no batch is open. If a batched
  /// mutation's edit threw mid-flight the commit still reconciles
  /// whatever state moved, exactly like the unbatched propagate-on-throw
  /// contract.
  virtual RebuildReport commit_batch() = 0;

  /// Whether a batch is currently open.
  [[nodiscard]] virtual bool batch_open() const noexcept = 0;

  // --- parallel re-weave ------------------------------------------------------

  /// Configure the worker pool page re-weaves run on: `lanes` total
  /// execution lanes (0 = hardware concurrency, 1 = serial — the
  /// default). Output is byte-identical for every value; only wall-clock
  /// changes. The pool is only used when the weave path is provably
  /// thread-safe: Separated mode with no foreign aspects registered on
  /// the weaver (user advice carries no thread-safety contract, so
  /// engines with extra aspects fall back to the serial path and the
  /// report says so via weave_workers == 1).
  virtual void set_weave_workers(std::size_t lanes) = 0;

  /// The configured lane count (1 when serial).
  [[nodiscard]] virtual std::size_t weave_workers() const noexcept = 0;

  // --- telemetry --------------------------------------------------------------

  /// Attach a metrics registry (obs/registry.hpp). The engine registers
  /// a pull sampler mirroring its writer-side stats (HypermediaServer
  /// counters, snapshot-store epoch/publishes) into gauges, counts every
  /// graph run into `build.*` counters, feeds wave occupancy into a
  /// histogram, and records epoch-correlated spans (build.plan /
  /// build.wave.compute / build.wave.commit / build.publish) into the
  /// registry's SpanLog. Pass nullptr to detach. The registry must
  /// outlive the engine or be detached first; attaching is writer-side
  /// state like every mutation.
  virtual void attach_telemetry(std::shared_ptr<obs::Registry> registry) = 0;

  /// The attached registry (nullptr when telemetry is off).
  [[nodiscard]] virtual obs::Registry* telemetry() const noexcept = 0;
};

}  // namespace navsep::nav

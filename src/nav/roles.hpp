// Role-segregated navigation interfaces — the public face of navsep.
//
// The paper separates navigation from content; this header separates the
// *consumers* of navigation from each other (Interface Segregation). The
// old surface tangled three audiences into two god classes
// (site::Browser, site::HypermediaServer); each audience now gets exactly
// the members it uses:
//
//   Navigating      — what 98% of callers need: follow links, move.
//   SessionView     — read-only observation: history, counters.
//   EngineInternals — framework-only: weaving hooks, arc tables, cache
//                     control. Application code should never touch this.
//
// site::Browser keeps its concrete API (existing code and tests are
// untouched); BrowserSession (session.hpp) adapts it to the first two
// roles, and nav::Engine (pipeline.hpp) implements the third.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace navsep::aop {
class Weaver;
}
namespace navsep::xlink {
struct Arc;
class TraversalGraph;
}  // namespace navsep::xlink

namespace navsep::nav {

/// The end-user role: actuate XLink arcs and move through the site.
class Navigating {
 public:
  virtual ~Navigating() = default;

  /// Fetch a URI (absolute, or resolved against the current location /
  /// site base). `false` on 404.
  virtual bool navigate(std::string_view uri_ref) = 0;

  /// Actuate one arc (show=none / actuate=none arcs are refused).
  virtual bool follow(const xlink::Arc& arc) = 0;

  /// Follow the first outgoing arc whose arcrole is `role` (with or
  /// without the "nav:" prefix).
  virtual bool follow_role(std::string_view role) = 0;

  virtual bool back() = 0;
  virtual bool forward() = 0;

  [[nodiscard]] virtual const std::string& location() const noexcept = 0;
  [[nodiscard]] virtual const std::string* page() const noexcept = 0;

  /// Arcs leaving the current resource, linkbase order.
  [[nodiscard]] virtual const std::vector<const xlink::Arc*>& links()
      const noexcept = 0;
};

/// The observer role: read-only session state. Dashboards, tests and
/// audit aspects consume this; nothing here can mutate the session.
class SessionView {
 public:
  virtual ~SessionView() = default;

  /// Every location navigated to, in order.
  [[nodiscard]] virtual const std::vector<std::string>& history()
      const noexcept = 0;
  [[nodiscard]] virtual std::size_t pages_visited() const noexcept = 0;

  /// Server-side counters. These are engine-global: the server is shared,
  /// so every consumer (this session, open_browser() browsers, direct
  /// server().get() calls) contributes to them.
  [[nodiscard]] virtual std::size_t requests() const noexcept = 0;
  [[nodiscard]] virtual std::size_t misses() const noexcept = 0;
};

/// The framework role: the machinery under the façade. Only
/// infrastructure code (benchmarks, custom aspects, site rebuilds)
/// should reach for this — it is deliberately not reachable from
/// Navigating/SessionView.
class EngineInternals {
 public:
  virtual ~EngineInternals() = default;

  /// The weaver every page composition runs through. Register aspects
  /// here, then rebuild() to re-weave the site with them applied.
  [[nodiscard]] virtual aop::Weaver& weaver() noexcept = 0;

  /// The expanded arc table the browser traverses (per-source indexed).
  [[nodiscard]] virtual const xlink::TraversalGraph& arc_table()
      const noexcept = 0;

  /// Re-compose every page (after registering extra aspects or mutating
  /// the site) and drop stale server responses.
  virtual void rebuild() = 0;

  /// Cache control for the response cache under get().
  virtual void clear_response_cache() = 0;
  [[nodiscard]] virtual std::size_t response_cache_hits() const noexcept = 0;
};

}  // namespace navsep::nav

// Route programs: navigation as declarative route expressions.
//
// "Semantic Navigation on the Web of Data" specifies navigation as
// regex-like path expressions evaluated over a link graph. This module is
// that idea grafted onto the paper's separated navigation aspect: a tiny
// expression language over arc roles and context families —
//
//   expr  := seq ('|' seq)*          alternation (lowest precedence)
//   seq   := star ('/' star)*        sequence
//   star  := atom ['*']              zero-or-more
//   atom  := IDENT                   arc role ("next", "index-entry", ...)
//          | '@' IDENT               context family ("@ByAuthor")
//          | '(' expr ')'
//
// — parsed into a small AST and *expanded* against the engine's combined
// arc table: the result of a route program is the set of node ids
// reachable from any node via a path whose arc-label sequence matches the
// expression ("all paintings reachable via @ByAuthor then @ByPeriod").
// That set becomes an ordinary guided-tour context, so a route program
// compiles into either
//
//   * an ahead-of-time authored linkbase (`route:<name>` build-graph node
//     feeding `links-<name>.xml` through the normal weave path), or
//   * a lazily synthesized serve-time overlay (serve::SiteSnapshot
//     expands on first touch and memoizes under slice validity),
//
// with the two pinned byte-identical by tests/route_test.cpp.
//
// Atom semantics over a core::NavArc table:
//   * a role atom `r` matches every non-route arc whose role is `r`
//     (structure arcs and family tour arcs alike);
//   * a family atom `@F` matches every arc whose context tag belongs to
//     family `F` (structure arcs carry no context and never match).
// Route-generated arcs are never part of the expansion input — routes
// are defined over the *authored* navigation, so route expansion is a
// function (not a fixpoint) and lazy/AOT order cannot matter.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/navigation_aspect.hpp"
#include "hypermedia/context.hpp"

namespace navsep::nav {

/// How a registered route program materializes.
enum class RouteCompile : std::uint8_t {
  /// Expanded at mutation time into an authored `links-<name>.xml`
  /// artifact through the build graph (dirties like any linkbase).
  Aot = 0,
  /// Expanded at serve time inside the snapshot, memoized per epoch.
  Lazy = 1,
};

/// A named route program as registered with the engine and shipped on the
/// replication wire. `expression` is the source text; the engine stores
/// the canonical form (`print_route(parse_route(expression))`) so hashes
/// and wire bytes are insensitive to whitespace.
struct RouteProgram {
  std::string name;
  std::string expression;
  RouteCompile compile = RouteCompile::Aot;

  friend bool operator==(const RouteProgram&, const RouteProgram&) = default;
};

/// Route-expression AST. A value type: Seq/Alt hold two or more children,
/// Star exactly one, Role/Family hold the atom name.
struct RouteExpr {
  enum class Kind : std::uint8_t { Role, Family, Seq, Alt, Star };
  Kind kind = Kind::Role;
  std::string name;                 // Role / Family atoms
  std::vector<RouteExpr> children;  // Seq / Alt / Star

  friend bool operator==(const RouteExpr&, const RouteExpr&) = default;
};

/// Parse a route expression. Throws navsep::ParseError naming the
/// offending token, with its byte offset carried as the error position
/// — the compile-error contract tests/route_test.cpp pins.
[[nodiscard]] RouteExpr parse_route(std::string_view expression);

/// Canonical printer: minimal parentheses, single spaces around '/' and
/// '|'. Fixpoint: `parse_route(print_route(e))` re-prints identically.
[[nodiscard]] std::string print_route(const RouteExpr& expr);

/// Expand a route expression against an arc table: the sorted, duplicate-
/// free set of node ids reachable from any node via a matching path. A
/// nullable expression (empty path matches) therefore yields every node
/// named by the arcs. Arcs whose source is listed in `exclude_sources`
/// are ignored — the engine passes its route linkbase paths so routes
/// never observe other routes' output.
[[nodiscard]] std::vector<std::string> expand_route(
    const RouteExpr& expr, const std::vector<core::NavArc>& arcs,
    const std::vector<std::string>& exclude_sources = {});

/// Wrap an expansion as the single-context family the weave path
/// consumes: family `name` with one context `name:route` holding the
/// expanded ids as a guided tour. This is THE bridge that makes a route
/// program downstream-indistinguishable from an authored context family.
[[nodiscard]] hypermedia::ContextFamily route_context_family(
    std::string_view name, const RouteExpr& expr,
    const std::vector<core::NavArc>& arcs,
    const std::vector<std::string>& exclude_sources = {});

/// FNV-1a over the program's identity (name, canonical expression,
/// compile mode) — the route build-graph node content and the wire-level
/// route-table token. One token per program: editing an expression
/// changes it, re-registering the same text does not.
[[nodiscard]] std::uint64_t route_token(const RouteProgram& program);

}  // namespace navsep::nav

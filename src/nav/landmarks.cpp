#include "nav/landmarks.hpp"

#include <algorithm>
#include <cstring>
#include <map>

#include "nav/buildgraph.hpp"

namespace navsep::nav {

namespace {

/// The page → views table to rank against: the profile's overlay slice
/// when it recorded anything, else the global table — a freshly
/// registered audience still gets sensible landmarks.
std::map<std::string, std::uint64_t> views_table(
    const obs::TraceAggregate& traffic, std::string_view profile) {
  if (!profile.empty()) {
    std::map<std::string, std::uint64_t> slice;
    for (const auto& [key, count] : traffic.profile_page_views) {
      if (key.first == profile) slice[key.second] += count;
    }
    if (!slice.empty()) return slice;
  }
  return traffic.page_views;
}

std::uint64_t mix_str(std::uint64_t h, std::string_view s) {
  h = hash_combine(h, hash_bytes(s));
  return hash_combine(h, 0xffu);  // field separator
}

std::uint64_t mix_double(std::uint64_t h, double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return hash_combine(h, bits);
}

}  // namespace

std::vector<LandmarkScore> score_landmarks(
    const obs::TraceAggregate& traffic,
    const std::vector<core::NavArc>& arcs, const LandmarkOptions& options,
    std::string_view profile) {
  // Universe: every node the authored arcs name, with its degree.
  std::map<std::string, std::size_t> degree;
  for (const core::NavArc& arc : arcs) {
    ++degree[arc.from];
    ++degree[arc.to];
  }

  const std::map<std::string, std::uint64_t> views = views_table(traffic, profile);
  std::vector<LandmarkScore> scored;
  scored.reserve(degree.size());
  std::uint64_t max_views = 0;
  std::size_t max_degree = 0;
  for (const auto& [node_id, d] : degree) {
    LandmarkScore entry;
    entry.node_id = node_id;
    entry.degree = d;
    auto hit = views.find(core::default_href_for(node_id));
    entry.views = hit == views.end() ? 0 : hit->second;
    max_views = std::max(max_views, entry.views);
    max_degree = std::max(max_degree, entry.degree);
    scored.push_back(std::move(entry));
  }

  // Blend normalized popularity and centrality. Either signal may be
  // absent (no traffic yet, or a single isolated node); its term then
  // contributes zero rather than dividing by zero.
  for (LandmarkScore& entry : scored) {
    double score = 0.0;
    if (max_views > 0) {
      score += options.popularity_weight * static_cast<double>(entry.views) /
               static_cast<double>(max_views);
    }
    if (max_degree > 0) {
      score += options.centrality_weight *
               static_cast<double>(entry.degree) /
               static_cast<double>(max_degree);
    }
    entry.score = score;
  }

  std::sort(scored.begin(), scored.end(),
            [](const LandmarkScore& a, const LandmarkScore& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.node_id < b.node_id;
            });
  if (scored.size() > options.top_k) scored.resize(options.top_k);
  return scored;
}

hypermedia::ContextFamily landmark_context_family(
    std::string_view name, const std::vector<LandmarkScore>& picks) {
  std::vector<std::string> ids;
  ids.reserve(picks.size());
  for (const LandmarkScore& pick : picks) ids.push_back(pick.node_id);
  std::vector<hypermedia::NavigationalContext> contexts;
  contexts.emplace_back(std::string(name), "landmark", std::move(ids));
  return hypermedia::ContextFamily(std::string(name), std::move(contexts));
}

std::uint64_t landmark_token(std::string_view name,
                             const LandmarkOptions& options,
                             const obs::TraceAggregate& traffic,
                             std::string_view profile) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  h = mix_str(h, name);
  h = mix_str(h, profile);
  h = hash_combine(h, options.top_k);
  h = mix_double(h, options.popularity_weight);
  h = mix_double(h, options.centrality_weight);
  h = hash_combine(h, options.per_profile ? 1 : 0);
  // The ranking input is the traffic tables themselves; hashing them
  // here (not the derived picks) keeps the token independent of the arc
  // set — arc changes reach the linkbase through its structure/family
  // dependency edges instead.
  for (const auto& [page, count] : traffic.page_views) {
    h = mix_str(h, page);
    h = hash_combine(h, count);
  }
  for (const auto& [key, count] : traffic.profile_page_views) {
    h = mix_str(h, key.first);
    h = mix_str(h, key.second);
    h = hash_combine(h, count);
  }
  return h;
}

}  // namespace navsep::nav

// The incremental rebuild engine's dependency graph.
//
// Every product of the separated-navigation pipeline — the authored
// navigation spec, each linkbase document, the merged arc table, each
// page's slice of that table, each woven page, the served entry set —
// becomes a node with explicit dependency edges, a content hash and a
// dirty bit. A mutation marks its source node dirty; run() walks the
// graph in dependency order, rebuilds dirty nodes, and propagates
// dirtiness to dependents ONLY when a node's content hash actually
// changed (early cutoff, the classic incremental-build trick). An edit
// whose downstream products hash the same stops dead; an edit to one
// linkbase arc re-weaves exactly the pages whose arc slice changed.
//
// The graph is a mechanism, not a policy: nodes are (kind, deps,
// rebuild-callback) and the engine (nav/pipeline.cpp) wires the domain.
// Rebuild callbacks may define() and remove() nodes while a run is in
// flight — the member set of an access structure changes the page set —
// and run() keeps iterating until no dirty node remains.
//
// Nodes whose product is independent once their inputs have settled —
// page weaves, whose only input is the page's arc slice — may instead be
// defined through define_parallel(): their callback splits into a
// thread-safe compute phase (returning the content hash plus a commit
// closure) and a serial commit phase the coordinating thread applies in
// plan order. run(pool) gathers every settled-input parallel node into a
// wave and executes the compute phases on the pool; because commits
// apply in deterministic plan order, the result is byte-identical to a
// serial run regardless of worker count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace navsep::obs {
class Registry;
}

namespace navsep::nav {

class WorkerPool;

/// What a node produces. Source nodes are mutation entry points; the
/// rest name pipeline products. Kinds drive the RebuildReport counters
/// (pages_rewoven counts Page nodes, linkbases_reauthored Linkbase ones).
enum class ProductKind {
  Source,     // authored inputs: the navigation spec
  Route,      // one registered route program (name + canonical expression)
  Landmark,   // one landmark synthesis program (name + options + traffic)
  Linkbase,   // one authored linkbase document (links*.xml)
  ArcTable,   // the merged traversal graph + combined arc set
  ArcSlice,   // one page's view of the arc table (arcs leaving it)
  Page,       // one woven (or tangled-rendered) page
  Server,     // the served entry set (response-cache coherence)
};

[[nodiscard]] std::string_view to_string(ProductKind k) noexcept;

/// What one run() did — the observable cost of a mutation. The paper's
/// change-impact asymmetry (bench/e1) counts authored artifacts touched;
/// this is its runtime companion: pages_rewoven / pages_total is the
/// fraction of the site the edit actually re-wove.
struct RebuildReport {
  std::size_t nodes_dirty = 0;     ///< nodes processed as dirty
  std::size_t nodes_rebuilt = 0;   ///< rebuild callbacks run
  std::size_t nodes_changed = 0;   ///< rebuilds whose content hash changed
  std::size_t pages_rewoven = 0;   ///< Page nodes recomposed
  std::size_t pages_total = 0;     ///< Page nodes in the graph after the run
  std::size_t linkbases_reauthored = 0;  ///< Linkbase nodes whose text changed

  // --- batching / parallelism (PR 7) -----------------------------------------
  /// Mutations coalesced into this run (1 for an unbatched mutation, the
  /// batch size for Engine::commit_batch; set by the engine, not run()).
  std::size_t edits_coalesced = 0;
  /// Snapshot epochs this run published (set by the engine: 1 per
  /// unbatched mutation or non-empty batch commit, 0 for an empty batch).
  std::size_t epochs_published = 0;
  /// Execution lanes the run weaved with (1 = the serial path).
  std::size_t weave_workers = 0;
  /// Largest parallel wave dispatched to the pool (0 on the serial path).
  std::size_t max_parallel_weaves = 0;

  /// pages_rewoven / pages_total (0 when the site is empty).
  [[nodiscard]] double reweave_ratio() const noexcept {
    return pages_total == 0
               ? 0.0
               : static_cast<double>(pages_rewoven) /
                     static_cast<double>(pages_total);
  }
};

/// FNV-1a 64-bit — the graph's content hash. Deterministic across runs
/// and platforms, which keeps incremental-vs-full comparisons exact.
[[nodiscard]] std::uint64_t hash_bytes(std::string_view bytes) noexcept;

/// Order-sensitive combination (h(a)+h(b) must differ from h(b)+h(a)).
[[nodiscard]] std::uint64_t hash_combine(std::uint64_t seed,
                                         std::uint64_t value) noexcept;

class BuildGraph {
 public:
  /// Point graph-run telemetry at `registry` (nullptr = off, the
  /// default): run()/run(pool) then record epoch-correlated spans
  /// (build.plan, build.wave.compute, build.wave.commit) into the
  /// registry's SpanLog and feed each wave's size into the
  /// `build.wave_occupancy` histogram. The registry must outlive the
  /// graph or be detached first. Non-owning on purpose: the engine owns
  /// the shared_ptr, the graph just reports into it.
  void set_telemetry(obs::Registry* registry) noexcept {
    telemetry_ = registry;
  }

  /// The epoch spans recorded by the next run() are stamped with — the
  /// engine sets it to the epoch the run is building toward, so a
  /// burst's plan/compute/commit/publish spans all correlate.
  void set_epoch_hint(std::uint64_t epoch) noexcept { epoch_hint_ = epoch; }

  /// Recompute the node's product and return its content hash. Runs only
  /// when the node is dirty; a returned hash equal to the previous one
  /// stops propagation (dependents stay clean).
  using Rebuild = std::function<std::uint64_t()>;

  /// What a parallel node's compute phase yields: the product's content
  /// hash plus the closure that installs the product (writes artifacts,
  /// invalidates caches). The compute phase may run on any pool thread
  /// and must not touch the graph or any writer-owned state; the commit
  /// closure runs on the coordinating thread, in plan order, and must
  /// not define()/remove() nodes.
  struct ParallelOutcome {
    std::uint64_t hash = 0;
    std::function<void()> commit;
  };
  using ParallelRebuild = std::function<ParallelOutcome()>;

  /// Define (or redefine) a node. `deps` are producer node ids: when any
  /// of them changes, this node is re-run. Dependencies may be declared
  /// before the producer exists (the edge activates when it is defined).
  /// New nodes start dirty. Redefining keeps the stored hash so an
  /// unchanged product still cuts off propagation.
  void define(const std::string& id, ProductKind kind,
              std::vector<std::string> deps, Rebuild rebuild);

  /// Define (or redefine) a node whose rebuild is split into a
  /// thread-safe compute phase and a serial commit phase (see
  /// ParallelOutcome). run(pool) schedules these onto the pool in waves;
  /// run() and run(nullptr) execute them inline, compute-then-commit, so
  /// a graph mixing both node flavors behaves identically either way.
  void define_parallel(const std::string& id, ProductKind kind,
                       std::vector<std::string> deps, ParallelRebuild rebuild);

  /// Remove a node (dependents keep their edge declarations; a dangling
  /// edge is inert until the id is defined again). Returns false when the
  /// id is unknown.
  bool remove(const std::string& id);

  [[nodiscard]] bool contains(std::string_view id) const;
  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }
  [[nodiscard]] std::size_t count(ProductKind kind) const;

  /// Ids currently defined, sorted (stable for tests/introspection).
  [[nodiscard]] std::vector<std::string> ids() const;
  [[nodiscard]] std::vector<std::string> ids(ProductKind kind) const;

  /// Last computed content hash (0 before the first rebuild).
  [[nodiscard]] std::uint64_t hash_of(std::string_view id) const;
  [[nodiscard]] bool is_dirty(std::string_view id) const;

  void mark_dirty(const std::string& id);
  void mark_all_dirty();

  /// Process every dirty node in dependency order; propagate dirtiness to
  /// dependents when a hash changes; repeat until the graph settles
  /// (rebuild callbacks may define/remove nodes mid-run). Throws
  /// navsep::SemanticError on a dependency cycle.
  RebuildReport run();

  /// As run(), additionally scheduling define_parallel() nodes onto
  /// `pool` in waves: whenever the dependency-order walk reaches a dirty
  /// parallel node, every dirty parallel node later in the plan whose
  /// defined inputs have settled joins the wave, their compute phases
  /// run concurrently, and their commits apply serially in plan order —
  /// so output bytes, hashes and propagation are identical to run() for
  /// any worker count. A null pool (or a single-lane one) is the serial
  /// path. A compute-phase exception surfaces during the wave's commit
  /// sweep with the same node state the serial path would leave (the
  /// throwing node clean with its stale hash, nodes after it in plan
  /// order still dirty).
  RebuildReport run(WorkerPool* pool);

 private:
  struct Node {
    ProductKind kind = ProductKind::Source;
    std::vector<std::string> deps;
    Rebuild rebuild;
    ParallelRebuild parallel_rebuild;  // set iff defined via define_parallel
    std::uint64_t hash = 0;
    bool dirty = true;
  };

  /// One pass's plan: topological order (producers first) plus the
  /// reverse-edge index for O(out-degree) dirty propagation. Ids are
  /// copied out of the node map so rebuild callbacks may define/remove
  /// nodes without invalidating the iteration.
  struct Plan {
    std::vector<std::string> order;
    std::map<std::string, std::vector<std::string>, std::less<>> dependents;
  };
  [[nodiscard]] Plan plan() const;

  /// Execute one wave of parallel nodes: compute on the pool, commit
  /// serially in plan order (counters, hash write, propagation).
  void run_wave(const std::vector<std::string>& wave, WorkerPool& pool,
                const Plan& plan, RebuildReport& report);

  std::map<std::string, Node, std::less<>> nodes_;
  /// Bumped by define()/remove(); run() aborts a pass and replans when it
  /// moves (a same-size swap of nodes would evade a size check).
  std::uint64_t topology_revision_ = 0;
  obs::Registry* telemetry_ = nullptr;  // non-owning; see set_telemetry
  std::uint64_t epoch_hint_ = 0;
};

}  // namespace navsep::nav

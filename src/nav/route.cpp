#include "nav/route.hpp"

#include <algorithm>
#include <cstddef>
#include <queue>
#include <unordered_map>
#include <utility>

#include "common/error.hpp"

namespace navsep::nav {

namespace {

// --- lexer -------------------------------------------------------------------

struct Token {
  enum class Kind : std::uint8_t {
    Role,    // IDENT
    Family,  // '@' IDENT
    Slash,
    Pipe,
    Star,
    LParen,
    RParen,
    End,
  };
  Kind kind = Kind::End;
  std::string text;        // atom name for Role/Family, operator text else
  std::size_t offset = 0;  // byte offset of the token's first character
};

[[nodiscard]] bool ident_start(char c) {
  return (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') || c == '_';
}

[[nodiscard]] bool ident_char(char c) {
  return ident_start(c) || (c >= '0' && c <= '9') || c == '-';
}

[[noreturn]] void fail(const std::string& what, std::size_t offset) {
  throw ParseError("route expression: " + what,
                   Position{1, offset + 1, offset});
}

[[nodiscard]] std::vector<Token> lex(std::string_view text) {
  std::vector<Token> out;
  std::size_t i = 0;
  while (i < text.size()) {
    const char c = text[i];
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      ++i;
      continue;
    }
    const std::size_t at = i;
    if (c == '/') {
      out.push_back({Token::Kind::Slash, "/", at});
      ++i;
    } else if (c == '|') {
      out.push_back({Token::Kind::Pipe, "|", at});
      ++i;
    } else if (c == '*') {
      out.push_back({Token::Kind::Star, "*", at});
      ++i;
    } else if (c == '(') {
      out.push_back({Token::Kind::LParen, "(", at});
      ++i;
    } else if (c == ')') {
      out.push_back({Token::Kind::RParen, ")", at});
      ++i;
    } else if (c == '@') {
      ++i;
      if (i >= text.size() || !ident_start(text[i])) {
        fail("expected a family name after '@'", at);
      }
      std::size_t begin = i;
      while (i < text.size() && ident_char(text[i])) ++i;
      out.push_back(
          {Token::Kind::Family, std::string(text.substr(begin, i - begin)),
           at});
    } else if (ident_start(c)) {
      std::size_t begin = i;
      while (i < text.size() && ident_char(text[i])) ++i;
      out.push_back(
          {Token::Kind::Role, std::string(text.substr(begin, i - begin)), at});
    } else {
      fail("unexpected character '" + std::string(1, c) + "'", at);
    }
  }
  out.push_back({Token::Kind::End, "end of input", text.size()});
  return out;
}

// --- parser ------------------------------------------------------------------
//
// alt := seq ('|' seq)* ; seq := star ('/' star)* ; star := atom ['*'] ;
// atom := IDENT | '@' IDENT | '(' alt ')'

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  [[nodiscard]] RouteExpr parse() {
    RouteExpr e = alt();
    const Token& t = peek();
    if (t.kind != Token::Kind::End) {
      fail("unexpected token '" + t.text + "'", t.offset);
    }
    return e;
  }

 private:
  [[nodiscard]] const Token& peek() const { return tokens_[pos_]; }
  const Token& take() { return tokens_[pos_++]; }

  [[nodiscard]] RouteExpr alt() {
    RouteExpr first = seq();
    if (peek().kind != Token::Kind::Pipe) return first;
    RouteExpr out;
    out.kind = RouteExpr::Kind::Alt;
    out.children.push_back(std::move(first));
    while (peek().kind == Token::Kind::Pipe) {
      take();
      out.children.push_back(seq());
    }
    return out;
  }

  [[nodiscard]] RouteExpr seq() {
    RouteExpr first = star();
    if (peek().kind != Token::Kind::Slash) return first;
    RouteExpr out;
    out.kind = RouteExpr::Kind::Seq;
    out.children.push_back(std::move(first));
    while (peek().kind == Token::Kind::Slash) {
      take();
      out.children.push_back(star());
    }
    return out;
  }

  [[nodiscard]] RouteExpr star() {
    RouteExpr inner = atom();
    while (peek().kind == Token::Kind::Star) {
      const Token& t = take();
      // `e**` is redundant, not meaningful — reject it so every accepted
      // program has exactly one canonical spelling.
      if (inner.kind == RouteExpr::Kind::Star) {
        fail("unexpected token '*' (already starred)", t.offset);
      }
      RouteExpr out;
      out.kind = RouteExpr::Kind::Star;
      out.children.push_back(std::move(inner));
      inner = std::move(out);
    }
    return inner;
  }

  [[nodiscard]] RouteExpr atom() {
    const Token& t = take();
    switch (t.kind) {
      case Token::Kind::Role: {
        RouteExpr e;
        e.kind = RouteExpr::Kind::Role;
        e.name = t.text;
        return e;
      }
      case Token::Kind::Family: {
        RouteExpr e;
        e.kind = RouteExpr::Kind::Family;
        e.name = t.text;
        return e;
      }
      case Token::Kind::LParen: {
        RouteExpr e = alt();
        const Token& close = take();
        if (close.kind != Token::Kind::RParen) {
          fail("expected ')' but found '" + close.text + "'", close.offset);
        }
        return e;
      }
      default:
        fail("unexpected token '" + t.text + "'", t.offset);
    }
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

// --- printer -----------------------------------------------------------------

[[nodiscard]] int precedence(RouteExpr::Kind kind) {
  switch (kind) {
    case RouteExpr::Kind::Alt:
      return 0;
    case RouteExpr::Kind::Seq:
      return 1;
    case RouteExpr::Kind::Star:
      return 2;
    case RouteExpr::Kind::Role:
    case RouteExpr::Kind::Family:
      return 3;
  }
  return 3;
}

void print_into(const RouteExpr& expr, int min_precedence, std::string& out) {
  const bool parens = precedence(expr.kind) < min_precedence;
  if (parens) out += '(';
  switch (expr.kind) {
    case RouteExpr::Kind::Role:
      out += expr.name;
      break;
    case RouteExpr::Kind::Family:
      out += '@';
      out += expr.name;
      break;
    case RouteExpr::Kind::Star:
      // The child needs parens unless it is itself an atom.
      print_into(expr.children.front(), 3, out);
      out += '*';
      break;
    case RouteExpr::Kind::Seq:
      for (std::size_t i = 0; i < expr.children.size(); ++i) {
        if (i != 0) out += " / ";
        print_into(expr.children[i], 2, out);
      }
      break;
    case RouteExpr::Kind::Alt:
      for (std::size_t i = 0; i < expr.children.size(); ++i) {
        if (i != 0) out += " | ";
        print_into(expr.children[i], 1, out);
      }
      break;
  }
  if (parens) out += ')';
}

// --- NFA ---------------------------------------------------------------------

// Thompson construction: one transition per atom occurrence, epsilon
// edges for Seq/Alt/Star plumbing. States are dense indices.
struct Nfa {
  struct Trans {
    std::size_t from = 0;
    bool family = false;    // false: role atom, true: family atom
    const std::string* name = nullptr;
    std::size_t to = 0;
  };
  std::vector<Trans> transitions;
  std::vector<std::pair<std::size_t, std::size_t>> epsilons;
  std::size_t state_count = 0;
  std::size_t start = 0;
  std::size_t accept = 0;

  std::size_t fresh() { return state_count++; }
};

// Builds the fragment for `expr` between two freshly allocated states and
// returns {entry, exit}.
std::pair<std::size_t, std::size_t> build_nfa(const RouteExpr& expr,
                                              Nfa& nfa) {
  switch (expr.kind) {
    case RouteExpr::Kind::Role:
    case RouteExpr::Kind::Family: {
      std::size_t entry = nfa.fresh();
      std::size_t exit = nfa.fresh();
      nfa.transitions.push_back({entry,
                                 expr.kind == RouteExpr::Kind::Family,
                                 &expr.name, exit});
      return {entry, exit};
    }
    case RouteExpr::Kind::Seq: {
      std::pair<std::size_t, std::size_t> whole{0, 0};
      for (std::size_t i = 0; i < expr.children.size(); ++i) {
        auto frag = build_nfa(expr.children[i], nfa);
        if (i == 0) {
          whole = frag;
        } else {
          nfa.epsilons.emplace_back(whole.second, frag.first);
          whole.second = frag.second;
        }
      }
      return whole;
    }
    case RouteExpr::Kind::Alt: {
      std::size_t entry = nfa.fresh();
      std::size_t exit = nfa.fresh();
      for (const RouteExpr& child : expr.children) {
        auto frag = build_nfa(child, nfa);
        nfa.epsilons.emplace_back(entry, frag.first);
        nfa.epsilons.emplace_back(frag.second, exit);
      }
      return {entry, exit};
    }
    case RouteExpr::Kind::Star: {
      std::size_t entry = nfa.fresh();
      std::size_t exit = nfa.fresh();
      auto frag = build_nfa(expr.children.front(), nfa);
      nfa.epsilons.emplace_back(entry, exit);        // zero iterations
      nfa.epsilons.emplace_back(entry, frag.first);  // enter the loop
      nfa.epsilons.emplace_back(frag.second, frag.first);  // repeat
      nfa.epsilons.emplace_back(frag.second, exit);        // leave
      return {entry, exit};
    }
  }
  return {0, 0};
}

/// Family part of a qualified context tag ("family:name" → "family";
/// untagged structure arcs yield "" and never match a family atom).
[[nodiscard]] std::string_view context_family_of(std::string_view context) {
  const std::size_t colon = context.find(':');
  return colon == std::string_view::npos ? context : context.substr(0, colon);
}

}  // namespace

RouteExpr parse_route(std::string_view expression) {
  return Parser(lex(expression)).parse();
}

std::string print_route(const RouteExpr& expr) {
  std::string out;
  print_into(expr, 0, out);
  return out;
}

std::vector<std::string> expand_route(
    const RouteExpr& expr, const std::vector<core::NavArc>& arcs,
    const std::vector<std::string>& exclude_sources) {
  auto excluded = [&](const std::string& source) {
    return std::find(exclude_sources.begin(), exclude_sources.end(),
                     source) != exclude_sources.end();
  };

  // Universe: every id the included arcs name, sorted (string_view keys
  // stay valid because `nodes` is never resized after this block).
  std::vector<std::string> nodes;
  std::unordered_map<std::string_view, std::size_t> index;
  for (const core::NavArc& arc : arcs) {
    if (excluded(arc.source)) continue;
    nodes.push_back(arc.from);
    nodes.push_back(arc.to);
  }
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  index.reserve(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) index.emplace(nodes[i], i);

  struct Edge {
    std::size_t to = 0;
    const core::NavArc* arc = nullptr;
  };
  std::vector<std::vector<Edge>> adjacency(nodes.size());
  for (const core::NavArc& arc : arcs) {
    if (excluded(arc.source)) continue;
    adjacency[index.at(arc.from)].push_back({index.at(arc.to), &arc});
  }

  Nfa nfa;
  auto [start, accept] = build_nfa(expr, nfa);
  nfa.start = start;
  nfa.accept = accept;

  std::vector<std::vector<std::size_t>> eps_out(nfa.state_count);
  for (auto [from, to] : nfa.epsilons) eps_out[from].push_back(to);
  std::vector<std::vector<const Nfa::Trans*>> trans_out(nfa.state_count);
  for (const Nfa::Trans& t : nfa.transitions) {
    trans_out[t.from].push_back(&t);
  }

  // Product BFS over (node, nfa-state): every node is a legal journey
  // start, a pair reaching the accept state marks its node reachable.
  std::vector<bool> visited(nodes.size() * nfa.state_count, false);
  std::vector<bool> reached(nodes.size(), false);
  std::queue<std::pair<std::size_t, std::size_t>> queue;
  auto push = [&](std::size_t node, std::size_t state) {
    const std::size_t key = node * nfa.state_count + state;
    if (visited[key]) return;
    visited[key] = true;
    queue.emplace(node, state);
  };
  for (std::size_t n = 0; n < nodes.size(); ++n) push(n, nfa.start);
  while (!queue.empty()) {
    auto [node, state] = queue.front();
    queue.pop();
    if (state == nfa.accept) reached[node] = true;
    for (std::size_t next : eps_out[state]) push(node, next);
    for (const Nfa::Trans* t : trans_out[state]) {
      for (const Edge& edge : adjacency[node]) {
        const bool matches =
            t->family ? context_family_of(edge.arc->context) == *t->name
                      : edge.arc->role == *t->name;
        if (matches) push(edge.to, t->to);
      }
    }
  }

  std::vector<std::string> out;
  for (std::size_t n = 0; n < nodes.size(); ++n) {
    if (reached[n]) out.push_back(nodes[n]);
  }
  return out;  // `nodes` is sorted, so `out` is too.
}

hypermedia::ContextFamily route_context_family(
    std::string_view name, const RouteExpr& expr,
    const std::vector<core::NavArc>& arcs,
    const std::vector<std::string>& exclude_sources) {
  std::vector<std::string> ids = expand_route(expr, arcs, exclude_sources);
  std::vector<hypermedia::NavigationalContext> contexts;
  contexts.emplace_back(std::string(name), "route", std::move(ids));
  return hypermedia::ContextFamily(std::string(name), std::move(contexts));
}

std::uint64_t route_token(const RouteProgram& program) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  auto mix = [&](std::string_view text) {
    for (unsigned char c : text) {
      h ^= c;
      h *= 0x100000001b3ull;
    }
    h ^= 0xffu;  // field separator
    h *= 0x100000001b3ull;
  };
  mix(program.name);
  mix(print_route(parse_route(program.expression)));
  mix(program.compile == RouteCompile::Aot ? "aot" : "lazy");
  return h;
}

}  // namespace navsep::nav

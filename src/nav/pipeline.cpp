#include "nav/pipeline.hpp"

#include <utility>

#include "common/error.hpp"
#include "core/renderer.hpp"
#include "xml/parser.hpp"

namespace navsep::nav {

// --- Engine ------------------------------------------------------------------

site::Browser Engine::open_browser() const {
  return site::Browser(*server_, graph_);
}

site::NavigationSession Engine::open_session() const {
  std::vector<const hypermedia::ContextFamily*> families;
  families.reserve(families_.size());
  for (const auto& f : families_) families.push_back(&f);
  return site::NavigationSession(*nav_, std::move(families), &weaver_);
}

std::string Engine::compose_page(std::string_view node_id,
                                 std::string_view context_tag) const {
  const hypermedia::NavNode* node = nav_->node(node_id);
  if (node == nullptr) {
    throw ResolutionError("compose_page: unknown node id '" +
                          std::string(node_id) + "'");
  }
  if (mode_ == WeaveMode::Tangled) {
    return core::TangledRenderer(*nav_, *structure_).render_node_page(*node);
  }
  return core::SeparatedComposer(weaver_).compose_node_page(*node,
                                                            context_tag);
}

void Engine::rebuild() {
  if (mode_ == WeaveMode::Tangled) {
    core::TangledRenderer renderer(*nav_, *structure_);
    for (auto& page : renderer.render_site()) {
      site_.put(std::move(page.path), std::move(page.content));
    }
  } else {
    core::SeparatedComposer composer(weaver_);
    for (auto& page : composer.compose_site(*nav_, *structure_)) {
      site_.put(std::move(page.path), std::move(page.content));
    }
  }
  server_->clear_cache();
}

// --- SitePipeline ------------------------------------------------------------

SitePipeline& SitePipeline::conceptual(
    std::unique_ptr<museum::MuseumWorld> world) {
  owned_world_ = std::move(world);
  world_ = owned_world_.get();
  nav_.reset();  // a model derived from a previous world is invalid now
  return *this;
}

SitePipeline& SitePipeline::conceptual(const museum::MuseumWorld& world) {
  owned_world_.reset();
  world_ = &world;
  nav_.reset();
  return *this;
}

SitePipeline& SitePipeline::conceptual(const museum::SyntheticSpec& spec) {
  return conceptual(museum::MuseumWorld::synthetic(spec));
}

SitePipeline& SitePipeline::paper_museum() {
  return conceptual(museum::MuseumWorld::paper_instance());
}

SitePipeline& SitePipeline::schema() {
  if (world_ == nullptr) {
    throw SemanticError("SitePipeline::schema(): no conceptual model yet — "
                        "call conceptual() first");
  }
  nav_ = world_->derive_navigation();
  return *this;
}

SitePipeline& SitePipeline::schema(hypermedia::NavigationalModel model) {
  nav_ = std::move(model);
  return *this;
}

SitePipeline& SitePipeline::access(hypermedia::AccessStructureKind kind) {
  kind_ = kind;
  scope_painter_.reset();
  structure_.reset();
  return *this;
}

SitePipeline& SitePipeline::access(hypermedia::AccessStructureKind kind,
                                   std::string_view painter_id) {
  kind_ = kind;
  scope_painter_ = std::string(painter_id);
  structure_.reset();
  return *this;
}

SitePipeline& SitePipeline::structure(
    std::unique_ptr<hypermedia::AccessStructure> structure) {
  structure_ = std::move(structure);
  kind_.reset();
  scope_painter_.reset();
  return *this;
}

SitePipeline& SitePipeline::contexts(std::vector<std::string> family_names) {
  family_names_ = std::move(family_names);
  return *this;
}

SitePipeline& SitePipeline::weave() {
  mode_ = WeaveMode::Separated;
  return *this;
}

SitePipeline& SitePipeline::tangled() {
  mode_ = WeaveMode::Tangled;
  return *this;
}

SitePipeline::Materialized SitePipeline::materialize() {
  if (world_ == nullptr) {
    throw SemanticError(
        "SitePipeline: no conceptual model — call conceptual(), "
        "paper_museum() or conceptual(SyntheticSpec) first");
  }
  Materialized m;
  m.owned_world = std::move(owned_world_);
  m.world = world_;
  m.nav = nav_ ? std::move(nav_) : std::optional<hypermedia::NavigationalModel>(
                                       world_->derive_navigation());
  // The pipeline is consumed: clear the moved-from state so a second
  // terminal call throws the no-conceptual-model error above instead of
  // dereferencing a dead world.
  world_ = nullptr;
  nav_.reset();

  if (structure_ != nullptr) {
    m.structure = std::move(structure_);
  } else if (kind_) {
    m.structure = scope_painter_
                      ? m.world->paintings_structure(*kind_, *m.nav,
                                                     *scope_painter_)
                      : m.world->all_paintings_structure(*kind_, *m.nav);
  } else {
    throw SemanticError(
        "SitePipeline: no access structure — call access(kind[, painter]) "
        "or structure(...)");
  }

  for (const std::string& name : family_names_) {
    if (name == "ByAuthor") {
      m.families.push_back(m.world->by_author(*m.nav));
    } else if (name == "ByMovement") {
      m.families.push_back(m.world->by_movement(*m.nav));
    } else {
      throw SemanticError("SitePipeline: unknown context family '" + name +
                          "' (known: ByAuthor, ByMovement)");
    }
  }
  return m;
}

namespace {

/// The server slash-terminates its base; the site builders concatenate
/// theirs — normalize up front so linkbase URIs and served URIs agree.
std::string with_trailing_slash(std::string_view base) {
  std::string out(base);
  if (!out.empty() && out.back() != '/') out += '/';
  return out;
}

}  // namespace

std::unique_ptr<Engine> SitePipeline::serve(std::string_view base) {
  Materialized m = materialize();

  // The constructor is private; no make_unique.
  std::unique_ptr<Engine> engine(new Engine());
  engine->owned_world_ = std::move(m.owned_world);
  engine->world_ = m.world;
  engine->nav_ = std::move(m.nav);
  engine->structure_ = std::move(m.structure);
  engine->families_ = std::move(m.families);
  engine->mode_ = mode_;

  site::SiteBuildOptions options;
  options.site_base = with_trailing_slash(base);
  for (const auto& family : engine->families_) {
    options.context_families.push_back(&family);
  }
  options.weaver = &engine->weaver_;

  if (mode_ == WeaveMode::Tangled) {
    engine->site_ =
        site::build_tangled_site(*engine->world_, *engine->structure_,
                                 options);
  } else {
    engine->site_ =
        site::build_separated_site(*engine->world_, *engine->structure_,
                                   options);
    // Load every authored linkbase back and merge the arc tables; the
    // parsed documents stay alive in the engine so graph element
    // pointers remain valid.
    auto load = [&](const std::string& path) {
      const std::string* text = engine->site_.get(path);
      if (text == nullptr) return;
      xml::ParseOptions parse_options;
      parse_options.base_uri = options.site_base + path;
      auto doc = xml::parse(*text, parse_options);
      engine->graph_.merge(xlink::TraversalGraph::from_linkbase(*doc));
      engine->linkbase_docs_.push_back(std::move(doc));
    };
    load("links.xml");
    for (const auto& family : engine->families_) {
      load(site::context_linkbase_path(family.name()));
    }
  }

  engine->server_ = std::make_unique<site::HypermediaServer>(
      engine->site_, options.site_base);
  engine->browser_ =
      std::make_unique<site::Browser>(*engine->server_, engine->graph_);
  engine->session_ = std::make_unique<BrowserSession>(*engine->browser_,
                                                      *engine->server_);
  return engine;
}

site::VirtualSite SitePipeline::build(std::string_view base) {
  Materialized m = materialize();
  site::SiteBuildOptions options;
  options.site_base = with_trailing_slash(base);
  for (const auto& family : m.families) {
    options.context_families.push_back(&family);
  }
  return mode_ == WeaveMode::Tangled
             ? site::build_tangled_site(*m.world, *m.structure, options)
             : site::build_separated_site(*m.world, *m.structure, options);
}

}  // namespace navsep::nav

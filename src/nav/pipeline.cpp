#include "nav/pipeline.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "core/linkbase.hpp"
#include "core/renderer.hpp"
#include "repl/publisher.hpp"
#include "serve/concurrent_server.hpp"
#include "xml/parser.hpp"
#include "xml/serializer.hpp"

namespace navsep::nav {

namespace {

/// Build-graph node ids. Pages/slices append the page id.
constexpr std::string_view kSpecNode = "nav:spec";
constexpr std::string_view kArcTableNode = "nav:arcs";
constexpr std::string_view kServerNode = "site:server";

/// The structure linkbase's site path — also the NavArc::source tag of
/// its arcs and the snapshot's structure_source (one shared constant:
/// a drift would silently drop every structure arc from overlays).
constexpr std::string_view kStructureLinkbasePath =
    site::kStructureLinkbasePath;

std::string linkbase_node(std::string_view path) {
  return "linkbase:" + std::string(path);
}
std::string page_node(std::string_view page_id) {
  return "page:" + std::string(page_id);
}
std::string slice_node(std::string_view page_id) {
  return "arcslice:" + std::string(page_id);
}
std::string menu_sub_node(std::size_t index) {
  return "menusub:" + std::to_string(index);
}
std::string route_node(std::string_view name) {
  return "route:" + std::string(name);
}
std::string landmark_node(std::string_view name) {
  return "landmark:" + std::string(name);
}

/// Engine::route_index / landmark_index "not registered" sentinel.
constexpr std::size_t kNoRoute = static_cast<std::size_t>(-1);

/// The base landmark family every profile navigates with once
/// enable_landmarks runs; per-profile families append "-<profile>".
constexpr std::string_view kLandmarkFamily = "landmarks";

std::uint64_t hash_str(std::uint64_t seed, std::string_view s) {
  return hash_combine(seed, hash_bytes(s));
}

/// Where the navigation aspect logs anchor provenance during a page
/// composition. Thread-local so parallel page weaves each get their own
/// log: the aspect resolves it per render through
/// NavigationAspectOptions::provenance_sink, on whichever thread is
/// composing.
thread_local std::vector<core::AnchorProvenance> t_weave_provenance;

/// Restores the parallel-wave flag even when the graph run throws.
class WaveFlagGuard {
 public:
  WaveFlagGuard(bool& flag, bool value) noexcept : flag_(flag) {
    flag_ = value;
  }
  ~WaveFlagGuard() { flag_ = false; }
  WaveFlagGuard(const WaveFlagGuard&) = delete;
  WaveFlagGuard& operator=(const WaveFlagGuard&) = delete;

 private:
  bool& flag_;
};

}  // namespace

// --- Engine ------------------------------------------------------------------

site::Browser Engine::open_browser() const {
  return site::Browser(*server_, graph_);
}

site::NavigationSession Engine::open_session() const {
  std::vector<const hypermedia::ContextFamily*> families;
  families.reserve(families_.size());
  for (const auto& f : families_) families.push_back(&f);
  return site::NavigationSession(*nav_, std::move(families), &weaver_);
}

std::unique_ptr<serve::ConcurrentServer> Engine::open_concurrent(
    std::size_t cache_shards) const {
  return std::make_unique<serve::ConcurrentServer>(snapshots_, cache_shards);
}

std::unique_ptr<serve::ConcurrentServer> Engine::open_concurrent(
    std::size_t cache_shards, serve::CacheLimits limits) const {
  return std::make_unique<serve::ConcurrentServer>(snapshots_, cache_shards,
                                                   limits);
}

std::unique_ptr<repl::Publisher> Engine::open_publisher(
    const repl::Endpoint& endpoint) const {
  return open_publisher(endpoint, repl::PublisherOptions{});
}

std::unique_ptr<repl::Publisher> Engine::open_publisher(
    const repl::Endpoint& endpoint,
    const repl::PublisherOptions& options) const {
  return std::make_unique<repl::Publisher>(snapshots_,
                                           repl::Listener(endpoint), options);
}

std::string Engine::compose_page(std::string_view node_id,
                                 std::string_view context_tag) const {
  const hypermedia::NavNode* node = nav_->node(node_id);
  if (node == nullptr) {
    throw ResolutionError("compose_page: unknown node id '" +
                          std::string(node_id) + "'");
  }
  if (mode_ == WeaveMode::Tangled) {
    return core::TangledRenderer(*nav_, *structure_).render_node_page(*node);
  }
  // On-demand composition logs anchors into the same thread-local the
  // build graph uses; keep it from accumulating across calls.
  t_weave_provenance.clear();
  std::string page =
      core::SeparatedComposer(weaver_).compose_node_page(*node, context_tag);
  t_weave_provenance.clear();
  return page;
}

void Engine::rebuild() {
  // Blanket invalidation keeps the historical contract: a rebuild() after
  // registering arbitrary aspects must leave no stale response anywhere.
  // Clearing BEFORE the run also keeps it cheap — every page the run
  // replaces would otherwise scan the still-warm cache in invalidate().
  server_->clear_cache();
  build_graph_.mark_all_dirty();
  if (batch_open_) {
    ++batch_edits_;
    batch_publish_pending_ = true;
    batch_graph_pending_ = true;
    return;
  }
  (void)run_graph_now();
}

// --- Engine: incremental mutation entry points --------------------------------

RebuildReport Engine::run_graph_after_mutation() {
  build_graph_.mark_dirty(std::string(kSpecNode));
  return run_or_defer();
}

RebuildReport Engine::run_or_defer() {
  if (batch_open_) {
    // The mutation already moved engine state and marked its nodes
    // dirty; the graph run, browser refresh and (single) publish all
    // wait for commit_batch().
    ++batch_edits_;
    batch_publish_pending_ = true;
    batch_graph_pending_ = true;
    return RebuildReport{};
  }
  RebuildReport report = run_graph_now();
  report.edits_coalesced = 1;
  report.epochs_published = 1;
  return report;
}

RebuildReport Engine::run_graph_now() {
  WorkerPool* pool = eligible_pool();
  RebuildReport report;
  {
    // Spans recorded under this run (plan/wave/publish) are all stamped
    // with the epoch the run is building toward, so one edit burst is
    // traceable end-to-end by epoch.
    const std::uint64_t target_epoch = snapshots_.epoch() + 1;
    build_graph_.set_epoch_hint(target_epoch);
    obs::ScopedSpan span(
        telemetry_ != nullptr ? &telemetry_->spans() : nullptr, "build.run",
        target_epoch);
    WaveFlagGuard guard(parallel_wave_active_, pool != nullptr);
    report = build_graph_.run(pool);
  }
  // The arc table (and with it the Arc storage the browser's cached
  // links() point into) may have been rebuilt; re-resolve the session.
  browser_->refresh();
  publish_snapshot();
  if (telemetry_ != nullptr) {
    telemetry_->counter("build.runs").add(1);
    telemetry_->counter("build.nodes_rebuilt").add(report.nodes_rebuilt);
    telemetry_->counter("build.pages_rewoven").add(report.pages_rewoven);
    telemetry_->counter("build.linkbases_reauthored")
        .add(report.linkbases_reauthored);
  }
  return report;
}

WorkerPool* Engine::eligible_pool() const {
  if (pool_ == nullptr || pool_->workers() <= 1) return nullptr;
  if (mode_ != WeaveMode::Separated) return nullptr;
  // Foreign aspects (anything beyond the engine's own navigation
  // aspect) carry no thread-safety contract for their advice — weave
  // serially so user advice keeps its single-threaded world.
  for (const std::string& name : weaver_.aspect_names()) {
    if (name != "navigation") return nullptr;
  }
  return pool_.get();
}

void Engine::begin_batch() {
  if (batch_open_) {
    throw SemanticError(
        "Engine::begin_batch: a batch is already open (commit_batch it "
        "first — batches do not nest)");
  }
  batch_open_ = true;
  batch_edits_ = 0;
  batch_publish_pending_ = false;
  batch_graph_pending_ = false;
}

RebuildReport Engine::commit_batch() {
  if (!batch_open_) {
    throw SemanticError(
        "Engine::commit_batch: no batch is open (begin_batch first)");
  }
  batch_open_ = false;
  const std::size_t edits = batch_edits_;
  const bool publish_pending = batch_publish_pending_;
  const bool graph_pending = batch_graph_pending_;
  batch_edits_ = 0;
  batch_publish_pending_ = false;
  batch_graph_pending_ = false;

  RebuildReport report;
  if (graph_pending) {
    report = run_graph_now();  // one run, one publish for the whole burst
    report.epochs_published = 1;
  } else if (publish_pending) {
    // Publish-only batch (profile registrations): no graph run needed,
    // still exactly one epoch.
    publish_snapshot();
    report.epochs_published = 1;
  }
  report.edits_coalesced = edits;
  return report;
}

void Engine::set_weave_workers(std::size_t lanes) {
  if (lanes == 1) {
    pool_.reset();
    return;
  }
  pool_ = std::make_unique<WorkerPool>(lanes);
}

void Engine::attach_telemetry(std::shared_ptr<obs::Registry> registry) {
  telemetry_sampler_.reset();
  build_graph_.set_telemetry(registry.get());
  telemetry_ = std::move(registry);
  if (telemetry_ == nullptr) return;
  // Raw pointer capture on purpose: the registry holding a closure that
  // shares ownership of itself would never be destroyed. The handle
  // (reset above / on destruction / on re-attach) bounds its use.
  obs::Registry* reg = telemetry_.get();
  telemetry_sampler_ = reg->add_sampler([this, reg] {
    const site::HypermediaServer::Stats s = server_->stats();
    reg->gauge("engine.server.requests")
        .set(static_cast<std::int64_t>(s.requests));
    reg->gauge("engine.server.misses")
        .set(static_cast<std::int64_t>(s.misses));
    reg->gauge("engine.server.cache_hits")
        .set(static_cast<std::int64_t>(s.cache_hits));
    reg->gauge("engine.server.cache_size")
        .set(static_cast<std::int64_t>(s.cache_size));
    reg->gauge("store.epoch")
        .set(static_cast<std::int64_t>(snapshots_.epoch()));
    reg->gauge("store.publishes")
        .set(static_cast<std::int64_t>(snapshots_.publishes()));
  });
}

void Engine::publish_snapshot() {
  obs::ScopedSpan span(telemetry_ != nullptr ? &telemetry_->spans() : nullptr,
                       "build.publish", snapshots_.epoch() + 1);
  serve::SnapshotOverlayInputs overlays;
  overlays.arcs = combined_arcs_;  // null in Tangled mode: no overlays
  overlays.structure_source = std::string(kStructureLinkbasePath);
  overlays.families.reserve(context_linkbases_.size() +
                            route_programs_.size());
  for (const ContextLinkbase& entry : context_linkbases_) {
    overlays.families.push_back(
        serve::SnapshotOverlayInputs::Family{entry.family->name(),
                                             entry.path});
  }
  // AOT routes are fully materialized linkbases by publish time — they
  // ride as ordinary families (path-addressable, slice-hashed). Lazy
  // routes ride only in the route table and expand inside the snapshot.
  for (std::size_t i = 0; i < route_programs_.size(); ++i) {
    if (route_programs_[i].compile != RouteCompile::Aot) continue;
    overlays.families.push_back(serve::SnapshotOverlayInputs::Family{
        route_programs_[i].name, routes_[i].path});
  }
  // Landmark families are always materialized linkbases (there is no
  // lazy landmark): they ride exactly like AOT routes.
  for (const LandmarkState& entry : landmarks_) {
    overlays.families.push_back(
        serve::SnapshotOverlayInputs::Family{entry.name, entry.path});
  }
  overlays.profiles = profiles_;
  overlays.slice_hashes = overlay_slice_hashes_;
  refresh_route_table();
  overlays.routes = route_table_;
  snapshots_.publish(std::make_shared<serve::SiteSnapshot>(
      site_, graph_, site_base_, snapshots_.epoch() + 1,
      std::move(overlays)));
}

void Engine::register_profile(Profile profile) {
  if (profile.name.empty() ||
      profile.name.find('\n') != std::string::npos) {
    throw SemanticError(
        "Engine::register_profile: profile names must be non-empty and "
        "newline-free (they key the overlay cache)");
  }
  if (mode_ == WeaveMode::Tangled && !profile.families.empty()) {
    throw SemanticError(
        "Engine::register_profile: the tangled baseline has no separated "
        "navigation to scope — only empty-family profiles are meaningful");
  }
  for (std::size_t i = 0; i < profile.families.size(); ++i) {
    const std::string& name = profile.families[i];
    const bool known =
        std::any_of(families_.begin(), families_.end(),
                    [&](const hypermedia::ContextFamily& f) {
                      return f.name() == name;
                    }) ||
        route_index(name) != kNoRoute || landmark_index(name) != kNoRoute;
    if (!known) {
      throw SemanticError("Engine::register_profile: unknown context family '" +
                          name +
                          "' (configure it via SitePipeline::contexts, "
                          "register_route or enable_landmarks)");
    }
    for (std::size_t j = 0; j < i; ++j) {
      if (profile.families[j] == name) {
        throw SemanticError(
            "Engine::register_profile: family '" + name +
            "' listed twice — a family weaves once per profile");
      }
    }
  }
  auto existing = std::find_if(
      profiles_.begin(), profiles_.end(),
      [&](const Profile& p) { return p.name == profile.name; });
  if (existing != profiles_.end()) {
    *existing = std::move(profile);
  } else {
    profiles_.push_back(std::move(profile));
  }
  // With landmark synthesis on, the new (or replaced) profile picks up
  // its landmark families: the base one always, its personal one when
  // per_profile is set — which may author a brand-new linkbase and so
  // needs a graph run, not just a publish.
  bool landmarks_changed = false;
  if (landmark_options_.has_value()) {
    landmarks_changed = refresh_landmark_states();
    if (landmarks_changed) {
      sync_landmark_nodes();
      build_graph_.mark_dirty(std::string(kArcTableNode));
    }
  }
  if (batch_open_) {
    // Registration is visible to later batched operations immediately;
    // only the publish coalesces into the batch's single epoch.
    ++batch_edits_;
    batch_publish_pending_ = true;
    if (landmarks_changed) batch_graph_pending_ = true;
    return;
  }
  if (landmarks_changed) {
    (void)run_graph_now();
    return;
  }
  // Nothing re-weaves: the next epoch differs only in its profile table.
  publish_snapshot();
}

RebuildReport Engine::edit_context_family(
    std::string_view family_name,
    const std::function<void(hypermedia::ContextFamily&)>& edit) {
  if (mode_ == WeaveMode::Tangled) {
    throw SemanticError(
        "Engine::edit_context_family: the tangled baseline has no "
        "contextual linkbases to edit");
  }
  auto family = std::find_if(
      families_.begin(), families_.end(),
      [&](const hypermedia::ContextFamily& f) {
        return f.name() == family_name;
      });
  if (family == families_.end()) {
    throw ResolutionError("Engine::edit_context_family: unknown family '" +
                          std::string(family_name) + "'");
  }
  // Dirty exactly that family's linkbase node: the graph re-authors it,
  // the arc table re-merges, and — because context-tagged tour arcs are
  // in no stored page's slice — zero pages re-weave. The propagation
  // runs even when the edit callback throws: it may already have
  // mutated the family, and an un-propagated mutation would leave the
  // authored linkbase (and every later snapshot) silently inconsistent
  // with the in-memory model.
  auto propagate = [&] {
    for (const ContextLinkbase& entry : context_linkbases_) {
      if (entry.family == &*family) {
        build_graph_.mark_dirty(linkbase_node(entry.path));
        break;
      }
    }
    return run_or_defer();
  };
  try {
    edit(*family);
  } catch (...) {
    try {
      (void)propagate();
    } catch (...) {
      // Best-effort only: a half-mutated family may not even re-author.
      // The caller's own exception is the one worth reporting.
    }
    throw;
  }
  return propagate();
}

// --- Engine: route programs ---------------------------------------------------

RebuildReport Engine::register_route(RouteProgram program) {
  if (mode_ == WeaveMode::Tangled) {
    throw SemanticError(
        "Engine::register_route: the tangled baseline has no separated "
        "navigation for a route to traverse");
  }
  if (program.name.empty() ||
      program.name.find(':') != std::string::npos ||
      program.name.find('\n') != std::string::npos) {
    throw SemanticError(
        "Engine::register_route: route names must be non-empty and free of "
        "':' and newlines — the name becomes the route's context-family "
        "name and tags its arcs '<name>:route'");
  }
  const bool family_collision = std::any_of(
      families_.begin(), families_.end(),
      [&](const hypermedia::ContextFamily& f) {
        return f.name() == program.name;
      });
  if (family_collision) {
    throw SemanticError("Engine::register_route: '" + program.name +
                        "' already names a context family — routes and "
                        "families share the profile namespace");
  }
  if (landmark_index(program.name) != kNoRoute) {
    throw SemanticError("Engine::register_route: '" + program.name +
                        "' already names a landmark family — routes and "
                        "landmarks share the profile namespace");
  }
  const std::string path = site::context_linkbase_path(program.name);
  for (const LandmarkState& entry : landmarks_) {
    if (entry.path == path) {
      throw SemanticError("Engine::register_route: route '" + program.name +
                          "' would author '" + path +
                          "', which landmark family '" + entry.name +
                          "' already owns (names map to paths "
                          "case-insensitively)");
    }
  }
  for (const ContextLinkbase& entry : context_linkbases_) {
    if (entry.path == path) {
      throw SemanticError("Engine::register_route: route '" + program.name +
                          "' would author '" + path +
                          "', which family '" + entry.family->name() +
                          "' already owns (names map to paths "
                          "case-insensitively)");
    }
  }
  for (std::size_t i = 0; i < route_programs_.size(); ++i) {
    if (routes_[i].path == path && route_programs_[i].name != program.name) {
      throw SemanticError("Engine::register_route: route '" + program.name +
                          "' would author '" + path + "', which route '" +
                          route_programs_[i].name +
                          "' already owns (names map to paths "
                          "case-insensitively)");
    }
  }
  // Parse eagerly (errors name the offending token) and store the
  // canonical spelling: route tokens — and with them the lazy overlay
  // cache keys — are hashes of the printed form, so `a/b` and `a / b`
  // must be one program, not two.
  program.expression = print_route(parse_route(program.expression));

  const std::string name = program.name;
  const std::size_t index = route_index(name);
  if (index != kNoRoute) {
    const bool was_aot =
        route_programs_[index].compile == RouteCompile::Aot;
    const bool now_aot = program.compile == RouteCompile::Aot;
    route_programs_[index] = std::move(program);
    if (was_aot && !now_aot) {
      // Aot -> Lazy: the authored artifact retires; the lazy path serves
      // the expansion from inside the snapshot instead.
      site_.remove(routes_[index].path);
      server_->invalidate(routes_[index].path);
      routes_[index].doc.reset();
      routes_[index].graph = xlink::TraversalGraph();
    }
  } else {
    route_programs_.push_back(std::move(program));
    routes_.push_back(RouteState{path, nullptr, {}});
  }
  sync_route_nodes();
  build_graph_.mark_dirty(route_node(name));
  // A Lazy program reaches readers purely through the published route
  // table, but run_or_defer()'s graph run always publishes, so no extra
  // plumbing: the dirty Route node re-hashes and the new table ships.
  return run_or_defer();
}

RebuildReport Engine::edit_route(std::string_view name,
                                 std::string_view expression) {
  const std::size_t index = route_index(name);
  if (index == kNoRoute) {
    throw ResolutionError("Engine::edit_route: unknown route '" +
                          std::string(name) + "'");
  }
  route_programs_[index].expression =
      print_route(parse_route(expression));
  sync_route_nodes();
  build_graph_.mark_dirty(route_node(name));
  return run_or_defer();
}

RebuildReport Engine::remove_route(std::string_view name) {
  const std::size_t index = route_index(name);
  if (index == kNoRoute) {
    throw ResolutionError("Engine::remove_route: unknown route '" +
                          std::string(name) + "'");
  }
  const bool was_aot = route_programs_[index].compile == RouteCompile::Aot;
  const std::string path = routes_[index].path;
  route_programs_.erase(route_programs_.begin() +
                        static_cast<std::ptrdiff_t>(index));
  routes_.erase(routes_.begin() + static_cast<std::ptrdiff_t>(index));
  sync_route_nodes();
  if (was_aot) {
    // The arc table re-merges without this route's arcs; the artifact
    // and its cached responses retire now.
    site_.remove(path);
    server_->invalidate(path);
    build_graph_.mark_dirty(std::string(kArcTableNode));
  }
  // Lazy removal publishes the shrunk route table through run_or_defer's
  // unconditional publish (no graph node left to dirty — a clean run
  // still republishes).
  return run_or_defer();
}

std::size_t Engine::route_index(std::string_view name) const {
  for (std::size_t i = 0; i < route_programs_.size(); ++i) {
    if (route_programs_[i].name == name) return i;
  }
  return kNoRoute;
}

std::vector<core::NavArc> Engine::route_input_arcs() const {
  // Route expressions range over the *authored* navigation — structure
  // plus context families — never over other routes: expansion is a
  // function of the authored site, not a fixpoint. The lazy path
  // mirrors this by excluding every route source from its input.
  if (structure_linkbase_doc_ == nullptr) return {};
  xlink::TraversalGraph structure_graph =
      xlink::TraversalGraph::from_linkbase(*structure_linkbase_doc_);
  std::vector<core::SourcedGraph> sourced;
  sourced.reserve(context_linkbases_.size() + 1);
  sourced.push_back(core::SourcedGraph{std::string(kStructureLinkbasePath),
                                       &structure_graph});
  for (const ContextLinkbase& entry : context_linkbases_) {
    sourced.push_back(core::SourcedGraph{entry.path, &entry.graph});
  }
  return core::combined_nav_arcs(sourced);
}

hypermedia::ContextFamily Engine::route_family(std::string_view name) const {
  const std::size_t index = route_index(name);
  if (index == kNoRoute) {
    throw ResolutionError("Engine::route_family: unknown route '" +
                          std::string(name) + "'");
  }
  return route_context_family(route_programs_[index].name,
                              parse_route(route_programs_[index].expression),
                              route_input_arcs());
}

std::uint64_t Engine::rebuild_route_linkbase(std::size_t index) {
  RouteState& entry = routes_[index];
  const hypermedia::ContextFamily family = route_context_family(
      route_programs_[index].name,
      parse_route(route_programs_[index].expression), route_input_arcs());
  site::SiteBuildOptions site_options;
  site_options.site_base = site_base_;
  core::LinkbaseOptions lb = site::separated_linkbase_options(site_options);
  lb.base_uri = site_base_ + entry.path;
  auto doc = core::build_context_linkbase(family, *nav_, lb);
  std::string text = xml::write(*doc, {.pretty = true});
  const std::string* current = site_.get(entry.path);
  const bool changed = current == nullptr || *current != text;
  const std::uint64_t hash = hash_bytes(text);
  if (changed) {
    site_.put(entry.path, std::move(text));
    server_->invalidate(entry.path);
    entry.doc = std::move(doc);
    entry.graph = core::load_linkbase(*entry.doc);
  }
  return hash;
}

void Engine::sync_route_nodes() {
  // Same deal as sync_menu_nodes: before wire_graph the graph has no
  // spec node; wire_graph calls back in once the topology exists.
  if (!build_graph_.contains(kSpecNode)) return;
  if (mode_ == WeaveMode::Tangled) return;  // no routes ever registered

  // Linkbase nodes the family and landmark layers own — everything else
  // of Linkbase kind belongs to (possibly stale) Aot routes.
  std::vector<std::string> family_owned;
  family_owned.push_back(linkbase_node(kStructureLinkbasePath));
  for (const ContextLinkbase& entry : context_linkbases_) {
    family_owned.push_back(linkbase_node(entry.path));
  }
  for (const LandmarkState& entry : landmarks_) {
    family_owned.push_back(linkbase_node(entry.path));
  }
  std::sort(family_owned.begin(), family_owned.end());

  std::vector<std::string> desired_routes;
  std::vector<std::string> desired_lbs;
  desired_routes.reserve(route_programs_.size());
  for (std::size_t i = 0; i < route_programs_.size(); ++i) {
    desired_routes.push_back(route_node(route_programs_[i].name));
    if (route_programs_[i].compile == RouteCompile::Aot) {
      desired_lbs.push_back(linkbase_node(routes_[i].path));
    }
  }
  std::vector<std::string> sorted_routes = desired_routes;
  std::vector<std::string> sorted_lbs = desired_lbs;
  std::sort(sorted_routes.begin(), sorted_routes.end());
  std::sort(sorted_lbs.begin(), sorted_lbs.end());

  std::vector<std::string> existing_routes =
      build_graph_.ids(ProductKind::Route);
  std::vector<std::string> existing_lbs;
  for (std::string& id : build_graph_.ids(ProductKind::Linkbase)) {
    if (!std::binary_search(family_owned.begin(), family_owned.end(), id)) {
      existing_lbs.push_back(std::move(id));
    }
  }
  std::sort(existing_routes.begin(), existing_routes.end());
  std::sort(existing_lbs.begin(), existing_lbs.end());
  if (existing_routes == sorted_routes && existing_lbs == sorted_lbs) {
    return;  // topology already right
  }

  // Planning skips dep ids that no longer resolve, so removal order
  // relative to the arc-table redefinition below does not matter.
  for (const std::string& id : existing_routes) {
    if (!std::binary_search(sorted_routes.begin(), sorted_routes.end(), id)) {
      build_graph_.remove(id);
    }
  }
  for (const std::string& id : existing_lbs) {
    if (!std::binary_search(sorted_lbs.begin(), sorted_lbs.end(), id)) {
      build_graph_.remove(id);
    }
  }

  // Indices shift on erase; closures resolve by name at run time.
  for (std::size_t i = 0; i < route_programs_.size(); ++i) {
    const std::string& name = route_programs_[i].name;
    if (!build_graph_.contains(desired_routes[i])) {
      build_graph_.define(
          desired_routes[i], ProductKind::Route, {}, [this, name] {
            // The program IS the product: its token covers name,
            // canonical expression and compile mode, so a no-op
            // re-registration cuts off right here.
            const std::size_t at = route_index(name);
            return at == kNoRoute ? std::uint64_t{0}
                                  : route_token(route_programs_[at]);
          });
    }
    if (route_programs_[i].compile != RouteCompile::Aot) continue;
    const std::string lb_node = linkbase_node(routes_[i].path);
    if (build_graph_.contains(lb_node)) continue;
    // An Aot route re-expands whenever its program, the structure, or
    // any family linkbase changes — exactly the inputs of expansion.
    std::vector<std::string> deps;
    deps.push_back(desired_routes[i]);
    deps.push_back(linkbase_node(kStructureLinkbasePath));
    for (const ContextLinkbase& entry : context_linkbases_) {
      deps.push_back(linkbase_node(entry.path));
    }
    build_graph_.define(lb_node, ProductKind::Linkbase, std::move(deps),
                        [this, name] {
                          const std::size_t at = route_index(name);
                          return at == kNoRoute
                                     ? std::uint64_t{0}
                                     : rebuild_route_linkbase(at);
                        });
  }

  // Re-point the arc table at the full linkbase set (family + Aot route
  // + landmark): a route expansion change now propagates route ->
  // linkbase -> arc table -> exactly the changed slices. define() keeps
  // the stored hash, so re-pointing alone dirties nothing.
  build_graph_.define(std::string(kArcTableNode), ProductKind::ArcTable,
                      arc_table_deps(),
                      [this] { return rebuild_arc_table(); });
}

void Engine::refresh_route_table() {
  if (route_programs_.empty()) {
    route_table_ = nullptr;
    return;
  }
  auto table = std::make_shared<serve::RouteTable>();
  table->entries.reserve(route_programs_.size());
  for (std::size_t i = 0; i < route_programs_.size(); ++i) {
    table->entries.push_back(
        serve::RouteTable::Entry{route_programs_[i], routes_[i].path});
  }
  // Title export: the snapshot's lazy expansion authors locator titles
  // from this table, pinning its bytes to what the model-backed AOT
  // authoring produces (ids missing here fall back to the id on both
  // sides).
  for (const hypermedia::NavNode& node : nav_->nodes()) {
    table->titles.emplace(node.id(), node.title());
  }
  // Content-equal tables keep pointer identity across epochs — the
  // replication wire's carry-forward probe relies on it.
  if (route_table_ == nullptr || !(*table == *route_table_)) {
    route_table_ = std::move(table);
  }
}

// --- Engine: landmark synthesis -----------------------------------------------

RebuildReport Engine::enable_landmarks(const obs::TraceAggregate& traffic,
                                       LandmarkOptions options) {
  if (mode_ == WeaveMode::Tangled) {
    throw SemanticError(
        "Engine::enable_landmarks: the tangled baseline has no separated "
        "navigation to synthesize landmarks into");
  }
  // Copy the tables: re-ranking, diagnostics and the landmark tokens all
  // read from engine-owned state, not from whatever the caller mutates
  // next.
  landmark_traffic_ = traffic;
  landmark_options_ = options;
  (void)refresh_landmark_states();
  sync_landmark_nodes();
  // Fresh traffic re-ranks every family: dirty each program node; the
  // token cuts off when the tables (and options) are unchanged.
  for (const LandmarkState& entry : landmarks_) {
    build_graph_.mark_dirty(landmark_node(entry.name));
  }
  build_graph_.mark_dirty(std::string(kArcTableNode));
  return run_or_defer();
}

RebuildReport Engine::disable_landmarks() {
  if (!landmark_options_.has_value()) return RebuildReport{};  // idempotent
  landmark_options_.reset();
  (void)refresh_landmark_states();  // desired set is now empty: retire all
  landmark_traffic_ = obs::TraceAggregate{};
  sync_landmark_nodes();
  // The arc table re-merges without the landmark arcs (the retired
  // linkbase nodes can no longer propagate into it).
  build_graph_.mark_dirty(std::string(kArcTableNode));
  return run_or_defer();
}

std::vector<std::string> Engine::landmark_families() const {
  std::vector<std::string> names;
  names.reserve(landmarks_.size());
  for (const LandmarkState& entry : landmarks_) names.push_back(entry.name);
  return names;
}

hypermedia::ContextFamily Engine::landmark_family(
    std::string_view name) const {
  const std::size_t index = landmark_index(name);
  if (index == kNoRoute) {
    throw ResolutionError("Engine::landmark_family: unknown landmark '" +
                          std::string(name) + "'");
  }
  return landmark_context_family(
      landmarks_[index].name,
      score_landmarks(landmark_traffic_, route_input_arcs(),
                      *landmark_options_, landmarks_[index].profile));
}

std::vector<LandmarkScore> Engine::landmark_picks(
    std::string_view name) const {
  const std::size_t index = landmark_index(name);
  if (index == kNoRoute) {
    throw ResolutionError("Engine::landmark_picks: unknown landmark '" +
                          std::string(name) + "'");
  }
  return score_landmarks(landmark_traffic_, route_input_arcs(),
                         *landmark_options_, landmarks_[index].profile);
}

std::size_t Engine::landmark_index(std::string_view name) const {
  for (std::size_t i = 0; i < landmarks_.size(); ++i) {
    if (landmarks_[i].name == name) return i;
  }
  return kNoRoute;
}

bool Engine::refresh_landmark_states() {
  // The desired family set, base first then per-profile in registration
  // order — the landmark_families() contract.
  std::vector<std::pair<std::string, std::string>> desired;  // name, profile
  if (landmark_options_.has_value()) {
    desired.emplace_back(std::string(kLandmarkFamily), "");
    if (landmark_options_->per_profile) {
      for (const Profile& profile : profiles_) {
        if (profile.name.find(':') != std::string::npos) {
          throw SemanticError(
              "Engine::enable_landmarks: profile '" + profile.name +
              "' contains ':' — per-profile landmark families tag their "
              "arcs '<family>:landmark' and cannot embed one");
        }
        desired.emplace_back(
            std::string(kLandmarkFamily) + "-" + profile.name, profile.name);
      }
    }
  }

  // Collision guards, both namespaces routes already police.
  for (const auto& [name, profile] : desired) {
    const bool family_collision = std::any_of(
        families_.begin(), families_.end(),
        [&, n = name](const hypermedia::ContextFamily& f) {
          return f.name() == n;
        });
    if (family_collision || route_index(name) != kNoRoute) {
      throw SemanticError("Engine::enable_landmarks: '" + name +
                          "' already names a context family or route — "
                          "landmarks share the profile namespace");
    }
    const std::string path = site::context_linkbase_path(name);
    for (const ContextLinkbase& entry : context_linkbases_) {
      if (entry.path == path) {
        throw SemanticError("Engine::enable_landmarks: '" + name +
                            "' would author '" + path + "', which family '" +
                            entry.family->name() + "' already owns");
      }
    }
    for (const RouteState& entry : routes_) {
      if (entry.path == path) {
        throw SemanticError("Engine::enable_landmarks: '" + name +
                            "' would author '" + path +
                            "', which a registered route already owns");
      }
    }
  }

  // Reconcile landmarks_ in desired order, keeping authored documents of
  // surviving states (their linkbases only re-author when the graph says
  // so) and retiring artifacts of dropped ones.
  const std::vector<std::string> previous = landmark_families();
  std::vector<LandmarkState> next;
  std::vector<bool> kept(landmarks_.size(), false);
  next.reserve(desired.size());
  bool changed = false;
  for (const auto& [name, profile] : desired) {
    const std::size_t at = landmark_index(name);
    if (at != kNoRoute) {
      kept[at] = true;
      next.push_back(std::move(landmarks_[at]));
      next.back().name = name;  // moved-from sources may retain SSO text
      next.back().profile = profile;
    } else {
      next.push_back(LandmarkState{
          name, profile, site::context_linkbase_path(name), nullptr, {}});
      changed = true;
    }
  }
  for (std::size_t i = 0; i < landmarks_.size(); ++i) {
    if (kept[i]) continue;
    site_.remove(landmarks_[i].path);
    server_->invalidate(landmarks_[i].path);
    changed = true;
  }
  landmarks_ = std::move(next);

  // Attach the new families to (and detach dropped ones from) the
  // registered profiles: the base family for everyone, each per-profile
  // family for its own audience only.
  for (Profile& profile : profiles_) {
    auto drop = std::remove_if(
        profile.families.begin(), profile.families.end(),
        [&](const std::string& name) {
          return std::find(previous.begin(), previous.end(), name) !=
                     previous.end() &&
                 landmark_index(name) == kNoRoute;
        });
    profile.families.erase(drop, profile.families.end());
    auto attach = [&](const std::string& name) {
      if (std::find(profile.families.begin(), profile.families.end(), name) ==
          profile.families.end()) {
        profile.families.push_back(name);
      }
    };
    if (landmark_options_.has_value()) {
      attach(std::string(kLandmarkFamily));
      if (landmark_options_->per_profile) {
        attach(std::string(kLandmarkFamily) + "-" + profile.name);
      }
    }
  }
  return changed;
}

std::uint64_t Engine::rebuild_landmark_linkbase(std::size_t index) {
  LandmarkState& entry = landmarks_[index];
  const hypermedia::ContextFamily family = landmark_context_family(
      entry.name, score_landmarks(landmark_traffic_, route_input_arcs(),
                                  *landmark_options_, entry.profile));
  site::SiteBuildOptions site_options;
  site_options.site_base = site_base_;
  core::LinkbaseOptions lb = site::separated_linkbase_options(site_options);
  lb.base_uri = site_base_ + entry.path;
  auto doc = core::build_context_linkbase(family, *nav_, lb);
  std::string text = xml::write(*doc, {.pretty = true});
  const std::string* current = site_.get(entry.path);
  const bool changed = current == nullptr || *current != text;
  const std::uint64_t hash = hash_bytes(text);
  if (changed) {
    site_.put(entry.path, std::move(text));
    server_->invalidate(entry.path);
    entry.doc = std::move(doc);
    entry.graph = core::load_linkbase(*entry.doc);
  }
  return hash;
}

void Engine::sync_landmark_nodes() {
  // Same deal as sync_route_nodes: before wire_graph the graph has no
  // spec node; wire_graph calls back in once the topology exists.
  if (!build_graph_.contains(kSpecNode)) return;
  if (mode_ == WeaveMode::Tangled) return;  // never enabled

  // Linkbase nodes the family and route layers own — whatever else of
  // Linkbase kind remains belongs to (possibly stale) landmarks.
  std::vector<std::string> other_owned;
  other_owned.push_back(linkbase_node(kStructureLinkbasePath));
  for (const ContextLinkbase& entry : context_linkbases_) {
    other_owned.push_back(linkbase_node(entry.path));
  }
  for (std::size_t i = 0; i < route_programs_.size(); ++i) {
    if (route_programs_[i].compile == RouteCompile::Aot) {
      other_owned.push_back(linkbase_node(routes_[i].path));
    }
  }
  std::sort(other_owned.begin(), other_owned.end());

  std::vector<std::string> desired_marks;
  std::vector<std::string> desired_lbs;
  desired_marks.reserve(landmarks_.size());
  desired_lbs.reserve(landmarks_.size());
  for (const LandmarkState& entry : landmarks_) {
    desired_marks.push_back(landmark_node(entry.name));
    desired_lbs.push_back(linkbase_node(entry.path));
  }
  std::vector<std::string> sorted_marks = desired_marks;
  std::vector<std::string> sorted_lbs = desired_lbs;
  std::sort(sorted_marks.begin(), sorted_marks.end());
  std::sort(sorted_lbs.begin(), sorted_lbs.end());

  std::vector<std::string> existing_marks =
      build_graph_.ids(ProductKind::Landmark);
  std::vector<std::string> existing_lbs;
  for (std::string& id : build_graph_.ids(ProductKind::Linkbase)) {
    if (!std::binary_search(other_owned.begin(), other_owned.end(), id)) {
      existing_lbs.push_back(std::move(id));
    }
  }
  std::sort(existing_marks.begin(), existing_marks.end());
  std::sort(existing_lbs.begin(), existing_lbs.end());
  if (existing_marks == sorted_marks && existing_lbs == sorted_lbs) {
    return;  // topology already right
  }

  for (const std::string& id : existing_marks) {
    if (!std::binary_search(sorted_marks.begin(), sorted_marks.end(), id)) {
      build_graph_.remove(id);
    }
  }
  for (const std::string& id : existing_lbs) {
    if (!std::binary_search(sorted_lbs.begin(), sorted_lbs.end(), id)) {
      build_graph_.remove(id);
    }
  }

  // Indices shift on reconciliation; closures resolve by name at run
  // time, exactly like route nodes.
  for (std::size_t i = 0; i < landmarks_.size(); ++i) {
    const std::string& name = landmarks_[i].name;
    if (!build_graph_.contains(desired_marks[i])) {
      build_graph_.define(
          desired_marks[i], ProductKind::Landmark, {}, [this, name] {
            // The program IS the product: name, options and the traffic
            // tables it ranks from — re-feeding identical traffic cuts
            // off right here.
            const std::size_t at = landmark_index(name);
            return at == kNoRoute
                       ? std::uint64_t{0}
                       : landmark_token(name, *landmark_options_,
                                        landmark_traffic_,
                                        landmarks_[at].profile);
          });
    }
    const std::string lb_node = linkbase_node(landmarks_[i].path);
    if (build_graph_.contains(lb_node)) continue;
    // A landmark re-ranks whenever its program (traffic/options), the
    // structure, or any family linkbase changes — the inputs of scoring.
    std::vector<std::string> deps;
    deps.push_back(desired_marks[i]);
    deps.push_back(linkbase_node(kStructureLinkbasePath));
    for (const ContextLinkbase& entry : context_linkbases_) {
      deps.push_back(linkbase_node(entry.path));
    }
    build_graph_.define(lb_node, ProductKind::Linkbase, std::move(deps),
                        [this, name] {
                          const std::size_t at = landmark_index(name);
                          return at == kNoRoute
                                     ? std::uint64_t{0}
                                     : rebuild_landmark_linkbase(at);
                        });
  }

  // Re-point the arc table at the full linkbase set; define() keeps the
  // stored hash, so re-pointing alone dirties nothing.
  build_graph_.define(std::string(kArcTableNode), ProductKind::ArcTable,
                      arc_table_deps(),
                      [this] { return rebuild_arc_table(); });
}

std::vector<std::string> Engine::arc_table_deps() const {
  std::vector<std::string> deps;
  deps.reserve(1 + context_linkbases_.size() + routes_.size() +
               landmarks_.size());
  deps.push_back(linkbase_node(kStructureLinkbasePath));
  for (const ContextLinkbase& entry : context_linkbases_) {
    deps.push_back(linkbase_node(entry.path));
  }
  for (std::size_t i = 0; i < route_programs_.size(); ++i) {
    if (route_programs_[i].compile == RouteCompile::Aot) {
      deps.push_back(linkbase_node(routes_[i].path));
    }
  }
  for (const LandmarkState& entry : landmarks_) {
    deps.push_back(linkbase_node(entry.path));
  }
  return deps;
}

RebuildReport Engine::set_access_structure(
    std::unique_ptr<hypermedia::AccessStructure> structure) {
  if (structure == nullptr) {
    throw SemanticError("Engine::set_access_structure: null structure");
  }
  // Capture the Menu sub-structure shape BEFORE materializing flattens
  // it away — this is where a constructed Menu becomes mutable.
  adopt_structure_shape(*structure);
  structure_ = hypermedia::MaterializedStructure::snapshot(*structure);
  sync_menu_nodes();
  return run_graph_after_mutation();
}

RebuildReport Engine::set_access_structure(
    hypermedia::AccessStructureKind kind) {
  return regenerate_structure(kind, structure_->members());
}

RebuildReport Engine::add_node(std::string_view node_id) {
  const hypermedia::NavNode* node = nav_->node(node_id);
  if (node == nullptr) {
    throw ResolutionError("Engine::add_node: unknown node id '" +
                          std::string(node_id) + "'");
  }
  if (structure_->kind() == hypermedia::AccessStructureKind::Menu &&
      !menu_subs_.empty()) {
    // Sub-aware path: the member joins the LAST sub (a Menu's own member
    // list is derived — the sub entries — so that is where leaf members
    // actually live).
    for (const MenuSubSpec& sub : menu_subs_) {
      for (const auto& m : sub.members) {
        if (m.node_id == node_id) {
          throw SemanticError("Engine::add_node: '" + std::string(node_id) +
                              "' is already a member of sub-structure '" +
                              sub.name + "'");
        }
      }
    }
    menu_subs_.back().members.push_back(
        hypermedia::Member{std::string(node_id), node->title()});
    return commit_menu_subs(menu_subs_.size() - 1);
  }
  std::vector<hypermedia::Member> members = structure_->members();
  for (const auto& m : members) {
    if (m.node_id == node_id) {
      throw SemanticError("Engine::add_node: '" + std::string(node_id) +
                          "' is already a member");
    }
  }
  members.push_back(hypermedia::Member{std::string(node_id), node->title()});
  return regenerate_structure(structure_->kind(), std::move(members));
}

RebuildReport Engine::retitle_node(std::string_view node_id,
                                   std::string_view title) {
  if (structure_->kind() == hypermedia::AccessStructureKind::Menu &&
      !menu_subs_.empty()) {
    // Sub-aware path: retitle the member inside whichever sub holds it.
    for (std::size_t i = 0; i < menu_subs_.size(); ++i) {
      auto member = std::find_if(
          menu_subs_[i].members.begin(), menu_subs_[i].members.end(),
          [&](const auto& m) { return m.node_id == node_id; });
      if (member != menu_subs_[i].members.end()) {
        member->title = std::string(title);
        return commit_menu_subs(i);
      }
    }
    throw ResolutionError("Engine::retitle_node: '" + std::string(node_id) +
                          "' is not a member of any Menu sub-structure");
  }
  std::vector<hypermedia::Member> members = structure_->members();
  auto it = std::find_if(members.begin(), members.end(), [&](const auto& m) {
    return m.node_id == node_id;
  });
  if (it == members.end()) {
    throw ResolutionError("Engine::retitle_node: '" + std::string(node_id) +
                          "' is not a member of the access structure");
  }
  it->title = std::string(title);
  return regenerate_structure(structure_->kind(), std::move(members));
}

RebuildReport Engine::replace_arc(std::size_t index,
                                  hypermedia::AccessArc arc) {
  materialized_spec().replace_arc(index, std::move(arc));
  return run_graph_after_mutation();
}

hypermedia::MaterializedStructure& Engine::materialized_spec() {
  auto* spec =
      dynamic_cast<hypermedia::MaterializedStructure*>(structure_.get());
  if (spec == nullptr) {
    auto snapshot = hypermedia::MaterializedStructure::snapshot(*structure_);
    spec = snapshot.get();
    structure_ = std::move(snapshot);
  }
  return *spec;
}

RebuildReport Engine::regenerate_structure(
    hypermedia::AccessStructureKind kind,
    std::vector<hypermedia::Member> members) {
  if (kind == hypermedia::AccessStructureKind::Menu) {
    if (menu_subs_.empty()) {
      // A Menu the engine cannot see into (nested Menus, a
      // pre-materialized snapshot, or a current structure that never was
      // a Menu) has no sub specs to regenerate from — refuse without
      // moving any state, exactly like the pre-sub-capture guard.
      throw SemanticError(
          "Engine: Menu-kind regeneration needs captured sub-structures; "
          "this structure is opaque (nested Menu, materialized snapshot, "
          "or not a Menu at all) — pass a constructed Menu to "
          "set_access_structure(structure), or edit arcs individually "
          "with replace_arc");
    }
    // Refresh the Menu's derived arcs from the captured subs (the Menu
    // analogue of kind-regeneration: discards replace_arc overlays).
    structure_ = hypermedia::MaterializedStructure::snapshot(*regenerate_menu());
    return run_graph_after_mutation();
  }
  auto regenerated = hypermedia::make_access_structure(
      kind, structure_->name(), std::move(members));
  // The structure is no longer a Menu: drop the captured subs and their
  // graph nodes.
  if (!menu_subs_.empty()) {
    menu_subs_.clear();
    sync_menu_nodes();
  }
  structure_ = hypermedia::MaterializedStructure::snapshot(*regenerated);
  return run_graph_after_mutation();
}

std::unique_ptr<hypermedia::AccessStructure> Engine::regenerate_menu() const {
  std::vector<std::unique_ptr<hypermedia::AccessStructure>> subs;
  subs.reserve(menu_subs_.size());
  for (const MenuSubSpec& spec : menu_subs_) {
    if (spec.kind == hypermedia::AccessStructureKind::GuidedTour) {
      // The factory cannot express circularity; build tours directly.
      subs.push_back(std::make_unique<hypermedia::GuidedTour>(
          spec.name, spec.members, spec.circular));
    } else {
      subs.push_back(hypermedia::make_access_structure(spec.kind, spec.name,
                                                       spec.members));
    }
  }
  return std::make_unique<hypermedia::Menu>(structure_->name(),
                                            std::move(subs));
}

void Engine::adopt_structure_shape(
    const hypermedia::AccessStructure& structure) {
  menu_subs_.clear();
  if (structure.kind() != hypermedia::AccessStructureKind::Menu) return;
  const auto* menu = dynamic_cast<const hypermedia::Menu*>(&structure);
  if (menu == nullptr) return;  // a materialized Menu snapshot: opaque
  std::vector<MenuSubSpec> subs;
  subs.reserve(menu->sub_structures().size());
  for (const auto& sub : menu->sub_structures()) {
    if (sub->kind() == hypermedia::AccessStructureKind::Menu) {
      return;  // nested Menus stay opaque (menu_subs_ left empty)
    }
    MenuSubSpec spec{sub->kind(), sub->name(), sub->members(), false};
    if (const auto* tour =
            dynamic_cast<const hypermedia::GuidedTour*>(sub.get())) {
      spec.circular = tour->circular();
    }
    subs.push_back(std::move(spec));
  }
  menu_subs_ = std::move(subs);
}

void Engine::sync_menu_nodes() {
  // The graph may not be wired yet (adoption happens before wire_graph
  // during serve()); wire_graph calls back in once the spec node exists.
  if (!build_graph_.contains(kSpecNode)) return;
  std::vector<std::string> existing;
  for (const std::string& id : build_graph_.ids(ProductKind::Source)) {
    if (id.rfind("menusub:", 0) == 0) existing.push_back(id);
  }
  std::vector<std::string> desired;
  desired.reserve(menu_subs_.size());
  for (std::size_t i = 0; i < menu_subs_.size(); ++i) {
    desired.push_back(menu_sub_node(i));
  }
  std::vector<std::string> sorted_desired = desired;
  std::sort(sorted_desired.begin(), sorted_desired.end());
  std::sort(existing.begin(), existing.end());
  if (existing == sorted_desired) return;  // topology already right

  for (const std::string& id : existing) {
    if (!std::binary_search(sorted_desired.begin(), sorted_desired.end(),
                            id)) {
      build_graph_.remove(id);
    }
  }
  for (std::size_t i = 0; i < menu_subs_.size(); ++i) {
    if (build_graph_.contains(desired[i])) continue;
    build_graph_.define(desired[i], ProductKind::Source, {}, [this, i] {
      // The sub spec IS the product: hash its declarative state so a
      // no-op edit (retitle to the same title) cuts off right here.
      if (i >= menu_subs_.size()) return std::uint64_t{0};
      const MenuSubSpec& spec = menu_subs_[i];
      std::uint64_t h = hash_bytes(spec.name);
      h = hash_combine(h, static_cast<std::uint64_t>(spec.kind));
      h = hash_combine(h, spec.circular ? 1 : 0);
      for (const auto& member : spec.members) {
        h = hash_str(h, member.node_id);
        h = hash_str(h, member.title);
      }
      return h;
    });
  }
  // Re-point the spec node at the sub inputs: a sub edit now propagates
  // sub → spec → linkbase → arc table → exactly the changed slices.
  build_graph_.define(std::string(kSpecNode), ProductKind::Source,
                      std::move(desired), [this] { return rebuild_spec(); });
}

RebuildReport Engine::commit_menu_subs(std::size_t sub_index) {
  structure_ = hypermedia::MaterializedStructure::snapshot(*regenerate_menu());
  build_graph_.mark_dirty(menu_sub_node(sub_index));
  return run_or_defer();
}

// --- Engine: build-graph wiring -----------------------------------------------

const std::vector<core::AnchorProvenance>* Engine::provenance_for(
    std::string_view page_id) const {
  auto it = provenance_.find(page_id);
  return it == provenance_.end() ? nullptr : &it->second;
}

std::vector<std::string> Engine::desired_page_ids() const {
  std::vector<std::string> out;
  out.reserve(structure_->members().size() + 1);
  for (const auto& member : structure_->members()) {
    if (nav_->node(member.node_id) != nullptr) out.push_back(member.node_id);
  }
  out.push_back(structure_->page_id());
  return out;
}

std::uint64_t Engine::put_if_changed(const std::string& path,
                                     std::string text) {
  const std::uint64_t hash = hash_bytes(text);
  const std::string* current = site_.get(path);
  if (current == nullptr || *current != text) {
    site_.put(path, std::move(text));
    server_->invalidate(path);
  }
  return hash;
}

std::uint64_t Engine::rebuild_spec() {
  std::uint64_t h = hash_bytes(structure_->name());
  h = hash_combine(h, static_cast<std::uint64_t>(structure_->kind()));
  for (const auto& member : structure_->members()) {
    h = hash_str(h, member.node_id);
    h = hash_str(h, member.title);
  }
  for (const auto& arc : structure_->arcs()) {
    h = hash_str(h, arc.from);
    h = hash_str(h, arc.to);
    h = hash_str(h, arc.role);
    h = hash_str(h, arc.title);
  }
  if (mode_ == WeaveMode::Tangled) {
    // One renderer per spec revision; every tangled page depends on it
    // (which is exactly the paper's complaint about tangling).
    tangled_renderer_ =
        std::make_unique<core::TangledRenderer>(*nav_, *structure_);
    sync_pages();
  }
  return h;
}

std::uint64_t Engine::rebuild_structure_linkbase() {
  site::SiteBuildOptions site_options;
  site_options.site_base = site_base_;
  auto doc =
      core::build_linkbase(*structure_,
                           site::separated_linkbase_options(site_options));
  std::string text = xml::write(*doc, {.pretty = true});
  const std::string* current = site_.get(kStructureLinkbasePath);
  const bool changed = current == nullptr || *current != text;
  const std::uint64_t hash = hash_bytes(text);
  if (changed) {
    site_.put(std::string(kStructureLinkbasePath), std::move(text));
    server_->invalidate(kStructureLinkbasePath);
    // The old document must die only after graph_ stops pointing into it;
    // nothing dereferences graph_ between here and the arc-table rebuild
    // this change propagates into.
    structure_linkbase_doc_ = std::move(doc);
  }
  return hash;
}

std::uint64_t Engine::rebuild_context_linkbase(std::size_t index) {
  ContextLinkbase& entry = context_linkbases_[index];
  site::SiteBuildOptions site_options;
  site_options.site_base = site_base_;
  core::LinkbaseOptions lb = site::separated_linkbase_options(site_options);
  lb.base_uri = site_base_ + entry.path;
  auto doc = core::build_context_linkbase(*entry.family, *nav_, lb);
  std::string text = xml::write(*doc, {.pretty = true});
  const std::string* current = site_.get(entry.path);
  const bool changed = current == nullptr || *current != text;
  const std::uint64_t hash = hash_bytes(text);
  if (changed) {
    site_.put(entry.path, std::move(text));
    server_->invalidate(entry.path);
    entry.doc = std::move(doc);
    entry.graph = core::load_linkbase(*entry.doc);
  }
  return hash;
}

std::uint64_t Engine::rebuild_arc_table() {
  // Merge the browser-facing traversal graph from the cached documents.
  xlink::TraversalGraph structure_graph =
      xlink::TraversalGraph::from_linkbase(*structure_linkbase_doc_);
  xlink::TraversalGraph merged = structure_graph;  // copy; both are kept
  for (const ContextLinkbase& entry : context_linkbases_) {
    merged.merge(entry.graph);  // cached per-family graph, copied in
  }
  for (const RouteState& entry : routes_) {
    if (entry.doc != nullptr) merged.merge(entry.graph);  // Aot routes only
  }
  for (const LandmarkState& entry : landmarks_) {
    if (entry.doc != nullptr) merged.merge(entry.graph);
  }
  graph_ = std::move(merged);

  // Materialize the combined arc set with provenance and hand it to the
  // weaver as the (sole) navigation aspect. Aot route linkbases join
  // after the families — their arcs are context-tagged ('<name>:route'),
  // so like tour arcs they land in overlay slices, never in stored pages.
  std::vector<core::SourcedGraph> sourced;
  sourced.reserve(context_linkbases_.size() + routes_.size() +
                  landmarks_.size() + 1);
  sourced.push_back(
      core::SourcedGraph{std::string(kStructureLinkbasePath), &structure_graph});
  for (const ContextLinkbase& entry : context_linkbases_) {
    sourced.push_back(core::SourcedGraph{entry.path, &entry.graph});
  }
  for (const RouteState& entry : routes_) {
    if (entry.doc != nullptr) {
      sourced.push_back(core::SourcedGraph{entry.path, &entry.graph});
    }
  }
  // Landmark arcs join last: context-tagged ('<name>:landmark'), so like
  // tour and route arcs they land in overlay slices, never stored pages.
  for (const LandmarkState& entry : landmarks_) {
    if (entry.doc != nullptr) {
      sourced.push_back(core::SourcedGraph{entry.path, &entry.graph});
    }
  }
  std::vector<core::NavArc> arcs = core::combined_nav_arcs(sourced);

  core::NavigationAspectOptions aspect_options;
  // A sink, not a pointer: each weave lane logs into its own thread-local
  // scratch, so parallel page compositions never share a provenance
  // vector (the aspect itself is shared across weaver clones).
  aspect_options.provenance_sink = [] { return &t_weave_provenance; };
  weaver_.replace_aspect(
      core::NavigationAspect::from_contextual_arcs(arcs, aspect_options));

  // Publish per-page slice hashes: the arcs a *stored* page can actually
  // weave are the context-free ones leaving it (contextual tour arcs are
  // only woven into on-demand compositions carrying their context tag).
  // Alongside, per-(linkbase, page) slice hashes over ALL arcs — tour
  // arcs included, since overlays render them — for the serve-side
  // overlay validity tokens.
  slice_hashes_.clear();
  auto overlay_hashes = std::make_shared<serve::SourceSliceHashes>();
  std::uint64_t table_hash = 0xa5a5a5a5a5a5a5a5ull;
  for (const core::NavArc& arc : arcs) {
    std::uint64_t a = hash_bytes(arc.from);
    a = hash_str(a, arc.to);
    a = hash_str(a, arc.role);
    a = hash_str(a, arc.title);
    a = hash_str(a, arc.context);
    table_hash = hash_combine(table_hash, a);
    if (arc.context.empty()) {
      auto [it, inserted] = slice_hashes_.emplace(arc.from, 0xbeefull);
      it->second = hash_combine(it->second, a);
    }
    auto [slice, first] = (*overlay_hashes)[arc.source].emplace(
        core::default_href_for(arc.from), serve::kEmptySliceHash);
    slice->second = serve::combine_arc_slice(slice->second, arc);
  }
  overlay_slice_hashes_ = std::move(overlay_hashes);
  // Publish the combined set for snapshots (shared, never mutated: the
  // next rebuild swaps in a fresh vector, it does not touch this one).
  combined_arcs_ =
      std::make_shared<const std::vector<core::NavArc>>(std::move(arcs));
  sync_pages();
  return table_hash;
}

void Engine::sync_pages() {
  std::vector<std::string> desired = desired_page_ids();
  std::vector<std::string> sorted_desired = desired;
  std::sort(sorted_desired.begin(), sorted_desired.end());

  // Retire pages whose member vanished: graph nodes, site artifact,
  // cached responses, provenance.
  for (const std::string& id : page_ids_) {
    if (std::binary_search(sorted_desired.begin(), sorted_desired.end(), id)) {
      continue;
    }
    build_graph_.remove(page_node(id));
    build_graph_.remove(slice_node(id));
    const std::string path = core::default_href_for(id);
    site_.remove(path);
    server_->invalidate(path);
    provenance_.erase(id);
  }

  // Admit new pages (a define() on an existing node would needlessly
  // dirty it, so only genuinely new ids are defined).
  const bool tangled = mode_ == WeaveMode::Tangled;
  for (const std::string& id : desired) {
    if (build_graph_.contains(page_node(id))) continue;
    if (tangled) {
      build_graph_.define(page_node(id), ProductKind::Page,
                          {std::string(kSpecNode)},
                          [this, id] { return rebuild_tangled_page(id); });
    } else {
      build_graph_.define(slice_node(id), ProductKind::ArcSlice,
                          {std::string(kArcTableNode)}, [this, id] {
                            auto it = slice_hashes_.find(id);
                            return it == slice_hashes_.end() ? 0 : it->second;
                          });
      build_graph_.define_parallel(
          page_node(id), ProductKind::Page, {slice_node(id)},
          [this, id] { return weave_page_outcome(id); });
    }
  }

  if (page_ids_ != desired) {
    page_ids_ = std::move(desired);
    // The served entry set changed shape: re-point the coherence node at
    // the current page set.
    std::vector<std::string> deps;
    deps.reserve(page_ids_.size());
    for (const std::string& id : page_ids_) deps.push_back(page_node(id));
    build_graph_.define(
        std::string(kServerNode), ProductKind::Server, std::move(deps),
        [this] {
          std::uint64_t h = 0x5e77e0ull;
          for (const std::string& id : page_ids_) {
            h = hash_combine(h, build_graph_.hash_of(page_node(id)));
          }
          return h;
        });
  }
}

BuildGraph::ParallelOutcome Engine::weave_page_outcome(
    const std::string& page_id) {
  // COMPUTE PHASE — runs on a pool lane during parallel waves. Reads
  // structure_/nav_/weaver aspects (all frozen for the duration of a
  // graph run), writes only locals and the thread-local provenance
  // scratch. Everything shared-mutable (site_, server_, provenance_)
  // moves into the commit closure, which the coordinator runs serially
  // in plan order — so output is byte-identical for any worker count.
  t_weave_provenance.clear();
  std::string text;
  bool retired = false;
  {
    // Pool lanes weave through a private registry clone (the weaver's
    // memo cache and stats are not thread-safe); the serial path keeps
    // using the engine weaver so its stats/cache accumulate exactly as
    // they always have.
    aop::Weaver lane_weaver;
    aop::Weaver* weaver = &weaver_;
    if (parallel_wave_active_) {
      lane_weaver = weaver_.clone_registry();
      weaver = &lane_weaver;
    }
    core::SeparatedComposer composer(*weaver);
    if (page_id == structure_->page_id()) {
      text = composer.compose_structure_page(page_id, structure_->name());
    } else {
      const hypermedia::NavNode* node = nav_->node(page_id);
      if (node == nullptr) {
        retired = true;  // retired between sync and rebuild
      } else {
        text = composer.compose_node_page(*node);
      }
    }
  }
  BuildGraph::ParallelOutcome outcome;
  if (retired) {
    t_weave_provenance.clear();
    return outcome;  // hash 0, no commit — same as the old serial path
  }
  outcome.hash = hash_bytes(text);
  outcome.commit = [this, page_id, text = std::move(text),
                    provenance = std::move(t_weave_provenance)]() mutable {
    provenance_[page_id] = std::move(provenance);
    (void)put_if_changed(core::default_href_for(page_id), std::move(text));
  };
  t_weave_provenance.clear();
  return outcome;
}

std::uint64_t Engine::rebuild_tangled_page(const std::string& page_id) {
  std::string text;
  if (page_id == structure_->page_id()) {
    text = tangled_renderer_->render_structure_page();
  } else {
    const hypermedia::NavNode* node = nav_->node(page_id);
    if (node == nullptr) return 0;
    text = tangled_renderer_->render_node_page(*node);
  }
  return put_if_changed(core::default_href_for(page_id), std::move(text));
}

void Engine::wire_graph() {
  build_graph_.define(std::string(kSpecNode), ProductKind::Source, {},
                      [this] { return rebuild_spec(); });
  // If a constructed Menu was adopted, its sub specs become Source
  // inputs feeding the spec node.
  sync_menu_nodes();
  if (mode_ == WeaveMode::Tangled) {
    // Tangled has no linkbase layer: every page hangs off the spec, so
    // any navigation edit re-renders the whole site — the asymmetry the
    // paper measures, reproduced in the report counters.
    return;
  }
  std::vector<std::string> linkbase_nodes;
  build_graph_.define(linkbase_node(kStructureLinkbasePath),
                      ProductKind::Linkbase,
                      {std::string(kSpecNode)},
                      [this] { return rebuild_structure_linkbase(); });
  linkbase_nodes.push_back(linkbase_node(kStructureLinkbasePath));
  for (std::size_t i = 0; i < context_linkbases_.size(); ++i) {
    const std::string node = linkbase_node(context_linkbases_[i].path);
    build_graph_.define(node, ProductKind::Linkbase, {},
                        [this, i] { return rebuild_context_linkbase(i); });
    linkbase_nodes.push_back(node);
  }
  build_graph_.define(std::string(kArcTableNode), ProductKind::ArcTable,
                      std::move(linkbase_nodes),
                      [this] { return rebuild_arc_table(); });
  // Routes and landmarks registered before a re-wire (none on first
  // serve) re-join the topology here, after the arc-table node they
  // feed exists.
  sync_route_nodes();
  sync_landmark_nodes();
}

// --- SitePipeline ------------------------------------------------------------

SitePipeline& SitePipeline::conceptual(
    std::unique_ptr<museum::MuseumWorld> world) {
  owned_world_ = std::move(world);
  world_ = owned_world_.get();
  nav_.reset();  // a model derived from a previous world is invalid now
  return *this;
}

SitePipeline& SitePipeline::conceptual(const museum::MuseumWorld& world) {
  owned_world_.reset();
  world_ = &world;
  nav_.reset();
  return *this;
}

SitePipeline& SitePipeline::conceptual(const museum::SyntheticSpec& spec) {
  return conceptual(museum::MuseumWorld::synthetic(spec));
}

SitePipeline& SitePipeline::paper_museum() {
  return conceptual(museum::MuseumWorld::paper_instance());
}

SitePipeline& SitePipeline::schema() {
  if (world_ == nullptr) {
    throw SemanticError("SitePipeline::schema(): no conceptual model yet — "
                        "call conceptual() first");
  }
  nav_ = world_->derive_navigation();
  return *this;
}

SitePipeline& SitePipeline::schema(hypermedia::NavigationalModel model) {
  nav_ = std::move(model);
  return *this;
}

SitePipeline& SitePipeline::access(hypermedia::AccessStructureKind kind) {
  kind_ = kind;
  scope_painter_.reset();
  structure_.reset();
  return *this;
}

SitePipeline& SitePipeline::access(hypermedia::AccessStructureKind kind,
                                   std::string_view painter_id) {
  kind_ = kind;
  scope_painter_ = std::string(painter_id);
  structure_.reset();
  return *this;
}

SitePipeline& SitePipeline::structure(
    std::unique_ptr<hypermedia::AccessStructure> structure) {
  structure_ = std::move(structure);
  kind_.reset();
  scope_painter_.reset();
  return *this;
}

SitePipeline& SitePipeline::contexts(std::vector<std::string> family_names) {
  family_names_ = std::move(family_names);
  return *this;
}

SitePipeline& SitePipeline::weave() {
  mode_ = WeaveMode::Separated;
  return *this;
}

SitePipeline& SitePipeline::tangled() {
  mode_ = WeaveMode::Tangled;
  return *this;
}

SitePipeline& SitePipeline::weave_workers(std::size_t lanes) {
  weave_lanes_ = lanes;
  return *this;
}

SitePipeline::Materialized SitePipeline::materialize() {
  if (world_ == nullptr) {
    throw SemanticError(
        "SitePipeline: no conceptual model — call conceptual(), "
        "paper_museum() or conceptual(SyntheticSpec) first");
  }
  Materialized m;
  m.owned_world = std::move(owned_world_);
  m.world = world_;
  m.nav = nav_ ? std::move(nav_) : std::optional<hypermedia::NavigationalModel>(
                                       world_->derive_navigation());
  // The pipeline is consumed: clear the moved-from state so a second
  // terminal call throws the no-conceptual-model error above instead of
  // dereferencing a dead world.
  world_ = nullptr;
  nav_.reset();

  if (structure_ != nullptr) {
    m.structure = std::move(structure_);
  } else if (kind_) {
    m.structure = scope_painter_
                      ? m.world->paintings_structure(*kind_, *m.nav,
                                                     *scope_painter_)
                      : m.world->all_paintings_structure(*kind_, *m.nav);
  } else {
    throw SemanticError(
        "SitePipeline: no access structure — call access(kind[, painter]) "
        "or structure(...)");
  }

  for (const std::string& name : family_names_) {
    if (name == "ByAuthor") {
      m.families.push_back(m.world->by_author(*m.nav));
    } else if (name == "ByMovement") {
      m.families.push_back(m.world->by_movement(*m.nav));
    } else {
      throw SemanticError("SitePipeline: unknown context family '" + name +
                          "' (known: ByAuthor, ByMovement)");
    }
  }
  return m;
}

namespace {

/// The server slash-terminates its base; the site builders concatenate
/// theirs — normalize up front so linkbase URIs and served URIs agree.
std::string with_trailing_slash(std::string_view base) {
  std::string out(base);
  if (!out.empty() && out.back() != '/') out += '/';
  return out;
}

}  // namespace

std::unique_ptr<Engine> SitePipeline::serve(std::string_view base) {
  Materialized m = materialize();

  // The constructor is private; no make_unique.
  std::unique_ptr<Engine> engine(new Engine());
  engine->owned_world_ = std::move(m.owned_world);
  engine->world_ = m.world;
  engine->nav_ = std::move(m.nav);
  engine->structure_ = std::move(m.structure);
  engine->families_ = std::move(m.families);
  engine->mode_ = mode_;
  engine->site_base_ = with_trailing_slash(base);

  // Seed the site with the structure-independent authored artifacts; the
  // build graph owns everything derived (linkbases, arc table, pages) and
  // the initial run below materializes them all.
  if (mode_ == WeaveMode::Tangled) {
    engine->site_.put("museum.css", museum::MuseumWorld::site_css());
  } else {
    site::author_fixed_artifacts(engine->site_, *engine->world_);
    for (const auto& family : engine->families_) {
      engine->context_linkbases_.push_back(Engine::ContextLinkbase{
          site::context_linkbase_path(family.name()), &family, nullptr, {}});
    }
  }

  engine->server_ = std::make_unique<site::HypermediaServer>(
      engine->site_, engine->site_base_);
  // Capture Menu sub specs BEFORE wiring so their Source nodes exist
  // from the first run, and configure the pool so the initial weave
  // parallelizes too.
  engine->adopt_structure_shape(*engine->structure_);
  engine->set_weave_workers(weave_lanes_);
  engine->wire_graph();
  {
    WorkerPool* pool = engine->eligible_pool();
    WaveFlagGuard guard(engine->parallel_wave_active_, pool != nullptr);
    (void)engine->build_graph_.run(pool);
  }
  engine->publish_snapshot();  // epoch 1: the initially built site

  engine->browser_ =
      std::make_unique<site::Browser>(*engine->server_, engine->graph_);
  engine->session_ = std::make_unique<BrowserSession>(*engine->browser_,
                                                      *engine->server_);
  return engine;
}

site::VirtualSite SitePipeline::build(std::string_view base) {
  Materialized m = materialize();
  site::SiteBuildOptions options;
  options.site_base = with_trailing_slash(base);
  for (const auto& family : m.families) {
    options.context_families.push_back(&family);
  }
  return mode_ == WeaveMode::Tangled
             ? site::build_tangled_site(*m.world, *m.structure, options)
             : site::build_separated_site(*m.world, *m.structure, options);
}

}  // namespace navsep::nav

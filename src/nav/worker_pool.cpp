#include "nav/worker_pool.hpp"

#include <algorithm>

namespace navsep::nav {

WorkerPool::WorkerPool(std::size_t lanes) {
  if (lanes == 0) {
    lanes = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  threads_.reserve(lanes - 1);
  for (std::size_t i = 0; i + 1 < lanes; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void WorkerPool::run(const std::vector<std::function<void()>>& tasks) {
  if (tasks.empty()) return;
  if (threads_.empty()) {
    for (const auto& task : tasks) task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_ = &tasks;
    next_ = 0;
    finished_ = 0;
  }
  wake_.notify_all();

  // The caller is a lane: claim tasks until none remain, then wait for
  // the stragglers the other lanes are still executing.
  std::unique_lock<std::mutex> lock(mutex_);
  while (next_ < tasks.size()) {
    const std::size_t index = next_++;
    lock.unlock();
    tasks[index]();
    lock.lock();
    ++finished_;
  }
  done_.wait(lock, [&] { return finished_ == tasks.size(); });
  tasks_ = nullptr;
}

void WorkerPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    wake_.wait(lock, [&] {
      return stop_ || (tasks_ != nullptr && next_ < tasks_->size());
    });
    if (stop_) return;
    while (tasks_ != nullptr && next_ < tasks_->size()) {
      const std::size_t index = next_++;
      const auto* tasks = tasks_;
      lock.unlock();
      (*tasks)[index]();
      lock.lock();
      ++finished_;
      if (tasks_ != nullptr && finished_ == tasks_->size()) {
        done_.notify_all();
      }
    }
  }
}

}  // namespace navsep::nav

// BrowserSession: the thin adapter that presents one site::Browser (and
// the server it talks to) through the role-segregated interfaces.
//
// Browser itself stays a plain concrete class — existing call sites and
// tests are untouched — while new code programs against nav::Navigating /
// nav::SessionView and never sees the framework surface.
#pragma once

#include "nav/roles.hpp"
#include "site/browser.hpp"
#include "site/server.hpp"

namespace navsep::nav {

class BrowserSession final : public Navigating, public SessionView {
 public:
  /// Both referents must outlive the session (the engine guarantees this
  /// for sessions it hands out).
  BrowserSession(site::Browser& browser,
                 const site::HypermediaServer& server) noexcept
      : browser_(&browser), server_(&server) {}

  // --- Navigating -------------------------------------------------------------

  bool navigate(std::string_view uri_ref) override {
    return browser_->navigate(uri_ref);
  }
  bool follow(const xlink::Arc& arc) override { return browser_->follow(arc); }
  bool follow_role(std::string_view role) override {
    return browser_->follow_role(role);
  }
  bool back() override { return browser_->back(); }
  bool forward() override { return browser_->forward(); }
  [[nodiscard]] const std::string& location() const noexcept override {
    return browser_->location();
  }
  [[nodiscard]] const std::string* page() const noexcept override {
    return browser_->page();
  }
  [[nodiscard]] const std::vector<const xlink::Arc*>& links()
      const noexcept override {
    return browser_->links();
  }

  // --- SessionView ------------------------------------------------------------

  [[nodiscard]] const std::vector<std::string>& history()
      const noexcept override {
    return browser_->history();
  }
  [[nodiscard]] std::size_t pages_visited() const noexcept override {
    return browser_->pages_visited();
  }
  [[nodiscard]] std::size_t requests() const noexcept override {
    return server_->requests();
  }
  [[nodiscard]] std::size_t misses() const noexcept override {
    return server_->misses();
  }

 private:
  site::Browser* browser_;
  const site::HypermediaServer* server_;
};

}  // namespace navsep::nav

// A small fork-join pool for the build graph's parallel re-weave waves.
//
// The pool is deliberately minimal: run() takes a batch of independent
// tasks, the calling thread participates as one execution lane, and the
// call returns only when every task has finished. There is no task
// queue that outlives a batch, no futures, no work stealing — the build
// graph's waves are coarse (one task = one page weave) and bounded, so
// a mutex-guarded claim counter is both simple and ThreadSanitizer-
// clean. Tasks must not throw (the build graph wraps each wave slot in
// its own exception capture) and must not touch the pool.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace navsep::nav {

class WorkerPool {
 public:
  /// A pool with `lanes` total execution lanes (background threads plus
  /// the thread that calls run()). 0 means hardware_concurrency; 1 means
  /// no background threads at all (run() executes inline).
  explicit WorkerPool(std::size_t lanes = 0);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Total execution lanes, caller included.
  [[nodiscard]] std::size_t workers() const noexcept {
    return threads_.size() + 1;
  }

  /// Execute every task to completion; the caller is one of the lanes.
  /// Tasks may run in any order and on any lane — they must be
  /// independent, must not throw, and must not call back into the pool.
  /// One batch at a time: run() is not reentrant and not thread-safe.
  void run(const std::vector<std::function<void()>>& tasks);

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable wake_;  // workers: a batch arrived (or stop)
  std::condition_variable done_;  // caller: the batch drained
  const std::vector<std::function<void()>>* tasks_ = nullptr;
  std::size_t next_ = 0;      // next unclaimed task index
  std::size_t finished_ = 0;  // tasks completed this batch
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace navsep::nav

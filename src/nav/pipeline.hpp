// SitePipeline: one fluent API from the conceptual model to a woven,
// served, browsable site — the pipeline every example used to hand-wire
// in ~30 lines of object juggling:
//
//   auto engine = nav::SitePipeline()
//                     .conceptual(museum::MuseumWorld::paper_instance())
//                     .schema()
//                     .access(AccessStructureKind::IndexedGuidedTour,
//                             "picasso")
//                     .contexts({"ByAuthor"})
//                     .weave()
//                     .serve("http://museum.example/site/");
//   engine->navigator().navigate("guitar.html");
//
// The returned Engine owns everything the pipeline produced — conceptual
// world, navigational model, access structure, context families, woven
// VirtualSite, server, linkbase documents and their traversal graph —
// with one lifetime instead of five raw-pointer-aliased locals. Callers
// see it through the role interfaces of roles.hpp: navigator() /
// session() for applications, internals() for the framework.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include <cstdint>
#include <map>

#include "aop/weaver.hpp"
#include "core/navigation_aspect.hpp"
#include "core/renderer.hpp"
#include "hypermedia/access.hpp"
#include "hypermedia/context.hpp"
#include "hypermedia/navigational.hpp"
#include "museum/museum.hpp"
#include "nav/buildgraph.hpp"
#include "nav/roles.hpp"
#include "obs/registry.hpp"
#include "nav/session.hpp"
#include "nav/worker_pool.hpp"
#include "serve/snapshot.hpp"
#include "site/browser.hpp"
#include "site/server.hpp"
#include "site/session.hpp"
#include "site/virtual_site.hpp"
#include "xlink/traversal.hpp"
#include "xml/dom.hpp"

namespace navsep::serve {
class ConcurrentServer;
struct CacheLimits;
}  // namespace navsep::serve

namespace navsep::repl {
class Publisher;
struct PublisherOptions;
struct Endpoint;
}  // namespace navsep::repl

namespace navsep::nav {

/// How the pipeline turns navigation into pages: Separated is the paper's
/// design (XLink linkbase + weaving); Tangled is the baseline it argues
/// against (navigation baked into every page), kept for comparisons.
enum class WeaveMode { Separated, Tangled };

/// The running result of a SitePipeline: site + server + traversal graph
/// + weaver under one owner. Create through SitePipeline::serve().
class Engine final : public EngineInternals {
 public:
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine() override = default;

  // --- role-segregated views --------------------------------------------------

  /// The end-user face (98% of callers need nothing else).
  [[nodiscard]] Navigating& navigator() noexcept { return *session_; }

  /// Read-only observation of the primary session.
  [[nodiscard]] const SessionView& session() const noexcept {
    return *session_;
  }

  /// The framework door. Applications should not walk through it.
  [[nodiscard]] EngineInternals& internals() noexcept { return *this; }

  // --- pipeline artifacts (read-only) -----------------------------------------

  /// The conceptual model (OOHDM layer 1) the pipeline started from.
  [[nodiscard]] const museum::MuseumWorld& world() const noexcept {
    return *world_;
  }
  /// The derived navigational model (OOHDM layer 2).
  [[nodiscard]] const hypermedia::NavigationalModel& navigation()
      const noexcept {
    return *nav_;
  }
  /// The access structure currently served (mutations replace it).
  [[nodiscard]] const hypermedia::AccessStructure& structure() const noexcept {
    return *structure_;
  }
  /// The configured context families (paper §2), in weave order.
  [[nodiscard]] const std::vector<hypermedia::ContextFamily>&
  context_families() const noexcept {
    return families_;
  }
  /// The woven artifact store (writer-side view).
  [[nodiscard]] const site::VirtualSite& site() const noexcept { return site_; }
  /// The single-site server over site() (writer-side; concurrent readers
  /// use open_concurrent() instead).
  [[nodiscard]] const site::HypermediaServer& server() const noexcept {
    return *server_;
  }
  /// Separated (the paper's design) or Tangled (the baseline).
  [[nodiscard]] WeaveMode mode() const noexcept { return mode_; }

  // --- additional consumers over the same site --------------------------------

  /// An independent XLink browser (own history/location) over the engine's
  /// server and arc table. The engine must outlive it.
  [[nodiscard]] site::Browser open_browser() const;

  /// A context-aware navigation session over the engine's families; join
  /// points are announced through the engine's weaver.
  [[nodiscard]] site::NavigationSession open_session() const;

  /// A concurrent read server over the engine's published snapshots (see
  /// snapshots()): safe for any number of reader threads while this
  /// engine keeps mutating on its (single) writer thread. The engine
  /// must outlive it.
  [[nodiscard]] std::unique_ptr<serve::ConcurrentServer> open_concurrent(
      std::size_t cache_shards = 16) const;

  /// As above with bounded cache layers: `limits` caps the entries each
  /// of the server's shards may hold (LRU eviction past the cap; zero
  /// degenerates to pass-through). See serve::CacheLimits.
  [[nodiscard]] std::unique_ptr<serve::ConcurrentServer> open_concurrent(
      std::size_t cache_shards, serve::CacheLimits limits) const;

  /// A replication publisher streaming this engine's published epochs to
  /// remote replicas at `endpoint` (repl::Endpoint::tcp / unix_socket /
  /// parse). It reads snapshots() exactly like a concurrent server —
  /// wait-free against this writer thread — so attaching replicas costs
  /// the mutation path nothing. The engine must outlive the publisher.
  [[nodiscard]] std::unique_ptr<repl::Publisher> open_publisher(
      const repl::Endpoint& endpoint) const;
  [[nodiscard]] std::unique_ptr<repl::Publisher> open_publisher(
      const repl::Endpoint& endpoint,
      const repl::PublisherOptions& options) const;

  /// Compose one node page on demand, inside an optional navigational
  /// context tag ("ByAuthor:picasso") — woven through the engine's weaver
  /// in Separated mode. In Tangled mode the page is rendered inline and
  /// `context_tag` is ignored: the tangled baseline bakes one fixed arc
  /// set into pages and has no contextual weaving. Throws
  /// ResolutionError for unknown node ids.
  [[nodiscard]] std::string compose_page(
      std::string_view node_id, std::string_view context_tag = "") const;

  // --- EngineInternals --------------------------------------------------------

  [[nodiscard]] aop::Weaver& weaver() noexcept override { return weaver_; }
  [[nodiscard]] const xlink::TraversalGraph& arc_table()
      const noexcept override {
    return graph_;
  }
  void rebuild() override;
  RebuildReport set_access_structure(
      std::unique_ptr<hypermedia::AccessStructure> structure) override;
  RebuildReport set_access_structure(
      hypermedia::AccessStructureKind kind) override;
  RebuildReport add_node(std::string_view node_id) override;
  RebuildReport retitle_node(std::string_view node_id,
                             std::string_view title) override;
  RebuildReport replace_arc(std::size_t index,
                            hypermedia::AccessArc arc) override;
  [[nodiscard]] std::vector<hypermedia::AccessArc> authored_arcs()
      const override {
    return structure_->arcs();
  }
  [[nodiscard]] const BuildGraph& build_graph() const noexcept override {
    return build_graph_;
  }
  void clear_response_cache() override { server_->clear_cache(); }
  [[nodiscard]] std::size_t response_cache_hits() const noexcept override {
    return server_->cache_hits();
  }
  [[nodiscard]] const serve::SnapshotStore& snapshots()
      const noexcept override {
    return snapshots_;
  }
  void register_profile(Profile profile) override;
  [[nodiscard]] const std::vector<Profile>& profiles()
      const noexcept override {
    return profiles_;
  }
  RebuildReport edit_context_family(
      std::string_view family_name,
      const std::function<void(hypermedia::ContextFamily&)>& edit) override;
  RebuildReport register_route(RouteProgram program) override;
  RebuildReport edit_route(std::string_view name,
                           std::string_view expression) override;
  RebuildReport remove_route(std::string_view name) override;
  [[nodiscard]] const std::vector<RouteProgram>& routes()
      const noexcept override {
    return route_programs_;
  }
  [[nodiscard]] hypermedia::ContextFamily route_family(
      std::string_view name) const override;
  RebuildReport enable_landmarks(const obs::TraceAggregate& traffic,
                                 LandmarkOptions options) override;
  RebuildReport disable_landmarks() override;
  [[nodiscard]] std::vector<std::string> landmark_families() const override;
  [[nodiscard]] hypermedia::ContextFamily landmark_family(
      std::string_view name) const override;
  [[nodiscard]] std::vector<LandmarkScore> landmark_picks(
      std::string_view name) const override;
  void begin_batch() override;
  RebuildReport commit_batch() override;
  [[nodiscard]] bool batch_open() const noexcept override {
    return batch_open_;
  }
  void set_weave_workers(std::size_t lanes) override;
  [[nodiscard]] std::size_t weave_workers() const noexcept override {
    return pool_ ? pool_->workers() : 1;
  }
  void attach_telemetry(std::shared_ptr<obs::Registry> registry) override;
  [[nodiscard]] obs::Registry* telemetry() const noexcept override {
    return telemetry_.get();
  }

  // --- weave provenance -------------------------------------------------------

  /// Anchors woven into `page_id` when its page was last (re)composed by
  /// the build graph, with the authored arc each one came from. Null for
  /// unknown/never-woven pages (and for all pages in Tangled mode, where
  /// navigation has no separated provenance — that is the point).
  [[nodiscard]] const std::vector<core::AnchorProvenance>* provenance_for(
      std::string_view page_id) const;

 private:
  friend class SitePipeline;
  Engine() = default;

  /// The page ids the current structure wants woven: one per member whose
  /// nav node exists, plus the structure's own page.
  [[nodiscard]] std::vector<std::string> desired_page_ids() const;

  void wire_graph();
  void sync_pages();
  [[nodiscard]] std::uint64_t rebuild_spec();
  [[nodiscard]] std::uint64_t rebuild_structure_linkbase();
  [[nodiscard]] std::uint64_t rebuild_context_linkbase(std::size_t index);
  [[nodiscard]] std::uint64_t rebuild_route_linkbase(std::size_t index);
  [[nodiscard]] std::uint64_t rebuild_arc_table();
  [[nodiscard]] std::uint64_t rebuild_tangled_page(const std::string& page_id);

  /// A woven page node's compute phase: render the page (thread-safe —
  /// through a registry clone of the weaver when a parallel wave is in
  /// flight, logging provenance into a thread-local) and return its hash
  /// plus the commit closure that installs text + provenance.
  [[nodiscard]] BuildGraph::ParallelOutcome weave_page_outcome(
      const std::string& page_id);

  /// Write `text` at `path` iff it differs, invalidating the server's
  /// cached responses for the path. Returns the text hash.
  std::uint64_t put_if_changed(const std::string& path, std::string text);

  /// Snapshot structure_ into a MaterializedStructure (idempotent) so
  /// arc-level edits have a mutable substrate.
  hypermedia::MaterializedStructure& materialized_spec();

  /// Regenerate the structure from `kind` over `members`, then run the
  /// graph — the shared tail of the structural mutations.
  RebuildReport regenerate_structure(hypermedia::AccessStructureKind kind,
                                     std::vector<hypermedia::Member> members);

  /// Mark the spec dirty, run the graph, refresh the session browser.
  RebuildReport run_graph_after_mutation();

  /// Run the graph now (through the pool when eligible), refresh the
  /// browser, publish one snapshot — or, with a batch open, record the
  /// edit and defer all of it to commit_batch().
  RebuildReport run_or_defer();
  RebuildReport run_graph_now();

  /// The pool to weave with, or null for the serial path: requires a
  /// configured multi-lane pool, Separated mode, and no foreign aspects
  /// on the weaver (user advice has no thread-safety contract).
  [[nodiscard]] WorkerPool* eligible_pool() const;

  // --- Menu-aware mutations ---------------------------------------------------

  /// One captured Menu sub-structure: enough declarative state to
  /// regenerate the sub (and with it the Menu's derived arcs) after a
  /// member-level edit. Captured when a constructed hypermedia::Menu is
  /// adopted; empty for every other structure — including Menus the
  /// engine cannot see into (nested Menus, pre-materialized snapshots),
  /// which stay opaque and keep the old SemanticError guard.
  struct MenuSubSpec {
    hypermedia::AccessStructureKind kind;
    std::string name;
    std::vector<hypermedia::Member> members;
    bool circular = false;  // GuidedTour subs only
  };

  /// Capture (or clear) menu_subs_ from a freshly adopted structure.
  void adopt_structure_shape(const hypermedia::AccessStructure& structure);

  /// Reconstruct the Menu from the captured subs (kind/name/members/
  /// circular — the same inputs make_access_structure regenerates every
  /// other kind from).
  [[nodiscard]] std::unique_ptr<hypermedia::AccessStructure> regenerate_menu()
      const;

  /// Reconcile the per-sub Source nodes ("menusub:<i>") with menu_subs_
  /// and point the spec node's deps at them — sub edits become
  /// first-class build-graph inputs with their own early cutoff.
  void sync_menu_nodes();

  /// Install the regenerated Menu, dirty sub `sub_index`'s graph node,
  /// and run (or defer) — the shared tail of the sub-level mutations.
  RebuildReport commit_menu_subs(std::size_t sub_index);

  // --- route programs ---------------------------------------------------------

  /// Index into route_programs_/routes_, npos when unknown.
  [[nodiscard]] std::size_t route_index(std::string_view name) const;

  /// The combined non-route arc set route expansion evaluates over
  /// (structure + family linkbases, weave order) — the engine-side twin
  /// of the snapshot's route-excluded overlay arcs.
  [[nodiscard]] std::vector<core::NavArc> route_input_arcs() const;

  /// Reconcile the build graph's Route nodes ("route:<name>") and the
  /// Aot routes' Linkbase nodes with route_programs_, and re-point the
  /// arc-table node's deps — the sync_menu_nodes() pattern for routes.
  void sync_route_nodes();

  /// Refresh route_table_ from route_programs_ + the model's titles,
  /// preserving pointer identity when nothing changed.
  void refresh_route_table();

  // --- landmark synthesis -----------------------------------------------------

  /// Index into landmarks_, npos when unknown.
  [[nodiscard]] std::size_t landmark_index(std::string_view name) const;

  /// Reconcile landmarks_ with landmark_options_ and the registered
  /// profiles: one base "landmarks" state, plus "landmarks-<p>" per
  /// profile when per_profile is set. Validates name collisions,
  /// retires stale states' artifacts, and attaches/detaches landmark
  /// family names on profiles_. Returns true when the state set (and
  /// with it the graph topology) changed.
  bool refresh_landmark_states();

  /// Reconcile the build graph's Landmark nodes ("landmark:<name>") and
  /// their Linkbase nodes with landmarks_, and re-point the arc-table
  /// node's deps — the sync_route_nodes() pattern for landmarks.
  void sync_landmark_nodes();

  /// Author landmarks_[index]'s linkbase from the stored traffic and
  /// the current authored arcs (the route-linkbase pattern).
  [[nodiscard]] std::uint64_t rebuild_landmark_linkbase(std::size_t index);

  /// The arc-table node's full dependency list: structure + family
  /// linkbases + AOT route linkbases + landmark linkbases. Both syncs
  /// re-point the node through this so neither forgets the other's
  /// products.
  [[nodiscard]] std::vector<std::string> arc_table_deps() const;

  /// Capture site_ + graph_ as the next epoch and install it in
  /// snapshots_ — the atomic hand-off from this (writer) thread to
  /// concurrent readers. Runs after every graph run, so readers always
  /// have a complete, never-torn site to acquire.
  void publish_snapshot();

  // Declaration order is destruction-order-sensitive: everything below
  // may point into what is above it.
  std::unique_ptr<museum::MuseumWorld> owned_world_;
  const museum::MuseumWorld* world_ = nullptr;
  std::optional<hypermedia::NavigationalModel> nav_;
  std::unique_ptr<hypermedia::AccessStructure> structure_;
  std::vector<hypermedia::ContextFamily> families_;
  WeaveMode mode_ = WeaveMode::Separated;
  std::string site_base_;
  mutable aop::Weaver weaver_;
  site::VirtualSite site_;

  // Parsed linkbases: the arc graphs below point into these documents, so
  // they are declared first (destroyed last). A document is only replaced
  // when its serialized text actually changed, which keeps graph element
  // pointers valid across no-op rebuilds.
  std::unique_ptr<xml::Document> structure_linkbase_doc_;
  struct ContextLinkbase {
    std::string path;                          // site path of the linkbase
    const hypermedia::ContextFamily* family;   // into families_
    std::unique_ptr<xml::Document> doc;
    xlink::TraversalGraph graph;               // points into doc
  };
  std::vector<ContextLinkbase> context_linkbases_;

  /// Registered route programs (route_programs_, the routes() view) and
  /// their per-route derived artifacts, index-aligned. Aot routes own an
  /// authored document + graph exactly like a ContextLinkbase (declared
  /// before graph_ for the same lifetime reason); Lazy routes keep both
  /// empty — their expansion lives in the served snapshots.
  struct RouteState {
    std::string path;                    // site path ("links-<name>.xml")
    std::unique_ptr<xml::Document> doc;  // Aot only
    xlink::TraversalGraph graph;         // points into doc (Aot only)
  };
  std::vector<RouteProgram> route_programs_;
  std::vector<RouteState> routes_;

  /// Synthesized landmark families (see enable_landmarks): each one an
  /// authored linkbase exactly like an AOT route, plus the profile
  /// whose traffic ranks it ("" = the global base family). Declared
  /// before graph_ for the same document-lifetime reason as routes.
  struct LandmarkState {
    std::string name;                    // family name ("landmarks[-<p>]")
    std::string profile;                 // ranking lens, "" = global
    std::string path;                    // site path ("links-<name>.xml")
    std::unique_ptr<xml::Document> doc;
    xlink::TraversalGraph graph;         // points into doc
  };
  std::vector<LandmarkState> landmarks_;
  /// Engaged iff landmark synthesis is enabled.
  std::optional<LandmarkOptions> landmark_options_;
  /// The traffic tables the current landmarks rank from (copied at
  /// enable time so re-ranking and diagnostics are reproducible).
  obs::TraceAggregate landmark_traffic_;

  xlink::TraversalGraph graph_;

  /// The combined authored arc set (structure + families, weave order,
  /// with per-linkbase provenance) as last materialized by the arc-table
  /// rebuild — shared into every published snapshot, which slices it per
  /// (linkbase, page) for profile overlays.
  std::shared_ptr<const std::vector<core::NavArc>> combined_arcs_;

  /// Per-(linkbase, page) slice content hashes over combined_arcs_,
  /// computed by the same arc-table rebuild — the slice-precise validity
  /// tokens of the serve-side overlay cache (serve::OverlayValidity),
  /// shared into every published snapshot alongside the arcs.
  std::shared_ptr<const serve::SourceSliceHashes> overlay_slice_hashes_;

  /// Registered serving profiles (see register_profile()).
  std::vector<Profile> profiles_;

  /// The route table published into snapshots (and onto the replication
  /// wire): programs + node-title export. Rebuilt by publish_snapshot();
  /// the previous value is kept when content-equal so unchanged tables
  /// keep pointer identity across epochs (the wire's carry-forward probe).
  std::shared_ptr<const serve::RouteTable> route_table_;

  std::unique_ptr<site::HypermediaServer> server_;
  std::unique_ptr<site::Browser> browser_;
  std::unique_ptr<BrowserSession> session_;

  /// Published site snapshots (self-contained: shared artifact bytes +
  /// value-copied arcs, no pointers into the members above).
  serve::SnapshotStore snapshots_;

  // --- incremental rebuild state ---------------------------------------------
  BuildGraph build_graph_;
  std::vector<std::string> page_ids_;  // page nodes currently in the graph
  /// Per-page hash of the arcs that can be woven into the stored page
  /// (context-free arcs leaving it) — published by the arc-table rebuild,
  /// read by the per-page ArcSlice nodes.
  std::map<std::string, std::uint64_t, std::less<>> slice_hashes_;
  std::map<std::string, std::vector<core::AnchorProvenance>, std::less<>>
      provenance_;
  /// Tangled mode's renderer, rebuilt when the spec changes (arc
  /// materialization is per-construction; pages share one).
  std::unique_ptr<core::TangledRenderer> tangled_renderer_;

  // --- parallel re-weave state ------------------------------------------------
  /// The shared pool page weaves schedule onto (null = serial, the
  /// default; see set_weave_workers()).
  std::unique_ptr<WorkerPool> pool_;
  /// True while run_graph_now() executes with the pool: page compute
  /// phases check it to decide between the engine's weaver (serial, so
  /// its stats/cache keep accumulating as they always have) and a
  /// per-task registry clone (parallel). Written by the coordinating
  /// thread strictly before/after the pool runs; workers read it under
  /// the pool's task hand-off, so it is never read and written
  /// concurrently.
  bool parallel_wave_active_ = false;

  // --- batch state ------------------------------------------------------------
  bool batch_open_ = false;
  std::size_t batch_edits_ = 0;        // mutations coalesced so far
  bool batch_publish_pending_ = false; // something dirtied or deferred
  /// Profile registrations are publish-only (no graph run); a batch
  /// holding ONLY those commits without a graph run but still publishes
  /// once.
  bool batch_graph_pending_ = false;

  // --- Menu sub-structure capture ---------------------------------------------
  std::vector<MenuSubSpec> menu_subs_;

  // --- telemetry --------------------------------------------------------------
  /// Attached registry (see attach_telemetry) and the engine's pull
  /// sampler registered on it. Handle declared after the registry so it
  /// unregisters first on destruction.
  std::shared_ptr<obs::Registry> telemetry_;
  obs::SamplerHandle telemetry_sampler_;
};

/// Fluent composer of the whole separated-navigation pipeline. Stages may
/// be set in any order; serve() / build() are terminal and consume the
/// pipeline (the world moves into the engine). Misconfiguration (no
/// conceptual model, no access structure, unknown context family) throws
/// navsep::SemanticError at the terminal call, not midway.
class SitePipeline {
 public:
  SitePipeline() = default;
  SitePipeline(SitePipeline&&) = default;
  SitePipeline& operator=(SitePipeline&&) = default;

  // --- stage 1: the conceptual model ------------------------------------------

  /// Own the world (the common case — the engine carries it).
  SitePipeline& conceptual(std::unique_ptr<museum::MuseumWorld> world);

  /// Borrow a world the caller keeps alive (sharing one across pipelines).
  SitePipeline& conceptual(const museum::MuseumWorld& world);

  /// Synthesize a deterministic world of the given size.
  SitePipeline& conceptual(const museum::SyntheticSpec& spec);

  /// The paper's exact museum (Picasso, Figures 3/4/7/8/9).
  SitePipeline& paper_museum();

  // --- stage 2: the navigational schema/model ---------------------------------

  /// Derive the navigational model from the conceptual one (OOHDM layer
  /// 2). Implied by serve()/build() when omitted.
  SitePipeline& schema();

  /// Use a pre-derived model (it must view the pipeline's world).
  SitePipeline& schema(hypermedia::NavigationalModel model);

  // --- stage 3: the access structure ------------------------------------------

  /// An access structure over every painting of the museum.
  SitePipeline& access(hypermedia::AccessStructureKind kind);

  /// An access structure over one painter's paintings (the paper's
  /// running example: "picasso").
  SitePipeline& access(hypermedia::AccessStructureKind kind,
                       std::string_view painter_id);

  /// A custom structure built elsewhere.
  SitePipeline& structure(
      std::unique_ptr<hypermedia::AccessStructure> structure);

  // --- stage 4: navigational contexts (paper §2) ------------------------------

  /// Context families to author and weave alongside the structure.
  /// Known names: "ByAuthor", "ByMovement".
  SitePipeline& contexts(std::vector<std::string> family_names);

  // --- stage 5: weaving mode --------------------------------------------------

  /// Separated (linkbase + woven pages) — the default.
  SitePipeline& weave();

  /// Tangled baseline (navigation embedded in every page).
  SitePipeline& tangled();

  /// Worker lanes for the parallel re-weave path (0 = hardware
  /// concurrency, 1 = serial, the default) — forwarded to
  /// EngineInternals::set_weave_workers before the initial build, so the
  /// first weave parallelizes too.
  SitePipeline& weave_workers(std::size_t lanes);

  // --- terminals --------------------------------------------------------------

  /// Materialize everything and serve it: returns the running Engine.
  [[nodiscard]] std::unique_ptr<Engine> serve(
      std::string_view base = kDefaultBase);

  /// Materialize just the artifact set (no server/browser) — for writing
  /// a site to disk or diffing builds.
  [[nodiscard]] site::VirtualSite build(std::string_view base = kDefaultBase);

  static constexpr std::string_view kDefaultBase =
      "http://museum.example/site/";

 private:
  struct Materialized {
    std::unique_ptr<museum::MuseumWorld> owned_world;
    const museum::MuseumWorld* world = nullptr;
    std::optional<hypermedia::NavigationalModel> nav;
    std::unique_ptr<hypermedia::AccessStructure> structure;
    std::vector<hypermedia::ContextFamily> families;
  };
  [[nodiscard]] Materialized materialize();

  std::unique_ptr<museum::MuseumWorld> owned_world_;
  const museum::MuseumWorld* world_ = nullptr;
  std::optional<hypermedia::NavigationalModel> nav_;
  std::optional<hypermedia::AccessStructureKind> kind_;
  std::optional<std::string> scope_painter_;  // nullopt = all paintings
  std::unique_ptr<hypermedia::AccessStructure> structure_;
  std::vector<std::string> family_names_;
  WeaveMode mode_ = WeaveMode::Separated;
  std::size_t weave_lanes_ = 1;
};

}  // namespace navsep::nav

#include "nav/buildgraph.hpp"

#include <algorithm>
#include <exception>

#include "common/error.hpp"
#include "nav/worker_pool.hpp"
#include "obs/registry.hpp"

namespace navsep::nav {

std::string_view to_string(ProductKind k) noexcept {
  switch (k) {
    case ProductKind::Source: return "Source";
    case ProductKind::Route: return "Route";
    case ProductKind::Landmark: return "Landmark";
    case ProductKind::Linkbase: return "Linkbase";
    case ProductKind::ArcTable: return "ArcTable";
    case ProductKind::ArcSlice: return "ArcSlice";
    case ProductKind::Page: return "Page";
    case ProductKind::Server: return "Server";
  }
  return "?";
}

std::uint64_t hash_bytes(std::string_view bytes) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

std::uint64_t hash_combine(std::uint64_t seed, std::uint64_t value) noexcept {
  // Mix the value through FNV over its bytes so combine(0, x) != x and
  // order matters.
  std::uint64_t h = seed ^ 0x9e3779b97f4a7c15ull;
  for (int i = 0; i < 8; ++i) {
    h ^= (value >> (i * 8)) & 0xffull;
    h *= 0x100000001b3ull;
  }
  return h;
}

void BuildGraph::define(const std::string& id, ProductKind kind,
                        std::vector<std::string> deps, Rebuild rebuild) {
  ++topology_revision_;
  auto it = nodes_.find(id);
  if (it == nodes_.end()) {
    Node node;
    node.kind = kind;
    node.deps = std::move(deps);
    node.rebuild = std::move(rebuild);
    nodes_.emplace(id, std::move(node));
    return;
  }
  // Redefinition keeps the stored hash: the product may be unchanged, and
  // early cutoff should still apply on the next rebuild.
  it->second.kind = kind;
  it->second.deps = std::move(deps);
  it->second.rebuild = std::move(rebuild);
  it->second.parallel_rebuild = nullptr;
  it->second.dirty = true;
}

void BuildGraph::define_parallel(const std::string& id, ProductKind kind,
                                 std::vector<std::string> deps,
                                 ParallelRebuild rebuild) {
  ++topology_revision_;
  auto it = nodes_.find(id);
  if (it == nodes_.end()) {
    Node node;
    node.kind = kind;
    node.deps = std::move(deps);
    node.parallel_rebuild = std::move(rebuild);
    nodes_.emplace(id, std::move(node));
    return;
  }
  it->second.kind = kind;
  it->second.deps = std::move(deps);
  it->second.rebuild = nullptr;
  it->second.parallel_rebuild = std::move(rebuild);
  it->second.dirty = true;
}

bool BuildGraph::remove(const std::string& id) {
  if (nodes_.erase(id) == 0) return false;
  ++topology_revision_;
  return true;
}

bool BuildGraph::contains(std::string_view id) const {
  return nodes_.find(id) != nodes_.end();
}

std::size_t BuildGraph::count(ProductKind kind) const {
  std::size_t n = 0;
  for (const auto& [_, node] : nodes_) {
    if (node.kind == kind) ++n;
  }
  return n;
}

std::vector<std::string> BuildGraph::ids() const {
  std::vector<std::string> out;
  out.reserve(nodes_.size());
  for (const auto& [id, _] : nodes_) out.push_back(id);
  return out;
}

std::vector<std::string> BuildGraph::ids(ProductKind kind) const {
  std::vector<std::string> out;
  for (const auto& [id, node] : nodes_) {
    if (node.kind == kind) out.push_back(id);
  }
  return out;
}

std::uint64_t BuildGraph::hash_of(std::string_view id) const {
  auto it = nodes_.find(id);
  return it == nodes_.end() ? 0 : it->second.hash;
}

bool BuildGraph::is_dirty(std::string_view id) const {
  auto it = nodes_.find(id);
  return it != nodes_.end() && it->second.dirty;
}

void BuildGraph::mark_dirty(const std::string& id) {
  auto it = nodes_.find(id);
  if (it != nodes_.end()) it->second.dirty = true;
}

void BuildGraph::mark_all_dirty() {
  for (auto& [_, node] : nodes_) node.dirty = true;
}

BuildGraph::Plan BuildGraph::plan() const {
  // Kahn's algorithm over the defined nodes. Edges from dangling dep ids
  // (declared but not defined) are ignored — they activate when defined.
  Plan out;
  std::map<std::string_view, std::size_t> in_degree;
  for (const auto& [id, _] : nodes_) in_degree.emplace(id, 0);
  for (const auto& [id, node] : nodes_) {
    for (const std::string& dep : node.deps) {
      if (nodes_.find(dep) == nodes_.end()) continue;
      ++in_degree[id];
      out.dependents[dep].push_back(id);
    }
  }

  std::vector<std::string_view> ready;
  for (const auto& [id, _] : nodes_) {
    if (in_degree[id] == 0) ready.push_back(id);
  }
  out.order.reserve(nodes_.size());
  // `ready` is consumed as a queue; map iteration order keeps everything
  // deterministic.
  for (std::size_t head = 0; head < ready.size(); ++head) {
    std::string_view id = ready[head];
    out.order.emplace_back(id);
    auto dep_it = out.dependents.find(id);
    if (dep_it == out.dependents.end()) continue;
    for (const std::string& dependent : dep_it->second) {
      if (--in_degree[dependent] == 0) ready.push_back(dependent);
    }
  }
  if (out.order.size() != nodes_.size()) {
    throw SemanticError(
        "BuildGraph: dependency cycle among " +
        std::to_string(nodes_.size() - out.order.size()) + " node(s)");
  }
  return out;
}

RebuildReport BuildGraph::run() { return run(nullptr); }

RebuildReport BuildGraph::run(WorkerPool* pool) {
  RebuildReport report;
  const bool parallel = pool != nullptr && pool->workers() > 1;
  report.weave_workers = parallel ? pool->workers() : 1;
  // Rebuild callbacks may define or remove nodes (the page set follows
  // the member set), which invalidates the pass plan — so run in passes
  // until one leaves the graph clean. Each pass processes strictly in
  // dependency order, so a node rebuilds at most once per pass and only
  // after its producers; a topology change aborts the pass and replans.
  constexpr std::size_t kMaxPasses = 64;  // far above any real depth
  obs::SpanLog* spans = telemetry_ != nullptr ? &telemetry_->spans() : nullptr;
  for (std::size_t pass = 0; pass < kMaxPasses; ++pass) {
    bool any_dirty = false;
    const Plan plan = [&] {
      obs::ScopedSpan span(spans, "build.plan", epoch_hint_);
      return this->plan();
    }();
    const std::uint64_t planned_topology = topology_revision_;
    for (std::size_t pos = 0; pos < plan.order.size(); ++pos) {
      const std::string& id = plan.order[pos];
      auto it = nodes_.find(id);
      if (it == nodes_.end()) continue;  // removed earlier this pass
      if (!it->second.dirty) continue;
      if (parallel && it->second.parallel_rebuild) {
        // Gather the wave: this node plus every dirty parallel node later
        // in the plan whose defined inputs have all settled. Plan order
        // puts producers first, so anything still dirty among a
        // candidate's deps means the candidate is not ready this wave.
        std::vector<std::string> wave;
        for (std::size_t j = pos; j < plan.order.size(); ++j) {
          auto cand = nodes_.find(plan.order[j]);
          if (cand == nodes_.end() || !cand->second.dirty ||
              !cand->second.parallel_rebuild) {
            continue;
          }
          const bool ready = std::none_of(
              cand->second.deps.begin(), cand->second.deps.end(),
              [this](const std::string& dep) { return is_dirty(dep); });
          if (ready) wave.push_back(plan.order[j]);
        }
        if (!wave.empty()) {
          any_dirty = true;
          run_wave(wave, *pool, plan, report);
          if (topology_revision_ != planned_topology) break;  // replan
          continue;
        }
        // Not ready (a dep defined mid-pass is still dirty): leave the
        // node for the next pass.
        any_dirty = true;
        continue;
      }
      any_dirty = true;
      ++report.nodes_dirty;
      it->second.dirty = false;
      if (!it->second.rebuild && !it->second.parallel_rebuild) continue;
      ++report.nodes_rebuilt;
      if (it->second.kind == ProductKind::Page) ++report.pages_rewoven;
      std::uint64_t new_hash = 0;
      if (it->second.parallel_rebuild) {
        // Inline (serial) execution of a parallel node: compute, then
        // commit immediately — the same observable sequence as a
        // classic rebuild callback.
        const ParallelRebuild rebuild = it->second.parallel_rebuild;
        ParallelOutcome outcome = rebuild();
        new_hash = outcome.hash;
        if (outcome.commit) outcome.commit();
      } else {
        // Call through a copy: the callback may remove or redefine its
        // own node, which would otherwise destroy the std::function
        // mid-call.
        const Rebuild rebuild = it->second.rebuild;
        new_hash = rebuild();
      }
      // The callback may have mutated the graph; re-find before writing.
      auto after = nodes_.find(id);
      if (after == nodes_.end()) continue;
      const std::uint64_t old_hash = after->second.hash;
      after->second.hash = new_hash;
      if (new_hash != old_hash) {
        ++report.nodes_changed;
        if (after->second.kind == ProductKind::Linkbase) {
          ++report.linkbases_reauthored;
        }
        // Propagate along the reverse edges captured at plan time; nodes
        // defined mid-pass start dirty and are picked up by the next pass.
        if (auto dep_it = plan.dependents.find(id);
            dep_it != plan.dependents.end()) {
          for (const std::string& dependent : dep_it->second) {
            mark_dirty(dependent);
          }
        }
      }
      if (topology_revision_ != planned_topology) break;  // replan
    }
    if (!any_dirty) break;
  }
  // The pass budget is a backstop against rebuild callbacks that redirty
  // the graph forever (a define() per invocation, say). Exhausting it
  // with work left must fail loudly — returning a normal-looking report
  // over an unsettled site would be a silent lie.
  for (const auto& [id, node] : nodes_) {
    if (node.dirty) {
      throw SemanticError("BuildGraph::run: graph failed to settle within " +
                          std::to_string(kMaxPasses) + " passes ('" + id +
                          "' still dirty) — a rebuild callback keeps "
                          "redirtying the graph");
    }
  }
  report.pages_total = count(ProductKind::Page);
  return report;
}

void BuildGraph::run_wave(const std::vector<std::string>& wave,
                          WorkerPool& pool, const Plan& plan,
                          RebuildReport& report) {
  // Compute concurrently into per-slot state (no shared writes: each
  // task owns its slot, and compute phases are contractually forbidden
  // from touching the graph).
  struct Slot {
    ParallelRebuild rebuild;
    std::uint64_t hash = 0;
    std::function<void()> commit;
    std::exception_ptr error;
  };
  std::vector<Slot> slots(wave.size());
  for (std::size_t i = 0; i < wave.size(); ++i) {
    slots[i].rebuild = nodes_.find(wave[i])->second.parallel_rebuild;
  }
  std::vector<std::function<void()>> tasks;
  tasks.reserve(slots.size());
  for (Slot& slot : slots) {
    tasks.push_back([&slot] {
      try {
        ParallelOutcome outcome = slot.rebuild();
        slot.hash = outcome.hash;
        slot.commit = std::move(outcome.commit);
      } catch (...) {
        slot.error = std::current_exception();
      }
    });
  }
  obs::SpanLog* spans = telemetry_ != nullptr ? &telemetry_->spans() : nullptr;
  {
    obs::ScopedSpan span(spans, "build.wave.compute", epoch_hint_);
    pool.run(tasks);
  }
  report.max_parallel_weaves =
      std::max(report.max_parallel_weaves, wave.size());
  if (telemetry_ != nullptr) {
    telemetry_->histogram("build.wave_occupancy")
        .record(static_cast<std::uint64_t>(wave.size()));
  }

  // Commit serially, in plan order — deterministic regardless of which
  // lane computed what. A compute error surfaces here with serial-run
  // node state: the throwing node is clean with its stale hash (dirty
  // cleared before its callback, exactly like run()), and nodes after it
  // in plan order stay dirty, their computed results discarded.
  obs::ScopedSpan commit_span(spans, "build.wave.commit", epoch_hint_);
  for (std::size_t i = 0; i < wave.size(); ++i) {
    auto it = nodes_.find(wave[i]);
    if (it == nodes_.end()) continue;
    ++report.nodes_dirty;
    it->second.dirty = false;
    ++report.nodes_rebuilt;
    if (it->second.kind == ProductKind::Page) ++report.pages_rewoven;
    if (slots[i].error) std::rethrow_exception(slots[i].error);
    const std::uint64_t old_hash = it->second.hash;
    it->second.hash = slots[i].hash;
    if (slots[i].commit) slots[i].commit();
    if (slots[i].hash != old_hash) {
      ++report.nodes_changed;
      if (it->second.kind == ProductKind::Linkbase) {
        ++report.linkbases_reauthored;
      }
      if (auto dep_it = plan.dependents.find(wave[i]);
          dep_it != plan.dependents.end()) {
        for (const std::string& dependent : dep_it->second) {
          mark_dirty(dependent);
        }
      }
    }
  }
}

}  // namespace navsep::nav

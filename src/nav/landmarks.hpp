// Landmark synthesis — the consumption half of traffic intelligence.
//
// Workload traces (obs/trace.hpp) fold into popularity tables; this
// module turns them back into *authored navigation*: it scores every
// node the arc table names by a blend of observed traffic and arc-graph
// centrality, picks the top-K hubs, and expresses them as an ordinary
// context family ("landmarks", one guided-tour context hottest-first).
// The engine (nav/pipeline.cpp) authors that family through the normal
// build graph — a `landmark:<name>` product node feeding a
// `links-<name>.xml` linkbase, exactly the shape of PR 9's AOT routes —
// so landmark pages are byte-identical to a from-scratch build and ride
// snapshot replication for free.
//
// Everything here is a pure function of (traffic, arcs, options):
// deterministic given its inputs, no engine state, unit-testable alone.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/navigation_aspect.hpp"
#include "hypermedia/context.hpp"
#include "obs/trace.hpp"

namespace navsep::nav {

/// Synthesis knobs, stored by Engine::enable_landmarks.
struct LandmarkOptions {
  /// Hub pages per landmark family (the access structure's fan-out).
  std::size_t top_k = 4;
  /// Weight of normalized observed page views in the blend.
  double popularity_weight = 1.0;
  /// Weight of normalized arc-graph degree (in + out) in the blend.
  double centrality_weight = 1.0;
  /// Also synthesize one "landmarks-<profile>" family per registered
  /// profile, scored from that profile's overlay traffic (profiles with
  /// no recorded traffic fall back to the global tables).
  bool per_profile = false;
};

/// One ranked hub candidate. `views` joins the trace aggregate's page
/// tables to the node through core::default_href_for(node_id).
struct LandmarkScore {
  std::string node_id;
  std::uint64_t views = 0;   ///< observed hits on the node's page
  std::size_t degree = 0;    ///< in+out arcs naming the node
  double score = 0.0;        ///< popularity/centrality blend, in [0, 2]
};

/// Rank every node the arc set names and return the top_k, hottest
/// first (ties broken by node id — fully deterministic). An empty
/// `profile` scores against the global page_views table; a named
/// profile scores against its profile_page_views slice, falling back to
/// the global table when that profile recorded nothing.
[[nodiscard]] std::vector<LandmarkScore> score_landmarks(
    const obs::TraceAggregate& traffic,
    const std::vector<core::NavArc>& arcs, const LandmarkOptions& options,
    std::string_view profile = {});

/// Express ranked picks as a servable context family: one
/// `<name>:landmark` guided-tour context over the picked node ids in
/// rank order — what the engine authors into `links-<name>.xml` and the
/// full-build oracle must reproduce byte-for-byte.
[[nodiscard]] hypermedia::ContextFamily landmark_context_family(
    std::string_view name, const std::vector<LandmarkScore>& picks);

/// Content hash of one landmark program: name, options, and the traffic
/// slice it ranks from. This is the `landmark:<name>` build-graph
/// node's product — re-feeding identical traffic cuts off right there.
[[nodiscard]] std::uint64_t landmark_token(
    std::string_view name, const LandmarkOptions& options,
    const obs::TraceAggregate& traffic, std::string_view profile = {});

}  // namespace navsep::nav

#include "html/html.hpp"

#include "xml/serializer.hpp"

namespace navsep::html {

Page::Page(std::string_view title) : doc_(std::make_unique<xml::Document>()) {
  xml::Element& html = doc_->set_root(xml::QName("html"));
  head_ = &html.append_element("head");
  head_->append_element("title").append_text(title);
  body_ = &html.append_element("body");
}

xml::Element& Page::heading(int level, std::string_view text,
                            xml::Element* parent) {
  if (level < 1) level = 1;
  if (level > 6) level = 6;
  xml::Element& h = (parent ? *parent : *body_)
                        .append_element("h" + std::to_string(level));
  h.append_text(text);
  return h;
}

xml::Element& Page::paragraph(std::string_view text, xml::Element* parent) {
  xml::Element& p = (parent ? *parent : *body_).append_element("p");
  if (!text.empty()) p.append_text(text);
  return p;
}

xml::Element& Page::anchor(std::string_view href, std::string_view text,
                           xml::Element* parent) {
  xml::Element& a = (parent ? *parent : *body_).append_element("a");
  a.set_attribute("href", href);
  a.append_text(text);
  return a;
}

xml::Element& Page::image(std::string_view src, std::string_view alt,
                          xml::Element* parent) {
  xml::Element& img = (parent ? *parent : *body_).append_element("img");
  img.set_attribute("src", src);
  img.set_attribute("alt", alt);
  return img;
}

xml::Element& Page::unordered_list(xml::Element* parent) {
  return (parent ? *parent : *body_).append_element("ul");
}

xml::Element& Page::list_item(xml::Element& list) {
  return list.append_element("li");
}

void Page::rule(xml::Element* parent) {
  (parent ? *parent : *body_).append_element("hr");
}

void Page::line_break(xml::Element* parent) {
  (parent ? *parent : *body_).append_element("br");
}

void Page::stylesheet(std::string_view href) {
  xml::Element& link = head_->append_element("link");
  link.set_attribute("rel", "stylesheet");
  link.set_attribute("type", "text/css");
  link.set_attribute("href", href);
}

std::string Page::to_string() const {
  return navsep::html::write(*doc_, /*pretty=*/true);
}

bool is_void_element(std::string_view name) noexcept {
  static constexpr std::string_view kVoid[] = {
      "area", "base", "br",   "col",  "embed",  "hr",    "img",
      "input", "link", "meta", "param", "source", "track", "wbr",
  };
  for (std::string_view v : kVoid) {
    if (v == name) return true;
  }
  return false;
}

namespace {

/// Elements rendered inline (no indentation around them).
bool is_inline(std::string_view name) noexcept {
  static constexpr std::string_view kInline[] = {
      "a", "b", "i", "em", "strong", "span", "code", "small", "img", "br",
  };
  for (std::string_view v : kInline) {
    if (v == name) return true;
  }
  return false;
}

class HtmlWriter {
 public:
  explicit HtmlWriter(bool pretty) : pretty_(pretty) {}

  std::string take() && { return std::move(out_); }

  void document(const xml::Document& doc) {
    out_ += "<!DOCTYPE html>";
    if (pretty_) out_ += '\n';
    for (const auto& child : doc.children()) node(*child, 0);
    if (pretty_ && !out_.empty() && out_.back() != '\n') out_ += '\n';
  }

  void node(const xml::Node& n, int depth) {
    switch (n.type()) {
      case xml::NodeType::Element:
        element(static_cast<const xml::Element&>(n), depth);
        break;
      case xml::NodeType::Text:
        out_ += xml::escape_text(static_cast<const xml::Text&>(n).data());
        break;
      case xml::NodeType::Comment:
        out_ += "<!--";
        out_ += static_cast<const xml::Comment&>(n).data();
        out_ += "-->";
        break;
      default:
        break;  // PIs and attribute views do not appear in HTML output
    }
  }

 private:
  void element(const xml::Element& e, int depth) {
    const std::string& name = e.name().local;
    out_ += '<';
    out_ += name;
    for (const auto& a : e.attributes()) {
      if (a.is_namespace_decl()) continue;
      out_ += ' ';
      out_ += a.name.local;
      // Boolean attributes stay minimized (value equal to the name).
      if (a.value != a.name.local) {
        out_ += "=\"";
        out_ += xml::escape_attribute(a.value);
        out_ += '"';
      }
    }
    out_ += '>';
    if (is_void_element(name)) return;

    // Mixed text+inline content (or a single child) stays on one line;
    // a run of sibling elements lays out one per line, which is what the
    // paper's page listings show (each navigation anchor on its own line).
    bool has_text = false;
    bool all_inline = true;
    for (const auto& c : e.children()) {
      if (c->is_text()) has_text = true;
      const xml::Element* ce = c->as_element();
      if (ce != nullptr && !is_inline(ce->name().local)) {
        all_inline = false;
      }
    }
    const bool inline_content =
        all_inline && (has_text || e.children().size() == 1);

    if (!pretty_ || inline_content) {
      for (const auto& c : e.children()) node(*c, depth + 1);
    } else {
      for (const auto& c : e.children()) {
        newline_indent(depth + 1);
        node(*c, depth + 1);
      }
      newline_indent(depth);
    }
    out_ += "</";
    out_ += name;
    out_ += '>';
  }

  void newline_indent(int depth) {
    out_ += '\n';
    for (int i = 0; i < depth; ++i) out_ += "  ";
  }

  bool pretty_;
  std::string out_;
};

}  // namespace

std::string write(const xml::Document& doc, bool pretty) {
  HtmlWriter w(pretty);
  w.document(doc);
  return std::move(w).take();
}

std::string write(const xml::Element& element, bool pretty) {
  HtmlWriter w(pretty);
  w.node(element, 0);
  std::string out = std::move(w).take();
  if (pretty && !out.empty() && out.back() != '\n') out += '\n';
  return out;
}

std::string write_at_depth(const xml::Element& element, int depth) {
  HtmlWriter w(/*pretty=*/true);
  w.node(element, depth);
  return std::move(w).take();
}

}  // namespace navsep::html

// HTML generation on top of the XML DOM.
//
// The museum pages (paper Figures 3 and 4) are plain HTML 4-era documents.
// We model an HTML page as an xml::Document and provide:
//   * a builder with the handful of helpers the renderers need
//     (headings, paragraphs, anchors, lists, horizontal rules);
//   * a serializer that follows HTML rules rather than XML rules —
//     void elements (<br>, <hr>, <img>...) never get end tags, and
//     boolean attributes stay minimized.
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "xml/dom.hpp"

namespace navsep::html {

/// A fluent builder for small HTML documents.
class Page {
 public:
  explicit Page(std::string_view title);

  /// The <body> element, for direct DOM work.
  [[nodiscard]] xml::Element& body() noexcept { return *body_; }
  [[nodiscard]] const xml::Element& body() const noexcept { return *body_; }
  [[nodiscard]] xml::Element& head() noexcept { return *head_; }
  [[nodiscard]] const xml::Document& document() const noexcept {
    return *doc_;
  }

  /// Appends and returns child helpers (all under <body> by default).
  xml::Element& heading(int level, std::string_view text,
                        xml::Element* parent = nullptr);
  xml::Element& paragraph(std::string_view text,
                          xml::Element* parent = nullptr);
  xml::Element& anchor(std::string_view href, std::string_view text,
                       xml::Element* parent = nullptr);
  xml::Element& image(std::string_view src, std::string_view alt,
                      xml::Element* parent = nullptr);
  xml::Element& unordered_list(xml::Element* parent = nullptr);
  xml::Element& list_item(xml::Element& list);
  void rule(xml::Element* parent = nullptr);  // <hr>
  void line_break(xml::Element* parent = nullptr);  // <br>

  /// Attach a stylesheet link in <head>.
  void stylesheet(std::string_view href);

  /// Serialize with the HTML writer below.
  [[nodiscard]] std::string to_string() const;

 private:
  std::unique_ptr<xml::Document> doc_;
  xml::Element* head_ = nullptr;
  xml::Element* body_ = nullptr;
};

/// True for the HTML void elements (no end tag, may not have children).
[[nodiscard]] bool is_void_element(std::string_view name) noexcept;

/// Serialize an element tree / document as HTML. `pretty` indents block
/// structure; inline text content stays on one line.
[[nodiscard]] std::string write(const xml::Document& doc, bool pretty = true);
[[nodiscard]] std::string write(const xml::Element& element,
                                bool pretty = true);

/// Serialize one element exactly as the pretty document writer would
/// render it nested `depth` levels deep (its children indent from there),
/// with no trailing newline. This is the splice primitive of the serve-
/// time navigation overlays: a block rendered off-page must be
/// byte-identical to the same block woven in-page, so it must be written
/// at the page's depth, not at zero.
[[nodiscard]] std::string write_at_depth(const xml::Element& element,
                                         int depth);

}  // namespace navsep::html

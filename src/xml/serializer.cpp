#include "xml/serializer.hpp"

namespace navsep::xml {

std::string escape_text(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string escape_attribute(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '"': out += "&quot;"; break;
      case '\t': out += "&#9;"; break;
      case '\n': out += "&#10;"; break;
      case '\r': out += "&#13;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

namespace {

class Writer {
 public:
  explicit Writer(const WriteOptions& options) : options_(options) {}

  std::string take() && { return std::move(out_); }

  void document(const Document& doc) {
    if (options_.declaration) {
      out_ += "<?xml version=\"1.0\" encoding=\"UTF-8\"?>";
      if (options_.pretty) out_ += '\n';
    }
    for (const auto& child : doc.children()) {
      node(*child, 0);
      if (options_.pretty) newline_if_needed();
    }
  }

  void node(const Node& n, int depth) {
    switch (n.type()) {
      case NodeType::Element:
        element(static_cast<const Element&>(n), depth);
        break;
      case NodeType::Text:
        out_ += escape_text(static_cast<const Text&>(n).data());
        break;
      case NodeType::Comment:
        out_ += "<!--";
        out_ += static_cast<const Comment&>(n).data();
        out_ += "-->";
        break;
      case NodeType::ProcessingInstruction: {
        const auto& pi = static_cast<const ProcessingInstruction&>(n);
        out_ += "<?";
        out_ += pi.target();
        if (!pi.data().empty()) {
          out_ += ' ';
          out_ += pi.data();
        }
        out_ += "?>";
        break;
      }
      case NodeType::Document:
        document(static_cast<const Document&>(n));
        break;
      case NodeType::Attribute:
        break;  // attribute views never appear as tree children
    }
  }

 private:
  void element(const Element& e, int depth) {
    out_ += '<';
    out_ += e.name().qualified();
    for (const auto& a : e.attributes()) {
      out_ += ' ';
      out_ += a.name.qualified();
      out_ += "=\"";
      out_ += escape_attribute(a.value);
      out_ += '"';
    }
    if (e.children().empty()) {
      out_ += "/>";
      return;
    }
    out_ += '>';

    bool text_only = true;
    for (const auto& c : e.children()) {
      if (!c->is_text()) {
        text_only = false;
        break;
      }
    }

    if (!options_.pretty || text_only) {
      for (const auto& c : e.children()) node(*c, depth + 1);
    } else {
      for (const auto& c : e.children()) {
        newline_indent(depth + 1);
        node(*c, depth + 1);
      }
      newline_indent(depth);
    }
    out_ += "</";
    out_ += e.name().qualified();
    out_ += '>';
  }

  void newline_indent(int depth) {
    out_ += '\n';
    for (int i = 0; i < depth; ++i) out_ += options_.indent;
  }

  void newline_if_needed() {
    if (!out_.empty() && out_.back() != '\n') out_ += '\n';
  }

  const WriteOptions& options_;
  std::string out_;
};

}  // namespace

std::string write(const Document& doc, const WriteOptions& options) {
  Writer w(options);
  w.document(doc);
  return std::move(w).take();
}

std::string write(const Element& element, const WriteOptions& options) {
  Writer w(options);
  w.node(element, 0);
  return std::move(w).take();
}

}  // namespace navsep::xml

// XML 1.0 parser producing the navsep::xml DOM.
//
// Coverage: prolog (XML declaration, comments, PIs, DOCTYPE is skipped),
// elements, attributes, namespaces (xmlns declarations resolved during the
// parse), character data, CDATA sections, predefined entities and numeric
// character references (emitted as UTF-8). Well-formedness violations —
// mismatched tags, duplicate attributes, stray content after the root,
// bad entity syntax — raise navsep::ParseError with a 1-based line:column.
//
// Not covered (documented subset): external DTDs and user-defined
// entities, xml:space handling, encodings other than UTF-8/ASCII.
#pragma once

#include <memory>
#include <string_view>

#include "xml/dom.hpp"

namespace navsep::xml {

struct ParseOptions {
  /// Drop text nodes consisting purely of whitespace between elements.
  /// Data-oriented documents (everything in this project) want `true`;
  /// mixed-content documents want `false`.
  bool strip_insignificant_whitespace = true;

  /// Base URI recorded on the resulting document (used later to resolve
  /// relative XLink hrefs).
  std::string base_uri;
};

/// Parse a complete XML document. Throws navsep::ParseError.
[[nodiscard]] std::unique_ptr<Document> parse(std::string_view text,
                                              const ParseOptions& options = {});

/// Parse a document and return nullptr instead of throwing.
[[nodiscard]] std::unique_ptr<Document> try_parse(
    std::string_view text, const ParseOptions& options = {}) noexcept;

}  // namespace navsep::xml

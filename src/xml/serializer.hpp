// Serialization of the navsep::xml DOM back to markup.
//
// Two modes:
//  * compact  — no added whitespace; parse(serialize(doc)) reproduces the
//               tree exactly (round-trip property tested in xml_test).
//  * pretty   — children indented, data-oriented layout (text-only elements
//               stay on one line).
#pragma once

#include <string>

#include "xml/dom.hpp"

namespace navsep::xml {

struct WriteOptions {
  bool pretty = false;
  /// Indentation unit for pretty mode.
  std::string indent = "  ";
  /// Emit the `<?xml version="1.0" encoding="UTF-8"?>` declaration.
  bool declaration = true;
};

/// Serialize a whole document.
[[nodiscard]] std::string write(const Document& doc,
                                const WriteOptions& options = {});

/// Serialize a single element subtree (no declaration).
[[nodiscard]] std::string write(const Element& element,
                                const WriteOptions& options = {});

/// Escape character data (&, <, >).
[[nodiscard]] std::string escape_text(std::string_view s);

/// Escape an attribute value (&, <, ", and control whitespace).
[[nodiscard]] std::string escape_attribute(std::string_view s);

}  // namespace navsep::xml

#include "xml/dom.hpp"

#include <algorithm>

namespace navsep::xml {

// --- Node -----------------------------------------------------------------

const Element* Node::as_element() const noexcept {
  return type_ == NodeType::Element ? static_cast<const Element*>(this)
                                    : nullptr;
}

Element* Node::as_element() noexcept {
  return type_ == NodeType::Element ? static_cast<Element*>(this) : nullptr;
}

const Document* Node::owner_document() const noexcept {
  const Node* n = this;
  while (n->parent_ != nullptr) n = n->parent_;
  return n->type_ == NodeType::Document ? static_cast<const Document*>(n)
                                        : nullptr;
}

namespace {
void collect_text(const Node& node, std::string& out) {
  switch (node.type()) {
    case NodeType::Text:
      out += static_cast<const Text&>(node).data();
      break;
    case NodeType::Element:
      for (const auto& child : static_cast<const Element&>(node).children()) {
        collect_text(*child, out);
      }
      break;
    case NodeType::Document:
      for (const auto& child :
           static_cast<const Document&>(node).children()) {
        collect_text(*child, out);
      }
      break;
    case NodeType::Comment:
    case NodeType::ProcessingInstruction:
    case NodeType::Attribute:
      break;
  }
}
}  // namespace

std::string Node::string_value() const {
  switch (type_) {
    case NodeType::Text:
      return static_cast<const Text*>(this)->data();
    case NodeType::Comment:
      return static_cast<const Comment*>(this)->data();
    case NodeType::ProcessingInstruction:
      return static_cast<const ProcessingInstruction*>(this)->data();
    case NodeType::Attribute:
      return static_cast<const AttrNode*>(this)->value();
    case NodeType::Element:
    case NodeType::Document: {
      std::string out;
      collect_text(*this, out);
      return out;
    }
  }
  return {};
}

// --- AttrNode ---------------------------------------------------------------

AttrNode::AttrNode(const Element& owner, std::size_t index) noexcept
    : Node(NodeType::Attribute), owner_(&owner), index_(index) {
  parent_ = const_cast<Element*>(&owner);
}

const QName& AttrNode::name() const noexcept {
  return owner_->attributes()[index_].name;
}

const std::string& AttrNode::value() const noexcept {
  return owner_->attributes()[index_].value;
}

std::size_t Node::sibling_index() const noexcept {
  if (parent_ == nullptr) return static_cast<std::size_t>(-1);
  const std::vector<std::unique_ptr<Node>>* siblings = nullptr;
  if (const Element* e = parent_->as_element()) {
    siblings = &e->children();
  } else if (parent_->type() == NodeType::Document) {
    siblings = &static_cast<const Document*>(parent_)->children();
  }
  if (siblings == nullptr) return static_cast<std::size_t>(-1);
  for (std::size_t i = 0; i < siblings->size(); ++i) {
    if ((*siblings)[i].get() == this) return i;
  }
  return static_cast<std::size_t>(-1);
}

bool Node::contains(const Node& other) const noexcept {
  for (const Node* n = &other; n != nullptr; n = n->parent()) {
    if (n == this) return true;
  }
  return false;
}

// --- Element ----------------------------------------------------------------

std::optional<std::string_view> Element::attribute(
    std::string_view qualified_name) const noexcept {
  for (const auto& a : attrs_) {
    if (a.name.qualified() == qualified_name) return std::string_view(a.value);
  }
  return std::nullopt;
}

std::optional<std::string_view> Element::attribute_ns(
    std::string_view ns_uri, std::string_view local) const noexcept {
  for (const auto& a : attrs_) {
    if (a.name.ns_uri == ns_uri && a.name.local == local) {
      return std::string_view(a.value);
    }
  }
  return std::nullopt;
}

std::string Element::attribute_or(std::string_view qualified_name,
                                  std::string_view fallback) const {
  auto v = attribute(qualified_name);
  return std::string(v.value_or(fallback));
}

Element& Element::set_attribute(std::string_view qualified_name,
                                std::string_view value) {
  for (auto& a : attrs_) {
    if (a.name.qualified() == qualified_name) {
      a.value = std::string(value);
      return *this;
    }
  }
  QName name;
  std::size_t colon = qualified_name.find(':');
  if (colon == std::string_view::npos) {
    name.local = std::string(qualified_name);
  } else {
    name.prefix = std::string(qualified_name.substr(0, colon));
    name.local = std::string(qualified_name.substr(colon + 1));
  }
  attrs_.push_back(Attribute{std::move(name), std::string(value)});
  return *this;
}

Element& Element::set_attribute_ns(QName name, std::string_view value) {
  for (auto& a : attrs_) {
    if (a.name.ns_uri == name.ns_uri && a.name.local == name.local) {
      a.value = std::string(value);
      return *this;
    }
  }
  attrs_.push_back(Attribute{std::move(name), std::string(value)});
  return *this;
}

void Element::remove_attribute(std::string_view qualified_name) {
  std::erase_if(attrs_, [&](const Attribute& a) {
    return a.name.qualified() == qualified_name;
  });
}

Node& Element::append(std::unique_ptr<Node> child) {
  child->parent_ = this;
  children_.push_back(std::move(child));
  return *children_.back();
}

Element& Element::append_element(QName name) {
  return static_cast<Element&>(
      append(std::make_unique<Element>(std::move(name))));
}

Text& Element::append_text(std::string_view data) {
  return static_cast<Text&>(
      append(std::make_unique<Text>(std::string(data))));
}

Comment& Element::append_comment(std::string_view data) {
  return static_cast<Comment&>(
      append(std::make_unique<Comment>(std::string(data))));
}

Node& Element::insert(std::size_t index, std::unique_ptr<Node> child) {
  child->parent_ = this;
  index = std::min(index, children_.size());
  auto it = children_.insert(
      children_.begin() + static_cast<std::ptrdiff_t>(index),
      std::move(child));
  return **it;
}

std::unique_ptr<Node> Element::remove_child(std::size_t index) {
  auto it = children_.begin() + static_cast<std::ptrdiff_t>(index);
  std::unique_ptr<Node> out = std::move(*it);
  children_.erase(it);
  out->parent_ = nullptr;
  return out;
}

const Element* Element::first_child_element() const noexcept {
  for (const auto& c : children_) {
    if (const Element* e = c->as_element()) return e;
  }
  return nullptr;
}

const Element* Element::child(std::string_view local_name) const noexcept {
  for (const auto& c : children_) {
    if (const Element* e = c->as_element()) {
      if (e->name().local == local_name) return e;
    }
  }
  return nullptr;
}

Element* Element::child(std::string_view local_name) noexcept {
  return const_cast<Element*>(
      static_cast<const Element*>(this)->child(local_name));
}

std::vector<const Element*> Element::children_named(
    std::string_view local_name) const {
  std::vector<const Element*> out;
  for (const auto& c : children_) {
    if (const Element* e = c->as_element()) {
      if (e->name().local == local_name) out.push_back(e);
    }
  }
  return out;
}

std::vector<const Element*> Element::child_elements() const {
  std::vector<const Element*> out;
  for (const auto& c : children_) {
    if (const Element* e = c->as_element()) out.push_back(e);
  }
  return out;
}

std::string Element::own_text() const {
  std::string out;
  for (const auto& c : children_) {
    if (c->is_text()) out += static_cast<const Text&>(*c).data();
  }
  return out;
}

std::optional<std::string> Element::resolve_prefix(
    std::string_view prefix) const {
  if (prefix == "xml") return "http://www.w3.org/XML/1998/namespace";
  if (prefix == "xmlns") return "http://www.w3.org/2000/xmlns/";
  for (const Node* n = this; n != nullptr; n = n->parent()) {
    const Element* e = n->as_element();
    if (e == nullptr) break;
    for (const auto& a : e->attributes()) {
      if (prefix.empty()) {
        if (a.name.prefix.empty() && a.name.local == "xmlns") return a.value;
      } else {
        if (a.name.prefix == "xmlns" && a.name.local == prefix) {
          return a.value;
        }
      }
    }
  }
  if (prefix.empty()) return "";  // no default namespace declared
  return std::nullopt;
}

void Element::walk(const std::function<void(const Element&)>& fn) const {
  fn(*this);
  for (const auto& c : children_) {
    if (const Element* e = c->as_element()) e->walk(fn);
  }
}

void Element::walk(const std::function<void(Element&)>& fn) {
  fn(*this);
  for (auto& c : children_) {
    if (Element* e = c->as_element()) e->walk(fn);
  }
}

namespace {
std::unique_ptr<Node> clone_node(const Node& node) {
  switch (node.type()) {
    case NodeType::Text:
      return std::make_unique<Text>(static_cast<const Text&>(node).data());
    case NodeType::Comment:
      return std::make_unique<Comment>(
          static_cast<const Comment&>(node).data());
    case NodeType::ProcessingInstruction: {
      const auto& pi = static_cast<const ProcessingInstruction&>(node);
      return std::make_unique<ProcessingInstruction>(pi.target(), pi.data());
    }
    case NodeType::Element:
      return static_cast<const Element&>(node).clone();
    case NodeType::Document:
      return static_cast<const Document&>(node).clone();
    case NodeType::Attribute:
      break;  // attribute views are never tree children
  }
  return nullptr;
}
}  // namespace

std::unique_ptr<Element> Element::clone() const {
  auto out = std::make_unique<Element>(name_);
  out->attrs_ = attrs_;
  for (const auto& c : children_) {
    out->append(clone_node(*c));
  }
  return out;
}

const AttrNode* Element::attribute_node(std::size_t index) const {
  if (index >= attrs_.size()) return nullptr;
  if (attr_nodes_.size() < attrs_.size()) {
    attr_nodes_.resize(attrs_.size());
  }
  if (!attr_nodes_[index]) {
    attr_nodes_[index] = std::make_unique<AttrNode>(*this, index);
  }
  return attr_nodes_[index].get();
}

// --- Document ---------------------------------------------------------------

const Element* Document::root() const noexcept {
  for (const auto& c : children_) {
    if (const Element* e = c->as_element()) return e;
  }
  return nullptr;
}

Element* Document::root() noexcept {
  return const_cast<Element*>(
      static_cast<const Document*>(this)->root());
}

Element& Document::set_root(std::unique_ptr<Element> new_root) {
  std::erase_if(children_,
                [](const std::unique_ptr<Node>& n) { return n->is_element(); });
  new_root->parent_ = this;
  children_.push_back(std::move(new_root));
  return *children_.back()->as_element();
}

void Document::append_prolog(std::unique_ptr<Node> node) {
  node->parent_ = this;
  children_.push_back(std::move(node));
}

const Element* Document::element_by_id(std::string_view id) const {
  const Element* found = nullptr;
  if (const Element* r = root()) {
    r->walk([&](const Element& e) {
      if (found != nullptr) return;
      auto plain = e.attribute("id");
      auto xml_id = e.attribute("xml:id");
      if ((plain && *plain == id) || (xml_id && *xml_id == id)) {
        found = &e;
      }
    });
  }
  return found;
}

std::unique_ptr<Document> Document::clone() const {
  auto out = std::make_unique<Document>();
  out->base_uri_ = base_uri_;
  for (const auto& c : children_) {
    out->append_prolog(clone_node(*c));
  }
  return out;
}

// --- document order ----------------------------------------------------------

namespace {
/// Path encoding a node's pre-order position. Child steps are encoded as
/// sibling_index + 1 and attribute steps as the pair (0, attr_index), which
/// places attributes after their element (longer path) but before every
/// child subtree (0 < any child step).
std::vector<std::size_t> order_path(const Node& n) {
  std::vector<std::size_t> path;
  const Node* cur = &n;
  if (cur->type() == NodeType::Attribute) {
    const auto& attr = static_cast<const AttrNode&>(n);
    path.push_back(attr.index());
    path.push_back(0);
    cur = cur->parent();
  }
  while (cur->parent() != nullptr) {
    path.push_back(cur->sibling_index() + 1);
    cur = cur->parent();
  }
  std::reverse(path.begin(), path.end());
  return path;
}
}  // namespace

bool before_in_document_order(const Node& a, const Node& b) {
  if (&a == &b) return false;
  const Document* da = a.owner_document();
  const Document* db = b.owner_document();
  if (da != db) return da < db;
  return order_path(a) < order_path(b);
}

void sort_document_order(std::vector<const Node*>& nodes) {
  std::sort(nodes.begin(), nodes.end(), [](const Node* a, const Node* b) {
    return before_in_document_order(*a, *b);
  });
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
}

}  // namespace navsep::xml

// A compact XML 1.0 DOM.
//
// Ownership model: a Document owns its whole node tree through
// std::unique_ptr children vectors; parent pointers are non-owning. Node
// identity is pointer identity — XPath node-sets are vectors of
// `const Node*` into a live Document. Nodes are created through the
// factory methods on Element/Document so that parent links stay correct.
//
// Namespaces: elements and attributes carry a QName whose `ns_uri` was
// resolved at parse time (or set explicitly when building trees in code).
// The special `xmlns` / `xmlns:*` attributes remain visible in the
// attribute list so serialization round-trips.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace navsep::xml {

class Element;
class Document;

enum class NodeType : std::uint8_t {
  Document,
  Element,
  Text,
  Comment,
  ProcessingInstruction,
  Attribute,  // handed out by Element::attribute_node, never in the tree
};

/// Qualified name: optional prefix, local part, resolved namespace URI.
struct QName {
  std::string prefix;  // "" when unprefixed
  std::string local;
  std::string ns_uri;  // "" when in no namespace

  QName() = default;
  explicit QName(std::string local_part) : local(std::move(local_part)) {}
  QName(std::string prefix_part, std::string local_part, std::string uri)
      : prefix(std::move(prefix_part)),
        local(std::move(local_part)),
        ns_uri(std::move(uri)) {}

  /// The lexical form: "prefix:local" or plain "local".
  [[nodiscard]] std::string qualified() const {
    return prefix.empty() ? local : prefix + ":" + local;
  }

  friend bool operator==(const QName&, const QName&) = default;
};

struct Attribute {
  QName name;
  std::string value;

  /// True for namespace declarations (xmlns or xmlns:prefix).
  [[nodiscard]] bool is_namespace_decl() const noexcept {
    return name.prefix == "xmlns" ||
           (name.prefix.empty() && name.local == "xmlns");
  }
};

/// Base of the node hierarchy.
class Node {
 public:
  explicit Node(NodeType t) noexcept : type_(t) {}
  virtual ~Node() = default;

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  [[nodiscard]] NodeType type() const noexcept { return type_; }
  [[nodiscard]] Node* parent() const noexcept { return parent_; }

  [[nodiscard]] bool is_element() const noexcept {
    return type_ == NodeType::Element;
  }
  [[nodiscard]] bool is_text() const noexcept {
    return type_ == NodeType::Text;
  }

  /// Downcasts; return nullptr when the node has a different type.
  [[nodiscard]] const Element* as_element() const noexcept;
  [[nodiscard]] Element* as_element() noexcept;

  /// The document this node belongs to (walks to the root). Null for a
  /// detached subtree that has not been adopted by a Document yet.
  [[nodiscard]] const Document* owner_document() const noexcept;

  /// XPath string-value of the node (concatenated descendant text for
  /// elements/documents, data for text/comment/PI nodes).
  [[nodiscard]] std::string string_value() const;

  /// Zero-based index among the parent's children, or npos for roots.
  [[nodiscard]] std::size_t sibling_index() const noexcept;

  /// True if `other` is this node or one of its descendants.
  [[nodiscard]] bool contains(const Node& other) const noexcept;

 private:
  friend class Element;
  friend class Document;
  friend class AttrNode;
  NodeType type_;
  Node* parent_ = nullptr;
};

/// Character data node (text or CDATA content, already unescaped).
class Text final : public Node {
 public:
  explicit Text(std::string data)
      : Node(NodeType::Text), data_(std::move(data)) {}

  [[nodiscard]] const std::string& data() const noexcept { return data_; }
  void set_data(std::string d) { data_ = std::move(d); }
  void append_data(std::string_view d) { data_.append(d); }

 private:
  std::string data_;
};

class Comment final : public Node {
 public:
  explicit Comment(std::string data)
      : Node(NodeType::Comment), data_(std::move(data)) {}
  [[nodiscard]] const std::string& data() const noexcept { return data_; }

 private:
  std::string data_;
};

class ProcessingInstruction final : public Node {
 public:
  ProcessingInstruction(std::string target, std::string data)
      : Node(NodeType::ProcessingInstruction),
        target_(std::move(target)),
        data_(std::move(data)) {}
  [[nodiscard]] const std::string& target() const noexcept { return target_; }
  [[nodiscard]] const std::string& data() const noexcept { return data_; }

 private:
  std::string target_;
  std::string data_;
};

/// A live view of one attribute of an element, usable inside XPath
/// node-sets. AttrNodes are created lazily by Element::attribute_node and
/// owned by the element; they read the attribute on demand, so they stay
/// current across value changes, but removing attributes invalidates them.
class AttrNode final : public Node {
 public:
  AttrNode(const Element& owner, std::size_t index) noexcept;

  [[nodiscard]] const Element& owner() const noexcept { return *owner_; }
  [[nodiscard]] std::size_t index() const noexcept { return index_; }
  [[nodiscard]] const QName& name() const noexcept;
  [[nodiscard]] const std::string& value() const noexcept;

 private:
  const Element* owner_;
  std::size_t index_;
};

class Element final : public Node {
 public:
  explicit Element(QName name)
      : Node(NodeType::Element), name_(std::move(name)) {}

  [[nodiscard]] const QName& name() const noexcept { return name_; }
  void set_name(QName n) { name_ = std::move(n); }

  // --- attributes -------------------------------------------------------

  [[nodiscard]] const std::vector<Attribute>& attributes() const noexcept {
    return attrs_;
  }

  /// Value of the attribute with the given lexical (qualified) name.
  [[nodiscard]] std::optional<std::string_view> attribute(
      std::string_view qualified_name) const noexcept;

  /// Value of the attribute with the given namespace URI + local name.
  [[nodiscard]] std::optional<std::string_view> attribute_ns(
      std::string_view ns_uri, std::string_view local) const noexcept;

  /// Attribute value or a fallback.
  [[nodiscard]] std::string attribute_or(std::string_view qualified_name,
                                         std::string_view fallback) const;

  [[nodiscard]] bool has_attribute(std::string_view qualified_name) const
      noexcept {
    return attribute(qualified_name).has_value();
  }

  /// Sets (replacing if present) an attribute by lexical name. The name is
  /// not namespace-resolved; use set_attribute_ns for namespaced attributes.
  Element& set_attribute(std::string_view qualified_name,
                         std::string_view value);
  Element& set_attribute_ns(QName name, std::string_view value);
  void remove_attribute(std::string_view qualified_name);

  // --- children ---------------------------------------------------------

  [[nodiscard]] const std::vector<std::unique_ptr<Node>>& children() const
      noexcept {
    return children_;
  }
  [[nodiscard]] bool empty() const noexcept { return children_.empty(); }

  /// Appends a child (adopting it) and returns a reference to it.
  Node& append(std::unique_ptr<Node> child);

  /// Convenience factories; each returns the newly created node.
  Element& append_element(QName name);
  Element& append_element(std::string_view local_name) {
    return append_element(QName(std::string(local_name)));
  }
  Text& append_text(std::string_view data);
  Comment& append_comment(std::string_view data);

  /// Inserts a child at `index` (clamped to the child count).
  Node& insert(std::size_t index, std::unique_ptr<Node> child);

  /// Detaches and returns the child at `index`.
  std::unique_ptr<Node> remove_child(std::size_t index);

  /// Removes every child.
  void clear_children() noexcept { children_.clear(); }

  /// First/all child elements, optionally filtered by local name
  /// (namespace-blind; use child_ns for namespace-aware lookup).
  [[nodiscard]] const Element* first_child_element() const noexcept;
  [[nodiscard]] const Element* child(std::string_view local_name) const
      noexcept;
  [[nodiscard]] Element* child(std::string_view local_name) noexcept;
  [[nodiscard]] std::vector<const Element*> children_named(
      std::string_view local_name) const;
  [[nodiscard]] std::vector<const Element*> child_elements() const;

  /// Concatenated text of *direct* text children only.
  [[nodiscard]] std::string own_text() const;

  /// Resolve a namespace prefix by scanning xmlns declarations from this
  /// element up through its ancestors. Empty prefix resolves the default
  /// namespace. Returns nullopt for undeclared prefixes ("xml" is built in).
  [[nodiscard]] std::optional<std::string> resolve_prefix(
      std::string_view prefix) const;

  /// Depth-first pre-order walk over this element and its descendants.
  void walk(const std::function<void(const Element&)>& fn) const;
  void walk(const std::function<void(Element&)>& fn);

  /// Deep copy of this element and its subtree.
  [[nodiscard]] std::unique_ptr<Element> clone() const;

  /// Lazily created node view of the attribute at `index` (for XPath
  /// node-sets). Valid while the element lives and no attribute is removed.
  [[nodiscard]] const AttrNode* attribute_node(std::size_t index) const;

 private:
  QName name_;
  std::vector<Attribute> attrs_;
  std::vector<std::unique_ptr<Node>> children_;
  mutable std::vector<std::unique_ptr<AttrNode>> attr_nodes_;
};

class Document final : public Node {
 public:
  Document() : Node(NodeType::Document) {}

  /// The single root (document) element; null for an empty document.
  [[nodiscard]] const Element* root() const noexcept;
  [[nodiscard]] Element* root() noexcept;

  /// Replaces the root element.
  Element& set_root(std::unique_ptr<Element> root);
  Element& set_root(QName name) {
    return set_root(std::make_unique<Element>(std::move(name)));
  }

  [[nodiscard]] const std::vector<std::unique_ptr<Node>>& children() const
      noexcept {
    return children_;
  }

  /// Prolog/epilog comments and processing instructions.
  void append_prolog(std::unique_ptr<Node> node);

  /// The URI this document was loaded from (used as the base for relative
  /// XLink hrefs).
  [[nodiscard]] const std::string& base_uri() const noexcept {
    return base_uri_;
  }
  void set_base_uri(std::string uri) { base_uri_ = std::move(uri); }

  /// Find the unique element with the given `id` or `xml:id` attribute
  /// value (XPointer shorthand target). Linear scan; null when absent.
  [[nodiscard]] const Element* element_by_id(std::string_view id) const;

  /// Deep copy.
  [[nodiscard]] std::unique_ptr<Document> clone() const;

 private:
  friend class Node;
  std::vector<std::unique_ptr<Node>> children_;
  std::string base_uri_;
};

/// Total order over nodes of one document: document order (pre-order
/// position). Nodes from different documents compare by document pointer.
[[nodiscard]] bool before_in_document_order(const Node& a, const Node& b);

/// Sorts a node-set into document order and removes duplicates.
void sort_document_order(std::vector<const Node*>& nodes);

}  // namespace navsep::xml

#include "xml/sax.hpp"

#include <deque>
#include <string>

#include "common/strings.hpp"
#include "common/text_cursor.hpp"

namespace navsep::xml::sax {

namespace {

bool is_name_start(char c) noexcept {
  return strings::is_alpha(c) || c == '_' || c == ':' ||
         static_cast<unsigned char>(c) >= 0x80;
}

bool is_name_char(char c) noexcept {
  return is_name_start(c) || strings::is_digit(c) || c == '-' || c == '.';
}

void append_utf8(std::string& out, std::uint32_t cp) {
  if (cp < 0x80) {
    out.push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp < 0x10000) {
    out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
}

class StreamParser {
 public:
  StreamParser(std::string_view text, Handler& handler)
      : cur_(text), handler_(handler) {}

  void run() {
    handler_.start_document();
    cur_.consume("\xEF\xBB\xBF");
    if (cur_.consume("<?xml")) {
      cur_.take_until("?>");
      cur_.consume("?>");
    }
    prolog_misc();
    if (cur_.eof() || cur_.peek() != '<') cur_.fail("expected root element");
    parse_element();
    while (!cur_.eof()) {
      cur_.skip_ws();
      if (cur_.eof()) break;
      if (cur_.consume("<!--")) {
        handler_.comment(comment_body());
      } else if (cur_.consume("<?")) {
        pi_body();
      } else {
        cur_.fail("content after document root");
      }
    }
    handler_.end_document();
  }

 private:
  void prolog_misc() {
    for (;;) {
      cur_.skip_ws();
      if (cur_.consume("<!--")) {
        handler_.comment(comment_body());
      } else if (cur_.rest().substr(0, 9) == "<!DOCTYPE") {
        cur_.advance(9);
        int depth = 1;
        while (depth > 0) {
          if (cur_.eof()) cur_.fail("unterminated DOCTYPE");
          char c = cur_.next();
          if (c == '<') ++depth;
          if (c == '>') --depth;
        }
      } else if (cur_.peek() == '<' && cur_.peek(1) == '?') {
        cur_.advance(2);
        pi_body();
      } else {
        return;
      }
    }
  }

  std::string_view name() {
    if (!is_name_start(cur_.peek())) cur_.fail("expected name");
    return cur_.take_while(is_name_char);
  }

  std::string reference() {
    std::string out;
    if (cur_.consume('#')) {
      std::uint32_t cp = 0;
      if (cur_.consume('x') || cur_.consume('X')) {
        std::string_view digits = cur_.take_while([](char c) {
          return strings::is_digit(c) || (c >= 'a' && c <= 'f') ||
                 (c >= 'A' && c <= 'F');
        });
        if (digits.empty()) cur_.fail("bad character reference");
        for (char d : digits) {
          cp = cp * 16 + static_cast<std::uint32_t>(
                             strings::is_digit(d) ? d - '0'
                             : d >= 'a'           ? d - 'a' + 10
                                                  : d - 'A' + 10);
        }
      } else {
        std::string_view digits = cur_.take_while(strings::is_digit);
        if (digits.empty()) cur_.fail("bad character reference");
        for (char d : digits) cp = cp * 10 + static_cast<std::uint32_t>(d - '0');
      }
      cur_.expect(";", "';'");
      append_utf8(out, cp);
      return out;
    }
    std::string_view n = cur_.take_while(is_name_char);
    cur_.expect(";", "';'");
    if (n == "lt") return "<";
    if (n == "gt") return ">";
    if (n == "amp") return "&";
    if (n == "apos") return "'";
    if (n == "quot") return "\"";
    cur_.fail("unknown entity '&" + std::string(n) + ";'");
  }

  std::string_view attribute_value() {
    char quote = cur_.peek();
    if (quote != '"' && quote != '\'') cur_.fail("expected quoted value");
    cur_.advance();
    // Fast path: no references or normalization-needing characters — the
    // value is a view into the input.
    std::size_t start = cur_.offset();
    bool plain = true;
    while (!cur_.eof()) {
      char c = cur_.peek();
      if (c == quote) break;
      if (c == '&' || c == '\t' || c == '\n' || c == '\r') {
        plain = false;
        break;
      }
      if (c == '<') cur_.fail("'<' in attribute value");
      cur_.advance();
    }
    if (plain) {
      std::string_view out =
          cur_.input().substr(start, cur_.offset() - start);
      cur_.expect(std::string_view(&quote, 1), "closing quote");
      return out;
    }
    // Slow path: build into the scratch buffer (stable for the callback).
    scratch_.emplace_back(cur_.input().substr(start, cur_.offset() - start));
    std::string& buf = scratch_.back();
    for (;;) {
      if (cur_.eof()) cur_.fail("unterminated attribute value");
      char c = cur_.peek();
      if (c == quote) {
        cur_.advance();
        return buf;
      }
      if (c == '<') cur_.fail("'<' in attribute value");
      cur_.advance();
      if (c == '&') {
        buf += reference();
      } else if (c == '\t' || c == '\n' || c == '\r') {
        buf.push_back(' ');
      } else {
        buf.push_back(c);
      }
    }
  }

  void parse_element() {
    Position open_pos = cur_.position();
    cur_.expect("<", "'<'");
    std::string_view tag = name();

    attrs_.clear();
    scratch_.clear();
    for (;;) {
      bool had_ws = cur_.skip_ws();
      char c = cur_.peek();
      if (c == '>' || c == '/') break;
      if (!had_ws) cur_.fail("expected whitespace before attribute");
      std::string_view attr_name = name();
      for (const auto& [existing, _] : attrs_) {
        if (existing == attr_name) {
          throw ParseError("duplicate attribute '" + std::string(attr_name) +
                               "'",
                           cur_.position());
        }
      }
      cur_.skip_ws();
      cur_.expect("=", "'='");
      cur_.skip_ws();
      attrs_.emplace_back(attr_name, attribute_value());
    }

    handler_.start_element(tag, attrs_);

    if (cur_.consume("/>")) {
      handler_.end_element(tag);
      return;
    }
    cur_.expect(">", "'>'");
    parse_content(tag, open_pos);
  }

  void parse_content(std::string_view tag, Position open_pos) {
    for (;;) {
      if (cur_.eof()) cur_.fail("unexpected end of input inside element");
      char c = cur_.peek();
      if (c == '<') {
        if (cur_.consume("</")) {
          std::string_view close = name();
          if (close != tag) {
            throw ParseError("mismatched end tag </" + std::string(close) +
                                 ">, expected </" + std::string(tag) + ">",
                             open_pos);
          }
          cur_.skip_ws();
          cur_.expect(">", "'>'");
          handler_.end_element(tag);
          return;
        }
        if (cur_.consume("<!--")) {
          handler_.comment(comment_body());
          continue;
        }
        if (cur_.consume("<![CDATA[")) {
          handler_.characters(cur_.take_until("]]>"));
          cur_.consume("]]>");
          continue;
        }
        if (cur_.peek(1) == '?') {
          cur_.advance(2);
          pi_body();
          continue;
        }
        parse_element();
        continue;
      }
      // Character run up to the next markup or reference.
      std::size_t start = cur_.offset();
      while (!cur_.eof() && cur_.peek() != '<' && cur_.peek() != '&') {
        cur_.advance();
      }
      if (cur_.offset() > start) {
        handler_.characters(
            cur_.input().substr(start, cur_.offset() - start));
      }
      if (cur_.peek() == '&') {
        cur_.advance();
        std::string expanded = reference();
        handler_.characters(expanded);
      }
    }
  }

  std::string_view comment_body() {
    std::string_view body = cur_.take_until("--");
    if (!cur_.consume("-->")) cur_.fail("'--' not allowed inside comment");
    return body;
  }

  void pi_body() {
    std::string_view target = name();
    if (strings::to_lower(target) == "xml") {
      cur_.fail("reserved processing-instruction target 'xml'");
    }
    cur_.skip_ws();
    std::string_view data = cur_.take_until("?>");
    cur_.consume("?>");
    handler_.processing_instruction(target, data);
  }

  TextCursor cur_;
  Handler& handler_;
  AttributeList attrs_;
  // Expanded attribute values need addresses that survive further
  // pushes while the same start tag is parsed; deque keeps them stable.
  std::deque<std::string> scratch_;
};

}  // namespace

void parse(std::string_view text, Handler& handler) {
  StreamParser(text, handler).run();
}

bool is_well_formed(std::string_view text) noexcept {
  try {
    Handler sink;
    parse(text, sink);
    return true;
  } catch (const Error&) {
    return false;
  }
}

}  // namespace navsep::xml::sax

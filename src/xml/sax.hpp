// Streaming (SAX-style) XML parsing: the non-allocating path.
//
// The DOM parser (parser.hpp) builds a full tree; large data documents —
// the synthetic museum at scale — often only need a single pass (counting,
// extracting ids, validation). This interface delivers events to a Handler
// without constructing nodes. Coverage matches the DOM parser (namespaces
// are NOT resolved here; callers see lexical QNames).
//
//   struct CountPaintings : xml::sax::Handler {
//     std::size_t n = 0;
//     void start_element(std::string_view name, const AttributeList& a)
//         override { if (name == "painting") ++n; }
//   };
#pragma once

#include <string_view>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace navsep::xml::sax {

/// Attribute (lexical-name, unescaped-value) pairs for one start tag.
/// Views are valid only during the callback.
using AttributeList =
    std::vector<std::pair<std::string_view, std::string_view>>;

/// Event receiver; override what you need. Default implementations ignore
/// the event.
class Handler {
 public:
  virtual ~Handler() = default;
  virtual void start_document() {}
  virtual void end_document() {}
  /// `name` is the lexical QName. Attribute values are the *unescaped*
  /// text when no entity expansion was needed; values containing
  /// references are delivered via the `expanded` storage (still a view,
  /// valid for the callback's duration).
  virtual void start_element(std::string_view name,
                             const AttributeList& attributes) {
    (void)name;
    (void)attributes;
  }
  virtual void end_element(std::string_view name) { (void)name; }
  /// Raw character data between markup. Entity references are delivered
  /// as separate characters() calls with the expanded text.
  virtual void characters(std::string_view text) { (void)text; }
  virtual void comment(std::string_view text) { (void)text; }
  virtual void processing_instruction(std::string_view target,
                                      std::string_view data) {
    (void)target;
    (void)data;
  }
};

/// Parse `text`, delivering events to `handler`. Throws navsep::ParseError
/// on malformed input (same well-formedness rules as the DOM parser).
void parse(std::string_view text, Handler& handler);

/// Convenience handlers -------------------------------------------------------

/// Counts events; doubles as a whole-document well-formedness check.
class CountingHandler final : public Handler {
 public:
  std::size_t elements = 0;
  std::size_t attributes = 0;
  std::size_t text_bytes = 0;
  std::size_t comments = 0;
  std::size_t pis = 0;

  void start_element(std::string_view,
                     const AttributeList& attrs) override {
    ++elements;
    attributes += attrs.size();
  }
  void characters(std::string_view t) override { text_bytes += t.size(); }
  void comment(std::string_view) override { ++comments; }
  void processing_instruction(std::string_view, std::string_view) override {
    ++pis;
  }
};

/// True iff `text` parses without error (streaming well-formedness check).
[[nodiscard]] bool is_well_formed(std::string_view text) noexcept;

}  // namespace navsep::xml::sax

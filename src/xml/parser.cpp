#include "xml/parser.hpp"

#include <vector>

#include "common/strings.hpp"
#include "common/text_cursor.hpp"

namespace navsep::xml {

namespace {

bool is_name_start(char c) noexcept {
  return strings::is_alpha(c) || c == '_' || c == ':' ||
         static_cast<unsigned char>(c) >= 0x80;
}

bool is_name_char(char c) noexcept {
  return is_name_start(c) || strings::is_digit(c) || c == '-' || c == '.';
}

/// Encode a Unicode code point as UTF-8.
void append_utf8(std::string& out, std::uint32_t cp) {
  if (cp < 0x80) {
    out.push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp < 0x10000) {
    out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
}

/// One in-scope namespace declaration.
struct NsBinding {
  std::string prefix;  // "" = default namespace
  std::string uri;
};

class Parser {
 public:
  Parser(std::string_view text, const ParseOptions& options)
      : cur_(text), options_(options) {}

  std::unique_ptr<Document> run() {
    auto doc = std::make_unique<Document>();
    doc->set_base_uri(options_.base_uri);

    skip_bom();
    parse_prolog(*doc);

    if (cur_.eof() || cur_.peek() != '<') {
      cur_.fail("expected root element");
    }
    doc->set_root(parse_element());

    // Epilog: only whitespace, comments and PIs may follow the root.
    while (!cur_.eof()) {
      cur_.skip_ws();
      if (cur_.eof()) break;
      if (cur_.consume("<!--")) {
        parse_comment_body();
      } else if (cur_.consume("<?")) {
        parse_pi_body();
      } else {
        cur_.fail("content after document root");
      }
    }
    return doc;
  }

 private:
  void skip_bom() { cur_.consume("\xEF\xBB\xBF"); }

  void parse_prolog(Document& doc) {
    if (cur_.consume("<?xml")) {
      // Declaration content is validated loosely and otherwise ignored.
      cur_.take_until("?>");
      cur_.consume("?>");
    }
    for (;;) {
      cur_.skip_ws();
      if (cur_.consume("<!--")) {
        doc.append_prolog(
            std::make_unique<Comment>(std::string(parse_comment_body())));
      } else if (cur_.rest().substr(0, 9) == "<!DOCTYPE") {
        skip_doctype();
      } else if (cur_.peek() == '<' && cur_.peek(1) == '?') {
        cur_.advance(2);
        auto [target, data] = parse_pi_body();
        doc.append_prolog(std::make_unique<ProcessingInstruction>(
            std::string(target), std::string(data)));
      } else {
        return;
      }
    }
  }

  void skip_doctype() {
    cur_.advance(9);  // "<!DOCTYPE"
    int depth = 1;
    while (depth > 0) {
      if (cur_.eof()) cur_.fail("unterminated DOCTYPE");
      char c = cur_.next();
      if (c == '<') ++depth;
      if (c == '>') --depth;
    }
  }

  std::string_view parse_name() {
    if (!is_name_start(cur_.peek())) cur_.fail("expected name");
    return cur_.take_while(is_name_char);
  }

  /// Split a lexical QName; namespace resolution happens later.
  static std::pair<std::string_view, std::string_view> split_qname(
      std::string_view name) {
    std::size_t colon = name.find(':');
    if (colon == std::string_view::npos) return {{}, name};
    return {name.substr(0, colon), name.substr(colon + 1)};
  }

  std::string parse_reference() {
    // Caller consumed '&'.
    std::string out;
    if (cur_.consume('#')) {
      std::uint32_t cp = 0;
      if (cur_.consume('x') || cur_.consume('X')) {
        std::string_view digits = cur_.take_while([](char c) {
          return strings::is_digit(c) || (c >= 'a' && c <= 'f') ||
                 (c >= 'A' && c <= 'F');
        });
        if (digits.empty()) cur_.fail("bad hexadecimal character reference");
        for (char d : digits) {
          cp = cp * 16 + static_cast<std::uint32_t>(
                             strings::is_digit(d) ? d - '0'
                             : d >= 'a'           ? d - 'a' + 10
                                                  : d - 'A' + 10);
        }
      } else {
        std::string_view digits = cur_.take_while(strings::is_digit);
        if (digits.empty()) cur_.fail("bad decimal character reference");
        for (char d : digits) {
          cp = cp * 10 + static_cast<std::uint32_t>(d - '0');
        }
      }
      cur_.expect(";", "';' after character reference");
      append_utf8(out, cp);
      return out;
    }
    std::string_view name = cur_.take_while(is_name_char);
    cur_.expect(";", "';' after entity reference");
    if (name == "lt") return "<";
    if (name == "gt") return ">";
    if (name == "amp") return "&";
    if (name == "apos") return "'";
    if (name == "quot") return "\"";
    cur_.fail("unknown entity '&" + std::string(name) + ";'");
  }

  std::string parse_attribute_value() {
    char quote = cur_.peek();
    if (quote != '"' && quote != '\'') cur_.fail("expected quoted value");
    cur_.advance();
    std::string out;
    for (;;) {
      if (cur_.eof()) cur_.fail("unterminated attribute value");
      char c = cur_.peek();
      if (c == quote) {
        cur_.advance();
        return out;
      }
      if (c == '<') cur_.fail("'<' in attribute value");
      cur_.advance();
      if (c == '&') {
        out += parse_reference();
      } else if (c == '\t' || c == '\n' || c == '\r') {
        out.push_back(' ');  // attribute-value normalization
      } else {
        out.push_back(c);
      }
    }
  }

  std::unique_ptr<Element> parse_element() {
    Position open_pos = cur_.position();
    cur_.expect("<", "'<'");
    std::string_view raw_name = parse_name();

    // Raw attribute list; namespace decls take effect for the whole tag,
    // including the element name itself, so resolve in a second pass.
    struct RawAttr {
      std::string_view prefix;
      std::string_view local;
      std::string value;
      Position pos;
    };
    std::vector<RawAttr> raw_attrs;
    std::size_t ns_mark = ns_stack_.size();

    for (;;) {
      bool had_ws = cur_.skip_ws();
      char c = cur_.peek();
      if (c == '>' || c == '/') break;
      if (!had_ws) cur_.fail("expected whitespace before attribute");
      Position attr_pos = cur_.position();
      std::string_view attr_name = parse_name();
      cur_.skip_ws();
      cur_.expect("=", "'=' after attribute name");
      cur_.skip_ws();
      std::string value = parse_attribute_value();
      auto [prefix, local] = split_qname(attr_name);
      if (prefix == "xmlns") {
        ns_stack_.push_back(NsBinding{std::string(local), value});
      } else if (prefix.empty() && local == "xmlns") {
        ns_stack_.push_back(NsBinding{"", value});
      }
      raw_attrs.push_back(RawAttr{prefix, local, std::move(value), attr_pos});
    }

    auto [elem_prefix, elem_local] = split_qname(raw_name);
    QName name(std::string(elem_prefix), std::string(elem_local),
               lookup_ns(elem_prefix, /*is_attribute=*/false, open_pos));
    auto element = std::make_unique<Element>(std::move(name));

    for (const auto& ra : raw_attrs) {
      QName an(std::string(ra.prefix), std::string(ra.local),
               lookup_ns(ra.prefix, /*is_attribute=*/true, ra.pos));
      for (const auto& existing : element->attributes()) {
        if (existing.name.ns_uri == an.ns_uri &&
            existing.name.local == an.local &&
            existing.name.prefix == an.prefix) {
          throw ParseError("duplicate attribute '" + an.qualified() + "'",
                           ra.pos);
        }
      }
      element->set_attribute_ns(std::move(an), ra.value);
    }

    if (cur_.consume("/>")) {
      ns_stack_.resize(ns_mark);
      return element;
    }
    cur_.expect(">", "'>' to close start tag");

    parse_content(*element);

    // Closing tag.
    std::string_view close_name = parse_name();
    if (close_name != raw_name) {
      throw ParseError("mismatched end tag </" + std::string(close_name) +
                           ">, expected </" + std::string(raw_name) + ">",
                       open_pos);
    }
    cur_.skip_ws();
    cur_.expect(">", "'>' to close end tag");
    ns_stack_.resize(ns_mark);
    return element;
  }

  /// Parses element content up to (and consuming) "</".
  void parse_content(Element& parent) {
    std::string text;
    auto flush_text = [&] {
      if (text.empty()) return;
      if (!options_.strip_insignificant_whitespace ||
          !strings::all_space(text)) {
        parent.append_text(text);
      }
      text.clear();
    };

    for (;;) {
      if (cur_.eof()) cur_.fail("unexpected end of input inside element");
      char c = cur_.peek();
      if (c == '<') {
        if (cur_.consume("</")) {
          flush_text();
          return;
        }
        if (cur_.consume("<!--")) {
          flush_text();
          parent.append(std::make_unique<Comment>(
              std::string(parse_comment_body())));
          continue;
        }
        if (cur_.consume("<![CDATA[")) {
          text += cur_.take_until("]]>");
          cur_.consume("]]>");
          continue;
        }
        if (cur_.peek(1) == '?') {
          cur_.advance(2);
          flush_text();
          auto [target, data] = parse_pi_body();
          parent.append(std::make_unique<ProcessingInstruction>(
              std::string(target), std::string(data)));
          continue;
        }
        flush_text();
        parent.append(parse_element());
        continue;
      }
      cur_.advance();
      if (c == '&') {
        text += parse_reference();
      } else {
        text.push_back(c);
      }
    }
  }

  std::string_view parse_comment_body() {
    // Caller consumed "<!--".
    std::string_view body = cur_.take_until("--");
    if (!cur_.consume("-->")) cur_.fail("'--' not allowed inside comment");
    return body;
  }

  std::pair<std::string_view, std::string_view> parse_pi_body() {
    // Caller consumed "<?".
    std::string_view target = parse_name();
    if (strings::to_lower(target) == "xml") {
      cur_.fail("reserved processing-instruction target 'xml'");
    }
    cur_.skip_ws();
    std::string_view data = cur_.take_until("?>");
    cur_.consume("?>");
    return {target, data};
  }

  std::string lookup_ns(std::string_view prefix, bool is_attribute,
                        Position pos) {
    if (prefix == "xml") return "http://www.w3.org/XML/1998/namespace";
    if (prefix == "xmlns") return "http://www.w3.org/2000/xmlns/";
    if (prefix.empty() && is_attribute) return "";  // no default ns for attrs
    for (auto it = ns_stack_.rbegin(); it != ns_stack_.rend(); ++it) {
      if (it->prefix == prefix) return it->uri;
    }
    if (prefix.empty()) return "";
    throw ParseError("undeclared namespace prefix '" + std::string(prefix) +
                         "'",
                     pos);
  }

  TextCursor cur_;
  ParseOptions options_;
  std::vector<NsBinding> ns_stack_;
};

}  // namespace

std::unique_ptr<Document> parse(std::string_view text,
                                const ParseOptions& options) {
  return Parser(text, options).run();
}

std::unique_ptr<Document> try_parse(std::string_view text,
                                    const ParseOptions& options) noexcept {
  try {
    return parse(text, options);
  } catch (const Error&) {
    return nullptr;
  }
}

}  // namespace navsep::xml

#include "site/browser.hpp"

#include "uri/uri.hpp"

namespace navsep::site {

Browser::Browser(const PageService& server, const xlink::TraversalGraph& graph)
    : server_(&server), graph_(&graph) {}

bool Browser::load(const std::string& uri) {
  Response r = server_->get(uri);
  if (!r.ok()) return false;
  location_ = uri;
  page_ = std::move(r.body);
  links_ = graph_->outgoing(location_);
  ++visits_;
  return true;
}

bool Browser::navigate(std::string_view uri_ref) {
  std::string absolute;
  if (uri_ref.find("://") != std::string_view::npos) {
    absolute = std::string(uri_ref);
  } else {
    const std::string& base =
        location_.empty() ? server_->base() : location_;
    absolute = uri::resolve(base, uri_ref);
  }
  if (!load(absolute)) return false;
  // Truncate any forward entries, then push.
  history_.resize(history_pos_);
  history_.push_back(location_);
  history_pos_ = history_.size();
  return true;
}

bool Browser::follow(const xlink::Arc& arc) {
  if (!xlink::is_traversable(arc)) {
    return false;  // the linkbase forbids traversal
  }
  return navigate(arc.to.uri);
}

bool Browser::follow_role(std::string_view role) {
  // Pick the arc before following: follow() reloads and replaces links_.
  const xlink::Arc* match = nullptr;
  for (const xlink::Arc* arc : links_) {
    if (xlink::arcrole_matches(arc->arcrole, role)) {
      match = arc;
      break;
    }
  }
  return match != nullptr && follow(*match);
}

void Browser::refresh() {
  if (location_.empty()) return;
  Response r = server_->get(location_);
  page_ = r.ok() ? std::move(r.body) : nullptr;
  links_ = r.ok() ? graph_->outgoing(location_)
                  : std::vector<const xlink::Arc*>{};
}

bool Browser::back() {
  if (history_pos_ <= 1) return false;
  --history_pos_;
  return load(history_[history_pos_ - 1]);
}

bool Browser::forward() {
  if (history_pos_ >= history_.size()) return false;
  ++history_pos_;
  return load(history_[history_pos_ - 1]);
}

}  // namespace navsep::site

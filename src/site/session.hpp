// Context-aware navigation sessions (the paper's §2 scenario).
//
// A NavigationSession tracks WHERE the user is and HOW they got there: the
// active navigational context determines what "next" means. Reaching
// Guernica through ByAuthor:picasso and pressing next gives the next
// Picasso; reaching it through ByMovement:cubism gives the next cubist
// work — same node, different successor. Sessions also announce
// ContextEnter/ContextExit and LinkTraversal join points so aspects (e.g.
// a history/audit aspect) can observe navigation.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "aop/weaver.hpp"
#include "hypermedia/context.hpp"
#include "hypermedia/navigational.hpp"

namespace navsep::site {

class NavigationSession {
 public:
  /// `weaver` may be null (no join points announced).
  NavigationSession(const hypermedia::NavigationalModel& model,
                    std::vector<const hypermedia::ContextFamily*> families,
                    aop::Weaver* weaver = nullptr);

  /// Jump straight to a node (no context). False for unknown ids.
  bool visit(std::string_view node_id);

  /// Enter `family:context` at `node_id` (must be a member).
  bool enter_context(std::string_view family, std::string_view context,
                     std::string_view node_id);

  /// Enter the context of `family` that contains the current node (the
  /// "reached through" operation: visit(guernica) then
  /// through("ByMovement") puts the session in ByMovement:cubism).
  bool through(std::string_view family);

  /// Leave the active context (stays on the node).
  void leave_context();

  /// Context-dependent motion. False at the ends or without a context.
  bool next();
  bool prev();

  [[nodiscard]] const hypermedia::NavNode* current() const noexcept {
    return current_;
  }
  [[nodiscard]] const hypermedia::NavigationalContext* context() const
      noexcept {
    return context_;
  }

  /// "family:name" of the active context ("" when none).
  [[nodiscard]] std::string context_tag() const;

  /// 1-based position within the context ("3 of 7"), nullopt outside.
  [[nodiscard]] std::optional<std::pair<std::size_t, std::size_t>>
  position() const;

  /// Every node id visited, in order.
  [[nodiscard]] const std::vector<std::string>& trail() const noexcept {
    return trail_;
  }

 private:
  void announce_traversal(std::string_view from, std::string_view to,
                          std::string_view role);
  void announce_context(aop::JoinPointKind kind);
  bool move_to(std::string_view node_id, std::string_view role);

  const hypermedia::NavigationalModel* model_;
  std::vector<const hypermedia::ContextFamily*> families_;
  aop::Weaver* weaver_;
  const hypermedia::NavNode* current_ = nullptr;
  const hypermedia::NavigationalContext* context_ = nullptr;
  std::vector<std::string> trail_;
};

}  // namespace navsep::site

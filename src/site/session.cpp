#include "site/session.hpp"

namespace navsep::site {

NavigationSession::NavigationSession(
    const hypermedia::NavigationalModel& model,
    std::vector<const hypermedia::ContextFamily*> families,
    aop::Weaver* weaver)
    : model_(&model), families_(std::move(families)), weaver_(weaver) {}

std::string NavigationSession::context_tag() const {
  return context_ == nullptr ? std::string() : context_->qualified_name();
}

void NavigationSession::announce_traversal(std::string_view from,
                                           std::string_view to,
                                           std::string_view role) {
  if (weaver_ == nullptr) return;
  aop::JoinPoint jp;
  jp.kind = aop::JoinPointKind::LinkTraversal;
  jp.subject = std::string(from);
  jp.instance = std::string(to);
  jp.tags.emplace(std::string(aop::tags::kRole), std::string(role));
  std::string tag = context_tag();
  if (!tag.empty()) {
    jp.tags.emplace(std::string(aop::tags::kContext), tag);
  }
  weaver_->execute(jp, [] {});
}

void NavigationSession::announce_context(aop::JoinPointKind kind) {
  if (weaver_ == nullptr || context_ == nullptr) return;
  aop::JoinPoint jp;
  jp.kind = kind;
  jp.subject = context_->family();
  jp.instance = context_->name();
  weaver_->execute(jp, [] {});
}

bool NavigationSession::move_to(std::string_view node_id,
                                std::string_view role) {
  const hypermedia::NavNode* node = model_->node(node_id);
  if (node == nullptr) return false;
  std::string from = current_ != nullptr ? current_->id() : "";
  current_ = node;
  trail_.emplace_back(node->id());
  announce_traversal(from, node_id, role);
  return true;
}

bool NavigationSession::visit(std::string_view node_id) {
  return move_to(node_id, "visit");
}

bool NavigationSession::enter_context(std::string_view family,
                                      std::string_view context,
                                      std::string_view node_id) {
  for (const hypermedia::ContextFamily* f : families_) {
    if (f->name() != family) continue;
    const hypermedia::NavigationalContext* ctx = f->find(context);
    if (ctx == nullptr || !ctx->contains(node_id)) return false;
    if (!move_to(node_id, "enter-context")) return false;
    if (context_ != nullptr) announce_context(aop::JoinPointKind::ContextExit);
    context_ = ctx;
    announce_context(aop::JoinPointKind::ContextEnter);
    return true;
  }
  return false;
}

bool NavigationSession::through(std::string_view family) {
  if (current_ == nullptr) return false;
  for (const hypermedia::ContextFamily* f : families_) {
    if (f->name() != family) continue;
    auto hits = f->containing(current_->id());
    if (hits.empty()) return false;
    if (context_ != nullptr) announce_context(aop::JoinPointKind::ContextExit);
    context_ = hits.front();
    announce_context(aop::JoinPointKind::ContextEnter);
    return true;
  }
  return false;
}

void NavigationSession::leave_context() {
  if (context_ != nullptr) {
    announce_context(aop::JoinPointKind::ContextExit);
    context_ = nullptr;
  }
}

bool NavigationSession::next() {
  if (current_ == nullptr || context_ == nullptr) return false;
  auto n = context_->next_of(current_->id());
  if (!n.has_value()) return false;
  return move_to(*n, "next");
}

bool NavigationSession::prev() {
  if (current_ == nullptr || context_ == nullptr) return false;
  auto p = context_->prev_of(current_->id());
  if (!p.has_value()) return false;
  return move_to(*p, "prev");
}

std::optional<std::pair<std::size_t, std::size_t>> NavigationSession::position()
    const {
  if (current_ == nullptr || context_ == nullptr) return std::nullopt;
  auto pos = context_->position_of(current_->id());
  if (!pos.has_value()) return std::nullopt;
  return std::make_pair(*pos + 1, context_->size());
}

}  // namespace navsep::site

#include "site/server.hpp"

#include "uri/uri.hpp"

namespace navsep::site {

std::string_view content_type_for(std::string_view path) noexcept {
  auto ends_with = [&](std::string_view suffix) {
    return path.size() >= suffix.size() &&
           path.substr(path.size() - suffix.size()) == suffix;
  };
  if (ends_with(".html") || ends_with(".htm")) return "text/html";
  if (ends_with(".xml") || ends_with(".xsl")) return "text/xml";
  if (ends_with(".css")) return "text/css";
  return "application/octet-stream";
}

HypermediaServer::HypermediaServer(const VirtualSite& site, std::string base)
    : site_(&site), base_(std::move(base)) {
  if (!base_.empty() && base_.back() != '/') base_ += '/';
}

std::string HypermediaServer::uri_of(std::string_view path) const {
  return base_ + std::string(path);
}

Response HypermediaServer::get(std::string_view uri_or_path) const {
  ++requests_;
  std::string path;
  if (uri_or_path.find("://") != std::string_view::npos) {
    // Absolute: must live under our base.
    std::string normalized =
        uri::normalize(uri::parse(uri_or_path)).to_string();
    if (std::size_t hash = normalized.find('#');
        hash != std::string::npos) {
      normalized.resize(hash);
    }
    std::string norm_base = uri::normalize(uri::parse(base_)).to_string();
    if (normalized.rfind(norm_base, 0) != 0) {
      ++misses_;
      return Response{404, "", nullptr};
    }
    path = normalized.substr(norm_base.size());
  } else {
    path = std::string(uri_or_path);
    if (std::size_t hash = path.find('#'); hash != std::string::npos) {
      path.resize(hash);
    }
  }
  const std::string* body = site_->get(path);
  if (body == nullptr) {
    ++misses_;
    return Response{404, "", nullptr};
  }
  return Response{200, std::string(content_type_for(path)), body};
}

}  // namespace navsep::site

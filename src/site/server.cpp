#include "site/server.hpp"

#include "uri/uri.hpp"

namespace navsep::site {

std::string_view content_type_for(std::string_view path) noexcept {
  auto ends_with = [&](std::string_view suffix) {
    return path.size() >= suffix.size() &&
           path.substr(path.size() - suffix.size()) == suffix;
  };
  if (ends_with(".html") || ends_with(".htm")) return "text/html";
  if (ends_with(".xml") || ends_with(".xsl")) return "text/xml";
  if (ends_with(".css")) return "text/css";
  return "application/octet-stream";
}

std::optional<std::string> site_path_under(std::string_view uri_or_path,
                                           std::string_view normalized_base) {
  if (uri_or_path.find("://") != std::string_view::npos) {
    // Absolute: must live under the base.
    std::string normalized =
        uri::normalize(uri::parse(uri_or_path)).to_string();
    if (std::size_t hash = normalized.find('#'); hash != std::string::npos) {
      normalized.resize(hash);
    }
    if (normalized.rfind(normalized_base, 0) != 0) return std::nullopt;
    return normalized.substr(normalized_base.size());
  }
  std::string path(uri_or_path);
  if (std::size_t hash = path.find('#'); hash != std::string::npos) {
    path.resize(hash);
  }
  return path;
}

HypermediaServer::HypermediaServer(const VirtualSite& site, std::string base)
    : site_(&site), base_(std::move(base)) {
  if (!base_.empty() && base_.back() != '/') base_ += '/';
  normalized_base_ = uri::normalize(uri::parse(base_)).to_string();
}

std::string HypermediaServer::uri_of(std::string_view path) const {
  return base_ + std::string(path);
}

Response HypermediaServer::get(std::string_view uri_or_path) const {
  requests_.fetch_add(1, std::memory_order_relaxed);
  // The fragment never reaches the site lookup, so it stays out of the
  // cache key; 404s are not cached at all — together this bounds the
  // cache by the resource aliases actually requested, not by whatever
  // strings clients probe with.
  std::string key(uri_or_path.substr(0, uri_or_path.find('#')));
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    if (auto it = cache_.find(key); it != cache_.end()) {
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second.response;
    }
  }
  std::string path;
  Response r = resolve(uri_or_path, &path);
  if (!r.ok()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return r;
  }
  std::lock_guard<std::mutex> lock(cache_mutex_);
  cache_.emplace(std::move(key), CacheEntry{r, std::move(path)});
  return r;
}

std::size_t HypermediaServer::invalidate(std::string_view path) const {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  std::size_t dropped = 0;
  for (auto it = cache_.begin(); it != cache_.end();) {
    if (it->second.path == path) {
      it = cache_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  return dropped;
}

std::size_t HypermediaServer::cache_size() const {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  return cache_.size();
}

HypermediaServer::Stats HypermediaServer::stats() const {
  Stats s;
  std::lock_guard<std::mutex> lock(cache_mutex_);
  s.cache_size = cache_.size();
  // Load requests LAST: a get() bumps requests before it classifies the
  // outcome, so this order guarantees requests >= cache_hits + misses in
  // every sample (the reverse order could observe the classification of
  // a request it has not counted yet).
  s.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.requests = requests_.load(std::memory_order_relaxed);
  return s;
}

void HypermediaServer::clear_cache() const {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  cache_.clear();
}

Response HypermediaServer::resolve(std::string_view uri_or_path,
                                   std::string* resolved_path) const {
  std::optional<std::string> path = site_path_under(uri_or_path,
                                                    normalized_base_);
  if (!path) return Response{404, "", nullptr};
  std::shared_ptr<const std::string> body = site_->get_shared(*path);
  if (body == nullptr) {
    return Response{404, "", nullptr};
  }
  if (resolved_path != nullptr) *resolved_path = *path;
  return Response{200, std::string(content_type_for(*path)), std::move(body)};
}

}  // namespace navsep::site

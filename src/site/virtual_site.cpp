#include "site/virtual_site.hpp"

#include "aop/weaver.hpp"
#include "core/navigation_aspect.hpp"
#include "xml/parser.hpp"
#include "xml/serializer.hpp"

namespace navsep::site {

void VirtualSite::put(std::string path, std::string content) {
  // Swap the slot, never mutate the published string: holders of the old
  // shared handle keep the old bytes.
  files_[std::move(path)] =
      std::make_shared<const std::string>(std::move(content));
}

bool VirtualSite::remove(std::string_view path) {
  auto it = files_.find(path);
  if (it == files_.end()) return false;
  files_.erase(it);
  return true;
}

const std::string* VirtualSite::get(std::string_view path) const {
  auto it = files_.find(path);
  return it == files_.end() ? nullptr : it->second.get();
}

std::shared_ptr<const std::string> VirtualSite::get_shared(
    std::string_view path) const {
  auto it = files_.find(path);
  return it == files_.end() ? nullptr : it->second;
}

std::size_t VirtualSite::total_bytes() const noexcept {
  std::size_t out = 0;
  for (const auto& [_, content] : files_) out += content->size();
  return out;
}

std::vector<std::string> VirtualSite::paths() const {
  std::vector<std::string> out;
  out.reserve(files_.size());
  for (const auto& [path, _] : files_) out.push_back(path);
  return out;
}

std::vector<std::pair<std::string, std::shared_ptr<const std::string>>>
VirtualSite::shared_artifacts() const {
  std::vector<std::pair<std::string, std::shared_ptr<const std::string>>> out;
  out.reserve(files_.size());
  for (const auto& [path, content] : files_) out.emplace_back(path, content);
  return out;
}

std::vector<core::Artifact> VirtualSite::artifacts() const {
  std::vector<core::Artifact> out;
  out.reserve(files_.size());
  for (const auto& [path, content] : files_) out.emplace_back(path, *content);
  return out;
}

std::string context_linkbase_path(std::string_view family_name) {
  std::string out = "links-";
  for (char c : family_name) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
    out += c;
  }
  return out + ".xml";
}

core::LinkbaseOptions separated_linkbase_options(
    const SiteBuildOptions& options) {
  core::LinkbaseOptions lb;
  lb.base_uri = options.site_base + std::string(kStructureLinkbasePath);
  lb.data_href = [](std::string_view id) {
    return core::default_href_for(id);
  };
  lb.structure_href = [](std::string_view id) {
    return core::default_href_for(id);
  };
  return lb;
}

void author_fixed_artifacts(VirtualSite& out,
                            const museum::MuseumWorld& world) {
  for (auto& [path, content] : world.data_artifacts()) {
    out.put(path, content);
  }
  out.put("presentation.xsl", museum::MuseumWorld::presentation_xslt());
  out.put("museum.css", museum::MuseumWorld::site_css());
}

VirtualSite build_separated_site(const museum::MuseumWorld& world,
                                 const hypermedia::AccessStructure& structure,
                                 const SiteBuildOptions& options) {
  VirtualSite out;
  author_fixed_artifacts(out, world);

  // Authored: the linkbase.
  core::LinkbaseOptions lb = separated_linkbase_options(options);
  auto linkbase = core::build_linkbase(structure, lb);
  out.put(std::string(kStructureLinkbasePath),
          xml::write(*linkbase, {.pretty = true}));

  // Authored: one contextual linkbase per requested family. The parsed
  // documents must outlive the graphs (arc origins point into them) until
  // the combined aspect below has copied the arcs out.
  hypermedia::NavigationalModel nav = world.derive_navigation();
  std::vector<std::unique_ptr<xml::Document>> context_docs;
  std::vector<xlink::TraversalGraph> context_graphs;
  for (const hypermedia::ContextFamily* family : options.context_families) {
    if (family == nullptr) continue;
    core::LinkbaseOptions clb = lb;
    clb.base_uri = options.site_base + context_linkbase_path(family->name());
    context_docs.push_back(core::build_context_linkbase(*family, nav, clb));
    context_graphs.push_back(core::load_linkbase(*context_docs.back()));
    out.put(context_linkbase_path(family->name()),
            xml::write(*context_docs.back(), {.pretty = true}));
  }

  // Derived: the woven pages. One combined aspect carries the structure's
  // arcs plus every context family's tagged tours.
  aop::Weaver local_weaver;
  aop::Weaver& weaver = options.weaver ? *options.weaver : local_weaver;
  std::vector<const xlink::TraversalGraph*> context_graph_ptrs;
  context_graph_ptrs.reserve(context_graphs.size());
  for (const auto& g : context_graphs) context_graph_ptrs.push_back(&g);
  core::NavigationAspectOptions aspect_options;
  if (options.weave_context_tours) {
    for (const hypermedia::ContextFamily* family : options.context_families) {
      if (family != nullptr) {
        aspect_options.woven_context_families.push_back(family->name());
      }
    }
  }
  // replace, not register: a caller-supplied weaver may already carry the
  // navigation aspect of an earlier build (the §5 migration scenario) —
  // stacking both would weave two anchor sets into every page.
  weaver.replace_aspect(core::NavigationAspect::combined(
      core::load_linkbase(*linkbase), context_graph_ptrs, aspect_options));
  core::SeparatedComposer composer(weaver);
  for (auto& page : composer.compose_site(nav, structure)) {
    out.put(std::move(page.path), std::move(page.content));
  }
  return out;
}

VirtualSite build_tangled_site(const museum::MuseumWorld& world,
                               const hypermedia::AccessStructure& structure,
                               const SiteBuildOptions& options) {
  (void)options;
  VirtualSite out;
  out.put("museum.css", museum::MuseumWorld::site_css());
  hypermedia::NavigationalModel nav = world.derive_navigation();
  core::TangledRenderer renderer(nav, structure);
  for (auto& page : renderer.render_site()) {
    out.put(std::move(page.path), std::move(page.content));
  }
  return out;
}

}  // namespace navsep::site

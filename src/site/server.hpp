// An in-process hypermedia server over a VirtualSite.
//
// Deliberately minimal HTTP semantics: GET by absolute URI or
// site-relative path, 200/404 statuses, content types inferred from the
// extension, and request counters. Enough for the browser and the
// benchmarks; no sockets (see DESIGN.md non-goals).
//
// Successful responses are memoized (keyed without the fragment; 404s
// are never cached, so probing strings cannot grow the cache): the first
// GET for a URI pays URI normalization and site lookup, repeats are one
// cache probe. The cache and the counters are safe for concurrent
// readers (the whole surface is const): counters are atomics, the cache
// is guarded by a mutex.
#pragma once

#include <atomic>
#include <cstddef>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "site/virtual_site.hpp"

namespace navsep::site {

struct Response {
  int status = 404;
  std::string content_type;
  const std::string* body = nullptr;  // into the VirtualSite; may be null

  [[nodiscard]] bool ok() const noexcept { return status == 200; }
};

class HypermediaServer {
 public:
  /// Serve `site` under `base` (e.g. "http://museum.example/site/").
  HypermediaServer(const VirtualSite& site, std::string base);

  /// GET by absolute URI (fragment ignored) or site-relative path.
  [[nodiscard]] Response get(std::string_view uri_or_path) const;

  [[nodiscard]] const std::string& base() const noexcept { return base_; }
  [[nodiscard]] std::size_t requests() const noexcept {
    return requests_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t misses() const noexcept {
    return misses_.load(std::memory_order_relaxed);
  }

  /// GETs answered from the response cache.
  [[nodiscard]] std::size_t cache_hits() const noexcept {
    return cache_hits_.load(std::memory_order_relaxed);
  }

  /// Cached responses currently held.
  [[nodiscard]] std::size_t cache_size() const;

  /// Drop every cached response (framework hook — the engine calls this
  /// when the underlying site is rebuilt).
  void clear_cache() const;

  /// Drop the cached responses of ONE site path, under every URI alias
  /// that resolved to it — the targeted companion to clear_cache() for
  /// in-place page replacement. Must be called when a path is removed
  /// from the site (a cached Response would point at freed content) and
  /// when its content is replaced. Returns the number of cache entries
  /// dropped.
  std::size_t invalidate(std::string_view path) const;

  /// Absolute URI of a site path.
  [[nodiscard]] std::string uri_of(std::string_view path) const;

 private:
  /// A cached response remembers the site path it resolved to, so
  /// invalidate(path) can find it under any request alias.
  struct CacheEntry {
    Response response;
    std::string path;
  };

  [[nodiscard]] Response resolve(std::string_view uri_or_path,
                                 std::string* resolved_path = nullptr) const;

  const VirtualSite* site_;
  std::string base_;
  mutable std::atomic<std::size_t> requests_{0};
  mutable std::atomic<std::size_t> misses_{0};
  mutable std::atomic<std::size_t> cache_hits_{0};
  mutable std::mutex cache_mutex_;
  mutable std::unordered_map<std::string, CacheEntry> cache_;
};

/// "text/html", "text/xml", "text/css" or "application/octet-stream".
[[nodiscard]] std::string_view content_type_for(std::string_view path) noexcept;

}  // namespace navsep::site

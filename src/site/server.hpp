// An in-process hypermedia server over a VirtualSite.
//
// Deliberately minimal HTTP semantics: GET by absolute URI or
// site-relative path, 200/404 statuses, content types inferred from the
// extension, and request counters. Enough for the browser and the
// benchmarks; no sockets (see DESIGN.md non-goals).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

#include "site/virtual_site.hpp"

namespace navsep::site {

struct Response {
  int status = 404;
  std::string content_type;
  const std::string* body = nullptr;  // into the VirtualSite; may be null

  [[nodiscard]] bool ok() const noexcept { return status == 200; }
};

class HypermediaServer {
 public:
  /// Serve `site` under `base` (e.g. "http://museum.example/site/").
  HypermediaServer(const VirtualSite& site, std::string base);

  /// GET by absolute URI (fragment ignored) or site-relative path.
  [[nodiscard]] Response get(std::string_view uri_or_path) const;

  [[nodiscard]] const std::string& base() const noexcept { return base_; }
  [[nodiscard]] std::size_t requests() const noexcept { return requests_; }
  [[nodiscard]] std::size_t misses() const noexcept { return misses_; }

  /// Absolute URI of a site path.
  [[nodiscard]] std::string uri_of(std::string_view path) const;

 private:
  const VirtualSite* site_;
  std::string base_;
  mutable std::size_t requests_ = 0;
  mutable std::size_t misses_ = 0;
};

/// "text/html", "text/xml", "text/css" or "application/octet-stream".
[[nodiscard]] std::string_view content_type_for(std::string_view path) noexcept;

}  // namespace navsep::site

// An in-process hypermedia server over a VirtualSite.
//
// Deliberately minimal HTTP semantics: GET by absolute URI or
// site-relative path, 200/404 statuses, content types inferred from the
// extension, and request counters. Enough for the browser and the
// benchmarks; no sockets (see DESIGN.md non-goals).
//
// Successful responses are memoized (keyed without the fragment; 404s
// are never cached, so probing strings cannot grow the cache): the first
// GET for a URI pays URI normalization and site lookup, repeats are one
// cache probe. The cache and the counters are safe for concurrent
// readers (the whole surface is const): counters are atomics, the cache
// is guarded by a mutex. Response bodies share ownership with the site
// (std::shared_ptr), so a response handed to a caller stays readable
// even after the path is removed or replaced and the cache invalidated.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "site/virtual_site.hpp"

namespace navsep::site {

struct Response {
  int status = 404;
  std::string content_type;
  /// Shares ownership of the served content: reading through a held
  /// Response is safe even if the site entry is concurrently replaced or
  /// removed (the old bytes stay alive until the last holder lets go).
  /// Null on 404.
  std::shared_ptr<const std::string> body;

  [[nodiscard]] bool ok() const noexcept { return status == 200; }
};

/// The minimal consumer-facing serving surface: what a browser (or any
/// other page consumer) needs, implemented both by the single-site
/// HypermediaServer below and by serve::ConcurrentServer over published
/// snapshots. Implementations must keep get() safe for concurrent
/// callers.
class PageService {
 public:
  virtual ~PageService() = default;

  /// GET by absolute URI (fragment ignored) or site-relative path.
  [[nodiscard]] virtual Response get(std::string_view uri_or_path) const = 0;

  /// Slash-terminated base URI the service resolves relative paths under.
  [[nodiscard]] virtual const std::string& base() const noexcept = 0;
};

/// Strip `uri_or_path` down to the site path it addresses under
/// `normalized_base` (a uri::normalize()d, slash-terminated base URI).
/// Fragments are dropped; absolute URIs outside the base yield nullopt.
/// Shared by HypermediaServer and the snapshot resolver so the two can
/// never disagree on what a request means.
[[nodiscard]] std::optional<std::string> site_path_under(
    std::string_view uri_or_path, std::string_view normalized_base);

class HypermediaServer final : public PageService {
 public:
  /// One consistent sample of the server's counters. The individual
  /// accessors below are each atomic but mutually unordered; reading
  /// them one by one while traffic is in flight can show e.g. more
  /// cache hits than requests. snapshot-style stats() never does:
  /// hits/misses are loaded before requests, so requests >= cache_hits
  /// + misses holds for every sample.
  struct Stats {
    std::size_t requests = 0;
    std::size_t misses = 0;      ///< 404s
    std::size_t cache_hits = 0;  ///< GETs answered from the response cache
    std::size_t cache_size = 0;  ///< cached responses currently held
  };

  /// Serve `site` under `base` (e.g. "http://museum.example/site/").
  HypermediaServer(const VirtualSite& site, std::string base);

  /// GET by absolute URI (fragment ignored) or site-relative path.
  [[nodiscard]] Response get(std::string_view uri_or_path) const override;

  [[nodiscard]] const std::string& base() const noexcept override {
    return base_;
  }
  [[nodiscard]] std::size_t requests() const noexcept {
    return requests_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t misses() const noexcept {
    return misses_.load(std::memory_order_relaxed);
  }

  /// GETs answered from the response cache.
  [[nodiscard]] std::size_t cache_hits() const noexcept {
    return cache_hits_.load(std::memory_order_relaxed);
  }

  /// Cached responses currently held.
  [[nodiscard]] std::size_t cache_size() const;

  /// One coherent counter sample (see Stats).
  [[nodiscard]] Stats stats() const;

  /// Drop every cached response (framework hook — the engine calls this
  /// when the underlying site is rebuilt).
  void clear_cache() const;

  /// Drop the cached responses of ONE site path, under every URI alias
  /// that resolved to it — the targeted companion to clear_cache() for
  /// in-place page replacement. Must be called when a path is removed
  /// from the site or its content replaced, so later GETs are not served
  /// the retired bytes (responses already handed out keep their bytes
  /// alive via shared ownership). Returns the number of cache entries
  /// dropped.
  std::size_t invalidate(std::string_view path) const;

  /// Absolute URI of a site path.
  [[nodiscard]] std::string uri_of(std::string_view path) const;

 private:
  /// A cached response remembers the site path it resolved to, so
  /// invalidate(path) can find it under any request alias.
  struct CacheEntry {
    Response response;
    std::string path;
  };

  [[nodiscard]] Response resolve(std::string_view uri_or_path,
                                 std::string* resolved_path = nullptr) const;

  const VirtualSite* site_;
  std::string base_;
  std::string normalized_base_;  // uri::normalize(base_), computed once
  mutable std::atomic<std::size_t> requests_{0};
  mutable std::atomic<std::size_t> misses_{0};
  mutable std::atomic<std::size_t> cache_hits_{0};
  mutable std::mutex cache_mutex_;
  mutable std::unordered_map<std::string, CacheEntry> cache_;
};

/// "text/html", "text/xml", "text/css" or "application/octet-stream".
[[nodiscard]] std::string_view content_type_for(std::string_view path) noexcept;

}  // namespace navsep::site

// A browser simulator that actually consumes XLink: it fetches pages from
// the in-process server, consults the linkbase traversal graph for the
// arcs leaving the current resource, and actuates them (xlink:show/actuate
// aware) — the demonstration the paper could not give in 2002 browsers.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "site/server.hpp"
#include "xlink/traversal.hpp"

namespace navsep::site {

class Browser {
 public:
  /// Works over any page service — the single-site HypermediaServer or a
  /// serve::ConcurrentServer over published snapshots. Both referents
  /// must outlive the browser. NOTE: a Browser is a single-session,
  /// writer-quiescent consumer: it caches raw pointers into `graph`, so
  /// it must not run concurrently with engine mutations that rebuild the
  /// arc table (refresh() after each mutation, as before). Concurrent
  /// traffic under live edits goes through the value-copied
  /// serve::SiteSnapshot arcs instead (what serve::Workload sessions do).
  Browser(const PageService& server, const xlink::TraversalGraph& graph);

  /// Fetch a URI (absolute, or resolved against the current location /
  /// server base). Pushes onto history on success. `false` on 404.
  bool navigate(std::string_view uri_ref);

  [[nodiscard]] const std::string& location() const noexcept {
    return location_;
  }
  [[nodiscard]] const std::string* page() const noexcept {
    return page_.get();
  }

  /// Arcs leaving the current resource (linkbase order). Computed once
  /// per location change from the graph's per-source index, then served
  /// from the cached list — repeated links()/follow_role() calls on the
  /// same page cost nothing.
  [[nodiscard]] const std::vector<const xlink::Arc*>& links() const noexcept {
    return links_;
  }

  /// Actuate one arc (must be an onRequest-style arc; show=none arcs are
  /// refused). Returns false when the target 404s.
  bool follow(const xlink::Arc& arc);

  /// Follow the first outgoing arc whose arcrole is `role` (with or
  /// without the "nav:" prefix). False when there is none.
  bool follow_role(std::string_view role);

  /// Re-resolve the current page and its cached outgoing-arc list against
  /// the (possibly mutated) server and traversal graph. The incremental
  /// rebuild engine calls this after replacing pages or the arc table:
  /// the cached `links()` pointers point into the graph's arc storage and
  /// dangle once the graph is rebuilt. If the current page was removed
  /// from the site, `page()` becomes null and `links()` empties; location
  /// and history are preserved.
  void refresh();

  bool back();
  bool forward();
  [[nodiscard]] const std::vector<std::string>& history() const noexcept {
    return history_;
  }

  [[nodiscard]] std::size_t pages_visited() const noexcept { return visits_; }

 private:
  bool load(const std::string& uri);

  const PageService* server_;
  const xlink::TraversalGraph* graph_;
  std::string location_;
  /// Shares ownership with the site/snapshot: the current page's bytes
  /// cannot be freed under the browser by a concurrent invalidate/remove.
  std::shared_ptr<const std::string> page_;
  std::vector<const xlink::Arc*> links_;  // outgoing arcs of location_
  std::vector<std::string> history_;
  std::size_t history_pos_ = 0;  // points one past the current entry
  std::size_t visits_ = 0;
};

}  // namespace navsep::site

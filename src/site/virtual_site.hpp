// VirtualSite: the artifact store a built museum site lives in, and the
// builders that produce it both ways (tangled vs separated).
//
// Substitution 2 from DESIGN.md: 2002 browsers could not process XLink, so
// the paper could not demonstrate the woven result. We build the whole
// consumer chain in-process — site → server → browser — which keeps the
// experiments deterministic and network-free.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/migration.hpp"
#include "hypermedia/access.hpp"
#include "hypermedia/context.hpp"
#include "museum/museum.hpp"

namespace navsep::aop {
class Weaver;
}

namespace navsep::site {

class VirtualSite {
 public:
  void put(std::string path, std::string content);

  /// Remove one artifact. Returns false when the path was absent. Callers
  /// serving the site must invalidate their response caches for the path
  /// (HypermediaServer::invalidate) so later GETs see the removal;
  /// responses already handed out stay readable — content is shared, not
  /// freed, while anyone still holds it.
  bool remove(std::string_view path);

  [[nodiscard]] const std::string* get(std::string_view path) const;

  /// Shared-ownership handle on one artifact's content (null when
  /// absent). put()/remove() never mutate a published string — they swap
  /// the slot — so a held handle stays byte-stable for its lifetime.
  /// This is what snapshots and response caches hold.
  [[nodiscard]] std::shared_ptr<const std::string> get_shared(
      std::string_view path) const;

  [[nodiscard]] bool contains(std::string_view path) const {
    return get(path) != nullptr;
  }
  [[nodiscard]] std::size_t size() const noexcept { return files_.size(); }
  [[nodiscard]] std::size_t total_bytes() const noexcept;
  [[nodiscard]] std::vector<std::string> paths() const;

  /// Sorted (path, shared content) pairs in site order — the cheap
  /// whole-site view a snapshot is built from (bodies are shared, not
  /// copied).
  [[nodiscard]] std::vector<
      std::pair<std::string, std::shared_ptr<const std::string>>>
  shared_artifacts() const;

  /// Sorted (path, content) pairs — the diffable artifact set.
  [[nodiscard]] std::vector<core::Artifact> artifacts() const;

 private:
  std::map<std::string, std::shared_ptr<const std::string>, std::less<>>
      files_;
};

struct SiteBuildOptions {
  /// Absolute base the site is served under; linkbase hrefs resolve
  /// against `<site_base>links.xml`.
  std::string site_base = "http://museum.example/site/";

  /// Context families to author alongside the access structure: each
  /// becomes its own contextual linkbase artifact
  /// ("links-<family>.xml") whose tour arcs carry nav:context tags.
  /// Borrowed; must outlive the call.
  std::vector<const hypermedia::ContextFamily*> context_families;

  /// Weaver to compose the woven pages through. When null a throwaway
  /// weaver is used; passing one (the engine does) lets callers keep the
  /// registered navigation aspect for later re-weaving and extend it with
  /// their own aspects.
  aop::Weaver* weaver = nullptr;

  /// Weave every context family's tours into the stored pages as labeled
  /// per-context tour groups (core::NavigationAspectOptions::
  /// woven_context_families = each family in context_families), instead
  /// of reserving them for in-context on-demand composition. This is the
  /// profile-scoped full build — the single-threaded oracle the
  /// serve-time navigation overlays are byte-compared against
  /// (tests/overlay_test.cpp): build with exactly one nav::Profile's
  /// families and this flag on, and the result is what that profile must
  /// be served.
  bool weave_context_tours = false;
};

/// Site path of the access structure's own linkbase. The single source
/// of truth shared by the builder, the engine's arc provenance tags, and
/// the snapshot's overlay slice partition — which silently loses every
/// structure arc if the spellings drift.
inline constexpr std::string_view kStructureLinkbasePath = "links.xml";

/// Site path of a context family's linkbase ("links-byauthor.xml").
[[nodiscard]] std::string context_linkbase_path(std::string_view family_name);

/// The linkbase synthesis options the separated builder authors links.xml
/// with: site-level navigation runs between the *rendered pages*, so
/// locator hrefs point at the HTML resources. Exposed so the incremental
/// engine re-authors byte-identical linkbases when it rebuilds one node
/// of its graph.
[[nodiscard]] core::LinkbaseOptions separated_linkbase_options(
    const SiteBuildOptions& options);

/// Put the separated site's navigation-independent authored artifacts —
/// the data XML documents, presentation.xsl, museum.css — into `out`.
/// Shared by build_separated_site and the engine's serve() seeding so the
/// two cannot drift.
void author_fixed_artifacts(VirtualSite& out, const museum::MuseumWorld& world);

/// Build the separated museum site for one access structure: authored
/// artifacts (data XML per entity, links.xml, presentation.xsl,
/// museum.css) plus the woven HTML pages.
[[nodiscard]] VirtualSite build_separated_site(
    const museum::MuseumWorld& world,
    const hypermedia::AccessStructure& structure,
    const SiteBuildOptions& options = {});

/// Build the tangled museum site: HTML pages with embedded navigation
/// (and the css). There are no separated artifacts to author.
[[nodiscard]] VirtualSite build_tangled_site(
    const museum::MuseumWorld& world,
    const hypermedia::AccessStructure& structure,
    const SiteBuildOptions& options = {});

}  // namespace navsep::site

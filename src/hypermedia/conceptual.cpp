#include "hypermedia/conceptual.hpp"

#include <memory>

namespace navsep::hypermedia {

bool ClassDef::has_attribute(std::string_view attr) const noexcept {
  for (const auto& a : attributes) {
    if (a.name == attr) return true;
  }
  return false;
}

ClassDef& ConceptualSchema::add_class(std::string name,
                                      std::vector<AttributeDef> attributes) {
  if (find_class(name) != nullptr) {
    throw SemanticError("conceptual class '" + name + "' already declared");
  }
  classes_.push_back(ClassDef{std::move(name), std::move(attributes)});
  return classes_.back();
}

RelationshipDef& ConceptualSchema::add_relationship(std::string name,
                                                    std::string source,
                                                    std::string target,
                                                    Cardinality cardinality,
                                                    std::string inverse) {
  if (find_class(source) == nullptr) {
    throw SemanticError("relationship '" + name + "': unknown source class '" +
                        source + "'");
  }
  if (find_class(target) == nullptr) {
    throw SemanticError("relationship '" + name + "': unknown target class '" +
                        target + "'");
  }
  if (find_relationship(name) != nullptr) {
    throw SemanticError("relationship '" + name + "' already declared");
  }
  relationships_.push_back(RelationshipDef{std::move(name), std::move(source),
                                           std::move(target), cardinality,
                                           std::move(inverse)});
  const RelationshipDef& fwd = relationships_.back();
  if (!fwd.inverse.empty() && find_relationship(fwd.inverse) == nullptr) {
    // Auto-declare the inverse (target -> source, many).
    relationships_.push_back(RelationshipDef{fwd.inverse, fwd.target_class,
                                             fwd.source_class,
                                             Cardinality::Many, fwd.name});
  }
  return relationships_[relationships_.size() -
                        (relationships_.back().name == fwd.name ? 1 : 2)];
}

const ClassDef* ConceptualSchema::find_class(std::string_view name) const {
  for (const auto& c : classes_) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

const RelationshipDef* ConceptualSchema::find_relationship(
    std::string_view name) const {
  for (const auto& r : relationships_) {
    if (r.name == name) return &r;
  }
  return nullptr;
}

std::optional<std::string_view> Entity::attribute(
    std::string_view name) const {
  auto it = attributes_.find(name);
  if (it == attributes_.end()) return std::nullopt;
  return std::string_view(it->second);
}

std::string Entity::attribute_or(std::string_view name,
                                 std::string_view fallback) const {
  auto v = attribute(name);
  return std::string(v.value_or(fallback));
}

void Entity::set_attribute(std::string_view name, std::string value) {
  if (!cls_->has_attribute(name)) {
    throw SemanticError("class '" + cls_->name + "' has no attribute '" +
                        std::string(name) + "'");
  }
  attributes_[std::string(name)] = std::move(value);
}

const std::vector<const Entity*>& Entity::related(
    std::string_view relationship) const {
  static const std::vector<const Entity*> kEmpty;
  auto it = related_.find(relationship);
  return it == related_.end() ? kEmpty : it->second;
}

Entity& ConceptualModel::create(std::string_view class_name, std::string id) {
  const ClassDef* cls = schema_->find_class(class_name);
  if (cls == nullptr) {
    throw SemanticError("unknown conceptual class '" +
                        std::string(class_name) + "'");
  }
  if (by_id_.find(id) != by_id_.end()) {
    throw SemanticError("duplicate entity id '" + id + "'");
  }
  auto entity = std::make_unique<Entity>(id, *cls);
  Entity* raw = entity.get();
  by_id_.emplace(std::move(id), std::move(entity));
  order_.push_back(raw);
  return *raw;
}

void ConceptualModel::relate(Entity& source, std::string_view relationship,
                             Entity& target) {
  const RelationshipDef* rel = schema_->find_relationship(relationship);
  if (rel == nullptr) {
    throw SemanticError("unknown relationship '" + std::string(relationship) +
                        "'");
  }
  if (source.conceptual_class().name != rel->source_class) {
    throw SemanticError("relationship '" + rel->name + "' starts at class '" +
                        rel->source_class + "', not '" +
                        source.conceptual_class().name + "'");
  }
  if (target.conceptual_class().name != rel->target_class) {
    throw SemanticError("relationship '" + rel->name + "' ends at class '" +
                        rel->target_class + "', not '" +
                        target.conceptual_class().name + "'");
  }
  auto& fwd = source.related_[rel->name];
  if (rel->cardinality == Cardinality::One && !fwd.empty()) {
    throw SemanticError("relationship '" + rel->name +
                        "' is to-one and already set on '" + source.id() +
                        "'");
  }
  for (const Entity* existing : fwd) {
    if (existing == &target) return;  // idempotent
  }
  fwd.push_back(&target);
  if (!rel->inverse.empty()) {
    target.related_[rel->inverse].push_back(&source);
  }
}

const Entity* ConceptualModel::find(std::string_view id) const {
  auto it = by_id_.find(id);
  return it == by_id_.end() ? nullptr : it->second.get();
}

Entity* ConceptualModel::find(std::string_view id) {
  auto it = by_id_.find(id);
  return it == by_id_.end() ? nullptr : it->second.get();
}

std::vector<const Entity*> ConceptualModel::entities_of(
    std::string_view class_name) const {
  std::vector<const Entity*> out;
  for (const Entity* e : order_) {
    if (e->conceptual_class().name == class_name) out.push_back(e);
  }
  return out;
}

}  // namespace navsep::hypermedia

#include "hypermedia/navigational.hpp"

namespace navsep::hypermedia {

NodeClassDef& NavigationalSchema::add_node_class(NodeClassDef def) {
  if (find_node_class(def.name) != nullptr) {
    throw SemanticError("node class '" + def.name + "' already declared");
  }
  node_classes_.push_back(std::move(def));
  return node_classes_.back();
}

LinkClassDef& NavigationalSchema::add_link_class(LinkClassDef def) {
  link_classes_.push_back(std::move(def));
  return link_classes_.back();
}

const NodeClassDef* NavigationalSchema::find_node_class(
    std::string_view name) const {
  for (const auto& nc : node_classes_) {
    if (nc.name == name) return &nc;
  }
  return nullptr;
}

const NodeClassDef* NavigationalSchema::node_class_for(
    std::string_view conceptual_class) const {
  for (const auto& nc : node_classes_) {
    if (nc.conceptual_class == conceptual_class) return &nc;
  }
  return nullptr;
}

std::string NavNode::title() const {
  if (!cls_->title_attribute.empty()) {
    if (auto v = entity_->attribute(cls_->title_attribute)) {
      return std::string(*v);
    }
  }
  return entity_->id();
}

std::vector<std::pair<std::string, std::string>> NavNode::visible_attributes()
    const {
  std::vector<std::pair<std::string, std::string>> out;
  for (const std::string& name : cls_->shown_attributes) {
    if (auto v = entity_->attribute(name)) {
      out.emplace_back(name, std::string(*v));
    }
  }
  return out;
}

NavigationalModel NavigationalModel::derive(const ConceptualModel& conceptual,
                                            const NavigationalSchema& schema) {
  NavigationalModel out;

  // Nodes first: one per entity of each viewed class, in entity order.
  for (const NodeClassDef& nc : schema.node_classes()) {
    if (conceptual.schema().find_class(nc.conceptual_class) == nullptr) {
      throw SemanticError("node class '" + nc.name +
                          "' views unknown conceptual class '" +
                          nc.conceptual_class + "'");
    }
  }
  for (const Entity* e : conceptual.entities()) {
    const NodeClassDef* nc =
        schema.node_class_for(e->conceptual_class().name);
    if (nc == nullptr) continue;  // class not part of this navigation design
    out.index_.emplace(e->id(), out.nodes_.size());
    out.nodes_.emplace_back(*e, *nc);
  }

  // Links: one per related pair under each viewed relationship.
  for (const LinkClassDef& lc : schema.link_classes()) {
    if (conceptual.schema().find_relationship(lc.relationship) == nullptr) {
      throw SemanticError("link class '" + lc.name +
                          "' views unknown relationship '" + lc.relationship +
                          "'");
    }
    for (const NavNode& source : out.nodes_) {
      if (source.node_class().name != lc.source_node_class) continue;
      for (const Entity* target_entity :
           source.entity().related(lc.relationship)) {
        const NavNode* target = out.node(target_entity->id());
        if (target == nullptr ||
            target->node_class().name != lc.target_node_class) {
          continue;
        }
        out.links_.push_back(NavLink{&source, target, &lc});
      }
    }
  }
  return out;
}

const NavNode* NavigationalModel::node(std::string_view id) const {
  auto it = index_.find(id);
  return it == index_.end() ? nullptr : &nodes_[it->second];
}

std::vector<const NavNode*> NavigationalModel::nodes_of(
    std::string_view node_class) const {
  std::vector<const NavNode*> out;
  for (const NavNode& n : nodes_) {
    if (n.node_class().name == node_class) out.push_back(&n);
  }
  return out;
}

std::vector<const NavLink*> NavigationalModel::links_from(
    std::string_view node_id, std::string_view link_class) const {
  std::vector<const NavLink*> out;
  for (const NavLink& l : links_) {
    if (l.source->id() != node_id) continue;
    if (!link_class.empty() && l.link_class->name != link_class) continue;
    out.push_back(&l);
  }
  return out;
}

}  // namespace navsep::hypermedia

// Access structures: OOHDM's "alternative ways to navigate".
//
// The paper's worked example revolves around two of these (its Figure 2):
//   * Index             — a star: an index page fans out to every member,
//                         each member links back up to the index;
//   * IndexedGuidedTour — the index star *plus* a next/previous chain
//                         threading the members in context order.
// We also provide the plain GuidedTour (chain only) and Menu (an index of
// indexes) that HDM/OOHDM describe, so navigation designs beyond the
// paper's can be expressed and benchmarked.
//
// An access structure is *declarative*: it owns an ordered member list and
// materializes navigation arcs on demand. Everything downstream (the XLink
// linkbase, the tangled renderer, the weaving aspect) consumes those arcs.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"

namespace navsep::hypermedia {

enum class AccessStructureKind { Index, GuidedTour, IndexedGuidedTour, Menu };

[[nodiscard]] std::string_view to_string(AccessStructureKind k) noexcept;

/// Arc roles used by every access structure. These become XLink arcrole
/// values (prefixed "nav:") in the linkbase and CSS classes in pages.
namespace roles {
inline constexpr std::string_view kIndexEntry = "index-entry";
inline constexpr std::string_view kUp = "up";
inline constexpr std::string_view kNext = "next";
inline constexpr std::string_view kPrev = "prev";
inline constexpr std::string_view kMenuEntry = "menu-entry";
inline constexpr std::string_view kFirst = "first";
}  // namespace roles

/// One materialized navigation arc between node ids (or the structure's
/// own entry page, e.g. "index:paintings").
struct AccessArc {
  std::string from;
  std::string to;
  std::string role;        // one of roles::*
  std::string title;       // human label for the anchor
};

/// A member of an access structure: the node it reaches plus its label.
struct Member {
  std::string node_id;
  std::string title;
};

/// Base interface. Concrete structures are created through the factory
/// functions below (or constructed directly).
class AccessStructure {
 public:
  AccessStructure(std::string name, std::vector<Member> members)
      : name_(std::move(name)), members_(std::move(members)) {}
  virtual ~AccessStructure() = default;

  AccessStructure(const AccessStructure&) = delete;
  AccessStructure& operator=(const AccessStructure&) = delete;

  [[nodiscard]] virtual AccessStructureKind kind() const noexcept = 0;

  /// Materialize every arc of the structure.
  [[nodiscard]] virtual std::vector<AccessArc> arcs() const = 0;

  /// The id of the structure's entry resource: the index/menu page for
  /// Index/Menu, the first member for tours.
  [[nodiscard]] virtual std::string entry() const = 0;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::vector<Member>& members() const noexcept {
    return members_;
  }

  /// The synthetic id of this structure's own page ("index:<name>").
  [[nodiscard]] std::string page_id() const;

 protected:
  std::string name_;
  std::vector<Member> members_;
};

/// Index: entry page fans out to members; members link back up.
class Index final : public AccessStructure {
 public:
  using AccessStructure::AccessStructure;
  [[nodiscard]] AccessStructureKind kind() const noexcept override {
    return AccessStructureKind::Index;
  }
  [[nodiscard]] std::vector<AccessArc> arcs() const override;
  [[nodiscard]] std::string entry() const override { return page_id(); }
};

/// GuidedTour: next/prev chain through the members; no index page.
class GuidedTour final : public AccessStructure {
 public:
  GuidedTour(std::string name, std::vector<Member> members,
             bool circular = false)
      : AccessStructure(std::move(name), std::move(members)),
        circular_(circular) {}
  [[nodiscard]] AccessStructureKind kind() const noexcept override {
    return AccessStructureKind::GuidedTour;
  }
  [[nodiscard]] std::vector<AccessArc> arcs() const override;
  [[nodiscard]] std::string entry() const override;
  [[nodiscard]] bool circular() const noexcept { return circular_; }

 private:
  bool circular_;
};

/// IndexedGuidedTour: the paper's Figure 2(b) — index star + tour chain.
class IndexedGuidedTour final : public AccessStructure {
 public:
  using AccessStructure::AccessStructure;
  [[nodiscard]] AccessStructureKind kind() const noexcept override {
    return AccessStructureKind::IndexedGuidedTour;
  }
  [[nodiscard]] std::vector<AccessArc> arcs() const override;
  [[nodiscard]] std::string entry() const override { return page_id(); }
};

/// Menu: a two-level index — the menu page links to sub-structures'
/// entry pages.
class Menu final : public AccessStructure {
 public:
  Menu(std::string name,
       std::vector<std::unique_ptr<AccessStructure>> sub_structures);
  [[nodiscard]] AccessStructureKind kind() const noexcept override {
    return AccessStructureKind::Menu;
  }
  [[nodiscard]] std::vector<AccessArc> arcs() const override;
  [[nodiscard]] std::string entry() const override { return page_id(); }
  [[nodiscard]] const std::vector<std::unique_ptr<AccessStructure>>&
  sub_structures() const noexcept {
    return subs_;
  }

 private:
  std::vector<std::unique_ptr<AccessStructure>> subs_;
};

/// Factory: build a structure of `kind` over `members`. Menu cannot be
/// built through this factory (it needs sub-structures) — requesting it
/// throws navsep::SemanticError.
[[nodiscard]] std::unique_ptr<AccessStructure> make_access_structure(
    AccessStructureKind kind, std::string name, std::vector<Member> members);

/// A structure whose arc set is explicit data rather than derived from a
/// kind: kind, members, arcs and entry are all stored. This is what a
/// linkbase *is* once authored — and therefore the natural substrate for
/// runtime navigation edits: snapshot any structure, then replace
/// individual arcs without inventing a new AccessStructure subclass.
/// nav::Engine's mutation API keeps its live navigation design in one of
/// these.
class MaterializedStructure final : public AccessStructure {
 public:
  MaterializedStructure(std::string name, AccessStructureKind kind,
                        std::vector<Member> members,
                        std::vector<AccessArc> arcs, std::string entry)
      : AccessStructure(std::move(name), std::move(members)),
        kind_(kind),
        arcs_(std::move(arcs)),
        entry_(std::move(entry)) {}

  /// Freeze another structure's current members/arcs/entry. Kind-specific
  /// behavior (Menu sub-structures, tour circularity) is flattened into
  /// the materialized arc set.
  [[nodiscard]] static std::unique_ptr<MaterializedStructure> snapshot(
      const AccessStructure& structure);

  [[nodiscard]] AccessStructureKind kind() const noexcept override {
    return kind_;
  }
  [[nodiscard]] std::vector<AccessArc> arcs() const override { return arcs_; }
  [[nodiscard]] std::string entry() const override { return entry_; }

  /// The stored arc list (no materialization cost, unlike arcs()).
  [[nodiscard]] const std::vector<AccessArc>& stored_arcs() const noexcept {
    return arcs_;
  }

  /// Replace the arc at `index`. Throws navsep::SemanticError when out of
  /// range.
  void replace_arc(std::size_t index, AccessArc arc);

 private:
  AccessStructureKind kind_;
  std::vector<AccessArc> arcs_;
  std::string entry_;
};

}  // namespace navsep::hypermedia

// The navigational model: OOHDM's second design layer.
//
// Node classes are *views* over conceptual classes (a choice of visible
// attributes and a title), link classes are views over relationships.
// Deriving a NavigationalModel from a ConceptualModel instantiates one nav
// node per entity of a viewed class and one nav link per related pair —
// this is exactly the step OOHDM calls "defining the navigational schema
// over the conceptual schema", and it is what lets the same conceptual
// model serve different navigation designs.
#pragma once

#include <deque>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "hypermedia/conceptual.hpp"

namespace navsep::hypermedia {

/// A node class: which conceptual class it views and through which
/// perspective (subset of attributes).
struct NodeClassDef {
  std::string name;              // "PaintingNode"
  std::string conceptual_class;  // "Painting"
  std::vector<std::string> shown_attributes;
  std::string title_attribute;   // attribute used as the human title
};

/// A link class: a relationship lifted into navigation.
struct LinkClassDef {
  std::string name;            // "by-same-author"
  std::string relationship;    // conceptual relationship viewed
  std::string source_node_class;
  std::string target_node_class;
};

class NavigationalSchema {
 public:
  NodeClassDef& add_node_class(NodeClassDef def);
  LinkClassDef& add_link_class(LinkClassDef def);

  [[nodiscard]] const NodeClassDef* find_node_class(std::string_view name) const;
  [[nodiscard]] const NodeClassDef* node_class_for(
      std::string_view conceptual_class) const;
  /// Deques keep def addresses stable; NavNode/NavLink point into them.
  [[nodiscard]] const std::deque<NodeClassDef>& node_classes() const noexcept {
    return node_classes_;
  }
  [[nodiscard]] const std::deque<LinkClassDef>& link_classes() const noexcept {
    return link_classes_;
  }

 private:
  std::deque<NodeClassDef> node_classes_;
  std::deque<LinkClassDef> link_classes_;
};

/// One navigation node: a view of one entity.
class NavNode {
 public:
  NavNode(const Entity& entity, const NodeClassDef& cls)
      : entity_(&entity), cls_(&cls) {}

  [[nodiscard]] const std::string& id() const noexcept {
    return entity_->id();
  }
  [[nodiscard]] const Entity& entity() const noexcept { return *entity_; }
  [[nodiscard]] const NodeClassDef& node_class() const noexcept {
    return *cls_;
  }

  /// The node's human-readable title (title attribute, falling back to id).
  [[nodiscard]] std::string title() const;

  /// Only the attributes the perspective exposes, in declared order.
  [[nodiscard]] std::vector<std::pair<std::string, std::string>> visible_attributes()
      const;

 private:
  const Entity* entity_;
  const NodeClassDef* cls_;
};

/// One navigation link instance.
struct NavLink {
  const NavNode* source = nullptr;
  const NavNode* target = nullptr;
  const LinkClassDef* link_class = nullptr;
};

/// The instantiated navigational model.
class NavigationalModel {
 public:
  /// Derive nodes and links from conceptual instances. Throws
  /// navsep::SemanticError when the schema references unknown conceptual
  /// classes/relationships.
  [[nodiscard]] static NavigationalModel derive(
      const ConceptualModel& conceptual, const NavigationalSchema& schema);

  [[nodiscard]] const std::vector<NavNode>& nodes() const noexcept {
    return nodes_;
  }
  [[nodiscard]] const std::vector<NavLink>& links() const noexcept {
    return links_;
  }
  [[nodiscard]] const NavNode* node(std::string_view id) const;

  /// Nodes of one node class, in derivation order.
  [[nodiscard]] std::vector<const NavNode*> nodes_of(
      std::string_view node_class) const;

  /// Links leaving a node, optionally restricted to one link class.
  [[nodiscard]] std::vector<const NavLink*> links_from(
      std::string_view node_id, std::string_view link_class = "") const;

 private:
  std::vector<NavNode> nodes_;
  std::vector<NavLink> links_;
  std::map<std::string, std::size_t, std::less<>> index_;
};

}  // namespace navsep::hypermedia

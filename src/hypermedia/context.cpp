#include "hypermedia/context.hpp"

#include <map>

namespace navsep::hypermedia {

std::optional<std::size_t> NavigationalContext::position_of(
    std::string_view node_id) const {
  for (std::size_t i = 0; i < node_ids_.size(); ++i) {
    if (node_ids_[i] == node_id) return i;
  }
  return std::nullopt;
}

std::optional<std::string> NavigationalContext::next_of(
    std::string_view node_id) const {
  auto pos = position_of(node_id);
  if (!pos.has_value() || *pos + 1 >= node_ids_.size()) return std::nullopt;
  return node_ids_[*pos + 1];
}

std::optional<std::string> NavigationalContext::prev_of(
    std::string_view node_id) const {
  auto pos = position_of(node_id);
  if (!pos.has_value() || *pos == 0) return std::nullopt;
  return node_ids_[*pos - 1];
}

const NavigationalContext* ContextFamily::find(std::string_view name) const {
  for (const auto& c : contexts_) {
    if (c.name() == name) return &c;
  }
  return nullptr;
}

std::vector<const NavigationalContext*> ContextFamily::containing(
    std::string_view node_id) const {
  std::vector<const NavigationalContext*> out;
  for (const auto& c : contexts_) {
    if (c.contains(node_id)) out.push_back(&c);
  }
  return out;
}

ContextFamily ContextFamily::group_by_attribute(const NavigationalModel& model,
                                                std::string_view node_class,
                                                std::string_view attribute,
                                                std::string family_name) {
  // Preserve first-seen order of attribute values so context order is
  // deterministic and matches the model.
  std::vector<std::string> value_order;
  std::map<std::string, std::vector<std::string>, std::less<>> groups;
  for (const NavNode* n : model.nodes_of(node_class)) {
    auto v = n->entity().attribute(attribute);
    if (!v.has_value()) continue;
    auto it = groups.find(*v);
    if (it == groups.end()) {
      value_order.emplace_back(*v);
      it = groups.emplace(std::string(*v), std::vector<std::string>{}).first;
    }
    it->second.push_back(n->id());
  }
  std::vector<NavigationalContext> contexts;
  contexts.reserve(value_order.size());
  for (const std::string& value : value_order) {
    contexts.emplace_back(family_name, value, groups[value]);
  }
  return ContextFamily(std::move(family_name), std::move(contexts));
}

ContextFamily ContextFamily::group_by_relation(const NavigationalModel& model,
                                               std::string_view owner_class,
                                               std::string_view relationship,
                                               std::string family_name) {
  std::vector<NavigationalContext> contexts;
  for (const NavNode* owner : model.nodes_of(owner_class)) {
    std::vector<std::string> member_ids;
    for (const Entity* related : owner->entity().related(relationship)) {
      if (model.node(related->id()) != nullptr) {
        member_ids.push_back(related->id());
      }
    }
    if (!member_ids.empty()) {
      contexts.emplace_back(family_name, owner->id(), std::move(member_ids));
    }
  }
  return ContextFamily(std::move(family_name), std::move(contexts));
}

ContextFamily ContextFamily::all_of_class(const NavigationalModel& model,
                                          std::string_view node_class,
                                          std::string family_name) {
  std::vector<std::string> ids;
  for (const NavNode* n : model.nodes_of(node_class)) {
    ids.push_back(n->id());
  }
  std::vector<NavigationalContext> contexts;
  contexts.emplace_back(family_name, "all", std::move(ids));
  return ContextFamily(std::move(family_name), std::move(contexts));
}

}  // namespace navsep::hypermedia

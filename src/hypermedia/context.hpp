// Navigational contexts: OOHDM's primitive for organizing the navigation
// space into "consistent sets that can be traversed following a particular
// order" — the paper's §2 museum scenario: reaching a painting *through
// its author* puts it in the by-author context, where Next means "next
// painting by the same author"; reaching it *through a movement* puts it
// in the by-movement context, where Next resolves differently. Context is
// what makes navigation stateful.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "hypermedia/navigational.hpp"

namespace navsep::hypermedia {

/// One context: an ordered set of node ids with a family tag.
class NavigationalContext {
 public:
  NavigationalContext(std::string family, std::string name,
                      std::vector<std::string> node_ids)
      : family_(std::move(family)),
        name_(std::move(name)),
        node_ids_(std::move(node_ids)) {}

  [[nodiscard]] const std::string& family() const noexcept { return family_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Fully qualified name "family:name" (used as context tag everywhere).
  [[nodiscard]] std::string qualified_name() const {
    return family_ + ":" + name_;
  }

  [[nodiscard]] const std::vector<std::string>& node_ids() const noexcept {
    return node_ids_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return node_ids_.size(); }

  /// 0-based position of a node, or nullopt when the node is outside the
  /// context.
  [[nodiscard]] std::optional<std::size_t> position_of(
      std::string_view node_id) const;

  /// Context-dependent successor / predecessor (nullopt at the ends or
  /// outside the context).
  [[nodiscard]] std::optional<std::string> next_of(
      std::string_view node_id) const;
  [[nodiscard]] std::optional<std::string> prev_of(
      std::string_view node_id) const;

  [[nodiscard]] bool contains(std::string_view node_id) const {
    return position_of(node_id).has_value();
  }

 private:
  std::string family_;
  std::string name_;
  std::vector<std::string> node_ids_;
};

/// A family of related contexts ("paintings by author X" for every X).
class ContextFamily {
 public:
  ContextFamily(std::string name, std::vector<NavigationalContext> contexts)
      : name_(std::move(name)), contexts_(std::move(contexts)) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::vector<NavigationalContext>& contexts() const
      noexcept {
    return contexts_;
  }

  [[nodiscard]] const NavigationalContext* find(std::string_view name) const;

  /// Replace the family's context set — the editing primitive behind
  /// nav::EngineInternals::edit_context_family (re-author the family's
  /// contextual linkbase without touching anything else). Callers
  /// typically copy contexts(), adjust, and pass the result back.
  void replace_contexts(std::vector<NavigationalContext> contexts) {
    contexts_ = std::move(contexts);
  }

  /// Contexts of this family containing the node.
  [[nodiscard]] std::vector<const NavigationalContext*> containing(
      std::string_view node_id) const;

  // --- derivation from the navigational model --------------------------------

  /// One context per distinct value of `attribute` over the nodes of
  /// `node_class`; members ordered by model derivation order.
  /// E.g. group_by_attribute(model, "PaintingNode", "movement").
  [[nodiscard]] static ContextFamily group_by_attribute(
      const NavigationalModel& model, std::string_view node_class,
      std::string_view attribute, std::string family_name);

  /// One context per entity of `owner_class`, containing the nodes related
  /// through `relationship`. E.g. group_by_relation(model, "PainterNode",
  /// "painted", "ByAuthor") — "paintings by author X" for every painter X.
  [[nodiscard]] static ContextFamily group_by_relation(
      const NavigationalModel& model, std::string_view owner_class,
      std::string_view relationship, std::string family_name);

  /// A single context holding every node of a class, in model order.
  [[nodiscard]] static ContextFamily all_of_class(
      const NavigationalModel& model, std::string_view node_class,
      std::string family_name);

 private:
  std::string name_;
  std::vector<NavigationalContext> contexts_;
};

}  // namespace navsep::hypermedia

#include "hypermedia/access.hpp"

namespace navsep::hypermedia {

std::string_view to_string(AccessStructureKind k) noexcept {
  switch (k) {
    case AccessStructureKind::Index: return "Index";
    case AccessStructureKind::GuidedTour: return "GuidedTour";
    case AccessStructureKind::IndexedGuidedTour: return "IndexedGuidedTour";
    case AccessStructureKind::Menu: return "Menu";
  }
  return "?";
}

std::string AccessStructure::page_id() const { return "index:" + name_; }

std::vector<AccessArc> Index::arcs() const {
  std::vector<AccessArc> out;
  out.reserve(members_.size() * 2);
  const std::string page = page_id();
  for (const Member& m : members_) {
    out.push_back(AccessArc{page, m.node_id, std::string(roles::kIndexEntry),
                            m.title});
    out.push_back(
        AccessArc{m.node_id, page, std::string(roles::kUp), "Index"});
  }
  return out;
}

std::vector<AccessArc> GuidedTour::arcs() const {
  std::vector<AccessArc> out;
  if (members_.empty()) return out;
  for (std::size_t i = 0; i + 1 < members_.size(); ++i) {
    out.push_back(AccessArc{members_[i].node_id, members_[i + 1].node_id,
                            std::string(roles::kNext),
                            "Next: " + members_[i + 1].title});
    out.push_back(AccessArc{members_[i + 1].node_id, members_[i].node_id,
                            std::string(roles::kPrev),
                            "Previous: " + members_[i].title});
  }
  if (circular_ && members_.size() > 1) {
    out.push_back(AccessArc{members_.back().node_id, members_.front().node_id,
                            std::string(roles::kNext),
                            "Next: " + members_.front().title});
    out.push_back(AccessArc{members_.front().node_id, members_.back().node_id,
                            std::string(roles::kPrev),
                            "Previous: " + members_.back().title});
  }
  return out;
}

std::string GuidedTour::entry() const {
  if (members_.empty()) {
    throw SemanticError("guided tour '" + name_ + "' has no members");
  }
  return members_.front().node_id;
}

std::vector<AccessArc> IndexedGuidedTour::arcs() const {
  // Index star...
  std::vector<AccessArc> out = Index(name_, members_).arcs();
  // ...plus the tour chain (the "two bold lines" of the paper's Figure 4,
  // repeated on every member page).
  GuidedTour tour(name_, members_);
  std::vector<AccessArc> chain = tour.arcs();
  out.insert(out.end(), std::make_move_iterator(chain.begin()),
             std::make_move_iterator(chain.end()));
  return out;
}

Menu::Menu(std::string name,
           std::vector<std::unique_ptr<AccessStructure>> sub_structures)
    : AccessStructure(std::move(name), {}), subs_(std::move(sub_structures)) {
  for (const auto& sub : subs_) {
    members_.push_back(Member{sub->entry(), sub->name()});
  }
}

std::vector<AccessArc> Menu::arcs() const {
  std::vector<AccessArc> out;
  const std::string page = page_id();
  for (const auto& sub : subs_) {
    out.push_back(AccessArc{page, sub->entry(),
                            std::string(roles::kMenuEntry), sub->name()});
    out.push_back(
        AccessArc{sub->entry(), page, std::string(roles::kUp), "Menu"});
    std::vector<AccessArc> inner = sub->arcs();
    out.insert(out.end(), std::make_move_iterator(inner.begin()),
               std::make_move_iterator(inner.end()));
  }
  return out;
}

std::unique_ptr<MaterializedStructure> MaterializedStructure::snapshot(
    const AccessStructure& structure) {
  return std::make_unique<MaterializedStructure>(
      structure.name(), structure.kind(), structure.members(),
      structure.arcs(), structure.entry());
}

void MaterializedStructure::replace_arc(std::size_t index, AccessArc arc) {
  if (index >= arcs_.size()) {
    throw SemanticError("MaterializedStructure::replace_arc: index " +
                        std::to_string(index) + " out of range (have " +
                        std::to_string(arcs_.size()) + " arcs)");
  }
  arcs_[index] = std::move(arc);
}

std::unique_ptr<AccessStructure> make_access_structure(
    AccessStructureKind kind, std::string name, std::vector<Member> members) {
  switch (kind) {
    case AccessStructureKind::Index:
      return std::make_unique<Index>(std::move(name), std::move(members));
    case AccessStructureKind::GuidedTour:
      return std::make_unique<GuidedTour>(std::move(name), std::move(members));
    case AccessStructureKind::IndexedGuidedTour:
      return std::make_unique<IndexedGuidedTour>(std::move(name),
                                                 std::move(members));
    case AccessStructureKind::Menu:
      throw SemanticError(
          "Menu requires sub-structures; construct hypermedia::Menu directly");
  }
  throw SemanticError("unknown access structure kind");
}

}  // namespace navsep::hypermedia

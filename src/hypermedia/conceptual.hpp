// The conceptual model: OOHDM's first design layer.
//
// A ConceptualSchema declares classes, their attributes and the
// relationships between classes; a ConceptualModel holds instances
// (entities) conforming to that schema. The museum example instantiates
// Painter, Painting and Movement classes here; the navigational layer
// (navigational.hpp) then derives node/link views from these objects.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"

namespace navsep::hypermedia {

enum class Cardinality { One, Many };

struct AttributeDef {
  std::string name;
  bool required = false;
};

struct RelationshipDef {
  std::string name;           // e.g. "painted"
  std::string source_class;   // "Painter"
  std::string target_class;   // "Painting"
  Cardinality cardinality = Cardinality::Many;
  std::string inverse;        // e.g. "painted-by" ("" = no inverse)
};

struct ClassDef {
  std::string name;
  std::vector<AttributeDef> attributes;

  [[nodiscard]] bool has_attribute(std::string_view attr) const noexcept;
};

/// Schema: classes + relationships, with lookup and validation.
class ConceptualSchema {
 public:
  ClassDef& add_class(std::string name,
                      std::vector<AttributeDef> attributes = {});
  RelationshipDef& add_relationship(std::string name, std::string source,
                                    std::string target,
                                    Cardinality cardinality = Cardinality::Many,
                                    std::string inverse = "");

  [[nodiscard]] const ClassDef* find_class(std::string_view name) const;
  [[nodiscard]] const RelationshipDef* find_relationship(
      std::string_view name) const;
  /// Stored in deques so ClassDef/RelationshipDef addresses stay stable
  /// while entities hold pointers into them.
  [[nodiscard]] const std::deque<ClassDef>& classes() const noexcept {
    return classes_;
  }
  [[nodiscard]] const std::deque<RelationshipDef>& relationships() const
      noexcept {
    return relationships_;
  }

 private:
  std::deque<ClassDef> classes_;
  std::deque<RelationshipDef> relationships_;
};

/// One conceptual object.
class Entity {
 public:
  Entity(std::string id, const ClassDef& cls) : id_(std::move(id)), cls_(&cls) {}

  [[nodiscard]] const std::string& id() const noexcept { return id_; }
  [[nodiscard]] const ClassDef& conceptual_class() const noexcept {
    return *cls_;
  }

  [[nodiscard]] std::optional<std::string_view> attribute(
      std::string_view name) const;
  [[nodiscard]] std::string attribute_or(std::string_view name,
                                         std::string_view fallback) const;
  void set_attribute(std::string_view name, std::string value);

  /// Related entities through a named relationship, in insertion order.
  [[nodiscard]] const std::vector<const Entity*>& related(
      std::string_view relationship) const;

 private:
  friend class ConceptualModel;
  std::string id_;
  const ClassDef* cls_;
  std::map<std::string, std::string, std::less<>> attributes_;
  std::map<std::string, std::vector<const Entity*>, std::less<>> related_;
};

/// The instance store. Owns entities; enforces the schema on creation,
/// attribute writes and relationship additions.
class ConceptualModel {
 public:
  explicit ConceptualModel(const ConceptualSchema& schema)
      : schema_(&schema) {}

  ConceptualModel(const ConceptualModel&) = delete;
  ConceptualModel& operator=(const ConceptualModel&) = delete;
  ConceptualModel(ConceptualModel&&) = default;
  ConceptualModel& operator=(ConceptualModel&&) = default;

  [[nodiscard]] const ConceptualSchema& schema() const noexcept {
    return *schema_;
  }

  /// Create an entity. Throws navsep::SemanticError for unknown classes or
  /// duplicate ids.
  Entity& create(std::string_view class_name, std::string id);

  /// Link `source` to `target` through `relationship` (and through its
  /// inverse when the schema declares one). Throws on class mismatches and
  /// cardinality violations.
  void relate(Entity& source, std::string_view relationship, Entity& target);

  [[nodiscard]] const Entity* find(std::string_view id) const;
  [[nodiscard]] Entity* find(std::string_view id);

  /// All entities of one class, in creation order.
  [[nodiscard]] std::vector<const Entity*> entities_of(
      std::string_view class_name) const;

  [[nodiscard]] std::size_t size() const noexcept { return order_.size(); }

  /// Every entity in creation order.
  [[nodiscard]] const std::vector<Entity*>& entities() const noexcept {
    return order_;
  }

 private:
  const ConceptualSchema* schema_;
  std::map<std::string, std::unique_ptr<Entity>, std::less<>> by_id_;
  std::vector<Entity*> order_;
};

}  // namespace navsep::hypermedia

// TextCursor: a position-tracking scanner shared by every lexer in the
// library (XML, XPath, CSS, URI, pointcut DSL). It owns nothing; the caller
// guarantees the underlying buffer outlives the cursor.
#pragma once

#include <string_view>

#include "common/error.hpp"

namespace navsep {

class TextCursor {
 public:
  explicit TextCursor(std::string_view text) noexcept : text_(text) {}

  [[nodiscard]] bool eof() const noexcept { return pos_.offset >= text_.size(); }
  [[nodiscard]] std::size_t offset() const noexcept { return pos_.offset; }
  [[nodiscard]] Position position() const noexcept { return pos_; }
  [[nodiscard]] std::string_view input() const noexcept { return text_; }

  /// Current character, or '\0' at end of input.
  [[nodiscard]] char peek() const noexcept {
    return eof() ? '\0' : text_[pos_.offset];
  }

  /// Character `n` ahead of the current one, or '\0' past the end.
  [[nodiscard]] char peek(std::size_t n) const noexcept {
    return pos_.offset + n >= text_.size() ? '\0' : text_[pos_.offset + n];
  }

  /// Remaining unconsumed input.
  [[nodiscard]] std::string_view rest() const noexcept {
    return text_.substr(pos_.offset);
  }

  /// Consume and return the current character. Throws at end of input.
  char next() {
    if (eof()) throw ParseError("unexpected end of input", pos_);
    char c = text_[pos_.offset];
    advance();
    return c;
  }

  /// Advance by one character, maintaining line/column.
  void advance() noexcept {
    if (eof()) return;
    if (text_[pos_.offset] == '\n') {
      ++pos_.line;
      pos_.column = 1;
    } else {
      ++pos_.column;
    }
    ++pos_.offset;
  }

  /// Advance by `n` characters.
  void advance(std::size_t n) noexcept {
    for (std::size_t i = 0; i < n && !eof(); ++i) advance();
  }

  /// If the remaining input starts with `s`, consume it and return true.
  bool consume(std::string_view s) noexcept {
    if (rest().substr(0, s.size()) != s) return false;
    advance(s.size());
    return true;
  }

  /// Consume the single character `c` if it is next; return whether it was.
  bool consume(char c) noexcept {
    if (peek() != c) return false;
    advance();
    return true;
  }

  /// Require `s` next, else throw a ParseError mentioning `what`.
  void expect(std::string_view s, std::string_view what) {
    if (!consume(s)) {
      throw ParseError("expected " + std::string(what), pos_);
    }
  }

  /// Skip XML whitespace; returns true if anything was skipped.
  bool skip_ws() noexcept {
    bool any = false;
    while (!eof()) {
      char c = peek();
      if (c != ' ' && c != '\t' && c != '\r' && c != '\n') break;
      advance();
      any = true;
    }
    return any;
  }

  /// Consume characters while `pred(c)` holds; returns the consumed slice.
  template <typename Pred>
  std::string_view take_while(Pred pred) noexcept {
    std::size_t start = pos_.offset;
    while (!eof() && pred(peek())) advance();
    return text_.substr(start, pos_.offset - start);
  }

  /// Consume up to (not including) the first occurrence of `delim`;
  /// returns the consumed slice. Throws if `delim` never occurs.
  std::string_view take_until(std::string_view delim) {
    std::size_t hit = text_.find(delim, pos_.offset);
    if (hit == std::string_view::npos) {
      throw ParseError("unterminated construct, expected '" +
                           std::string(delim) + "'",
                       pos_);
    }
    std::string_view out = text_.substr(pos_.offset, hit - pos_.offset);
    advance(out.size());
    return out;
  }

  [[noreturn]] void fail(const std::string& message) const {
    throw ParseError(message, pos_);
  }

 private:
  std::string_view text_;
  Position pos_;
};

}  // namespace navsep

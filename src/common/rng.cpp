#include "common/rng.hpp"

namespace navsep {

namespace {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& lane : s_) lane = splitmix64(sm);
}

std::uint64_t Rng::next() noexcept {
  // xoshiro256** step.
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
  // Lemire's nearly-divisionless bounded draw with rejection.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::between(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::uniform() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) noexcept { return uniform() < p; }

std::string Rng::word(std::size_t length) noexcept {
  static constexpr char kVowels[] = "aeiou";
  static constexpr char kConsonants[] = "bcdfghjklmnprstvz";
  std::string out;
  out.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    if (i % 2 == 0) {
      out.push_back(kConsonants[below(sizeof(kConsonants) - 1)]);
    } else {
      out.push_back(kVowels[below(sizeof(kVowels) - 1)]);
    }
  }
  return out;
}

}  // namespace navsep

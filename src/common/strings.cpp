#include "common/strings.hpp"

namespace navsep::strings {

std::string to_lower(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) out.push_back(to_lower(c));
  return out;
}

std::string_view trim(std::string_view s) noexcept {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && is_space(s[b])) ++b;
  while (e > b && is_space(s[e - 1])) --e;
  return s.substr(b, e - b);
}

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string_view> split_ws(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && is_space(s[i])) ++i;
    std::size_t start = i;
    while (i < s.size() && !is_space(s[i])) ++i;
    if (i > start) out.push_back(s.substr(start, i - start));
  }
  return out;
}

namespace {
template <typename Range>
std::string join_impl(const Range& parts, std::string_view sep) {
  std::string out;
  bool first = true;
  for (const auto& p : parts) {
    if (!first) out.append(sep);
    out.append(p);
    first = false;
  }
  return out;
}
}  // namespace

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  return join_impl(parts, sep);
}

std::string join(const std::vector<std::string_view>& parts,
                 std::string_view sep) {
  return join_impl(parts, sep);
}

std::string replace_all(std::string_view s, std::string_view from,
                        std::string_view to) {
  if (from.empty()) return std::string(s);
  std::string out;
  out.reserve(s.size());
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t hit = s.find(from, pos);
    if (hit == std::string_view::npos) {
      out.append(s.substr(pos));
      break;
    }
    out.append(s.substr(pos, hit - pos));
    out.append(to);
    pos = hit + from.size();
  }
  return out;
}

bool wildcard_match(std::string_view pattern, std::string_view text) noexcept {
  // Iterative two-pointer matcher with backtracking over the last `*`.
  std::size_t p = 0, t = 0;
  std::size_t star = std::string_view::npos;
  std::size_t star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '?' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      star_t = t;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

std::string normalize_space(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  bool in_ws = true;  // drop leading whitespace
  for (char c : s) {
    if (is_space(c)) {
      if (!in_ws) out.push_back(' ');
      in_ws = true;
    } else {
      out.push_back(c);
      in_ws = false;
    }
  }
  if (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

bool all_space(std::string_view s) noexcept {
  for (char c : s) {
    if (!is_space(c)) return false;
  }
  return true;
}

std::string quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

}  // namespace navsep::strings

// Deterministic pseudo-random number generation for workload synthesis.
//
// Benchmarks and the museum-site generator must be reproducible run to run,
// so everything random in this repository flows through Rng seeded
// explicitly — never std::random_device. The engine is xoshiro256**
// seeded via SplitMix64, which is fast and has no measurable bias for the
// ranges we draw.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace navsep {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept;

  /// Next raw 64-bit value.
  std::uint64_t next() noexcept;

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t between(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Bernoulli draw with probability p of true.
  bool chance(double p) noexcept;

  /// Pick a uniformly random element of a non-empty vector.
  template <typename T>
  const T& pick(const std::vector<T>& v) noexcept {
    return v[static_cast<std::size_t>(below(v.size()))];
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// A lowercase pseudo-word of the given length (for synthetic names).
  std::string word(std::size_t length) noexcept;

 private:
  std::uint64_t s_[4]{};
};

}  // namespace navsep

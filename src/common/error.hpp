// Error hierarchy shared by every navsep module.
//
// All recoverable failures in the library are reported as exceptions derived
// from navsep::Error. Parsers (XML, XPath, CSS, pointcut DSL, URI) throw
// ParseError carrying a 1-based line/column position; semantic failures
// (dangling XLink labels, unknown node classes, pointcut type errors) throw
// SemanticError. Callers that prefer status-style handling can use the
// try_* wrappers offered by individual modules.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

namespace navsep {

/// Source position inside a parsed text. Lines and columns are 1-based;
/// `offset` is the 0-based byte offset from the start of the input.
struct Position {
  std::size_t line = 1;
  std::size_t column = 1;
  std::size_t offset = 0;

  [[nodiscard]] std::string to_string() const {
    return std::to_string(line) + ":" + std::to_string(column);
  }

  friend bool operator==(const Position&, const Position&) = default;
};

/// Root of the navsep exception hierarchy.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A syntactic failure while parsing some textual input.
class ParseError : public Error {
 public:
  ParseError(const std::string& what, Position pos)
      : Error(what + " at " + pos.to_string()), pos_(pos) {}

  [[nodiscard]] Position position() const noexcept { return pos_; }

 private:
  Position pos_;
};

/// A semantic failure: syntactically valid input that violates a constraint
/// (e.g. an XLink arc whose label has no locator, an XPath function called
/// with the wrong arity).
class SemanticError : public Error {
 public:
  using Error::Error;
};

/// Failure to resolve a reference (URI, XPointer, node id, linkbase label).
class ResolutionError : public Error {
 public:
  using Error::Error;
};

}  // namespace navsep

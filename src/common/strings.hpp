// Small string toolkit used across the library.
//
// Everything here operates on std::string_view and returns owned strings or
// views into the input; no locale dependence (ASCII-only case folding, which
// matches the XML/CSS grammars we implement).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace navsep::strings {

/// True if `c` is ASCII whitespace as defined by XML (space, tab, CR, LF).
[[nodiscard]] constexpr bool is_space(char c) noexcept {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n';
}

[[nodiscard]] constexpr bool is_digit(char c) noexcept {
  return c >= '0' && c <= '9';
}

[[nodiscard]] constexpr bool is_alpha(char c) noexcept {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
}

[[nodiscard]] constexpr bool is_alnum(char c) noexcept {
  return is_alpha(c) || is_digit(c);
}

[[nodiscard]] constexpr char to_lower(char c) noexcept {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}

/// ASCII lower-casing; non-ASCII bytes pass through unchanged.
[[nodiscard]] std::string to_lower(std::string_view s);

/// Strip leading and trailing XML whitespace.
[[nodiscard]] std::string_view trim(std::string_view s) noexcept;

/// Split on a single separator character. Empty fields are preserved:
/// split("a,,b", ',') == {"a", "", "b"}; split("", ',') == {""}.
[[nodiscard]] std::vector<std::string_view> split(std::string_view s, char sep);

/// Split on runs of XML whitespace; empty fields are dropped.
[[nodiscard]] std::vector<std::string_view> split_ws(std::string_view s);

/// Join with a separator string.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);
[[nodiscard]] std::string join(const std::vector<std::string_view>& parts,
                               std::string_view sep);

/// Replace every occurrence of `from` (non-empty) with `to`.
[[nodiscard]] std::string replace_all(std::string_view s, std::string_view from,
                                      std::string_view to);

/// Glob-style wildcard match: `*` matches any (possibly empty) run of
/// characters, `?` matches exactly one character; everything else is
/// literal. Used by the pointcut DSL and by CSS attribute matching.
[[nodiscard]] bool wildcard_match(std::string_view pattern,
                                  std::string_view text) noexcept;

/// Collapse runs of whitespace to single spaces and trim the ends —
/// the XPath normalize-space() semantics.
[[nodiscard]] std::string normalize_space(std::string_view s);

/// True if `s` consists solely of XML whitespace (or is empty).
[[nodiscard]] bool all_space(std::string_view s) noexcept;

/// Minimal integer formatting helpers that never throw.
[[nodiscard]] std::string quote(std::string_view s);

}  // namespace navsep::strings

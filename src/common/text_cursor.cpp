#include "common/text_cursor.hpp"

// TextCursor is header-only today; this translation unit anchors the
// library target and keeps a stable home for future out-of-line code.

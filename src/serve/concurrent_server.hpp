// ConcurrentServer: many-reader GET over the current published snapshot.
//
// The hot path is: probe one cache shard (one striped mutex, held for a
// map lookup), and on a hit whose epoch is current, return the shared
// response. Misses and stale entries acquire the current snapshot (one
// atomic refcount bump — never a wait on the writer) and resolve against
// it. The single-site HypermediaServer keeps ONE cache mutex, which is
// exactly what this replaces for concurrent traffic: N mutex-striped
// shards, so readers on different shards never contend, with per-shard
// hit/miss counters aggregated on stats().
//
// Invalidation is by epoch, not by path: writers publish a whole new
// snapshot, every cached entry carries the epoch it was resolved
// against, and an entry whose epoch lags the store's is refilled on next
// touch. No publication ever blocks a reader, and no reader can observe
// a mix of two epochs in one response.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "nav/profile.hpp"
#include "serve/snapshot.hpp"
#include "site/server.hpp"

namespace navsep::serve {

class ConcurrentServer final : public site::PageService {
 public:
  /// Counters, one coherent-enough sample across shards. requests >=
  /// cache_hits + snapshot_resolves holds per shard (hits/resolves are
  /// summed before requests). The overlay_* counters cover the
  /// profile-scoped layer (get(uri, profile)); its entries retire by
  /// content-handle validity, not by epoch, so a publication that leaves
  /// a profile's inputs untouched costs it nothing.
  struct Stats {
    std::size_t requests = 0;
    std::size_t cache_hits = 0;         ///< served from a fresh shard entry
    std::size_t snapshot_resolves = 0;  ///< resolved against the snapshot
    std::size_t stale_refills = 0;      ///< resolves that replaced an
                                        ///< entry from an older epoch
    std::size_t not_found = 0;          ///< 404s
    std::size_t cached_entries = 0;     ///< live entries across shards
    std::uint64_t epoch = 0;            ///< store epoch at sample time

    std::size_t overlay_requests = 0;
    std::size_t overlay_hits = 0;     ///< entry valid, served as cached
    std::size_t overlay_renders = 0;  ///< overlay composed from the snapshot
    std::size_t overlay_stale_renders = 0;  ///< renders that replaced an
                                            ///< invalidated entry
    std::size_t overlay_not_found = 0;      ///< profile-scoped 404s
    std::size_t overlay_entries = 0;        ///< live overlay entries
  };

  /// Serve over `store` (which must already have a published snapshot —
  /// the base URI is captured from it; throws navsep::SemanticError when
  /// empty) with `shards` cache shards (clamped to at least 1).
  explicit ConcurrentServer(const SnapshotStore& store,
                            std::size_t shards = kDefaultShards);

  /// GET against the currently published snapshot. Thread-safe for any
  /// number of concurrent callers, including while a writer publishes.
  [[nodiscard]] site::Response get(std::string_view uri_or_path) const override;

  /// GET as `profile` sees the site (SiteSnapshot::respond_as): the base
  /// page with that profile's navigation block composed late, cached in a
  /// separate striped overlay layer keyed by (profile, request).
  /// Overlay entries are validated by content handles
  /// (serve::OverlayValidity) rather than epoch: an entry survives any
  /// number of publications until its page's base bytes, the structure
  /// linkbase, or one of ITS profile's family linkbases actually change —
  /// so a single family edit retires only the entries of profiles that
  /// include that family. Thread-safe like get(). Throws
  /// navsep::SemanticError for an unregistered profile name.
  [[nodiscard]] site::Response get(std::string_view uri_or_path,
                                   std::string_view profile) const;

  /// Profiles the currently published snapshot carries.
  [[nodiscard]] std::vector<nav::Profile> profiles() const {
    std::shared_ptr<const SiteSnapshot> snap = store_->current();
    return snap == nullptr ? std::vector<nav::Profile>{} : snap->profiles();
  }

  [[nodiscard]] const std::string& base() const noexcept override {
    return base_;
  }

  /// Pin the currently published snapshot (for session-long consistency:
  /// a behavior that wants one coherent site view across many GETs holds
  /// this and calls snapshot->respond() itself).
  [[nodiscard]] std::shared_ptr<const SiteSnapshot> snapshot() const {
    return store_->current();
  }

  [[nodiscard]] std::uint64_t epoch() const noexcept {
    return store_->epoch();
  }
  [[nodiscard]] std::size_t shard_count() const noexcept { return n_shards_; }

  /// Aggregate the per-shard counters (locks each shard briefly for its
  /// entry count; counter loads are ordered per shard, see Stats).
  [[nodiscard]] Stats stats() const;

  static constexpr std::size_t kDefaultShards = 16;

 private:
  struct Entry {
    site::Response response;
    std::uint64_t epoch = 0;
  };

  /// One profile-scoped cached response: what was served, the site path
  /// the request resolved to, and the content handles it was composed
  /// from. Valid while the current snapshot reports pointer-identical
  /// handles for (profile, path); the held handles pin the old bytes, so
  /// the pointer comparison can never hit recycled addresses.
  struct OverlayEntry {
    site::Response response;
    std::string path;
    OverlayValidity validity;
  };

  /// One cache stripe. Counters live with the shard so the hot path
  /// touches exactly one cache line set; alignment keeps shards from
  /// false-sharing each other.
  struct alignas(64) Shard {
    mutable std::mutex mutex;
    std::unordered_map<std::string, Entry> cache;
    std::atomic<std::size_t> requests{0};
    std::atomic<std::size_t> hits{0};
    std::atomic<std::size_t> resolves{0};
    std::atomic<std::size_t> stale_refills{0};
    std::atomic<std::size_t> not_found{0};
  };

  /// One overlay stripe — same layout, keyed by (profile, request).
  struct alignas(64) OverlayShard {
    mutable std::mutex mutex;
    std::unordered_map<std::string, OverlayEntry> cache;
    std::atomic<std::size_t> requests{0};
    std::atomic<std::size_t> hits{0};
    std::atomic<std::size_t> renders{0};
    std::atomic<std::size_t> stale_renders{0};
    std::atomic<std::size_t> not_found{0};
  };

  [[nodiscard]] Shard& shard_for(std::string_view key) const;
  [[nodiscard]] OverlayShard& overlay_shard_for(std::string_view key) const;

  const SnapshotStore* store_;
  std::string base_;
  std::size_t n_shards_;
  std::unique_ptr<Shard[]> shards_;
  std::unique_ptr<OverlayShard[]> overlay_shards_;
};

}  // namespace navsep::serve

// ConcurrentServer: many-reader GET over the current published snapshot.
//
// The hot path is: probe one cache shard (one striped mutex, held for a
// map lookup + an LRU splice), and on a hit whose epoch is current,
// return the shared response. Misses and stale entries acquire the
// current snapshot (one atomic refcount bump — never a wait on the
// writer) and resolve against it. The single-site HypermediaServer keeps
// ONE cache mutex, which is exactly what this replaces for concurrent
// traffic: N mutex-striped shards, so readers on different shards never
// contend, with per-shard hit/miss counters aggregated on stats().
//
// Invalidation is by epoch, not by path: writers publish a whole new
// snapshot, every cached entry carries the epoch it was resolved
// against, and an entry whose epoch lags the store's is refilled on next
// touch. No publication ever blocks a reader, and no reader can observe
// a mix of two epochs in one response.
//
// Both cache layers are bounded: CacheLimits caps the entries each
// shard may hold, evicting least-recently-touched entries past the cap
// (a zero cap degenerates to pass-through — every request resolves
// against the snapshot, nothing is retained). The ROADMAP's
// heavy-traffic north star is why: the overlay layer is keyed by
// (profile, request) and would otherwise grow as profiles × pages.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "nav/profile.hpp"
#include "obs/registry.hpp"
#include "serve/snapshot.hpp"
#include "site/server.hpp"

namespace navsep::serve {

/// Per-shard caps for the two cache layers, by entry count AND by
/// resident body bytes. kUnbounded (the default) disables that cap; 0
/// disables caching entirely (pass-through: correct, just never warm).
/// A server with S shards holds at most S × cap entries and S ×
/// byte-cap body bytes per layer; an entry's size is its response body
/// (the dominant term — keys and validity tokens are not charged).
struct CacheLimits {
  static constexpr std::size_t kUnbounded =
      std::numeric_limits<std::size_t>::max();

  std::size_t base_entries_per_shard = kUnbounded;
  std::size_t overlay_entries_per_shard = kUnbounded;
  std::size_t base_bytes_per_shard = kUnbounded;
  std::size_t overlay_bytes_per_shard = kUnbounded;
};

class ConcurrentServer final : public site::PageService {
 public:
  /// One cache layer's counters, symmetrically named for both layers.
  /// requests >= hits + resolves holds per shard (hits/resolves are
  /// summed before requests), and the residency ledger reconciles
  /// exactly: `inserted == entries + evicted` — inserted counts
  /// first-time key insertions, evicted counts every removal
  /// (LRU-capacity eviction AND staleness retirement of a path that
  /// 404s in the current snapshot); refreshing an existing key in place
  /// is neither. inserted/evicted/entries/resident_bytes are sampled
  /// under each shard's lock, so the ledger balances even while traffic
  /// runs.
  struct LayerStats {
    std::size_t requests = 0;
    std::size_t hits = 0;      ///< served from a valid cached entry
    std::size_t resolves = 0;  ///< resolved/rendered against the snapshot
    std::size_t stale_refills = 0;  ///< resolves replacing an invalid entry
    std::size_t not_found = 0;      ///< 404s
    std::size_t entries = 0;        ///< live entries across shards
    std::size_t inserted = 0;       ///< entries ever added
    std::size_t evicted = 0;        ///< entries ever removed
    std::size_t resident_bytes = 0;  ///< Σ cached response bodies
    /// The configured per-shard caps, echoed (kUnbounded when off).
    std::size_t entry_cap_per_shard = CacheLimits::kUnbounded;
    std::size_t byte_cap_per_shard = CacheLimits::kUnbounded;
  };

  /// Both layers under one naming scheme. `base` is the epoch-validated
  /// page cache (get(uri)); `overlay` is the profile-scoped layer
  /// (get(uri, profile)), whose entries retire by slice-precise content
  /// validity (serve::OverlayValidity), not by epoch — a publication
  /// that leaves a profile's inputs untouched costs it nothing.
  struct UnifiedStats {
    LayerStats base;
    LayerStats overlay;
    std::uint64_t epoch = 0;  ///< store epoch at sample time
  };

  /// Compatibility view of UnifiedStats, preserving the historical
  /// asymmetric field names (cache_hits vs overlay_hits,
  /// snapshot_resolves vs overlay_renders, ...). New code should prefer
  /// unified_stats(); this struct is a thin mapping kept so existing
  /// callers and dashboards don't churn.
  struct Stats {
    std::size_t requests = 0;
    std::size_t cache_hits = 0;         ///< served from a fresh shard entry
    std::size_t snapshot_resolves = 0;  ///< resolved against the snapshot
    std::size_t stale_refills = 0;      ///< resolves that replaced an
                                        ///< entry from an older epoch
    std::size_t not_found = 0;          ///< 404s
    std::size_t cached_entries = 0;     ///< live entries across shards
    std::size_t cache_inserted = 0;     ///< entries ever added
    std::size_t cache_evicted = 0;      ///< entries ever removed
    std::uint64_t epoch = 0;            ///< store epoch at sample time

    std::size_t overlay_requests = 0;
    std::size_t overlay_hits = 0;     ///< entry valid, served as cached
    std::size_t overlay_renders = 0;  ///< overlay composed from the snapshot
    std::size_t overlay_stale_renders = 0;  ///< renders that replaced an
                                            ///< invalidated entry
    std::size_t overlay_not_found = 0;      ///< profile-scoped 404s
    std::size_t overlay_entries = 0;        ///< live overlay entries
    std::size_t overlay_inserted = 0;       ///< overlay entries ever added
    std::size_t overlay_evicted = 0;        ///< overlay entries ever removed

    /// Resident body bytes per layer, sampled under the same shard locks
    /// as the entry counts (so bytes and entries describe one moment).
    std::size_t cached_bytes = 0;   ///< base-layer resident body bytes
    std::size_t overlay_bytes = 0;  ///< overlay-layer resident body bytes

    /// The configured caps, echoed for dashboards (kUnbounded when off).
    std::size_t base_cap_per_shard = CacheLimits::kUnbounded;
    std::size_t overlay_cap_per_shard = CacheLimits::kUnbounded;
    std::size_t base_byte_cap_per_shard = CacheLimits::kUnbounded;
    std::size_t overlay_byte_cap_per_shard = CacheLimits::kUnbounded;
  };

  /// Serve over `store` (which must already have a published snapshot —
  /// the base URI is captured from it; throws navsep::SemanticError when
  /// empty) with `shards` cache shards (clamped to at least 1), each
  /// bounded by `limits`.
  explicit ConcurrentServer(const SnapshotStore& store,
                            std::size_t shards = kDefaultShards,
                            CacheLimits limits = CacheLimits{});

  /// GET against the currently published snapshot. Thread-safe for any
  /// number of concurrent callers, including while a writer publishes.
  [[nodiscard]] site::Response get(std::string_view uri_or_path) const override;

  /// GET as `profile` sees the site (SiteSnapshot::respond_as): the base
  /// page with that profile's navigation block composed late, cached in a
  /// separate striped overlay layer keyed by (profile, request).
  /// Overlay entries are validated slice-precisely
  /// (serve::OverlayValidity: base-bytes handle + per-(page, family)
  /// slice hashes) rather than by epoch: an entry survives any number of
  /// publications until its page's base bytes or one of ITS profile's
  /// arc slices FOR THAT PAGE actually change — so a single family edit
  /// retires only the entries of including profiles on pages the edit
  /// touched. Thread-safe like get(). Throws navsep::SemanticError for
  /// an unregistered profile name.
  [[nodiscard]] site::Response get(std::string_view uri_or_path,
                                   std::string_view profile) const;

  /// What one warm() attempt did (see warm()).
  enum class WarmOutcome {
    Warmed,      ///< rendered and admitted into the cache
    AlreadyHot,  ///< a valid entry was already resident
    NoRoom,      ///< rendered but admission would have evicted someone
    NotFound,    ///< the path 404s (or the profile is unknown)
  };

  /// Predictively render (page, profile) into the cache — the cache
  /// warmer's entry point (serve/cache_warmer.hpp). An empty `profile`
  /// warms the base layer, otherwise the overlay layer. Differences
  /// from get(): traffic counters (requests/hits/resolves) do NOT move
  /// — warming must not pollute organic hit-ratio math; an unknown
  /// profile returns NotFound instead of throwing (the feed may predate
  /// a profile retirement); and insertion is admission-controlled — a
  /// warmed entry is only admitted when it fits the shard's entry and
  /// byte budgets WITHOUT evicting anything, and joins at the cold end
  /// of the recency order, so a predicted-hot entry can never displace
  /// one organic traffic actually touched. Thread-safe like get().
  WarmOutcome warm(std::string_view uri_or_path,
                   std::string_view profile = {}) const;

  /// Profiles the currently published snapshot carries.
  [[nodiscard]] std::vector<nav::Profile> profiles() const {
    std::shared_ptr<const SiteSnapshot> snap = store_->current();
    return snap == nullptr ? std::vector<nav::Profile>{} : snap->profiles();
  }

  [[nodiscard]] const std::string& base() const noexcept override {
    return base_;
  }

  /// Pin the currently published snapshot (for session-long consistency:
  /// a behavior that wants one coherent site view across many GETs holds
  /// this and calls snapshot->respond() itself).
  [[nodiscard]] std::shared_ptr<const SiteSnapshot> snapshot() const {
    return store_->current();
  }

  [[nodiscard]] std::uint64_t epoch() const noexcept {
    return store_->epoch();
  }
  [[nodiscard]] std::size_t shard_count() const noexcept { return n_shards_; }
  [[nodiscard]] const CacheLimits& limits() const noexcept { return limits_; }

  /// Aggregate the per-shard counters into the symmetric two-layer view
  /// (locks each shard briefly for its residency ledger; counter loads
  /// are ordered per shard, see LayerStats).
  [[nodiscard]] UnifiedStats unified_stats() const;

  /// The historical flat view, mapped field-for-field from
  /// unified_stats().
  [[nodiscard]] Stats stats() const;

  /// Register a pull sampler on `registry` that mirrors unified_stats()
  /// into gauges at every Registry::snapshot() — `<prefix>.base.*` and
  /// `<prefix>.overlay.*` with the symmetric LayerStats names, plus
  /// `<prefix>.epoch`. The returned handle unregisters on destruction;
  /// the caller must drop it (or the registry) before this server dies.
  [[nodiscard]] obs::SamplerHandle register_metrics(
      std::shared_ptr<obs::Registry> registry,
      std::string prefix = "serve") const;

  static constexpr std::size_t kDefaultShards = 16;

 private:
  struct Entry {
    site::Response response;
    std::uint64_t epoch = 0;
  };

  /// One profile-scoped cached response: what was served, the site path
  /// the request resolved to, and the validity token it was composed
  /// under (base-bytes handle + slice hashes — see OverlayValidity).
  struct OverlayEntry {
    site::Response response;
    std::string path;
    OverlayValidity validity;
  };

  /// One bounded LRU cache stripe. Counters live with the shard so the
  /// hot path touches exactly one cache line set; alignment keeps shards
  /// from false-sharing each other. The recency list and the residency
  /// ledger (inserted/evicted) mutate only under the mutex; the traffic
  /// counters are atomics bumped outside it.
  template <typename V>
  struct alignas(64) Shard {
    mutable std::mutex mutex;
    /// Keys, most-recently-touched first; map values point into it.
    std::list<std::string> recency;
    struct Slot {
      V value;
      std::list<std::string>::iterator pos;
    };
    std::unordered_map<std::string_view, Slot> cache;
    std::size_t inserted = 0;        // guarded by mutex
    std::size_t evicted = 0;         // guarded by mutex
    std::size_t resident_bytes = 0;  // guarded by mutex; Σ entry bodies
    std::atomic<std::size_t> requests{0};
    std::atomic<std::size_t> hits{0};
    std::atomic<std::size_t> resolves{0};
    std::atomic<std::size_t> stale_refills{0};
    std::atomic<std::size_t> not_found{0};

    /// Copy the entry for `key` out (touching it to the recency front);
    /// false on miss.
    bool lookup(const std::string& key, V& out);

    /// Insert or refresh `key` under `cap` entries / `byte_cap` resident
    /// body bytes (evicting the LRU tail while either cap is exceeded;
    /// a zero cap = pass-through, nothing retained). An entry bigger
    /// than `byte_cap` on its own is inserted (or refreshed) then
    /// immediately evicted by itself — the ledger still balances, and
    /// the colder entries it cannot make room for are left resident
    /// rather than drained from the tail for nothing.
    void store(std::string key, V value, std::size_t cap,
               std::size_t byte_cap);

    /// Drop `key` (counted as an eviction — the ledger's "removed for
    /// any reason" side). False when absent.
    bool drop(const std::string& key);

    /// Admission-controlled store for warm(): insert only when both
    /// caps hold WITHOUT evicting (new entries join the recency tail —
    /// a prediction is not a use); refresh an existing key in place
    /// only when the byte delta fits. False when there is no room (or
    /// either cap is 0 — pass-through shards never warm).
    bool store_if_room(std::string key, V value, std::size_t cap,
                       std::size_t byte_cap);
  };

  using BaseShard = Shard<Entry>;
  using OverlayShard = Shard<OverlayEntry>;

  [[nodiscard]] BaseShard& shard_for(std::string_view key) const;
  [[nodiscard]] OverlayShard& overlay_shard_for(std::string_view key) const;

  const SnapshotStore* store_;
  std::string base_;
  std::size_t n_shards_;
  CacheLimits limits_;
  std::unique_ptr<BaseShard[]> shards_;
  std::unique_ptr<OverlayShard[]> overlay_shards_;
};

}  // namespace navsep::serve

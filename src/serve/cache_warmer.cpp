#include "serve/cache_warmer.hpp"

#include <utility>

namespace navsep::serve {

CacheWarmer::CacheWarmer(const ConcurrentServer& server, Options options)
    : server_(&server), options_(options) {}

CacheWarmer::CacheWarmer(const ConcurrentServer& server)
    : CacheWarmer(server, Options()) {}

CacheWarmer::~CacheWarmer() { stop(); }

void CacheWarmer::set_feed(std::vector<obs::HotEntry> feed) {
  std::lock_guard<std::mutex> lock(feed_mutex_);
  feed_ = std::move(feed);
}

void CacheWarmer::run_cycle() {
  // Pin the epoch before rendering: a publication racing the cycle just
  // means some entries warm against the old snapshot and the next cycle
  // (triggered by the new epoch) redoes them — warm() itself validates
  // per-entry, so nothing stale is ever admitted as fresh.
  const std::uint64_t epoch = server_->epoch();
  std::vector<obs::HotEntry> feed;
  {
    std::lock_guard<std::mutex> lock(feed_mutex_);
    const std::size_t n = feed_.size() < options_.top_n ? feed_.size()
                                                        : options_.top_n;
    feed.assign(feed_.begin(), feed_.begin() + static_cast<std::ptrdiff_t>(n));
  }
  for (const obs::HotEntry& entry : feed) {
    attempted_.fetch_add(1, std::memory_order_relaxed);
    switch (server_->warm(entry.page, entry.profile)) {
      case ConcurrentServer::WarmOutcome::Warmed:
        warmed_.fetch_add(1, std::memory_order_relaxed);
        break;
      case ConcurrentServer::WarmOutcome::AlreadyHot:
        already_hot_.fetch_add(1, std::memory_order_relaxed);
        break;
      case ConcurrentServer::WarmOutcome::NoRoom:
        no_room_.fetch_add(1, std::memory_order_relaxed);
        break;
      case ConcurrentServer::WarmOutcome::NotFound:
        not_found_.fetch_add(1, std::memory_order_relaxed);
        break;
    }
  }
  last_epoch_.store(epoch, std::memory_order_relaxed);
  cycles_.fetch_add(1, std::memory_order_relaxed);
}

CacheWarmer::WarmStats CacheWarmer::warm_now() {
  run_cycle();
  return stats();
}

void CacheWarmer::start() {
  std::lock_guard<std::mutex> lock(lane_mutex_);
  if (lane_.joinable()) return;
  stop_requested_ = false;
  lane_ = std::thread([this] { lane(); });
}

void CacheWarmer::stop() {
  std::thread lane;
  {
    std::lock_guard<std::mutex> lock(lane_mutex_);
    if (!lane_.joinable()) return;
    stop_requested_ = true;
    lane = std::move(lane_);
  }
  lane_cv_.notify_all();
  lane.join();
}

void CacheWarmer::lane() {
  // `seen` deliberately starts one behind the current epoch so the lane
  // warms once immediately — attaching a warmer to a live server should
  // not wait for the next publication to be useful.
  std::uint64_t seen = server_->epoch() - 1;
  std::unique_lock<std::mutex> lock(lane_mutex_);
  while (!stop_requested_) {
    const std::uint64_t current = server_->epoch();
    if (current != seen) {
      lock.unlock();
      run_cycle();
      lock.lock();
      seen = current;
      continue;
    }
    lane_cv_.wait_for(lock, options_.poll,
                      [this] { return stop_requested_; });
  }
}

CacheWarmer::WarmStats CacheWarmer::stats() const {
  WarmStats out;
  out.cycles = cycles_.load(std::memory_order_relaxed);
  out.attempted = attempted_.load(std::memory_order_relaxed);
  out.warmed = warmed_.load(std::memory_order_relaxed);
  out.already_hot = already_hot_.load(std::memory_order_relaxed);
  out.no_room = no_room_.load(std::memory_order_relaxed);
  out.not_found = not_found_.load(std::memory_order_relaxed);
  out.last_epoch = last_epoch_.load(std::memory_order_relaxed);
  return out;
}

obs::SamplerHandle CacheWarmer::register_metrics(
    std::shared_ptr<obs::Registry> registry, std::string prefix) const {
  // Raw registry pointer for the same reason as the server's sampler:
  // the handle's drop-before-registry contract bounds its lifetime.
  obs::Registry* reg = registry.get();
  return reg->add_sampler([this, reg, prefix = std::move(prefix)] {
    const WarmStats s = stats();
    const auto g = [&](const char* field, std::uint64_t v) {
      reg->gauge(prefix + '.' + field).set(static_cast<std::int64_t>(v));
    };
    g("cycles", s.cycles);
    g("attempted", s.attempted);
    g("warmed", s.warmed);
    g("already_hot", s.already_hot);
    g("no_room", s.no_room);
    g("not_found", s.not_found);
    g("epoch", s.last_epoch);
  });
}

}  // namespace navsep::serve

#include "serve/workload.hpp"

#include <bit>
#include <chrono>
#include <thread>
#include <utility>

#include "common/rng.hpp"
#include "core/navigation_aspect.hpp"
#include "nav/pipeline.hpp"
#include "site/session.hpp"

namespace navsep::serve {

std::string_view to_string(Behavior b) noexcept {
  switch (b) {
    case Behavior::RandomSurfer: return "random_surfer";
    case Behavior::GuidedTour: return "guided_tour";
    case Behavior::ContextSwitcher: return "context_switcher";
    case Behavior::Kiosk: return "kiosk";
    case Behavior::ProfileMix: return "profile_mix";
  }
  return "unknown";
}

// --- LatencyHistogram ---------------------------------------------------------

void LatencyHistogram::record(std::uint64_t ns) noexcept {
  std::size_t bucket = ns == 0 ? 0 : static_cast<std::size_t>(
                                         std::bit_width(ns) - 1);
  if (bucket >= kBuckets) bucket = kBuckets - 1;
  ++counts_[bucket];
  ++count_;
  total_ns_ += ns;
  if (ns > max_ns_) max_ns_ = ns;
}

void LatencyHistogram::merge(const LatencyHistogram& other) noexcept {
  for (std::size_t i = 0; i < kBuckets; ++i) counts_[i] += other.counts_[i];
  count_ += other.count_;
  total_ns_ += other.total_ns_;
  if (other.max_ns_ > max_ns_) max_ns_ = other.max_ns_;
}

std::uint64_t LatencyHistogram::quantile_ns(double q) const noexcept {
  const double v = obs::log2_interpolated_quantile(counts_.data(), kBuckets,
                                                   count_, max_ns_, q);
  return static_cast<std::uint64_t>(v + 0.5);
}

// --- session behaviors --------------------------------------------------------

namespace {

namespace hm = navsep::hypermedia;

struct SessionOutcome {
  std::size_t steps = 0;
  std::size_t requests = 0;
  std::size_t failures = 0;
  LatencyHistogram latency;

  // Trace capture: null ring = off (the default — zero cost on the
  // request path). The ring is single-writer: this session's thread is
  // the only writer, the aggregator reads only after join.
  obs::TraceRing* ring = nullptr;
  std::uint32_t sample_every = 1;
  std::uint64_t sample_clock = 0;
  const ConcurrentServer* server = nullptr;  ///< epoch stamps for events
  std::string profile;  ///< profile lens of this session, "" for base
};

/// Record one navigation step into the session's ring, honoring the
/// sampling stride. `from`/`role` say how the session arrived at `to`
/// ("" = direct entry / re-seed jump, i.e. no arc was followed).
void maybe_trace(SessionOutcome& out, std::string_view from,
                 std::string_view to, std::string_view role,
                 std::uint64_t latency_ns, bool ok) {
  if (out.ring == nullptr) return;
  if (out.sample_clock++ % out.sample_every != 0) return;
  obs::TraceEvent event;
  event.from = std::string(from);
  event.to = std::string(to);
  event.role = std::string(role);
  event.profile = out.profile;
  event.epoch = out.server != nullptr ? out.server->epoch() : 0;
  event.latency_ns = latency_ns;
  event.ok = ok;
  out.ring->record(std::move(event));
}

/// One timed GET; returns ok. `from`/`role` describe the arc the
/// session followed to reach `uri` (trace capture only — "" when the
/// session jumped there directly).
bool timed_get(const ConcurrentServer& server, std::string_view uri,
               SessionOutcome& out, std::string_view from = {},
               std::string_view role = {}) {
  const auto t0 = std::chrono::steady_clock::now();
  site::Response r = server.get(uri);
  const auto t1 = std::chrono::steady_clock::now();
  const auto ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
  out.latency.record(ns);
  ++out.requests;
  if (!r.ok()) ++out.failures;
  maybe_trace(out, from, uri, role, ns, r.ok());
  return r.ok();
}

/// Per-session cache of a snapshot's .html page list, rebuilt only when
/// the epoch moves: sessions re-seed from it whenever a mutation retired
/// the page they stood on, and an O(site) walk must not sit on the
/// measured request path of every re-seed.
class PageIndex {
 public:
  const std::vector<std::string>& pages(const SiteSnapshot& snap) {
    if (!filled_ || epoch_ != snap.epoch()) {
      filled_ = true;
      epoch_ = snap.epoch();
      pages_.clear();
      for (std::string& path : snap.paths()) {
        if (path.size() > 5 && path.rfind(".html") == path.size() - 5) {
          pages_.push_back(std::move(path));
        }
      }
    }
    return pages_;
  }

 private:
  bool filled_ = false;
  std::uint64_t epoch_ = 0;
  std::vector<std::string> pages_;
};

/// A random .html path from the current snapshot. Falls back to
/// `fallback` when the snapshot has none.
std::string random_page(PageIndex& index, const SiteSnapshot& snap, Rng& rng,
                        const std::string& fallback) {
  const std::vector<std::string>& pages = index.pages(snap);
  return pages.empty() ? fallback : rng.pick(pages);
}

void run_random_surfer(const ConcurrentServer& server,
                       const std::string& entry_path, Rng& rng,
                       std::size_t steps, SessionOutcome& out) {
  PageIndex index;
  std::string location = entry_path;
  std::string from;  // where the last followed arc left from
  std::string role;  // and its role ("" = jumped, no arc)
  for (std::size_t i = 0; i < steps; ++i) {
    ++out.steps;
    std::shared_ptr<const SiteSnapshot> snap = server.snapshot();
    if (!timed_get(server, location, out, from, role)) {
      location = random_page(index, *snap, rng, entry_path);
      from.clear();
      role.clear();
      continue;
    }
    const std::vector<SnapshotArc>& arcs = snap->outgoing(location);
    std::vector<const SnapshotArc*> traversable;
    traversable.reserve(arcs.size());
    for (const SnapshotArc& arc : arcs) {
      if (arc.traversable) traversable.push_back(&arc);
    }
    if (traversable.empty()) {
      location = random_page(index, *snap, rng, entry_path);
      from.clear();
      role.clear();
    } else {
      const SnapshotArc* arc = rng.pick(traversable);
      from = location;
      role = arc->arcrole;
      location = arc->to;
    }
  }
}

/// Walk next/prev role arcs out of the published linkbases — the tour as
/// the served site actually links it. Used by GuidedTour sessions when
/// the engine has no context families configured.
void run_arc_tour(const ConcurrentServer& server,
                  const std::string& entry_path, Rng& rng, std::size_t steps,
                  SessionOutcome& out) {
  PageIndex index;
  std::string location = entry_path;
  std::string from;
  std::string role;
  for (std::size_t i = 0; i < steps; ++i) {
    ++out.steps;
    std::shared_ptr<const SiteSnapshot> snap = server.snapshot();
    if (!timed_get(server, location, out, from, role)) {
      location = random_page(index, *snap, rng, entry_path);
      from.clear();
      role.clear();
      continue;
    }
    const bool forward = !rng.chance(0.2);
    const SnapshotArc* arc =
        snap->outgoing_with_role(location, forward ? "next" : "prev");
    if (arc == nullptr && forward) {
      arc = snap->outgoing_with_role(location, "up");
    }
    if (arc != nullptr) {
      from = location;
      role = arc->arcrole;
      location = arc->to;
    } else {
      location = random_page(index, *snap, rng, entry_path);
      from.clear();
      role.clear();
    }
  }
}

/// Pick a random non-empty context of a random family; enter it at a
/// random member. Returns false when no family has members.
bool enter_random_context(
    site::NavigationSession& session,
    const std::vector<const hm::ContextFamily*>& families, Rng& rng) {
  for (std::size_t attempt = 0; attempt < 8; ++attempt) {
    const hm::ContextFamily* family = rng.pick(families);
    if (family->contexts().empty()) continue;
    const hm::NavigationalContext& ctx =
        family->contexts()[rng.below(family->contexts().size())];
    if (ctx.node_ids().empty()) continue;
    const std::string& node = ctx.node_ids()[rng.below(ctx.size())];
    if (session.enter_context(family->name(), ctx.name(), node)) return true;
  }
  return false;
}

void fetch_current(const ConcurrentServer& server,
                   const site::NavigationSession& session,
                   SessionOutcome& out, std::string_view from = {},
                   std::string_view role = {}) {
  if (session.current() == nullptr) return;
  (void)timed_get(server, core::default_href_for(session.current()->id()),
                  out, from, role);
}

/// Served path of the session's current node — only materialized when
/// tracing is on (it feeds the next event's `from`).
std::string trace_location(const SessionOutcome& out,
                           const site::NavigationSession& session) {
  if (out.ring == nullptr || session.current() == nullptr) return {};
  return core::default_href_for(session.current()->id());
}

void run_guided_tour(const ConcurrentServer& server,
                     const hm::NavigationalModel& model,
                     const std::vector<const hm::ContextFamily*>& families,
                     const std::string& entry_path, Rng& rng,
                     std::size_t steps, SessionOutcome& out) {
  if (families.empty()) {
    run_arc_tour(server, entry_path, rng, steps, out);
    return;
  }
  site::NavigationSession session(model, families, /*weaver=*/nullptr);
  if (!enter_random_context(session, families, rng)) {
    run_arc_tour(server, entry_path, rng, steps, out);
    return;
  }
  std::string from;
  std::string role;
  for (std::size_t i = 0; i < steps; ++i) {
    ++out.steps;
    fetch_current(server, session, out, from, role);
    const std::string here = trace_location(out, session);
    const bool forward = !rng.chance(0.2);
    const bool moved = forward ? session.next() : session.prev();
    if (moved) {
      from = here;
      role = forward ? "next" : "prev";
    } else {
      // Hit an end of the tour: start over in another context.
      from.clear();
      role.clear();
      session.leave_context();
      if (!enter_random_context(session, families, rng)) return;
    }
  }
}

void run_context_switcher(
    const ConcurrentServer& server, const hm::NavigationalModel& model,
    const std::vector<const hm::ContextFamily*>& families,
    const std::string& entry_path, Rng& rng, std::size_t steps,
    SessionOutcome& out) {
  if (families.empty()) {
    run_random_surfer(server, entry_path, rng, steps, out);
    return;
  }
  site::NavigationSession session(model, families, /*weaver=*/nullptr);
  if (!enter_random_context(session, families, rng)) {
    run_random_surfer(server, entry_path, rng, steps, out);
    return;
  }
  std::string from;
  std::string role;
  for (std::size_t i = 0; i < steps; ++i) {
    ++out.steps;
    fetch_current(server, session, out, from, role);
    const std::string here = trace_location(out, session);
    if (rng.chance(0.3)) {
      // The paper's §2 move: keep the node, re-reach it through another
      // family — "next" now means something different.
      const hm::ContextFamily* family = rng.pick(families);
      if (session.through(family->name())) {
        from = here;
        role = "through";
        continue;
      }
      from.clear();
      role.clear();
      if (!enter_random_context(session, families, rng)) return;
      continue;
    }
    const bool forward = rng.chance(0.8);
    if (forward ? session.next() : session.prev()) {
      from = here;
      role = forward ? "next" : "prev";
    } else {
      from.clear();
      role.clear();
      if (!enter_random_context(session, families, rng)) return;
    }
  }
}

/// One timed profile-scoped GET; returns ok.
bool timed_profile_get(const ConcurrentServer& server, std::string_view uri,
                       const std::string& profile, SessionOutcome& out,
                       std::string_view from = {},
                       std::string_view role = {}) {
  const auto t0 = std::chrono::steady_clock::now();
  site::Response r = server.get(uri, profile);
  const auto t1 = std::chrono::steady_clock::now();
  const auto ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
  out.latency.record(ns);
  ++out.requests;
  if (!r.ok()) ++out.failures;
  maybe_trace(out, from, uri, role, ns, r.ok());
  return r.ok();
}

/// The profile-pinned session: every fetch goes through the overlay
/// layer as `profile_name`, and movement follows the arcs that profile
/// actually sees — the structure's plus its families' tours.
void run_profile_mix(const ConcurrentServer& server,
                     const std::string& profile_name,
                     const std::string& entry_path, Rng& rng,
                     std::size_t steps, SessionOutcome& out) {
  PageIndex index;
  std::string location = entry_path;
  std::string from;
  std::string role;
  for (std::size_t i = 0; i < steps; ++i) {
    ++out.steps;
    std::shared_ptr<const SiteSnapshot> snap = server.snapshot();
    if (!timed_profile_get(server, location, profile_name, out, from, role)) {
      location = random_page(index, *snap, rng, entry_path);
      from.clear();
      role.clear();
      continue;
    }
    // The profile is always present: profile_names came from a snapshot
    // no newer than `snap`, and profiles are never removed (the get()
    // above would already have thrown otherwise).
    const navsep::nav::Profile* profile = snap->find_profile(profile_name);
    std::vector<const core::NavArc*> arcs =
        snap->profile_arcs(location, *profile);
    if (arcs.empty()) {
      location = random_page(index, *snap, rng, entry_path);
      from.clear();
      role.clear();
    } else {
      const core::NavArc* arc = rng.pick(arcs);
      from = location;
      role = arc->role;
      location = core::default_href_for(arc->to);
    }
  }
}

void run_kiosk(const ConcurrentServer& server,
               const std::vector<std::string>& seed_nodes,
               const std::string& entry_path, Rng& rng, std::size_t steps,
               SessionOutcome& out) {
  // A kiosk profile is pinned to a short personalized playlist (cf.
  // core::UserProfile::suppress_tours — it never follows tour arcs).
  std::vector<std::string> playlist{entry_path};
  std::vector<std::string> pool = seed_nodes;
  rng.shuffle(pool);
  for (std::size_t i = 0; i < pool.size() && playlist.size() < 5; ++i) {
    playlist.push_back(core::default_href_for(pool[i]));
  }
  PageIndex index;
  for (std::size_t i = 0; i < steps; ++i) {
    ++out.steps;
    std::string& slot = playlist[i % playlist.size()];
    if (!timed_get(server, slot, out)) {
      // The playlist entry was retired by a mutation: swap in a page
      // that exists in the current epoch.
      slot = random_page(index, *server.snapshot(), rng, entry_path);
    }
  }
}

}  // namespace

// --- Workload -----------------------------------------------------------------

Workload::Workload(const nav::Engine& engine) : engine_(&engine) {
  entry_path_ = core::default_href_for(engine.structure().entry());
  for (const hm::Member& member : engine.structure().members()) {
    if (engine.navigation().node(member.node_id) != nullptr) {
      seed_nodes_.push_back(member.node_id);
    }
  }
}

WorkloadResult Workload::run(const WorkloadOptions& options) {
  ConcurrentServer server(engine_->snapshots());
  return run(server, options);
}

WorkloadResult Workload::run(ConcurrentServer& server,
                             const WorkloadOptions& options) {
  static constexpr Behavior kAll[] = {
      Behavior::RandomSurfer, Behavior::GuidedTour, Behavior::ContextSwitcher,
      Behavior::Kiosk, Behavior::ProfileMix};
  // The behavior default stays the four profile-less models: ProfileMix
  // is opt-in (it needs registered profiles to mean anything).
  static constexpr Behavior kDefaults[] = {
      Behavior::RandomSurfer, Behavior::GuidedTour, Behavior::ContextSwitcher,
      Behavior::Kiosk};
  std::vector<Behavior> behaviors = options.behaviors;
  if (behaviors.empty()) {
    behaviors.assign(std::begin(kDefaults), std::end(kDefaults));
  }

  // Profile assignment for ProfileMix sessions: round-robin over the
  // profile table of the snapshot current at launch.
  std::vector<std::string> profile_names;
  for (const navsep::nav::Profile& p : server.profiles()) {
    profile_names.push_back(p.name);
  }

  std::vector<const hm::ContextFamily*> families;
  families.reserve(engine_->context_families().size());
  for (const hm::ContextFamily& f : engine_->context_families()) {
    families.push_back(&f);
  }

  const std::size_t threads = options.threads == 0 ? 1 : options.threads;
  std::vector<SessionOutcome> outcomes(threads);

  // One ring per session, owned here: each session thread is its ring's
  // only writer; the aggregation below reads them only after join.
  std::vector<std::unique_ptr<obs::TraceRing>> rings;
  if (options.trace.enabled) {
    rings.reserve(threads);
    const std::uint32_t stride =
        options.trace.sample_every == 0 ? 1 : options.trace.sample_every;
    for (std::size_t t = 0; t < threads; ++t) {
      rings.push_back(
          std::make_unique<obs::TraceRing>(options.trace.ring_capacity));
      outcomes[t].ring = rings.back().get();
      outcomes[t].sample_every = stride;
      // Stagger the sampling phase per session (deterministically, from
      // the same stream the session rng seeds from). A zero phase for
      // every session would sample step 0 of every session regardless of
      // stride — the popularity tables would over-count session entry
      // pages, exactly the signal landmark synthesis and cache warming
      // consume.
      outcomes[t].sample_clock =
          (options.seed ^ (0x9e3779b97f4a7c15ull * (t + 1))) % stride;
      outcomes[t].server = &server;
    }
  }

  std::vector<std::thread> pool;
  pool.reserve(threads);

  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t t = 0; t < threads; ++t) {
    const Behavior behavior = behaviors[t % behaviors.size()];
    pool.emplace_back([&, t, behavior] {
      // Distinct deterministic stream per session: same options, same
      // per-session request sequence, run to run.
      Rng rng(options.seed ^ (0x9e3779b97f4a7c15ull * (t + 1)));
      SessionOutcome& out = outcomes[t];
      switch (behavior) {
        case Behavior::RandomSurfer:
          run_random_surfer(server, entry_path_, rng,
                            options.steps_per_session, out);
          break;
        case Behavior::GuidedTour:
          run_guided_tour(server, engine_->navigation(), families,
                          entry_path_, rng, options.steps_per_session, out);
          break;
        case Behavior::ContextSwitcher:
          run_context_switcher(server, engine_->navigation(), families,
                               entry_path_, rng, options.steps_per_session,
                               out);
          break;
        case Behavior::Kiosk:
          run_kiosk(server, seed_nodes_, entry_path_, rng,
                    options.steps_per_session, out);
          break;
        case Behavior::ProfileMix:
          if (profile_names.empty()) {
            run_random_surfer(server, entry_path_, rng,
                              options.steps_per_session, out);
          } else {
            // Round-robin over the ProfileMix sessions themselves (they
            // are every behaviors.size()-th t), not the global thread
            // index — t % profiles would correlate with the behavior
            // slot and starve profiles in mixed-behavior runs.
            const std::string& profile =
                profile_names[(t / behaviors.size()) % profile_names.size()];
            out.profile = profile;
            run_profile_mix(server, profile, entry_path_, rng,
                            options.steps_per_session, out);
          }
          break;
      }
    });
  }
  for (std::thread& th : pool) th.join();
  const auto t1 = std::chrono::steady_clock::now();

  WorkloadResult result;
  result.sessions = threads;
  result.seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0)
          .count();
  std::array<BehaviorTally, std::size(kAll)> tallies;
  for (std::size_t b = 0; b < std::size(kAll); ++b) {
    tallies[b].behavior = kAll[b];
  }
  for (std::size_t t = 0; t < threads; ++t) {
    const SessionOutcome& out = outcomes[t];
    result.steps += out.steps;
    result.requests += out.requests;
    result.failures += out.failures;
    result.latency.merge(out.latency);
    BehaviorTally& tally =
        tallies[static_cast<std::size_t>(behaviors[t % behaviors.size()])];
    ++tally.sessions;
    tally.requests += out.requests;
    tally.failures += out.failures;
    tally.latency.merge(out.latency);
  }
  for (const BehaviorTally& tally : tallies) {
    if (tally.sessions > 0) result.by_behavior.push_back(tally);
  }
  for (const auto& ring : rings) result.traces.absorb(*ring);
  result.throughput_rps =
      result.seconds > 0.0
          ? static_cast<double>(result.requests) / result.seconds
          : 0.0;
  result.server = server.stats();

  if (options.telemetry != nullptr) {
    obs::Registry& reg = *options.telemetry;
    reg.counter("workload.sessions").add(result.sessions);
    reg.counter("workload.steps").add(result.steps);
    reg.counter("workload.requests").add(result.requests);
    reg.counter("workload.failures").add(result.failures);
    reg.counter("workload.traces.recorded").add(result.traces.recorded);
    reg.counter("workload.traces.dropped").add(result.traces.dropped);
    const auto absorb = [&reg](std::string_view name,
                               const LatencyHistogram& h) {
      reg.histogram(name).absorb(h.buckets().data(), h.buckets().size(),
                                 h.count(), h.total_ns(), h.max_ns());
    };
    absorb("workload.latency", result.latency);
    for (const BehaviorTally& tally : result.by_behavior) {
      absorb(std::string("workload.latency.") +
                 std::string(to_string(tally.behavior)),
             tally.latency);
    }
  }
  return result;
}

}  // namespace navsep::serve

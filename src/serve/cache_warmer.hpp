// Predictive cache warming — the serving half of traffic intelligence.
//
// Workload traces fold into (page, profile) popularity tables
// (obs::TraceAggregate::top_entries); a CacheWarmer holds that ranked
// feed and, after every published epoch, pre-renders the hottest
// entries into a ConcurrentServer's caches on a background lane — so
// the first organic request after a publication finds its page already
// resident instead of paying the render. Warming is strictly advisory:
// ConcurrentServer::warm() moves no traffic counters, admits entries
// only when they fit the byte/entry budgets without evicting anything,
// and inserts them at the cold end of the recency order — a wrong
// prediction costs spare capacity, never a resident entry organic
// traffic earned.
//
// Threading: set_feed()/warm_now()/stats() are safe from any thread,
// concurrently with the background lane and with server traffic. The
// lane wakes on a poll interval, warms once per NEW epoch it observes,
// and is joined by stop() (or destruction).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "serve/concurrent_server.hpp"

namespace navsep::serve {

class CacheWarmer {
 public:
  struct Options {
    /// Feed entries warmed per cycle (hottest first).
    std::size_t top_n = 32;
    /// Background lane's epoch-poll cadence.
    std::chrono::milliseconds poll = std::chrono::milliseconds(2);
  };

  /// Cumulative warming counters (every field is a monotonically
  /// growing total; attempted == warmed + already_hot + no_room +
  /// not_found).
  struct WarmStats {
    std::uint64_t cycles = 0;       ///< warm passes completed
    std::uint64_t attempted = 0;    ///< warm() calls issued
    std::uint64_t warmed = 0;       ///< rendered and admitted
    std::uint64_t already_hot = 0;  ///< valid entry already resident
    std::uint64_t no_room = 0;      ///< admission refused (budgets full)
    std::uint64_t not_found = 0;    ///< 404 / retired profile
    std::uint64_t last_epoch = 0;   ///< epoch of the last completed cycle
  };

  /// Warm `server`'s caches. The server must outlive the warmer.
  CacheWarmer(const ConcurrentServer& server, Options options);
  explicit CacheWarmer(const ConcurrentServer& server);
  ~CacheWarmer();

  CacheWarmer(const CacheWarmer&) = delete;
  CacheWarmer& operator=(const CacheWarmer&) = delete;

  /// Install the ranked popularity feed (hottest first — typically
  /// obs::TraceAggregate::top_entries). Replaces the previous feed; the
  /// next cycle (background or warm_now) uses it.
  void set_feed(std::vector<obs::HotEntry> feed);

  /// Run one warming cycle synchronously over the current feed and
  /// return the cumulative stats after it. Usable with or without the
  /// background lane running.
  WarmStats warm_now();

  /// Start the background lane: one warming cycle after every newly
  /// observed epoch (including the one current at start). Idempotent.
  void start();

  /// Join the background lane. Idempotent; destruction calls it.
  void stop();

  [[nodiscard]] WarmStats stats() const;

  /// Register a pull sampler mirroring stats() into gauges —
  /// `<prefix>.cycles`, `.attempted`, `.warmed`, `.already_hot`,
  /// `.no_room`, `.not_found`, `.epoch`. Same handle contract as
  /// ConcurrentServer::register_metrics.
  [[nodiscard]] obs::SamplerHandle register_metrics(
      std::shared_ptr<obs::Registry> registry,
      std::string prefix = "serve.warm") const;

 private:
  void run_cycle();
  void lane();

  const ConcurrentServer* server_;
  Options options_;

  mutable std::mutex feed_mutex_;
  std::vector<obs::HotEntry> feed_;

  std::atomic<std::uint64_t> cycles_{0};
  std::atomic<std::uint64_t> attempted_{0};
  std::atomic<std::uint64_t> warmed_{0};
  std::atomic<std::uint64_t> already_hot_{0};
  std::atomic<std::uint64_t> no_room_{0};
  std::atomic<std::uint64_t> not_found_{0};
  std::atomic<std::uint64_t> last_epoch_{0};

  std::mutex lane_mutex_;
  std::condition_variable lane_cv_;
  bool stop_requested_ = false;
  std::thread lane_;
};

}  // namespace navsep::serve
